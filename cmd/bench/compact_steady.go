package main

import (
	"testing"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// addExtraRows registers benchmark rows that only exist in trees with
// the coarsen.Workspace arena API. The baseline capture replaces this
// file with a no-op stub so the shared rows keep identical names and
// RNG streams across the two builds; cmd/benchdiff reports these rows
// as added rather than comparing them.
func addExtraRows(add func(name string, metric float64, fn func(b *testing.B)), g *graph.Graph) {
	add("compact_cycle_steady_breg400_d4", 0, compactCycleSteady(g))
}

// compactCycleSteady measures one full warm compaction cycle — match,
// contract, seed a coarse bisection, project, rebalance — on a reused
// arena. This is the per-start cost a compacted multi-start campaign
// pays after warm-up; the _steady_ name marks it for the zero-alloc
// gate in scripts/check.sh.
func compactCycleSteady(g *graph.Graph) func(b *testing.B) {
	return func(b *testing.B) {
		w := coarsen.NewWorkspace()
		r := rng.NewFib(7)
		side := make([]uint8, g.N())
		var coarseBis partition.Bisection
		// Warm the reusable coarse bisection against the fine graph,
		// whose size bounds every coarse graph's.
		if err := coarseBis.Reset(g, side); err != nil {
			b.Fatal(err)
		}
		minImb := partition.MinAchievableImbalance(g.TotalVertexWeight())
		cycle := func() {
			w.Reset()
			mate := w.RandomMaximal(g, r)
			c, err := w.Contract(g, mate)
			if err != nil {
				b.Fatal(err)
			}
			cn := c.Coarse.N()
			cs := side[:cn]
			for i := range cs {
				cs[i] = uint8(i & 1)
			}
			if err := coarseBis.Reset(c.Coarse, cs); err != nil {
				b.Fatal(err)
			}
			fine, err := w.Project(c, &coarseBis)
			if err != nil {
				b.Fatal(err)
			}
			partition.RepairBalance(fine, minImb)
		}
		cycle() // warm the arena once before measuring
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	}
}
