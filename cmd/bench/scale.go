package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

// scaleDefaultN is the default vertex count of the -scale suite: the
// million-vertex regime the compact CSR, mmap loading, and sharded
// kernels target. -scale-n raises it up to scaleMaxN = 10⁷, the
// ceiling the lifted graph.MaxVertices cap supports with headroom.
const (
	scaleDefaultN = 1_000_000
	scaleMaxN     = 10_000_000
)

// scaleDeg keeps the instance sparse like the paper's families while
// still giving every kernel multi-million half-edge arrays to chew on.
const scaleDeg = 4.0

// scaleHighDeg is the degree of the dense refinement instance: with a
// mean degree past fm.ParallelMinDegree the per-move sharded
// gain-update kernel engages on most committed moves, so the d64
// thread series measures the parallel pass body itself rather than
// the gated serial fallback.
const scaleHighDeg = 64.0

// scaleSuffix names an instance size the way row names embed it:
// 1_000_000 → "1m", 10_000_000 → "10m", anything else → "<n>v".
func scaleSuffix(n int) string {
	if n >= 1_000_000 && n%1_000_000 == 0 {
		return fmt.Sprintf("%dm", n/1_000_000)
	}
	return fmt.Sprintf("%dv", n)
}

// addScaleRows registers the -scale benchmark rows: generation,
// loading (text parse vs binary read vs mmap), and the sharded
// matching/contraction/refinement kernels at thread degrees 1/2/4/8
// (the _t<k> suffix is the thread-series convention cmd/benchdiff
// understands). Rows share one generated instance of n vertices; the
// load rows go through real files in dir. The d64 refinement series
// always runs at 10⁶ vertices regardless of n, so its rows stay
// comparable across snapshots that vary -scale-n.
func addScaleRows(add func(name string, metric float64, fn func(b *testing.B)), dir string, scaleN int) error {
	sfx := scaleSuffix(scaleN)
	p := scaleDeg / float64(scaleN-1)
	g, err := gen.GNP(scaleN, p, rng.NewFib(42))
	if err != nil {
		return err
	}
	m := float64(g.M())

	add("scale_gen_gnp"+sfx+"_d4", m, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.GNP(scaleN, p, rng.NewFib(42)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_stream_gnp"+sfx+"_d4", m, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.StreamGNP(scaleN, p, rng.NewFib(42), func(u, v int32) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Loading: the same instance as edge-list text (the parse path every
	// text format pays) and as BCSR (binary read-and-copy, and the mmap
	// fast path bisect/bisectd use for .csr inputs).
	var elBuf, csrBuf bytes.Buffer
	if err := graph.WriteEdgeList(&elBuf, g); err != nil {
		return err
	}
	if err := graph.WriteCSRFile(&csrBuf, g); err != nil {
		return err
	}
	csrPath := filepath.Join(dir, "scale.csr")
	if err := os.WriteFile(csrPath, csrBuf.Bytes(), 0o644); err != nil {
		return err
	}
	elData, csrData := elBuf.Bytes(), csrBuf.Bytes()
	add("scale_load_parse_gnp"+sfx, m, func(b *testing.B) {
		b.SetBytes(int64(len(elData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadEdgeList(bytes.NewReader(elData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_load_read_gnp"+sfx, m, func(b *testing.B) {
		b.SetBytes(int64(len(csrData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadCSRFile(bytes.NewReader(csrData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_load_mmap_gnp"+sfx, m, func(b *testing.B) {
		b.SetBytes(int64(len(csrData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cf, err := graph.OpenCSRFile(csrPath)
			if err != nil {
				b.Fatal(err)
			}
			if cf.Graph().M() != g.M() {
				b.Fatal("edge count mismatch")
			}
			if err := cf.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Matching thread series. t1 is the serial greedy sweep; t2+ is the
	// deterministic handshake kernel sharded over the degree (a different
	// algorithm by design — degrees ≥ 2 agree with each other, not with
	// t1).
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		w := matching.NewWorkspace()
		w.SetParallel(threads)
		add(fmt.Sprintf("scale_match_gnp%s_t%d", sfx, threads), 0, func(b *testing.B) {
			r := rng.NewFib(7)
			w.RandomMaximal(g, r) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RandomMaximal(g, r)
			}
		})
	}

	// Contraction thread series: identical work at every degree — the
	// sharded row-count/row-write kernel is byte-identical to the serial
	// cursor kernel — over one fixed matching.
	mate := matching.NewWorkspace().RandomMaximal(g, rng.NewFib(7))
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		w := coarsen.NewWorkspace()
		w.SetParallel(threads)
		add(fmt.Sprintf("scale_contract_gnp%s_t%d", sfx, threads), 0, func(b *testing.B) {
			contract := func() {
				w.Reset()
				if _, err := w.Contract(g, mate); err != nil {
					b.Fatal(err)
				}
			}
			contract() // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				contract()
			}
		})
	}

	// Refinement thread series: one steady-state FM pass on a warmed
	// refiner. At mean degree 4 almost every moved vertex falls below
	// fm.ParallelMinDegree, so t2+ here measures the parallel bucket
	// initialization plus the gated serial fallback of the pass body —
	// the honest sparse-instance picture.
	for _, threads := range []int{1, 2, 4, 8} {
		opts := fm.Options{ParallelDegree: threads}
		w := fm.NewRefiner()
		bis := partition.NewRandom(g, rng.NewFib(9))
		if _, _, err := w.Pass(bis, opts); err != nil {
			return err
		}
		add(fmt.Sprintf("scale_fm_pass_gnp%s_t%d", sfx, threads), 0, func(b *testing.B) {
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Pass(bis, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Dense refinement thread series: the same steady-state pass on a
	// degree-64 million-vertex instance, where nearly every committed
	// move clears fm.ParallelMinDegree and the sharded gain-update
	// kernel carries the pass body. This is the series that shows
	// multi-core speedup; on a single-core host the _t<k> rows measure
	// only the sharding overhead at degree k (see num_cpu in the
	// snapshot header).
	g64, err := gen.GNP(scaleDefaultN, scaleHighDeg/float64(scaleDefaultN-1), rng.NewFib(43))
	if err != nil {
		return err
	}
	for _, threads := range []int{1, 2, 4, 8} {
		opts := fm.Options{ParallelDegree: threads}
		w := fm.NewRefiner()
		bis := partition.NewRandom(g64, rng.NewFib(9))
		if _, _, err := w.Pass(bis, opts); err != nil {
			return err
		}
		add(fmt.Sprintf("scale_fm_pass_gnp1m_d64_t%d", threads), 0, func(b *testing.B) {
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Pass(bis, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Spectral Fiedler-solver rows: Lanczos vs power matvec counts and
	// the sharded-matvec thread series (see scenarios.go).
	return addSpectralScaleRows(add, scaleN)
}
