package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

// scaleN is the vertex count of the -scale suite: the million-vertex
// regime the compact CSR, mmap loading, and sharded kernels target.
const scaleN = 1_000_000

// scaleDeg keeps the instance sparse like the paper's families while
// still giving every kernel multi-million half-edge arrays to chew on.
const scaleDeg = 4.0

// addScaleRows registers the -scale benchmark rows: generation,
// loading (text parse vs binary read vs mmap), and the sharded
// matching/contraction/refinement kernels at thread degrees 1/2/4/8
// (the _t<k> suffix is the thread-series convention cmd/benchdiff
// understands). Rows share one generated instance; the load rows go
// through real files in dir.
func addScaleRows(add func(name string, metric float64, fn func(b *testing.B)), dir string) error {
	p := scaleDeg / float64(scaleN-1)
	g, err := gen.GNP(scaleN, p, rng.NewFib(42))
	if err != nil {
		return err
	}
	m := float64(g.M())

	add("scale_gen_gnp1m_d4", m, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.GNP(scaleN, p, rng.NewFib(42)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_stream_gnp1m_d4", m, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.StreamGNP(scaleN, p, rng.NewFib(42), func(u, v int32) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Loading: the same instance as edge-list text (the parse path every
	// text format pays) and as BCSR (binary read-and-copy, and the mmap
	// fast path bisect/bisectd use for .csr inputs).
	var elBuf, csrBuf bytes.Buffer
	if err := graph.WriteEdgeList(&elBuf, g); err != nil {
		return err
	}
	if err := graph.WriteCSRFile(&csrBuf, g); err != nil {
		return err
	}
	csrPath := filepath.Join(dir, "scale.csr")
	if err := os.WriteFile(csrPath, csrBuf.Bytes(), 0o644); err != nil {
		return err
	}
	elData, csrData := elBuf.Bytes(), csrBuf.Bytes()
	add("scale_load_parse_gnp1m", m, func(b *testing.B) {
		b.SetBytes(int64(len(elData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadEdgeList(bytes.NewReader(elData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_load_read_gnp1m", m, func(b *testing.B) {
		b.SetBytes(int64(len(csrData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadCSRFile(bytes.NewReader(csrData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("scale_load_mmap_gnp1m", m, func(b *testing.B) {
		b.SetBytes(int64(len(csrData)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cf, err := graph.OpenCSRFile(csrPath)
			if err != nil {
				b.Fatal(err)
			}
			if cf.Graph().M() != g.M() {
				b.Fatal("edge count mismatch")
			}
			if err := cf.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Matching thread series. t1 is the serial greedy sweep; t2+ is the
	// deterministic handshake kernel sharded over the degree (a different
	// algorithm by design — degrees ≥ 2 agree with each other, not with
	// t1).
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		w := matching.NewWorkspace()
		w.SetParallel(threads)
		add(fmt.Sprintf("scale_match_gnp1m_t%d", threads), 0, func(b *testing.B) {
			r := rng.NewFib(7)
			w.RandomMaximal(g, r) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RandomMaximal(g, r)
			}
		})
	}

	// Contraction thread series: identical work at every degree — the
	// sharded row-count/row-write kernel is byte-identical to the serial
	// cursor kernel — over one fixed matching.
	mate := matching.NewWorkspace().RandomMaximal(g, rng.NewFib(7))
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		w := coarsen.NewWorkspace()
		w.SetParallel(threads)
		add(fmt.Sprintf("scale_contract_gnp1m_t%d", threads), 0, func(b *testing.B) {
			contract := func() {
				w.Reset()
				if _, err := w.Contract(g, mate); err != nil {
					b.Fatal(err)
				}
			}
			contract() // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				contract()
			}
		})
	}

	// Refinement thread series: one steady-state FM pass on a warmed
	// refiner (parallel gain-bucket initialization at t2+; the pass body
	// itself is serial, so the parallel section is a minority share).
	for _, threads := range []int{1, 2, 4, 8} {
		opts := fm.Options{ParallelDegree: threads}
		w := fm.NewRefiner()
		bis := partition.NewRandom(g, rng.NewFib(9))
		if _, _, err := w.Pass(bis, opts); err != nil {
			return err
		}
		add(fmt.Sprintf("scale_fm_pass_gnp1m_t%d", threads), 0, func(b *testing.B) {
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Pass(bis, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	return nil
}
