package main

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hfm"
	"repro/internal/kway"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// kwayRun measures recursive-bisection k-way partitioning end to end
// (k−1 splits, each a full KL run on an induced subgraph, sharing one
// workspace through the kway.Options default). Metric is the k-way edge
// cut of the fixed-seed run.
func kwayRun(g *graph.Graph, k int) (float64, func(b *testing.B), error) {
	p, err := kway.Recursive(g, k, core.KL{}, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	metric := float64(p.EdgeCut())
	return metric, func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := kway.Recursive(g, k, core.KL{}, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// hfmRun measures full hypergraph-FM runs (random area-balanced start,
// passes to fixpoint) on one shared workspace — the steady state of a
// multi-start campaign over a fixed netlist. Metric is the cut-net
// count of the fixed-seed run.
func hfmRun(nl *netlist.Netlist) (float64, func(b *testing.B), error) {
	w := hfm.NewWorkspace()
	res, err := hfm.Bisect(nl, hfm.Options{Workspace: w}, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	return float64(res.CutNets), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hfm.Bisect(nl, hfm.Options{Workspace: w}, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// benchNetlist is the fixed synthetic netlist instance behind the hfm
// rows: 400 cells to match the graph families' reduced scale.
func benchNetlist() (*netlist.Netlist, error) {
	return netlist.Random(netlist.RandomOptions{
		Cells: 400, Nets: 600, MaxPins: 5, MaxArea: 3, Locality: 0.5,
	}, rng.NewFib(42))
}

// spectralSolverOpts are the scale-row solver configurations. The
// Lanczos basis is sized so the planted instance converges without a
// restart; the power budget is far above what its own iterate-change
// criterion needs on the same instance.
func spectralLanczosOpts() spectral.Options {
	return spectral.Options{MaxBasis: 48, MaxIters: 20_000}
}

func spectralPowerOpts() spectral.Options {
	return spectral.Options{DisableLanczos: true, MaxIters: 100_000}
}

// addSpectralScaleRows registers the -scale Fiedler-solver rows. Metric
// is the matvec count of the fixed-seed solve — the unit the BENCH_8
// Lanczos-vs-power comparison is stated in, deterministic across hosts
// and thread counts.
//
// Two instances tell the two halves of the story:
//
//   - A planted-bisection BReg instance (cut n/10, degree 4) where BOTH
//     solvers converge by their own criteria and land on the identical
//     median split — the setup verifies the splits agree and errors the
//     whole capture if they ever stop doing so. The matvec ratio on
//     this pair is the headline Lanczos win.
//   - A fixed 500×200 grid, the small-spectral-gap regime: Lanczos
//     grinds to the true Fiedler vector (cut 200) while power's
//     iterate-change criterion "converges" thousands of matvecs later
//     on a vector that is still far from it (see docs/PERFORMANCE.md).
//
// The _t<k> thread series runs the Lanczos solve at degrees 1/2/4/8 on
// the BReg instance; its metric (matvecs) is identical at every degree
// because the sharded kernels are bit-deterministic.
func addSpectralScaleRows(add func(name string, metric float64, fn func(b *testing.B)), scaleN int) error {
	if scaleN < 10_000 {
		return nil // planted structure too small to be meaningful
	}
	sfx := scaleSuffix(scaleN)
	bn := scaleN &^ 1 // BReg needs an even vertex count
	g, err := gen.BReg(bn, bn/10, 4, rng.NewFib(42))
	if err != nil {
		return err
	}

	var sl, sp spectral.Stats
	lo := spectralLanczosOpts()
	lo.Stats = &sl
	bl, err := spectral.Bisect(g, lo, rng.NewFib(7))
	if err != nil {
		return fmt.Errorf("lanczos setup solve: %w", err)
	}
	po := spectralPowerOpts()
	po.Stats = &sp
	bp, err := spectral.Bisect(g, po, rng.NewFib(7))
	if err != nil {
		return fmt.Errorf("power setup solve: %w", err)
	}
	// The same-split invariant behind the BENCH_8 claim: both solvers'
	// median splits must be identical up to a global side flip.
	flipped := bl.Side(0) != bp.Side(0)
	for v := int32(0); int(v) < g.N(); v++ {
		if (bl.Side(v) != bp.Side(v)) != flipped {
			return fmt.Errorf("spectral scale rows: Lanczos and power splits diverge at vertex %d", v)
		}
	}

	add("scale_spectral_lanczos_breg"+sfx, float64(sl.MatVecs), solverRowOn(g, spectralLanczosOpts()))
	add("scale_spectral_power_breg"+sfx, float64(sp.MatVecs), solverRowOn(g, spectralPowerOpts()))

	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		w := spectral.NewWorkspace()
		w.SetParallel(threads)
		opts := spectralLanczosOpts()
		opts.Workspace = w
		add(fmt.Sprintf("scale_spectral_fiedler_breg%s_t%d", sfx, threads), float64(sl.MatVecs), func(b *testing.B) {
			defer w.Close()
			r := rng.NewFib(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := spectral.Fiedler(g, opts, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The fixed-size small-gap pair. Both solvers run the default Tol by
	// their own criteria; the matvec count is the metric, the cuts they
	// land on are recorded in docs/PERFORMANCE.md, and the capture
	// errors if the Lanczos solve stops reaching the optimal 200-edge
	// split.
	gr, err := gen.Grid(500, 200)
	if err != nil {
		return err
	}
	var gl, gp spectral.Stats
	glo := spectral.Options{MaxIters: 20_000, Stats: &gl}
	blg, err := spectral.Bisect(gr, glo, rng.NewFib(7))
	if err != nil {
		return fmt.Errorf("lanczos grid setup solve: %w", err)
	}
	if blg.Cut() != 200 {
		return fmt.Errorf("lanczos grid split cut %d, want the optimal 200", blg.Cut())
	}
	gpo := spectral.Options{DisableLanczos: true, MaxIters: 100_000, Stats: &gp}
	if _, err := spectral.Bisect(gr, gpo, rng.NewFib(7)); err != nil {
		return fmt.Errorf("power grid setup solve: %w", err)
	}
	add("scale_spectral_lanczos_grid500x200", float64(gl.MatVecs), solverRowOn(gr, spectral.Options{MaxIters: 20_000}))
	add("scale_spectral_power_grid500x200", float64(gp.MatVecs), solverRowOn(gr, spectral.Options{DisableLanczos: true, MaxIters: 100_000}))
	return nil
}

// solverRowOn is solverRow generalized over the instance.
func solverRowOn(g *graph.Graph, opts spectral.Options) func(b *testing.B) {
	return func(b *testing.B) {
		w := spectral.NewWorkspace()
		o := opts
		o.Workspace = w
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := spectral.Fiedler(g, o, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
