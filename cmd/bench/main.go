// Command bench runs the repository's reduced-scale benchmark suite and
// writes a machine-readable BENCH_*.json snapshot: per-benchmark ns/op,
// B/op, allocs/op, plus the per-table mean cuts of the paper harness.
// Every PR that touches a hot path appends a snapshot, so the
// performance trajectory of the repository is recorded next to the code
// (see docs/PERFORMANCE.md for how to read and compare snapshots).
//
// Usage:
//
//	go run ./cmd/bench -o BENCH_1.json            # full suite
//	go run ./cmd/bench -quick                     # micro-benchmarks only, stdout
//	go run ./cmd/bench -baseline old.json -o new.json
//
// -baseline embeds a previously written snapshot under "baseline" so a
// single file carries its own before/after comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/anneal"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/fsx"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/kl"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Result is one micro-benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Metric      float64 `json:"metric,omitempty"` // benchmark-specific (e.g. final cut)
}

// TableCuts records the deterministic mean cut per algorithm of one
// harness table — identical across machines and runs for a fixed seed,
// so it doubles as a results-invariance check between snapshots.
type TableCuts struct {
	ID      string             `json:"id"`
	Cuts    map[string]float64 `json:"mean_cuts"`
	Seconds map[string]float64 `json:"mean_seconds"`
}

// Snapshot is the whole BENCH_*.json document. NumCPU and GoMaxProcs
// record the host parallelism the snapshot was captured under: _t<k>
// thread-series rows are only meaningful relative to the cores that
// were actually available, and cmd/benchdiff refuses to gate ns/op
// across snapshots whose core counts differ.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Scale      string      `json:"scale"`
	GoVersion  string      `json:"go"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Benchmarks []Result    `json:"benchmarks"`
	Tables     []TableCuts `json:"tables,omitempty"`
	Baseline   *Snapshot   `json:"baseline,omitempty"`
	Notes      string      `json:"notes,omitempty"`
}

func gnpGraph(n int, deg float64, seed uint64) (*graph.Graph, error) {
	return gen.GNP(n, deg/float64(n-1), rng.NewFib(seed))
}

func record(name string, metric float64, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Metric:      metric,
	}
}

// klRun measures full KL runs (random start + refinement to fixpoint)
// on one shared workspace — the steady state of a multi-start campaign.
func klRun(g *graph.Graph) (float64, func(b *testing.B), error) {
	ws := kl.NewRefiner()
	bis, _, err := kl.Run(g, kl.Options{Workspace: ws}, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := kl.Run(g, kl.Options{Workspace: ws}, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

func fmRun(g *graph.Graph) (float64, func(b *testing.B), error) {
	ws := fm.NewRefiner()
	bis, _, err := fm.Run(g, fm.Options{Workspace: ws}, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fm.Run(g, fm.Options{Workspace: ws}, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// klPassSteady measures one steady-state KL pass on a warmed workspace —
// the allocation-free inner loop itself (allocs_per_op must be 0).
func klPassSteady(g *graph.Graph) (func(b *testing.B), error) {
	ws := kl.NewRefiner()
	bis := partition.NewRandom(g, rng.NewFib(9))
	if _, _, _, err := ws.Pass(bis, kl.Options{}); err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ws.Pass(bis, kl.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// benchSAOpts is the reduced annealing schedule shared by every SA
// benchmark row (and by the harness tables below): full-strength
// schedules are minutes-per-op, which testing.Benchmark cannot time.
func benchSAOpts() anneal.Options {
	return anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300}
}

// saRun measures full SA runs (random start, calibration, annealing to
// frozen, rebalance) on one shared workspace — the steady state of a
// multi-chain campaign.
func saRun(g *graph.Graph, opts anneal.Options) (float64, func(b *testing.B), error) {
	bis, _, err := anneal.Run(g, opts, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	return float64(bis.Cut()), func(b *testing.B) {
		opts.Workspace = anneal.NewRefiner()
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := anneal.Run(g, opts, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// saRefineSteady measures Refine alone — calibration plus the annealing
// trial loop — restarted from the same saved state each iteration, so
// the per-start NewRandom allocation is out of the picture and the row
// exposes the inner loop the way *_pass_steady_* rows do for KL/FM.
func saRefineSteady(g *graph.Graph, opts anneal.Options) (func(b *testing.B), error) {
	start := partition.NewRandom(g, rng.NewFib(9))
	sides := start.Sides()
	if _, err := anneal.Refine(start, opts, rng.NewFib(9)); err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		opts.Workspace = anneal.NewRefiner()
		r := rng.NewFib(9)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := start.SetSides(sides); err != nil {
				b.Fatal(err)
			}
			if _, err := anneal.Refine(start, opts, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

func fmPassSteady(g *graph.Graph) (func(b *testing.B), error) {
	ws := fm.NewRefiner()
	bis := partition.NewRandom(g, rng.NewFib(9))
	if _, _, err := ws.Pass(bis, fm.Options{}); err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ws.Pass(bis, fm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// genRow measures a generator end to end (RNG to validated graph); the
// metric is the edge count of the fixed-seed build, which pins the
// generated graph itself across snapshots.
func genRow(build func() (*graph.Graph, error)) (float64, func(b *testing.B), error) {
	g, err := build()
	if err != nil {
		return 0, nil, err
	}
	metric := float64(g.M())
	return metric, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// compactOnceRow measures one full compaction level through the public
// entry point — matching, contraction, random coarse bisection,
// projection, repair — the unit the compacted algorithms pay per start.
func compactOnceRow(g *graph.Graph) (float64, func(b *testing.B), error) {
	initial := func(cg *graph.Graph, r *rng.Rand) *partition.Bisection {
		return partition.NewRandom(cg, r)
	}
	bis, err := coarsen.CompactOnce(g, nil, initial, nil, rng.NewFib(7), nil)
	if err != nil {
		return 0, nil, err
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coarsen.CompactOnce(g, nil, initial, nil, r, nil); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// bisectorRun measures full composed-algorithm runs (CKL, CSA, MLKL)
// through the core registry with a per-campaign workspace — the steady
// state the harness and the parallel drivers run in.
func bisectorRun(alg core.Bisector, g *graph.Graph) (float64, func(b *testing.B), error) {
	bis, err := core.WithWorkspace(alg).Bisect(g, rng.NewFib(7))
	if err != nil {
		return 0, nil, err
	}
	return float64(bis.Cut()), func(b *testing.B) {
		a := core.WithWorkspace(alg)
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Bisect(g, r); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

func tableCuts(t harness.Table) (TableCuts, error) {
	cfg := harness.Config{
		Seed: 1989, Starts: 2,
		SAOpts: anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300},
	}
	res, err := harness.Run(t, cfg)
	if err != nil {
		return TableCuts{}, err
	}
	tc := TableCuts{ID: t.ID, Cuts: map[string]float64{}, Seconds: map[string]float64{}}
	for _, name := range res.Algorithms {
		tc.Cuts[name] = res.MeanCut(name)
		tc.Seconds[name] = res.MeanSeconds(name)
	}
	return tc, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "write the snapshot to this file (default stdout)")
	baseline := flag.String("baseline", "", "embed this previously written snapshot as the baseline")
	quick := flag.Bool("quick", false, "micro-benchmarks only; skip the harness tables")
	scale := flag.Bool("scale", false, "add the large-scale suite (generation, parse/read/mmap loading, threaded kernels)")
	scaleVerts := flag.Int("scale-n", scaleDefaultN, "vertex count for the -scale suite (up to 10 000 000)")
	notes := flag.String("notes", "", "free-form note stored in the snapshot")
	flag.Parse()
	if *scaleVerts < 2 || *scaleVerts > scaleMaxN {
		return fmt.Errorf("-scale-n %d out of range [2,%d]", *scaleVerts, scaleMaxN)
	}

	scaleTag := "reduced"
	if *scale {
		scaleTag = "reduced+" + scaleSuffix(*scaleVerts)
	}
	snap := Snapshot{
		Schema:     "repro-bench/v1",
		Scale:      scaleTag,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Notes:      *notes,
	}

	// The KL Gnp pair covers the paper's sparse families; the degree-16
	// instance shows the scan optimizations where adjacency lists are
	// long enough to matter (see docs/PERFORMANCE.md).
	type def struct {
		name   string
		metric float64
		fn     func(b *testing.B)
	}
	var defs []def
	add := func(name string, metric float64, fn func(b *testing.B)) {
		defs = append(defs, def{name, metric, fn})
	}
	g25, err := gnpGraph(400, 2.5, 42)
	if err != nil {
		return err
	}
	g40, err := gnpGraph(400, 4.0, 42)
	if err != nil {
		return err
	}
	g160, err := gnpGraph(400, 16.0, 42)
	if err != nil {
		return err
	}
	cut, fn, err := klRun(g25)
	if err != nil {
		return err
	}
	add("kl_run_gnp400_d2.5", cut, fn)
	if cut, fn, err = klRun(g40); err != nil {
		return err
	}
	add("kl_run_gnp400_d4.0", cut, fn)
	if cut, fn, err = klRun(g160); err != nil {
		return err
	}
	add("kl_run_gnp400_d16", cut, fn)
	if cut, fn, err = fmRun(g40); err != nil {
		return err
	}
	add("fm_run_gnp400_d4.0", cut, fn)
	steady, err := klPassSteady(g40)
	if err != nil {
		return err
	}
	add("kl_pass_steady_gnp400_d4.0", 0, steady)
	if steady, err = fmPassSteady(g40); err != nil {
		return err
	}
	add("fm_pass_steady_gnp400_d4.0", 0, steady)

	// The SA families: the annealing trial loop is degree-insensitive
	// (one uniformly random vertex per trial), so one Gnp instance plus
	// one regular planted-bisection instance covers the paper's SA rows.
	gbreg, err := gen.BReg(400, 8, 4, rng.NewFib(42))
	if err != nil {
		return err
	}
	if cut, fn, err = saRun(g40, benchSAOpts()); err != nil {
		return err
	}
	add("sa_run_gnp400_d4.0", cut, fn)
	if cut, fn, err = saRun(gbreg, benchSAOpts()); err != nil {
		return err
	}
	add("sa_run_breg400_d4", cut, fn)
	if steady, err = saRefineSteady(g40, benchSAOpts()); err != nil {
		return err
	}
	add("sa_refine_steady_gnp400_d4.0", 0, steady)

	// Generator rows: RNG to validated graph, pinned by edge count. These
	// time the construction fast path itself (degree-prepass CSR layout
	// versus builder sort-and-merge).
	m, fn, err := genRow(func() (*graph.Graph, error) {
		return gen.GNP(400, 4.0/399.0, rng.NewFib(42))
	})
	if err != nil {
		return err
	}
	add("gen_gnp400_d4.0", m, fn)
	if m, fn, err = genRow(func() (*graph.Graph, error) {
		return gen.BReg(400, 8, 4, rng.NewFib(42))
	}); err != nil {
		return err
	}
	add("gen_breg400_d4", m, fn)
	p2set, err := gen.TwoSetForAvgDegree(400, 4.0, 16)
	if err != nil {
		return err
	}
	if m, fn, err = genRow(func() (*graph.Graph, error) {
		return gen.TwoSet(400, p2set, p2set, 16, rng.NewFib(42))
	}); err != nil {
		return err
	}
	add("gen_2set400_d4", m, fn)

	// Compaction rows: the paper's Section V pipeline, from the single
	// compaction level the CKL/CSA algorithms pay per start up to the
	// composed algorithms themselves.
	if cut, fn, err = compactOnceRow(g25); err != nil {
		return err
	}
	add("compact_once_gnp400_d2.5", cut, fn)
	if cut, fn, err = compactOnceRow(gbreg); err != nil {
		return err
	}
	add("compact_once_breg400_d4", cut, fn)
	if cut, fn, err = bisectorRun(core.Compacted{Inner: core.KL{}}, g25); err != nil {
		return err
	}
	add("ckl_run_gnp400_d2.5", cut, fn)
	if cut, fn, err = bisectorRun(core.Compacted{Inner: core.KL{}}, g40); err != nil {
		return err
	}
	add("ckl_run_gnp400_d4.0", cut, fn)
	if cut, fn, err = bisectorRun(core.Compacted{Inner: core.SA{Opts: benchSAOpts()}}, g40); err != nil {
		return err
	}
	add("csa_run_gnp400_d4.0", cut, fn)
	if cut, fn, err = bisectorRun(core.Compacted{Inner: core.SA{Opts: benchSAOpts()}}, gbreg); err != nil {
		return err
	}
	add("csa_run_breg400_d4", cut, fn)
	if cut, fn, err = bisectorRun(core.Multilevel{Inner: core.KL{}}, g40); err != nil {
		return err
	}
	add("mlkl_run_gnp400_d4.0", cut, fn)
	// The spectral-initialization ablation pair: identical multilevel
	// pipeline, coarsest level seeded from the Fiedler median split
	// instead of a random start. Compare against mlkl_run_gnp400_d4.0.
	if cut, fn, err = bisectorRun(core.Multilevel{
		Inner: core.KL{},
		Opts:  &coarsen.MultilevelOptions{SpectralInit: true},
	}, g40); err != nil {
		return err
	}
	add("mlkl_spec_run_gnp400_d4.0", cut, fn)

	// First-class scenario rows for the k-way and hypergraph engines.
	if cut, fn, err = kwayRun(g40, 8); err != nil {
		return err
	}
	add("kway_rb8_gnp400_d4.0", cut, fn)
	nl, err := benchNetlist()
	if err != nil {
		return err
	}
	if cut, fn, err = hfmRun(nl); err != nil {
		return err
	}
	add("hfm_run_nl400", cut, fn)

	// Rows that exist only in trees with the workspace arena API (the
	// baseline build stubs this out so snapshots stay comparable).
	addExtraRows(add, gbreg)

	if *scale {
		dir, err := os.MkdirTemp("", "bench-scale-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Fprintf(os.Stderr, "bench: generating the %s-vertex scale instance...\n", scaleSuffix(*scaleVerts))
		if err := addScaleRows(add, dir, *scaleVerts); err != nil {
			return err
		}
	}

	for _, d := range defs {
		fmt.Fprintf(os.Stderr, "bench %-28s ", d.name)
		res := record(d.name, d.metric, d.fn)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %4d allocs/op\n", res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		snap.Benchmarks = append(snap.Benchmarks, res)
	}

	if !*quick {
		for _, t := range []harness.Table{
			harness.GnpTable(400, []float64{2.5, 4.0}, 2),
			harness.BRegTable(400, 3, []int{2, 16}, 2),
			harness.LadderTable([]int{34, 100}),
		} {
			fmt.Fprintf(os.Stderr, "table %s\n", t.ID)
			tc, err := tableCuts(t)
			if err != nil {
				return err
			}
			snap.Tables = append(snap.Tables, tc)
		}
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		var base Snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline: %w", err)
		}
		base.Baseline = nil // never nest more than one level
		snap.Baseline = &base
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := fsx.WriteFileAtomic(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	return nil
}
