// Command bench runs the repository's reduced-scale benchmark suite and
// writes a machine-readable BENCH_*.json snapshot: per-benchmark ns/op,
// B/op, allocs/op, plus the per-table mean cuts of the paper harness.
// Every PR that touches a hot path appends a snapshot, so the
// performance trajectory of the repository is recorded next to the code
// (see docs/PERFORMANCE.md for how to read and compare snapshots).
//
// Usage:
//
//	go run ./cmd/bench -o BENCH_1.json            # full suite
//	go run ./cmd/bench -quick                     # micro-benchmarks only, stdout
//	go run ./cmd/bench -baseline old.json -o new.json
//
// -baseline embeds a previously written snapshot under "baseline" so a
// single file carries its own before/after comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/anneal"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/kl"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Result is one micro-benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Metric      float64 `json:"metric,omitempty"` // benchmark-specific (e.g. final cut)
}

// TableCuts records the deterministic mean cut per algorithm of one
// harness table — identical across machines and runs for a fixed seed,
// so it doubles as a results-invariance check between snapshots.
type TableCuts struct {
	ID      string             `json:"id"`
	Cuts    map[string]float64 `json:"mean_cuts"`
	Seconds map[string]float64 `json:"mean_seconds"`
}

// Snapshot is the whole BENCH_*.json document.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Scale      string      `json:"scale"`
	GoVersion  string      `json:"go"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Result    `json:"benchmarks"`
	Tables     []TableCuts `json:"tables,omitempty"`
	Baseline   *Snapshot   `json:"baseline,omitempty"`
	Notes      string      `json:"notes,omitempty"`
}

func mustGNP(n int, deg float64, seed uint64) *graph.Graph {
	g, err := gen.GNP(n, deg/float64(n-1), rng.NewFib(seed))
	if err != nil {
		panic(err)
	}
	return g
}

func record(name string, metric float64, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Metric:      metric,
	}
}

// klRun measures full KL runs (random start + refinement to fixpoint)
// on one shared workspace — the steady state of a multi-start campaign.
func klRun(g *graph.Graph) (float64, func(b *testing.B)) {
	ws := kl.NewRefiner()
	bis, _, err := kl.Run(g, kl.Options{Workspace: ws}, rng.NewFib(7))
	if err != nil {
		panic(err)
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := kl.Run(g, kl.Options{Workspace: ws}, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fmRun(g *graph.Graph) (float64, func(b *testing.B)) {
	ws := fm.NewRefiner()
	bis, _, err := fm.Run(g, fm.Options{Workspace: ws}, rng.NewFib(7))
	if err != nil {
		panic(err)
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fm.Run(g, fm.Options{Workspace: ws}, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// klPassSteady measures one steady-state KL pass on a warmed workspace —
// the allocation-free inner loop itself (allocs_per_op must be 0).
func klPassSteady(g *graph.Graph) func(b *testing.B) {
	ws := kl.NewRefiner()
	bis := partition.NewRandom(g, rng.NewFib(9))
	if _, _, _, err := ws.Pass(bis, kl.Options{}); err != nil {
		panic(err)
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ws.Pass(bis, kl.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSAOpts is the reduced annealing schedule shared by every SA
// benchmark row (and by the harness tables below): full-strength
// schedules are minutes-per-op, which testing.Benchmark cannot time.
func benchSAOpts() anneal.Options {
	return anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300}
}

// saRun measures full SA runs (random start, calibration, annealing to
// frozen, rebalance) on one shared workspace — the steady state of a
// multi-chain campaign.
func saRun(g *graph.Graph, opts anneal.Options) (float64, func(b *testing.B)) {
	bis, _, err := anneal.Run(g, opts, rng.NewFib(7))
	if err != nil {
		panic(err)
	}
	return float64(bis.Cut()), func(b *testing.B) {
		opts.Workspace = anneal.NewRefiner()
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := anneal.Run(g, opts, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// saRefineSteady measures Refine alone — calibration plus the annealing
// trial loop — restarted from the same saved state each iteration, so
// the per-start NewRandom allocation is out of the picture and the row
// exposes the inner loop the way *_pass_steady_* rows do for KL/FM.
func saRefineSteady(g *graph.Graph, opts anneal.Options) func(b *testing.B) {
	start := partition.NewRandom(g, rng.NewFib(9))
	sides := start.Sides()
	if _, err := anneal.Refine(start, opts, rng.NewFib(9)); err != nil {
		panic(err)
	}
	return func(b *testing.B) {
		opts.Workspace = anneal.NewRefiner()
		r := rng.NewFib(9)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := start.SetSides(sides); err != nil {
				b.Fatal(err)
			}
			if _, err := anneal.Refine(start, opts, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fmPassSteady(g *graph.Graph) func(b *testing.B) {
	ws := fm.NewRefiner()
	bis := partition.NewRandom(g, rng.NewFib(9))
	if _, _, err := ws.Pass(bis, fm.Options{}); err != nil {
		panic(err)
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ws.Pass(bis, fm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// genRow measures a generator end to end (RNG to validated graph); the
// metric is the edge count of the fixed-seed build, which pins the
// generated graph itself across snapshots.
func genRow(build func() (*graph.Graph, error)) (float64, func(b *testing.B)) {
	g, err := build()
	if err != nil {
		panic(err)
	}
	metric := float64(g.M())
	return metric, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compactOnceRow measures one full compaction level through the public
// entry point — matching, contraction, random coarse bisection,
// projection, repair — the unit the compacted algorithms pay per start.
func compactOnceRow(g *graph.Graph) (float64, func(b *testing.B)) {
	initial := func(cg *graph.Graph, r *rng.Rand) *partition.Bisection {
		return partition.NewRandom(cg, r)
	}
	bis, err := coarsen.CompactOnce(g, nil, initial, nil, rng.NewFib(7), nil)
	if err != nil {
		panic(err)
	}
	return float64(bis.Cut()), func(b *testing.B) {
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coarsen.CompactOnce(g, nil, initial, nil, r, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// bisectorRun measures full composed-algorithm runs (CKL, CSA, MLKL)
// through the core registry with a per-campaign workspace — the steady
// state the harness and the parallel drivers run in.
func bisectorRun(alg core.Bisector, g *graph.Graph) (float64, func(b *testing.B)) {
	bis, err := core.WithWorkspace(alg).Bisect(g, rng.NewFib(7))
	if err != nil {
		panic(err)
	}
	return float64(bis.Cut()), func(b *testing.B) {
		a := core.WithWorkspace(alg)
		r := rng.NewFib(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Bisect(g, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func tableCuts(t harness.Table) TableCuts {
	cfg := harness.Config{
		Seed: 1989, Starts: 2,
		SAOpts: anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300},
	}
	res, err := harness.Run(t, cfg)
	if err != nil {
		panic(err)
	}
	tc := TableCuts{ID: t.ID, Cuts: map[string]float64{}, Seconds: map[string]float64{}}
	for _, name := range res.Algorithms {
		tc.Cuts[name] = res.MeanCut(name)
		tc.Seconds[name] = res.MeanSeconds(name)
	}
	return tc
}

func main() {
	out := flag.String("o", "", "write the snapshot to this file (default stdout)")
	baseline := flag.String("baseline", "", "embed this previously written snapshot as the baseline")
	quick := flag.Bool("quick", false, "micro-benchmarks only; skip the harness tables")
	notes := flag.String("notes", "", "free-form note stored in the snapshot")
	flag.Parse()

	snap := Snapshot{
		Schema:    "repro-bench/v1",
		Scale:     "reduced",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Notes:     *notes,
	}

	// The KL Gnp pair covers the paper's sparse families; the degree-16
	// instance shows the scan optimizations where adjacency lists are
	// long enough to matter (see docs/PERFORMANCE.md).
	type def struct {
		name   string
		metric float64
		fn     func(b *testing.B)
	}
	var defs []def
	add := func(name string, metric float64, fn func(b *testing.B)) {
		defs = append(defs, def{name, metric, fn})
	}
	g25 := mustGNP(400, 2.5, 42)
	g40 := mustGNP(400, 4.0, 42)
	g160 := mustGNP(400, 16.0, 42)
	cut, fn := klRun(g25)
	add("kl_run_gnp400_d2.5", cut, fn)
	cut, fn = klRun(g40)
	add("kl_run_gnp400_d4.0", cut, fn)
	cut, fn = klRun(g160)
	add("kl_run_gnp400_d16", cut, fn)
	cut, fn = fmRun(g40)
	add("fm_run_gnp400_d4.0", cut, fn)
	add("kl_pass_steady_gnp400_d4.0", 0, klPassSteady(g40))
	add("fm_pass_steady_gnp400_d4.0", 0, fmPassSteady(g40))

	// The SA families: the annealing trial loop is degree-insensitive
	// (one uniformly random vertex per trial), so one Gnp instance plus
	// one regular planted-bisection instance covers the paper's SA rows.
	gbreg := func() *graph.Graph {
		g, err := gen.BReg(400, 8, 4, rng.NewFib(42))
		if err != nil {
			panic(err)
		}
		return g
	}()
	cut, fn = saRun(g40, benchSAOpts())
	add("sa_run_gnp400_d4.0", cut, fn)
	cut, fn = saRun(gbreg, benchSAOpts())
	add("sa_run_breg400_d4", cut, fn)
	add("sa_refine_steady_gnp400_d4.0", 0, saRefineSteady(g40, benchSAOpts()))

	// Generator rows: RNG to validated graph, pinned by edge count. These
	// time the construction fast path itself (degree-prepass CSR layout
	// versus builder sort-and-merge).
	m, fn := genRow(func() (*graph.Graph, error) {
		return gen.GNP(400, 4.0/399.0, rng.NewFib(42))
	})
	add("gen_gnp400_d4.0", m, fn)
	m, fn = genRow(func() (*graph.Graph, error) {
		return gen.BReg(400, 8, 4, rng.NewFib(42))
	})
	add("gen_breg400_d4", m, fn)
	p2set, err := gen.TwoSetForAvgDegree(400, 4.0, 16)
	if err != nil {
		panic(err)
	}
	m, fn = genRow(func() (*graph.Graph, error) {
		return gen.TwoSet(400, p2set, p2set, 16, rng.NewFib(42))
	})
	add("gen_2set400_d4", m, fn)

	// Compaction rows: the paper's Section V pipeline, from the single
	// compaction level the CKL/CSA algorithms pay per start up to the
	// composed algorithms themselves.
	cut, fn = compactOnceRow(g25)
	add("compact_once_gnp400_d2.5", cut, fn)
	cut, fn = compactOnceRow(gbreg)
	add("compact_once_breg400_d4", cut, fn)
	cut, fn = bisectorRun(core.Compacted{Inner: core.KL{}}, g25)
	add("ckl_run_gnp400_d2.5", cut, fn)
	cut, fn = bisectorRun(core.Compacted{Inner: core.KL{}}, g40)
	add("ckl_run_gnp400_d4.0", cut, fn)
	cut, fn = bisectorRun(core.Compacted{Inner: core.SA{Opts: benchSAOpts()}}, g40)
	add("csa_run_gnp400_d4.0", cut, fn)
	cut, fn = bisectorRun(core.Compacted{Inner: core.SA{Opts: benchSAOpts()}}, gbreg)
	add("csa_run_breg400_d4", cut, fn)
	cut, fn = bisectorRun(core.Multilevel{Inner: core.KL{}}, g40)
	add("mlkl_run_gnp400_d4.0", cut, fn)

	// Rows that exist only in trees with the workspace arena API (the
	// baseline build stubs this out so snapshots stay comparable).
	addExtraRows(add, gbreg)

	for _, d := range defs {
		fmt.Fprintf(os.Stderr, "bench %-28s ", d.name)
		res := record(d.name, d.metric, d.fn)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %4d allocs/op\n", res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		snap.Benchmarks = append(snap.Benchmarks, res)
	}

	if !*quick {
		for _, t := range []harness.Table{
			harness.GnpTable(400, []float64{2.5, 4.0}, 2),
			harness.BRegTable(400, 3, []int{2, 16}, 2),
			harness.LadderTable([]int{34, 100}),
		} {
			fmt.Fprintf(os.Stderr, "table %s\n", t.ID)
			snap.Tables = append(snap.Tables, tableCuts(t))
		}
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base Snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		snap.Baseline = &base
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
