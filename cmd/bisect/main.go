// Command bisect partitions a graph file with a chosen algorithm and
// reports the cut, balance, and timing.
//
// Usage:
//
//	bisect -in graph.el [-format edgelist|metis] [-alg ckl] [-starts 2]
//	       [-seed 1989] [-out sides.txt] [-validate]
//	       [-trace events.jsonl] [-trace-format jsonl|csv] [-trace-timing]
//
// The output file (if requested) has one line per vertex: "<id> <side>".
// -trace streams per-pass/per-temperature/per-level events ("-" =
// stdout); see docs/OBSERVABILITY.md for the schema. Without
// -trace-timing the stream is byte-identical across runs of one seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	bisect "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bisect:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input graph file (required)")
	format := flag.String("format", "", "input format: edgelist, metis, json (default: by extension)")
	alg := flag.String("alg", "ckl", "algorithm: "+strings.Join(bisect.BisectorNames(), ", "))
	starts := flag.Int("starts", 2, "number of random starts (best kept)")
	seed := flag.Uint64("seed", 1989, "random seed")
	out := flag.String("out", "", "write per-vertex side assignment to this file")
	validate := flag.Bool("validate", false, "re-verify the result from scratch before reporting")
	tracePath := flag.String("trace", "", "stream trace events to this file (\"-\" = stdout); see docs/OBSERVABILITY.md")
	traceFormat := flag.String("trace-format", "jsonl", "trace output format: jsonl or csv")
	traceTiming := flag.Bool("trace-timing", false, "include wall-clock/allocation counters in the trace (non-deterministic)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var g *bisect.Graph
	switch detectFormat(*format, *in) {
	case "metis":
		g, err = bisect.ReadMETIS(f)
	case "json":
		data, rerr := os.ReadFile(*in)
		if rerr != nil {
			return rerr
		}
		g, err = bisect.UnmarshalGraph(data)
	default:
		g, err = bisect.ReadEdgeList(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f\n", g.N(), g.M(), g.AvgDegree())

	a, err := bisect.NewBisector(*alg)
	if err != nil {
		return err
	}

	// Optional tracing: every pass/temperature/level event streams to
	// the chosen sink; the driver's own summary event goes last.
	var obs bisect.TraceObserver
	var flushTrace func() error
	if *tracePath != "" {
		w := os.Stdout
		if *tracePath != "-" {
			tf, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer tf.Close()
			w = tf
		}
		switch *traceFormat {
		case "jsonl":
			j := bisect.NewTraceJSONL(w)
			j.Timing = *traceTiming
			obs, flushTrace = j, j.Err
		case "csv":
			c := bisect.NewTraceCSV(w)
			c.Timing = *traceTiming
			obs, flushTrace = c, c.Flush
		default:
			return fmt.Errorf("unknown -trace-format %q (want jsonl or csv)", *traceFormat)
		}
	}

	r := bisect.NewRand(*seed)
	var memBefore runtime.MemStats
	if obs != nil {
		runtime.ReadMemStats(&memBefore)
	}
	t0 := time.Now()
	best, err := bisect.BestOf{Inner: a, Starts: *starts, Observer: obs}.Bisect(g, r)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	if obs != nil {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		obs.Observe(bisect.TraceEvent{
			Type: "run_done", Algo: "bisect", Index: *starts,
			Cut: best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
			ElapsedNS:  elapsed.Nanoseconds(),
			AllocBytes: memAfter.TotalAlloc - memBefore.TotalAlloc,
		})
		if err := flushTrace(); err != nil {
			return fmt.Errorf("writing trace: %v", err)
		}
		if *tracePath != "-" {
			fmt.Printf("trace written to %s (%s)\n", *tracePath, *traceFormat)
		}
	}

	if *validate {
		if err := best.Validate(); err != nil {
			return fmt.Errorf("validation failed: %v", err)
		}
	}
	n0, n1 := best.CountSides()
	fmt.Printf("algorithm: %s (best of %d starts)\n", *alg, *starts)
	fmt.Printf("cut: %d\n", best.Cut())
	fmt.Printf("sides: %d / %d (weights %d / %d)\n", n0, n1, best.SideWeight(0), best.SideWeight(1))
	fmt.Printf("time: %s\n", elapsed.Round(time.Millisecond))

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		for v := int32(0); int(v) < g.N(); v++ {
			if _, err := fmt.Fprintf(of, "%d %d\n", v, best.Side(v)); err != nil {
				return err
			}
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	return nil
}

func detectFormat(explicit, path string) string {
	if explicit != "" {
		return explicit
	}
	switch {
	case strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph"):
		return "metis"
	case strings.HasSuffix(path, ".json"):
		return "json"
	default:
		return "edgelist"
	}
}
