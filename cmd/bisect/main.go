// Command bisect partitions a graph file with a chosen algorithm and
// reports the cut, balance, and timing.
//
// Usage:
//
//	bisect -in graph.el [-format edgelist|metis|json|csr] [-alg ckl]
//	       [-starts 2] [-seed 1989] [-threads 1] [-out sides.txt]
//	       [-validate] [-timeout 30s] [-budget N]
//	       [-trace events.jsonl] [-trace-format jsonl|csv] [-trace-timing]
//
// Binary CSR inputs (.csr, written by gengraph -format csr) are
// memory-mapped rather than parsed, so million-vertex graphs load in
// milliseconds. -threads shards the matching, contraction, and
// gain-bucket kernels within each run; results are identical for every
// thread count ≥ 2 (and for 1 vs many on graphs below the parallel
// threshold).
//
// The output file (if requested) has one line per vertex: "<id> <side>".
// -trace streams per-pass/per-temperature/per-level events ("-" =
// stdout); see docs/OBSERVABILITY.md for the schema. Without
// -trace-timing the stream is byte-identical across runs of one seed.
//
// A run interrupted by -timeout, -budget, SIGINT, or SIGTERM still
// reports (and writes) the best bisection found so far, then exits with
// code 3 so scripts can tell "stopped early with a valid result" from
// success (0) and failure (1). See docs/ROBUSTNESS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	bisect "repro"
	"repro/internal/fsx"
)

// exitInterrupted is the exit code for runs stopped by a timeout,
// budget, or signal that still produced a valid best-so-far result.
const exitInterrupted = 3

func main() {
	interrupted, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisect:", err)
		os.Exit(1)
	}
	if interrupted {
		os.Exit(exitInterrupted)
	}
}

func run() (interrupted bool, err error) {
	in := flag.String("in", "", "input graph file (required)")
	format := flag.String("format", "", "input format: edgelist, metis, json, csr (default: by extension)")
	alg := flag.String("alg", "ckl", "algorithm: "+strings.Join(bisect.BisectorNames(), ", "))
	starts := flag.Int("starts", 2, "number of random starts (best kept)")
	seed := flag.Uint64("seed", 1989, "random seed")
	threads := flag.Int("threads", 1, "goroutines for within-run kernels (matching, contraction, refinement pass body); results are identical at any value")
	out := flag.String("out", "", "write per-vertex side assignment to this file")
	validate := flag.Bool("validate", false, "re-verify the result from scratch before reporting")
	timeout := flag.Duration("timeout", 0, "stop at the next checkpoint after this long, keeping the best-so-far result (0 = none)")
	budget := flag.Int64("budget", 0, "stop after this many checkpoint polls, keeping the best-so-far result (0 = unlimited)")
	tracePath := flag.String("trace", "", "stream trace events to this file (\"-\" = stdout); see docs/OBSERVABILITY.md")
	traceFormat := flag.String("trace-format", "jsonl", "trace output format: jsonl or csv")
	traceTiming := flag.Bool("trace-timing", false, "include wall-clock/allocation counters in the trace (non-deterministic)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		return false, fmt.Errorf("missing -in")
	}
	var g *bisect.Graph
	switch detectFormat(*format, *in) {
	case "csr":
		// BCSR files are memory-mapped: the graph's edge arrays live in
		// the page cache, so the mapping must stay open for the whole run.
		cf, oerr := bisect.OpenCSRFile(*in)
		if oerr != nil {
			return false, oerr
		}
		defer cf.Close()
		g = cf.Graph()
	case "metis":
		g, err = readVia(*in, bisect.ReadMETIS)
	case "json":
		data, rerr := os.ReadFile(*in)
		if rerr != nil {
			return false, rerr
		}
		g, err = bisect.UnmarshalGraph(data)
	default:
		g, err = readVia(*in, bisect.ReadEdgeList)
	}
	if err != nil {
		return false, err
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f\n", g.N(), g.M(), g.AvgDegree())

	a, err := bisect.NewBisector(*alg)
	if err != nil {
		return false, err
	}

	// SIGINT/SIGTERM and -timeout cancel the same context; the
	// algorithms stop at their next checkpoint and hand back their
	// best-so-far bisection, which is reported below as usual.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctl := bisect.NewRunControl(ctx, *budget)

	// Optional tracing: every pass/temperature/level event streams to
	// the chosen sink; the driver's own summary event goes last. File
	// sinks are written atomically — the trace appears only on commit,
	// never as a torn partial file.
	var obs bisect.TraceObserver
	var flushTrace func() error
	var traceFile *fsx.AtomicFile
	if *tracePath != "" {
		var w io.Writer = os.Stdout
		if *tracePath != "-" {
			tf, err := fsx.NewAtomicFile(*tracePath, 0o644)
			if err != nil {
				return false, err
			}
			defer tf.Abort()
			traceFile = tf
			w = tf
		}
		switch *traceFormat {
		case "jsonl":
			j := bisect.NewTraceJSONL(w)
			j.Timing = *traceTiming
			obs, flushTrace = j, j.Err
		case "csv":
			c := bisect.NewTraceCSV(w)
			c.Timing = *traceTiming
			obs, flushTrace = c, c.Flush
		default:
			return false, fmt.Errorf("unknown -trace-format %q (want jsonl or csv)", *traceFormat)
		}
	}

	r := bisect.NewRand(*seed)
	var memBefore runtime.MemStats
	if obs != nil {
		runtime.ReadMemStats(&memBefore)
	}
	t0 := time.Now()
	runner := bisect.WithControl(bisect.BestOf{Inner: bisect.WithParallel(a, *threads), Starts: *starts, Observer: obs}, ctl)
	best, err := runner.Bisect(g, r)
	if err != nil {
		if !bisect.IsStopError(err) || best == nil {
			return false, err
		}
		interrupted = true
		fmt.Fprintf(os.Stderr, "bisect: interrupted (%v); reporting best-so-far result\n", err)
	}
	elapsed := time.Since(t0)
	if obs != nil {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		obs.Observe(bisect.TraceEvent{
			Type: "run_done", Algo: "bisect", Index: *starts,
			Cut: best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
			ElapsedNS:  elapsed.Nanoseconds(),
			AllocBytes: memAfter.TotalAlloc - memBefore.TotalAlloc,
		})
		if err := flushTrace(); err != nil {
			return false, fmt.Errorf("writing trace: %v", err)
		}
		if traceFile != nil {
			if err := traceFile.Commit(); err != nil {
				return false, fmt.Errorf("writing trace: %v", err)
			}
		}
		if *tracePath != "-" {
			fmt.Printf("trace written to %s (%s)\n", *tracePath, *traceFormat)
		}
	}

	if *validate {
		if err := best.Validate(); err != nil {
			return false, fmt.Errorf("validation failed: %v", err)
		}
	}
	n0, n1 := best.CountSides()
	fmt.Printf("algorithm: %s (best of %d starts)\n", *alg, *starts)
	fmt.Printf("cut: %d\n", best.Cut())
	fmt.Printf("sides: %d / %d (weights %d / %d)\n", n0, n1, best.SideWeight(0), best.SideWeight(1))
	fmt.Printf("time: %s\n", elapsed.Round(time.Millisecond))

	if *out != "" {
		of, err := fsx.NewAtomicFile(*out, 0o644)
		if err != nil {
			return false, err
		}
		defer of.Abort()
		for v := int32(0); int(v) < g.N(); v++ {
			if _, err := fmt.Fprintf(of, "%d %d\n", v, best.Side(v)); err != nil {
				return false, err
			}
		}
		if err := of.Commit(); err != nil {
			return false, err
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	return interrupted, nil
}

func detectFormat(explicit, path string) string {
	if explicit != "" {
		return explicit
	}
	switch {
	case strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph"):
		return "metis"
	case strings.HasSuffix(path, ".json"):
		return "json"
	case strings.HasSuffix(path, ".csr") || strings.HasSuffix(path, ".bcsr"):
		return "csr"
	default:
		return "edgelist"
	}
}

// readVia opens path and parses it with the given stream reader.
func readVia(path string, read func(io.Reader) (*bisect.Graph, error)) (*bisect.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return read(f)
}
