// Command bisect partitions a graph file with a chosen algorithm and
// reports the cut, balance, and timing.
//
// Usage:
//
//	bisect -in graph.el [-format edgelist|metis] [-alg ckl] [-starts 2]
//	       [-seed 1989] [-out sides.txt] [-validate]
//
// The output file (if requested) has one line per vertex: "<id> <side>".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	bisect "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bisect:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input graph file (required)")
	format := flag.String("format", "", "input format: edgelist, metis, json (default: by extension)")
	alg := flag.String("alg", "ckl", "algorithm: "+strings.Join(bisect.BisectorNames(), ", "))
	starts := flag.Int("starts", 2, "number of random starts (best kept)")
	seed := flag.Uint64("seed", 1989, "random seed")
	out := flag.String("out", "", "write per-vertex side assignment to this file")
	validate := flag.Bool("validate", false, "re-verify the result from scratch before reporting")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var g *bisect.Graph
	switch detectFormat(*format, *in) {
	case "metis":
		g, err = bisect.ReadMETIS(f)
	case "json":
		data, rerr := os.ReadFile(*in)
		if rerr != nil {
			return rerr
		}
		g, err = bisect.UnmarshalGraph(data)
	default:
		g, err = bisect.ReadEdgeList(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f\n", g.N(), g.M(), g.AvgDegree())

	a, err := bisect.NewBisector(*alg)
	if err != nil {
		return err
	}
	r := bisect.NewRand(*seed)
	t0 := time.Now()
	best, err := bisect.BestOf{Inner: a, Starts: *starts}.Bisect(g, r)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)

	if *validate {
		if err := best.Validate(); err != nil {
			return fmt.Errorf("validation failed: %v", err)
		}
	}
	n0, n1 := best.CountSides()
	fmt.Printf("algorithm: %s (best of %d starts)\n", *alg, *starts)
	fmt.Printf("cut: %d\n", best.Cut())
	fmt.Printf("sides: %d / %d (weights %d / %d)\n", n0, n1, best.SideWeight(0), best.SideWeight(1))
	fmt.Printf("time: %s\n", elapsed.Round(time.Millisecond))

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		for v := int32(0); int(v) < g.N(); v++ {
			if _, err := fmt.Fprintf(of, "%d %d\n", v, best.Side(v)); err != nil {
				return err
			}
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	return nil
}

func detectFormat(explicit, path string) string {
	if explicit != "" {
		return explicit
	}
	switch {
	case strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph"):
		return "metis"
	case strings.HasSuffix(path, ".json"):
		return "json"
	default:
		return "edgelist"
	}
}
