// Command bisectload is the load driver for cmd/bisectd: it simulates
// hundreds to thousands of concurrent clients hammering a daemon with
// bisection jobs and records throughput and latency percentiles in the
// repro-bench/v1 snapshot format (BENCH_5.json is a committed run; see
// docs/PERFORMANCE.md and docs/SERVICE.md "Operational notes").
//
//	go run ./cmd/bisectd/bisectload -self -clients 200,1000 -jobs 1000 -o BENCH_5.json
//	go run ./cmd/bisectd/bisectload -addr localhost:8080 -clients 500 -jobs 2000
//
// With -self the driver starts an in-process daemon on a loopback port,
// so one command measures a fully configured instance. Each simulated
// client loops: submit a job (unique seed), long-poll until terminal,
// record the submit→terminal latency. Queue-full 429 responses are the
// daemon's documented backpressure; the driver honors Retry-After when
// the daemon sends it (capped jittered exponential backoff otherwise)
// and reports the retry count plus retry-wait percentiles separately
// from the service latency columns. Any other error, any failed job,
// and any cut drift between jobs sharing a seed (each series cycles
// through 32 distinct seeds, so every seed is served many times) is
// fatal: a load test that loses or corrupts work has failed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsx"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/service"
)

type benchRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"` // mean submit→terminal latency
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	P50NS         float64 `json:"p50_ns"`
	P95NS         float64 `json:"p95_ns"`
	P99NS         float64 `json:"p99_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Retries429    int64   `json:"retries_429"`
	// Retry-wait percentiles are informational: time a client spent in
	// 429 backoff, per job, across all jobs in the series. They are kept
	// out of the latency columns above, which measure the daemon alone
	// (submit→terminal minus client-side backoff sleep).
	RetryP50NS float64 `json:"retry_p50_ns,omitempty"`
	RetryP95NS float64 `json:"retry_p95_ns,omitempty"`
	RetryP99NS float64 `json:"retry_p99_ns,omitempty"`
}

type snapshot struct {
	Schema     string     `json:"schema"`
	Scale      string     `json:"scale"`
	GoVersion  string     `json:"go"`
	GOARCH     string     `json:"goarch"`
	Benchmarks []benchRow `json:"benchmarks"`
	Notes      string     `json:"notes,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bisectload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "", "daemon address (host:port); empty with -self starts one in-process")
	self := flag.Bool("self", false, "start an in-process daemon on a loopback port")
	clientsFlag := flag.String("clients", "200", "comma-separated concurrent-client counts, one measured series each")
	jobs := flag.Int("jobs", 1000, "total jobs per series")
	alg := flag.String("alg", "kl", "algorithm submitted")
	starts := flag.Int("starts", 2, "starts per job")
	n := flag.Int("n", 400, "Gnp graph vertices")
	deg := flag.Float64("deg", 4.0, "Gnp average degree")
	seed := flag.Uint64("seed", 1989, "graph seed; job i runs with seed+1+i")
	queue := flag.Int("queue", 0, "in-process daemon queue depth (0 = default)")
	workers := flag.Int("workers", 0, "in-process daemon workers (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write a repro-bench/v1 snapshot here (atomic)")
	notes := flag.String("notes", "", "free-form note stored in the snapshot")
	flag.Parse()

	base := *addr
	if base == "" {
		if !*self {
			return fmt.Errorf("need -addr or -self")
		}
		srv, err := service.New(service.Config{QueueDepth: *queue, Workers: *workers})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = ln.Addr().String()
	}
	base = "http://" + strings.TrimPrefix(base, "http://")

	// One shared graph: generated locally, uploaded once, then every job
	// is a cache hit on the daemon (the content-hash cache is part of
	// what the load test exercises).
	g, err := gen.GNP(*n, *deg/float64(*n-1), rng.NewFib(*seed))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		return err
	}
	client := &http.Client{Timeout: 0}
	resp, err := client.Post(base+"/v1/graphs?format=edgelist", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	var up struct {
		Graph string `json:"graph"`
	}
	if err := decodeOK(resp, &up); err != nil {
		return fmt.Errorf("upload: %w", err)
	}

	var rows []benchRow
	for _, cs := range strings.Split(*clientsFlag, ",") {
		clients, err := strconv.Atoi(strings.TrimSpace(cs))
		if err != nil || clients <= 0 {
			return fmt.Errorf("bad -clients entry %q", cs)
		}
		row, err := runSeries(client, base, up.Graph, *alg, *starts, *seed, clients, *jobs, *n, *deg)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		fmt.Printf("%-40s  %7.1f jobs/s   p50 %6.1fms   p95 %6.1fms   p99 %6.1fms   (429 retries: %d, retry wait p50/p95/p99 %.1f/%.1f/%.1fms)\n",
			row.Name, row.ThroughputRPS, row.P50NS/1e6, row.P95NS/1e6, row.P99NS/1e6,
			row.Retries429, row.RetryP50NS/1e6, row.RetryP95NS/1e6, row.RetryP99NS/1e6)
	}

	if *out != "" {
		snap := snapshot{
			Schema: "repro-bench/v1", Scale: "service",
			GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
			Benchmarks: rows, Notes: *notes,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := fsx.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}

// distinctSeeds is how many seeds a series cycles through: every seed is
// served multiple times, and any two jobs with the same seed must report
// the same cut — determinism under concurrent load is part of the test.
const distinctSeeds = 32

func runSeries(client *http.Client, base, graphRef, alg string, starts int, seed uint64, clients, jobs, n int, deg float64) (benchRow, error) {
	var (
		next       atomic.Int64
		retries    atomic.Int64
		wg         sync.WaitGroup
		mu         sync.Mutex
		latencies  []time.Duration
		retryWaits []time.Duration
		cuts       = make(map[uint64]int64) // seed → cut, for drift detection
		firstErr   error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(jobs) {
					return
				}
				jobSeed := seed + 1 + uint64(i)%distinctSeeds
				lat, retryWait, cut, err := oneJob(client, base, graphRef, alg, starts, jobSeed, &retries)
				if err != nil {
					fail(fmt.Errorf("job %d: %w", i, err))
					return
				}
				mu.Lock()
				if prev, ok := cuts[jobSeed]; ok && prev != cut {
					mu.Unlock()
					fail(fmt.Errorf("seed %d: cut drift %d vs %d", jobSeed, prev, cut))
					return
				}
				cuts[jobSeed] = cut
				latencies = append(latencies, lat)
				retryWaits = append(retryWaits, retryWait)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if firstErr != nil {
		return benchRow{}, firstErr
	}
	if len(latencies) != jobs {
		return benchRow{}, fmt.Errorf("lost jobs: %d of %d measured", len(latencies), jobs)
	}
	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	sort.Slice(retryWaits, func(i, k int) bool { return retryWaits[i] < retryWaits[k] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	pct := func(s []time.Duration, p float64) float64 {
		idx := int(p * float64(len(s)-1))
		return float64(s[idx].Nanoseconds())
	}
	return benchRow{
		Name:          fmt.Sprintf("svc_%s_gnp%d_d%g_c%d", alg, n, deg, clients),
		NsPerOp:       float64(sum.Nanoseconds()) / float64(jobs),
		P50NS:         pct(latencies, 0.50),
		P95NS:         pct(latencies, 0.95),
		P99NS:         pct(latencies, 0.99),
		ThroughputRPS: float64(jobs) / wall.Seconds(),
		Retries429:    retries.Load(),
		RetryP50NS:    pct(retryWaits, 0.50),
		RetryP95NS:    pct(retryWaits, 0.95),
		RetryP99NS:    pct(retryWaits, 0.99),
	}, nil
}

// retryBackoff computes the wait before submit attempt n (0-based
// counting of 429s already seen): the server's Retry-After header when
// present, otherwise capped exponential growth from 10ms; either way
// jittered to wait/2 + rand·wait/2 so a thundering herd of clients
// released by the same queue drain does not re-collide.
func retryBackoff(resp *http.Response, attempt int) time.Duration {
	wait := time.Duration(0)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(ra)); err == nil && secs >= 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait <= 0 {
		wait = 10 * time.Millisecond << uint(min(attempt, 10))
		if wait > time.Second {
			wait = time.Second
		}
	}
	half := wait / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// oneJob submits one job and long-polls it to a terminal state,
// returning the daemon-attributable latency (submit→terminal minus
// client-side backoff sleep), the total backoff sleep, and the final
// cut.
func oneJob(client *http.Client, base, graphRef, alg string, starts int, seed uint64, retries *atomic.Int64) (time.Duration, time.Duration, int64, error) {
	spec, _ := json.Marshal(map[string]any{
		"graph": graphRef, "algorithm": alg, "starts": starts, "seed": seed,
	})
	t0 := time.Now()
	var retryWait time.Duration
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Cut int64 `json:"cut"`
		} `json:"result"`
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return 0, 0, 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Documented backpressure: honor it and retry.
			wait := retryBackoff(resp, attempt)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retries.Add(1)
			time.Sleep(wait)
			retryWait += wait
			continue
		}
		if err := decodeOK(resp, &job); err != nil {
			return 0, 0, 0, fmt.Errorf("submit: %w", err)
		}
		break
	}
	for !terminal(job.State) {
		resp, err := client.Get(base + "/v1/jobs/" + job.ID + "?wait_ms=10000")
		if err != nil {
			return 0, 0, 0, err
		}
		if err := decodeOK(resp, &job); err != nil {
			return 0, 0, 0, fmt.Errorf("poll: %w", err)
		}
	}
	lat := time.Since(t0) - retryWait
	if job.State != "done" || job.Result == nil {
		return 0, 0, 0, fmt.Errorf("job %s ended %s (%s)", job.ID, job.State, job.Error)
	}
	return lat, retryWait, job.Result.Cut, nil
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

func decodeOK(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, v)
}
