// Command bisectd is the partitioning service daemon: a stdlib-only
// net/http server exposing the bisection library as a multi-tenant HTTP
// API — graph upload with content-hash caching, a bounded job queue with
// backpressure, a fixed worker pool with reusable zero-alloc workspaces,
// per-job deadlines and deterministic checkpoint budgets, convergence
// streaming over SSE, and crash-safe job persistence. Persistence
// failures degrade rather than fail: the daemon keeps serving from
// memory, reports the state on GET /v1/readyz, and re-probes the disk
// every -persist-probe until writes heal (docs/SERVICE.md, "Degraded
// persistence").
//
// The HTTP contract is docs/SERVICE.md. Quickstart:
//
//	bisectd -addr :8080 -state /var/lib/bisectd
//	curl -s --data-binary @g.el 'localhost:8080/v1/graphs?format=edgelist'
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"graph":"sha256:…","algorithm":"ckl","seed":1989}'
//	curl -N 'localhost:8080/v1/jobs/j-000001-…/events'
//
// SIGINT/SIGTERM shut down gracefully: running jobs stop at their next
// run-control checkpoint and (with -state) are persisted back to queued,
// so a restart re-runs them to the same deterministic results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bisectd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	state := flag.String("state", "", "state directory for crash-safe persistence (empty = in-memory only)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	jobThreads := flag.Int("job-threads", 1, "threads per running job (>1 shards each job's kernels; keep workers*job-threads <= cores)")
	queue := flag.Int("queue", 64, "job-queue capacity (submissions beyond it get 429)")
	cache := flag.Int("cache", 128, "graph-cache capacity (graphs, LRU)")
	maxGraphBytes := flag.Int64("max-graph-bytes", 64<<20, "graph upload size cap")
	maxStarts := flag.Int("max-starts", 4096, "per-job cap on starts")
	persistProbe := flag.Duration("persist-probe", 2*time.Second, "degraded-persistence re-probe interval (see GET /v1/readyz)")
	flag.Parse()

	srv, err := service.New(service.Config{
		StateDir:      *state,
		Workers:       *workers,
		JobThreads:    *jobThreads,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		MaxGraphBytes: *maxGraphBytes,
		MaxStarts:     *maxStarts,
		PersistProbe:  *persistProbe,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "bisectd: listening on %s (state=%q, queue=%d)\n", *addr, *state, *queue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "bisectd: %v — shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr := httpSrv.Shutdown(ctx)
		srv.Close() // interrupts running jobs, persists them back to queued
		if shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded) {
			return shutErr
		}
		return nil
	}
}
