// Command gengraph emits instances of the paper's graph models to a file
// in the native edge-list format (or METIS, JSON, or binary CSR with
// -format).
//
// Usage:
//
//	gengraph -model breg -n 5000 -b 16 -d 3 [-seed 1] [-out g.el]
//	gengraph -model 2set -n 2000 -deg 3.5 -b 32
//	gengraph -model gnp -n 2000 -deg 4
//	gengraph -model gnp -n 1000000 -deg 8 -stream -out g.el
//	gengraph -model gnp -n 1000000 -deg 8 -format csr -out g.csr
//	gengraph -model grid -rows 32 -cols 32
//	gengraph -model ladder|ladder3n|btree|cycle|hypercube|torus ...
//
// -format csr writes the binary CSR (BCSR) layout that bisect and
// bisectd memory-map on load; see docs/PERFORMANCE.md for the format.
// -stream (gnp + edgelist only) writes edges to the output as they are
// sampled — two deterministic passes, one to count for the header and
// one to write — so million-vertex instances generate in O(1) memory
// without materializing the graph.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	bisect "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "", "breg | 2set | gnp | regular | grid | torus | ladder | ladder3n | btree | cycle | hypercube | complete | geometric | smallworld")
	n := flag.Int("n", 1000, "vertex count (breg/2set/gnp/regular/ladder*/btree/cycle/complete)")
	b := flag.Int("b", 16, "planted bisection width (breg/2set)")
	d := flag.Int("d", 3, "degree (breg/regular) or dimension (hypercube)")
	deg := flag.Float64("deg", 3.0, "target average degree (2set/gnp)")
	p := flag.Float64("p", -1, "edge probability (gnp; overrides -deg when ≥ 0)")
	rows := flag.Int("rows", 32, "rows (grid/torus)")
	cols := flag.Int("cols", 32, "cols (grid/torus)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	format := flag.String("format", "edgelist", "edgelist | metis | json | csr")
	stream := flag.Bool("stream", false, "stream edges to the output without materializing the graph (gnp, edgelist only)")
	flag.Parse()

	if *stream {
		return runStream(*model, *n, *deg, *p, *seed, *out, *format)
	}

	r := bisect.NewRand(*seed)
	var g *bisect.Graph
	var err error
	switch *model {
	case "breg":
		g, err = bisect.BReg(*n, *b, *d, r)
	case "2set":
		var pp float64
		pp, err = bisect.TwoSetForAvgDegree(*n, *deg, *b)
		if err == nil {
			g, err = bisect.TwoSet(*n, pp, pp, *b, r)
		}
	case "gnp":
		pp := *p
		if pp < 0 {
			pp = *deg / float64(*n-1)
		}
		g, err = bisect.GNP(*n, pp, r)
	case "regular":
		g, err = bisect.RandomRegular(*n, *d, r)
	case "grid":
		g, err = bisect.Grid(*rows, *cols)
	case "torus":
		g, err = bisect.Torus(*rows, *cols)
	case "ladder":
		g, err = bisect.Ladder(*n / 2)
	case "ladder3n":
		g, err = bisect.Ladder3N(*n / 3)
	case "btree":
		g, err = bisect.CompleteBinaryTree(*n)
	case "cycle":
		g, err = bisect.Cycle(*n)
	case "hypercube":
		g, err = bisect.Hypercube(*d)
	case "complete":
		g, err = bisect.Complete(*n)
	case "geometric":
		var rad float64
		rad, err = bisect.GeometricRadiusForAvgDegree(*n, *deg)
		if err == nil {
			g, err = bisect.Geometric(*n, rad, r)
		}
	case "smallworld":
		beta := *p
		if beta < 0 {
			beta = 0.1
		}
		g, err = bisect.WattsStrogatz(*n, *d, beta, r)
	case "":
		flag.Usage()
		return fmt.Errorf("missing -model")
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		err = bisect.WriteEdgeList(w, g)
	case "metis":
		err = bisect.WriteMETIS(w, g)
	case "json":
		var data []byte
		data, err = bisect.MarshalGraph(g)
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
	case "csr":
		err = bisect.WriteCSRFile(w, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gengraph: %d vertices, %d edges, avg degree %.2f\n", g.N(), g.M(), g.AvgDegree())
	return nil
}

// runStream writes a 𝒢np instance in the edge-list format as the edges
// are sampled, never holding the graph in memory. The header needs m up
// front, so the instance is enumerated twice with the same seed: the
// RNG is deterministic, so both passes visit the identical edge set.
func runStream(model string, n int, deg, p float64, seed uint64, out, format string) error {
	if model != "gnp" {
		return fmt.Errorf("-stream supports only -model gnp (got %q)", model)
	}
	if format != "edgelist" {
		return fmt.Errorf("-stream supports only -format edgelist (got %q; use the materializing path for csr/metis/json)", format)
	}
	pp := p
	if pp < 0 {
		pp = deg / float64(n-1)
	}
	m, err := bisect.StreamGNP(n, pp, bisect.NewRand(seed), func(u, v int32) error { return nil })
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "graph %d %d\n", n, m); err != nil {
		return err
	}
	if _, err := bisect.StreamGNP(n, pp, bisect.NewRand(seed), func(u, v int32) error {
		_, werr := fmt.Fprintf(bw, "e %d %d\n", u, v)
		return werr
	}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gengraph: %d vertices, %d edges, avg degree %.2f (streamed)\n", n, m, 2*float64(m)/float64(n))
	return nil
}
