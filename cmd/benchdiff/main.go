// Command benchdiff compares two benchmark snapshots produced by
// cmd/bench (BENCH_N.json) the way benchstat compares go test -bench
// outputs: for every benchmark series present in both snapshots it
// prints old and new ns/op, the delta, and the allocation columns, and
// it exits non-zero when any shared series regressed by more than the
// tolerance.
//
//	go run ./cmd/benchdiff [-tol 0.10] OLD.json NEW.json
//
// Two additional checks ride along because the snapshots carry them:
//
//   - deterministic result metrics (the "metric" field holds the cut of
//     a fixed-seed run): any difference between snapshots is reported as
//     a failure, since the benchmarked algorithms promise seed-stable
//     results across performance work;
//   - allocation regressions: a series whose allocs/op grew fails
//     regardless of tolerance (zero-alloc steady states are part of the
//     workspace contract, not a soft target).
//
// Series present in only one snapshot are listed as ADDED or REMOVED
// and excluded from the pass/fail decision — the suite grows over time
// and new rows must not read as regressions. Only an empty intersection
// of *algorithm* series is an error.
//
// Service-latency series (names starting with "svc_", produced by
// cmd/bisectd/bisectload — BENCH_5.json) are always informational:
// their ns/op is end-to-end wall-clock under hundreds of concurrent
// clients, which varies with the machine's scheduler far beyond any
// sensible tolerance. benchdiff prints their throughput and p50/p95/p99
// but never fails on them, and a snapshot holding only service series
// does not trip the empty-intersection error.
//
// Thread-scaling series (a "_t<k>" suffix: the same kernel at -threads
// 1/2/4/8, e.g. scale_match_gnp1m_t4 or scale_spectral_fiedler_breg1m_t4)
// get that treatment only for ns/op when k > 1: wall-clock depends on
// how many cores the host actually has, so it is reported and
// summarized as a parallel-efficiency table (speedup over the _t1 row
// divided by k) but never gated on. Their result metrics and allocation
// counts are host-independent — the sharded kernels promise
// bit-identical results at every degree — and stay gated at every k.
// The _t1 member is an ordinary serial benchmark, gated on all three.
//
// Snapshots since BENCH_7 stamp the capture host's num_cpu and
// gomaxprocs. When the two snapshots disagree on core count, every
// ns/op comparison reflects the host change at least as much as the
// code change, so benchdiff prints a prominent warning and refuses to
// gate on ns/op entirely — allocation and result-metric gates still
// apply, because those are host-independent. (This is also why the
// _t<k> rows of BENCH_6 are flat: that host had a single CPU, so every
// thread count ran the same one core and the rows measure sharding
// overhead, not speedup.)
//
// scripts/check.sh uses this to gate tier-2 on BENCH_(N-1) → BENCH_N.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchRow struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Metric   float64 `json:"metric,omitempty"`
	// Service-latency fields (cmd/bisectd/bisectload snapshots).
	P50NS         float64 `json:"p50_ns,omitempty"`
	P95NS         float64 `json:"p95_ns,omitempty"`
	P99NS         float64 `json:"p99_ns,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
}

// isService reports whether a row is a service-latency series, which is
// reported but never gated on.
func isService(name string) bool { return strings.HasPrefix(name, "svc_") }

// threadSeries parses a thread-scaling series name "<base>_t<k>" and
// returns its base name and thread count. ok is false for ordinary
// series.
func threadSeries(name string) (base string, k int, ok bool) {
	i := strings.LastIndex(name, "_t")
	if i < 0 || i+2 >= len(name) {
		return "", 0, false
	}
	for _, c := range name[i+2:] {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		k = k*10 + int(c-'0')
	}
	if k == 0 {
		return "", 0, false
	}
	return name[:i], k, true
}

type snapshot struct {
	Schema     string     `json:"schema"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Benchmarks []benchRow `json:"benchmarks"`
}

func load(path string) (map[string]benchRow, snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	rows := make(map[string]benchRow, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		rows[b.Name] = b
	}
	return rows, s, nil
}

func main() {
	tol := flag.Float64("tol", 0.10, "maximum tolerated ns/op regression (fraction)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRows, newSnap, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	// A core-count change means every ns/op delta measures the host at
	// least as much as the code: warn loudly and never gate on time.
	// Snapshots older than BENCH_7 carry no num_cpu (0 = unknown), which
	// cannot be distinguished from a host change — treated the same way.
	crossCore := oldSnap.NumCPU != newSnap.NumCPU || oldSnap.GoMaxProcs != newSnap.GoMaxProcs
	if crossCore {
		fmt.Printf("WARNING: snapshots were captured on different host parallelism\n"+
			"  old: num_cpu=%d gomaxprocs=%d\n  new: num_cpu=%d gomaxprocs=%d\n"+
			"  (0 = snapshot predates the num_cpu stamp)\n"+
			"  ns/op deltas are informational only and will NOT gate; allocation\n"+
			"  and result-metric gates still apply.\n\n",
			oldSnap.NumCPU, oldSnap.GoMaxProcs, newSnap.NumCPU, newSnap.GoMaxProcs)
	}

	var names, added, removed []string
	for name := range oldRows {
		if _, ok := newRows[name]; ok {
			names = append(names, name)
		} else {
			removed = append(removed, name)
		}
	}
	for name := range newRows {
		if _, ok := oldRows[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(removed)
	nonService := func(rows map[string]benchRow) int {
		c := 0
		for name := range rows {
			if !isService(name) {
				c++
			}
		}
		return c
	}
	if len(names) == 0 {
		// An empty intersection is only an error between two algorithm
		// snapshots; an algorithm snapshot vs a service-latency snapshot
		// (BENCH_4 → BENCH_5) legitimately shares nothing.
		if nonService(oldRows) > 0 && nonService(newRows) > 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no shared benchmark series")
			os.Exit(2)
		}
		fmt.Println("benchdiff: no shared series (service-latency snapshot); nothing to gate on")
	}

	failed := false
	fmt.Printf("%-34s %14s %14s %8s %12s\n", "name", "old ns/op", "new ns/op", "delta", "allocs o→n")
	for _, name := range names {
		o, n := oldRows[name], newRows[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		if isService(name) {
			// Wall-clock latency under concurrency: reported, never gated.
			fmt.Printf("%-34s %14.0f %14.0f %+7.1f%%   p99 %.1fms → %.1fms  SERVICE (informational)\n",
				name, o.NsPerOp, n.NsPerOp, delta*100, o.P99NS/1e6, n.P99NS/1e6)
			continue
		}
		if _, k, ok := threadSeries(name); ok && k > 1 {
			// Multi-thread wall-clock depends on the host's core count:
			// ns/op is reported (and summarized below), never gated. The
			// result metric and allocation count of a _t<k> row ARE
			// host-independent — the sharded kernels promise bit-identical
			// results and steady allocation at every degree — so those two
			// gates still apply. This is what pins the spectral_* thread
			// series: a matvec-count or split drift at any degree fails
			// the diff even though its wall-clock floats free.
			mark := ""
			if n.AllocsOp > o.AllocsOp {
				mark += "  ALLOC-REGRESSION"
				failed = true
			}
			if o.Metric != n.Metric {
				mark += fmt.Sprintf("  RESULT-DRIFT (%g → %g)", o.Metric, n.Metric)
				failed = true
			}
			fmt.Printf("%-34s %14.0f %14.0f %+7.1f%% %6d → %-4d  THREADS (ns informational)%s\n",
				name, o.NsPerOp, n.NsPerOp, delta*100, o.AllocsOp, n.AllocsOp, mark)
			continue
		}
		mark := ""
		if delta > *tol {
			if crossCore {
				mark = "  SLOWER (not gated: host changed)"
			} else {
				mark = "  REGRESSION"
				failed = true
			}
		}
		if n.AllocsOp > o.AllocsOp {
			mark += "  ALLOC-REGRESSION"
			failed = true
		}
		if o.Metric != n.Metric {
			mark += fmt.Sprintf("  RESULT-DRIFT (%g → %g)", o.Metric, n.Metric)
			failed = true
		}
		fmt.Printf("%-34s %14.0f %14.0f %+7.1f%% %6d → %-4d%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, o.AllocsOp, n.AllocsOp, mark)
	}
	// Series present in only one snapshot are informational: a growing
	// suite adds rows every few PRs, and that must not read as a
	// regression. They are excluded from the pass/fail decision.
	for _, name := range added {
		n := newRows[name]
		if isService(name) {
			fmt.Printf("%-34s %14s %14.0f %8s   %.1f jobs/s, p50 %.1fms p95 %.1fms p99 %.1fms  ADDED (service)\n",
				name, "-", n.NsPerOp, "-", n.ThroughputRPS, n.P50NS/1e6, n.P95NS/1e6, n.P99NS/1e6)
			continue
		}
		fmt.Printf("%-34s %14s %14.0f %8s %6s → %-4d  ADDED\n", name, "-", n.NsPerOp, "-", "-", n.AllocsOp)
	}
	for _, name := range removed {
		o := oldRows[name]
		fmt.Printf("%-34s %14.0f %14s %8s %6d → %-4s  REMOVED\n", name, o.NsPerOp, "-", "-", o.AllocsOp, "-")
	}
	printEfficiency(newRows, newSnap)
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL (tolerance %.0f%%)\n", *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (%d series within %.0f%%, %d added, %d removed)\n",
		len(names), *tol*100, len(added), len(removed))
}

// printEfficiency summarizes every thread-scaling family in the new
// snapshot: speedup of _t<k> over _t1 and parallel efficiency
// (speedup / k). Efficiency near 100% is linear scaling; on a host with
// fewer cores than k the expected value is cores/k — the header names
// the capture host's core count so the table is read against the right
// ceiling.
func printEfficiency(rows map[string]benchRow, snap snapshot) {
	type member struct {
		k  int
		ns float64
	}
	families := map[string][]member{}
	for name, r := range rows {
		if base, k, ok := threadSeries(name); ok {
			families[base] = append(families[base], member{k, r.NsPerOp})
		}
	}
	var bases []string
	for base, ms := range families {
		has1 := false
		for _, m := range ms {
			has1 = has1 || m.k == 1
		}
		if has1 && len(ms) > 1 {
			bases = append(bases, base)
		}
	}
	if len(bases) == 0 {
		return
	}
	sort.Strings(bases)
	host := "host cores unknown"
	if snap.NumCPU > 0 {
		host = fmt.Sprintf("host num_cpu=%d", snap.NumCPU)
		if snap.NumCPU == 1 {
			host += "; expect <=1.00x everywhere"
		}
	}
	fmt.Printf("\nparallel efficiency (new snapshot, speedup over _t1 / threads; %s)\n", host)
	for _, base := range bases {
		ms := families[base]
		sort.Slice(ms, func(i, j int) bool { return ms[i].k < ms[j].k })
		var t1 float64
		for _, m := range ms {
			if m.k == 1 {
				t1 = m.ns
			}
		}
		fmt.Printf("%-34s", base)
		for _, m := range ms {
			if m.k == 1 || m.ns <= 0 || t1 <= 0 {
				continue
			}
			speedup := t1 / m.ns
			fmt.Printf("  t%d: %.2fx (%3.0f%%)", m.k, speedup, 100*speedup/float64(m.k))
		}
		fmt.Println()
	}
}
