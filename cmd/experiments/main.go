// Command experiments regenerates the paper's evaluation: every appendix
// table (TL, TG, TB, T{2,5}S{25,30,35,40}, T{2,5}NP, T{2,5}B{3,4}), the
// Table-1 compaction summary, and the five Observations of Section VI.
//
// Usage:
//
//	experiments -list
//	experiments -table all [-scale paper|mid|test] [-seed 1989] [-out results.txt]
//	experiments -table T5B3
//	experiments -observations
//
// Paper-scale SA on 5000-vertex graphs is CPU-hungry (the paper's SA took
// up to 20× KL's time on a VAX; the ratio survives). -scale mid keeps the
// table structure with 1000-vertex graphs and finishes in minutes.
//
// Long campaigns can be made interruptible and resumable:
//
//	experiments -table all -checkpoint ckpts/ -timeout 2h
//
// -checkpoint names a directory holding one crash-safe progress file per
// table; rerunning the same command skips every already-completed (row,
// instance) cell. A run stopped by -timeout, -budget, SIGINT, or SIGTERM
// renders the rows finished so far and exits with code 3 (success is 0,
// failure 1). See docs/ROBUSTNESS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/anneal"
	"repro/internal/fsx"
	"repro/internal/harness"
	"repro/internal/runctl"
)

// exitInterrupted is the exit code for campaigns stopped early with
// partial (but valid and checkpointed) results.
const exitInterrupted = 3

func main() {
	interrupted, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if interrupted {
		os.Exit(exitInterrupted)
	}
}

func scaleByName(name string) (harness.Scale, error) {
	switch name {
	case "paper":
		return harness.PaperScale(), nil
	case "mid":
		return harness.Scale{
			TwoSetSizes:   []int{1000},
			BRegWidths:    []int{2, 8, 32},
			TwoSetBs:      []int{8, 32},
			GnpDegrees:    []float64{2.5, 3.0, 3.5, 4.0},
			LadderNs:      []int{34, 100, 334},
			GridDims:      []int{10, 22, 32},
			BTreeSizes:    []int{100, 254, 1022},
			GnpInstances:  3,
			BRegInstances: 3,
		}, nil
	case "test":
		return harness.TestScale(), nil
	default:
		return harness.Scale{}, fmt.Errorf("unknown scale %q (paper, mid, test)", name)
	}
}

func run() (interrupted bool, err error) {
	table := flag.String("table", "", "table ID to run, or 'all'")
	list := flag.Bool("list", false, "list table IDs and exit")
	scaleName := flag.String("scale", "mid", "experiment scale: paper | mid | test")
	seed := flag.Uint64("seed", 1989, "random seed")
	starts := flag.Int("starts", 2, "random starts per algorithm (paper: 2)")
	fullSA := flag.Bool("full-sa", false, "use the full modern JAMS schedule instead of the period-faithful budget (see EXPERIMENTS.md)")
	obs := flag.Bool("observations", false, "check the paper's five Observations (runs the needed tables)")
	out := flag.String("out", "", "also write output to this file")
	csvDir := flag.String("csv", "", "also write one CSV per table into this directory")
	jsonDir := flag.String("json", "", "also write one JSON result per table into this directory")
	parallel := flag.Int("parallel", 0, "run table rows on up to N goroutines (cuts identical; timing columns become contended wall-clock)")
	timeout := flag.Duration("timeout", 0, "stop after this long, rendering rows finished so far (0 = none)")
	budget := flag.Int64("budget", 0, "stop after this many algorithm checkpoint polls (0 = unlimited)")
	ckptDir := flag.String("checkpoint", "", "directory for per-table resume checkpoints; rerun the same command to continue an interrupted campaign")
	flag.Parse()

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return false, err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return false, err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, t := range harness.AllTables(scale) {
			fmt.Fprintf(w, "%-8s %s (%d rows)\n", t.ID, t.Title, len(t.Specs))
		}
		return false, nil
	}

	// SIGINT/SIGTERM and -timeout share one context: the harness stops
	// between cells, completed work stays checkpointed, and partial
	// tables are still rendered below.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return false, err
		}
	}

	cfg := harness.Config{Seed: *seed, Starts: *starts, SAOpts: harness.PeriodSA(), Parallel: *parallel}
	cfg.Control = runctl.New(ctx, *budget)
	if *fullSA {
		cfg.SAOpts = anneal.Options{}
	}

	if *obs {
		return runObservations(w, scale, cfg, *ckptDir)
	}
	if *table == "" {
		flag.Usage()
		return false, fmt.Errorf("missing -table (or use -list / -observations)")
	}

	var tables []harness.Table
	if *table == "all" {
		tables = harness.AllTables(scale)
	} else {
		t, ok := harness.TableByID(scale, strings.ToUpper(*table))
		if !ok {
			return false, fmt.Errorf("unknown table %q (use -list)", *table)
		}
		tables = []harness.Table{t}
	}

	var special []*harness.TableResult
	for _, t := range tables {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", t.ID, t.Title)
		res, runErr := harness.Run(t, tableConfig(cfg, t, *ckptDir))
		if runErr != nil && (!runctl.IsStop(runErr) || res == nil) {
			return false, runErr
		}
		if err := res.Render(w); err != nil {
			return false, err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				return false, err
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, res); err != nil {
				return false, err
			}
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "experiments: interrupted (%v); results above are partial%s\n",
				runErr, resumeHint(*ckptDir))
			return true, nil
		}
		if t.ID == "TL" || t.ID == "TG" || t.ID == "TB" {
			special = append(special, res)
		}
	}
	if len(special) == 3 {
		if err := harness.RenderSummary(w, "Table 1. Bisection width improvement made by compaction (best of two starts).",
			special, []string{"kl", "sa"}); err != nil {
			return false, err
		}
	}
	return false, nil
}

// tableConfig attaches a per-table checkpoint file (checkpoints are
// bound to one campaign, so each table gets its own).
func tableConfig(cfg harness.Config, t harness.Table, ckptDir string) harness.Config {
	if ckptDir != "" {
		cfg.Checkpoint = harness.NewCheckpoint(filepath.Join(ckptDir, t.ID+".ckpt.jsonl"))
	}
	return cfg
}

func resumeHint(ckptDir string) string {
	if ckptDir == "" {
		return " (use -checkpoint to make runs resumable)"
	}
	return "; rerun the same command to resume from " + ckptDir
}

// writeCSV stores one table as <dir>/<ID>.csv, atomically: an export
// interrupted mid-write never clobbers the previous complete file.
func writeCSV(dir string, res *harness.TableResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fsx.NewAtomicFile(filepath.Join(dir, res.ID+".csv"), 0o644)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	return f.Commit()
}

// writeJSON stores one table as <dir>/<ID>.json, atomically.
func writeJSON(dir string, res *harness.TableResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fsx.NewAtomicFile(filepath.Join(dir, res.ID+".json"), 0o644)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := res.WriteJSON(f); err != nil {
		return err
	}
	return f.Commit()
}

// runObservations executes the minimum table set needed for O1–O5 and
// prints the verdicts. An interrupted campaign renders what finished and
// skips the verdicts (they need every table complete).
func runObservations(w io.Writer, scale harness.Scale, cfg harness.Config, ckptDir string) (bool, error) {
	need := []string{"TL", "TG", "TB"}
	for _, size := range scale.TwoSetSizes {
		need = append(need, fmt.Sprintf("T%dB3", size/1000), fmt.Sprintf("T%dB4", size/1000))
	}
	results := map[string]*harness.TableResult{}
	for _, id := range need {
		t, ok := harness.TableByID(scale, id)
		if !ok {
			return false, fmt.Errorf("scale is missing table %s", id)
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", t.ID, t.Title)
		res, err := harness.Run(t, tableConfig(cfg, t, ckptDir))
		if err != nil {
			if runctl.IsStop(err) && res != nil {
				if rerr := res.Render(w); rerr != nil {
					return false, rerr
				}
				fmt.Fprintf(os.Stderr, "experiments: interrupted (%v); observations skipped%s\n",
					err, resumeHint(ckptDir))
				return true, nil
			}
			return false, err
		}
		results[id] = res
		if err := res.Render(w); err != nil {
			return false, err
		}
	}
	// Use the largest size present for the degree-3/degree-4 comparison.
	last := scale.TwoSetSizes[len(scale.TwoSetSizes)-1] / 1000
	d3 := results[fmt.Sprintf("T%dB3", last)]
	d4 := results[fmt.Sprintf("T%dB4", last)]
	var random []*harness.TableResult
	for _, size := range scale.TwoSetSizes {
		random = append(random, results[fmt.Sprintf("T%dB3", size/1000)], results[fmt.Sprintf("T%dB4", size/1000)])
	}
	findings := []harness.Finding{
		harness.Observation1(d3, d4),
		harness.Observation2(d3),
		harness.Observation3([]*harness.TableResult{results["TG"], results["TL"], results["TB"]}),
		harness.Observation4(random, results["TB"], results["TL"]),
		harness.Observation5(random),
	}
	fmt.Fprintln(w, "Section VI Observations:")
	for _, f := range findings {
		fmt.Fprintln(w, " ", f)
	}
	if err := harness.RenderSummary(w, "Table 1. Bisection width improvement made by compaction (best of two starts).",
		[]*harness.TableResult{results["TG"], results["TL"], results["TB"]}, []string{"kl", "sa"}); err != nil {
		return false, err
	}
	return false, nil
}
