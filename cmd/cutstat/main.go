// Command cutstat evaluates a side-assignment file against a graph:
// cut weight, balance, boundary size, and the spectral lower bound, so a
// partition produced by any tool (including cmd/bisect -out) can be
// verified independently.
//
// Usage:
//
//	cutstat -graph g.el -sides sides.txt [-bound]
//
// The sides file has one "<vertex> <side>" pair per line (cmd/bisect's
// -out format).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	bisect "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cutstat:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "", "graph file (native edge-list format)")
	sidesPath := flag.String("sides", "", "side assignment file: one '<vertex> <side>' per line")
	bound := flag.Bool("bound", false, "also compute the spectral lower bound (λ₂·|V|/4)")
	flag.Parse()
	if *graphPath == "" || *sidesPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -graph or -sides")
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	g, err := bisect.ReadEdgeList(gf)
	if err != nil {
		return err
	}

	side, err := readSides(*sidesPath, g.N())
	if err != nil {
		return err
	}
	b, err := bisect.NewBisection(g, side)
	if err != nil {
		return err
	}

	n0, n1 := b.CountSides()
	boundary := 0
	for v := int32(0); int(v) < g.N(); v++ {
		for _, e := range g.Neighbors(v) {
			if b.Side(e.To) != b.Side(v) {
				boundary++
				break
			}
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Printf("cut: %d\n", b.Cut())
	fmt.Printf("sides: %d / %d (weights %d / %d, imbalance %d)\n",
		n0, n1, b.SideWeight(0), b.SideWeight(1), b.Imbalance())
	fmt.Printf("boundary vertices: %d (%.1f%%)\n", boundary, 100*float64(boundary)/float64(max(1, g.N())))
	if *bound {
		lb, err := bisect.SpectralLowerBound(g, bisect.SpectralOptions{}, bisect.NewRand(1))
		if err != nil {
			return err
		}
		fmt.Printf("spectral lower bound: %.2f (cut is %.2fx the bound)\n", lb, float64(b.Cut())/maxf(lb, 1e-9))
	}
	return nil
}

func readSides(path string, n int) ([]uint8, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	side := make([]uint8, n)
	seen := make([]bool, n)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sides line %d: want '<vertex> <side>', got %q", line, text)
		}
		v, err1 := strconv.Atoi(fields[0])
		s, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || v < 0 || v >= n || s < 0 || s > 1 {
			return nil, fmt.Errorf("sides line %d: invalid record %q", line, text)
		}
		if seen[v] {
			return nil, fmt.Errorf("sides line %d: duplicate vertex %d", line, v)
		}
		seen[v] = true
		side[v] = uint8(s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("sides file missing vertex %d", v)
		}
	}
	return side, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
