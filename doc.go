// Package bisect is a Go library for graph bisection, reproducing and
// extending the algorithms of Bui, Heigham, Jones & Leighton, "Improving
// the Performance of the Kernighan-Lin and Simulated Annealing Graph
// Bisection Algorithms" (DAC 1989).
//
// The library provides:
//
//   - weighted undirected graphs with builders, validation, and three
//     serialization formats (native edge list, METIS, JSON);
//   - the paper's graph models (𝒢np, 𝒢2set planted bisection, 𝒢breg
//     regular planted width) and special families (ladders, grids,
//     binary trees, cycles, tori, hypercubes);
//   - the Kernighan–Lin and simulated-annealing bisection algorithms,
//     the compaction heuristic (CKL, CSA), and extensions: Fiduccia–
//     Mattheyses, multilevel (recursive compaction), and spectral
//     bisection;
//   - exact solvers for validation (branch-and-bound, cycle-collection
//     DP);
//   - a VLSI netlist substrate with clique/star expansion;
//   - an experiment harness reproducing every table in the paper's
//     appendix and checking its five Observations.
//
// Quickstart:
//
//	g, _ := bisect.BReg(2000, 16, 3, bisect.NewRand(1))
//	alg, _ := bisect.NewBisector("ckl")
//	b, _ := alg.Bisect(g, bisect.NewRand(2))
//	fmt.Println("cut:", b.Cut())
//
// All algorithms are deterministic given their random source, so results
// are exactly reproducible.
package bisect
