package bisect_test

// One benchmark per paper artifact (tables TL/TG/TB/T1, the 𝒢2set/𝒢np/
// 𝒢breg appendix tables at both sizes, figures F1/F2, observations O1–O5)
// plus the five design-choice ablations from DESIGN.md §6.
//
// Benchmarks default to reduced graph sizes so `go test -bench=.`
// finishes in minutes; set BISECT_BENCH_SCALE=paper to run the appendix
// sizes (2000/5000 vertices — budget an hour, dominated by SA), or use
// cmd/experiments for a progress-reporting paper-scale run. Reported
// metrics: mean best-of-2 cut per algorithm (cut_*), and the mean
// compaction improvement (impr_*%).

import (
	"os"
	"testing"

	bisect "repro"
	"repro/internal/anneal"
	"repro/internal/harness"
	"repro/internal/kl"
	"repro/internal/partition"
	"repro/internal/rng"
)

// benchSizes returns the stand-ins for the paper's 2000- and 5000-vertex
// suites.
func benchSizes() (size2000, size5000 int) {
	if os.Getenv("BISECT_BENCH_SCALE") == "paper" {
		return 2000, 5000
	}
	return 400, 1000
}

func benchSA() anneal.Options {
	if os.Getenv("BISECT_BENCH_SCALE") == "paper" {
		return anneal.Options{} // full JAMS schedule
	}
	return anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300}
}

func benchConfig() harness.Config {
	return harness.Config{Seed: 1989, Starts: 2, SAOpts: benchSA()}
}

// runTable executes the table once per benchmark iteration and reports
// the per-algorithm mean cuts and compaction improvements from the first
// iteration.
func runTable(b *testing.B, t harness.Table) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(t, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, name := range res.Algorithms {
				b.ReportMetric(res.MeanCut(name), "cut_"+name)
			}
			for _, inner := range []string{"sa", "kl"} {
				b.ReportMetric(res.MeanImprovement(inner), "impr_"+inner+"%")
			}
		}
	}
}

// ---- Special-graph tables -------------------------------------------------

func BenchmarkTableLadder(b *testing.B) {
	runTable(b, harness.LadderTable([]int{34, 100}))
}

func BenchmarkTableGrid(b *testing.B) {
	runTable(b, harness.GridTable([]int{10, 22}))
}

func BenchmarkTableBinaryTree(b *testing.B) {
	runTable(b, harness.BTreeTable([]int{100, 254}))
}

// BenchmarkTableSpecialSummary regenerates Table 1: the mean compaction
// improvement per special family for KL and SA.
func BenchmarkTableSpecialSummary(b *testing.B) {
	cfg := benchConfig()
	tables := []harness.Table{
		harness.GridTable([]int{10, 22}),
		harness.LadderTable([]int{34, 100}),
		harness.BTreeTable([]int{100, 254}),
	}
	for i := 0; i < b.N; i++ {
		for ti, t := range tables {
			res, err := harness.Run(t, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.MeanImprovement("kl"), "imprKL_"+t.ID+"%")
				b.ReportMetric(res.MeanImprovement("sa"), "imprSA_"+t.ID+"%")
			}
			_ = ti
		}
	}
}

// ---- 𝒢2set tables ----------------------------------------------------------

func bench2Set(b *testing.B, size int, deg float64) {
	runTable(b, harness.TwoSetTable(size, deg, []int{8, 32}))
}

func BenchmarkTable2Set2000Deg25(b *testing.B) { s, _ := benchSizes(); bench2Set(b, s, 2.5) }
func BenchmarkTable2Set2000Deg30(b *testing.B) { s, _ := benchSizes(); bench2Set(b, s, 3.0) }
func BenchmarkTable2Set2000Deg35(b *testing.B) { s, _ := benchSizes(); bench2Set(b, s, 3.5) }
func BenchmarkTable2Set2000Deg40(b *testing.B) { s, _ := benchSizes(); bench2Set(b, s, 4.0) }
func BenchmarkTable2Set5000Deg25(b *testing.B) { _, s := benchSizes(); bench2Set(b, s, 2.5) }
func BenchmarkTable2Set5000Deg30(b *testing.B) { _, s := benchSizes(); bench2Set(b, s, 3.0) }
func BenchmarkTable2Set5000Deg35(b *testing.B) { _, s := benchSizes(); bench2Set(b, s, 3.5) }
func BenchmarkTable2Set5000Deg40(b *testing.B) { _, s := benchSizes(); bench2Set(b, s, 4.0) }

// ---- 𝒢np tables -------------------------------------------------------------

func BenchmarkTableGnp2000(b *testing.B) {
	s, _ := benchSizes()
	runTable(b, harness.GnpTable(s, []float64{2.5, 4.0}, 2))
}

func BenchmarkTableGnp5000(b *testing.B) {
	_, s := benchSizes()
	runTable(b, harness.GnpTable(s, []float64{2.5, 4.0}, 2))
}

// ---- 𝒢breg tables -----------------------------------------------------------

func benchBReg(b *testing.B, size, d int) {
	runTable(b, harness.BRegTable(size, d, []int{2, 16}, 2))
}

func BenchmarkTableBreg2000D3(b *testing.B) { s, _ := benchSizes(); benchBReg(b, s, 3) }
func BenchmarkTableBreg2000D4(b *testing.B) { s, _ := benchSizes(); benchBReg(b, s, 4) }
func BenchmarkTableBreg5000D3(b *testing.B) { _, s := benchSizes(); benchBReg(b, s, 3) }
func BenchmarkTableBreg5000D4(b *testing.B) { _, s := benchSizes(); benchBReg(b, s, 4) }

// ---- Figures ----------------------------------------------------------------

// BenchmarkFigure1SAGeneric times one run of the generic SA algorithm of
// Figure 1 (a single annealing run, no restarts).
func BenchmarkFigure1SAGeneric(b *testing.B) {
	s, _ := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	alg := bisect.SA{Opts: benchSA()}
	r := bisect.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Bisect(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2KLPass times one KL pass (Figure 2) from a random
// bisection.
func BenchmarkFigure2KLPass(b *testing.B) {
	_, s := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewFib(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bis := partition.NewRandom(g, r)
		b.StartTimer()
		if _, _, _, err := kl.Pass(bis, kl.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Observations -----------------------------------------------------------

func BenchmarkObservation1(b *testing.B) {
	_, s := benchSizes()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d3, err := harness.Run(harness.BRegTable(s, 3, []int{8}, 2), cfg)
		if err != nil {
			b.Fatal(err)
		}
		d4, err := harness.Run(harness.BRegTable(s, 4, []int{8}, 2), cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := harness.Observation1(d3, d4)
		if i == 0 {
			b.ReportMetric(boolMetric(f.Holds), "holds")
			b.Logf("%s", f)
		}
	}
}

func BenchmarkObservation2(b *testing.B) {
	_, s := benchSizes()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d3, err := harness.Run(harness.BRegTable(s, 3, []int{2, 8}, 2), cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := harness.Observation2(d3)
		if i == 0 {
			b.ReportMetric(boolMetric(f.Holds), "holds")
			b.Logf("%s", f)
		}
	}
}

func BenchmarkObservation4(b *testing.B) {
	s, _ := benchSizes()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		random, err := harness.Run(harness.BRegTable(s, 3, []int{8}, 2), cfg)
		if err != nil {
			b.Fatal(err)
		}
		trees, err := harness.Run(harness.BTreeTable([]int{254}), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ladders, err := harness.Run(harness.LadderTable([]int{100}), cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := harness.Observation4([]*harness.TableResult{random}, trees, ladders)
		if i == 0 {
			b.ReportMetric(boolMetric(f.Holds), "holds")
			b.Logf("%s", f)
		}
	}
}

func BenchmarkObservation5(b *testing.B) {
	s, _ := benchSizes()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		random, err := harness.Run(harness.BRegTable(s, 3, []int{8}, 2), cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := harness.Observation5([]*harness.TableResult{random})
		if i == 0 {
			b.ReportMetric(boolMetric(f.Holds), "holds")
			b.Logf("%s", f)
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// ---- Ablations (DESIGN.md §6) -------------------------------------------------

// BenchmarkAblationMatching compares compaction built on uniform-random
// vs heavy-edge matchings.
func BenchmarkAblationMatching(b *testing.B) {
	_, s := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		alg  bisect.Bisector
	}{
		{"random-matching", bisect.Compacted{Inner: bisect.KL{}}},
		{"heavy-edge", bisect.Compacted{Inner: bisect.KL{}, Match: bisect.HeavyEdgeMatching}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			r := bisect.NewRand(4)
			var last int64
			for i := 0; i < b.N; i++ {
				bb, err := v.alg.Bisect(g, r)
				if err != nil {
					b.Fatal(err)
				}
				last = bb.Cut()
			}
			b.ReportMetric(float64(last), "cut")
		})
	}
}

// BenchmarkAblationMultilevel compares one-shot compaction (the paper)
// against recursive multilevel compaction (the extension).
func BenchmarkAblationMultilevel(b *testing.B) {
	_, s := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		alg  bisect.Bisector
	}{
		{"compact-once", bisect.Compacted{Inner: bisect.KL{}}},
		{"multilevel", bisect.Multilevel{Inner: bisect.KL{}}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			r := bisect.NewRand(6)
			var last int64
			for i := 0; i < b.N; i++ {
				bb, err := v.alg.Bisect(g, r)
				if err != nil {
					b.Fatal(err)
				}
				last = bb.Cut()
			}
			b.ReportMetric(float64(last), "cut")
		})
	}
}

// BenchmarkAblationKLScan compares the three KL pair-selection variants:
// the default pruned scan with the stamped-scratch O(1) connectivity
// lookup, the pruned scan probing the adjacency for every pair
// (DisableScratch), and the unpruned full scan (DisablePruning). All
// three select identical pairs — the pruned variants also examine
// identical ScannedPairs counts — so only the time may differ; the
// results themselves are cross-checked for byte equality on every run
// (and, more thoroughly, by TestScanVariantsIdentical in internal/kl).
func BenchmarkAblationKLScan(b *testing.B) {
	g, err := bisect.BReg(400, 8, 3, bisect.NewRand(7))
	if err != nil {
		b.Fatal(err)
	}
	ref := struct {
		cut     int64
		scanned int64
	}{-1, -1}
	for _, v := range []struct {
		name string
		opts bisect.KLOptions
	}{
		{"pruned-scratch", bisect.KLOptions{}},
		{"pruned-probe", bisect.KLOptions{DisableScratch: true}},
		{"full-scan", bisect.KLOptions{DisablePruning: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			r := bisect.NewRand(8)
			var cut, scanned int64
			for i := 0; i < b.N; i++ {
				bb, st, err := bisect.RunKL(g, v.opts, r)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					cut, scanned = bb.Cut(), st.ScannedPairs
				}
			}
			b.ReportMetric(float64(cut), "cut")
			b.ReportMetric(float64(scanned), "scanned")
			// Identical-results cross-check: every variant's first run
			// starts from the same stream state, so cuts must agree, and
			// the two pruned variants must scan identical pair counts.
			if ref.cut == -1 {
				ref.cut, ref.scanned = cut, scanned
			} else if cut != ref.cut {
				b.Fatalf("%s: cut %d differs from reference %d", v.name, cut, ref.cut)
			} else if !v.opts.DisablePruning && scanned != ref.scanned {
				b.Fatalf("%s: scanned %d differs from reference %d", v.name, scanned, ref.scanned)
			}
		})
	}
}

// BenchmarkAblationSASchedule sweeps SIZEFACTOR to show the time/quality
// trade-off of the annealing schedule.
func BenchmarkAblationSASchedule(b *testing.B) {
	g, err := bisect.BReg(400, 8, 3, bisect.NewRand(9))
	if err != nil {
		b.Fatal(err)
	}
	for _, sf := range []int{1, 4, 16} {
		b.Run("sizefactor-"+string(rune('0'+sf/10))+string(rune('0'+sf%10)), func(b *testing.B) {
			alg := bisect.SA{Opts: bisect.SAOptions{SizeFactor: sf, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300}}
			r := bisect.NewRand(10)
			var last int64
			for i := 0; i < b.N; i++ {
				bb, err := alg.Bisect(g, r)
				if err != nil {
					b.Fatal(err)
				}
				last = bb.Cut()
			}
			b.ReportMetric(float64(last), "cut")
		})
	}
}

// BenchmarkAblationAcceptance compares Metropolis acceptance (Figure 1)
// with deterministic threshold accepting at the same schedule.
func BenchmarkAblationAcceptance(b *testing.B) {
	_, s := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(13))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		rule anneal.AcceptanceRule
	}{{"metropolis", anneal.AcceptMetropolis}, {"threshold", anneal.AcceptThreshold}} {
		b.Run(v.name, func(b *testing.B) {
			opts := benchSA()
			opts.Acceptance = v.rule
			alg := bisect.SA{Opts: opts}
			r := bisect.NewRand(14)
			var last int64
			for i := 0; i < b.N; i++ {
				bb, err := alg.Bisect(g, r)
				if err != nil {
					b.Fatal(err)
				}
				last = bb.Cut()
			}
			b.ReportMetric(float64(last), "cut")
		})
	}
}

// BenchmarkAblationRepair compares gain-aware balance repair (used after
// projection) with arbitrary-vertex repair.
func BenchmarkAblationRepair(b *testing.B) {
	_, s := benchSizes()
	g, err := bisect.BReg(s, 8, 3, bisect.NewRand(11))
	if err != nil {
		b.Fatal(err)
	}
	makeUnbalanced := func(r *bisect.Rand) *bisect.Bisection {
		side := make([]uint8, g.N())
		for v := 0; v < g.N()/4; v++ {
			side[v] = 1
		}
		bb, err := bisect.NewBisection(g, side)
		if err != nil {
			b.Fatal(err)
		}
		return bb
	}
	b.Run("gain-aware", func(b *testing.B) {
		r := bisect.NewRand(12)
		var last int64
		for i := 0; i < b.N; i++ {
			bb := makeUnbalanced(r)
			bisect.RepairBalance(bb, 0)
			last = bb.Cut()
		}
		b.ReportMetric(float64(last), "cut")
	})
	b.Run("arbitrary", func(b *testing.B) {
		r := bisect.NewRand(12)
		var last int64
		for i := 0; i < b.N; i++ {
			bb := makeUnbalanced(r)
			// Naive repair: move random heavy-side vertices.
			for bb.Imbalance() > 0 {
				heavy := uint8(0)
				if bb.SideWeight(1) > bb.SideWeight(0) {
					heavy = 1
				}
				for {
					v := int32(r.Intn(g.N()))
					if bb.Side(v) == heavy {
						bb.Move(v)
						break
					}
				}
			}
			last = bb.Cut()
		}
		b.ReportMetric(float64(last), "cut")
	})
}
