// Package faultfs is a deterministic fault-injecting filesystem behind
// the internal/fsx seam. It wraps a real (or nested) fsx.FS and injects
// storage failures — ENOSPC, fsync errors, rename failures, short/torn
// writes, and read-back bit corruption — according to a seeded schedule,
// so every failure a test provokes is exactly reproducible from the
// schedule's seed.
//
// # Schedule format
//
// A Plan is (seed, per-operation probabilities, warmup, cap). Every
// faultable operation — each Write call on a temp file, each Sync
// (files and directories), each Rename, each whole-file Read — draws
// from one lagged-Fibonacci stream seeded by Plan.Seed, in operation
// order. The k-th faultable operation therefore always gets the same
// verdict for a given seed: re-running the same sequence of filesystem
// operations against the same plan replays the same faults at the same
// points. (Under concurrent writers the interleaving of operations is
// scheduling-dependent; chaos tests that need exact replay drive the
// store single-writer.)
//
// Injected errors wrap the real errno (syscall.ENOSPC for write faults,
// syscall.EIO for sync/rename faults) so production code's errors.Is
// checks behave exactly as they would on a failing disk. Read corruption
// flips one seeded bit in the returned copy — the file on disk is never
// touched — which is how tests exercise checksum detection and
// quarantine paths without a corrupting writer.
//
// See docs/ROBUSTNESS.md "Fault injection and chaos testing".
package faultfs

import (
	"fmt"
	"os"
	"sync"
	"syscall"

	"repro/internal/fsx"
	"repro/internal/rng"
)

// Plan is a seeded fault schedule. Probabilities are per faultable
// operation, in [0,1]; zero disables that fault class.
type Plan struct {
	// Seed keys the schedule's random stream. Every fault the plan ever
	// injects is a deterministic function of (Seed, operation index).
	Seed uint64
	// PWrite is the probability a Write call fails. Half the injected
	// write faults (seeded coin) are clean ENOSPC (no bytes written),
	// half are torn: a prefix of the buffer is written, then ENOSPC.
	PWrite float64
	// PSync is the probability a Sync (file or directory) fails with EIO.
	PSync float64
	// PRename is the probability a Rename fails with EIO.
	PRename float64
	// PRead is the probability a ReadFile returns a copy with one seeded
	// bit flipped.
	PRead float64
	// Warmup exempts the first N faultable operations, so a test can let
	// setup writes through before the weather starts.
	Warmup int64
	// MaxFaults caps the total injected faults (0 = unlimited).
	MaxFaults int64
}

// Fault is one injected failure, recorded for assertions and replay
// diagnostics.
type Fault struct {
	// N is the 1-based index of the faultable operation that failed.
	N int64
	// Op is "write", "sync", "rename", or "read".
	Op string
	// Kind is "enospc", "torn", "sync", "rename", or "bitflip".
	Kind string
	// Path is the file the operation targeted.
	Path string
}

// FS wraps an inner fsx.FS with the fault schedule. Safe for concurrent
// use; the schedule stream is drawn under a lock in operation order.
type FS struct {
	inner fsx.FS
	plan  Plan

	mu       sync.Mutex
	rnd      *rng.Rand
	ops      int64
	injected []Fault
	disabled bool
}

// New wraps inner with the given plan.
func New(inner fsx.FS, plan Plan) *FS {
	return &FS{inner: inner, plan: plan, rnd: rng.NewFib(plan.Seed)}
}

// Ops returns the number of faultable operations seen so far.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faults returns a copy of the injected-fault log.
func (f *FS) Faults() []Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Fault(nil), f.injected...)
}

// SetDisabled turns injection off (true) or back on (false) without
// perturbing the operation counter or the random stream position.
func (f *FS) SetDisabled(v bool) {
	f.mu.Lock()
	f.disabled = v
	f.mu.Unlock()
}

// decide advances the operation counter and draws the verdict for one
// faultable operation. extra seeded draws (for torn-write lengths and
// bit positions) are taken by the caller-supplied closure under the same
// lock, keeping the stream position a pure function of the op sequence.
func (f *FS) decide(op, path string, p float64, kind func(u float64) string) (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	u := f.rnd.Float64() // always drawn, so disabling doesn't shift the stream
	if f.disabled || p <= 0 || f.ops <= f.plan.Warmup || u >= p {
		return Fault{}, false
	}
	if f.plan.MaxFaults > 0 && int64(len(f.injected)) >= f.plan.MaxFaults {
		return Fault{}, false
	}
	ft := Fault{N: f.ops, Op: op, Path: path, Kind: kind(f.rnd.Float64())}
	f.injected = append(f.injected, ft)
	return ft, true
}

// corruptCopy returns data with one seeded bit flipped (data unchanged).
func (f *FS) corruptCopy(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	f.mu.Lock()
	idx := f.rnd.Intn(len(data))
	bit := f.rnd.Intn(8)
	f.mu.Unlock()
	out := append([]byte(nil), data...)
	out[idx] ^= 1 << bit
	return out
}

func injected(ft Fault, errno error) error {
	return fmt.Errorf("faultfs: injected %s fault on %s (op %d): %w", ft.Kind, ft.Path, ft.N, errno)
}

// --- fsx.FS ---

func (f *FS) CreateTemp(dir, pattern string) (fsx.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) Open(name string) (fsx.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if ft, ok := f.decide("rename", newpath, f.plan.PRename, func(float64) string { return "rename" }); ok {
		return injected(ft, syscall.EIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if _, ok := f.decide("read", name, f.plan.PRead, func(float64) string { return "bitflip" }); ok {
		return f.corruptCopy(data), nil
	}
	return data, nil
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error)   { return f.inner.ReadDir(name) }
func (f *FS) Stat(name string) (os.FileInfo, error)        { return f.inner.Stat(name) }
func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

// faultFile intercepts Write and Sync on an open file (or directory)
// handle.
type faultFile struct {
	fs    *FS
	inner fsx.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ft, ok := ff.fs.decide("write", ff.inner.Name(), ff.fs.plan.PWrite, func(u float64) string {
		if u < 0.5 {
			return "enospc"
		}
		return "torn"
	})
	if !ok {
		return ff.inner.Write(p)
	}
	if ft.Kind == "torn" && len(p) > 1 {
		// A torn write: half the buffer reaches the file, then the device
		// fills. The caller must treat the short count + error as failure.
		n, werr := ff.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, injected(ft, syscall.ENOSPC)
	}
	return 0, injected(ft, syscall.ENOSPC)
}

func (ff *faultFile) Read(p []byte) (int, error)   { return ff.inner.Read(p) }
func (ff *faultFile) Chmod(mode os.FileMode) error { return ff.inner.Chmod(mode) }
func (ff *faultFile) Close() error                 { return ff.inner.Close() }
func (ff *faultFile) Name() string                 { return ff.inner.Name() }

func (ff *faultFile) Sync() error {
	if ft, ok := ff.fs.decide("sync", ff.inner.Name(), ff.fs.plan.PSync, func(float64) string { return "sync" }); ok {
		return injected(ft, syscall.EIO)
	}
	return ff.inner.Sync()
}
