package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fsx"
)

// always is a plan that faults every operation of the given class.
func always(seed uint64) Plan {
	return Plan{Seed: seed}
}

func writeThrough(t *testing.T, fs fsx.FS, path, data string) error {
	t.Helper()
	return fsx.WriteFileAtomicFS(fs, path, []byte(data), 0o644)
}

func assertIntact(t *testing.T, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if want == "" {
		if !os.IsNotExist(err) {
			t.Fatalf("%s should not exist, read: %q %v", path, got, err)
		}
		return
	}
	if err != nil || string(got) != want {
		t.Fatalf("%s = %q, %v; want %q", path, got, err, want)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

// The unit matrix: each fault class, driven through WriteFileAtomicFS,
// must surface the right errno and leave the previous file intact with
// no temp droppings.
func TestWriteFaultENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := writeThrough(t, fsx.OS, path, "previous"); err != nil {
		t.Fatal(err)
	}
	// Scan seeds until the injector picks the clean-ENOSPC arm.
	for seed := uint64(1); ; seed++ {
		p := always(seed)
		p.PWrite = 1
		ffs := New(fsx.OS, p)
		err := writeThrough(t, ffs, path, "replacement")
		if err == nil {
			t.Fatal("write with PWrite=1 succeeded")
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC", err)
		}
		assertIntact(t, path, "previous")
		assertNoTemps(t, dir)
		faults := ffs.Faults()
		if len(faults) != 1 || faults[0].Op != "write" {
			t.Fatalf("fault log = %+v", faults)
		}
		if faults[0].Kind == "enospc" {
			return // clean arm exercised
		}
		if seed > 64 {
			t.Fatal("no seed in 1..64 produced a clean ENOSPC write fault")
		}
	}
}

func TestWriteFaultTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := writeThrough(t, fsx.OS, path, "previous"); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); ; seed++ {
		p := always(seed)
		p.PWrite = 1
		ffs := New(fsx.OS, p)
		err := writeThrough(t, ffs, path, "this buffer is long enough to tear in half")
		if err == nil {
			t.Fatal("write with PWrite=1 succeeded")
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC", err)
		}
		// The torn prefix went to the TEMP file only; the target is intact.
		assertIntact(t, path, "previous")
		assertNoTemps(t, dir)
		if fl := ffs.Faults(); len(fl) == 1 && fl[0].Kind == "torn" {
			return
		}
		if seed > 64 {
			t.Fatal("no seed in 1..64 produced a torn write fault")
		}
	}
}

func TestSyncFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	p := always(3)
	p.PSync = 1
	ffs := New(fsx.OS, p)
	err := writeThrough(t, ffs, path, "data")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	assertIntact(t, path, "")
	assertNoTemps(t, dir)
}

func TestRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := writeThrough(t, fsx.OS, path, "previous"); err != nil {
		t.Fatal(err)
	}
	p := always(4)
	p.PRename = 1
	ffs := New(fsx.OS, p)
	err := writeThrough(t, ffs, path, "replacement")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	assertIntact(t, path, "previous")
	assertNoTemps(t, dir)
}

func TestReadBitFlipCaughtByCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	payload := []byte(`{"schema":"bisectd-job/v1","id":"j-1","state":"done"}`)
	if err := fsx.WriteFileAtomic(path, fsx.AppendCRC(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	p := always(5)
	p.PRead = 1
	ffs := New(fsx.OS, p)
	data, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsx.SplitCRC(path, data); err == nil {
		t.Fatal("bit-flipped read passed CRC verification")
	} else {
		var ce *fsx.CorruptRecordError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T %v, want *fsx.CorruptRecordError", err, err)
		}
	}
	// The file on disk is untouched: a clean read verifies.
	clean, err := fsx.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsx.SplitCRC(path, clean); err != nil {
		t.Fatalf("on-disk bytes were corrupted: %v", err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []Fault {
		dir := t.TempDir()
		p := Plan{Seed: seed, PWrite: 0.3, PSync: 0.3, PRename: 0.3, PRead: 0.3}
		ffs := New(fsx.OS, p)
		for i := 0; i < 40; i++ {
			path := filepath.Join(dir, "f.json")
			_ = fsx.WriteFileAtomicFS(ffs, path, []byte(strings.Repeat("x", 64)), 0o644)
			_, _ = ffs.ReadFile(path)
		}
		faults := ffs.Faults()
		// Paths differ across TempDirs; compare the schedule shape only.
		for i := range faults {
			faults[i].Path = ""
		}
		return faults
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("schedule with p=0.3 over 40 rounds injected nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\nvs\n%+v", a, b)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestWarmupAndMaxFaults(t *testing.T) {
	dir := t.TempDir()
	p := Plan{Seed: 7, PWrite: 1, Warmup: 3, MaxFaults: 2}
	ffs := New(fsx.OS, p)
	var failures int
	for i := 0; i < 10; i++ {
		err := writeThrough(t, ffs, filepath.Join(dir, "f.json"), "data")
		if err != nil {
			failures++
		}
	}
	faults := ffs.Faults()
	if int64(len(faults)) != p.MaxFaults {
		t.Fatalf("injected %d faults, want MaxFaults=%d", len(faults), p.MaxFaults)
	}
	for _, ft := range faults {
		if ft.N <= p.Warmup {
			t.Fatalf("fault at op %d inside warmup %d", ft.N, p.Warmup)
		}
	}
	if failures != int(p.MaxFaults) {
		t.Fatalf("%d write failures, want %d", failures, p.MaxFaults)
	}
}

func TestSetDisabled(t *testing.T) {
	dir := t.TempDir()
	p := Plan{Seed: 9, PWrite: 1}
	ffs := New(fsx.OS, p)
	ffs.SetDisabled(true)
	if err := writeThrough(t, ffs, filepath.Join(dir, "f.json"), "data"); err != nil {
		t.Fatalf("disabled injector still faulted: %v", err)
	}
	ffs.SetDisabled(false)
	if err := writeThrough(t, ffs, filepath.Join(dir, "g.json"), "data"); err == nil {
		t.Fatal("re-enabled injector did not fault")
	}
}
