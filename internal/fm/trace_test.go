package fm

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestObserverDoesNotChangeResult verifies the detach half of the
// observability contract for FM.
func TestObserverDoesNotChangeResult(t *testing.T) {
	g, err := gen.GNP(200, 0.03, rng.NewFib(19))
	if err != nil {
		t.Fatal(err)
	}
	plain, plainStats, err := Run(g, Options{}, rng.NewFib(4))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	traced, tracedStats, err := Run(g, Options{Observer: rec}, rng.NewFib(4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut() != traced.Cut() || plainStats != tracedStats {
		t.Fatalf("observer changed the run: cut %d vs %d, stats %+v vs %+v",
			plain.Cut(), traced.Cut(), plainStats, tracedStats)
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if plain.Side(v) != traced.Side(v) {
			t.Fatalf("observer changed the bisection at vertex %d", v)
		}
	}
	// Event stream sanity: pass_done per pass, run_done last, counters match.
	events := rec.Events()
	var passes, moves int
	for _, e := range events {
		if e.Type == trace.TypePassDone {
			if e.Algo != "fm" || e.Index != passes {
				t.Fatalf("bad pass_done: %+v", e)
			}
			moves += e.Moves
			passes++
		}
	}
	if passes != tracedStats.Passes || moves != tracedStats.Moves {
		t.Fatalf("events report %d passes / %d moves, stats %d / %d",
			passes, moves, tracedStats.Passes, tracedStats.Moves)
	}
	last := events[len(events)-1]
	if last.Type != trace.TypeRunDone || last.Cut != tracedStats.FinalCut {
		t.Fatalf("bad run_done: %+v (stats %+v)", last, tracedStats)
	}
}
