package fm

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// lowerGates drops the parallel thresholds so small instances exercise
// every sharded pass kernel, restoring them when the test ends.
func lowerGates(t *testing.T) {
	t.Helper()
	savedV, savedD := ParallelMinVertices, ParallelMinDegree
	ParallelMinVertices = 1
	ParallelMinDegree = 1
	t.Cleanup(func() { ParallelMinVertices, ParallelMinDegree = savedV, savedD })
}

// weightedGraph returns a GNP instance with pseudo-random vertex weights
// in [1,4], so the weighted selection path (and with it the parallel
// move proposal) engages.
func weightedGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.GNP(n, 8.0/float64(n-1), rng.NewFib(seed))
	if err != nil {
		t.Fatal(err)
	}
	bld := graph.NewBuilder(n)
	r := rng.NewFib(seed + 1)
	for v := int32(0); int(v) < n; v++ {
		bld.SetVertexWeight(v, int32(1+r.Intn(4)))
	}
	g.Edges(func(u, v, w int32) { bld.AddWeightedEdge(u, v, w) })
	wg, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// refineSides runs Refine under opts on a fixed starting bisection and
// returns the resulting sides and stats.
func refineSides(t *testing.T, g *graph.Graph, opts Options) ([]uint8, Stats) {
	t.Helper()
	b := partition.NewRandom(g, rng.NewFib(43))
	if opts.Workspace != nil {
		defer opts.Workspace.Close()
	}
	st, err := Refine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b.Sides(), st
}

// TestShardedPassIdentity pins the full sharded pass body — parallel
// init, sharded gain updates/repositions, parallel move proposal — to
// the serial reference on both unit-weight and weighted graphs, at
// several pool degrees.
func TestShardedPassIdentity(t *testing.T) {
	lowerGates(t)
	for name, g := range map[string]*graph.Graph{
		"unit": func() *graph.Graph {
			g, err := gen.GNP(900, 10.0/899, rng.NewFib(5))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}(),
		"weighted": weightedGraph(t, 900, 11),
	} {
		refSides, refStats := refineSides(t, g, Options{})
		for _, degree := range []int{2, 3, 4, 8} {
			sides, stats := refineSides(t, g, Options{ParallelDegree: degree, Workspace: NewRefiner()})
			if stats != refStats {
				t.Fatalf("%s degree %d: stats %+v, want %+v", name, degree, stats, refStats)
			}
			for v := range sides {
				if sides[v] != refSides[v] {
					t.Fatalf("%s degree %d: side of vertex %d differs", name, degree, v)
				}
			}
		}
	}
}

// TestShardedPassAblationsIdentity pins that the ablation switches only
// change which kernel runs, never the result.
func TestShardedPassAblationsIdentity(t *testing.T) {
	lowerGates(t)
	g := weightedGraph(t, 700, 29)
	refSides, refStats := refineSides(t, g, Options{})
	for _, opts := range []Options{
		{ParallelDegree: 4, DisableParallelGains: true},
		{ParallelDegree: 4, DisableParallelProposal: true},
		{ParallelDegree: 4, DisableParallelGains: true, DisableParallelProposal: true},
	} {
		opts.Workspace = NewRefiner()
		sides, stats := refineSides(t, g, opts)
		if stats != refStats {
			t.Fatalf("opts %+v: stats %+v, want %+v", opts, stats, refStats)
		}
		for v := range sides {
			if sides[v] != refSides[v] {
				t.Fatalf("opts %+v: side of vertex %d differs", opts, v)
			}
		}
	}
}

// TestShardedPassSteadyAllocs pins the zero-allocation contract of the
// sharded gain-update and move-proposal kernels: once a Refiner has
// warmed up on a graph, parallel passes allocate nothing.
func TestShardedPassSteadyAllocs(t *testing.T) {
	lowerGates(t)
	g := weightedGraph(t, 600, 17)
	b := partition.NewRandom(g, rng.NewFib(3))
	w := NewRefiner()
	defer w.Close()
	opts := Options{ParallelDegree: 4, Workspace: w}
	if _, _, err := w.Pass(b, opts); err != nil {
		t.Fatal(err) // warm-up sizes the workspace and binds the closures
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := w.Pass(b, opts); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded FM pass allocated %.1f times per run, want 0", allocs)
	}
}
