// Package fm implements the Fiduccia–Mattheyses bisection refinement —
// the classical successor to Kernighan–Lin that moves single vertices
// under a balance constraint instead of exchanging pairs. It serves as an
// additional baseline and as the refinement engine for the multilevel
// extension.
//
// One pass: all vertices start unlocked with their gains in two bucket
// structures (one per side). Repeatedly, the highest-gain vertex whose
// move keeps the imbalance within tolerance is moved and locked, and its
// neighbors' gains are updated. The best prefix of the move sequence is
// kept; the rest is rolled back. Passes repeat until no improvement.
//
// As in package kl, all pass state (the bucket structures and the move
// log) lives in a reusable Refiner workspace so steady-state passes
// allocate nothing, and the per-graph bounds the pass needs (maximum
// weighted degree, maximum vertex weight) are served from the graph's
// Build-time caches instead of being recomputed every pass.
package fm

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Options configures the algorithm.
type Options struct {
	// MaxPasses caps the number of passes; 0 means run until a pass stops
	// improving (with a hard safety cap).
	MaxPasses int
	// MaxImbalance is the largest |w(V0) − w(V1)| a prefix is allowed to
	// end at; 0 means the maximum vertex weight of the graph (the
	// tightest tolerance under which FM can still move anything).
	MaxImbalance int64
	// Workspace, when non-nil, supplies the reusable pass state (gain
	// buckets, move log) so repeated runs allocate nothing. A nil
	// Workspace makes Run/Refine/Pass allocate a private one. Workspaces
	// are not safe for concurrent use; give each goroutine its own.
	Workspace *Refiner
	// Observer, when non-nil, receives move_batch, pass_done, and
	// run_done trace events (see docs/OBSERVABILITY.md). Attaching one
	// never changes the resulting bisection; nil costs nothing.
	Observer trace.Observer
	// Control, when non-nil, is polled once before every pass. When it
	// stops, Refine returns the bisection as the last completed pass left
	// it — valid, with imbalance no worse than it started — together with
	// the stop sentinel (see internal/runctl and docs/ROBUSTNESS.md). A
	// run under checkpoint budget k is identical to an uncancelled run
	// with MaxPasses = k; nil costs nothing.
	Control *runctl.Control
	// ParallelDegree, when > 1, shards the pass over a worker pool of
	// that degree for graphs with at least ParallelMinVertices vertices:
	// the two gain-bucket structures are filled concurrently (one worker
	// per side), each committed move's neighbor gain updates and bucket
	// repositions are sharded when the moved vertex's degree reaches
	// ParallelMinDegree, and on weighted graphs the move selection scans
	// per-shard bucket segments with a deterministic reduce. Results are
	// identical at any degree — every kernel reproduces the serial
	// decision sequence bit-exactly (see docs/PERFORMANCE.md). The pool
	// attaches to the Workspace; reuse one (and Close it) to amortize.
	ParallelDegree int
	// DisableParallelGains keeps the per-move neighbor gain updates and
	// bucket repositions serial even when ParallelDegree engages the
	// pool. Results are identical; only running time changes. Used by
	// the parallel-refinement ablation benchmark.
	DisableParallelGains bool
	// DisableParallelProposal keeps move selection on the serial bucket
	// scan even when ParallelDegree engages the pool (it only differs on
	// weighted graphs; unit-weight selection is O(1) either way).
	// Results are identical; only running time changes.
	DisableParallelProposal bool
}

// ParallelMinVertices is the graph size below which the pass stays
// serial even when Options.ParallelDegree asks for workers. A variable
// only so tests can lower it.
var ParallelMinVertices = 1 << 15

// ParallelMinDegree is the moved-vertex degree below which a committed
// move's neighbor updates stay serial even on a parallel pass: the
// fork-join barrier costs on the order of a microsecond, so sharding
// only pays once a move touches enough neighbors. A variable only so
// tests can lower it.
var ParallelMinDegree = 64

const safetyPassCap = 1000

// Stats reports what a Run or Refine did.
type Stats struct {
	Passes     int
	Moves      int // moves kept across all passes
	InitialCut int64
	FinalCut   int64
}

// Refiner is the reusable workspace for FM passes: the two gain-bucket
// structures and the move log. A zero Refiner is ready to use; it sizes
// itself to each graph it sees and is reused across passes, starts, and
// multilevel levels without further allocation. Refiners carry no
// algorithm state between calls — using one never changes results — but
// they are not safe for concurrent use.
type Refiner struct {
	buckets [2]partition.GainBuckets
	moves   []int32
	// Worker pool for the parallel pass kernels (Options.ParallelDegree),
	// created lazily, released by Close; pb carries the bisection to the
	// pre-bound shard closures.
	pool   *par.Pool
	initFn func(int)
	pb     *partition.Bisection
	// mover shards the per-move neighbor gain updates and bucket
	// repositions (see partition.ShardedMover).
	mover partition.ShardedMover
	// Parallel move-proposal state: per-(side, shard) best admissible
	// candidates and the pre-bound segment-scan closure.
	propV      []int32
	propG      []int64
	propFn     func(int)
	propShards int
	propD      int64 // side-weight difference during the current selection
	propTol    int64
}

// Close releases the pool created for parallel bucket filling (if any).
// The Refiner remains usable afterwards.
func (w *Refiner) Close() {
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}

// initShard fills side s's gain buckets in vertex order — exactly the
// serial insertion order restricted to one side, so the LIFO bucket
// layout (and every downstream decision) is identical.
func (w *Refiner) initShard(s int) {
	side, gain := w.pb.SidesRef(), w.pb.GainsRef()
	bk := &w.buckets[s]
	us := uint8(s)
	for v, sv := range side {
		if sv == us {
			bk.Add(int32(v), gain[v])
		}
	}
}

// NewRefiner returns an empty workspace. Equivalent to new(Refiner);
// provided for call-site clarity.
func NewRefiner() *Refiner { return new(Refiner) }

// ensure sizes the workspace for g. Once the workspace has seen a graph
// at least as large (in vertices and gain bound), this performs no
// allocation.
func (w *Refiner) ensure(g *graph.Graph) error {
	n := g.N()
	maxGain := g.MaxWeightedDegree()
	for s := range w.buckets {
		if err := w.buckets[s].Reset(n, maxGain); err != nil {
			return err
		}
	}
	if cap(w.moves) < n {
		w.moves = make([]int32, 0, n)
	}
	return nil
}

// workspace returns opts.Workspace or a fresh private one.
func workspace(opts Options) *Refiner {
	if opts.Workspace != nil {
		return opts.Workspace
	}
	return new(Refiner)
}

// Refine runs FM passes on b in place. The final bisection's imbalance is
// at most max(opts.MaxImbalance, the imbalance it started with).
func Refine(b *partition.Bisection, opts Options) (Stats, error) {
	return workspace(opts).Refine(b, opts)
}

// Refine is Refine using this workspace (opts.Workspace is ignored).
func (w *Refiner) Refine(b *partition.Bisection, opts Options) (Stats, error) {
	st := Stats{InitialCut: b.Cut(), FinalCut: b.Cut()}
	limit := opts.MaxPasses
	if limit <= 0 {
		limit = safetyPassCap
	}
	obs := opts.Observer
	var runStart time.Time
	if obs != nil {
		runStart = time.Now()
	}
	var stopErr error
	for p := 0; p < limit; p++ {
		if stopErr = opts.Control.Check(); stopErr != nil {
			break
		}
		var passStart time.Time
		if obs != nil {
			passStart = time.Now()
		}
		improved, moves, err := w.Pass(b, opts)
		st.Passes++
		st.Moves += moves
		if err != nil {
			return st, err
		}
		st.FinalCut = b.Cut()
		if obs != nil {
			obs.Observe(trace.Event{
				Type: trace.TypePassDone, Algo: "fm", Index: p,
				Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
				Gain: improved, Moves: moves,
				ElapsedNS: time.Since(passStart).Nanoseconds(),
			})
		}
		if moves == 0 {
			// A pass keeps moves only when it strictly improves the cut
			// or strictly repairs balance, so an empty pass is a fixpoint.
			break
		}
	}
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "fm", Index: st.Passes,
			Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
			Gain: st.InitialCut - st.FinalCut, Moves: st.Moves,
			ElapsedNS: time.Since(runStart).Nanoseconds(),
		})
	}
	return st, stopErr
}

// Run bisects g from a fresh random balanced bisection.
func Run(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, Stats, error) {
	b := partition.NewRandom(g, r)
	st, err := Refine(b, opts)
	return b, st, err
}

// Pass executes one FM pass. It returns the cut improvement (≥ 0) and the
// number of moves kept.
//
// During the pass, a move is admissible if the resulting imbalance stays
// within the classical FM balance window (2·maxVertexWeight, or the
// configured tolerance if larger) or strictly shrinks the imbalance. The
// kept prefix is chosen lexicographically: first reach the final
// tolerance, then maximize the cumulative gain — so a balanced input
// stays balanced, and an unbalanced input is repaired before the cut is
// optimized.
func Pass(b *partition.Bisection, opts Options) (improvement int64, kept int, err error) {
	return workspace(opts).Pass(b, opts)
}

// Pass is Pass using this workspace (opts.Workspace is ignored).
func (w *Refiner) Pass(b *partition.Bisection, opts Options) (improvement int64, kept int, err error) {
	g := b.Graph()
	n := g.N()
	if n == 0 {
		return 0, 0, nil
	}
	maxVW := int64(g.MaxVertexWeight())
	finalTol := opts.MaxImbalance
	if finalTol <= 0 {
		finalTol = maxVW
	}
	moveTol := 2 * maxVW
	if finalTol > moveTol {
		moveTol = finalTol
	}
	if start := b.Imbalance(); start > moveTol {
		moveTol = start
	}

	if err := w.ensure(g); err != nil {
		return 0, 0, err
	}
	buckets := [2]*partition.GainBuckets{&w.buckets[0], &w.buckets[1]}
	useParallel := opts.ParallelDegree > 1 && n >= ParallelMinVertices
	if useParallel {
		if w.pool == nil || w.pool.Degree() < opts.ParallelDegree {
			w.pool.Close()
			w.pool = par.New(opts.ParallelDegree)
			w.initFn = w.initShard
		}
		w.pb = b
		w.pool.Run(2, w.initFn)
		w.pb = nil
	} else {
		for v := int32(0); int(v) < n; v++ {
			buckets[b.Side(v)].Add(v, b.Gain(v))
		}
	}
	useGains := useParallel && !opts.DisableParallelGains
	if useGains {
		w.mover.Bind(w.pool, b, buckets[0], buckets[1])
	}
	// The sharded proposal only differs from the serial scan on weighted
	// graphs; unit-weight selection is already O(1) per side.
	useProp := useParallel && !opts.DisableParallelProposal && g.MaxVertexWeight() > 1
	if useProp {
		shards := w.pool.Degree()
		if cap(w.propV) < 2*shards {
			w.propV = make([]int32, 2*shards)
			w.propG = make([]int64, 2*shards)
		}
		w.propV = w.propV[:2*shards]
		w.propG = w.propG[:2*shards]
		w.propShards = shards
		if w.propFn == nil {
			w.propFn = w.propShard
		}
	}

	moves := w.moves[:0]
	var cum, bestCum int64
	bestK := 0
	bestImb := b.Imbalance()
	// Intra-pass tracing state; untouched when no observer is attached.
	obs := opts.Observer
	var startCut, batchMaxGain int64
	batchFill, batchIdx := 0, 0
	if obs != nil {
		startCut = b.Cut()
	}
	for step := 0; step < n; step++ {
		var v int32
		if useProp {
			v = w.selectMoveParallel(b, moveTol)
		} else {
			v = selectMove(b, buckets, moveTol)
		}
		if v < 0 {
			break
		}
		gain := b.Gain(v)
		buckets[b.Side(v)].Remove(v)
		if useGains && len(g.Neighbors(v)) >= ParallelMinDegree {
			w.mover.Move(v)
		} else {
			b.Move(v)
			for _, e := range g.Neighbors(v) {
				buckets[b.Side(e.To)].UpdateIfPresent(e.To, b.Gain(e.To))
			}
		}
		moves = append(moves, v)
		cum += gain
		imb := b.Imbalance()
		better := false
		switch {
		case imb <= finalTol && bestImb > finalTol:
			better = true
		case imb <= finalTol && bestImb <= finalTol:
			better = cum > bestCum
		case imb > finalTol && bestImb > finalTol:
			better = imb < bestImb || (imb == bestImb && cum > bestCum)
		}
		if better {
			bestCum = cum
			bestImb = imb
			bestK = len(moves)
		}
		if obs != nil {
			if batchFill == 0 || gain > batchMaxGain {
				batchMaxGain = gain
			}
			batchFill++
			if batchFill == trace.MoveBatchSize {
				emitMoveBatch(obs, b, batchIdx, len(moves), startCut, cum, bestCum, batchMaxGain)
				batchFill = 0
				batchIdx++
			}
		}
	}
	if obs != nil && batchFill > 0 {
		emitMoveBatch(obs, b, batchIdx, len(moves), startCut, cum, bestCum, batchMaxGain)
	}
	for i := len(moves) - 1; i >= bestK; i-- {
		if useGains && len(g.Neighbors(moves[i])) >= ParallelMinDegree {
			w.mover.MoveNoBuckets(moves[i])
		} else {
			b.Move(moves[i])
		}
	}
	if useGains {
		w.mover.Unbind()
	}
	w.moves = moves[:0] // keep the grown capacity for the next pass
	if bestCum < 0 {
		// The kept prefix traded cut for balance; report zero improvement
		// so callers' accounting (improvement = cut decrease) stays
		// non-negative in the balanced steady state.
		return 0, bestK, nil
	}
	return bestCum, bestK, nil
}

// emitMoveBatch reports an intra-pass progress sample: the cut of the
// tentative state, the cut the best prefix so far would yield, and the
// batch's largest single move gain.
func emitMoveBatch(obs trace.Observer, b *partition.Bisection, batchIdx, moves int, startCut, cum, bestCum, maxGain int64) {
	obs.Observe(trace.Event{
		Type: trace.TypeMoveBatch, Algo: "fm", Index: batchIdx,
		Cut: b.Cut(), BestCut: startCut - bestCum, Imbalance: b.Imbalance(),
		Gain: cum, MaxGain: maxGain, Moves: moves,
	})
}

// selectMove picks the best-gain unlocked vertex whose move would not
// push the imbalance beyond... any bound that could never recover: FM
// classically requires each individual move to respect the balance
// criterion. A move of weight w from side s changes the imbalance d
// (signed, w0−w1) to d∓2w; it is admissible if the result stays within
// tolerance OR strictly shrinks |d| (so repair moves are always allowed).
func selectMove(b *partition.Bisection, buckets [2]*partition.GainBuckets, tol int64) int32 {
	d := b.SideWeight(0) - b.SideWeight(1)
	g := b.Graph()
	bestV := int32(-1)
	var bestG int64
	// Unit vertex weights (weights are validated positive, so max==1 means
	// all are exactly 1) make admissibility a per-side constant: every
	// vertex on side s shifts d by the same ∓2. Deciding the side once
	// replaces walking every vertex of a locked-out side — without this,
	// each move of a pass scans the whole losing side whenever repair
	// moves must come from the other one, turning the pass quadratic
	// (hours at 10^6 vertices). Selection is unchanged: on an admissible
	// side every vertex is admissible, so the cursor's first entry is the
	// side's best, exactly what the general scan below would return.
	if g.MaxVertexWeight() == 1 {
		for s := 0; s < 2; s++ {
			nd := d - 2
			if s == 1 {
				nd = d + 2
			}
			abs, nabs := d, nd
			if abs < 0 {
				abs = -abs
			}
			if nabs < 0 {
				nabs = -nabs
			}
			if nabs > tol && nabs >= abs {
				continue // side s is locked out wholesale this move
			}
			if c := buckets[s].Cursor(); c.Valid() && (bestV < 0 || c.Gain() > bestG) {
				bestV, bestG = c.V(), c.Gain()
			}
		}
		return bestV
	}
	for s := 0; s < 2; s++ {
		for c := buckets[s].Cursor(); c.Valid(); c.Next() {
			v, gain := c.V(), c.Gain()
			if bestV >= 0 && gain <= bestG {
				break // buckets are sorted; nothing better remains on this side
			}
			w := int64(g.VertexWeight(v))
			nd := d
			if b.Side(v) == 0 {
				nd -= 2 * w
			} else {
				nd += 2 * w
			}
			abs, nabs := d, nd
			if abs < 0 {
				abs = -abs
			}
			if nabs < 0 {
				nabs = -nabs
			}
			if nabs <= tol || nabs < abs {
				bestV, bestG = v, gain
				break // best admissible on this side found
			}
		}
	}
	return bestV
}

// selectMoveParallel is selectMove's weighted path with the descending
// admissibility scan sharded: the bucket index space of each side is
// split into contiguous per-shard segments, every shard finds its
// segment's best admissible vertex (same descending LIFO walk, same
// admissibility test as the serial scan), and a serial reduce picks the
// winner.
//
// The reduce reproduces the serial selection exactly, independent of
// the shard count: segments partition the gain axis, so a side's best
// admissible vertex is the candidate of the highest segment that found
// one — the same vertex the serial descending scan stops at, because
// admissibility at a fixed pass state depends only on the vertex (side,
// weight), never on scan order, and each bucket's LIFO chain lies
// entirely inside one segment. Across sides the reduce keeps side 0 on
// gain ties, matching the serial side order (side 1 must strictly beat
// side 0 to win).
func (w *Refiner) selectMoveParallel(b *partition.Bisection, tol int64) int32 {
	w.pb = b
	w.propD = b.SideWeight(0) - b.SideWeight(1)
	w.propTol = tol
	w.pool.Run(w.propShards, w.propFn)
	w.pb = nil
	bestV := int32(-1)
	var bestG int64
	for side := 0; side < 2; side++ {
		for s := w.propShards - 1; s >= 0; s-- {
			v := w.propV[side*w.propShards+s]
			if v < 0 {
				continue // segment had no admissible vertex; try lower gains
			}
			if g := w.propG[side*w.propShards+s]; bestV < 0 || g > bestG {
				bestV, bestG = v, g
			}
			break // lower segments hold strictly lower gains
		}
	}
	return bestV
}

// propShard scans shard s's bucket-index segment of both sides for the
// segment's best admissible move, mirroring the serial weighted scan's
// admissibility rule: the move must keep |w0 − w1| within tolerance or
// strictly shrink it.
func (w *Refiner) propShard(s int) {
	b := w.pb
	g := b.Graph()
	d, tol, shards := w.propD, w.propTol, w.propShards
	abs := d
	if abs < 0 {
		abs = -abs
	}
	for side := 0; side < 2; side++ {
		gb := &w.buckets[side]
		span := gb.Span()
		lo, hi := s*span/shards, (s+1)*span/shards
		w.propV[side*shards+s] = -1
		for c := gb.RangeCursor(lo, hi); c.Valid(); c.Next() {
			v := c.V()
			nd := d
			if side == 0 {
				nd -= 2 * int64(g.VertexWeight(v))
			} else {
				nd += 2 * int64(g.VertexWeight(v))
			}
			nabs := nd
			if nabs < 0 {
				nabs = -nabs
			}
			if nabs <= tol || nabs < abs {
				w.propV[side*shards+s] = v
				w.propG[side*shards+s] = c.Gain()
				break // best admissible in this segment found
			}
		}
	}
}

// String implements a compact summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("fm{passes=%d moves=%d cut %d→%d}", s.Passes, s.Moves, s.InitialCut, s.FinalCut)
}
