package fm

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestPassSteadyStateZeroAlloc locks in the workspace contract: once a
// Refiner has seen a graph, further passes on graphs of that size
// allocate nothing at all.
func TestPassSteadyStateZeroAlloc(t *testing.T) {
	r := rng.NewFib(21)
	g, err := gen.GNP(300, 4.0/299, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	w := NewRefiner()
	if _, _, err := w.Pass(b, Options{}); err != nil {
		t.Fatal(err) // warm-up sizes the workspace
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := w.Pass(b, Options{}); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FM pass allocated %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceMatchesFreshResults verifies a reused workspace produces
// byte-identical refinements to fresh per-call state.
func TestWorkspaceMatchesFreshResults(t *testing.T) {
	w := NewRefiner()
	for _, n := range []int{150, 30, 80} {
		r := rng.NewFib(uint64(n))
		g, err := gen.GNP(n, 3.0/float64(n-1), r)
		if err != nil {
			t.Fatal(err)
		}
		shared := partition.NewRandom(g, rng.NewFib(7))
		fresh := shared.Clone()
		if _, err := w.Refine(shared, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := Refine(fresh, Options{}); err != nil {
			t.Fatal(err)
		}
		if shared.Cut() != fresh.Cut() {
			t.Fatalf("n=%d: shared workspace cut=%d, fresh cut=%d", n, shared.Cut(), fresh.Cut())
		}
		for v := int32(0); int(v) < n; v++ {
			if shared.Side(v) != fresh.Side(v) {
				t.Fatalf("n=%d: side[%d] differs between shared and fresh workspace", n, v)
			}
		}
	}
}
