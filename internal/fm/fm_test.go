package fm

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestPassNeverIncreasesCut(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (2 + r.Intn(25))
		g, err := gen.GNP(n, 0.2, r)
		if err != nil {
			return false
		}
		b := partition.NewRandom(g, r)
		before := b.Cut()
		imp, _, err := Pass(b, Options{})
		if err != nil {
			return false
		}
		if b.Validate() != nil {
			return false
		}
		return b.Cut() == before-imp && imp >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPassRespectsBalanceTolerance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (3 + r.Intn(20))
		g, err := gen.GNP(n, 0.25, r)
		if err != nil {
			return false
		}
		b := partition.NewRandom(g, r) // balanced (imbalance 0)
		if _, err := Refine(b, Options{}); err != nil {
			return false
		}
		// Default tolerance for unit weights is 1, and n is even, so the
		// parity of the imbalance is preserved: it must come back to 0.
		return b.Imbalance() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineFindsOptimumOnSmallGraphs(t *testing.T) {
	r := rng.NewFib(42)
	for trial := 0; trial < 15; trial++ {
		n := 2 * (3 + r.Intn(4))
		g, err := gen.GNP(n, 0.5, r)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.BisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 62
		for start := 0; start < 8; start++ {
			b, _, err := Run(g, Options{}, r)
			if err != nil {
				t.Fatal(err)
			}
			// Only count balanced outcomes against the balanced optimum.
			if b.Imbalance() == 0 && b.Cut() < best {
				best = b.Cut()
			}
		}
		if best < opt {
			t.Fatalf("trial %d: FM cut %d below proven optimum %d", trial, best, opt)
		}
		if best > opt {
			t.Logf("trial %d (n=%d): FM best-of-8 %d vs optimum %d", trial, n, best, opt)
		}
	}
}

func TestRefineImprovesMisplacedCliques(t *testing.T) {
	// Same worked example as the KL test: FM must also reach cut 0,
	// using two single moves (which transiently unbalance by 2) or a
	// balanced sequence.
	b := graph.NewBuilder(8)
	for _, c := range [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}} {
		b.AddEdge(c[0], c[1])
	}
	g := b.MustBuild()
	bis, err := partition.New(g, []uint8{0, 0, 0, 1, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(bis, Options{}); err != nil {
		t.Fatal(err)
	}
	if bis.Cut() != 0 {
		t.Fatalf("FM final cut %d, want 0", bis.Cut())
	}
	if bis.Imbalance() != 0 {
		t.Fatalf("FM final imbalance %d", bis.Imbalance())
	}
}

func TestRefineRepairsUnbalancedInput(t *testing.T) {
	// FM with everything on one side: repair moves are admissible because
	// they shrink the imbalance, so FM must end within tolerance.
	g := mustGraph(gen.Cycle(12))
	bis, err := partition.New(g, make([]uint8, 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(bis, Options{MaxImbalance: 0}); err != nil {
		t.Fatal(err)
	}
	if bis.Imbalance() > 1 {
		t.Fatalf("FM left imbalance %d", bis.Imbalance())
	}
	if err := bis.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineMaxPasses(t *testing.T) {
	r := rng.NewFib(6)
	g, err := gen.BReg(300, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	st, err := Refine(b, Options{MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes > 2 {
		t.Fatalf("passes = %d", st.Passes)
	}
}

func TestRunOnEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	b, _, err := Run(g, Options{}, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 {
		t.Fatal("nonzero cut on empty graph")
	}
}

func TestWeightedVerticesRespectTolerance(t *testing.T) {
	// Vertices of weight 2 with tolerance 2.
	bld := graph.NewBuilder(6)
	bld.AddEdge(0, 3)
	bld.AddEdge(1, 4)
	bld.AddEdge(2, 5)
	bld.AddEdge(0, 1)
	bld.AddEdge(3, 4)
	for v := int32(0); v < 6; v++ {
		bld.SetVertexWeight(v, 2)
	}
	g := bld.MustBuild()
	bis, err := partition.New(g, []uint8{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(bis, Options{MaxImbalance: 2}); err != nil {
		t.Fatal(err)
	}
	if bis.Imbalance() > 2 {
		t.Fatalf("imbalance %d exceeds tolerance 2", bis.Imbalance())
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Fatal("empty Stats string")
	}
}

func BenchmarkFMBReg2000D3(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(2000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(g, Options{}, r); err != nil {
			b.Fatal(err)
		}
	}
}
