package fm

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

// A checkpoint budget of k must be indistinguishable from MaxPasses = k:
// same sides, same cut, imbalance no worse than the start — the only
// difference is the stop sentinel. Exercises every checkpoint index up
// to the natural pass count.
func TestControlBudgetEqualsMaxPasses(t *testing.T) {
	g, err := gen.GNP(90, 0.1, rng.NewFib(17))
	if err != nil {
		t.Fatal(err)
	}
	full := partition.NewRandom(g, rng.NewFib(2))
	startImb := full.Imbalance()
	fullStats, err := Refine(full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Passes < 2 {
		t.Fatalf("want a multi-pass run to cancel into, got %d passes", fullStats.Passes)
	}
	for k := 1; k <= fullStats.Passes; k++ {
		capped := partition.NewRandom(g, rng.NewFib(2))
		if _, err := Refine(capped, Options{MaxPasses: k}); err != nil {
			t.Fatal(err)
		}
		budgeted := partition.NewRandom(g, rng.NewFib(2))
		_, err := Refine(budgeted, Options{Control: runctl.WithBudget(int64(k))})
		if k < fullStats.Passes {
			if !errors.Is(err, runctl.ErrBudgetExceeded) {
				t.Fatalf("budget %d: err = %v, want ErrBudgetExceeded", k, err)
			}
		} else if err != nil {
			t.Fatalf("budget %d: unexpected err %v", k, err)
		}
		if err := budgeted.Validate(); err != nil {
			t.Fatalf("budget %d: invalid bisection: %v", k, err)
		}
		if imb := budgeted.Imbalance(); imb > startImb && imb > 2*int64(g.MaxVertexWeight()) {
			t.Fatalf("budget %d: imbalance %d worse than start %d", k, imb, startImb)
		}
		if budgeted.Cut() != capped.Cut() || !bytes.Equal(budgeted.SidesRef(), capped.SidesRef()) {
			t.Fatalf("budget %d diverges from MaxPasses=%d: cut %d vs %d", k, k, budgeted.Cut(), capped.Cut())
		}
	}
}

// A context cancelled before the run starts must return the bisection
// untouched with the context's error.
func TestPreCancelledContextReturnsStart(t *testing.T) {
	g, err := gen.GNP(40, 0.2, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, rng.NewFib(6))
	want := b.Cut()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Refine(b, Options{Control: runctl.FromContext(ctx)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Passes != 0 || b.Cut() != want {
		t.Fatalf("cancelled run did work: %d passes, cut %d → %d", st.Passes, want, b.Cut())
	}
}
