package fm

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestParallelInitIdentity pins the parallel bucket filling to the
// serial reference: same sides, same cut, same statistics.
func TestParallelInitIdentity(t *testing.T) {
	saved := ParallelMinVertices
	ParallelMinVertices = 1
	defer func() { ParallelMinVertices = saved }()

	g, err := gen.GNP(1200, 0.01, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) ([]uint8, Stats) {
		b := partition.NewRandom(g, rng.NewFib(43))
		if opts.Workspace != nil {
			defer opts.Workspace.Close()
		}
		st, err := Refine(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		return b.Sides(), st
	}
	refSides, refStats := run(Options{})
	for _, degree := range []int{2, 4} {
		w := NewRefiner()
		sides, stats := run(Options{ParallelDegree: degree, Workspace: w})
		if stats != refStats {
			t.Fatalf("degree %d: stats differ: %+v vs %+v", degree, stats, refStats)
		}
		for v := range sides {
			if sides[v] != refSides[v] {
				t.Fatalf("degree %d: side of vertex %d differs", degree, v)
			}
		}
	}
}
