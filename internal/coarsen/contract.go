// Package coarsen implements the paper's compaction heuristic: contract
// the edges of a (random maximal) matching to obtain a smaller, denser
// graph, bisect the contracted graph, and project the result back to the
// original graph as a high-quality starting bisection.
//
// Contraction is weight-preserving: merged parallel edges sum their
// weights and merged vertices sum their vertex weights, so the weighted
// cut of any coarse bisection equals the cut of its projection, and
// weight balance on the coarse graph is vertex-count balance on the fine
// graph. These two invariants are what make compaction sound, and both
// are checked by the test suite.
//
// Contraction runs on a direct fine-CSR → coarse-CSR kernel (see
// Workspace in workspace.go): coarse ids are assigned in one sweep,
// coarse rows are written left-to-right into a flat half-edge buffer
// with parallel edges folded through an epoch-stamped position map, and
// the coarse graph adopts the buffers via graph.ResetCSR — no
// graph.Builder, no per-edge allocations. A persistent Workspace reuses
// every buffer across levels and runs; the package-level functions
// create an ephemeral one per call, so their results are independently
// owned. Both produce byte-identical graphs to the original
// Builder-based path, which remains available behind the
// DisableDirectCSR ablation flag and is pinned by the golden fixture in
// testdata.
package coarsen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Contraction records the correspondence between a fine graph and the
// coarse graph obtained by contracting a matching.
type Contraction struct {
	Fine   *graph.Graph
	Coarse *graph.Graph
	// Map[v] is the coarse vertex containing fine vertex v.
	Map []int32
	// members packs the fine vertices merged into each coarse vertex,
	// two slots per coarse id (a matching contracts at most pairs);
	// slot 2c+1 is −1 for an uncontracted singleton.
	members []int32
	// owner is the workspace level whose buffers back this contraction,
	// nil when the contraction was produced by the package-level
	// Contract and owns its storage outright.
	owner *level
}

// Members returns the fine vertices merged into coarse vertex cv: the
// smaller-id member first, and −1 as the second when cv is an
// uncontracted singleton.
func (c *Contraction) Members(cv int32) (a, b int32) {
	return c.members[2*cv], c.members[2*cv+1]
}

// Contract builds the coarse graph obtained by coalescing each matched
// pair of the given matching into a single vertex. Matched pairs must
// form a valid matching of g (checked). Edges that become internal to a
// coarse vertex (the matched edges themselves) disappear; parallel edges
// merge by weight summation; vertex weights add.
//
// The returned contraction owns fresh storage. Campaigns that contract
// repeatedly should hold a Workspace and call its Contract method,
// which reuses one set of buffers across calls.
func Contract(g *graph.Graph, mate []int32) (*Contraction, error) {
	return NewWorkspace().Contract(g, mate)
}

// Project lifts a bisection of the coarse graph to the fine graph: every
// fine vertex inherits the side of its coarse vertex. The weighted cut is
// preserved exactly. The fine bisection's weight imbalance equals the
// coarse one's. The result is freshly allocated and caller-owned; the
// Workspace Project method is the buffer-reusing counterpart.
func (c *Contraction) Project(coarse *partition.Bisection) (*partition.Bisection, error) {
	if coarse.Graph() != c.Coarse {
		return nil, fmt.Errorf("coarsen: Project called with a bisection of a different graph")
	}
	side := make([]uint8, c.Fine.N())
	cs := coarse.SidesRef() // read-only; avoids a per-vertex accessor call
	for v := range side {
		side[v] = cs[c.Map[v]]
	}
	return partition.New(c.Fine, side)
}

// Ratio returns the coarsening ratio |coarse| / |fine| (1.0 when nothing
// was contracted, 0.5 for a perfect matching).
func (c *Contraction) Ratio() float64 {
	if c.Fine.N() == 0 {
		return 1
	}
	return float64(c.Coarse.N()) / float64(c.Fine.N())
}
