// Package coarsen implements the paper's compaction heuristic: contract
// the edges of a (random maximal) matching to obtain a smaller, denser
// graph, bisect the contracted graph, and project the result back to the
// original graph as a high-quality starting bisection.
//
// Contraction is weight-preserving: merged parallel edges sum their
// weights and merged vertices sum their vertex weights, so the weighted
// cut of any coarse bisection equals the cut of its projection, and
// weight balance on the coarse graph is vertex-count balance on the fine
// graph. These two invariants are what make compaction sound, and both
// are checked by the test suite.
package coarsen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
)

// Contraction records the correspondence between a fine graph and the
// coarse graph obtained by contracting a matching.
type Contraction struct {
	Fine   *graph.Graph
	Coarse *graph.Graph
	// Map[v] is the coarse vertex containing fine vertex v.
	Map []int32
	// Members[c] lists the one or two fine vertices merged into coarse
	// vertex c.
	Members [][]int32
}

// Contract builds the coarse graph obtained by coalescing each matched
// pair of the given matching into a single vertex. Matched pairs must
// form a valid matching of g (checked). Edges that become internal to a
// coarse vertex (the matched edges themselves) disappear; parallel edges
// merge by weight summation; vertex weights add.
func Contract(g *graph.Graph, mate []int32) (*Contraction, error) {
	if err := matching.Validate(g, mate); err != nil {
		return nil, err
	}
	n := g.N()
	c := &Contraction{Fine: g, Map: make([]int32, n)}
	// Assign coarse ids: matched pairs get one id (at the smaller
	// endpoint's turn), singletons their own.
	next := int32(0)
	for v := 0; v < n; v++ {
		m := mate[v]
		if m >= 0 && m < int32(v) {
			c.Map[v] = c.Map[m]
			c.Members[c.Map[m]] = append(c.Members[c.Map[m]], int32(v))
			continue
		}
		c.Map[v] = next
		c.Members = append(c.Members, []int32{int32(v)})
		next++
	}
	b := graph.NewBuilder(int(next))
	for cv := int32(0); cv < next; cv++ {
		var w int64
		for _, fv := range c.Members[cv] {
			w += int64(g.VertexWeight(fv))
		}
		if w > 1<<30 {
			return nil, fmt.Errorf("coarsen: merged vertex weight %d overflows", w)
		}
		b.SetVertexWeight(cv, int32(w))
	}
	g.Edges(func(u, v, w int32) {
		cu, cv := c.Map[u], c.Map[v]
		if cu != cv {
			b.AddWeightedEdge(cu, cv, w)
		}
	})
	coarse, err := b.Build()
	if err != nil {
		return nil, err
	}
	c.Coarse = coarse
	return c, nil
}

// Project lifts a bisection of the coarse graph to the fine graph: every
// fine vertex inherits the side of its coarse vertex. The weighted cut is
// preserved exactly. The fine bisection's weight imbalance equals the
// coarse one's.
func (c *Contraction) Project(coarse *partition.Bisection) (*partition.Bisection, error) {
	if coarse.Graph() != c.Coarse {
		return nil, fmt.Errorf("coarsen: Project called with a bisection of a different graph")
	}
	side := make([]uint8, c.Fine.N())
	cs := coarse.SidesRef() // read-only; avoids a per-vertex accessor call
	for v := range side {
		side[v] = cs[c.Map[v]]
	}
	return partition.New(c.Fine, side)
}

// Ratio returns the coarsening ratio |coarse| / |fine| (1.0 when nothing
// was contracted, 0.5 for a perfect matching).
func (c *Contraction) Ratio() float64 {
	if c.Fine.N() == 0 {
		return 1
	}
	return float64(c.Coarse.N()) / float64(c.Fine.N())
}
