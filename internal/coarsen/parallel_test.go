package coarsen

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

// lowerParThresholds drops both parallel gates for the duration of a
// test so moderate instances exercise the sharded paths.
func lowerParThresholds(t *testing.T) {
	t.Helper()
	savedC, savedM := ParallelMinVertices, matching.ParallelMinVertices
	ParallelMinVertices = 1
	matching.ParallelMinVertices = 1
	t.Cleanup(func() {
		ParallelMinVertices = savedC
		matching.ParallelMinVertices = savedM
	})
}

// TestParallelContractByteIdentity pins the sharded kernel's contract:
// for any shard count, the coarse graph is byte-identical to the serial
// kernel's — same offsets, same rows, same aggregates.
func TestParallelContractByteIdentity(t *testing.T) {
	lowerParThresholds(t)
	g, err := gen.GNP(4000, 0.002, rng.NewFib(8))
	if err != nil {
		t.Fatal(err)
	}
	mate := matching.RandomMaximal(g, rng.NewFib(4))

	serial := NewWorkspace()
	cs, err := serial.Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}

	for _, degree := range []int{2, 3, 4, 8} {
		w := NewWorkspace()
		w.SetParallel(degree)
		cp, err := w.Contract(g, mate)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		a, b := cs.Coarse, cp.Coarse
		if a.N() != b.N() || a.M() != b.M() || a.TotalEdgeWeight() != b.TotalEdgeWeight() {
			t.Fatalf("degree %d: coarse graph shape differs", degree)
		}
		for v := int32(0); int(v) < a.N(); v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if len(na) != len(nb) {
				t.Fatalf("degree %d: row %d length differs", degree, v)
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("degree %d: row %d slot %d differs: %v vs %v", degree, v, i, na[i], nb[i])
				}
			}
			if a.VertexWeight(v) != b.VertexWeight(v) {
				t.Fatalf("degree %d: vertex weight %d differs", degree, v)
			}
		}
		w.Close()
	}
}

// TestParallelMultilevelMatchesSerial runs the full multilevel pipeline
// at several degrees and requires the exact same final bisection: the
// parallel matching is deterministic in the seed and the contraction is
// byte-identical, so the whole pipeline must be too.
func TestParallelMultilevelMatchesSerial(t *testing.T) {
	lowerParThresholds(t)
	g, err := gen.GNP(3000, 0.003, rng.NewFib(12))
	if err != nil {
		t.Fatal(err)
	}
	initial := func(cg *graph.Graph, r *rng.Rand) *partition.Bisection { return partition.NewRandom(cg, r) }

	run := func(degree int) []uint8 {
		w := NewWorkspace()
		defer w.Close()
		b, err := Multilevel(g, &MultilevelOptions{Workspace: w, ParallelDegree: degree},
			initial, nil, rng.NewFib(77))
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		return append([]uint8(nil), b.SidesRef()...)
	}
	// Degrees ≥ 2 share the handshake matching, so they must agree with
	// each other (degree 1 uses the serial greedy stream and legitimately
	// differs — the gate, not the fixtures, covers it here).
	ref := run(2)
	for _, degree := range []int{3, 4, 8} {
		got := run(degree)
		for v := range got {
			if got[v] != ref[v] {
				t.Fatalf("degree %d diverges from degree 2 at vertex %d", degree, v)
			}
		}
	}
}

// TestParallelContractSteadyAllocs gates the zero-allocation contract
// of the sharded kernel (run by scripts/check.sh).
func TestParallelContractSteadyAllocs(t *testing.T) {
	lowerParThresholds(t)
	g, err := gen.GNP(3000, 0.003, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkspace()
	w.SetParallel(4)
	defer w.Close()
	r := rng.NewFib(9)
	if avg := testing.AllocsPerRun(20, func() {
		w.Reset()
		mate := w.RandomMaximal(g, r)
		if _, err := w.Contract(g, mate); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("parallel match+contract allocates %.1f per run in steady state", avg)
	}
}
