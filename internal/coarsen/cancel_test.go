package coarsen

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

func cancelTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.GNP(400, 0.02, rng.NewFib(19))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cancelInitial(g *graph.Graph, r *rng.Rand) *partition.Bisection {
	return partition.NewRandom(g, r)
}

func cancelRefine(b *partition.Bisection, r *rng.Rand) {
	if _, err := kl.Refine(b, kl.Options{MaxPasses: 2}); err != nil {
		panic(err)
	}
}

// Multilevel under any checkpoint budget must still hand back a valid,
// balanced bisection of the original fine graph, with the stop sentinel
// when the budget ran out mid-coarsening; equal budgets must produce
// identical results.
func TestMultilevelControlBudget(t *testing.T) {
	g := cancelTestGraph(t)
	tol := partition.MinAchievableImbalance(g.TotalVertexWeight())
	for k := int64(1); k <= 8; k++ {
		opts := &MultilevelOptions{Control: runctl.WithBudget(k)}
		b, err := Multilevel(g, opts, cancelInitial, cancelRefine, rng.NewFib(5))
		if err != nil && !runctl.IsStop(err) {
			t.Fatalf("budget %d: %v", k, err)
		}
		if b == nil {
			t.Fatalf("budget %d: nil bisection", k)
		}
		if b.Graph() != g {
			t.Fatalf("budget %d: result is not a bisection of the fine graph", k)
		}
		if verr := b.Validate(); verr != nil {
			t.Fatalf("budget %d: %v", k, verr)
		}
		if imb := b.Imbalance(); imb > tol {
			t.Fatalf("budget %d: imbalance %d > %d", k, imb, tol)
		}
		opts2 := &MultilevelOptions{Control: runctl.WithBudget(k)}
		b2, err2 := Multilevel(g, opts2, cancelInitial, cancelRefine, rng.NewFib(5))
		if err2 != nil && !runctl.IsStop(err2) {
			t.Fatal(err2)
		}
		if b2.Cut() != b.Cut() || !bytes.Equal(b2.SidesRef(), b.SidesRef()) {
			t.Fatalf("budget %d not deterministic: cut %d vs %d", k, b.Cut(), b2.Cut())
		}
	}
	// A generous budget must not stop at all and must match the
	// uncontrolled run exactly.
	free, err := Multilevel(g, nil, cancelInitial, cancelRefine, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := Multilevel(g, &MultilevelOptions{Control: runctl.WithBudget(1 << 20)}, cancelInitial, cancelRefine, rng.NewFib(5))
	if err != nil {
		t.Fatalf("generous budget stopped: %v", err)
	}
	if roomy.Cut() != free.Cut() || !bytes.Equal(roomy.SidesRef(), free.SidesRef()) {
		t.Fatalf("generous budget diverges from uncontrolled run: cut %d vs %d", roomy.Cut(), free.Cut())
	}
}

// A context cancelled before the run starts skips coarsening entirely
// but still solves and balances the (original) graph.
func TestMultilevelPreCancelledContext(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := &MultilevelOptions{Control: runctl.FromContext(ctx)}
	b, err := Multilevel(g, opts, cancelInitial, cancelRefine, rng.NewFib(6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if b == nil || b.Graph() != g {
		t.Fatal("cancelled run did not return a bisection of g")
	}
	if verr := b.Validate(); verr != nil {
		t.Fatal(verr)
	}
	if imb := b.Imbalance(); imb > partition.MinAchievableImbalance(g.TotalVertexWeight()) {
		t.Fatalf("imbalance %d after pre-cancelled run", imb)
	}
}
