package coarsen

import (
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// workspacePipeline routes the golden stages through an explicit
// workspace, exercising the direct-CSR kernel (or, with
// DisableDirectCSR, the retained Builder path) and the arena's buffer
// reuse.
func workspacePipeline(w *Workspace) goldenPipeline {
	return goldenPipeline{
		contract: func(g *graph.Graph, mate []int32) (*Contraction, error) {
			w.Reset()
			return w.Contract(g, mate)
		},
		compactOnce: func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
			return w.CompactOnce(g, nil, initial, nil, r, obs)
		},
		multilevel: func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
			return Multilevel(g, &MultilevelOptions{Observer: obs, Workspace: w}, initial, nil, r)
		},
	}
}

// TestGoldenCompactionVariants holds every execution mode to the same
// fixture the package-level entry points are pinned to: a shared
// workspace reused across all cases and rounds (the multi-start steady
// state), and the DisableDirectCSR ablation that routes contraction
// through the original graph.Builder path. Matching records prove the
// kernel, the arena, and the Builder path are interchangeable bit for
// bit.
func TestGoldenCompactionVariants(t *testing.T) {
	want := readGoldenFixture(t, filepath.Join("testdata", "compact_golden.json"))
	variants := []struct {
		name string
		ws   *Workspace
	}{
		{name: "workspace_reuse", ws: NewWorkspace()},
		{name: "via_builder", ws: &Workspace{DisableDirectCSR: true}},
	}
	for _, v := range variants {
		p := workspacePipeline(v.ws)
		for round := 0; round < 2; round++ {
			for i, c := range goldenCases() {
				got, err := runGoldenCase(c, p)
				if err != nil {
					t.Fatalf("%s [%s round %d]: %v", c.Name, v.name, round, err)
				}
				if got != want[i] {
					t.Errorf("%s [%s round %d]:\n got %+v\nwant %+v", c.Name, v.name, round, got, want[i])
				}
			}
		}
	}
}
