package coarsen

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestMultilevelLevelEvents checks the pipeline's level_done stream:
// coarsen events with shrinking vertex counts, one "initial" event for
// the coarsest solve, and one "uncoarsen" event per projection ending
// at the input graph's size — and that attaching the observer does not
// change the final bisection.
func TestMultilevelLevelEvents(t *testing.T) {
	g, err := gen.GNP(300, 0.03, rng.NewFib(23))
	if err != nil {
		t.Fatal(err)
	}
	initial := func(cg *graph.Graph, r *rng.Rand) *partition.Bisection { return partition.NewRandom(cg, r) }

	plain, err := Multilevel(g, nil, initial, nil, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	traced, err := Multilevel(g, &MultilevelOptions{Observer: rec}, initial, nil, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut() != traced.Cut() {
		t.Fatalf("observer changed the cut: %d vs %d", plain.Cut(), traced.Cut())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if plain.Side(v) != traced.Side(v) {
			t.Fatalf("observer changed the bisection at vertex %d", v)
		}
	}

	var coarsenN []int
	var initials, uncoarsens int
	lastVertices := 0
	for _, e := range rec.Events() {
		if e.Type != trace.TypeLevelDone {
			t.Fatalf("unexpected event type %s from the pipeline", e.Type)
		}
		switch e.Phase {
		case "coarsen":
			coarsenN = append(coarsenN, e.Vertices)
		case "initial":
			initials++
		case "uncoarsen":
			uncoarsens++
			lastVertices = e.Vertices
		default:
			t.Fatalf("unknown phase %q", e.Phase)
		}
	}
	if len(coarsenN) == 0 || initials != 1 || uncoarsens != len(coarsenN) {
		t.Fatalf("level structure off: %d coarsen, %d initial, %d uncoarsen", len(coarsenN), initials, uncoarsens)
	}
	for i := 1; i < len(coarsenN); i++ {
		if coarsenN[i] >= coarsenN[i-1] {
			t.Fatalf("coarsening did not shrink: level %d has %d vertices after %d", i, coarsenN[i], coarsenN[i-1])
		}
	}
	if lastVertices != g.N() {
		t.Fatalf("final uncoarsen reports %d vertices, want %d", lastVertices, g.N())
	}
}

// TestCompactOnceLevelEvents checks the single-level compaction trace:
// one coarsen event and one uncoarsen event back at full size.
func TestCompactOnceLevelEvents(t *testing.T) {
	g, err := gen.GNP(200, 0.04, rng.NewFib(29))
	if err != nil {
		t.Fatal(err)
	}
	initial := func(cg *graph.Graph, r *rng.Rand) *partition.Bisection { return partition.NewRandom(cg, r) }
	rec := trace.NewRecorder(0)
	b, err := CompactOnce(g, nil, initial, nil, rng.NewFib(8), rec)
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (coarsen + uncoarsen): %+v", len(events), events)
	}
	if events[0].Phase != "coarsen" || events[0].Vertices >= g.N() {
		t.Fatalf("bad coarsen event: %+v", events[0])
	}
	if events[1].Phase != "uncoarsen" || events[1].Vertices != g.N() || events[1].Cut != b.Cut() {
		t.Fatalf("bad uncoarsen event: %+v (cut %d)", events[1], b.Cut())
	}
}
