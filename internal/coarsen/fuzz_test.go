package coarsen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

// FuzzContractEquivalence cross-checks the direct-CSR contraction
// kernel against a naive map-based model of contraction, in the spirit
// of graph.FuzzCSREquivalence: whatever weighted graph the fuzzer
// assembles and whatever random maximal matching it draws, the coarse
// graph must carry exactly the model's merged vertex weights and folded
// edge weights, in valid sorted CSR — and the DisableDirectCSR Builder
// path must produce the identical graph.
func FuzzContractEquivalence(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add([]byte{7, 0, 1, 3, 1, 2, 5, 2, 3, 1, 0, 3, 2}, uint64(7))
	f.Add([]byte{4, 0, 1, 1, 2, 3, 1, 0, 2, 1, 1, 3, 1, 0, 3, 1, 1, 2, 1}, uint64(42)) // K4-ish
	f.Add([]byte{60, 0, 59, 9, 59, 1, 9, 1, 0, 9}, uint64(3))
	f.Fuzz(func(t *testing.T, in []byte, seed uint64) {
		n := 2
		if len(in) > 0 {
			n = 2 + int(in[0])%60
			in = in[1:]
		}
		b := graph.NewBuilder(n)
		any := false
		for len(in) >= 3 {
			u := int32(int(in[0]) % n)
			v := int32(int(in[1]) % n)
			w := int32(in[2])%16 + 1
			in = in[3:]
			if u == v {
				return // Builder rejects self-loops; nothing to contract
			}
			b.AddWeightedEdge(u, v, w)
			any = true
		}
		if !any {
			return
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build rejected a valid edge sequence: %v", err)
		}
		mate := matching.RandomMaximal(g, rng.NewFib(seed))

		// Naive model: coarse ids by the documented sweep (matched pair
		// owned by its smaller endpoint, ids in fine-vertex order), then
		// weights accumulated in maps.
		cmap := make([]int32, n)
		next := int32(0)
		for v := 0; v < n; v++ {
			if m := mate[v]; m >= 0 && m < int32(v) {
				cmap[v] = cmap[m]
				continue
			}
			cmap[v] = next
			next++
		}
		vw := make(map[int32]int64)
		for v := 0; v < n; v++ {
			vw[cmap[v]] += int64(g.VertexWeight(int32(v)))
		}
		ew := make(map[[2]int32]int64)
		g.Edges(func(u, v, w int32) {
			cu, cv := cmap[u], cmap[v]
			if cu == cv {
				return
			}
			if cu > cv {
				cu, cv = cv, cu
			}
			ew[[2]int32{cu, cv}] += int64(w)
		})

		check := func(name string, c *Contraction) {
			t.Helper()
			if verr := c.Coarse.Validate(); verr != nil {
				t.Fatalf("%s: coarse graph fails Validate: %v", name, verr)
			}
			if c.Coarse.N() != int(next) {
				t.Fatalf("%s: coarse N = %d, model %d", name, c.Coarse.N(), next)
			}
			for v := 0; v < n; v++ {
				if c.Map[v] != cmap[v] {
					t.Fatalf("%s: Map[%d] = %d, model %d", name, v, c.Map[v], cmap[v])
				}
			}
			for cv := int32(0); cv < next; cv++ {
				if got := int64(c.Coarse.VertexWeight(cv)); got != vw[cv] {
					t.Fatalf("%s: coarse vertex %d weight %d, model %d", name, cv, got, vw[cv])
				}
			}
			if c.Coarse.M() != len(ew) {
				t.Fatalf("%s: coarse M = %d, model has %d folded edges", name, c.Coarse.M(), len(ew))
			}
			for key, w := range ew {
				if got := int64(c.Coarse.EdgeWeight(key[0], key[1])); got != w {
					t.Fatalf("%s: coarse edge {%d,%d} weight %d, model %d", name, key[0], key[1], got, w)
				}
			}
		}

		direct, err := Contract(g, mate)
		if err != nil {
			t.Fatalf("kernel Contract failed: %v", err)
		}
		check("kernel", direct)

		wsb := &Workspace{DisableDirectCSR: true}
		viaBuilder, err := wsb.Contract(g, mate)
		if err != nil {
			t.Fatalf("builder Contract failed: %v", err)
		}
		check("builder", viaBuilder)
	})
}
