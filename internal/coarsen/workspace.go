package coarsen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// Workspace is the compaction arena: it owns the matching scratch, one
// buffer set per coarsening level (coarse-id map, member pairs, coarse
// CSR arrays, the epoch-stamped fold map, a reusable projection
// bisection), and the projection side buffer — everything the
// match → contract → project pipeline touches — so a warm workspace
// compacts with zero steady-state heap allocations. Buffers are sized
// by the fine graph's dimensions (every coarse quantity is bounded by
// its fine counterpart), which makes the steady state deterministic
// even though the coarse vertex count varies run to run with the random
// matching.
//
// Results are identical with and without a workspace: the workspace
// matching consumes the same random stream as matching.RandomMaximal,
// and the contraction kernel reproduces the Builder-based contraction
// byte for byte (the golden fixture pins both). A Workspace must not be
// shared across goroutines; core.WithWorkspace and ParallelBestOf
// create one per worker.
type Workspace struct {
	// DisableDirectCSR routes contraction through the original
	// graph.Builder path instead of the direct fine-CSR → coarse-CSR
	// kernel. Ablation flag in the spirit of kl's DisableScratch and
	// anneal's DisableExpTable: results are identical either way, only
	// the time and allocation profiles differ.
	DisableDirectCSR bool

	match  matching.Workspace
	levels []*level
	depth  int
	side   []uint8 // projection scratch, sized to the largest fine graph seen

	// spec is the lazily created spectral solver workspace for
	// MultilevelOptions.SpectralInit coarsest-level seeding. It shares
	// the arena's pool (attached on creation and by SetParallel).
	spec *spectral.Workspace

	// Sharded-contraction state (see parallel.go): the shared pool, one
	// epoch-stamped dedup map per shard, per-shard error slots, and the
	// pre-bound phase closures plus per-run parameters that keep the
	// parallel kernel allocation-free.
	pool    *par.Pool
	poolDeg int
	cstamp  [][]uint32
	cpos    [][]int32
	cepoch  []uint32
	cerrs   []error
	countFn func(int)
	writeFn func(int)
	cg      *graph.Graph
	clv     *level
	ccn     int
	cshards int
}

// overflowErr formats the merged-weight overflow error identically on
// the serial and sharded kernel paths.
func overflowErr(cv, cu int32, merged int64) error {
	return fmt.Errorf("coarsen: merged weight %d on edge {%d,%d} overflows", merged, cv, cu)
}

// level owns the buffers of one coarsening level. The slots live in a
// stack that Reset rewinds and Contract pushes, so a multilevel run
// reuses the same slots in the same order every time.
type level struct {
	con     Contraction
	g       graph.Graph  // coarse graph storage; con.Coarse == &g on the kernel path
	off     []int32      // coarse CSR offsets
	edges   []graph.Edge // coarse half-edges
	vw      []int32      // coarse vertex weights
	pos     []int32      // per-coarse-vertex write position within the current row
	stamp   []uint32     // epoch stamps validating pos entries
	epoch   uint32
	fineBis partition.Bisection // reusable projection target for interior levels
}

// NewWorkspace returns an empty Workspace; buffers are sized lazily on
// first use and grown as needed, so one workspace serves graphs of any
// size.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset rewinds the level stack so the next Contract reuses the first
// slot. Buffers are retained; graphs and contractions produced before
// the Reset are invalidated by the subsequent reuse.
func (w *Workspace) Reset() { w.depth = 0 }

// RandomMaximal runs matching.RandomMaximal on the workspace's matching
// scratch: same stream, same result, zero steady-state allocations. The
// returned mate array is valid until the workspace's next matching. The
// method value satisfies MatchFunc.
func (w *Workspace) RandomMaximal(g *graph.Graph, r *rng.Rand) []int32 {
	return w.match.RandomMaximal(g, r)
}

// HeavyEdge runs matching.HeavyEdge on the workspace's matching
// scratch; see RandomMaximal.
func (w *Workspace) HeavyEdge(g *graph.Graph, r *rng.Rand) []int32 {
	return w.match.HeavyEdge(g, r)
}

// Contract is the workspace counterpart of the package-level Contract:
// same validation, same coarse graph, but every output — the
// contraction record, its map and member arrays, and the coarse graph's
// CSR — lives in workspace buffers that the next Reset/Contract cycle
// reuses. The returned contraction is valid until this level slot is
// reused.
func (w *Workspace) Contract(g *graph.Graph, mate []int32) (*Contraction, error) {
	if err := matching.Validate(g, mate); err != nil {
		return nil, err
	}
	lv := w.pushLevel()
	if err := w.contractInto(lv, g, mate); err != nil {
		w.depth--
		return nil, err
	}
	return &lv.con, nil
}

func (w *Workspace) pushLevel() *level {
	if w.depth == len(w.levels) {
		w.levels = append(w.levels, &level{})
	}
	lv := w.levels[w.depth]
	lv.con.owner = lv
	w.depth++
	return lv
}

// contractInto runs the contraction into lv's buffers: coarse-id
// assignment, member pairs, summed vertex weights, then the coarse
// adjacency — directly in CSR via the kernel (parallelized across row
// shards when a pool is attached and the graph is large, see
// parallel.go), or through graph.Builder when the ablation flag asks
// for the original path.
func (w *Workspace) contractInto(lv *level, g *graph.Graph, mate []int32) error {
	n := g.N()
	c := &lv.con
	c.Fine = g
	c.Coarse = nil
	c.Map = growInt32(c.Map, n)
	c.members = growInt32(c.members, 2*n)

	// Assign coarse ids: matched pairs get one id (at the smaller
	// endpoint's turn), singletons their own — the same order the
	// original implementation used, so Map is bit-identical.
	next := int32(0)
	for v := 0; v < n; v++ {
		m := mate[v]
		if m >= 0 && m < int32(v) {
			cv := c.Map[m]
			c.Map[v] = cv
			c.members[2*cv+1] = int32(v)
			continue
		}
		c.Map[v] = next
		c.members[2*next] = int32(v)
		c.members[2*next+1] = -1
		next++
	}
	cn := int(next)

	// Coarse vertex weights, with the same overflow bound the Builder
	// path enforced before any edge work.
	lv.vw = growInt32(lv.vw, n)[:cn]
	for cv := range lv.vw {
		a, b := c.members[2*cv], c.members[2*cv+1]
		wsum := int64(g.VertexWeight(a))
		if b >= 0 {
			wsum += int64(g.VertexWeight(b))
		}
		if wsum > 1<<30 {
			return fmt.Errorf("coarsen: merged vertex weight %d overflows", wsum)
		}
		lv.vw[cv] = int32(wsum)
	}

	if w.DisableDirectCSR {
		return contractViaBuilder(c, lv.vw, cn)
	}

	lv.off = growInt32(lv.off, n+1)
	lv.edges = growEdges(lv.edges, 2*g.M())
	if w.parallelRows(n) {
		// Two-phase sharded kernel (parallel.go): byte-identical rows,
		// built concurrently.
		if err := w.contractRowsParallel(lv, g, cn); err != nil {
			return err
		}
		if err := lv.g.ResetCSR(lv.off[:cn+1], lv.edges[:lv.off[cn]], lv.vw); err != nil {
			return fmt.Errorf("coarsen: contraction kernel produced invalid CSR: %w", err)
		}
		c.Coarse = &lv.g
		return nil
	}

	// Direct kernel. Rows are written left to right with one global
	// cursor: coarse vertex cv's row is complete before cv+1's begins,
	// and the upper bound (every fine half-edge survives) sizes the
	// buffer, so no counting prepass or compaction pass is needed. A
	// parallel edge — the second member reaching a coarse neighbor the
	// first member already reached, or both members' edges to the two
	// halves of another contracted pair — folds into its existing slot
	// through the epoch-stamped position map: stamp[cu] == epoch says
	// pos[cu] is live for the current row, and bumping the epoch per
	// row invalidates the whole map in O(1).
	lv.pos = growInt32(lv.pos, n)
	lv.stamp = growUint32(lv.stamp, n)
	pos, stamp, edges, cmap := lv.pos, lv.stamp, lv.edges, c.Map
	cur := int32(0)
	for cv := int32(0); int(cv) < cn; cv++ {
		lv.off[cv] = cur
		lv.epoch++
		if lv.epoch == 0 {
			// The epoch counter wrapped: stale stamps from 2³² rows ago
			// could collide, so clear them once and restart at 1.
			for i := range stamp {
				stamp[i] = 0
			}
			lv.epoch = 1
		}
		epoch := lv.epoch
		rowStart := cur
		a, b := c.members[2*cv], c.members[2*cv+1]
		for k := 0; k < 2; k++ {
			fv := a
			if k == 1 {
				if b < 0 {
					break
				}
				fv = b
			}
			for _, e := range g.Neighbors(fv) {
				cu := cmap[e.To]
				if cu == cv {
					continue // the contracted matching edge itself
				}
				if stamp[cu] == epoch {
					i := pos[cu]
					merged := int64(edges[i].W) + int64(e.W)
					if merged > 1<<30 {
						return overflowErr(cv, cu, merged)
					}
					edges[i].W = int32(merged)
				} else {
					stamp[cu] = epoch
					pos[cu] = cur
					edges[cur] = graph.Edge{To: cu, W: e.W}
					cur++
				}
			}
		}
		// Members' neighbor lists are each sorted by fine id, but coarse
		// ids are not monotone in fine ids and the two members' runs
		// interleave — sort the short row to establish CSR order.
		graph.SortEdges(edges[rowStart:cur])
	}
	lv.off[cn] = cur
	if err := lv.g.ResetCSR(lv.off[:cn+1], edges[:cur], lv.vw); err != nil {
		return fmt.Errorf("coarsen: contraction kernel produced invalid CSR: %w", err)
	}
	c.Coarse = &lv.g
	return nil
}

// contractViaBuilder is the original contraction path — one
// graph.Builder fed every surviving fine edge, with its sort-and-merge
// Build — kept as the DisableDirectCSR ablation reference. It must stay
// behaviorally identical to the kernel; the golden fixture and
// FuzzContractEquivalence hold both to the same output.
func contractViaBuilder(c *Contraction, vw []int32, cn int) error {
	b := graph.NewBuilder(cn)
	for cv := 0; cv < cn; cv++ {
		b.SetVertexWeight(int32(cv), vw[cv])
	}
	c.Fine.Edges(func(u, v, w int32) {
		cu, cv := c.Map[u], c.Map[v]
		if cu != cv {
			b.AddWeightedEdge(cu, cv, w)
		}
	})
	coarse, err := b.Build()
	if err != nil {
		return err
	}
	c.Coarse = coarse
	return nil
}

// Project is the workspace counterpart of Contraction.Project: the fine
// bisection is materialized in the contraction's level slot (via
// partition.Reset) instead of freshly allocated, so a warm interior
// projection allocates nothing. The returned bisection is owned by the
// workspace — valid until the next Project on the same contraction or
// until the level slot is reused — which is why the multilevel driver
// uses it only for interior levels and returns a caller-owned bisection
// from the final one. A contraction not produced by a workspace falls
// back to the allocating path.
func (w *Workspace) Project(c *Contraction, coarse *partition.Bisection) (*partition.Bisection, error) {
	lv := c.owner
	if lv == nil {
		return c.Project(coarse)
	}
	if coarse.Graph() != c.Coarse {
		return nil, fmt.Errorf("coarsen: Project called with a bisection of a different graph")
	}
	n := c.Fine.N()
	w.side = growUint8(w.side, n)
	side := w.side
	cs := coarse.SidesRef()
	for v := 0; v < n; v++ {
		side[v] = cs[c.Map[v]]
	}
	if err := lv.fineBis.Reset(c.Fine, side); err != nil {
		return nil, err
	}
	return &lv.fineBis, nil
}

// CompactOnce is the workspace counterpart of the package-level
// CompactOnce: identical protocol, identical random stream, identical
// trace events, but the matching, contraction, and interior buffers all
// come from the workspace. The returned fine bisection is freshly
// allocated and caller-owned (multi-start drivers keep candidates from
// several runs alive at once), so one bisection allocation per run
// remains; everything interior is reused.
func (w *Workspace) CompactOnce(g *graph.Graph, match MatchFunc, initial InitialFunc, refine RefineFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
	if initial == nil {
		return nil, fmt.Errorf("coarsen: CompactOnce needs an initial bisector")
	}
	w.Reset()
	var mate []int32
	if match == nil {
		mate = w.match.RandomMaximal(g, r)
	} else {
		mate = match(g, r)
	}
	if matching.Size(mate) == 0 {
		// Nothing to contract (edgeless graph): solve directly.
		b := initial(g, r)
		if b == nil || b.Graph() != g {
			return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
		}
		partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
		return b, nil
	}
	c, err := w.Contract(g, mate)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "coarsen",
			Index: 0, Vertices: c.Coarse.N(), Edges: c.Coarse.M(),
		})
	}
	cb := initial(c.Coarse, r)
	if cb == nil || cb.Graph() != c.Coarse {
		return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
	}
	partition.RepairBalance(cb, partition.MinAchievableImbalance(c.Coarse.TotalVertexWeight()))
	if refine != nil {
		refine(cb, r)
	}
	fine, err := c.Project(cb)
	if err != nil {
		return nil, err
	}
	partition.RepairBalance(fine, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "uncoarsen",
			Index: 0, Cut: fine.Cut(), BestCut: fine.Cut(),
			Imbalance: fine.Imbalance(), Vertices: g.N(), Edges: g.M(),
		})
	}
	return fine, nil
}

// multilevel is the workspace-backed body of the package-level
// Multilevel driver: identical protocol, stream, and trace events, with
// contractions, level graphs, and interior projections all running in
// workspace buffers. Only the final fine bisection (and the coarsest
// initial solve, which the initial bisector owns) is freshly allocated.
// Options are assumed already defaulted by withDefaults.
func (w *Workspace) multilevel(g *graph.Graph, o MultilevelOptions, initial InitialFunc, refine RefineFunc, r *rng.Rand) (*partition.Bisection, error) {
	w.Reset()

	// Coarsening phase. The level stack w.levels[0:nlv] plays the role of
	// the original implementation's levels slice. A stop request halts
	// coarsening where it stands; the rest of the pipeline still runs
	// (minus refinement) so the caller gets a valid fine-graph bisection.
	var stopErr error
	nlv := 0
	cur := g
	for nlv < o.MaxLevels && cur.N() > o.MinSize {
		if stopErr = o.Control.Check(); stopErr != nil {
			break
		}
		mate := o.Match(cur, r)
		if matching.Size(mate) == 0 {
			break
		}
		c, err := w.Contract(cur, mate)
		if err != nil {
			return nil, err
		}
		if c.Ratio() > o.MinRatio {
			w.depth-- // pop the unproductive level so its slot is reusable
			break
		}
		nlv++
		cur = c.Coarse
		if o.Observer != nil {
			o.Observer.Observe(trace.Event{
				Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "coarsen",
				Index: nlv - 1, Vertices: cur.N(), Edges: cur.M(),
			})
		}
	}

	// Coarsest solution.
	b := w.coarsestSolve(cur, o, initial, r)
	if b == nil || b.Graph() != cur {
		return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
	}
	partition.RepairBalance(b, partition.MinAchievableImbalance(cur.TotalVertexWeight()))
	if refine != nil && stopErr == nil {
		refine(b, r)
	}
	if o.Observer != nil {
		o.Observer.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "initial",
			Index: nlv, Cut: b.Cut(), BestCut: b.Cut(),
			Imbalance: b.Imbalance(), Vertices: cur.N(), Edges: cur.M(),
		})
	}

	// Uncoarsening phase. Interior projections land in workspace-owned
	// bisections (each level slot has its own, so b never aliases the
	// target it projects into); the last projection — the bisection this
	// function returns — is freshly allocated and caller-owned, because
	// multi-start drivers keep results from several runs alive while the
	// workspace moves on to the next.
	for i := nlv - 1; i >= 0; i-- {
		c := &w.levels[i].con
		var fine *partition.Bisection
		var err error
		if i == 0 {
			fine, err = c.Project(b)
		} else {
			fine, err = w.Project(c, b)
		}
		if err != nil {
			return nil, err
		}
		b = fine
		partition.RepairBalance(b, partition.MinAchievableImbalance(b.Graph().TotalVertexWeight()))
		if refine != nil && stopErr == nil {
			refine(b, r)
		}
		if o.Observer != nil {
			o.Observer.Observe(trace.Event{
				Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "uncoarsen",
				Index: i, Cut: b.Cut(), BestCut: b.Cut(),
				Imbalance: b.Imbalance(), Vertices: b.Graph().N(), Edges: b.Graph().M(),
			})
		}
	}
	return b, stopErr
}

// coarsestSolve produces the coarsest-level bisection: the spectral
// median split when SpectralInit is set, the initial bisector
// otherwise. The spectral solver reuses a workspace owned by the arena
// (sharing its pool), so repeated runs don't re-grow solver buffers. A
// solver that stops at its matvec budget still seeds with the
// best-effort split; a hard solver failure falls back to initial so
// Multilevel never loses a result to its own seeding heuristic.
func (w *Workspace) coarsestSolve(cur *graph.Graph, o MultilevelOptions, initial InitialFunc, r *rng.Rand) *partition.Bisection {
	if !o.SpectralInit {
		return initial(cur, r)
	}
	if w.spec == nil {
		w.spec = spectral.NewWorkspace()
		w.spec.SetPool(w.pool)
	}
	b, err := spectral.Bisect(cur, spectral.Options{Workspace: w.spec}, r)
	if err != nil && !spectral.IsNotConverged(err) {
		return initial(cur, r)
	}
	return b
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growUint8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growEdges(s []graph.Edge, n int) []graph.Edge {
	if cap(s) < n {
		return make([]graph.Edge, n)
	}
	return s[:n]
}
