package coarsen

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/compact_golden.json from the current implementation")

// goldenCase is one graph pinned by the compaction fixture. The cases
// span the degree regimes the paper benchmarks (sparse GNP, planted
// regular) plus a small instance that drives Multilevel through several
// levels relative to its size.
type goldenCase struct {
	Name string
	g    *graph.Graph
	seed uint64
}

// goldenRecord reduces one case to hashes of everything compaction
// computes: the random maximal matching, the contracted graph (ids,
// weights, folded adjacency), and the full CompactOnce and Multilevel
// results including their trace event streams. The fixture was captured
// before the direct-CSR kernel and workspace arena landed, so passing
// it proves the rewritten pipeline reproduces the Builder-based
// implementation — RNG stream, cuts, sides, and trace bytes — exactly.
type goldenRecord struct {
	Name             string `json:"name"`
	MateHash         uint64 `json:"mate_hash"`
	CoarseHash       uint64 `json:"coarse_hash"`
	CompactCut       int64  `json:"compact_cut"`
	CompactSidesHash uint64 `json:"compact_sides_hash"`
	CompactTraceHash uint64 `json:"compact_trace_hash"`
	MultiCut         int64  `json:"multi_cut"`
	MultiSidesHash   uint64 `json:"multi_sides_hash"`
	MultiTraceHash   uint64 `json:"multi_trace_hash"`
}

func goldenCases() []goldenCase {
	mk := func(name string, g *graph.Graph, err error, seed uint64) goldenCase {
		if err != nil {
			panic(err)
		}
		return goldenCase{Name: name, g: g, seed: seed}
	}
	gnp, gnpErr := gen.GNP(300, 4.0/299.0, rng.NewFib(21))
	breg, bregErr := gen.BReg(200, 6, 4, rng.NewFib(23))
	small, smallErr := gen.GNP(80, 0.05, rng.NewFib(25))
	return []goldenCase{
		mk("gnp300_d4", gnp, gnpErr, 31),
		mk("breg200_b6_d4", breg, bregErr, 37),
		mk("gnp80_d4", small, smallErr, 41),
	}
}

func goldenInitial(g *graph.Graph, r *rng.Rand) *partition.Bisection {
	return partition.NewRandom(g, r)
}

func hashInt32s(h interface{ Write([]byte) (int, error) }, s []int32) {
	var buf [4]byte
	for _, x := range s {
		binary.LittleEndian.PutUint32(buf[:], uint32(x))
		h.Write(buf[:])
	}
}

// hashContraction digests the contraction: coarse size, fine-to-coarse
// map, and the coarse graph's vertex weights and (sorted) adjacency.
func hashContraction(c *Contraction) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d %d\n", c.Coarse.N(), c.Coarse.M())
	hashInt32s(h, c.Map)
	for v := int32(0); int(v) < c.Coarse.N(); v++ {
		fmt.Fprintf(h, "v%d w%d:", v, c.Coarse.VertexWeight(v))
		for _, e := range c.Coarse.Neighbors(v) {
			fmt.Fprintf(h, " %d/%d", e.To, e.W)
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

func hashTrace(events []trace.Event) uint64 {
	h := fnv.New64a()
	for _, e := range events {
		e.ElapsedNS = 0
		fmt.Fprintf(h, "%+v\n", e)
	}
	return h.Sum64()
}

// goldenPipeline abstracts which implementation runs the three pinned
// stages, so the same record builder covers the package-level entry
// points and every workspace/ablation variant.
type goldenPipeline struct {
	contract    func(g *graph.Graph, mate []int32) (*Contraction, error)
	compactOnce func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error)
	multilevel  func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error)
}

func packagePipeline() goldenPipeline {
	return goldenPipeline{
		contract: Contract,
		compactOnce: func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
			return CompactOnce(g, nil, initial, nil, r, obs)
		},
		multilevel: func(g *graph.Graph, initial InitialFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
			return Multilevel(g, &MultilevelOptions{Observer: obs}, initial, nil, r)
		},
	}
}

// runGoldenCase executes one fixture case through a pipeline and
// reduces it to a record.
func runGoldenCase(c goldenCase, p goldenPipeline) (goldenRecord, error) {
	rec := goldenRecord{Name: c.Name}

	mate := matching.RandomMaximal(c.g, rng.NewFib(c.seed))
	mh := fnv.New64a()
	hashInt32s(mh, mate)
	rec.MateHash = mh.Sum64()
	con, err := p.contract(c.g, mate)
	if err != nil {
		return rec, err
	}
	rec.CoarseHash = hashContraction(con)

	tr := trace.NewRecorder(0)
	b, err := p.compactOnce(c.g, goldenInitial, rng.NewFib(c.seed+1), tr)
	if err != nil {
		return rec, err
	}
	rec.CompactCut = b.Cut()
	sh := fnv.New64a()
	sh.Write(b.SidesRef())
	rec.CompactSidesHash = sh.Sum64()
	rec.CompactTraceHash = hashTrace(tr.Events())

	tr = trace.NewRecorder(0)
	mb, err := p.multilevel(c.g, goldenInitial, rng.NewFib(c.seed+2), tr)
	if err != nil {
		return rec, err
	}
	rec.MultiCut = mb.Cut()
	sh = fnv.New64a()
	sh.Write(mb.SidesRef())
	rec.MultiSidesHash = sh.Sum64()
	rec.MultiTraceHash = hashTrace(tr.Events())
	return rec, nil
}

// TestGoldenCompaction pins matching, contraction, CompactOnce, and
// Multilevel — RNG streams, cuts, side assignments, and trace event
// streams — to a committed fixture captured from the pre-kernel
// implementation.
func TestGoldenCompaction(t *testing.T) {
	path := filepath.Join("testdata", "compact_golden.json")
	if *updateGolden {
		var recs []goldenRecord
		for _, c := range goldenCases() {
			r, err := runGoldenCase(c, packagePipeline())
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want := readGoldenFixture(t, path)
	for i, c := range goldenCases() {
		got, err := runGoldenCase(c, packagePipeline())
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got != want[i] {
			t.Errorf("%s:\n got %+v\nwant %+v", c.Name, got, want[i])
		}
	}
}

func readGoldenFixture(t *testing.T, path string) []goldenRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if n := len(goldenCases()); len(want) != n {
		t.Fatalf("fixture has %d records for %d cases; rerun with -update", len(want), n)
	}
	return want
}
