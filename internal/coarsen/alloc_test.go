package coarsen

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

// allocGraph builds the instance the steady-state tests run on — the
// paper's planted-regular family at the degree the benchmarks use —
// plus a side buffer with capacity for any coarse bisection of it.
func allocGraph(t testing.TB) *graphAndScratch {
	t.Helper()
	g, err := gen.BReg(400, 8, 4, rng.NewFib(42))
	if err != nil {
		t.Fatal(err)
	}
	return &graphAndScratch{g: g, cs: make([]uint8, g.N())}
}

type graphAndScratch struct {
	g  *graph.Graph
	cs []uint8
}

// warmWorkspace bounds every arena buffer by contracting the empty
// matching once: the coarse graph then has the full fine vertex count,
// so every later (random, smaller) contraction fits without growth.
// The random coarse size varies run to run, which is exactly why the
// arena sizes by fine-graph bounds — this warm-up makes that bound
// explicit for the allocation assertions.
func warmWorkspace(t testing.TB, w *Workspace, gs *graphAndScratch) {
	t.Helper()
	empty := make([]int32, gs.g.N())
	for i := range empty {
		empty[i] = -1
	}
	w.Reset()
	if _, err := w.Contract(gs.g, empty); err != nil {
		t.Fatal(err)
	}
	w.Reset()
}

// TestContractSteadyAllocs: a warm workspace matches and contracts with
// zero heap allocations per cycle.
func TestContractSteadyAllocs(t *testing.T) {
	gs := allocGraph(t)
	w := NewWorkspace()
	warmWorkspace(t, w, gs)
	r := rng.NewFib(7)
	var failed bool
	allocs := testing.AllocsPerRun(50, func() {
		w.Reset()
		mate := w.RandomMaximal(gs.g, r)
		if _, err := w.Contract(gs.g, mate); err != nil {
			failed = true
		}
	})
	if failed {
		t.Fatal("Contract failed during steady-state run")
	}
	if allocs != 0 {
		t.Errorf("warm match+contract cycle allocates %v times per run, want 0", allocs)
	}
}

// TestCompactCycleSteadyAllocs: the full interior compaction cycle —
// match, contract, coarse bisection reset, workspace projection,
// balance repair — runs allocation-free on a warm workspace. (The
// public CompactOnce additionally allocates its caller-owned result;
// this test pins everything beneath that.)
func TestCompactCycleSteadyAllocs(t *testing.T) {
	gs := allocGraph(t)
	w := NewWorkspace()
	warmWorkspace(t, w, gs)
	var coarseBis partition.Bisection
	// Warm the reusable coarse bisection against the fine graph, whose
	// size bounds every coarse graph's.
	if err := coarseBis.Reset(gs.g, gs.cs); err != nil {
		t.Fatal(err)
	}
	r := rng.NewFib(7)
	minImb := partition.MinAchievableImbalance(gs.g.TotalVertexWeight())
	var failed bool
	cycle := func() {
		w.Reset()
		mate := w.RandomMaximal(gs.g, r)
		c, err := w.Contract(gs.g, mate)
		if err != nil {
			failed = true
			return
		}
		cn := c.Coarse.N()
		cs := gs.cs[:cn]
		for i := range cs {
			cs[i] = uint8(i & 1)
		}
		if err := coarseBis.Reset(c.Coarse, cs); err != nil {
			failed = true
			return
		}
		fine, err := w.Project(c, &coarseBis)
		if err != nil {
			failed = true
			return
		}
		partition.RepairBalance(fine, minImb)
	}
	cycle() // warm the projection-side buffers once
	allocs := testing.AllocsPerRun(50, cycle)
	if failed {
		t.Fatal("compaction cycle failed during steady-state run")
	}
	if allocs != 0 {
		t.Errorf("warm compaction cycle allocates %v times per run, want 0", allocs)
	}
}

// TestProjectMatchesFreshPath: the workspace projection and the
// allocating Contraction.Project agree on every vertex side and the
// cut, for random coarse bisections.
func TestProjectMatchesFreshPath(t *testing.T) {
	gs := allocGraph(t)
	w := NewWorkspace()
	r := rng.NewFib(11)
	for round := 0; round < 5; round++ {
		w.Reset()
		mate := w.RandomMaximal(gs.g, r)
		c, err := w.Contract(gs.g, mate)
		if err != nil {
			t.Fatal(err)
		}
		cb := partition.NewRandom(c.Coarse, r)
		fresh, err := c.Project(cb)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := w.Project(c, cb)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Cut() != ws.Cut() {
			t.Fatalf("round %d: fresh cut %d != workspace cut %d", round, fresh.Cut(), ws.Cut())
		}
		for v := int32(0); int(v) < gs.g.N(); v++ {
			if fresh.Side(v) != ws.Side(v) {
				t.Fatalf("round %d: side mismatch at vertex %d", round, v)
			}
		}
		if err := ws.Validate(); err != nil {
			t.Fatalf("round %d: workspace projection invalid: %v", round, err)
		}
	}
}

// TestWorkspaceMatchingStream: the workspace matching consumes the
// random stream identically to the package function, so switching a
// driver to an arena can never move any downstream draw.
func TestWorkspaceMatchingStream(t *testing.T) {
	gs := allocGraph(t)
	w := NewWorkspace()
	r1 := rng.NewFib(99)
	r2 := rng.NewFib(99)
	for round := 0; round < 3; round++ {
		a := matching.RandomMaximal(gs.g, r1)
		b := w.RandomMaximal(gs.g, r2)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("round %d: mate[%d] differs: %d vs %d", round, v, a[v], b[v])
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("round %d: streams diverged after matching", round)
		}
	}
}
