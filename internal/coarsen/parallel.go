package coarsen

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// This file parallelizes the contraction kernel's row construction. The
// serial kernel packs coarse rows left to right with one cursor; the
// sharded kernel reproduces the exact same bytes in two phases:
//
//	count  — each shard walks its contiguous range of coarse vertices
//	         and records the row's distinct-neighbor count in off[cv+1],
//	         deduplicating through a per-shard epoch-stamped seen map.
//	prefix — a serial prefix sum turns counts into the very offsets the
//	         serial cursor would have produced.
//	write  — each shard fills its rows in the now-known disjoint ranges,
//	         folding parallel edges and sorting each row, exactly like
//	         the serial kernel.
//
// Row contents are order-independent (folds are sums, rows end sorted),
// so the output CSR is byte-identical to the serial kernel's for any
// shard count — the equivalence test pins this. The coarse-id
// assignment, member, and vertex-weight loops stay serial: they are
// cheap O(n) sweeps with sequential dependencies.

// ParallelMinVertices is the fine-graph vertex count below which
// contraction stays serial even with a pool attached; barrier overhead
// dominates under it. A variable only so tests can lower it.
var ParallelMinVertices = 1 << 15

// SetParallel attaches a pool of the given degree to the workspace and
// shares it with the embedded matching workspace, so one set of parked
// workers serves both the match and contract phases. Degree ≤ 1
// detaches. Idempotent per degree; Close releases the pool.
func (w *Workspace) SetParallel(degree int) {
	if degree == w.poolDeg {
		return
	}
	w.releasePool()
	w.pool = par.New(degree)
	w.poolDeg = degree
	w.match.SetPool(w.pool)
	if w.spec != nil {
		w.spec.SetPool(w.pool)
	}
}

// Close releases the workspace's pool (parked goroutines). The
// workspace remains usable serially afterwards.
func (w *Workspace) Close() { w.releasePool() }

func (w *Workspace) releasePool() {
	if w.pool != nil {
		w.match.SetPool(nil)
		if w.spec != nil {
			w.spec.SetPool(nil)
		}
		w.pool.Close()
		w.pool = nil
	}
	w.poolDeg = 0
}

// parallelRows reports whether the sharded row kernel should run for a
// fine graph with n vertices.
func (w *Workspace) parallelRows(n int) bool {
	return w.pool.Degree() > 1 && n >= ParallelMinVertices
}

// cShardRange splits the coarse vertex range across shards.
func cShardRange(s, shards, cn int) (lo, hi int) {
	return s * cn / shards, (s + 1) * cn / shards
}

// ensureCShards sizes the per-shard dedup maps for an n-vertex fine
// graph and binds the phase closures once, keeping the steady state
// allocation-free.
func (w *Workspace) ensureCShards(n, shards int) {
	for len(w.cstamp) < shards {
		w.cstamp = append(w.cstamp, nil)
		w.cpos = append(w.cpos, nil)
		w.cepoch = append(w.cepoch, 0)
		w.cerrs = append(w.cerrs, nil)
	}
	for s := 0; s < shards; s++ {
		if cap(w.cstamp[s]) < n {
			w.cstamp[s] = make([]uint32, n)
			w.cpos[s] = make([]int32, n)
			w.cepoch[s] = 0
		}
		w.cstamp[s] = w.cstamp[s][:n]
		w.cpos[s] = w.cpos[s][:n]
		w.cerrs[s] = nil
	}
	if w.countFn == nil {
		w.countFn = w.countShard
		w.writeFn = w.writeShard
	}
}

// bumpEpoch advances a shard's epoch, clearing its stamp map on the
// rare uint32 wrap.
func bumpEpoch(stamp []uint32, epoch uint32) uint32 {
	epoch++
	if epoch == 0 {
		for i := range stamp {
			stamp[i] = 0
		}
		epoch = 1
	}
	return epoch
}

func (w *Workspace) countShard(s int) {
	g, lv, cn := w.cg, w.clv, w.ccn
	cmap, members, off := lv.con.Map, lv.con.members, lv.off
	stamp, epoch := w.cstamp[s], w.cepoch[s]
	lo, hi := cShardRange(s, w.cshards, cn)
	for cv := lo; cv < hi; cv++ {
		epoch = bumpEpoch(stamp, epoch)
		var cnt int32
		a, b := members[2*cv], members[2*cv+1]
		for k := 0; k < 2; k++ {
			fv := a
			if k == 1 {
				if b < 0 {
					break
				}
				fv = b
			}
			for _, e := range g.Neighbors(fv) {
				cu := cmap[e.To]
				if int(cu) == cv || stamp[cu] == epoch {
					continue
				}
				stamp[cu] = epoch
				cnt++
			}
		}
		off[cv+1] = cnt
	}
	w.cepoch[s] = epoch
}

func (w *Workspace) writeShard(s int) {
	g, lv, cn := w.cg, w.clv, w.ccn
	cmap, members, off, edges := lv.con.Map, lv.con.members, lv.off, lv.edges
	stamp, pos, epoch := w.cstamp[s], w.cpos[s], w.cepoch[s]
	lo, hi := cShardRange(s, w.cshards, cn)
	for cv := lo; cv < hi; cv++ {
		epoch = bumpEpoch(stamp, epoch)
		cur := off[cv]
		a, b := members[2*cv], members[2*cv+1]
		for k := 0; k < 2; k++ {
			fv := a
			if k == 1 {
				if b < 0 {
					break
				}
				fv = b
			}
			for _, e := range g.Neighbors(fv) {
				cu := cmap[e.To]
				if int(cu) == cv {
					continue
				}
				if stamp[cu] == epoch {
					i := pos[cu]
					merged := int64(edges[i].W) + int64(e.W)
					if merged > 1<<30 {
						w.cerrs[s] = overflowErr(int32(cv), cu, merged)
						w.cepoch[s] = epoch
						return
					}
					edges[i].W = int32(merged)
				} else {
					stamp[cu] = epoch
					pos[cu] = cur
					edges[cur] = graph.Edge{To: cu, W: e.W}
					cur++
				}
			}
		}
		graph.SortEdges(edges[off[cv]:cur])
	}
	w.cepoch[s] = epoch
}

// contractRowsParallel builds the coarse rows with the sharded kernel.
// lv.off and lv.edges are already sized; on return lv.off[:cn+1] and
// lv.edges[:lv.off[cn]] hold the same bytes the serial kernel writes.
func (w *Workspace) contractRowsParallel(lv *level, g *graph.Graph, cn int) error {
	shards := w.pool.Degree()
	w.ensureCShards(g.N(), shards)
	w.cg, w.clv, w.ccn, w.cshards = g, lv, cn, shards

	w.pool.Run(shards, w.countFn)
	off := lv.off
	off[0] = 0
	for cv := 0; cv < cn; cv++ {
		off[cv+1] += off[cv]
	}
	w.pool.Run(shards, w.writeFn)
	w.cg, w.clv = nil, nil
	for s := 0; s < shards; s++ {
		if err := w.cerrs[s]; err != nil {
			w.cerrs[s] = nil
			return err
		}
	}
	return nil
}
