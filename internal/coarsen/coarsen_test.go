package coarsen

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestContractPath(t *testing.T) {
	// Path 0-1-2-3, matching {0,1} and {2,3}: coarse graph is a single
	// edge between two weight-2 vertices, carrying weight 1 (edge 1-2).
	g := mustGraph(gen.Path(4))
	mate := []int32{1, 0, 3, 2}
	c, err := Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.N() != 2 || c.Coarse.M() != 1 {
		t.Fatalf("coarse: n=%d m=%d", c.Coarse.N(), c.Coarse.M())
	}
	if c.Coarse.VertexWeight(0) != 2 || c.Coarse.VertexWeight(1) != 2 {
		t.Fatalf("coarse weights %d/%d", c.Coarse.VertexWeight(0), c.Coarse.VertexWeight(1))
	}
	if w := c.Coarse.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("coarse edge weight %d", w)
	}
	if err := c.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractMergesParallelEdges(t *testing.T) {
	// Square 0-1-2-3-0. Matching {0,1},{2,3}: edges 1-2 and 3-0 become
	// parallel between the two coarse vertices and must merge to weight 2.
	g := mustGraph(gen.Cycle(4))
	mate := []int32{1, 0, 3, 2}
	c, err := Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.M() != 1 {
		t.Fatalf("coarse m=%d, want 1 merged edge", c.Coarse.M())
	}
	if w := c.Coarse.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("merged weight %d, want 2", w)
	}
}

func TestContractRejectsInvalidMatching(t *testing.T) {
	g := mustGraph(gen.Path(4))
	if _, err := Contract(g, []int32{2, -1, 0, -1}); err == nil {
		t.Fatal("non-edge matching accepted")
	}
	if _, err := Contract(g, []int32{-1}); err == nil {
		t.Fatal("short mate accepted")
	}
}

func TestContractEmptyMatching(t *testing.T) {
	g := mustGraph(gen.Path(4))
	mate := []int32{-1, -1, -1, -1}
	c, err := Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.N() != 4 || c.Coarse.M() != 3 {
		t.Fatalf("identity contraction: n=%d m=%d", c.Coarse.N(), c.Coarse.M())
	}
	if c.Ratio() != 1 {
		t.Fatalf("ratio %v", c.Ratio())
	}
}

func TestContractionInvariants(t *testing.T) {
	// Property: vertex weight is conserved; average degree does not
	// decrease much (compaction's whole point is raising density); the cut
	// of any coarse bisection equals the cut of its projection.
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 4 + 2*r.Intn(30)
		g, err := gen.GNP(n, 0.15, r)
		if err != nil {
			return false
		}
		mate := matching.RandomMaximal(g, r)
		c, err := Contract(g, mate)
		if err != nil {
			return false
		}
		if c.Coarse.TotalVertexWeight() != g.TotalVertexWeight() {
			return false
		}
		if c.Coarse.Validate() != nil {
			return false
		}
		// Random coarse bisection; project; cuts must agree.
		cb := partition.NewRandom(c.Coarse, r)
		fb, err := c.Project(cb)
		if err != nil {
			return false
		}
		return fb.Cut() == cb.Cut()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestContractRaisesAverageDegree(t *testing.T) {
	// On a 3-regular graph, contracting a (near-perfect) random maximal
	// matching must raise the average degree — the empirical engine behind
	// the paper's compaction heuristic.
	r := rng.NewFib(5)
	g, err := gen.BReg(1000, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	mate := matching.RandomMaximal(g, r)
	c, err := Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.AvgDegree() <= g.AvgDegree() {
		t.Fatalf("contraction lowered average degree: %.2f -> %.2f", g.AvgDegree(), c.Coarse.AvgDegree())
	}
}

func TestProjectRejectsForeignBisection(t *testing.T) {
	r := rng.NewFib(1)
	g := mustGraph(gen.Cycle(8))
	mate := matching.RandomMaximal(g, r)
	c, err := Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	other := partition.NewRandom(g, r) // bisection of the fine graph, not coarse
	if _, err := c.Project(other); err == nil {
		t.Fatal("foreign bisection accepted")
	}
}

func TestRepairBalance(t *testing.T) {
	// Put everything on side 0, then repair to balance.
	g := mustGraph(gen.Cycle(10))
	b, err := partition.New(g, make([]uint8, 10))
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.RepairBalance(b, 0); got != 0 {
		t.Fatalf("repaired imbalance %d, want 0", got)
	}
	n0, n1 := b.CountSides()
	if n0 != 5 || n1 != 5 {
		t.Fatalf("sides %d/%d", n0, n1)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairBalancePrefersLowCutMoves(t *testing.T) {
	// Two triangles joined by one edge; all 6 vertices on side 0.
	// Repair to balance should move one whole triangle (cut 1), not a
	// mixed set — greedy gain-aware repair achieves cut <= 3 always, and
	// from this start it finds the cut-1 split for the first move wins.
	bld := graph.NewBuilder(6)
	bld.AddEdge(0, 1)
	bld.AddEdge(1, 2)
	bld.AddEdge(0, 2)
	bld.AddEdge(3, 4)
	bld.AddEdge(4, 5)
	bld.AddEdge(3, 5)
	bld.AddEdge(2, 3) // bridge
	g := bld.MustBuild()
	b, err := partition.New(g, make([]uint8, 6))
	if err != nil {
		t.Fatal(err)
	}
	partition.RepairBalance(b, 0)
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if b.Cut() > 3 {
		t.Fatalf("repair produced cut %d", b.Cut())
	}
}

func TestRepairBalanceOddTotal(t *testing.T) {
	g := mustGraph(gen.Path(5))
	b, err := partition.New(g, make([]uint8, 5))
	if err != nil {
		t.Fatal(err)
	}
	got := partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	if got != 1 {
		t.Fatalf("odd-total repair reached imbalance %d, want 1", got)
	}
}

func TestRepairBalanceAlreadyBalanced(t *testing.T) {
	g := mustGraph(gen.Cycle(6))
	b, err := partition.New(g, []uint8{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cutBefore := b.Cut()
	if got := partition.RepairBalance(b, 0); got != 0 {
		t.Fatalf("imbalance %d", got)
	}
	if b.Cut() != cutBefore {
		t.Fatal("repair disturbed a balanced bisection")
	}
}

func TestMinAchievableImbalance(t *testing.T) {
	if partition.MinAchievableImbalance(10) != 0 || partition.MinAchievableImbalance(11) != 1 {
		t.Fatal("parity wrong")
	}
}

func randomInitial(g *graph.Graph, r *rng.Rand) *partition.Bisection {
	return partition.NewRandom(g, r)
}

func TestCompactOnceProducesBalancedBisection(t *testing.T) {
	r := rng.NewFib(8)
	g, err := gen.BReg(400, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompactOnce(g, matching.RandomMaximal, randomInitial, nil, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph() != g {
		t.Fatal("CompactOnce returned a bisection of the wrong graph")
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactOnceEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(6).MustBuild()
	r := rng.NewFib(2)
	b, err := CompactOnce(g, nil, randomInitial, nil, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 || b.Cut() != 0 {
		t.Fatalf("edgeless: cut=%d imbalance=%d", b.Cut(), b.Imbalance())
	}
}

func TestCompactOnceNeedsInitial(t *testing.T) {
	g := mustGraph(gen.Cycle(6))
	if _, err := CompactOnce(g, nil, nil, nil, rng.NewFib(1), nil); err == nil {
		t.Fatal("nil initial accepted")
	}
}

func TestMultilevelBisectsGrid(t *testing.T) {
	r := rng.NewFib(10)
	g := mustGraph(gen.Grid(16, 16))
	refine := func(b *partition.Bisection, r *rng.Rand) {
		// Simple greedy refinement: balanced swaps while improving.
		for {
			improved := false
			for v := int32(0); int(v) < b.N(); v++ {
				for u := int32(0); int(u) < b.N(); u++ {
					if b.Side(u) != b.Side(v) && b.SwapGain(v, u) > 0 {
						b.Swap(v, u)
						improved = true
					}
				}
			}
			if !improved {
				return
			}
		}
	}
	b, err := Multilevel(g, nil, randomInitial, refine, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph() != g {
		t.Fatal("wrong graph")
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	// A 16x16 grid has bisection width 16; even weak refinement through
	// the multilevel pipeline should land well below a random cut (~240).
	if b.Cut() > 100 {
		t.Fatalf("multilevel cut %d is no better than random", b.Cut())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelHandlesTinyGraphs(t *testing.T) {
	r := rng.NewFib(3)
	g := mustGraph(gen.Path(4))
	b, err := Multilevel(g, nil, randomInitial, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
}

func TestMultilevelEdgeless(t *testing.T) {
	r := rng.NewFib(4)
	g := graph.NewBuilder(10).MustBuild()
	b, err := Multilevel(g, nil, randomInitial, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 || b.Imbalance() != 0 {
		t.Fatalf("cut=%d imbalance=%d", b.Cut(), b.Imbalance())
	}
}

func TestMultilevelNeedsInitial(t *testing.T) {
	g := mustGraph(gen.Cycle(8))
	if _, err := Multilevel(g, nil, nil, nil, rng.NewFib(1)); err == nil {
		t.Fatal("nil initial accepted")
	}
}

func TestMultilevelOptionsDefaults(t *testing.T) {
	var o *MultilevelOptions
	d := o.withDefaults()
	if d.MinSize != 32 || d.MaxLevels != 30 || d.Match == nil {
		t.Fatalf("defaults: %+v", d)
	}
	o2 := &MultilevelOptions{MinSize: 8}
	d2 := o2.withDefaults()
	if d2.MinSize != 8 || d2.MaxLevels != 30 {
		t.Fatalf("partial defaults: %+v", d2)
	}
}

func BenchmarkContract5000(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(5000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	mate := matching.RandomMaximal(g, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Contract(g, mate); err != nil {
			b.Fatal(err)
		}
	}
}
