package coarsen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// MatchFunc produces a matching of g (e.g. matching.RandomMaximal).
type MatchFunc func(g *graph.Graph, r *rng.Rand) []int32

// RefineFunc improves a bisection in place (e.g. a KL or FM refinement
// pass). It must not unbalance the bisection beyond what it received.
type RefineFunc func(b *partition.Bisection, r *rng.Rand)

// InitialFunc produces a starting bisection of the coarsest graph.
type InitialFunc func(g *graph.Graph, r *rng.Rand) *partition.Bisection

// MultilevelOptions configures the recursive compaction driver.
type MultilevelOptions struct {
	// MinSize stops coarsening once the graph has at most this many
	// vertices (default 32).
	MinSize int
	// MaxLevels bounds the coarsening depth (default 30).
	MaxLevels int
	// MinRatio aborts coarsening when a level shrinks the graph by less
	// than this factor (default 0.95: stop if |coarse| > 0.95·|fine|),
	// which happens on graphs with almost no edges.
	MinRatio float64
	// Match selects the matching policy (default matching.RandomMaximal).
	Match MatchFunc
	// Observer, when non-nil, receives level_done trace events for every
	// coarsening contraction, the coarsest solve, and every uncoarsening
	// projection (see docs/OBSERVABILITY.md); nil costs nothing.
	Observer trace.Observer
	// Workspace, when non-nil, supplies the reusable compaction arena:
	// matchings (when Match is left nil), contractions, level graphs, and
	// interior projections all run in its buffers, so repeated Multilevel
	// runs reach a zero-allocation steady state for everything but the
	// returned bisection. Results are identical with or without one. The
	// workspace must not be shared across goroutines; nil allocates an
	// ephemeral arena per run.
	Workspace *Workspace
	// ParallelDegree, when > 1, runs the matching and contraction phases
	// on that many goroutines within a single run for graphs with at
	// least ParallelMinVertices vertices (results are identical at any
	// degree; see parallel.go and matching/parallel.go). 0 or 1 keeps
	// every phase serial. The pool attaches to the Workspace, so reuse a
	// Workspace across runs to amortize it.
	ParallelDegree int
	// SpectralInit seeds the coarsest-level solve from the spectral
	// median split (see internal/spectral) instead of the initial
	// bisector: the coarsest graph is small, so the Lanczos solve is
	// cheap, and the per-level refinement then starts from a globally
	// informed cut rather than a random one — the "+spec" algorithm
	// variants in the core registry. The initial bisector remains the
	// fallback if the spectral solve fails outright; a solve that merely
	// stops at its matvec budget still seeds with its best-effort split.
	SpectralInit bool
	// Control, when non-nil, is polled once before every coarsening
	// level. When it stops, coarsening halts where it stands and the
	// driver still solves the coarsest graph reached and projects back up
	// to the original graph (projection and balance repair are cheap and
	// required for a valid result; per-level refinement is skipped), so
	// Multilevel always returns a valid bisection of g together with the
	// stop sentinel (see internal/runctl and docs/ROBUSTNESS.md). The
	// inner bisector's own Control governs interruption inside a level.
	Control *runctl.Control
}

func (o *MultilevelOptions) withDefaults() MultilevelOptions {
	out := MultilevelOptions{MinSize: 32, MaxLevels: 30, MinRatio: 0.95, Match: matching.RandomMaximal}
	if o == nil {
		return out
	}
	if o.MinSize > 0 {
		out.MinSize = o.MinSize
	}
	if o.MaxLevels > 0 {
		out.MaxLevels = o.MaxLevels
	}
	if o.MinRatio > 0 {
		out.MinRatio = o.MinRatio
	}
	out.Workspace = o.Workspace
	if o.Match != nil {
		out.Match = o.Match
	} else if out.Workspace != nil {
		// Default to the workspace matching so the arena covers the match
		// phase too; the stream (and thus every result) is identical to
		// matching.RandomMaximal.
		out.Match = out.Workspace.RandomMaximal
	}
	out.Observer = o.Observer
	out.Control = o.Control
	out.ParallelDegree = o.ParallelDegree
	out.SpectralInit = o.SpectralInit
	return out
}

// Multilevel runs the full recursive compaction pipeline — the natural
// generalization of the paper's single compaction level (and the idea its
// companion "recursive coalescing" work develops): coarsen by repeated
// matching contraction, bisect the coarsest graph with initial, then
// uncoarsen level by level, repairing balance and running refine at each
// level. Returns the final fine-graph bisection.
func Multilevel(g *graph.Graph, opts *MultilevelOptions, initial InitialFunc, refine RefineFunc, r *rng.Rand) (*partition.Bisection, error) {
	o := opts.withDefaults()
	if initial == nil {
		return nil, fmt.Errorf("coarsen: Multilevel needs an initial bisector")
	}
	w := o.Workspace
	if w == nil {
		w = NewWorkspace()
		if o.ParallelDegree > 1 {
			defer w.Close() // release the ephemeral pool's parked goroutines
			if opts == nil || opts.Match == nil {
				// Route the default matching through the ephemeral
				// workspace so the pool covers the match phase too.
				o.Match = w.RandomMaximal
			}
		}
	}
	if o.ParallelDegree > 0 {
		w.SetParallel(o.ParallelDegree)
	}
	return w.multilevel(g, o, initial, refine, r)
}

// CompactOnce performs exactly one level of the paper's compaction: match,
// contract, solve the coarse graph with initial+refine, project back, and
// repair balance. The returned bisection of g is the "good starting
// bisection" that the caller then hands to the full bisection procedure.
//
// A non-nil obs receives a "coarsen" level_done after the contraction and
// an "uncoarsen" level_done after the projection back to g; nil skips all
// tracing work.
func CompactOnce(g *graph.Graph, match MatchFunc, initial InitialFunc, refine RefineFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
	return NewWorkspace().CompactOnce(g, match, initial, refine, r, obs)
}
