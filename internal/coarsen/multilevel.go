package coarsen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MatchFunc produces a matching of g (e.g. matching.RandomMaximal).
type MatchFunc func(g *graph.Graph, r *rng.Rand) []int32

// RefineFunc improves a bisection in place (e.g. a KL or FM refinement
// pass). It must not unbalance the bisection beyond what it received.
type RefineFunc func(b *partition.Bisection, r *rng.Rand)

// InitialFunc produces a starting bisection of the coarsest graph.
type InitialFunc func(g *graph.Graph, r *rng.Rand) *partition.Bisection

// MultilevelOptions configures the recursive compaction driver.
type MultilevelOptions struct {
	// MinSize stops coarsening once the graph has at most this many
	// vertices (default 32).
	MinSize int
	// MaxLevels bounds the coarsening depth (default 30).
	MaxLevels int
	// MinRatio aborts coarsening when a level shrinks the graph by less
	// than this factor (default 0.95: stop if |coarse| > 0.95·|fine|),
	// which happens on graphs with almost no edges.
	MinRatio float64
	// Match selects the matching policy (default matching.RandomMaximal).
	Match MatchFunc
	// Observer, when non-nil, receives level_done trace events for every
	// coarsening contraction, the coarsest solve, and every uncoarsening
	// projection (see docs/OBSERVABILITY.md); nil costs nothing.
	Observer trace.Observer
}

func (o *MultilevelOptions) withDefaults() MultilevelOptions {
	out := MultilevelOptions{MinSize: 32, MaxLevels: 30, MinRatio: 0.95, Match: matching.RandomMaximal}
	if o == nil {
		return out
	}
	if o.MinSize > 0 {
		out.MinSize = o.MinSize
	}
	if o.MaxLevels > 0 {
		out.MaxLevels = o.MaxLevels
	}
	if o.MinRatio > 0 {
		out.MinRatio = o.MinRatio
	}
	if o.Match != nil {
		out.Match = o.Match
	}
	out.Observer = o.Observer
	return out
}

// Multilevel runs the full recursive compaction pipeline — the natural
// generalization of the paper's single compaction level (and the idea its
// companion "recursive coalescing" work develops): coarsen by repeated
// matching contraction, bisect the coarsest graph with initial, then
// uncoarsen level by level, repairing balance and running refine at each
// level. Returns the final fine-graph bisection.
func Multilevel(g *graph.Graph, opts *MultilevelOptions, initial InitialFunc, refine RefineFunc, r *rng.Rand) (*partition.Bisection, error) {
	o := opts.withDefaults()
	if initial == nil {
		return nil, fmt.Errorf("coarsen: Multilevel needs an initial bisector")
	}

	// Coarsening phase.
	var levels []*Contraction
	cur := g
	for len(levels) < o.MaxLevels && cur.N() > o.MinSize {
		mate := o.Match(cur, r)
		if matching.Size(mate) == 0 {
			break
		}
		c, err := Contract(cur, mate)
		if err != nil {
			return nil, err
		}
		if c.Ratio() > o.MinRatio {
			break
		}
		levels = append(levels, c)
		cur = c.Coarse
		if o.Observer != nil {
			o.Observer.Observe(trace.Event{
				Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "coarsen",
				Index: len(levels) - 1, Vertices: cur.N(), Edges: cur.M(),
			})
		}
	}

	// Coarsest solution.
	b := initial(cur, r)
	if b == nil || b.Graph() != cur {
		return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
	}
	minImb := partition.MinAchievableImbalance(cur.TotalVertexWeight())
	partition.RepairBalance(b, minImb)
	if refine != nil {
		refine(b, r)
	}
	if o.Observer != nil {
		o.Observer.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "initial",
			Index: len(levels), Cut: b.Cut(), BestCut: b.Cut(),
			Imbalance: b.Imbalance(), Vertices: cur.N(), Edges: cur.M(),
		})
	}

	// Uncoarsening phase.
	for i := len(levels) - 1; i >= 0; i-- {
		c := levels[i]
		fine, err := c.Project(b)
		if err != nil {
			return nil, err
		}
		b = fine
		partition.RepairBalance(b, partition.MinAchievableImbalance(b.Graph().TotalVertexWeight()))
		if refine != nil {
			refine(b, r)
		}
		if o.Observer != nil {
			o.Observer.Observe(trace.Event{
				Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "uncoarsen",
				Index: i, Cut: b.Cut(), BestCut: b.Cut(),
				Imbalance: b.Imbalance(), Vertices: b.Graph().N(), Edges: b.Graph().M(),
			})
		}
	}
	return b, nil
}

// CompactOnce performs exactly one level of the paper's compaction: match,
// contract, solve the coarse graph with initial+refine, project back, and
// repair balance. The returned bisection of g is the "good starting
// bisection" that the caller then hands to the full bisection procedure.
//
// A non-nil obs receives a "coarsen" level_done after the contraction and
// an "uncoarsen" level_done after the projection back to g; nil skips all
// tracing work.
func CompactOnce(g *graph.Graph, match MatchFunc, initial InitialFunc, refine RefineFunc, r *rng.Rand, obs trace.Observer) (*partition.Bisection, error) {
	if match == nil {
		match = matching.RandomMaximal
	}
	if initial == nil {
		return nil, fmt.Errorf("coarsen: CompactOnce needs an initial bisector")
	}
	mate := match(g, r)
	if matching.Size(mate) == 0 {
		// Nothing to contract (edgeless graph): solve directly.
		b := initial(g, r)
		if b == nil || b.Graph() != g {
			return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
		}
		partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
		return b, nil
	}
	c, err := Contract(g, mate)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "coarsen",
			Index: 0, Vertices: c.Coarse.N(), Edges: c.Coarse.M(),
		})
	}
	cb := initial(c.Coarse, r)
	if cb == nil || cb.Graph() != c.Coarse {
		return nil, fmt.Errorf("coarsen: initial bisector returned an invalid bisection")
	}
	partition.RepairBalance(cb, partition.MinAchievableImbalance(c.Coarse.TotalVertexWeight()))
	if refine != nil {
		refine(cb, r)
	}
	fine, err := c.Project(cb)
	if err != nil {
		return nil, err
	}
	partition.RepairBalance(fine, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "coarsen", Phase: "uncoarsen",
			Index: 0, Cut: fine.Cut(), BestCut: fine.Cut(),
			Imbalance: fine.Imbalance(), Vertices: g.N(), Edges: g.M(),
		})
	}
	return fine, nil
}
