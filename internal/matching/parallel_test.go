package matching

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// lowerThreshold drops ParallelMinVertices for the duration of a test so
// moderate-sized instances exercise the handshake path.
func lowerThreshold(t *testing.T, n int) {
	t.Helper()
	saved := ParallelMinVertices
	ParallelMinVertices = n
	t.Cleanup(func() { ParallelMinVertices = saved })
}

func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.GNP(n, 8.0/float64(n), rng.NewFib(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestParallelMatchValidMaximal checks the handshake output is a valid
// maximal matching for both policies across degrees.
func TestParallelMatchValidMaximal(t *testing.T) {
	lowerThreshold(t, 1)
	g := testGraph(t, 3000, 7)
	for _, degree := range []int{2, 3, 4, 8} {
		w := NewWorkspace()
		w.SetParallel(degree)
		defer w.Close()
		for name, match := range map[string]func(*graph.Graph, *rng.Rand) []int32{
			"random": w.RandomMaximal,
			"heavy":  w.HeavyEdge,
		} {
			mate := match(g, rng.NewFib(11))
			if err := Validate(g, mate); err != nil {
				t.Fatalf("degree %d %s: %v", degree, name, err)
			}
			if !IsMaximal(g, mate) {
				t.Fatalf("degree %d %s: matching not maximal", degree, name)
			}
		}
	}
}

// TestParallelMatchDeterministicAcrossDegrees pins the handshake
// contract: the matching depends on the seed, never on the shard count.
func TestParallelMatchDeterministicAcrossDegrees(t *testing.T) {
	lowerThreshold(t, 1)
	g := testGraph(t, 2500, 21)
	for _, heavy := range []bool{false, true} {
		var ref []int32
		for _, degree := range []int{2, 3, 5, 8} {
			w := NewWorkspace()
			w.SetParallel(degree)
			r := rng.NewFib(99)
			var mate []int32
			if heavy {
				mate = w.HeavyEdge(g, r)
			} else {
				mate = w.RandomMaximal(g, r)
			}
			if ref == nil {
				ref = append([]int32(nil), mate...)
			} else {
				for v := range mate {
					if mate[v] != ref[v] {
						t.Fatalf("heavy=%v: degree %d diverges from degree 2 at vertex %d: %d vs %d",
							heavy, degree, v, mate[v], ref[v])
					}
				}
			}
			w.Close()
		}
	}
}

// TestParallelThresholdKeepsSerialPath pins the gating contract: below
// the threshold the workspace must produce exactly the serial greedy
// result (the byte-identity contract behind the golden fixtures) even
// with a pool attached, and above the threshold the handshake engages
// by size alone — a degree-1 workspace runs it inline and matches any
// parallel degree, the thread-count invariance the determinism matrix
// relies on.
func TestParallelThresholdKeepsSerialPath(t *testing.T) {
	g := testGraph(t, 2000, 5) // below the real 1<<15 threshold
	serial := RandomMaximal(g, rng.NewFib(3))

	w := NewWorkspace()
	w.SetParallel(4)
	defer w.Close()
	got := w.RandomMaximal(g, rng.NewFib(3))
	for v := range got {
		if got[v] != serial[v] {
			t.Fatalf("threshold gating failed: parallel-capable workspace diverged at vertex %d", v)
		}
	}

	// Above the threshold, degree 1 (no pool) runs the handshake inline
	// and must match the parallel result exactly, never the greedy one.
	lowerThreshold(t, 1)
	w1 := NewWorkspace()
	w1.SetParallel(1)
	defer w1.Close()
	got1 := w1.RandomMaximal(g, rng.NewFib(3))
	w4 := NewWorkspace()
	w4.SetParallel(4)
	defer w4.Close()
	got4 := w4.RandomMaximal(g, rng.NewFib(3))
	for v := range got1 {
		if got1[v] != got4[v] {
			t.Fatalf("inline handshake diverged from degree-4 at vertex %d", v)
		}
	}
}

// TestParallelMatchSharedPool checks SetPool: a caller-owned pool serves
// the workspace and survives workspace Close.
func TestParallelMatchSharedPool(t *testing.T) {
	lowerThreshold(t, 1)
	p := par.New(4)
	defer p.Close()
	g := testGraph(t, 1500, 13)

	w := NewWorkspace()
	w.SetPool(p)
	mate := w.RandomMaximal(g, rng.NewFib(1))
	if err := Validate(g, mate); err != nil {
		t.Fatal(err)
	}
	w.Close() // must NOT close the shared pool

	w2 := NewWorkspace()
	w2.SetPool(p)
	defer w2.Close()
	mate2 := w2.HeavyEdge(g, rng.NewFib(2))
	if err := Validate(g, mate2); err != nil {
		t.Fatalf("pool unusable after first workspace closed: %v", err)
	}
}

// TestParallelMatchSteadyAllocs gates the zero-allocation contract of
// the handshake path (run by scripts/check.sh alongside the serial
// workspace gate).
func TestParallelMatchSteadyAllocs(t *testing.T) {
	lowerThreshold(t, 1)
	g := testGraph(t, 4000, 17)
	w := NewWorkspace()
	w.SetParallel(4)
	defer w.Close()
	r := rng.NewFib(23)
	w.RandomMaximal(g, r) // warm-up sizes every buffer
	w.HeavyEdge(g, r)
	if avg := testing.AllocsPerRun(20, func() { w.RandomMaximal(g, r) }); avg != 0 {
		t.Fatalf("parallel RandomMaximal allocates %.1f per run in steady state", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { w.HeavyEdge(g, r) }); avg != 0 {
		t.Fatalf("parallel HeavyEdge allocates %.1f per run in steady state", avg)
	}
}

func BenchmarkParallelRandomMaximal(b *testing.B) {
	for _, degree := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "t1", 2: "t2", 4: "t4", 8: "t8"}[degree]
		b.Run(name, func(b *testing.B) {
			saved := ParallelMinVertices
			ParallelMinVertices = 1
			defer func() { ParallelMinVertices = saved }()
			g := testGraph(b, 100000, 31)
			w := NewWorkspace()
			w.SetParallel(degree)
			defer w.Close()
			r := rng.NewFib(5)
			w.RandomMaximal(g, r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RandomMaximal(g, r)
			}
		})
	}
}
