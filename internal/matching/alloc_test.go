package matching

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func allocTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.GNP(400, 4.0/399.0, rng.NewFib(42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkspaceSteadyAllocs: after one sizing call, the workspace
// matchers run allocation-free.
func TestWorkspaceSteadyAllocs(t *testing.T) {
	g := allocTestGraph(t)
	for _, tc := range []struct {
		name  string
		match func(w *Workspace, r *rng.Rand) []int32
	}{
		{"RandomMaximal", func(w *Workspace, r *rng.Rand) []int32 { return w.RandomMaximal(g, r) }},
		{"HeavyEdge", func(w *Workspace, r *rng.Rand) []int32 { return w.HeavyEdge(g, r) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorkspace()
			r := rng.NewFib(7)
			tc.match(w, r) // size the buffers
			var mate []int32
			allocs := testing.AllocsPerRun(50, func() {
				mate = tc.match(w, r)
			})
			if allocs != 0 {
				t.Errorf("warm %s allocates %v times per run, want 0", tc.name, allocs)
			}
			if err := Validate(g, mate); err != nil {
				t.Fatal(err)
			}
			if !IsMaximal(g, mate) {
				t.Fatal("steady-state matching is not maximal")
			}
		})
	}
}

// TestWorkspaceMatchesPackage: workspace and package matchers draw the
// same stream and produce the same matching, for both policies.
func TestWorkspaceMatchesPackage(t *testing.T) {
	g := allocTestGraph(t)
	w := NewWorkspace()
	r1, r2 := rng.NewFib(9), rng.NewFib(9)
	for round := 0; round < 3; round++ {
		a, b := RandomMaximal(g, r1), w.RandomMaximal(g, r2)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("RandomMaximal round %d: mate[%d] = %d vs %d", round, v, a[v], b[v])
			}
		}
		a, b = HeavyEdge(g, r1), w.HeavyEdge(g, r2)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("HeavyEdge round %d: mate[%d] = %d vs %d", round, v, a[v], b[v])
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("round %d: streams diverged", round)
		}
	}
}
