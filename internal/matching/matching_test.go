package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestRandomMaximalIsValidAndMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + r.Intn(50)
		g, err := gen.GNP(n, 0.15, r)
		if err != nil {
			return false
		}
		mate := RandomMaximal(g, r)
		return Validate(g, mate) == nil && IsMaximal(g, mate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaximalOnEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	mate := RandomMaximal(g, rng.NewFib(1))
	if Size(mate) != 0 {
		t.Fatalf("matched %d edges in empty graph", Size(mate))
	}
	if err := Validate(g, mate); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaximalPerfectOnEvenCycle(t *testing.T) {
	// A maximal matching of C_2k has between k/ (rounded) and k edges; on
	// many seeds we should regularly see near-perfect sizes, and always at
	// least ⌈k/2⌉ + ... — at minimum maximality forbids two adjacent
	// unmatched vertices, so size ≥ n/4 always. Check the invariant bound.
	g := mustGraph(gen.Cycle(40))
	for seed := uint64(0); seed < 20; seed++ {
		mate := RandomMaximal(g, rng.NewFib(seed))
		if s := Size(mate); s < 10 || s > 20 {
			t.Fatalf("seed %d: matching size %d outside [10,20]", seed, s)
		}
	}
}

func TestRandomMaximalCoversHighDegreeGraphs(t *testing.T) {
	// K_n has a perfect matching for even n; greedy maximal on K_n is
	// always perfect (every unmatched vertex sees an unmatched neighbor).
	g := mustGraph(gen.Complete(12))
	mate := RandomMaximal(g, rng.NewFib(3))
	if Size(mate) != 6 {
		t.Fatalf("K12 greedy matching size %d, want 6", Size(mate))
	}
}

func TestRandomMaximalIsRandom(t *testing.T) {
	g := mustGraph(gen.Grid(8, 8))
	r := rng.NewFib(7)
	a := RandomMaximal(g, r)
	b := RandomMaximal(g, r)
	diff := false
	for v := range a {
		if a[v] != b[v] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("two random maximal matchings are identical")
	}
}

func TestHeavyEdgePrefersHeavyEdges(t *testing.T) {
	// Triangle-free weighted graph: 0-1 (w=10), 1-2 (w=1), 2-3 (w=10).
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 3, 10)
	g := b.MustBuild()
	for seed := uint64(0); seed < 10; seed++ {
		mate := HeavyEdge(g, rng.NewFib(seed))
		if err := Validate(g, mate); err != nil {
			t.Fatal(err)
		}
		// Whatever order vertices are visited, the heavy edges win.
		if mate[0] != 1 || mate[2] != 3 {
			t.Fatalf("seed %d: heavy-edge matching chose %v", seed, mate)
		}
	}
}

func TestHeavyEdgeIsValidAndMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + r.Intn(40)
		g, err := gen.GNP(n, 0.2, r)
		if err != nil {
			return false
		}
		mate := HeavyEdge(g, r)
		return Validate(g, mate) == nil && IsMaximal(g, mate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAugment3GrowsMatching(t *testing.T) {
	// Path 0-1-2-3 with only the middle edge matched has a length-3
	// augmenting path; Augment3 must find it and produce a perfect
	// matching.
	g := mustGraph(gen.Path(4))
	mate := []int32{-1, 2, 1, -1}
	r := rng.NewFib(1)
	n := Augment3(g, mate, r)
	if n != 1 {
		t.Fatalf("augmentations = %d, want 1", n)
	}
	if Size(mate) != 2 {
		t.Fatalf("size after augment = %d, want 2", Size(mate))
	}
	if err := Validate(g, mate); err != nil {
		t.Fatal(err)
	}
}

func TestAugment3NeverShrinks(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + r.Intn(40)
		g, err := gen.GNP(n, 0.15, r)
		if err != nil {
			return false
		}
		mate := RandomMaximal(g, r)
		before := Size(mate)
		aug := Augment3(g, mate, r)
		if Validate(g, mate) != nil {
			return false
		}
		return Size(mate) == before+aug
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAugment3DirectAugmentation(t *testing.T) {
	// Empty matching on a single edge: Augment3's length-1 case.
	g := mustGraph(gen.Path(2))
	mate := []int32{-1, -1}
	if got := Augment3(g, mate, rng.NewFib(2)); got != 1 {
		t.Fatalf("augmentations = %d, want 1", got)
	}
	if Size(mate) != 1 {
		t.Fatal("edge not matched")
	}
}

func TestAugment3PanicsOnBadMate(t *testing.T) {
	g := mustGraph(gen.Path(3))
	defer func() {
		if recover() == nil {
			t.Fatal("short mate array not rejected")
		}
	}()
	Augment3(g, []int32{-1}, rng.NewFib(1))
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustGraph(gen.Path(4))
	if err := Validate(g, []int32{-1, -1}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := Validate(g, []int32{0, -1, -1, -1}); err == nil {
		t.Fatal("self-match accepted")
	}
	if err := Validate(g, []int32{1, 2, 1, -1}); err == nil {
		t.Fatal("non-involutive mate accepted")
	}
	if err := Validate(g, []int32{2, -1, 0, -1}); err == nil {
		t.Fatal("non-edge pair accepted")
	}
	if err := Validate(g, []int32{9, -1, -1, -1}); err == nil {
		t.Fatal("out-of-range mate accepted")
	}
	if err := Validate(g, []int32{1, 0, 3, 2}); err != nil {
		t.Fatalf("valid perfect matching rejected: %v", err)
	}
}

func TestEdgesListsEachPairOnce(t *testing.T) {
	g := mustGraph(gen.Cycle(8))
	mate := RandomMaximal(g, rng.NewFib(5))
	pairs := Edges(mate)
	if len(pairs) != Size(mate) {
		t.Fatalf("Edges returned %d pairs for size %d", len(pairs), Size(mate))
	}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("pair %v not ordered", p)
		}
		if mate[p[0]] != p[1] {
			t.Fatalf("pair %v not matched", p)
		}
	}
}

func TestMatchingOnSparsePaperGraphs(t *testing.T) {
	// On a degree-3 regular graph a random maximal matching should leave
	// only a small fraction unmatched; the compaction heuristic depends on
	// this to raise the average degree meaningfully.
	r := rng.NewFib(12)
	g, err := gen.BReg(500, 10, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	mate := RandomMaximal(g, r)
	if !IsMaximal(g, mate) {
		t.Fatal("matching not maximal")
	}
	if s := Size(mate); s < 150 {
		t.Fatalf("matching size %d suspiciously small for 500 vertices of degree 3", s)
	}
}

func BenchmarkRandomMaximal5000(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(5000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomMaximal(g, r)
	}
}
