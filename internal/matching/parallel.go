package matching

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// This file parallelizes the maximal-matching kernels with a
// deterministic handshake algorithm. The serial greedy sweeps are
// inherently sequential — each decision reads all earlier ones — so the
// parallel path runs a different, round-based algorithm whose output
// depends only on the graph and one RNG draw, never on the shard count
// or interleaving:
//
//  1. One r.Uint64() draw seeds a splitmix64 stream assigning every
//     vertex a fixed priority.
//  2. Propose round (parallel over vertex shards): every unmatched
//     vertex picks one unmatched neighbor — the minimum-priority one
//     for RandomMaximal, the heaviest edge with priority tie-breaking
//     for HeavyEdge.
//  3. Resolve round (parallel): mutual proposals become matches. The
//     smaller endpoint writes both mate entries, so every slot has a
//     unique writer and no synchronization beyond the phase barrier is
//     needed.
//
// Progress: among unmatched vertices that still have an unmatched
// neighbor, consider the globally minimum-priority one, v. Whatever
// neighbor w vertex v proposes to must propose back — all of w's
// unmatched neighbors are candidates and v beats them all — so every
// round matches at least one pair, and a round that matches nothing
// proves the matching maximal. (For HeavyEdge the same argument runs
// inside the top weight tier.) Random instances finish in O(log n)
// rounds.
//
// The parallel result differs from the serial greedy stream — that is
// why it only engages above ParallelMinVertices, keeping the
// fixture-pinned small-instance behavior bit-exact. Above the
// threshold the handshake runs at EVERY degree, including 1 (inline on
// a nil pool): its output depends only on the graph and the seed, so
// engaging by size alone is what makes large-instance results
// identical at any -threads value — the repo-wide thread-count
// invariance contract pinned by core's determinism matrix test.

// ParallelMinVertices is the vertex count below which matching stays on
// the serial path even when a pool is attached: handshake rounds on tiny
// graphs cost more in barriers than they save. It is a variable only so
// tests can lower it; production code should treat it as a constant.
var ParallelMinVertices = 1 << 15

// SetParallel attaches a pool of the given degree to the workspace,
// enabling the parallel matching path for graphs with at least
// ParallelMinVertices vertices. Degree ≤ 1 detaches (and closes any
// owned pool). The workspace owns the resulting pool; Close releases it.
func (w *Workspace) SetParallel(degree int) {
	w.releasePool()
	w.pool = par.New(degree)
	w.ownPool = w.pool != nil
}

// SetPool attaches a caller-owned pool (which may be shared with other
// phases, e.g. the contraction kernel). The caller keeps responsibility
// for closing it; a nil pool detaches.
func (w *Workspace) SetPool(p *par.Pool) {
	w.releasePool()
	w.pool = p
}

// Close releases any pool owned by the workspace. The workspace remains
// usable (serially) afterwards.
func (w *Workspace) Close() { w.releasePool() }

func (w *Workspace) releasePool() {
	if w.ownPool {
		w.pool.Close()
	}
	w.pool = nil
	w.ownPool = false
}

// parallelActive reports whether the handshake path should run for an
// n-vertex graph. The decision is by size alone — never by pool degree
// — so the matching (and everything downstream of it) is identical at
// any thread count; with no pool attached the handshake shards simply
// run inline.
func (w *Workspace) parallelActive(n int) bool {
	return n >= ParallelMinVertices
}

// splitmix64 is the standard 64-bit finalizer used to derive per-vertex
// priorities from the single seed draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// countStride spaces the per-shard match counters a cache line apart so
// resolve shards don't false-share.
const countStride = 8

// ensurePar sizes the handshake buffers for an n-vertex graph and binds
// the shard closures once, so steady-state parallel matching performs no
// allocations.
func (w *Workspace) ensurePar(n, shards int) {
	if cap(w.prio) < n {
		w.prio = make([]uint64, n)
	}
	w.prio = w.prio[:n]
	if cap(w.prop) < n {
		w.prop = make([]int32, n)
	}
	w.prop = w.prop[:n]
	if cap(w.counts) < shards*countStride {
		w.counts = make([]int64, shards*countStride)
	}
	w.counts = w.counts[:shards*countStride]
	if w.prioFn == nil {
		w.prioFn = w.prioShard
		w.proposeRandFn = w.proposeRandShard
		w.proposeHeavyFn = w.proposeHeavyShard
		w.resolveFn = w.resolveShard
	}
}

// shardRange splits [0, n) into near-equal contiguous shards.
func shardRange(s, shards, n int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

func (w *Workspace) prioShard(s int) {
	lo, hi := shardRange(s, w.shards, len(w.prio))
	for v := lo; v < hi; v++ {
		w.prio[v] = splitmix64(w.seed + uint64(v))
	}
}

func (w *Workspace) proposeRandShard(s int) {
	g, mate, prio, prop := w.pg, w.mate, w.prio, w.prop
	lo, hi := shardRange(s, w.shards, len(prop))
	for v := lo; v < hi; v++ {
		if mate[v] >= 0 {
			prop[v] = -1
			continue
		}
		best := int32(-1)
		var bp uint64
		for _, e := range g.Neighbors(int32(v)) {
			if mate[e.To] >= 0 {
				continue
			}
			if p := prio[e.To]; best < 0 || p < bp || (p == bp && e.To < best) {
				best, bp = e.To, p
			}
		}
		prop[v] = best
	}
}

func (w *Workspace) proposeHeavyShard(s int) {
	g, mate, prio, prop := w.pg, w.mate, w.prio, w.prop
	lo, hi := shardRange(s, w.shards, len(prop))
	for v := lo; v < hi; v++ {
		if mate[v] >= 0 {
			prop[v] = -1
			continue
		}
		best := int32(-1)
		bw := int32(-1)
		var bp uint64
		for _, e := range g.Neighbors(int32(v)) {
			if mate[e.To] >= 0 {
				continue
			}
			p := prio[e.To]
			if e.W > bw || (e.W == bw && (p < bp || (p == bp && e.To < best))) {
				best, bw, bp = e.To, e.W, p
			}
		}
		prop[v] = best
	}
}

func (w *Workspace) resolveShard(s int) {
	mate, prop := w.mate, w.prop
	lo, hi := shardRange(s, w.shards, len(prop))
	var cnt int64
	for v := int32(lo); v < int32(hi); v++ {
		// A mutual proposal pairs v with prop[v]; the smaller endpoint
		// writes both mate slots, giving each slot a unique writer.
		if u := prop[v]; u > v && prop[u] == v {
			mate[v] = u
			mate[u] = v
			cnt++
		}
	}
	w.counts[s*countStride] = cnt
}

// parallelMatch runs the handshake algorithm. The mate buffer is already
// reset by the caller; heavy selects the HeavyEdge proposal rule.
func (w *Workspace) parallelMatch(g *graph.Graph, r *rng.Rand, heavy bool) []int32 {
	shards := w.pool.Degree()
	w.ensurePar(g.N(), shards)
	w.pg = g
	w.shards = shards
	w.seed = r.Uint64()
	w.pool.Run(shards, w.prioFn)
	propose := w.proposeRandFn
	if heavy {
		propose = w.proposeHeavyFn
	}
	for {
		w.pool.Run(shards, propose)
		w.pool.Run(shards, w.resolveFn)
		var total int64
		for s := 0; s < shards; s++ {
			total += w.counts[s*countStride]
		}
		if total == 0 {
			break
		}
	}
	w.pg = nil
	return w.mate
}
