// Package matching computes matchings of graphs. The paper's compaction
// heuristic begins by forming "a maximum random matching" — in modern
// terms a random maximal matching — whose edges are then contracted.
//
// A matching is represented as a mate array: mate[v] is v's partner, or
// −1 if v is unmatched.
package matching

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Workspace holds the scratch arrays of the matching algorithms — the
// mate array under construction, the visit permutation, and the
// candidate buffer — so repeated matchings of same-sized graphs (every
// level and start of a compaction campaign) allocate nothing after the
// first call. The zero value is ready to use; a Workspace must not be
// shared across goroutines.
type Workspace struct {
	mate []int32
	perm []int
	cand []int32

	// Parallel handshake state (see parallel.go). The pool is attached
	// with SetParallel or SetPool; the remaining fields are the reused
	// round buffers and the pre-bound shard closures that keep the
	// parallel path allocation-free in steady state.
	pool    *par.Pool
	ownPool bool
	prio    []uint64
	prop    []int32
	counts  []int64
	pg      *graph.Graph
	shards  int
	seed    uint64

	prioFn         func(int)
	proposeRandFn  func(int)
	proposeHeavyFn func(int)
	resolveFn      func(int)
}

// NewWorkspace returns an empty Workspace. Buffers are sized lazily on
// first use and grown as needed, so one workspace serves graphs of any
// size.
func NewWorkspace() *Workspace { return &Workspace{} }

// resetMate returns the mate buffer resized to n and filled with -1.
func (w *Workspace) resetMate(n int) []int32 {
	if cap(w.mate) < n {
		w.mate = make([]int32, n)
	}
	w.mate = w.mate[:n]
	for i := range w.mate {
		w.mate[i] = -1
	}
	return w.mate
}

// resetPerm returns a uniformly random permutation of [0, n) in the
// reused buffer. Identity-fill followed by Shuffle draws exactly the
// words r.Perm(n) would, so workspace matchings consume the same random
// stream as the allocating package functions — the fixture-pinned
// determinism contract.
func (w *Workspace) resetPerm(n int, r *rng.Rand) []int {
	if cap(w.perm) < n {
		w.perm = make([]int, n)
	}
	w.perm = w.perm[:n]
	for i := range w.perm {
		w.perm[i] = i
	}
	r.Shuffle(w.perm)
	return w.perm
}

// candBuf returns an empty candidate buffer with capacity for the
// largest adjacency list of g.
func (w *Workspace) candBuf(g *graph.Graph) []int32 {
	if d := g.MaxDegree(); cap(w.cand) < d {
		w.cand = make([]int32, 0, d)
	}
	return w.cand[:0]
}

// RandomMaximal is the workspace counterpart of the package function:
// same algorithm, same random stream, zero steady-state allocations.
// The returned mate array is owned by the workspace and valid until its
// next use. The method value satisfies coarsen.MatchFunc.
func (w *Workspace) RandomMaximal(g *graph.Graph, r *rng.Rand) []int32 {
	mate := w.resetMate(g.N())
	if w.parallelActive(g.N()) {
		return w.parallelMatch(g, r, false)
	}
	cand := w.candBuf(g)
	for _, vi := range w.resetPerm(g.N(), r) {
		v := int32(vi)
		if mate[v] >= 0 {
			continue
		}
		cand = cand[:0]
		for _, e := range g.Neighbors(v) {
			if mate[e.To] < 0 {
				cand = append(cand, e.To)
			}
		}
		if len(cand) == 0 {
			continue
		}
		u := cand[r.Intn(len(cand))]
		mate[v], mate[u] = u, v
	}
	return mate
}

// HeavyEdge is the workspace counterpart of the package function: same
// algorithm, same random stream, zero steady-state allocations. The
// returned mate array is owned by the workspace and valid until its
// next use.
func (w *Workspace) HeavyEdge(g *graph.Graph, r *rng.Rand) []int32 {
	mate := w.resetMate(g.N())
	if w.parallelActive(g.N()) {
		return w.parallelMatch(g, r, true)
	}
	best := w.candBuf(g)
	for _, vi := range w.resetPerm(g.N(), r) {
		v := int32(vi)
		if mate[v] >= 0 {
			continue
		}
		var bw int32 = -1
		best = best[:0]
		for _, e := range g.Neighbors(v) {
			if mate[e.To] >= 0 {
				continue
			}
			switch {
			case e.W > bw:
				bw = e.W
				best = append(best[:0], e.To)
			case e.W == bw:
				best = append(best, e.To)
			}
		}
		if len(best) == 0 {
			continue
		}
		u := best[r.Intn(len(best))]
		mate[v], mate[u] = u, v
	}
	return mate
}

// RandomMaximal greedily builds a maximal matching: vertices are visited
// in uniformly random order, and each still-unmatched vertex is matched
// with a uniformly random unmatched neighbor (if any). The result is
// maximal — no edge can be added — and its randomness is exactly what the
// compaction heuristic needs to decorrelate successive contractions.
//
// This allocates fresh result and scratch arrays per call; campaigns
// that match repeatedly should hold a Workspace and call its method.
func RandomMaximal(g *graph.Graph, r *rng.Rand) []int32 {
	var w Workspace
	return w.RandomMaximal(g, r)
}

// HeavyEdge builds a maximal matching preferring heavy edges: vertices
// are visited in random order and matched with the heaviest unmatched
// neighbor (ties broken uniformly at random). On contracted graphs this
// is the classical heavy-edge matching rule of multilevel partitioners;
// it is provided for the matching-policy ablation. Like RandomMaximal
// it allocates per call; use a Workspace to amortize.
func HeavyEdge(g *graph.Graph, r *rng.Rand) []int32 {
	var w Workspace
	return w.HeavyEdge(g, r)
}

// Augment3 improves a maximal matching in place by flipping length-3
// augmenting paths (unmatched–matched–matched–unmatched), the blossom-free
// local step toward a maximum matching. It repeats until no length-3
// augmentation exists and returns the number of augmentations performed.
// The resulting matching is strictly larger by that count.
func Augment3(g *graph.Graph, mate []int32, r *rng.Rand) int {
	if len(mate) != g.N() {
		panic("matching: mate array length mismatch")
	}
	augmented := 0
	for {
		improved := false
		for _, ui := range r.Perm(g.N()) {
			u := int32(ui)
			if mate[u] >= 0 {
				continue
			}
			// u — v — w — x with (v,w) matched and x unmatched, x ≠ u.
		searchV:
			for _, ev := range g.Neighbors(u) {
				v := ev.To
				w := mate[v]
				if w < 0 {
					// v unmatched: direct augmentation (length-1).
					mate[u], mate[v] = v, u
					augmented++
					improved = true
					break searchV
				}
				for _, ex := range g.Neighbors(w) {
					x := ex.To
					if x != u && x != v && mate[x] < 0 {
						mate[u], mate[v] = v, u
						mate[w], mate[x] = x, w
						augmented++
						improved = true
						break searchV
					}
				}
			}
		}
		if !improved {
			return augmented
		}
	}
}

// Size returns the number of matched edges.
func Size(mate []int32) int {
	matched := 0
	for _, m := range mate {
		if m >= 0 {
			matched++
		}
	}
	return matched / 2
}

// Edges returns the matched pairs (u, v) with u < v.
func Edges(mate []int32) [][2]int32 {
	out := make([][2]int32, 0, len(mate)/2)
	for v, m := range mate {
		if m > int32(v) {
			out = append(out, [2]int32{int32(v), m})
		}
	}
	return out
}

// Validate checks that mate is a matching of g: involutive, irreflexive,
// and supported on edges of g.
func Validate(g *graph.Graph, mate []int32) error {
	if len(mate) != g.N() {
		return fmt.Errorf("matching: mate array has %d entries for %d vertices", len(mate), g.N())
	}
	for v, m := range mate {
		if m < 0 {
			continue
		}
		if int(m) >= g.N() {
			return fmt.Errorf("matching: mate[%d] = %d out of range", v, m)
		}
		if m == int32(v) {
			return fmt.Errorf("matching: vertex %d matched to itself", v)
		}
		if mate[m] != int32(v) {
			return fmt.Errorf("matching: mate[%d]=%d but mate[%d]=%d", v, m, m, mate[m])
		}
		if !g.HasEdge(int32(v), m) {
			return fmt.Errorf("matching: pair {%d,%d} is not an edge", v, m)
		}
	}
	return nil
}

// IsMaximal reports whether no edge of g has both endpoints unmatched.
func IsMaximal(g *graph.Graph, mate []int32) bool {
	maximal := true
	g.Edges(func(u, v, _ int32) {
		if mate[u] < 0 && mate[v] < 0 {
			maximal = false
		}
	})
	return maximal
}
