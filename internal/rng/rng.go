// Package rng provides the deterministic random number generators used
// throughout the repository.
//
// The paper generated all random numbers with "a Fibonacci random number
// generator"; this package provides a lagged-Fibonacci generator with the
// classical (24, 55) lags, together with a SplitMix64 generator used for
// seeding and for cheap independent streams. Both satisfy Source, a small
// interface compatible with the needs of the graph generators and the
// randomized algorithms (uniform 64-bit words, bounded integers, floats,
// permutations).
//
// Everything here is deterministic given a seed, so every experiment in
// the repository is exactly reproducible.
package rng

import "math/bits"

// Source is the minimal random source used by the rest of the repository.
// Implementations must be deterministic functions of their seed.
type Source interface {
	// Uint64 returns a uniformly distributed 64-bit word.
	Uint64() uint64
}

// Filler is a Source that can also generate a block of words in one
// call. Sources that implement it (Fibonacci does) let Rand.Fill hand
// out a whole block with one dispatch, for consumers that want many
// words at once.
//
// Scalar draws deliberately do NOT prefetch through a buffer: that was
// measured slower than direct dispatch in the annealing trial loop (the
// words traverse memory twice and every draw pays a position store,
// while the monomorphic interface call predicts perfectly).
type Filler interface {
	Source
	// Fill writes the next len(dst) words of the sequence into dst, in
	// order — exactly the words len(dst) successive Uint64 calls would
	// return.
	Fill(dst []uint64)
}

// Rewinder is a Filler whose position can be stepped back, so a
// consumer may overdraw a block with Fill and then return the unused
// tail — net stream consumption exactly matches scalar draws, which is
// what lets block prefetching coexist with the repository's
// bit-identical determinism contract. Fibonacci implements it.
type Rewinder interface {
	Filler
	// Unread steps the stream back n positions; the next n words
	// repeat the n most recently generated ones. n must not exceed
	// the number of words generated so far.
	Unread(n int)
}

// Rand wraps a Source with the derived distributions the algorithms need.
type Rand struct {
	src  Source
	bulk Filler // non-nil when src supports block generation
}

// New returns a Rand drawing from src.
func New(src Source) *Rand {
	r := &Rand{src: src}
	r.bulk, _ = src.(Filler)
	return r
}

// NewFib returns a Rand backed by a lagged-Fibonacci source seeded with seed.
func NewFib(seed uint64) *Rand { return New(NewFibonacci(seed)) }

// Uint64 returns a uniformly distributed 64-bit word.
func (r *Rand) Uint64() uint64 {
	return r.src.Uint64()
}

// Source returns the underlying word source. Hot loops that draw
// millions of words hoist it into a local so the dispatch pointer stays
// in a register across the loop's other calls; drawing from the source
// is exactly drawing from the Rand (Uint64 is a plain delegate). A
// caller deriving values from raw words (bounded integers, floats) must
// reproduce the Rand methods' arithmetic word for word to keep streams
// aligned — see the annealing trial loop, which is pinned to that
// contract by its golden fixture.
func (r *Rand) Source() Source { return r.src }

// Fill writes the next len(dst) words of the stream into dst — the bulk
// counterpart of calling Uint64 len(dst) times, with the per-word
// dispatch amortized over the block when the source supports it.
func (r *Rand) Fill(dst []uint64) {
	if r.bulk != nil {
		r.bulk.Fill(dst)
		return
	}
	for i := range dst {
		dst[i] = r.src.Uint64()
	}
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method with rejection to remove bias.
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo < n {
			// Threshold test: only reject in the biased band.
			thresh := -n % n
			if lo < thresh {
				continue
			}
		}
		return hi
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random (Fisher–Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleInt32 permutes p uniformly at random (Fisher–Yates).
func (r *Rand) ShuffleInt32(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Split returns a new independent Rand derived from this one. The child
// stream is seeded from the parent, so a single experiment seed fans out
// into reproducible per-task streams.
func (r *Rand) Split() *Rand {
	return NewFib(r.Uint64())
}

// mul64 returns the 128-bit product of x and y as (hi, lo). It now
// delegates to math/bits.Mul64 (a single-instruction intrinsic on
// 64-bit targets — the software long multiplication it replaces was a
// measurable slice of every Intn in the annealing trial loop); the
// property test keeps validating the delegation against an independent
// long-multiplication model.
func mul64(x, y uint64) (hi, lo uint64) {
	return bits.Mul64(x, y)
}
