// Package rng provides the deterministic random number generators used
// throughout the repository.
//
// The paper generated all random numbers with "a Fibonacci random number
// generator"; this package provides a lagged-Fibonacci generator with the
// classical (24, 55) lags, together with a SplitMix64 generator used for
// seeding and for cheap independent streams. Both satisfy Source, a small
// interface compatible with the needs of the graph generators and the
// randomized algorithms (uniform 64-bit words, bounded integers, floats,
// permutations).
//
// Everything here is deterministic given a seed, so every experiment in
// the repository is exactly reproducible.
package rng

// Source is the minimal random source used by the rest of the repository.
// Implementations must be deterministic functions of their seed.
type Source interface {
	// Uint64 returns a uniformly distributed 64-bit word.
	Uint64() uint64
}

// Rand wraps a Source with the derived distributions the algorithms need.
type Rand struct {
	src Source
}

// New returns a Rand drawing from src.
func New(src Source) *Rand { return &Rand{src: src} }

// NewFib returns a Rand backed by a lagged-Fibonacci source seeded with seed.
func NewFib(seed uint64) *Rand { return New(NewFibonacci(seed)) }

// Uint64 returns a uniformly distributed 64-bit word.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method with rejection to remove bias.
	for {
		v := r.src.Uint64()
		hi, lo := mul64(v, n)
		if lo < n {
			// Threshold test: only reject in the biased band.
			thresh := -n % n
			if lo < thresh {
				continue
			}
		}
		return hi
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits.
	return float64(r.src.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool { return r.src.Uint64()&1 == 1 }

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random (Fisher–Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleInt32 permutes p uniformly at random (Fisher–Yates).
func (r *Rand) ShuffleInt32(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Split returns a new independent Rand derived from this one. The child
// stream is seeded from the parent, so a single experiment seed fans out
// into reproducible per-task streams.
func (r *Rand) Split() *Rand {
	return NewFib(r.Uint64())
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
