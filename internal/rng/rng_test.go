package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFibonacciDeterministic(t *testing.T) {
	a := NewFibonacci(42)
	b := NewFibonacci(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: generators with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestFibonacciSeedSensitivity(t *testing.T) {
	a := NewFibonacci(1)
	b := NewFibonacci(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/1000 identical outputs; streams not independent", same)
	}
}

func TestFibonacciReseed(t *testing.T) {
	f := NewFibonacci(7)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = f.Uint64()
	}
	f.Seed(7)
	for i := range first {
		if got := f.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestFibonacciAllEvenSeedRecovers(t *testing.T) {
	// Craft a seed situation indirectly: just verify the generator always
	// emits both odd and even values over a window, for several seeds.
	for seed := uint64(0); seed < 8; seed++ {
		f := NewFibonacci(seed)
		odd, even := 0, 0
		for i := 0; i < 1000; i++ {
			if f.Uint64()&1 == 1 {
				odd++
			} else {
				even++
			}
		}
		if odd == 0 || even == 0 {
			t.Fatalf("seed %d: degenerate parity distribution odd=%d even=%d", seed, odd, even)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the public
	// reference implementation by Sebastiano Vigna).
	s := SplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
		0x1B39896A51A8749B,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64 output %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewFib(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewFib(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewFib(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9% quantile of
	// chi2 with 9 degrees of freedom (27.88). Deterministic seed, so this
	// is not flaky.
	r := NewFib(12345)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-squared %.2f exceeds 99.9%% quantile 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewFib(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolIsBalanced(t *testing.T) {
	r := NewFib(14)
	trues := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("Bool true fraction %.4f far from 0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewFib(77)
	for n := 0; n <= 50; n += 7 {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	r := NewFib(5)
	var counts [4]int
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.Perm(4)[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("Perm(4)[0]==%d with frequency %.3f, want ~0.25", i, frac)
		}
	}
}

func TestShuffleInt32(t *testing.T) {
	r := NewFib(8)
	p := make([]int32, 100)
	for i := range p {
		p[i] = int32(i)
	}
	r.ShuffleInt32(p)
	seen := make([]bool, 100)
	moved := false
	for i, v := range p {
		if seen[v] {
			t.Fatalf("ShuffleInt32 duplicated value %d", v)
		}
		seen[v] = true
		if int32(i) != v {
			moved = true
		}
	}
	if !moved {
		t.Fatal("ShuffleInt32 left a 100-element slice fixed; astronomically unlikely")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewFib(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide on %d/1000 outputs", same)
	}
}

func TestMul64MatchesBigComputation(t *testing.T) {
	// Property: mul64 agrees with the decomposition via 32-bit halves
	// computed a second, independent way.
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Independent recomputation using math/bits-free long multiplication
		// with different grouping.
		a, b := x>>32, x&0xFFFFFFFF
		c, d := y>>32, y&0xFFFFFFFF
		ll := b * d
		lh := b * c
		hl := a * d
		hh := a * c
		carry := (ll>>32 + lh&0xFFFFFFFF + hl&0xFFFFFFFF) >> 32
		wantHi := hh + lh>>32 + hl>>32 + carry
		wantLo := x * y
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUnbiasedSmallN(t *testing.T) {
	r := NewFib(2024)
	const n = 3
	var counts [n]int
	const trials = 90000
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/n) > 0.01 {
			t.Fatalf("Uint64n(%d)==%d with frequency %.4f, want ~%.4f", n, i, frac, 1.0/n)
		}
	}
}

func BenchmarkFibonacciUint64(b *testing.B) {
	f := NewFibonacci(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Uint64()
	}
	_ = sink
}

func BenchmarkRandIntn(b *testing.B) {
	r := NewFib(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

// plainSource hides Fibonacci's Fill so a Rand built over it cannot use
// the bulk path anywhere.
type plainSource struct{ f *Fibonacci }

func (p plainSource) Uint64() uint64 { return p.f.Uint64() }

// TestFillerStreamIdentical is the contract the repository's determinism
// rests on: a Rand over a Filler source delivers exactly the word stream
// of a Rand over the same source with the bulk path hidden, across every
// derived draw.
func TestFillerStreamIdentical(t *testing.T) {
	buffered := NewFib(99)
	plain := New(plainSource{NewFibonacci(99)})
	for i := 0; i < 3000; i++ {
		switch i % 5 {
		case 0:
			if a, b := buffered.Uint64(), plain.Uint64(); a != b {
				t.Fatalf("step %d: Uint64 %d != %d", i, a, b)
			}
		case 1:
			if a, b := buffered.Intn(17), plain.Intn(17); a != b {
				t.Fatalf("step %d: Intn %d != %d", i, a, b)
			}
		case 2:
			if a, b := buffered.Float64(), plain.Float64(); a != b {
				t.Fatalf("step %d: Float64 %v != %v", i, a, b)
			}
		case 3:
			if a, b := buffered.Bool(), plain.Bool(); a != b {
				t.Fatalf("step %d: Bool %v != %v", i, a, b)
			}
		case 4:
			a, b := buffered.Split(), plain.Split()
			if a.Uint64() != b.Uint64() {
				t.Fatalf("step %d: Split streams diverged", i)
			}
		}
	}
}

// TestFibonacciFillMatchesUint64 pins Fill's block generation to the
// scalar sequence, including across block boundaries and odd lengths.
func TestFibonacciFillMatchesUint64(t *testing.T) {
	scalar := NewFibonacci(7)
	block := NewFibonacci(7)
	for _, size := range []int{1, 3, 55, 64, 7, 100, 2} {
		dst := make([]uint64, size)
		block.Fill(dst)
		for k, v := range dst {
			if want := scalar.Uint64(); v != want {
				t.Fatalf("Fill block size %d, word %d: got %d want %d", size, k, v, want)
			}
		}
	}
}

// TestFibonacciUnread pins the rewind contract: after Unread(k), the
// generator replays exactly the last k words and then continues the
// original sequence, for rewinds spanning several 55-word state wraps.
func TestFibonacciUnread(t *testing.T) {
	f := NewFibonacci(13)
	ref := NewFibonacci(13)
	want := make([]uint64, 1000)
	for i := range want {
		want[i] = ref.Uint64()
	}
	pos := 0
	advance := func(n int) {
		for i := 0; i < n; i++ {
			if got := f.Uint64(); got != want[pos] {
				t.Fatalf("word %d: got %d want %d", pos, got, want[pos])
			}
			pos++
		}
	}
	advance(300)
	for _, k := range []int{1, 7, 55, 56, 123, 299, 0} {
		f.Unread(k)
		pos -= k
		advance(k + 10)
	}
}

// TestRandFillDrainsBuffer checks Fill after partial scalar consumption:
// the buffered words come first, then fresh ones, with nothing skipped.
func TestRandFillMatchesScalar(t *testing.T) {
	a := NewFib(31)
	b := NewFib(31)
	for i := 0; i < 10; i++ {
		a.Uint64()
		b.Uint64()
	}
	got := make([]uint64, 150)
	a.Fill(got)
	for k := range got {
		if want := b.Uint64(); got[k] != want {
			t.Fatalf("Fill word %d: got %d want %d", k, got[k], want)
		}
	}
	// And the streams stay aligned afterwards.
	if a.Uint64() != b.Uint64() {
		t.Fatal("streams diverged after Fill")
	}
}
