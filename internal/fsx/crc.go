package fsx

import (
	"fmt"
	"hash/crc32"
)

// CRC32 trailers protect persisted records against bit rot and torn
// writes that slip past the rename-atomic protocol (a forged rename, a
// corrupted block under an intact file, a foreign tool truncating the
// file). The trailer is a final line appended after the payload:
//
//	<payload bytes, exactly as given>
//	\n#crc32:xxxxxxxx\n
//
// where xxxxxxxx is the IEEE CRC32 of the payload in lowercase hex. The
// trailer always starts with its own newline, so SplitCRC restores the
// payload byte-for-byte. Records missing the trailer are treated as
// corrupt — silent acceptance of unverifiable bytes is exactly what the
// trailer exists to prevent.

// crcTrailerLen is len("\n#crc32:") + 8 hex digits + len("\n").
const crcTrailerLen = 17

const crcTrailerPrefix = "\n#crc32:"

// CorruptRecordError reports a persisted record whose bytes fail
// checksum verification (or carry no checksum at all). Expected is the
// checksum stored in the trailer, Got the checksum computed from the
// payload bytes; for a missing or malformed trailer Expected is zero and
// Reason says why.
type CorruptRecordError struct {
	Path     string
	Expected uint32
	Got      uint32
	Reason   string
}

func (e *CorruptRecordError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("fsx: corrupt record %s: %s", e.Path, e.Reason)
	}
	return fmt.Sprintf("fsx: corrupt record %s: crc32 mismatch (expected %08x, got %08x)",
		e.Path, e.Expected, e.Got)
}

// AppendCRC returns payload with its CRC32 trailer appended. The result
// is what gets persisted; SplitCRC reverses it exactly.
func AppendCRC(payload []byte) []byte {
	sum := crc32.ChecksumIEEE(payload)
	out := make([]byte, 0, len(payload)+crcTrailerLen)
	out = append(out, payload...)
	out = append(out, crcTrailerPrefix...)
	out = fmt.Appendf(out, "%08x", sum)
	return append(out, '\n')
}

// SplitCRC verifies data's CRC32 trailer and returns the payload with
// the trailer stripped. A missing, malformed, or mismatching trailer
// returns a *CorruptRecordError naming path (path is only used for the
// error; no file is touched).
func SplitCRC(path string, data []byte) ([]byte, error) {
	if len(data) < crcTrailerLen {
		return nil, &CorruptRecordError{Path: path, Reason: "missing crc32 trailer"}
	}
	trailer := data[len(data)-crcTrailerLen:]
	if string(trailer[:len(crcTrailerPrefix)]) != crcTrailerPrefix || trailer[crcTrailerLen-1] != '\n' {
		return nil, &CorruptRecordError{Path: path, Reason: "missing crc32 trailer"}
	}
	// Strict lowercase-hex parse: a looser parser (Sscanf %x) would accept
	// case-flipped digits, i.e. silently pass certain single-bit flips
	// inside the trailer itself.
	var expected uint32
	for _, c := range trailer[len(crcTrailerPrefix) : crcTrailerLen-1] {
		var v uint32
		switch {
		case c >= '0' && c <= '9':
			v = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint32(c-'a') + 10
		default:
			return nil, &CorruptRecordError{Path: path, Reason: "malformed crc32 trailer"}
		}
		expected = expected<<4 | v
	}
	payload := data[:len(data)-crcTrailerLen]
	if got := crc32.ChecksumIEEE(payload); got != expected {
		return nil, &CorruptRecordError{Path: path, Expected: expected, Got: got}
	}
	return payload, nil
}
