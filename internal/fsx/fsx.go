// Package fsx holds the repository's crash-safe filesystem helpers.
// Every artifact a run leaves behind — benchmark snapshots, harness
// CSV/JSON exports, trace files, checkpoints — goes through the same
// write-temp + fsync + rename protocol, so a crash (or SIGKILL) at any
// instant leaves either the previous complete file or the new complete
// file on disk, never a torn half-write. Stray temp files from killed
// writers are ignorable (and are cleaned up by the next successful write
// to the same path only incidentally — they carry unique suffixes).
package fsx

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path atomically: the bytes land in a
// temp file in path's directory, are fsynced, and the temp file is then
// renamed over path (rename within one directory is atomic on POSIX
// filesystems). The directory is fsynced afterwards so the rename itself
// survives a crash. On any error the temp file is removed and the
// previous contents of path are untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	f, err := NewAtomicFile(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// AtomicFile is a streaming counterpart to WriteFileAtomic: writes go to
// a hidden temp file until Commit fsyncs and renames it into place.
// Abort (or Commit after a write error) discards the temp file and
// leaves any previous file at the path untouched. Either Commit or Abort
// must be called exactly once; Abort after a successful Commit is a
// no-op, so `defer f.Abort()` is a safe cleanup pattern.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// NewAtomicFile opens a temp file in path's directory that Commit will
// rename to path.
func NewAtomicFile(path string, perm os.FileMode) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer on the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit fsyncs the temp file, renames it over the destination path, and
// fsyncs the directory.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("fsx: AtomicFile for %s already finished", a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return syncDir(filepath.Dir(a.path))
}

// Abort discards the temp file. Calling it after Commit is a no-op.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// syncDir fsyncs a directory so a just-completed rename is durable.
// Filesystems that do not support fsync on directories make this a
// best-effort no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	// Some platforms/filesystems return EINVAL for Sync on a directory;
	// the rename already happened, so degrade silently.
	_ = d.Sync()
	return nil
}
