// Package fsx holds the repository's crash-safe filesystem helpers.
// Every artifact a run leaves behind — benchmark snapshots, harness
// CSV/JSON exports, trace files, checkpoints — goes through the same
// write-temp + fsync + rename protocol, so a crash (or SIGKILL) at any
// instant leaves either the previous complete file or the new complete
// file on disk, never a torn half-write. Stray temp files from killed
// writers are ignorable (and are cleaned up by the next successful write
// to the same path only incidentally — they carry unique suffixes).
//
// All filesystem access goes through the FS seam (sysfs.go): package
// helpers use the real filesystem (OS), while the *FS variants accept an
// injected filesystem so tests can deterministically inject ENOSPC,
// fsync failures, rename failures, short writes, and read-back
// corruption (internal/faultfs).
package fsx

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes data to path atomically: the bytes land in a
// temp file in path's directory, are fsynced, and the temp file is then
// renamed over path (rename within one directory is atomic on POSIX
// filesystems). The directory is fsynced afterwards so the rename itself
// survives a crash. On any error the temp file is removed and the
// previous contents of path are untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(OS, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic on an injected filesystem.
func WriteFileAtomicFS(fs FS, path string, data []byte, perm os.FileMode) error {
	f, err := NewAtomicFileFS(fs, path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// AtomicFile is a streaming counterpart to WriteFileAtomic: writes go to
// a hidden temp file until Commit fsyncs and renames it into place.
// Abort (or Commit after a write error) discards the temp file and
// leaves any previous file at the path untouched. Either Commit or Abort
// must be called exactly once; Abort after a successful Commit is a
// no-op, so `defer f.Abort()` is a safe cleanup pattern.
type AtomicFile struct {
	fs   FS
	f    File
	path string
	done bool
}

// NewAtomicFile opens a temp file in path's directory that Commit will
// rename to path.
func NewAtomicFile(path string, perm os.FileMode) (*AtomicFile, error) {
	return NewAtomicFileFS(OS, path, perm)
}

// NewAtomicFileFS is NewAtomicFile on an injected filesystem.
func NewAtomicFileFS(fs FS, path string, perm os.FileMode) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fs.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := f.Chmod(perm); err != nil {
		// Error path: the chmod already failed; a secondary close/remove
		// failure adds nothing actionable.
		_ = f.Close()
		_ = fs.Remove(f.Name())
		return nil, err
	}
	return &AtomicFile{fs: fs, f: f, path: path}, nil
}

// Write implements io.Writer on the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit fsyncs the temp file, renames it over the destination path, and
// fsyncs the directory. Every error on that path — including the close
// after fsync and the directory fsync — is propagated: a swallowed error
// here would turn a failed write into silent data loss.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("fsx: AtomicFile for %s already finished", a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		_ = a.f.Close()
		_ = a.fs.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		_ = a.fs.Remove(a.f.Name())
		return err
	}
	if err := a.fs.Rename(a.f.Name(), a.path); err != nil {
		_ = a.fs.Remove(a.f.Name())
		return err
	}
	return syncDir(a.fs, filepath.Dir(a.path))
}

// Abort discards the temp file. Calling it after Commit is a no-op.
// Cleanup errors are ignored: the write is already being abandoned and
// stray temp files are inert by design.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	_ = a.f.Close()
	_ = a.fs.Remove(a.f.Name())
}

// syncDir fsyncs a directory so a just-completed rename is durable. A
// filesystem that cannot fsync directories (EINVAL/ENOTSUP — common on
// tmpfs-like mounts) degrades silently: the rename already happened. Any
// other sync or close failure is propagated — a genuinely failed
// directory fsync means the rename may not survive a crash, and callers
// (the service's degraded-persistence state machine in particular) need
// to know.
func syncDir(fs FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		// Cannot open the directory at all (e.g. permissions): the rename
		// succeeded; treat like an unsupported directory fsync.
		return nil
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil && !unsupportedSync(syncErr) {
		return fmt.Errorf("fsx: fsync dir %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("fsx: close dir %s: %w", dir, closeErr)
	}
	return nil
}

// unsupportedSync reports whether a Sync error means "this filesystem
// does not support fsync on directories" rather than a real I/O failure.
func unsupportedSync(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY)
}
