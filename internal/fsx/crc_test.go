package fsx

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCRCRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte(`{"schema":"bisectd-job/v1","id":"j-1"}`),
		[]byte("line one\nline two\n"),
		bytes.Repeat([]byte{0x00, 0xff, '\n'}, 1000),
	} {
		sealed := AppendCRC(payload)
		got, err := SplitCRC("test", sealed)
		if err != nil {
			t.Fatalf("SplitCRC(%q...): %v", sealed[:min(len(sealed), 20)], err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: got %q, want %q", got, payload)
		}
	}
}

func TestCRCTrailerShape(t *testing.T) {
	sealed := AppendCRC([]byte("payload"))
	s := string(sealed)
	if !strings.HasPrefix(s, "payload\n#crc32:") || !strings.HasSuffix(s, "\n") {
		t.Fatalf("trailer shape wrong: %q", s)
	}
	if len(sealed) != len("payload")+crcTrailerLen {
		t.Fatalf("trailer length %d, want %d", len(sealed)-len("payload"), crcTrailerLen)
	}
}

func TestCRCDetectsBitFlip(t *testing.T) {
	payload := []byte(`{"schema":"bisectd-job/v1","id":"j-7","state":"done"}`)
	sealed := AppendCRC(payload)
	// Flip every bit position in turn; every single flip must be caught.
	for i := range sealed {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << b
			_, err := SplitCRC("rec.json", mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted silently", i, b)
			}
			var ce *CorruptRecordError
			if !errors.As(err, &ce) {
				t.Fatalf("bit flip error not *CorruptRecordError: %T %v", err, err)
			}
			if ce.Path != "rec.json" {
				t.Fatalf("error path = %q", ce.Path)
			}
		}
	}
}

func TestCRCMissingTrailer(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("no trailer here, but long enough to hold one......"),
		AppendCRC([]byte("truncated"))[:20], // cut mid-trailer
	} {
		_, err := SplitCRC("p", data)
		var ce *CorruptRecordError
		if !errors.As(err, &ce) {
			t.Fatalf("data %q: err = %v, want *CorruptRecordError", data, err)
		}
		if ce.Reason == "" {
			t.Fatalf("data %q: missing-trailer error should carry a Reason", data)
		}
	}
}

func TestCRCMismatchReportsChecksums(t *testing.T) {
	sealed := AppendCRC([]byte("original"))
	// Corrupt the payload but keep the trailer intact.
	sealed[0] ^= 0x01
	_, err := SplitCRC("p", sealed)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	if ce.Expected == ce.Got {
		t.Fatalf("expected != got checksums should differ: %08x", ce.Expected)
	}
	if !strings.Contains(ce.Error(), "crc32 mismatch") {
		t.Fatalf("error text: %q", ce.Error())
	}
}
