package fsx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("after overwrite: %q", got)
	}
	// No temp droppings after successful writes.
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicPerm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "locked")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("perm = %o, want 600", perm)
	}
}

func TestAtomicFileAbortPreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := WriteFileAtomic(path, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := NewAtomicFile(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, _ := os.ReadFile(path)
	if string(got) != "keep me" {
		t.Fatalf("abort clobbered previous contents: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicFileAbortAfterCommitIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	f, err := NewAtomicFile(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort() // must not remove the committed file
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("double Commit accepted")
	}
}

// A killed writer leaves a temp file behind; it must never be confused
// with the real artifact, and a later atomic write must still succeed.
func TestStrayTempFileDoesNotBlockWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	f, err := NewAtomicFile(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("orphaned")); err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: neither Commit nor Abort runs.
	if err := WriteFileAtomic(path, []byte("real"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "real" {
		t.Fatalf("read back %q", got)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}
