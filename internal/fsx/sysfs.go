package fsx

import (
	"io"
	"os"
)

// FS is the filesystem seam behind the atomic-write protocol and the
// persistence layers built on it (the service job/graph store, harness
// checkpoints, BENCH snapshot writes). Production code uses OS; tests
// substitute internal/faultfs to inject deterministic storage failures
// — ENOSPC, fsync errors, failed renames, short writes, read-back
// corruption — without touching a real disk's failure modes.
//
// The interface is deliberately exactly the operations the repository's
// persistence code performs, nothing more: a fault injector that
// implements it covers every byte the repo ever writes or reads through
// fsx-based storage.
type FS interface {
	// CreateTemp creates a new temp file in dir (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Open opens a file or directory for reading/fsync.
	Open(name string) (File, error)
	// Rename atomically renames oldpath to newpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat stats a path.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
}

// File is the open-file surface the atomic protocol needs: write,
// chmod, fsync, close. Directory handles only use Sync and Close.
type File interface {
	io.Writer
	io.Reader
	Chmod(mode os.FileMode) error
	Sync() error
	Close() error
	Name() string
}

// OS is the real filesystem. Package-level helpers (WriteFileAtomic,
// NewAtomicFile) use it; components that persist long-lived state (the
// service store, harness checkpoints) accept an FS so tests can swap in
// a fault injector per instance without global state.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
