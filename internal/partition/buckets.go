package partition

import "fmt"

// GainBuckets is the classical Fiduccia–Mattheyses bucket structure: a
// dense array of doubly-linked vertex lists indexed by gain, supporting
// O(1) insert/remove/update and amortized-O(1) max extraction. Gains must
// lie in [−maxGain, +maxGain], where maxGain is the maximum weighted
// degree of the graph.
//
// Within a bucket, vertices are kept in LIFO order, the tie-breaking rule
// of the original FM paper.
type GainBuckets struct {
	maxGain int64
	head    []int32 // bucket index -> first vertex, or -1
	next    []int32 // vertex -> successor in its bucket, or -1
	prev    []int32 // vertex -> predecessor, or -1 if first
	bucket  []int32 // vertex -> bucket index, or -1 if absent
	gain    []int64 // vertex -> current gain (valid when present)
	maxIdx  int     // highest possibly-non-empty bucket (lazily lowered)
	size    int
}

// maxBucketSpan bounds the allocated bucket array; 2·span+1 int32 heads.
// Weighted degrees beyond this would indicate misuse (the repository's
// graphs stay in the low thousands).
const maxBucketSpan = 1 << 24

// NewGainBuckets returns an empty structure for n vertices with gains in
// [−maxGain, maxGain].
func NewGainBuckets(n int, maxGain int64) (*GainBuckets, error) {
	if maxGain < 0 {
		return nil, fmt.Errorf("partition: negative gain bound %d", maxGain)
	}
	if maxGain > maxBucketSpan {
		return nil, fmt.Errorf("partition: gain bound %d exceeds supported span %d", maxGain, maxBucketSpan)
	}
	gb := &GainBuckets{
		maxGain: maxGain,
		head:    make([]int32, 2*maxGain+1),
		next:    make([]int32, n),
		prev:    make([]int32, n),
		bucket:  make([]int32, n),
		gain:    make([]int64, n),
		maxIdx:  -1,
	}
	for i := range gb.head {
		gb.head[i] = -1
	}
	for i := range gb.bucket {
		gb.bucket[i] = -1
	}
	return gb, nil
}

// Len returns the number of vertices currently in the structure.
func (gb *GainBuckets) Len() int { return gb.size }

// Contains reports whether v is present.
func (gb *GainBuckets) Contains(v int32) bool { return gb.bucket[v] >= 0 }

// GainOf returns the stored gain of v; v must be present.
func (gb *GainBuckets) GainOf(v int32) int64 { return gb.gain[v] }

func (gb *GainBuckets) idx(gain int64) int32 {
	if gain < -gb.maxGain || gain > gb.maxGain {
		panic(fmt.Sprintf("partition: gain %d outside [−%d, %d]", gain, gb.maxGain, gb.maxGain))
	}
	return int32(gain + gb.maxGain)
}

// Add inserts v with the given gain. v must not be present.
func (gb *GainBuckets) Add(v int32, gain int64) {
	if gb.bucket[v] >= 0 {
		panic("partition: Add of vertex already present")
	}
	i := gb.idx(gain)
	gb.bucket[v] = i
	gb.gain[v] = gain
	gb.prev[v] = -1
	gb.next[v] = gb.head[i]
	if gb.head[i] >= 0 {
		gb.prev[gb.head[i]] = v
	}
	gb.head[i] = v
	if int(i) > gb.maxIdx {
		gb.maxIdx = int(i)
	}
	gb.size++
}

// Remove deletes v. v must be present.
func (gb *GainBuckets) Remove(v int32) {
	i := gb.bucket[v]
	if i < 0 {
		panic("partition: Remove of absent vertex")
	}
	if gb.prev[v] >= 0 {
		gb.next[gb.prev[v]] = gb.next[v]
	} else {
		gb.head[i] = gb.next[v]
	}
	if gb.next[v] >= 0 {
		gb.prev[gb.next[v]] = gb.prev[v]
	}
	gb.bucket[v] = -1
	gb.size--
}

// Update changes v's gain (no-op if unchanged). v must be present.
func (gb *GainBuckets) Update(v int32, gain int64) {
	if gb.bucket[v] < 0 {
		panic("partition: Update of absent vertex")
	}
	if gb.gain[v] == gain {
		return
	}
	gb.Remove(v)
	gb.Add(v, gain)
}

// Max returns the vertex with maximum gain (LIFO within ties) and its
// gain. ok is false when empty.
func (gb *GainBuckets) Max() (v int32, gain int64, ok bool) {
	for gb.maxIdx >= 0 {
		if h := gb.head[gb.maxIdx]; h >= 0 {
			return h, int64(gb.maxIdx) - gb.maxGain, true
		}
		gb.maxIdx--
	}
	return -1, 0, false
}

// PopMax removes and returns the maximum-gain vertex.
func (gb *GainBuckets) PopMax() (v int32, gain int64, ok bool) {
	v, gain, ok = gb.Max()
	if ok {
		gb.Remove(v)
	}
	return v, gain, ok
}

// Descending visits vertices in non-increasing gain order, stopping early
// when fn returns false. The structure must not be mutated during the
// walk.
func (gb *GainBuckets) Descending(fn func(v int32, gain int64) bool) {
	start := gb.maxIdx
	if top := len(gb.head) - 1; start > top {
		start = top
	}
	for i := start; i >= 0; i-- {
		for v := gb.head[i]; v >= 0; v = gb.next[v] {
			if !fn(v, int64(i)-gb.maxGain) {
				return
			}
		}
	}
}
