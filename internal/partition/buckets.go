package partition

import "fmt"

// GainBuckets is the classical Fiduccia–Mattheyses bucket structure: a
// dense array of doubly-linked vertex lists indexed by gain, supporting
// O(1) insert/remove/update and amortized-O(1) max extraction. Gains must
// lie in [−maxGain, +maxGain], where maxGain is the maximum weighted
// degree of the graph.
//
// Within a bucket, vertices are kept in LIFO order, the tie-breaking rule
// of the original FM paper.
//
// Per-vertex state is packed into two flat arrays of 64-bit words — the
// (next, prev) list links in one, the (bucket index, gain) pair in the
// other — so every list operation touches one cache line per vertex
// instead of four. The packed gain is an int32, which the maxBucketSpan
// cap guarantees is exact.
type GainBuckets struct {
	maxGain int64
	head    []int32  // bucket index -> first vertex, or -1
	links   []uint64 // vertex -> packed (next, prev), each an int32, -1 sentinels
	slots   []uint64 // vertex -> packed (bucket index or -1, gain)
	maxIdx  int      // highest possibly-non-empty bucket (lazily lowered)
	size    int
}

// maxBucketSpan bounds the allocated bucket array; 2·span+1 int32 heads.
// Weighted degrees beyond this would indicate misuse (the repository's
// graphs stay in the low thousands).
const maxBucketSpan = 1 << 24

func packPair(lo, hi int32) uint64 { return uint64(uint32(lo)) | uint64(uint32(hi))<<32 }
func unpackLo(p uint64) int32      { return int32(uint32(p)) }
func unpackHi(p uint64) int32      { return int32(uint32(p >> 32)) }

// NewGainBuckets returns an empty structure for n vertices with gains in
// [−maxGain, maxGain].
func NewGainBuckets(n int, maxGain int64) (*GainBuckets, error) {
	gb := &GainBuckets{}
	if err := gb.Reset(n, maxGain); err != nil {
		return nil, err
	}
	return gb, nil
}

// Reset re-initializes the structure to empty for n vertices with gains
// in [−maxGain, maxGain], reusing the existing arrays whenever they are
// large enough. A warmed-up structure resets without allocating, which is
// what lets the refinement workspaces run steady-state passes at zero
// allocations.
func (gb *GainBuckets) Reset(n int, maxGain int64) error {
	if maxGain < 0 {
		return fmt.Errorf("partition: negative gain bound %d", maxGain)
	}
	if maxGain > maxBucketSpan {
		return fmt.Errorf("partition: gain bound %d exceeds supported span %d", maxGain, maxBucketSpan)
	}
	span := int(2*maxGain + 1)
	if cap(gb.head) < span {
		gb.head = make([]int32, span)
	}
	gb.head = gb.head[:span]
	for i := range gb.head {
		gb.head[i] = -1
	}
	if cap(gb.links) < n {
		gb.links = make([]uint64, n)
		gb.slots = make([]uint64, n)
	}
	gb.links = gb.links[:n]
	gb.slots = gb.slots[:n]
	absent := packPair(-1, 0)
	for i := range gb.slots {
		gb.slots[i] = absent
	}
	gb.maxGain = maxGain
	gb.maxIdx = -1
	gb.size = 0
	return nil
}

// Len returns the number of vertices currently in the structure.
func (gb *GainBuckets) Len() int { return gb.size }

// Contains reports whether v is present.
func (gb *GainBuckets) Contains(v int32) bool { return unpackLo(gb.slots[v]) >= 0 }

// GainOf returns the stored gain of v; v must be present.
func (gb *GainBuckets) GainOf(v int32) int64 { return int64(unpackHi(gb.slots[v])) }

func (gb *GainBuckets) idx(gain int64) int32 {
	if gain < -gb.maxGain || gain > gb.maxGain {
		panic(fmt.Sprintf("partition: gain %d outside [−%d, %d]", gain, gb.maxGain, gb.maxGain))
	}
	return int32(gain + gb.maxGain)
}

// Add inserts v with the given gain. v must not be present.
func (gb *GainBuckets) Add(v int32, gain int64) {
	if unpackLo(gb.slots[v]) >= 0 {
		panic("partition: Add of vertex already present")
	}
	i := gb.idx(gain)
	gb.slots[v] = packPair(i, int32(gain))
	h := gb.head[i]
	gb.links[v] = packPair(h, -1)
	if h >= 0 {
		gb.links[h] = packPair(unpackLo(gb.links[h]), v)
	}
	gb.head[i] = v
	if int(i) > gb.maxIdx {
		gb.maxIdx = int(i)
	}
	gb.size++
}

// Remove deletes v. v must be present.
func (gb *GainBuckets) Remove(v int32) {
	i := unpackLo(gb.slots[v])
	if i < 0 {
		panic("partition: Remove of absent vertex")
	}
	lv := gb.links[v]
	next, prev := unpackLo(lv), unpackHi(lv)
	if prev >= 0 {
		gb.links[prev] = packPair(next, unpackHi(gb.links[prev]))
	} else {
		gb.head[i] = next
	}
	if next >= 0 {
		gb.links[next] = packPair(unpackLo(gb.links[next]), prev)
	}
	gb.slots[v] = packPair(-1, unpackHi(gb.slots[v]))
	gb.size--
}

// Update changes v's gain (no-op if unchanged). v must be present.
func (gb *GainBuckets) Update(v int32, gain int64) {
	s := gb.slots[v]
	if unpackLo(s) < 0 {
		panic("partition: Update of absent vertex")
	}
	if int64(unpackHi(s)) == gain {
		return
	}
	gb.reposition(v, unpackLo(s), gain)
}

// UpdateIfPresent is Contains + Update fused into a single presence
// lookup — the refinement inner loops call this once per neighbor of
// every moved vertex. Ordering semantics are exactly Update's: a changed
// gain re-inserts v at the front of its new bucket; an unchanged gain
// leaves its position alone.
func (gb *GainBuckets) UpdateIfPresent(v int32, gain int64) {
	s := gb.slots[v]
	if unpackLo(s) < 0 || int64(unpackHi(s)) == gain {
		return
	}
	gb.reposition(v, unpackLo(s), gain)
}

// reposition moves the present vertex v from bucket old to the front of
// gain's bucket: Remove followed by Add, fused so v's slot word is
// written once and the size bookkeeping cancels out. LIFO semantics are
// identical to the unfused sequence.
func (gb *GainBuckets) reposition(v, old int32, gain int64) {
	lv := gb.links[v]
	next, prev := unpackLo(lv), unpackHi(lv)
	if prev >= 0 {
		gb.links[prev] = packPair(next, unpackHi(gb.links[prev]))
	} else {
		gb.head[old] = next
	}
	if next >= 0 {
		gb.links[next] = packPair(unpackLo(gb.links[next]), prev)
	}
	i := gb.idx(gain)
	gb.slots[v] = packPair(i, int32(gain))
	h := gb.head[i]
	gb.links[v] = packPair(h, -1)
	if h >= 0 {
		gb.links[h] = packPair(unpackLo(gb.links[h]), v)
	}
	gb.head[i] = v
	if int(i) > gb.maxIdx {
		gb.maxIdx = int(i)
	}
}

// Max returns the vertex with maximum gain (LIFO within ties) and its
// gain. ok is false when empty.
func (gb *GainBuckets) Max() (v int32, gain int64, ok bool) {
	for gb.maxIdx >= 0 {
		if h := gb.head[gb.maxIdx]; h >= 0 {
			return h, int64(gb.maxIdx) - gb.maxGain, true
		}
		gb.maxIdx--
	}
	return -1, 0, false
}

// PopMax removes and returns the maximum-gain vertex.
func (gb *GainBuckets) PopMax() (v int32, gain int64, ok bool) {
	v, gain, ok = gb.Max()
	if ok {
		gb.Remove(v)
	}
	return v, gain, ok
}

// Descending visits vertices in non-increasing gain order, stopping early
// when fn returns false. The structure must not be mutated during the
// walk.
func (gb *GainBuckets) Descending(fn func(v int32, gain int64) bool) {
	for c := gb.Cursor(); c.Valid(); c.Next() {
		if !fn(c.V(), c.Gain()) {
			return
		}
	}
}

// Cursor is a lightweight descending-order iterator over a GainBuckets.
// It visits exactly the sequence Descending visits, but through flat,
// inlinable accessors instead of a callback — the KL pair scan walks two
// of these in a nested loop, where closure dispatch per scanned pair is
// measurable. The structure must not be mutated during the walk.
type Cursor struct {
	gb   *GainBuckets
	i    int   // current bucket index
	v    int32 // current vertex, or -1 when exhausted
	gain int64 // gain of the current bucket
}

// Cursor returns a cursor positioned on the maximum-gain vertex (invalid
// immediately if the structure is empty).
func (gb *GainBuckets) Cursor() Cursor {
	c := Cursor{gb: gb, v: -1}
	c.i = gb.maxIdx
	if top := len(gb.head) - 1; c.i > top {
		c.i = top
	}
	for ; c.i >= 0; c.i-- {
		if h := gb.head[c.i]; h >= 0 {
			c.v = h
			c.gain = int64(c.i) - gb.maxGain
			break
		}
	}
	return c
}

// Valid reports whether the cursor is on a vertex.
func (c *Cursor) Valid() bool { return c.v >= 0 }

// V returns the current vertex; the cursor must be valid.
func (c *Cursor) V() int32 { return c.v }

// Gain returns the current vertex's gain; the cursor must be valid.
func (c *Cursor) Gain() int64 { return c.gain }

// Next advances to the next vertex in non-increasing gain order.
func (c *Cursor) Next() {
	if next := unpackLo(c.gb.links[c.v]); next >= 0 {
		c.v = next
		return
	}
	for c.i--; c.i >= 0; c.i-- {
		if h := c.gb.head[c.i]; h >= 0 {
			c.v = h
			c.gain = int64(c.i) - c.gb.maxGain
			return
		}
	}
	c.v = -1
}

// Span returns the size of the bucket index space (2·maxGain + 1).
// Bucket index i holds gain i − maxGain; the parallel move-proposal
// phase partitions [0, Span) into contiguous per-shard segments.
func (gb *GainBuckets) Span() int { return len(gb.head) }

// RangeCursor is a Cursor restricted to the bucket index range
// [lo, hi): it visits, in non-increasing gain order with the same LIFO
// tie-break, exactly the vertices whose gain index falls in the range —
// the subsequence of the full cursor walk owned by one segment. Several
// RangeCursors over disjoint segments may walk one structure
// concurrently; like Cursor, the structure must not be mutated during
// the walk.
type RangeCursor struct {
	gb   *GainBuckets
	i    int   // current bucket index
	lo   int   // lowest bucket index in the segment
	v    int32 // current vertex, or -1 when exhausted
	gain int64 // gain of the current bucket
}

// RangeCursor returns a cursor over bucket indices [lo, hi), positioned
// on the segment's maximum-gain vertex (invalid immediately if the
// segment is empty). Indices at or above Span, or above the structure's
// lazily maintained maximum, are skipped for free.
func (gb *GainBuckets) RangeCursor(lo, hi int) RangeCursor {
	c := RangeCursor{gb: gb, lo: lo, v: -1}
	if hi > len(gb.head) {
		hi = len(gb.head)
	}
	if m := gb.maxIdx + 1; hi > m {
		hi = m // buckets above maxIdx are empty by invariant
	}
	for c.i = hi - 1; c.i >= lo; c.i-- {
		if h := gb.head[c.i]; h >= 0 {
			c.v = h
			c.gain = int64(c.i) - gb.maxGain
			break
		}
	}
	return c
}

// Valid reports whether the cursor is on a vertex.
func (c *RangeCursor) Valid() bool { return c.v >= 0 }

// V returns the current vertex; the cursor must be valid.
func (c *RangeCursor) V() int32 { return c.v }

// Gain returns the current vertex's gain; the cursor must be valid.
func (c *RangeCursor) Gain() int64 { return c.gain }

// Next advances to the next vertex of the segment in non-increasing
// gain order.
func (c *RangeCursor) Next() {
	if next := unpackLo(c.gb.links[c.v]); next >= 0 {
		c.v = next
		return
	}
	for c.i--; c.i >= c.lo; c.i-- {
		if h := c.gb.head[c.i]; h >= 0 {
			c.v = h
			c.gain = int64(c.i) - c.gb.maxGain
			return
		}
	}
	c.v = -1
}
