package partition

import "repro/internal/par"

// This file parallelizes the per-move neighbor work of the refinement
// pass body — the dominant cost of a KL/FM pass at high degree — while
// reproducing the serial move sequence bit-exactly at any shard count.
//
// A committed move of vertex v costs two sweeps over N(v):
//
//	gains      — every neighbor's cached gain changes by ±2·w(v,u).
//	repositions — every unlocked neighbor is re-slotted in its side's
//	              gain-bucket structure at the new gain.
//
// Both sweeps shard deterministically:
//
//   - The gain sweep splits N(v) into contiguous disjoint ranges.
//     Adjacency rows are strictly sorted (validated at graph build), so
//     every neighbor appears exactly once and each gain[u] has a unique
//     writer; integer addition makes the result independent of shard
//     interleaving.
//   - The reposition sweep runs exactly two shards, one per side. Each
//     side's GainBuckets has a single writer, and shard s replays the
//     serial reposition order restricted to side s — which is precisely
//     the order that produced the serial LIFO bucket layout for that
//     side. The two structures share no state, so the resulting layout
//     (and every later selection decision) is byte-identical to serial.
//
// The kernel only pays off when N(v) is large enough to amortize the
// pool's fork-join barriers; the refiners gate it per move on the
// vertex degree (see kl/fm ParallelMinDegree).

// ShardedMover applies committed refinement moves with the neighbor
// gain updates and bucket repositions sharded over a par.Pool. It is
// embedded in the kl/fm Refiner workspaces; Bind rebinds it to a pass's
// bisection and buckets without allocating (the shard closures are
// constructed once and reused), so steady-state passes stay zero-alloc.
// Results are bit-identical to the serial Move/UpdateIfPresent sequence
// at any pool degree, including the nil (inline) pool.
type ShardedMover struct {
	pool    *par.Pool
	b       *Bisection
	bk      [2]*GainBuckets
	gshards int
	// Per-move state read by the pre-bound shard closures.
	cur    int32    // vertex whose neighbor gains the gain phase updates
	moved  [2]int32 // vertices whose neighbors the reposition phase re-slots
	nmoved int
	gainFn func(int)
	posFn  func(int)
}

// Bind attaches the mover to a pass's pool, bisection, and per-side
// buckets. Call Unbind when the pass ends so the mover does not retain
// them. Binding never allocates after the first call.
func (m *ShardedMover) Bind(pool *par.Pool, b *Bisection, bk0, bk1 *GainBuckets) {
	m.pool = pool
	m.b = b
	m.bk[0], m.bk[1] = bk0, bk1
	m.gshards = pool.Degree()
	if m.gainFn == nil {
		m.gainFn = m.gainShard
		m.posFn = m.posShard
	}
}

// Unbind drops the references Bind installed.
func (m *ShardedMover) Unbind() {
	m.pool = nil
	m.b = nil
	m.bk[0], m.bk[1] = nil, nil
}

// Move is the sharded equivalent of
//
//	b.Move(v)
//	for each neighbor u of v: buckets[side(u)].UpdateIfPresent(u, gain(u))
//
// with identical results. The caller removes v from its bucket first,
// exactly as in the serial pass.
func (m *ShardedMover) Move(v int32) {
	m.b.moveScalar(v)
	m.cur = v
	m.pool.Run(m.gshards, m.gainFn)
	m.moved[0] = v
	m.nmoved = 1
	m.pool.Run(2, m.posFn)
}

// MoveNoBuckets is the sharded equivalent of b.Move(v) alone — the
// rollback loop's form, after the pass has stopped maintaining buckets.
func (m *ShardedMover) MoveNoBuckets(v int32) {
	m.b.moveScalar(v)
	m.cur = v
	m.pool.Run(m.gshards, m.gainFn)
}

// Swap is the sharded equivalent of
//
//	b.Swap(a, v)
//	for each neighbor u of a: buckets[side(u)].UpdateIfPresent(u, gain(u))
//	for each neighbor u of v: buckets[side(u)].UpdateIfPresent(u, gain(u))
//
// with identical results (including the double reposition of shared
// neighbors, the second of which is a no-op). Like Bisection.Swap it
// panics if a and v share a side.
func (m *ShardedMover) Swap(a, v int32) {
	m.swapGains(a, v)
	m.moved[0], m.moved[1] = a, v
	m.nmoved = 2
	m.pool.Run(2, m.posFn)
}

// SwapNoBuckets is the sharded equivalent of b.Swap(a, v) alone — the
// KL rollback form.
func (m *ShardedMover) SwapNoBuckets(a, v int32) {
	m.swapGains(a, v)
}

// swapGains applies both moves of a swap: scalar part then sharded
// neighbor gain deltas for a, then the same for v — the exact order of
// the serial Move(a); Move(v) sequence, so a gain[v] already adjusted
// by a's sweep is negated before v's own sweep, as in serial.
func (m *ShardedMover) swapGains(a, v int32) {
	if m.b.side[a] == m.b.side[v] {
		panic("partition: Swap on same-side vertices")
	}
	m.b.moveScalar(a)
	m.cur = a
	m.pool.Run(m.gshards, m.gainFn)
	m.b.moveScalar(v)
	m.cur = v
	m.pool.Run(m.gshards, m.gainFn)
}

// gainShard applies the gain deltas for a contiguous range of cur's
// adjacency row. Rows are strictly sorted, hence duplicate-free, so the
// writes of distinct shards never touch the same gain slot.
func (m *ShardedMover) gainShard(s int) {
	b := m.b
	nbrs := b.g.Neighbors(m.cur)
	lo := s * len(nbrs) / m.gshards
	hi := (s + 1) * len(nbrs) / m.gshards
	side, gain := b.side, b.gain
	sv := side[m.cur]
	for _, e := range nbrs[lo:hi] {
		d := int64(e.W) << 1
		mm := int64(side[e.To]^sv) - 1
		gain[e.To] += (d ^ mm) - mm
	}
}

// posShard re-slots the moved vertices' unlocked neighbors on side s —
// the serial reposition order restricted to one side, against a bucket
// structure only this shard writes.
func (m *ShardedMover) posShard(s int) {
	b, bk := m.b, m.bk[s]
	side, gain := b.side, b.gain
	us := uint8(s)
	for _, v := range m.moved[:m.nmoved] {
		for _, e := range b.g.Neighbors(v) {
			if side[e.To] == us {
				bk.UpdateIfPresent(e.To, gain[e.To])
			}
		}
	}
}
