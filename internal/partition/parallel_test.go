package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/rng"
)

// cursorSeq flattens a bucket structure's full descending walk.
func cursorSeq(gb *GainBuckets, buf []int64) []int64 {
	buf = buf[:0]
	for c := gb.Cursor(); c.Valid(); c.Next() {
		buf = append(buf, int64(c.V())<<32|(c.Gain()&0xFFFFFFFF))
	}
	return buf
}

// TestShardedMoverMatchesSerial drives identical move/swap sequences
// through the serial Move/UpdateIfPresent path and through ShardedMover
// at several pool degrees (including the nil inline pool), comparing
// cut, side weights, gains, and the exact bucket layouts after every
// step.
func TestShardedMoverMatchesSerial(t *testing.T) {
	r := rng.NewFib(77)
	g, err := gen.GNP(400, 12.0/399, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, degree := range []int{1, 2, 3, 8} {
		pool := par.New(degree)
		ref := NewRandom(g, rng.NewFib(5))
		got := ref.Clone()

		newBuckets := func(b *Bisection) [2]*GainBuckets {
			var bk [2]*GainBuckets
			for s := 0; s < 2; s++ {
				gb, err := NewGainBuckets(g.N(), g.MaxWeightedDegree())
				if err != nil {
					t.Fatal(err)
				}
				bk[s] = gb
			}
			for v := int32(0); int(v) < g.N(); v++ {
				bk[b.Side(v)].Add(v, b.Gain(v))
			}
			return bk
		}
		refBk := newBuckets(ref)
		gotBk := newBuckets(got)

		var mover ShardedMover
		mover.Bind(pool, got, gotBk[0], gotBk[1])

		check := func(step string) {
			t.Helper()
			if ref.Cut() != got.Cut() {
				t.Fatalf("degree %d %s: cut %d != %d", degree, step, got.Cut(), ref.Cut())
			}
			for v := int32(0); int(v) < g.N(); v++ {
				if ref.Side(v) != got.Side(v) || ref.Gain(v) != got.Gain(v) {
					t.Fatalf("degree %d %s: vertex %d state diverged", degree, step, v)
				}
			}
			var a, b []int64
			for s := 0; s < 2; s++ {
				a, b = cursorSeq(refBk[s], a), cursorSeq(gotBk[s], b)
				if len(a) != len(b) {
					t.Fatalf("degree %d %s: side %d bucket sizes differ", degree, step, s)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("degree %d %s: side %d bucket layout diverged at %d", degree, step, s, i)
					}
				}
			}
		}

		// Single moves with bucket maintenance.
		mr := rng.NewFib(9)
		for i := 0; i < 60; i++ {
			v := int32(mr.Intn(g.N()))
			if !refBk[ref.Side(v)].Contains(v) {
				continue
			}
			refBk[ref.Side(v)].Remove(v)
			gotBk[got.Side(v)].Remove(v)
			ref.Move(v)
			for _, e := range g.Neighbors(v) {
				refBk[ref.Side(e.To)].UpdateIfPresent(e.To, ref.Gain(e.To))
			}
			mover.Move(v)
			check("move")
		}
		// Swaps with bucket maintenance.
		for i := 0; i < 40; i++ {
			a, bv := int32(mr.Intn(g.N())), int32(mr.Intn(g.N()))
			if ref.Side(a) == ref.Side(bv) {
				continue
			}
			if !refBk[ref.Side(a)].Contains(a) || !refBk[ref.Side(bv)].Contains(bv) {
				continue
			}
			refBk[ref.Side(a)].Remove(a)
			refBk[ref.Side(bv)].Remove(bv)
			gotBk[got.Side(a)].Remove(a)
			gotBk[got.Side(bv)].Remove(bv)
			ref.Swap(a, bv)
			for _, e := range g.Neighbors(a) {
				refBk[ref.Side(e.To)].UpdateIfPresent(e.To, ref.Gain(e.To))
			}
			for _, e := range g.Neighbors(bv) {
				refBk[ref.Side(e.To)].UpdateIfPresent(e.To, ref.Gain(e.To))
			}
			mover.Swap(a, bv)
			check("swap")
		}
		// Bucket-free rollback forms.
		for i := 0; i < 30; i++ {
			v := int32(mr.Intn(g.N()))
			ref.Move(v)
			mover.MoveNoBuckets(v)
			a, bv := int32(mr.Intn(g.N())), int32(mr.Intn(g.N()))
			if ref.Side(a) != ref.Side(bv) {
				ref.Swap(a, bv)
				mover.SwapNoBuckets(a, bv)
			}
		}
		check("rollback")
		if err := got.Validate(); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		mover.Unbind()
		pool.Close()
	}
}

// TestShardedMoverSteadyAllocs pins the zero-allocation contract of the
// sharded move kernel once bound.
func TestShardedMoverSteadyAllocs(t *testing.T) {
	r := rng.NewFib(13)
	g, err := gen.GNP(500, 16.0/499, r)
	if err != nil {
		t.Fatal(err)
	}
	b := NewRandom(g, rng.NewFib(3))
	var bk [2]*GainBuckets
	for s := 0; s < 2; s++ {
		if bk[s], err = NewGainBuckets(g.N(), g.MaxWeightedDegree()); err != nil {
			t.Fatal(err)
		}
	}
	for v := int32(0); int(v) < g.N(); v++ {
		bk[b.Side(v)].Add(v, b.Gain(v))
	}
	pool := par.New(4)
	defer pool.Close()
	var mover ShardedMover
	mover.Bind(pool, b, bk[0], bk[1])
	mover.Move(0) // warm up: first Bind constructed the closures already
	allocs := testing.AllocsPerRun(50, func() {
		mover.Move(0)
		mover.Move(0)
	})
	if allocs != 0 {
		t.Fatalf("sharded move allocated %.1f times per run, want 0", allocs)
	}
}

// TestRangeCursorCoversCursor pins the segment decomposition the
// parallel move proposal relies on: walking disjoint segments from the
// highest down and concatenating the visits reproduces the full
// cursor's descending LIFO sequence, for any segment count.
func TestRangeCursorCoversCursor(t *testing.T) {
	r := rng.NewFib(31)
	gb, err := NewGainBuckets(300, 40)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 300; v++ {
		gb.Add(v, int64(r.Intn(81)-40))
	}
	// Churn to exercise repositions and maxIdx laziness.
	for i := 0; i < 500; i++ {
		gb.Update(int32(r.Intn(300)), int64(r.Intn(81)-40))
	}
	want := cursorSeq(gb, nil)
	for _, segs := range []int{1, 2, 3, 7, 16} {
		var got []int64
		span := gb.Span()
		for s := segs - 1; s >= 0; s-- {
			lo, hi := s*span/segs, (s+1)*span/segs
			for c := gb.RangeCursor(lo, hi); c.Valid(); c.Next() {
				got = append(got, int64(c.V())<<32|(c.Gain()&0xFFFFFFFF))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("segs=%d: %d visits, want %d", segs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segs=%d: visit %d diverges", segs, i)
			}
		}
	}
}
