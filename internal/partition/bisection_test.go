package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewComputesCut(t *testing.T) {
	// Path 0-1-2-3 with sides 0,0,1,1: cut = 1 (edge 1-2).
	g := mustGraph(gen.Path(4))
	b, err := New(g, []uint8{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 1 {
		t.Fatalf("cut = %d, want 1", b.Cut())
	}
	if b.SideWeight(0) != 2 || b.SideWeight(1) != 2 {
		t.Fatalf("side weights %d/%d", b.SideWeight(0), b.SideWeight(1))
	}
	// Alternating sides: every edge cut.
	b2, err := New(g, []uint8{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Cut() != 3 {
		t.Fatalf("alternating cut = %d, want 3", b2.Cut())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g := mustGraph(gen.Path(4))
	if _, err := New(g, []uint8{0, 0, 1}); err == nil {
		t.Fatal("short side slice accepted")
	}
	if _, err := New(g, []uint8{0, 0, 1, 2}); err == nil {
		t.Fatal("side value 2 accepted")
	}
}

func TestGainDefinition(t *testing.T) {
	// Star: center 0 connected to 1,2,3. Sides: 0 on side 0, rest side 1.
	b4 := graph.NewBuilder(4)
	b4.AddEdge(0, 1)
	b4.AddEdge(0, 2)
	b4.AddEdge(0, 3)
	g := b4.MustBuild()
	b, err := New(g, []uint8{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// All three edges are external to vertex 0: gain = 3.
	if b.Gain(0) != 3 {
		t.Fatalf("gain(0) = %d, want 3", b.Gain(0))
	}
	// Leaf 1 has its only edge external: gain = 1.
	if b.Gain(1) != 1 {
		t.Fatalf("gain(1) = %d, want 1", b.Gain(1))
	}
	b.Move(0)
	if b.Cut() != 0 {
		t.Fatalf("cut after move = %d, want 0", b.Cut())
	}
	if b.Gain(0) != -3 {
		t.Fatalf("gain(0) after move = %d, want -3", b.Gain(0))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapGainMatchesPaperFormula(t *testing.T) {
	// Two adjacent vertices on opposite sides: swapping them leaves the
	// edge in the cut, so the swap gain must subtract 2w(a,b).
	g := mustGraph(gen.Path(2))
	b, err := New(g, []uint8{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// gain(0) = gain(1) = 1, w(0,1) = 1, so swap gain = 1+1-2 = 0.
	if got := b.SwapGain(0, 1); got != 0 {
		t.Fatalf("swap gain = %d, want 0", got)
	}
	before := b.Cut()
	b.Swap(0, 1)
	if b.Cut() != before {
		t.Fatalf("cut changed by swap with zero gain: %d -> %d", before, b.Cut())
	}
}

func TestSwapPanicsOnSameSide(t *testing.T) {
	g := mustGraph(gen.Path(3))
	b, _ := New(g, []uint8{0, 0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Swap on same side did not panic")
		}
	}()
	b.Swap(0, 1)
}

func TestMoveUpdatesAreConsistent(t *testing.T) {
	// Property: after any random sequence of moves, all incremental state
	// matches a from-scratch recomputation.
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + 2*r.Intn(20)
		g, err := gen.GNP(n, 0.2, r)
		if err != nil {
			return false
		}
		b := NewRandom(g, r)
		for k := 0; k < 50; k++ {
			b.Move(int32(r.Intn(n)))
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveCutDeltaEqualsGain(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 4 + r.Intn(30)
		g, err := gen.GNP(n, 0.3, r)
		if err != nil {
			return false
		}
		b := NewRandom(g, r)
		for k := 0; k < 25; k++ {
			v := int32(r.Intn(n))
			want := b.Cut() - b.Gain(v)
			b.Move(v)
			if b.Cut() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandomBalanced(t *testing.T) {
	r := rng.NewFib(17)
	for _, n := range []int{2, 10, 100, 1000} {
		g := mustGraph(gen.Cycle(max(n, 3)))
		b := NewRandom(g, r)
		if b.Imbalance() > 1 {
			t.Fatalf("n=%d: imbalance %d", n, b.Imbalance())
		}
		if g.N()%2 == 0 && b.Imbalance() != 0 {
			t.Fatalf("n=%d: even graph imbalance %d", n, b.Imbalance())
		}
	}
}

func TestNewRandomBalancedWeighted(t *testing.T) {
	// Weighted vertices: greedy assignment should keep imbalance at most
	// the max vertex weight.
	bld := graph.NewBuilder(6)
	bld.AddEdge(0, 1)
	for v := int32(0); v < 6; v++ {
		bld.SetVertexWeight(v, 1+v%3)
	}
	g := bld.MustBuild()
	r := rng.NewFib(3)
	for trial := 0; trial < 20; trial++ {
		b := NewRandom(g, r)
		if b.Imbalance() > 3 {
			t.Fatalf("weighted imbalance %d exceeds max vertex weight", b.Imbalance())
		}
	}
}

func TestNewRandomIsRandom(t *testing.T) {
	g := mustGraph(gen.Cycle(50))
	r := rng.NewFib(5)
	a := NewRandom(g, r)
	b := NewRandom(g, r)
	diff := 0
	for v := int32(0); v < 50; v++ {
		if a.Side(v) != b.Side(v) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two random bisections are identical")
	}
}

func TestCloneAndAssign(t *testing.T) {
	r := rng.NewFib(9)
	g := mustGraph(gen.Grid(6, 6))
	b := NewRandom(g, r)
	c := b.Clone()
	c.Move(0)
	if b.Side(0) == c.Side(0) {
		t.Fatal("Clone shares state")
	}
	b.Assign(c)
	if b.Cut() != c.Cut() || b.Side(0) != c.Side(0) {
		t.Fatal("Assign did not copy state")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignPanicsAcrossGraphs(t *testing.T) {
	r := rng.NewFib(2)
	g1 := mustGraph(gen.Path(4))
	g2 := mustGraph(gen.Path(4))
	a := NewRandom(g1, r)
	b := NewRandom(g2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("Assign across graphs did not panic")
		}
	}()
	a.Assign(b)
}

func TestCutOf(t *testing.T) {
	g := mustGraph(gen.Cycle(6))
	// Contiguous halves of a cycle cut exactly 2 edges.
	if got := CutOf(g, []uint8{0, 0, 0, 1, 1, 1}); got != 2 {
		t.Fatalf("cycle contiguous cut = %d, want 2", got)
	}
	if got := CutOf(g, []uint8{0, 1, 0, 1, 0, 1}); got != 6 {
		t.Fatalf("cycle alternating cut = %d, want 6", got)
	}
}

func TestCountSides(t *testing.T) {
	g := mustGraph(gen.Path(5))
	b, _ := New(g, []uint8{0, 0, 0, 1, 1})
	n0, n1 := b.CountSides()
	if n0 != 3 || n1 != 2 {
		t.Fatalf("sides %d/%d", n0, n1)
	}
}

func TestStringer(t *testing.T) {
	g := mustGraph(gen.Path(4))
	b, _ := New(g, []uint8{0, 0, 1, 1})
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestWeightedCut(t *testing.T) {
	bld := graph.NewBuilder(4)
	bld.AddWeightedEdge(0, 2, 5)
	bld.AddWeightedEdge(1, 3, 7)
	bld.AddWeightedEdge(0, 1, 100)
	g := bld.MustBuild()
	b, err := New(g, []uint8{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 12 {
		t.Fatalf("weighted cut = %d, want 12", b.Cut())
	}
	if b.Gain(0) != 5-100 {
		t.Fatalf("gain(0) = %d, want -95", b.Gain(0))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkMove(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(5000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	bis := NewRandom(g, r)
	order := r.Perm(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bis.Move(int32(order[i%len(order)]))
	}
}

func BenchmarkNewRandom(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(5000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRandom(g, r)
	}
}

func TestSetSidesMatchesNew(t *testing.T) {
	r := rng.NewFib(23)
	g, err := gen.GNP(60, 0.15, r)
	if err != nil {
		t.Fatal(err)
	}
	b := NewRandom(g, r)
	// Scramble b with random moves, then reset it to an unrelated
	// assignment via SetSides; every cached field must match a freshly
	// built bisection of that assignment.
	for i := 0; i < 40; i++ {
		b.Move(int32(r.Intn(g.N())))
	}
	want := NewRandom(g, r)
	if err := b.SetSides(want.SidesRef()); err != nil {
		t.Fatal(err)
	}
	if b.Cut() != want.Cut() {
		t.Fatalf("SetSides cut %d, want %d", b.Cut(), want.Cut())
	}
	if b.SideWeight(0) != want.SideWeight(0) || b.SideWeight(1) != want.SideWeight(1) {
		t.Fatalf("SetSides side weights %d/%d, want %d/%d",
			b.SideWeight(0), b.SideWeight(1), want.SideWeight(0), want.SideWeight(1))
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if b.Side(v) != want.Side(v) || b.Gain(v) != want.Gain(v) {
			t.Fatalf("SetSides vertex %d: side %d gain %d, want side %d gain %d",
				v, b.Side(v), b.Gain(v), want.Side(v), want.Gain(v))
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetSidesRejectsBadInput(t *testing.T) {
	g := mustGraph(gen.Path(4))
	b := NewRandom(g, rng.NewFib(1))
	if err := b.SetSides([]uint8{0, 1}); err == nil {
		t.Fatal("short slice accepted")
	}
	if err := b.SetSides([]uint8{0, 1, 2, 0}); err == nil {
		t.Fatal("side 2 accepted")
	}
}

func TestGainsRefIsLive(t *testing.T) {
	g := mustGraph(gen.Path(4))
	b := NewRandom(g, rng.NewFib(3))
	gains := b.GainsRef()
	for v := int32(0); int(v) < g.N(); v++ {
		if gains[v] != b.Gain(v) {
			t.Fatalf("GainsRef[%d] = %d, want %d", v, gains[v], b.Gain(v))
		}
	}
	b.Move(0)
	for v := int32(0); int(v) < g.N(); v++ {
		if gains[v] != b.Gain(v) {
			t.Fatalf("after Move, GainsRef[%d] = %d, want %d", v, gains[v], b.Gain(v))
		}
	}
}
