// Package partition maintains bisection state: a two-way assignment of
// vertices with incrementally-updated cut weight, per-side vertex weight,
// and per-vertex move gains, plus the bucket gain structure used by the
// move-based refinement algorithms.
//
// The gain of vertex v is defined as (external weight) − (internal
// weight): the amount by which the weighted cut decreases if v moves to
// the other side. The swap gain of an opposite-side pair (a, b) is
// gain(a) + gain(b) − 2·w(a,b), matching the paper's
// g_ab = g_a + g_b − 2δ(a,b).
package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Bisection is a mutable two-way partition of a graph's vertices with
// incrementally maintained cut, side weights, and vertex gains. Moves and
// swaps cost O(deg).
type Bisection struct {
	g     *graph.Graph
	side  []uint8
	gain  []int64
	cut   int64
	sideW [2]int64
}

// New creates a Bisection from an explicit side assignment (entries must
// be 0 or 1). The slice is copied.
func New(g *graph.Graph, side []uint8) (*Bisection, error) {
	if len(side) != g.N() {
		return nil, fmt.Errorf("partition: side slice has %d entries for %d vertices", len(side), g.N())
	}
	b := &Bisection{g: g, side: append([]uint8(nil), side...)}
	b.gain = make([]int64, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		if b.side[v] > 1 {
			return nil, fmt.Errorf("partition: vertex %d assigned to side %d", v, b.side[v])
		}
		b.sideW[b.side[v]] += int64(g.VertexWeight(v))
	}
	b.recomputeGainsAndCut()
	return b, nil
}

// NewRandom creates a random bisection balanced by vertex weight: vertices
// are visited in uniformly random order and each is assigned to the
// currently lighter side. For unit weights on an even vertex count this
// yields an exactly balanced random bisection, as the paper's random
// initial bisections require.
func NewRandom(g *graph.Graph, r *rng.Rand) *Bisection {
	side := make([]uint8, g.N())
	perm := r.Perm(g.N())
	var w [2]int64
	for _, v := range perm {
		s := uint8(0)
		if w[1] < w[0] {
			s = 1
		} else if w[1] == w[0] && r.Bool() {
			s = 1
		}
		side[v] = s
		w[s] += int64(g.VertexWeight(int32(v)))
	}
	b, err := New(g, side)
	if err != nil {
		panic("partition: NewRandom produced invalid assignment: " + err.Error())
	}
	return b
}

// recomputeGainsAndCut rebuilds cut and all gains from scratch in O(m).
func (b *Bisection) recomputeGainsAndCut() {
	b.cut = 0
	for v := int32(0); int(v) < b.g.N(); v++ {
		var ext, intl int64
		for _, e := range b.g.Neighbors(v) {
			if b.side[e.To] != b.side[v] {
				ext += int64(e.W)
			} else {
				intl += int64(e.W)
			}
		}
		b.gain[v] = ext - intl
		b.cut += ext
	}
	b.cut /= 2
}

// Graph returns the underlying graph.
func (b *Bisection) Graph() *graph.Graph { return b.g }

// N returns the number of vertices.
func (b *Bisection) N() int { return b.g.N() }

// Side returns the side (0 or 1) of v.
func (b *Bisection) Side(v int32) uint8 { return b.side[v] }

// Sides returns a copy of the side assignment.
func (b *Bisection) Sides() []uint8 { return append([]uint8(nil), b.side...) }

// SidesRef returns the live side assignment without copying. The slice
// is owned by the bisection: it must not be mutated, and its contents
// change with every Move/Swap. Hot read-only consumers (projection,
// cut evaluation, snapshotting into caller-owned buffers) use this to
// avoid a per-call allocation; everyone else should prefer Sides.
func (b *Bisection) SidesRef() []uint8 { return b.side }

// GainsRef returns the live per-vertex gain array without copying. Like
// SidesRef, the slice is owned by the bisection and updated in place by
// every Move/Swap; callers must treat it as read-only. The annealing
// inner loop reads a gain per trial, so the accessor-call and bounds
// overhead of Gain(v) is worth eliding there.
func (b *Bisection) GainsRef() []int64 { return b.gain }

// SetSides overwrites the side assignment from an explicit slice
// (entries must be 0 or 1) and rebuilds the incremental state in O(m)
// without allocating. It is the undo-log counterpart to Assign: a
// caller that tracked only the side array of a past state (e.g. the
// best state seen during annealing, maintained by replaying a move log)
// can rematerialize the full bisection — gains, cut, side weights — at
// the end of a run instead of cloning on every improvement.
func (b *Bisection) SetSides(side []uint8) error {
	if len(side) != b.g.N() {
		return fmt.Errorf("partition: SetSides with %d entries for %d vertices", len(side), b.g.N())
	}
	for v, s := range side {
		if s > 1 {
			return fmt.Errorf("partition: vertex %d assigned to side %d", v, s)
		}
	}
	copy(b.side, side)
	b.sideW = [2]int64{}
	for v := int32(0); int(v) < b.g.N(); v++ {
		b.sideW[b.side[v]] += int64(b.g.VertexWeight(v))
	}
	b.recomputeGainsAndCut()
	return nil
}

// Reset re-initializes b for graph g with the given side assignment
// (entries must be 0 or 1; the slice is copied), rebuilding all
// incremental state in O(m). Unlike New it works on an existing value —
// including the zero value — and grows the internal arrays only when g
// is larger than any graph this bisection has held, so a warm bisection
// resets without allocating. Unlike SetSides it accepts a different
// graph, or the same *graph.Graph whose contents were rebuilt in place
// (the multilevel workspace re-derives its level graphs every run), so
// it never trusts previously cached sizes.
func (b *Bisection) Reset(g *graph.Graph, side []uint8) error {
	n := g.N()
	if len(side) != n {
		return fmt.Errorf("partition: Reset with %d entries for %d vertices", len(side), n)
	}
	for v, s := range side {
		if s > 1 {
			return fmt.Errorf("partition: vertex %d assigned to side %d", v, s)
		}
	}
	b.g = g
	if cap(b.side) < n {
		b.side = make([]uint8, n)
	}
	b.side = b.side[:n]
	copy(b.side, side)
	if cap(b.gain) < n {
		b.gain = make([]int64, n)
	}
	b.gain = b.gain[:n]
	b.sideW = [2]int64{}
	for v := int32(0); int(v) < n; v++ {
		b.sideW[b.side[v]] += int64(g.VertexWeight(v))
	}
	b.recomputeGainsAndCut()
	return nil
}

// Cut returns the weighted cut.
func (b *Bisection) Cut() int64 { return b.cut }

// SideWeight returns the total vertex weight on side s.
func (b *Bisection) SideWeight(s uint8) int64 { return b.sideW[s] }

// Imbalance returns |w(side 0) − w(side 1)|.
func (b *Bisection) Imbalance() int64 {
	d := b.sideW[0] - b.sideW[1]
	if d < 0 {
		d = -d
	}
	return d
}

// CountSides returns the number of vertices on each side.
func (b *Bisection) CountSides() (n0, n1 int) {
	for _, s := range b.side {
		if s == 0 {
			n0++
		} else {
			n1++
		}
	}
	return n0, n1
}

// Gain returns the cut decrease achieved by moving v across.
func (b *Bisection) Gain(v int32) int64 { return b.gain[v] }

// SwapGain returns the cut decrease achieved by exchanging a and b, which
// must be on opposite sides: gain(a) + gain(b) − 2·w(a,b).
func (b *Bisection) SwapGain(a, v int32) int64 {
	return b.gain[a] + b.gain[v] - 2*int64(b.g.EdgeWeight(a, v))
}

// Move transfers v to the other side, updating cut, side weights, and the
// gains of v and its neighbors in O(deg(v)).
func (b *Bisection) Move(v int32) {
	b.moveScalar(v)
	// Each neighbor's gain changes by +2w if it now sits across from v
	// (the edge joined the cut) and −2w if alongside (the edge left the
	// cut, so moving the neighbor would re-create it). Neighbor sides are
	// close to coin flips during refinement, so the sign is applied with
	// two's-complement arithmetic instead of an unpredictable branch:
	// m = 0 selects +d, m = −1 selects (d ^ −1) + 1 = −d.
	side, gain := b.side, b.gain
	sv := b.side[v]
	for _, e := range b.g.Neighbors(v) {
		d := int64(e.W) << 1
		m := int64(side[e.To]^sv) - 1
		gain[e.To] += (d ^ m) - m
	}
}

// moveScalar is the O(1) part of Move: flip v's side, negate its gain,
// and update cut and side weights. The neighbor gain updates are left to
// the caller — Move applies them serially, ShardedMover in parallel.
func (b *Bisection) moveScalar(v int32) {
	old := b.side[v]
	b.cut -= b.gain[v]
	b.gain[v] = -b.gain[v]
	b.side[v] = 1 - old
	w := int64(b.g.VertexWeight(v))
	b.sideW[old] -= w
	b.sideW[1-old] += w
}

// Swap exchanges opposite-side vertices a and v (a convenience for the
// KL pairwise interchange). It panics if they share a side.
func (b *Bisection) Swap(a, v int32) {
	if b.side[a] == b.side[v] {
		panic("partition: Swap on same-side vertices")
	}
	b.Move(a)
	b.Move(v)
}

// Clone returns an independent copy sharing the underlying (immutable)
// graph.
func (b *Bisection) Clone() *Bisection {
	return &Bisection{
		g:     b.g,
		side:  append([]uint8(nil), b.side...),
		gain:  append([]int64(nil), b.gain...),
		cut:   b.cut,
		sideW: b.sideW,
	}
}

// Assign overwrites this bisection's state from another (same graph).
func (b *Bisection) Assign(from *Bisection) {
	if b.g != from.g {
		panic("partition: Assign across different graphs")
	}
	copy(b.side, from.side)
	copy(b.gain, from.gain)
	b.cut = from.cut
	b.sideW = from.sideW
}

// Validate recomputes all incremental state from scratch and returns an
// error if any cached value has drifted. Used by tests and the harness's
// paranoid mode.
func (b *Bisection) Validate() error {
	fresh, err := New(b.g, b.side)
	if err != nil {
		return err
	}
	if fresh.cut != b.cut {
		return fmt.Errorf("partition: cached cut %d != recomputed %d", b.cut, fresh.cut)
	}
	if fresh.sideW != b.sideW {
		return fmt.Errorf("partition: cached side weights %v != recomputed %v", b.sideW, fresh.sideW)
	}
	for v := range b.gain {
		if b.gain[v] != fresh.gain[v] {
			return fmt.Errorf("partition: cached gain[%d] = %d != recomputed %d", v, b.gain[v], fresh.gain[v])
		}
	}
	return nil
}

// CutOf computes the weighted cut of an explicit side assignment without
// building a Bisection.
func CutOf(g *graph.Graph, side []uint8) int64 {
	var cut int64
	g.Edges(func(u, v, w int32) {
		if side[u] != side[v] {
			cut += int64(w)
		}
	})
	return cut
}

// String returns a short summary.
func (b *Bisection) String() string {
	n0, n1 := b.CountSides()
	return fmt.Sprintf("bisection{cut=%d sides=%d/%d weights=%d/%d}", b.cut, n0, n1, b.sideW[0], b.sideW[1])
}
