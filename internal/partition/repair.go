package partition

// RepairBalance restores weight balance to a bisection by greedily moving
// the highest-gain movable vertex from the heavy side until the imbalance
// is at most maxImbalance (or no single move can reduce it further). It
// returns the final imbalance.
//
// Moving weight w from the heavy side changes the imbalance from d to
// |d − 2w|, a strict decrease iff w < d; among strict decreases the move
// with the best cut gain is taken, breaking ties toward larger weight
// (faster convergence).
func RepairBalance(b *Bisection, maxImbalance int64) int64 {
	for {
		d := b.SideWeight(0) - b.SideWeight(1)
		abs := d
		if abs < 0 {
			abs = -abs
		}
		if abs <= maxImbalance {
			return abs
		}
		heavy := uint8(0)
		if d < 0 {
			heavy = 1
		}
		best := int32(-1)
		var bestGain int64
		var bestW int64
		for v := int32(0); int(v) < b.N(); v++ {
			if b.Side(v) != heavy {
				continue
			}
			w := int64(b.Graph().VertexWeight(v))
			if w >= abs {
				continue // would overshoot into a worse or equal imbalance
			}
			g := b.Gain(v)
			if best < 0 || g > bestGain || (g == bestGain && w > bestW) {
				best, bestGain, bestW = v, g, w
			}
		}
		if best < 0 {
			return abs // no strictly improving move exists
		}
		b.Move(best)
	}
}

// MinAchievableImbalance returns the smallest imbalance any bisection of
// a graph with the given total vertex weight can achieve under unit (or
// unit-and-two, as contraction produces) weights: the parity of the
// total.
func MinAchievableImbalance(total int64) int64 { return total % 2 }
