package partition

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestGainBucketsBasics(t *testing.T) {
	gb, err := NewGainBuckets(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gb.Len() != 0 {
		t.Fatal("new structure not empty")
	}
	if _, _, ok := gb.Max(); ok {
		t.Fatal("Max on empty returned ok")
	}
	gb.Add(0, 3)
	gb.Add(1, -2)
	gb.Add(2, 10)
	gb.Add(3, 10)
	if gb.Len() != 4 {
		t.Fatalf("len = %d", gb.Len())
	}
	v, g, ok := gb.Max()
	if !ok || g != 10 {
		t.Fatalf("max = (%d,%d,%v)", v, g, ok)
	}
	// LIFO tie-break: vertex 3 was added after 2.
	if v != 3 {
		t.Fatalf("max tie-break = %d, want 3 (LIFO)", v)
	}
	if !gb.Contains(1) || gb.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if gb.GainOf(1) != -2 {
		t.Fatalf("GainOf(1) = %d", gb.GainOf(1))
	}
}

func TestGainBucketsPopOrder(t *testing.T) {
	gb, err := NewGainBuckets(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	gains := []int64{4, -6, 0, 6, -1, 2}
	for v, g := range gains {
		gb.Add(int32(v), g)
	}
	var got []int64
	for {
		_, g, ok := gb.PopMax()
		if !ok {
			break
		}
		got = append(got, g)
	}
	want := append([]int64(nil), gains...)
	sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
	if len(got) != len(want) {
		t.Fatalf("popped %d items", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestGainBucketsUpdate(t *testing.T) {
	gb, _ := NewGainBuckets(3, 5)
	gb.Add(0, 1)
	gb.Add(1, 2)
	gb.Update(0, 5)
	v, g, ok := gb.Max()
	if !ok || v != 0 || g != 5 {
		t.Fatalf("after update max = (%d,%d)", v, g)
	}
	gb.Update(0, -5)
	v, g, _ = gb.Max()
	if v != 1 || g != 2 {
		t.Fatalf("after downdate max = (%d,%d)", v, g)
	}
	// No-op update must not disturb structure.
	gb.Update(1, 2)
	if gb.Len() != 2 {
		t.Fatal("no-op update changed size")
	}
}

func TestGainBucketsRemoveMiddle(t *testing.T) {
	gb, _ := NewGainBuckets(4, 3)
	// All in same bucket; list order (LIFO) is 3,2,1,0.
	for v := int32(0); v < 4; v++ {
		gb.Add(v, 1)
	}
	gb.Remove(2) // middle of list
	gb.Remove(3) // head
	seen := map[int32]bool{}
	gb.Descending(func(v int32, g int64) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 2 || !seen[0] || !seen[1] {
		t.Fatalf("after removals saw %v", seen)
	}
}

func TestGainBucketsDescending(t *testing.T) {
	gb, _ := NewGainBuckets(5, 8)
	gains := []int64{5, -8, 3, 3, 0}
	for v, g := range gains {
		gb.Add(int32(v), g)
	}
	var walked []int64
	gb.Descending(func(v int32, g int64) bool {
		if g != gains[v] {
			t.Fatalf("vertex %d reported gain %d, want %d", v, g, gains[v])
		}
		walked = append(walked, g)
		return true
	})
	for i := 1; i < len(walked); i++ {
		if walked[i] > walked[i-1] {
			t.Fatalf("Descending not monotone: %v", walked)
		}
	}
	// Early stop.
	count := 0
	gb.Descending(func(int32, int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestGainBucketsPanics(t *testing.T) {
	gb, _ := NewGainBuckets(2, 4)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	gb.Add(0, 1)
	mustPanic("double add", func() { gb.Add(0, 2) })
	mustPanic("remove absent", func() { gb.Remove(1) })
	mustPanic("update absent", func() { gb.Update(1, 0) })
	mustPanic("gain out of range", func() { gb.Add(1, 5) })
}

func TestGainBucketsErrors(t *testing.T) {
	if _, err := NewGainBuckets(2, -1); err == nil {
		t.Fatal("negative bound accepted")
	}
	if _, err := NewGainBuckets(2, maxBucketSpan+1); err == nil {
		t.Fatal("huge bound accepted")
	}
}

func TestGainBucketsStress(t *testing.T) {
	// Random adds/removes/updates against a reference map.
	r := rng.NewFib(33)
	const n = 200
	const bound = 50
	gb, err := NewGainBuckets(n, bound)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int32]int64{}
	for step := 0; step < 20000; step++ {
		v := int32(r.Intn(n))
		switch r.Intn(3) {
		case 0:
			if _, in := ref[v]; !in {
				g := int64(r.Intn(2*bound+1) - bound)
				gb.Add(v, g)
				ref[v] = g
			}
		case 1:
			if _, in := ref[v]; in {
				gb.Remove(v)
				delete(ref, v)
			}
		case 2:
			if _, in := ref[v]; in {
				g := int64(r.Intn(2*bound+1) - bound)
				gb.Update(v, g)
				ref[v] = g
			}
		}
		if gb.Len() != len(ref) {
			t.Fatalf("step %d: size %d != ref %d", step, gb.Len(), len(ref))
		}
	}
	// Final check: max agrees with reference.
	if len(ref) > 0 {
		var want int64 = -bound - 1
		for _, g := range ref {
			if g > want {
				want = g
			}
		}
		_, g, ok := gb.Max()
		if !ok || g != want {
			t.Fatalf("final max %d, want %d", g, want)
		}
	}
}

func BenchmarkGainBucketsChurn(b *testing.B) {
	const n = 5000
	gb, err := NewGainBuckets(n, 64)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewFib(1)
	for v := int32(0); v < n; v++ {
		gb.Add(v, int64(r.Intn(129)-64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int32(r.Intn(n))
		gb.Update(v, int64(r.Intn(129)-64))
	}
}
