package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestRepairBalanceFromExtremes(t *testing.T) {
	g := mustGraph(gen.Grid(6, 6))
	b, err := New(g, make([]uint8, 36))
	if err != nil {
		t.Fatal(err)
	}
	if got := RepairBalance(b, 0); got != 0 {
		t.Fatalf("imbalance %d after repair", got)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Repairing an already-balanced bisection is a no-op.
	cut := b.Cut()
	RepairBalance(b, 0)
	if b.Cut() != cut {
		t.Fatal("no-op repair changed the cut")
	}
}

func TestRepairBalanceRespectsTolerance(t *testing.T) {
	g := mustGraph(gen.Cycle(12))
	side := make([]uint8, 12)
	for i := 0; i < 9; i++ {
		side[i] = 1 // 3 vs 9: imbalance 6
	}
	b, err := New(g, side)
	if err != nil {
		t.Fatal(err)
	}
	got := RepairBalance(b, 4)
	if got > 4 {
		t.Fatalf("imbalance %d exceeds tolerance 4", got)
	}
}

func TestRepairBalanceStuckOnHeavyVertices(t *testing.T) {
	// Heavy side holds only weight-5 vertices; imbalance 4 < 5 cannot be
	// strictly reduced by any single move, so repair must stop (not spin).
	bld := graph.NewBuilder(3)
	bld.AddEdge(0, 1)
	bld.SetVertexWeight(0, 5)
	bld.SetVertexWeight(1, 5)
	bld.SetVertexWeight(2, 6)
	g := bld.MustBuild()
	b, err := New(g, []uint8{0, 0, 1}) // weights 10 vs 6
	if err != nil {
		t.Fatal(err)
	}
	got := RepairBalance(b, 0)
	if got != 4 {
		t.Fatalf("expected repair to stop at imbalance 4, got %d", got)
	}
}

func TestRepairBalancePropertyNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 4 + r.Intn(30)
		g, err := gen.GNP(n, 0.2, r)
		if err != nil {
			return false
		}
		side := make([]uint8, n)
		for i := range side {
			if r.Bool() {
				side[i] = 1
			}
		}
		b, err := New(g, side)
		if err != nil {
			return false
		}
		before := b.Imbalance()
		after := RepairBalance(b, 0)
		return after <= before && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinAchievableImbalanceParity(t *testing.T) {
	if MinAchievableImbalance(8) != 0 || MinAchievableImbalance(9) != 1 {
		t.Fatal("parity rule broken")
	}
}

func TestBisectionAccessors(t *testing.T) {
	g := mustGraph(gen.Path(4))
	b, err := New(g, []uint8{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
	if b.N() != 4 {
		t.Fatalf("N = %d", b.N())
	}
	sides := b.Sides()
	sides[0] = 1
	if b.Side(0) != 0 {
		t.Fatal("Sides returned aliased storage")
	}
}
