package par

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversAllShards checks every shard index runs exactly once for
// a spread of degrees and shard counts, including shards < degree and
// shards ≫ degree.
func TestRunCoversAllShards(t *testing.T) {
	for _, degree := range []int{1, 2, 3, 8} {
		p := New(degree)
		for _, shards := range []int{0, 1, 2, 7, 64} {
			hits := make([]atomic.Int64, shards+1)
			p.Run(shards, func(s int) { hits[s].Add(1) })
			for s := 0; s < shards; s++ {
				if got := hits[s].Load(); got != 1 {
					t.Fatalf("degree %d shards %d: shard %d ran %d times", degree, shards, s, got)
				}
			}
		}
		p.Close()
	}
}

// TestNilPoolRunsInline pins the nil-pool contract: degree 1, inline
// execution in shard order.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Degree() != 1 {
		t.Fatalf("nil pool degree = %d, want 1", p.Degree())
	}
	var order []int
	p.Run(4, func(s int) { order = append(order, s) })
	for i, s := range order {
		if s != i {
			t.Fatalf("inline order %v not sequential", order)
		}
	}
	p.Close() // must not panic
	if New(1) != nil || New(0) != nil {
		t.Fatal("New(<=1) must return the nil inline pool")
	}
}

// TestReuseAcrossRuns runs many joins on one pool; the sums must all be
// exact (a lost or duplicated shard would skew them).
func TestReuseAcrossRuns(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum atomic.Int64
	for round := 0; round < 200; round++ {
		sum.Store(0)
		p.Run(17, func(s int) { sum.Add(int64(s)) })
		if got := sum.Load(); got != 17*16/2 {
			t.Fatalf("round %d: sum = %d, want %d", round, got, 17*16/2)
		}
	}
}

// TestShardPanicSurfacesAndPoolSurvives checks the panic-isolation
// contract: Run panics with *PanicError after the join, and the pool
// remains usable for subsequent runs.
func TestShardPanicSurfacesAndPoolSurvives(t *testing.T) {
	p := New(3)
	defer p.Close()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(8, func(s int) {
			if s == 5 {
				panic("boom")
			}
		})
	}()
	pe, ok := recovered.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", recovered, recovered)
	}
	if pe.Shard != 5 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Shard:%d Value:%v stack %d bytes}", pe.Shard, pe.Value, len(pe.Stack))
	}
	if pe.Error() == "" {
		t.Fatal("empty Error()")
	}
	// The pool must still join cleanly after a poisoned run.
	var sum atomic.Int64
	p.Run(10, func(s int) { sum.Add(1) })
	if sum.Load() != 10 {
		t.Fatalf("post-panic run covered %d/10 shards", sum.Load())
	}
}

// TestRunSteadyStateZeroAlloc pins the pool's own zero-alloc contract:
// a warm Run with a pre-bound closure must not touch the heap.
func TestRunSteadyStateZeroAlloc(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sink [64]atomic.Int64
	fn := func(s int) { sink[s].Add(1) } // bound once, outside the measured runs
	p.Run(8, fn)                         // warm-up
	allocs := testing.AllocsPerRun(50, func() { p.Run(8, fn) })
	if allocs != 0 {
		t.Fatalf("warm Run allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkRunOverhead(b *testing.B) {
	p := New(4)
	defer p.Close()
	var sink [8]atomic.Int64
	fn := func(s int) { sink[s].Add(1) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(8, fn)
	}
}
