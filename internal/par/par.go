// Package par provides the fixed-degree fork-join worker pool behind
// the within-run parallel kernels (sharded matching, parallel
// contraction row counting/writing, parallel gain-bucket
// initialization).
//
// The design constraints come from the repository's workspace contract:
//
//   - Zero steady-state allocations. Workers are spawned once per pool
//     and parked on a channel between runs; Run hands them work through
//     pre-existing fields and an atomic shard counter, so a warm
//     Run(shards, fn) performs no heap allocation. (The fn value itself
//     must be pre-bound by the caller — workspaces store their shard
//     closures in struct fields — because constructing a capturing
//     closure at the call site would allocate there.)
//   - Determinism. The pool imposes no structure on results: shard
//     functions write to disjoint, shard-indexed state, so the outcome
//     is a pure function of (input, shard count) regardless of how the
//     atomic counter interleaves shards across workers. Every kernel in
//     this repository is additionally designed so its output does not
//     depend on the shard count either.
//   - Panic isolation. A panicking shard does not deadlock the pool:
//     the first panic is captured with its stack, the join completes,
//     and Run re-panics with a *PanicError — the same surfacing
//     contract as core.ParallelBestOf, whose recovery machinery then
//     discards the poisoned workspace (and this pool with it).
//
// A Pool is not safe for concurrent Run calls, and shard functions must
// not call Run on the pool that invoked them; one pool belongs to one
// workspace, mirroring the workspace-per-worker design of
// core.ParallelBestOf.
package par

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Pool is a reusable fork-join pool of degree-1 parked helper
// goroutines plus the calling goroutine. A nil *Pool is valid and runs
// everything inline, so callers can hold an optional pool without
// nil-checking every use.
type Pool struct {
	degree  int
	helpers int
	start   chan struct{} // one token per helper wakes it for a join
	done    chan struct{} // one token per helper signals its join finished
	closed  bool

	// Per-run state, written by Run before the helpers wake and read
	// by them afterwards (the channel send/receive pair establishes the
	// happens-before edge).
	fn     func(shard int)
	shards int64
	next   atomic.Int64
	fault  atomic.Pointer[PanicError]
}

// PanicError carries the first panic recovered from a shard function,
// with the stack of the panicking goroutine. Run panics with a value of
// this type after the join completes.
type PanicError struct {
	Shard int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: shard %d panicked: %v", e.Shard, e.Value)
}

// New returns a pool that runs shard functions on up to degree
// goroutines (the caller plus degree-1 parked helpers). A degree of 1
// or less returns nil — the inline pool — so New(degree) is safe to
// call with whatever a -threads flag parsed.
func New(degree int) *Pool {
	if degree <= 1 {
		return nil
	}
	p := &Pool{
		degree:  degree,
		helpers: degree - 1,
		start:   make(chan struct{}, degree),
		done:    make(chan struct{}, degree),
	}
	for i := 0; i < p.helpers; i++ {
		go p.helper()
	}
	return p
}

// Degree returns the pool's worker count; a nil pool has degree 1.
func (p *Pool) Degree() int {
	if p == nil {
		return 1
	}
	return p.degree
}

// Run executes fn(0) … fn(shards-1), distributing shards over the pool
// via an atomic counter, and returns when all have finished. Shard
// functions run concurrently and must only touch disjoint or
// shard-indexed state. On a nil pool (or a single shard) everything
// runs inline on the calling goroutine, in shard order.
func (p *Pool) Run(shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if p == nil || shards == 1 {
		for i := 0; i < shards; i++ {
			fn(i)
		}
		return
	}
	if p.closed {
		panic("par: Run on closed Pool")
	}
	p.fn = fn
	p.shards = int64(shards)
	p.next.Store(0)
	wake := p.helpers
	if wake > shards-1 {
		wake = shards - 1
	}
	for i := 0; i < wake; i++ {
		p.start <- struct{}{}
	}
	p.work()
	for i := 0; i < wake; i++ {
		<-p.done
	}
	p.fn = nil
	if fault := p.fault.Swap(nil); fault != nil {
		panic(fault)
	}
}

// work drains the shard counter, recovering a shard panic into the
// pool's fault slot so the join always completes.
func (p *Pool) work() {
	for {
		i := p.next.Add(1) - 1
		if i >= p.shards {
			return
		}
		p.runShard(int(i))
	}
}

func (p *Pool) runShard(shard int) {
	defer func() {
		if r := recover(); r != nil {
			p.fault.CompareAndSwap(nil, &PanicError{Shard: shard, Value: r, Stack: debug.Stack()})
		}
	}()
	p.fn(shard)
}

func (p *Pool) helper() {
	for range p.start {
		p.work()
		p.done <- struct{}{}
	}
}

// Close releases the helper goroutines. The pool must not be used
// afterwards. Close on a nil pool is a no-op; double Close is safe.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	close(p.start)
}
