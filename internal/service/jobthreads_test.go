package service

import (
	"net/http/httptest"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/kl"
	"repro/internal/matching"
)

// TestJobThreadsIdenticalResults pins the JobThreads contract from
// docs/SERVICE.md: a daemon running jobs with -job-threads > 1 returns
// exactly the results of a serial daemon — cut, imbalance, and side
// assignment — because the sharded kernels are deterministic at every
// degree. The parallel gates are lowered so the kernels actually engage
// on the test-sized instance.
func TestJobThreadsIdenticalResults(t *testing.T) {
	savedC, savedM := coarsen.ParallelMinVertices, matching.ParallelMinVertices
	savedK, savedF := kl.ParallelMinVertices, fm.ParallelMinVertices
	savedKD, savedFD := kl.ParallelMinDegree, fm.ParallelMinDegree
	coarsen.ParallelMinVertices, matching.ParallelMinVertices = 1, 1
	kl.ParallelMinVertices, fm.ParallelMinVertices = 1, 1
	kl.ParallelMinDegree, fm.ParallelMinDegree = 1, 1
	t.Cleanup(func() {
		coarsen.ParallelMinVertices, matching.ParallelMinVertices = savedC, savedM
		kl.ParallelMinVertices, fm.ParallelMinVertices = savedK, savedF
		kl.ParallelMinDegree, fm.ParallelMinDegree = savedKD, savedFD
	})

	g := testGraph(t, 2000, 6.0, 33)
	run := func(ts *httptest.Server) resultBody {
		ref := uploadGraph(t, ts, g)
		id := submitJob(t, ts, map[string]any{
			"graph": ref, "algorithm": "mlkl", "seed": 77, "starts": 2,
		})
		if v := waitTerminal(t, ts, id); v.State != StateDone {
			t.Fatalf("job ended %q: %s", v.State, v.Error)
		}
		return resultOf(t, ts, id)
	}

	_, serialTS := newTestServer(t, Config{Workers: 1})
	_, threadedTS := newTestServer(t, Config{Workers: 1, JobThreads: 4})
	serial := run(serialTS)
	threaded := run(threadedTS)

	if serial.Cut != threaded.Cut || serial.Imbalance != threaded.Imbalance {
		t.Fatalf("job-threads changed the result: serial cut=%d imb=%d, threaded cut=%d imb=%d",
			serial.Cut, serial.Imbalance, threaded.Cut, threaded.Imbalance)
	}
	if len(serial.Sides) != len(threaded.Sides) {
		t.Fatalf("sides length mismatch: %d vs %d", len(serial.Sides), len(threaded.Sides))
	}
	for v := range serial.Sides {
		if serial.Sides[v] != threaded.Sides[v] {
			t.Fatalf("job-threads changed the side of vertex %d", v)
		}
	}
}
