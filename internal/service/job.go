package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/trace"
)

// State is a job lifecycle state. The machine is documented in
// docs/SERVICE.md ("Job lifecycle"); the service tests assert every
// documented transition.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: on a worker.
	StateRunning State = "running"
	// StateDone: terminal with a result (possibly a truncated run's valid
	// best-so-far, see Result.Stopped).
	StateDone State = "done"
	// StateFailed: terminal without a result (worker panic, lost graph).
	StateFailed State = "failed"
	// StateCancelled: cancelled while still queued; never ran.
	StateCancelled State = "cancelled"
)

// terminal reports whether s is a terminal state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the client-supplied job specification (POST /v1/jobs body).
// Submission decoding is strict: unknown fields are rejected.
type Spec struct {
	// Graph is a content-hash reference ("sha256:<64 hex>") from
	// POST /v1/graphs.
	Graph string `json:"graph"`
	// Algorithm is a registry name (core.Names).
	Algorithm string `json:"algorithm"`
	// Starts is the number of independent random starts (best cut kept);
	// default 2, capped by Config.MaxStarts.
	Starts int `json:"starts"`
	// Seed makes the job a deterministic function of the spec; default 1.
	Seed uint64 `json:"seed"`
	// TimeoutMS is the per-job wall-clock deadline (0 = none).
	TimeoutMS int64 `json:"timeout_ms"`
	// Budget is the deterministic runctl checkpoint budget (0 = none).
	Budget int64 `json:"budget"`
}

// Result is a finished job's summary (full sides via /result).
type Result struct {
	Cut       int64   `json:"cut"`
	Imbalance int64   `json:"imbalance"`
	Seconds   float64 `json:"seconds"`
	// Stopped is "" for a run that completed naturally, or the truncation
	// reason ("deadline", "budget", "cancelled") of a best-so-far result.
	Stopped string `json:"stopped"`
}

// job is the server-side job state: spec, lifecycle, result, and the
// convergence event log that feeds SSE subscribers. All mutable fields
// are guarded by mu; notify is closed-and-replaced on every append or
// transition so streamers can wait without polling, and done is closed
// exactly once at the terminal transition for long-pollers.
type job struct {
	id  string
	seq int
	// g is resolved at submission (or recovery), so graph-cache eviction
	// can never invalidate an accepted job.
	g *graph.Graph

	mu          sync.Mutex
	spec        Spec
	state       State
	submittedMS int64
	startedMS   int64
	finishedMS  int64
	result      *Result
	sides       []uint8
	errMsg      string
	userCancel  bool
	cancelRun   func() // interrupts the running job's context; nil unless running
	// unpersisted marks a job whose latest state transition failed to
	// reach disk (degraded persistence): the job keeps serving from
	// memory, flagged "degraded" in its HTTP views, until a later write
	// or the re-arm flush lands its record.
	unpersisted bool

	events   []trace.Event
	dropped  int
	eventCap int // per-job copy of Config.MaxEvents
	notify   chan struct{}
	done     chan struct{}
}

func newJob(id string, seq int, spec Spec, g *graph.Graph, nowMS int64, eventCap int) *job {
	if eventCap <= 0 {
		eventCap = defaultMaxEvents
	}
	return &job{
		id: id, seq: seq, spec: spec, g: g,
		state: StateQueued, submittedMS: nowMS, eventCap: eventCap,
		notify: make(chan struct{}), done: make(chan struct{}),
	}
}

// Observe implements trace.Observer: the job's own event log. Called
// from the single worker goroutine running the job. Timing fields are
// zeroed so the stored stream — and therefore every SSE frame — is a
// deterministic function of the job spec (docs/SERVICE.md "Determinism").
func (j *job) Observe(e trace.Event) {
	e.ElapsedNS = 0
	e.AllocBytes = 0
	j.mu.Lock()
	if len(j.events) < j.eventCap {
		j.events = append(j.events, e)
	} else {
		j.dropped++
	}
	j.wake()
	j.mu.Unlock()
}

// wake signals streamers; callers hold j.mu.
func (j *job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// eventsFrom returns a copy of the stored events from index i on, the
// terminal flag, and the channel to wait on when the slice is empty and
// the job is not terminal. The (events, terminal) pair is a consistent
// snapshot: a terminal=true return includes every event the job will
// ever have.
func (j *job) eventsFrom(i int) (evs []trace.Event, terminal bool, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.state.terminal(), j.notify
}

// terminalFrame renders the SSE terminal frame (event name = state).
func (j *job) terminalFrame() (name string, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	frame := map[string]any{
		"state":          j.state,
		"events":         len(j.events),
		"events_dropped": j.dropped,
	}
	if j.result != nil {
		frame["cut"] = j.result.Cut
		frame["imbalance"] = j.result.Imbalance
		frame["seconds"] = j.result.Seconds
		frame["stopped"] = j.result.Stopped
	}
	if j.errMsg != "" {
		frame["error"] = j.errMsg
	}
	data, _ = json.Marshal(frame)
	return string(j.state), data
}

// jobView is the wire representation of a job (GET /v1/jobs/{id}) and,
// with Schema and Sides set, the persisted record (bisectd-job/v1).
type jobView struct {
	Schema          string  `json:"schema,omitempty"`
	ID              string  `json:"id"`
	Graph           string  `json:"graph"`
	Algorithm       string  `json:"algorithm"`
	Starts          int     `json:"starts"`
	Seed            uint64  `json:"seed"`
	TimeoutMS       int64   `json:"timeout_ms"`
	Budget          int64   `json:"budget"`
	State           State   `json:"state"`
	SubmittedUnixMS int64   `json:"submitted_unix_ms"`
	StartedUnixMS   int64   `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64   `json:"finished_unix_ms,omitempty"`
	Events          int     `json:"events"`
	EventsDropped   int     `json:"events_dropped"`
	Result          *Result `json:"result,omitempty"`
	Error           string  `json:"error,omitempty"`
	// Sides is persisted (base64 of the 0/1 bytes) for done jobs so a
	// restarted daemon keeps serving full results; the HTTP job object
	// never includes it (GET /v1/jobs/{id}/result expands it instead).
	Sides []byte `json:"sides,omitempty"`
	// Persistence is "degraded" on HTTP views of a job whose latest
	// record failed to reach disk (the ack is non-durable: a crash before
	// the store re-arms loses the job). Never set on persisted records —
	// bytes that did land are by definition not degraded.
	Persistence string `json:"persistence,omitempty"`
}

// view snapshots the job for the HTTP API (no schema, no sides).
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(false)
}

// record snapshots the job as a persistence record.
func (j *job) record() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(true)
}

func (j *job) viewLocked(record bool) jobView {
	v := jobView{
		ID:              j.id,
		Graph:           j.spec.Graph,
		Algorithm:       j.spec.Algorithm,
		Starts:          j.spec.Starts,
		Seed:            j.spec.Seed,
		TimeoutMS:       j.spec.TimeoutMS,
		Budget:          j.spec.Budget,
		State:           j.state,
		SubmittedUnixMS: j.submittedMS,
		StartedUnixMS:   j.startedMS,
		FinishedUnixMS:  j.finishedMS,
		Events:          len(j.events),
		EventsDropped:   j.dropped,
		Error:           j.errMsg,
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	if record {
		v.Schema = jobSchema
		v.Sides = j.sides
	} else if j.unpersisted {
		v.Persistence = "degraded"
	}
	return v
}

// setUnpersisted flags (or clears) the job's non-durable state.
func (j *job) setUnpersisted(v bool) {
	j.mu.Lock()
	j.unpersisted = v
	j.mu.Unlock()
}

// isUnpersisted reports whether the job's latest record is non-durable.
func (j *job) isUnpersisted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.unpersisted
}

// resultView renders GET /v1/jobs/{id}/result; ok is false unless the
// job is done.
func (j *job) resultView() (map[string]any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.result == nil {
		return nil, false
	}
	sides := make([]int, len(j.sides))
	for i, s := range j.sides {
		sides[i] = int(s)
	}
	return map[string]any{
		"id":        j.id,
		"cut":       j.result.Cut,
		"imbalance": j.result.Imbalance,
		"seconds":   j.result.Seconds,
		"stopped":   j.result.Stopped,
		"sides":     sides,
	}, true
}

// complete transitions running → done.
func (j *job) complete(res Result, sides []uint8, nowMS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = &res
	j.sides = sides
	j.finishedMS = nowMS
	j.cancelRun = nil
	close(j.done)
	j.wake()
}

// fail transitions to failed (no result).
func (j *job) fail(msg string, nowMS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.errMsg = msg
	j.finishedMS = nowMS
	j.cancelRun = nil
	close(j.done)
	j.wake()
}

// requeue returns an interrupted-by-shutdown run to the queue: state
// back to queued with the event log cleared, so the deterministic re-run
// regenerates an identical stream from scratch.
func (j *job) requeue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateQueued
	j.startedMS = 0
	j.cancelRun = nil
	j.events = nil
	j.dropped = 0
	j.wake()
}

func (j *job) String() string { return fmt.Sprintf("job %s (%s)", j.id, j.state) }
