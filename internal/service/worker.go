package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// workerLoop is one worker of the fixed pool. Each worker owns a lazily
// built set of workspace-attached bisectors (core.WithWorkspace — the
// same zero-alloc machinery ParallelBestOf gives its pool workers), so
// after warm-up a worker serves jobs without allocating per start. A
// panicking job poisons only its worker's workspace set, which is
// discarded and rebuilt, mirroring ParallelBestOf's poisoned-start
// recovery.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	bisectors := make(map[string]core.Bisector)
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			if !s.runJob(j, bisectors) {
				bisectors = make(map[string]core.Bisector)
			}
		}
	}
}

// runJob executes one job; ok=false means the workspace set may be
// poisoned (the job panicked) and must be discarded.
func (s *Server) runJob(j *job, bisectors map[string]core.Bisector) (ok bool) {
	// Claim. A job cancelled while queued is already terminal: skip.
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return true
	}
	runCtx, cancel := context.WithCancel(s.ctx)
	if j.spec.TimeoutMS > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	j.state = StateRunning
	j.startedMS = time.Now().UnixMilli()
	j.cancelRun = cancel
	rec := j.viewLocked(true)
	j.mu.Unlock()
	s.persistRecord(j, rec)

	ok = true
	defer func() {
		if v := recover(); v != nil {
			ok = false
			j.fail(fmt.Sprintf("panic: %v", v), time.Now().UnixMilli())
			s.persistJob(j)
		}
	}()

	base, ok2 := bisectors[j.spec.Algorithm]
	if !ok2 {
		b, err := core.New(j.spec.Algorithm)
		if err != nil { // validated at submission; only recovery of foreign records gets here
			j.fail(err.Error(), time.Now().UnixMilli())
			s.persistJob(j)
			return true
		}
		if s.cfg.JobThreads > 1 {
			b = core.WithParallel(b, s.cfg.JobThreads)
		}
		base = core.WithWorkspace(b)
		bisectors[j.spec.Algorithm] = base
	}

	// The multi-start loop below is core.BestOf.Bisect with the
	// workspace owned by the worker instead of the run: one sequential
	// random stream, best cut kept, control polled (without consuming
	// budget) between starts. Results and event streams are therefore
	// stream-identical to BestOf{Inner, Starts} on the same seed — the
	// reproducibility contract of docs/SERVICE.md, pinned by the tests.
	ctl := runctl.New(runCtx, j.spec.Budget)
	r := rng.NewFib(j.spec.Seed)
	t0 := time.Now()
	var best *partition.Bisection
	var stopErr error
	for i := 0; i < j.spec.Starts; i++ {
		if i > 0 {
			if stopErr = ctl.Err(); stopErr != nil {
				break
			}
		}
		inner := core.WithObserver(base, trace.WithStart(j, i))
		inner = core.WithControl(inner, ctl)
		cand, err := inner.Bisect(j.g, r)
		if err != nil {
			if !runctl.IsStop(err) || cand == nil {
				j.fail(err.Error(), time.Now().UnixMilli())
				s.persistJob(j)
				return true
			}
			stopErr = err
		}
		if cand != nil && (best == nil || cand.Cut() < best.Cut()) {
			best = cand
		}
		if stopErr != nil {
			break
		}
	}
	seconds := time.Since(t0).Seconds()
	if best == nil {
		j.fail("no result produced", time.Now().UnixMilli())
		s.persistJob(j)
		return true
	}

	stopped := ""
	switch {
	case stopErr == nil:
	case errors.Is(stopErr, runctl.ErrBudgetExceeded):
		stopped = "budget"
	case errors.Is(stopErr, context.DeadlineExceeded):
		stopped = "deadline"
	case errors.Is(stopErr, context.Canceled):
		j.mu.Lock()
		user := j.userCancel
		j.mu.Unlock()
		if !user {
			// Daemon shutdown, not a client cancel: hand the job back to
			// the queue so a restart re-runs it to a deterministic result
			// instead of freezing a schedule-dependent best-so-far.
			j.requeue()
			s.persistJob(j)
			return true
		}
		stopped = "cancelled"
	default:
		stopped = "stopped"
	}

	// Final run_done exactly as BestOf emits it: the kept cut under the
	// composed driver name.
	j.Observe(trace.Event{
		Type:  trace.TypeRunDone,
		Algo:  fmt.Sprintf("%s×%d", j.spec.Algorithm, j.spec.Starts),
		Index: j.spec.Starts,
		Cut:   best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
	})
	j.complete(Result{
		Cut: best.Cut(), Imbalance: best.Imbalance(),
		Seconds: seconds, Stopped: stopped,
	}, best.Sides(), time.Now().UnixMilli())
	s.persistJob(j)
	return true
}
