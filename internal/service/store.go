package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsx"
	"repro/internal/graph"
)

// jobSchema versions the persisted job record. Records carrying a
// different schema are refused at startup (never misread).
const jobSchema = "bisectd-job/v1"

// store is the daemon's crash-safe persistence layer: canonical graph
// bytes under graphs/, one job record per file under jobs/, every write
// through the fsx atomic protocol so a crash at any instant leaves only
// complete files (docs/SERVICE.md "Persistence format"). Every persisted
// file carries a CRC32 trailer (fsx.AppendCRC); a file that fails
// verification on read is moved to quarantine/ and surfaced as a typed
// *fsx.CorruptRecordError — never parsed, never silently dropped. A nil
// *store (no -state directory) disables persistence; all methods are
// nil-safe.
type store struct {
	dir string
	fs  fsx.FS
}

func newStore(dir string, fs fsx.FS) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	for _, sub := range []string{"graphs", "jobs"} {
		if err := fs.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &store{dir: dir, fs: fs}, nil
}

func (s *store) graphPath(hash string) string {
	return filepath.Join(s.dir, "graphs", hash+".el")
}

func (s *store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// quarantine moves the file at path into <dir>/quarantine/, keeping the
// base name (with a numeric suffix on collision), and returns the
// quarantine path. The damaged bytes are preserved as evidence; the
// original path is freed so a re-upload or re-run can replace it.
func (s *store) quarantine(path string) (string, error) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	base := filepath.Base(path)
	qpath := filepath.Join(qdir, base)
	for i := 1; ; i++ {
		if _, err := s.fs.Stat(qpath); os.IsNotExist(err) {
			break
		}
		qpath = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := s.fs.Rename(path, qpath); err != nil {
		return "", err
	}
	return qpath, nil
}

// quarantinedCount reports how many files sit in quarantine/.
func (s *store) quarantinedCount() int {
	if s == nil {
		return 0
	}
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

// hasGraph reports whether canonical bytes for hash are on disk.
func (s *store) hasGraph(hash string) bool {
	if s == nil {
		return false
	}
	_, err := s.fs.Stat(s.graphPath(hash))
	return err == nil
}

// saveGraph persists canonical edge-list bytes (idempotent: an existing
// file is left alone — content-hashed names cannot change meaning).
func (s *store) saveGraph(hash string, canonical []byte) error {
	if s == nil {
		return nil
	}
	if s.hasGraph(hash) {
		return nil
	}
	return fsx.WriteFileAtomicFS(s.fs, s.graphPath(hash), fsx.AppendCRC(canonical), 0o644)
}

// loadGraph verifies and parses the persisted canonical bytes for hash.
// A file failing CRC verification is quarantined and the typed
// *fsx.CorruptRecordError returned: the graph is lost until re-uploaded
// (the content hash guarantees a re-upload restores identical bytes).
func (s *store) loadGraph(hash string) (*graph.Graph, error) {
	if s == nil {
		return nil, os.ErrNotExist
	}
	path := s.graphPath(hash)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := fsx.SplitCRC(path, data)
	if err != nil {
		var ce *fsx.CorruptRecordError
		if errors.As(err, &ce) {
			_, _ = s.quarantine(path)
		}
		return nil, err
	}
	return graph.ReadEdgeList(bytes.NewReader(payload))
}

// saveJob atomically rewrites the job's record; called at every state
// transition so recovery never sees a half-written state.
func (s *store) saveJob(rec jobView) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomicFS(s.fs, s.jobPath(rec.ID), fsx.AppendCRC(data), 0o644)
}

// removeJob deletes a job's record file (used when a re-queued corrupt
// record is superseded). Missing files are fine.
func (s *store) removeJob(id string) error {
	if s == nil {
		return nil
	}
	err := s.fs.Remove(s.jobPath(id))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// loadJobs reads every persisted job record, id-sorted (ids embed the
// submission sequence number, so id order is submission order). A record
// that fails CRC verification or does not parse is quarantined and
// reported in the second return — recovery continues without it, and
// the daemon surfaces the count in /v1/readyz. A record with an unknown
// schema is still a hard error: its bytes verified intact, so this is
// foreign state, not corruption, and the daemon refuses to guess.
func (s *store) loadJobs() ([]jobView, []error, error) {
	if s == nil {
		return nil, nil, nil
	}
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, nil, err
	}
	var recs []jobView
	var corrupt []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue // stray temp files from killed writers are ignorable
		}
		path := filepath.Join(s.dir, "jobs", name)
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		payload, err := fsx.SplitCRC(path, data)
		if err == nil {
			var rec jobView
			if jerr := json.Unmarshal(payload, &rec); jerr != nil {
				err = &fsx.CorruptRecordError{Path: path, Reason: fmt.Sprintf("verified bytes do not parse: %v", jerr)}
			} else if rec.Schema != jobSchema {
				return nil, nil, fmt.Errorf("job record %s: schema %q, want %q", name, rec.Schema, jobSchema)
			} else {
				recs = append(recs, rec)
				continue
			}
		}
		if _, qerr := s.quarantine(path); qerr != nil {
			return nil, nil, fmt.Errorf("quarantining %s: %w (original error: %v)", path, qerr, err)
		}
		corrupt = append(corrupt, err)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	return recs, corrupt, nil
}
