package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsx"
	"repro/internal/graph"
)

// jobSchema versions the persisted job record. Records carrying a
// different schema are refused at startup (never misread).
const jobSchema = "bisectd-job/v1"

// store is the daemon's crash-safe persistence layer: canonical graph
// bytes under graphs/, one job record per file under jobs/, every write
// through the fsx atomic protocol so a crash at any instant leaves only
// complete files (docs/SERVICE.md "Persistence format"). A nil *store
// (no -state directory) disables persistence; all methods are nil-safe.
type store struct{ dir string }

func newStore(dir string) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	for _, sub := range []string{"graphs", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &store{dir: dir}, nil
}

func (s *store) graphPath(hash string) string {
	return filepath.Join(s.dir, "graphs", hash+".el")
}

func (s *store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// hasGraph reports whether canonical bytes for hash are on disk.
func (s *store) hasGraph(hash string) bool {
	if s == nil {
		return false
	}
	_, err := os.Stat(s.graphPath(hash))
	return err == nil
}

// saveGraph persists canonical edge-list bytes (idempotent: an existing
// file is left alone — content-hashed names cannot change meaning).
func (s *store) saveGraph(hash string, canonical []byte) error {
	if s == nil {
		return nil
	}
	if s.hasGraph(hash) {
		return nil
	}
	return fsx.WriteFileAtomic(s.graphPath(hash), canonical, 0o644)
}

// loadGraph parses the persisted canonical bytes for hash.
func (s *store) loadGraph(hash string) (*graph.Graph, error) {
	if s == nil {
		return nil, os.ErrNotExist
	}
	data, err := os.ReadFile(s.graphPath(hash))
	if err != nil {
		return nil, err
	}
	return graph.ReadEdgeList(bytes.NewReader(data))
}

// saveJob atomically rewrites the job's record; called at every state
// transition so recovery never sees a half-written state.
func (s *store) saveJob(rec jobView) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomic(s.jobPath(rec.ID), data, 0o644)
}

// loadJobs reads every persisted job record, id-sorted (ids embed the
// submission sequence number, so id order is submission order). A
// record with an unknown schema is an error — the daemon refuses to
// guess at foreign state.
func (s *store) loadJobs() ([]jobView, error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []jobView
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue // stray temp files from killed writers are ignorable
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		var rec jobView
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("job record %s: %w", name, err)
		}
		if rec.Schema != jobSchema {
			return nil, fmt.Errorf("job record %s: schema %q, want %q", name, rec.Schema, jobSchema)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	return recs, nil
}
