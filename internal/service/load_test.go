package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadSmoke is the in-tree slice of the bisectload scenario: 200
// concurrent clients against one daemon, every job completing with a
// consistent result. Queue-full 429s are expected backpressure and are
// retried; anything else — a lost job, a failed job, or two jobs with
// the same seed disagreeing on the cut — fails the test. The full
// percentile-measuring driver is cmd/bisectd/bisectload (BENCH_5.json).
func TestLoadSmoke(t *testing.T) {
	const (
		clients     = 200
		totalJobs   = 400
		distinctSds = 16
	)
	g := testGraph(t, 150, 4, 41)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)

	client := &http.Client{Timeout: 90 * time.Second}
	var (
		next     atomic.Int64
		done     atomic.Int64
		retried  atomic.Int64
		mu       sync.Mutex
		cuts     = map[uint64]int64{}
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= totalJobs {
					return
				}
				seed := uint64(100 + i%distinctSds)
				cut, err := loadJob(client, ts.URL, ref, seed, &retried)
				if err != nil {
					fail(fmt.Errorf("job %d: %w", i, err))
					return
				}
				mu.Lock()
				if prev, ok := cuts[seed]; ok && prev != cut {
					mu.Unlock()
					fail(fmt.Errorf("seed %d: cut drift %d vs %d under load", seed, prev, cut))
					return
				}
				cuts[seed] = cut
				done.Add(1)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if done.Load() != totalJobs {
		t.Fatalf("lost jobs: %d of %d completed", done.Load(), totalJobs)
	}
	t.Logf("load smoke: %d jobs, %d clients, %d seeds, %d 429 retries",
		totalJobs, clients, distinctSds, retried.Load())
}

// loadJob submits one job (retrying documented 429 backpressure) and
// long-polls it to completion.
func loadJob(client *http.Client, base, ref string, seed uint64, retried *atomic.Int64) (int64, error) {
	spec, _ := json.Marshal(map[string]any{
		"graph": ref, "algorithm": "kl", "starts": 1, "seed": seed,
	})
	var v struct {
		ID     string  `json:"id"`
		State  State   `json:"state"`
		Error  string  `json:"error"`
		Result *Result `json:"result"`
	}
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retried.Add(1)
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if err := decodeLoad(resp, &v); err != nil {
			return 0, fmt.Errorf("submit: %w", err)
		}
		break
	}
	for !v.State.terminal() {
		resp, err := client.Get(base + "/v1/jobs/" + v.ID + "?wait_ms=10000")
		if err != nil {
			return 0, err
		}
		if err := decodeLoad(resp, &v); err != nil {
			return 0, fmt.Errorf("poll: %w", err)
		}
	}
	if v.State != StateDone || v.Result == nil {
		return 0, fmt.Errorf("job %s ended %s (%s)", v.ID, v.State, v.Error)
	}
	return v.Result.Cut, nil
}

func decodeLoad(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}
