package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	id    string // "" on the terminal frame
	event string
	data  string
}

// sseFrames reads a job's event stream to EOF and parses it, dropping
// comment (heartbeat) lines, which are outside the determinism
// guarantee. query is appended verbatim ("?from=3", "").
func sseFrames(t *testing.T, ts *httptest.Server, id, query string) []sseFrame {
	t.Helper()
	body := sseRaw(t, ts, id, query, nil)
	return parseSSE(t, body)
}

// sseRaw fetches the stream body as a string, with optional headers.
func sseRaw(t *testing.T, ts *httptest.Server, id, query string, hdr map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("events %s%s: %v", id, query, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events %s%s: HTTP %d", id, query, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			continue // heartbeat comment
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return b.String()
}

func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(chunk, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// TestSSEReplayDeterminism pins docs/SERVICE.md "GET /v1/jobs/{id}/events":
// a live subscription and any number of later replays yield the same
// id/event/data frames, byte for byte; ?from= and Last-Event-ID resume
// mid-stream.
func TestSSEReplayDeterminism(t *testing.T) {
	g := testGraph(t, 250, 4, 29)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)
	id := submitJob(t, ts, map[string]any{"graph": ref, "algorithm": "ckl", "starts": 3, "seed": 4})

	// Live subscription, racing the run: blocks until the terminal frame.
	live := sseRaw(t, ts, id, "", nil)
	if v := waitTerminal(t, ts, id); v.State != StateDone {
		t.Fatalf("job ended %q (%s)", v.State, v.Error)
	}

	replay1 := sseRaw(t, ts, id, "", nil)
	replay2 := sseRaw(t, ts, id, "", nil)
	if replay1 != replay2 {
		t.Fatalf("two replays differ:\n--- first\n%s\n--- second\n%s", replay1, replay2)
	}
	if live != replay1 {
		t.Fatalf("live stream differs from replay:\n--- live\n%s\n--- replay\n%s", live, replay1)
	}

	frames := parseSSE(t, replay1)
	if len(frames) < 3 {
		t.Fatalf("only %d frames for a 3-start job", len(frames))
	}
	term := frames[len(frames)-1]
	if term.event != "done" || term.id != "" {
		t.Fatalf("terminal frame {id %q, event %q}, want unnumbered done", term.id, term.event)
	}

	// Resume from index 2: exactly the suffix.
	suffix := parseSSE(t, sseRaw(t, ts, id, "?from=2", nil))
	if len(suffix) != len(frames)-2 {
		t.Fatalf("from=2 returned %d frames, want %d", len(suffix), len(frames)-2)
	}
	for i, f := range suffix {
		if f != frames[i+2] {
			t.Fatalf("from=2 frame %d diverges: %+v vs %+v", i, f, frames[i+2])
		}
	}

	// Last-Event-ID: the browser reconnect header resumes after the id.
	viaHeader := parseSSE(t, sseRaw(t, ts, id, "", map[string]string{"Last-Event-ID": "1"}))
	if len(viaHeader) != len(suffix) {
		t.Fatalf("Last-Event-ID: 1 returned %d frames, want %d", len(viaHeader), len(suffix))
	}
	for i, f := range viaHeader {
		if f != suffix[i] {
			t.Fatalf("Last-Event-ID frame %d diverges: %+v vs %+v", i, f, suffix[i])
		}
	}

	// A replay starting past the end is just the terminal frame.
	tail := parseSSE(t, sseRaw(t, ts, id, "?from=100000", nil))
	if len(tail) != 1 || tail[0].event != "done" {
		t.Fatalf("past-the-end replay: %+v", tail)
	}
}
