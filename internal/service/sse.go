package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleJobEvents streams a job's convergence trace as Server-Sent
// Events: replay of everything recorded so far, then live events as the
// run produces them, then exactly one terminal frame named after the
// job's terminal state. Timing fields were zeroed at record time, so
// the id/event/data frames are a deterministic function of the job spec
// — streaming a finished job twice yields byte-identical frames, and a
// live subscriber sees exactly what a later replay serves
// (docs/SERVICE.md "GET /v1/jobs/{id}/events"; pinned by the tests).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "from must be a non-negative integer")
			return
		}
		from = n
	} else if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		// Browser-set on reconnect; a malformed value falls back to a
		// full replay rather than failing the stream.
		if n, err := strconv.Atoi(lei); err == nil && n >= 0 {
			from = n + 1
		}
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, codeInternal, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	idx := from
	for {
		evs, terminal, notify := j.eventsFrom(idx)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", idx, e.Type, data); err != nil {
				return
			}
			idx++
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if terminal {
			name, data := j.terminalFrame()
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
			fl.Flush()
			return
		}
		if len(evs) == 0 {
			// Nothing new: wait for the job to advance, the client to go
			// away, or the heartbeat interval (SSE comment keep-alive;
			// comment lines are outside the determinism guarantee).
			timer := time.NewTimer(s.cfg.Heartbeat)
			select {
			case <-notify:
				timer.Stop()
			case <-r.Context().Done():
				timer.Stop()
				return
			case <-timer.C:
				if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
					return
				}
				fl.Flush()
			}
		}
	}
}
