// End-to-end tests for the partitioning daemon. docs/SERVICE.md is the
// contract: every behavior asserted here is stated there, and the
// doc-contract tests (doc_contract_test.go) keep the document's endpoint
// list and error-code table equal to the implementation's.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

// testGraph builds a deterministic Gnp instance.
func testGraph(t *testing.T, n int, deg float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.GNP(n, deg/float64(n-1), rng.NewFib(seed))
	if err != nil {
		t.Fatalf("gen.GNP: %v", err)
	}
	return g
}

// newTestServer starts a Server plus an httptest front end, both torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON performs a request with an optional JSON/raw body and decodes
// the JSON response, returning the raw *http.Response for header checks.
func doJSON(t *testing.T, method, url string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

// errEnvelope is the documented JSON error body.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// wantErr asserts a response carries the documented envelope.
func wantErr(t *testing.T, method, url string, body []byte, status int, code string) *http.Response {
	t.Helper()
	var env errEnvelope
	resp := doJSON(t, method, url, body, &env)
	if resp.StatusCode != status || env.Error.Code != code {
		t.Fatalf("%s %s: got %d %q (%s), want %d %q",
			method, url, resp.StatusCode, env.Error.Code, env.Error.Message, status, code)
	}
	return resp
}

// uploadGraph posts g as an edge list and returns its content-hash ref.
func uploadGraph(t *testing.T, ts *httptest.Server, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	var info struct {
		Graph string `json:"graph"`
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", buf.Bytes(), &info)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}
	return info.Graph
}

// submitJob posts a job spec and returns the accepted job's id.
func submitJob(t *testing.T, ts *httptest.Server, spec map[string]any) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	var v jobView
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &v)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: HTTP %d", body, resp.StatusCode)
	}
	if v.State != StateQueued {
		t.Fatalf("submit: accepted state %q, want %q", v.State, StateQueued)
	}
	return v.ID
}

// waitTerminal long-polls a job to a terminal state (bounded).
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"?wait_ms=2000", nil, &v)
		if v.State.terminal() {
			return v
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobView{}
}

// resultOf fetches /result for a done job.
type resultBody struct {
	ID        string  `json:"id"`
	Cut       int64   `json:"cut"`
	Imbalance int64   `json:"imbalance"`
	Stopped   string  `json:"stopped"`
	Seconds   float64 `json:"seconds"`
	Sides     []int   `json:"sides"`
}

func resultOf(t *testing.T, ts *httptest.Server, id string) resultBody {
	t.Helper()
	var res resultBody
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/result", nil, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result of %s: HTTP %d", id, resp.StatusCode)
	}
	return res
}

// collector records events with the timing fields zeroed, mirroring
// what the job log stores.
type collector struct{ evs []trace.Event }

func (c *collector) Observe(e trace.Event) {
	e.ElapsedNS = 0
	e.AllocBytes = 0
	c.evs = append(c.evs, e)
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 5})
	var h map[string]string
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &h); resp.StatusCode != 200 || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
	var stats struct {
		Queue   struct{ Depth, Capacity int } `json:"queue"`
		Workers int                           `json:"workers"`
		Jobs    map[string]int                `json:"jobs"`
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); resp.StatusCode != 200 {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	if stats.Queue.Capacity != 5 || stats.Workers != 2 {
		t.Fatalf("stats: got queue cap %d workers %d, want 5 and 2", stats.Queue.Capacity, stats.Workers)
	}
}

// TestGraphUploadFormats: the three documented formats canonicalize to
// one content hash — the same graph uploaded as an edge list and as JSON
// is one cache entry, and the second upload reports 200/cached.
func TestGraphUploadFormats(t *testing.T) {
	g := testGraph(t, 60, 4, 3)
	_, ts := newTestServer(t, Config{})

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	var first struct {
		Graph    string `json:"graph"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
		Cached   bool   `json:"cached"`
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", buf.Bytes(), &first)
	if resp.StatusCode != http.StatusCreated || first.Cached {
		t.Fatalf("first upload: HTTP %d cached=%v, want 201 cached=false", resp.StatusCode, first.Cached)
	}
	if first.Vertices != g.N() || first.Edges != g.M() {
		t.Fatalf("upload reported %d/%d, want %d/%d", first.Vertices, first.Edges, g.N(), g.M())
	}

	jsonBody, err := graph.MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var second struct {
		Graph  string `json:"graph"`
		Cached bool   `json:"cached"`
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/graphs?format=json", jsonBody, &second)
	if resp.StatusCode != http.StatusOK || !second.Cached {
		t.Fatalf("re-upload as json: HTTP %d cached=%v, want 200 cached=true", resp.StatusCode, second.Cached)
	}
	if second.Graph != first.Graph {
		t.Fatalf("format-independent hashing broken: %s vs %s", first.Graph, second.Graph)
	}

	var metis bytes.Buffer
	if err := graph.WriteMETIS(&metis, g); err != nil {
		t.Fatal(err)
	}
	var third struct {
		Graph string `json:"graph"`
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/graphs?format=metis", metis.Bytes(), &third)
	if resp.StatusCode != http.StatusOK || third.Graph != first.Graph {
		t.Fatalf("metis re-upload: HTTP %d ref %s, want 200 %s", resp.StatusCode, third.Graph, first.Graph)
	}

	var info struct {
		Vertices int `json:"vertices"`
		Edges    int `json:"edges"`
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+first.Graph, nil, &info)
	if resp.StatusCode != 200 || info.Vertices != g.N() || info.Edges != g.M() {
		t.Fatalf("graph info: HTTP %d %+v", resp.StatusCode, info)
	}
}

// TestLifecycleMatchesBestOf pins the reproducibility contract of
// docs/SERVICE.md "POST /v1/jobs": a job is equivalent to
// core.BestOf{Inner, Starts} on one rng stream — same cut, same sides,
// and a byte-identical event stream.
func TestLifecycleMatchesBestOf(t *testing.T) {
	g := testGraph(t, 300, 4, 11)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)
	id := submitJob(t, ts, map[string]any{"graph": ref, "algorithm": "kl", "starts": 3, "seed": 7})
	final := waitTerminal(t, ts, id)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job ended %q (%s), want done", final.State, final.Error)
	}
	if final.Result.Stopped != "" {
		t.Fatalf("untruncated run reported stopped=%q", final.Result.Stopped)
	}

	var col collector
	inner, err := core.New("kl")
	if err != nil {
		t.Fatal(err)
	}
	best, err := core.WithObserver(core.BestOf{Inner: inner, Starts: 3}, &col).Bisect(g, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.Cut != best.Cut() || final.Result.Imbalance != best.Imbalance() {
		t.Fatalf("service cut/imbalance %d/%d, BestOf %d/%d",
			final.Result.Cut, final.Result.Imbalance, best.Cut(), best.Imbalance())
	}
	res := resultOf(t, ts, id)
	sides := best.Sides()
	if len(res.Sides) != len(sides) {
		t.Fatalf("sides length %d, want %d", len(res.Sides), len(sides))
	}
	for i, s := range sides {
		if res.Sides[i] != int(s) {
			t.Fatalf("sides diverge at vertex %d: %d vs %d", i, res.Sides[i], s)
		}
	}

	frames := sseFrames(t, ts, id, "")
	if len(frames) != len(col.evs)+1 { // +1 terminal frame
		t.Fatalf("stream has %d frames, BestOf emitted %d events", len(frames), len(col.evs))
	}
	for i, e := range col.evs {
		want, _ := json.Marshal(e)
		if frames[i].data != string(want) {
			t.Fatalf("event %d diverges:\nservice %s\nBestOf  %s", i, frames[i].data, want)
		}
		if frames[i].id != fmt.Sprint(i) {
			t.Fatalf("event %d has SSE id %q", i, frames[i].id)
		}
	}
	if last := frames[len(frames)-1]; last.event != "done" {
		t.Fatalf("terminal frame named %q, want done", last.event)
	}
	if final.Events != len(col.evs) || final.EventsDropped != 0 {
		t.Fatalf("job reports %d events (%d dropped), want %d (0)",
			final.Events, final.EventsDropped, len(col.evs))
	}
}

// TestDeterministicResubmit: identical specs yield identical results —
// including under a deterministic budget truncation.
func TestDeterministicResubmit(t *testing.T) {
	g := testGraph(t, 250, 4, 5)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)
	spec := map[string]any{"graph": ref, "algorithm": "ckl", "starts": 4096, "seed": 9, "budget": 64}
	a := waitTerminal(t, ts, submitJob(t, ts, spec))
	b := waitTerminal(t, ts, submitJob(t, ts, spec))
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("states %q/%q (%s/%s), want done/done", a.State, b.State, a.Error, b.Error)
	}
	if a.Result.Stopped != "budget" || b.Result.Stopped != "budget" {
		t.Fatalf("stopped %q/%q, want budget/budget", a.Result.Stopped, b.Result.Stopped)
	}
	if a.Result.Cut != b.Result.Cut || a.Events != b.Events {
		t.Fatalf("budget truncation is not deterministic: cut %d/%d events %d/%d",
			a.Result.Cut, b.Result.Cut, a.Events, b.Events)
	}
}

// TestDeadlineBestSoFar: an expired deadline still returns a valid
// best-so-far result, flagged stopped="deadline".
func TestDeadlineBestSoFar(t *testing.T) {
	g := testGraph(t, 400, 4, 13)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)
	id := submitJob(t, ts, map[string]any{
		"graph": ref, "algorithm": "kl", "starts": 4096, "seed": 3, "timeout_ms": 80,
	})
	final := waitTerminal(t, ts, id)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("deadline job ended %q (%s), want done with a result", final.State, final.Error)
	}
	if final.Result.Stopped != "deadline" {
		t.Fatalf("stopped=%q, want deadline", final.Result.Stopped)
	}
	res := resultOf(t, ts, id)
	if res.Cut <= 0 || len(res.Sides) != g.N() {
		t.Fatalf("best-so-far result malformed: cut %d, %d sides", res.Cut, len(res.Sides))
	}
}

// TestQueueFullAndCancel drives the documented backpressure and both
// cancellation paths on a 1-worker, 1-slot daemon.
func TestQueueFullAndCancel(t *testing.T) {
	g := testGraph(t, 400, 4, 17)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ref := uploadGraph(t, ts, g)
	long := map[string]any{"graph": ref, "algorithm": "kl", "starts": 4096, "seed": 1}

	// A occupies the single worker.
	idA := submitJob(t, ts, long)
	for i := 0; ; i++ {
		var v jobView
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+idA, nil, &v)
		if v.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatalf("job A never started (state %q)", v.State)
		}
		time.Sleep(time.Millisecond)
	}
	// B fills the one queue slot; C must be refused with the documented
	// 429 + Retry-After envelope.
	idB := submitJob(t, ts, long)
	body, _ := json.Marshal(long)
	resp := wantErr(t, http.MethodPost, ts.URL+"/v1/jobs", body, http.StatusTooManyRequests, codeQueueFull)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel B while queued: terminal "cancelled", it never ran, and its
	// event stream is just the terminal frame.
	var vB jobView
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+idB, nil, &vB)
	if vB.State != StateCancelled {
		t.Fatalf("queued cancel: state %q, want cancelled", vB.State)
	}
	wantErr(t, http.MethodGet, ts.URL+"/v1/jobs/"+idB+"/result", nil, http.StatusConflict, codeConflict)
	if frames := sseFrames(t, ts, idB, ""); len(frames) != 1 || frames[0].event != "cancelled" {
		t.Fatalf("cancelled job streamed %d frames (%q)", len(frames), frames[0].event)
	}
	// Idempotent re-cancel.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+idB, nil, &vB)
	if vB.State != StateCancelled {
		t.Fatalf("re-cancel: state %q", vB.State)
	}

	// Cancel A while running: it stops at the next checkpoint with its
	// best-so-far (done, stopped="cancelled") — or failed if it had not
	// yet produced a candidate.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+idA, nil, nil)
	final := waitTerminal(t, ts, idA)
	switch final.State {
	case StateDone:
		if final.Result.Stopped != "cancelled" {
			t.Fatalf("running cancel: stopped=%q, want cancelled", final.Result.Stopped)
		}
	case StateFailed:
		// Legitimate only when cancellation landed before any candidate.
	default:
		t.Fatalf("running cancel ended %q", final.State)
	}
}

// TestErrorContract walks the documented error table (docs/SERVICE.md
// "Error codes") end to end.
func TestErrorContract(t *testing.T) {
	g := testGraph(t, 80, 4, 2)
	_, ts := newTestServer(t, Config{MaxGraphBytes: 256})
	ref := uploadGraph(t, ts, testGraph(t, 10, 2, 1)) // small enough for the cap

	unknownHash := "sha256:" + strings.Repeat("ab", 32)
	cases := []struct {
		name, method, path string
		body               []byte
		status             int
		code               string
	}{
		{"unknown route", "GET", "/nope", nil, 404, codeNotFound},
		{"unknown job", "GET", "/v1/jobs/j-999999-zz", nil, 404, codeNotFound},
		{"unknown graph", "GET", "/v1/graphs/" + unknownHash, nil, 404, codeNotFound},
		{"bad graph ref", "GET", "/v1/graphs/xyzzy", nil, 400, codeBadRequest},
		{"bad format", "POST", "/v1/graphs?format=yaml", []byte("0 1\n"), 400, codeBadRequest},
		{"unparsable graph", "POST", "/v1/graphs", []byte("not an edge list"), 400, codeBadRequest},
		{"bad spec json", "POST", "/v1/jobs", []byte("{"), 400, codeBadRequest},
		{"unknown spec field", "POST", "/v1/jobs",
			[]byte(`{"graph":"` + ref + `","algorithm":"kl","bogus":1}`), 400, codeBadRequest},
		{"unknown algorithm", "POST", "/v1/jobs",
			[]byte(`{"graph":"` + ref + `","algorithm":"quantum"}`), 400, codeBadRequest},
		{"negative timeout", "POST", "/v1/jobs",
			[]byte(`{"graph":"` + ref + `","algorithm":"kl","timeout_ms":-1}`), 400, codeBadRequest},
		{"job for unknown graph", "POST", "/v1/jobs",
			[]byte(`{"graph":"` + unknownHash + `","algorithm":"kl"}`), 404, codeNotFound},
		{"bad wait_ms", "GET", "/v1/jobs/j-999999-zz?wait_ms=soon", nil, 404, codeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantErr(t, tc.method, ts.URL+tc.path, tc.body, tc.status, tc.code)
		})
	}

	// 405 carries the JSON envelope plus an Allow header.
	resp := wantErr(t, http.MethodPut, ts.URL+"/v1/healthz", nil, 405, codeMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("Allow header %q, want GET", allow)
	}

	// 413 on an upload beyond -max-graph-bytes.
	var big bytes.Buffer
	if err := graph.WriteEdgeList(&big, g); err != nil {
		t.Fatal(err)
	}
	if big.Len() <= 256 {
		t.Fatalf("test graph only %d bytes", big.Len())
	}
	wantErr(t, http.MethodPost, ts.URL+"/v1/graphs", big.Bytes(), 413, codeTooLarge)

	// The 413 body carries the configured cap so large-graph clients can
	// self-diagnose against this deployment's -max-graph-bytes.
	var limited struct {
		Error struct {
			LimitBytes int64 `json:"limit_bytes"`
		} `json:"error"`
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", big.Bytes(), &limited)
	if limited.Error.LimitBytes != 256 {
		t.Fatalf("413 limit_bytes = %d, want 256", limited.Error.LimitBytes)
	}

	// 400 on a bad wait_ms for a job that exists.
	id := submitJob(t, ts, map[string]any{"graph": ref, "algorithm": "kl"})
	wantErr(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"?wait_ms=-2", nil, 400, codeBadRequest)
	wantErr(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events?from=-1", nil, 400, codeBadRequest)
	waitTerminal(t, ts, id)
}

// TestLongPollAndList: wait_ms holds the request until the job is
// terminal; the job list is in submission order.
func TestLongPollAndList(t *testing.T) {
	g := testGraph(t, 120, 4, 23)
	_, ts := newTestServer(t, Config{})
	ref := uploadGraph(t, ts, g)
	id1 := submitJob(t, ts, map[string]any{"graph": ref, "algorithm": "kl", "seed": 1})
	var v jobView
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id1+"?wait_ms=30000", nil, &v)
	if !v.State.terminal() {
		t.Fatalf("long poll returned non-terminal state %q", v.State)
	}
	id2 := submitJob(t, ts, map[string]any{"graph": ref, "algorithm": "fm", "seed": 2})
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &list)
	if len(list.Jobs) != 2 || list.Jobs[0].ID != id1 || list.Jobs[1].ID != id2 {
		t.Fatalf("job list %v, want [%s %s]", list.Jobs, id1, id2)
	}
	waitTerminal(t, ts, id2)
}
