// Package service composes the repository's single-run machinery into a
// long-running multi-tenant partitioning daemon: graph upload with a
// content-hash cache, a bounded job queue with backpressure, a fixed
// worker pool reusing the zero-alloc per-worker workspaces, per-job
// run-control deadlines and budgets, convergence streaming over SSE, and
// crash-safe job persistence through internal/fsx.
//
// The HTTP API is specified in docs/SERVICE.md — that document is the
// contract, and the tests in this package assert the implementation
// matches it (including the endpoint list and error-code table, which
// are parsed out of the document and compared against Endpoints and
// ErrorCodes).
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Defaults for the zero Config fields; the flag defaults of cmd/bisectd
// mirror these (and docs/SERVICE.md documents them).
const (
	defaultQueueDepth    = 64
	defaultCacheEntries  = 128
	defaultMaxGraphBytes = 64 << 20
	defaultMaxStarts     = 4096
	defaultMaxEvents     = 65536
	defaultHeartbeat     = 15 * time.Second
)

// Config parameterizes a Server. The zero value gets sensible defaults.
type Config struct {
	// StateDir enables crash-safe persistence ("" = in-memory only).
	StateDir string
	// Workers is the fixed worker-pool size (default GOMAXPROCS).
	Workers int
	// JobThreads is the per-job refinement thread count: values > 1
	// compose core.WithParallel into every worker's bisector set, so
	// each running job shards its kernels over JobThreads cores.
	// Results are identical at any value — `-threads` is a pure
	// performance knob (the determinism matrix contract) — but the
	// useful product Workers × JobThreads is bounded by the host's
	// cores: prefer many workers for throughput on small jobs, and
	// JobThreads > 1 with fewer workers for latency on large jobs.
	// 0 or 1 keeps the serial per-worker path.
	JobThreads int
	// QueueDepth bounds the job queue; submissions beyond it get 429.
	QueueDepth int
	// CacheEntries bounds the in-memory graph cache (LRU).
	CacheEntries int
	// MaxGraphBytes caps uploads (413 beyond it).
	MaxGraphBytes int64
	// MaxStarts caps a job's starts (requests beyond it are clamped).
	MaxStarts int
	// MaxEvents caps a job's stored trace stream (overflow counted in
	// events_dropped).
	MaxEvents int
	// Heartbeat is the SSE keep-alive comment interval.
	Heartbeat time.Duration
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = defaultCacheEntries
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = defaultMaxGraphBytes
	}
	if c.MaxStarts <= 0 {
		c.MaxStarts = defaultMaxStarts
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = defaultMaxEvents
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = defaultHeartbeat
	}
}

// Server is the partitioning service. Create with New, serve its
// Handler, stop with Close.
type Server struct {
	cfg   Config
	store *store
	cache *graphCache
	mux   *http.ServeMux
	queue chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // submission (id) order
	seq   int

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	closing atomic.Bool
	started time.Time
}

// New builds a Server: it recovers persisted state from cfg.StateDir
// (unfinished jobs re-enter the queue ahead of new traffic), then starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	st, err := newStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		store: st,
		cache: newGraphCache(cfg.CacheEntries),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
		ctx:   ctx, cancel: cancel,
		started: time.Now(),
	}
	s.routes()
	requeue, err := s.recover()
	if err != nil {
		cancel()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if len(requeue) > 0 {
		// Blocking sends on purpose: recovered jobs may exceed the queue
		// capacity; they drain into workers as slots free up, ahead of
		// new submissions (which see a full queue and back off with 429).
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, j := range requeue {
				select {
				case s.queue <- j:
				case <-s.ctx.Done():
					return
				}
			}
		}()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server down gracefully: new submissions get 503,
// running jobs are interrupted at their next run-control checkpoint and
// (with a state directory) persisted back to queued for the next start,
// and every worker goroutine is joined before Close returns.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	s.cancel()
	s.wg.Wait()
}

// recover loads persisted jobs: terminal ones keep serving results,
// queued/running ones are re-queued (a re-run is deterministic, so a
// crash delays an answer but never changes it).
func (s *Server) recover() ([]*job, error) {
	recs, err := s.store.loadJobs()
	if err != nil {
		return nil, err
	}
	var requeue []*job
	for _, rec := range recs {
		spec := Spec{
			Graph: rec.Graph, Algorithm: rec.Algorithm, Starts: rec.Starts,
			Seed: rec.Seed, TimeoutMS: rec.TimeoutMS, Budget: rec.Budget,
		}
		j := newJob(rec.ID, 0, spec, nil, rec.SubmittedUnixMS, s.cfg.MaxEvents)
		if seq, ok := seqOf(rec.ID); ok && seq > s.seq {
			s.seq = seq
		}
		j.state = rec.State
		j.startedMS = rec.StartedUnixMS
		j.finishedMS = rec.FinishedUnixMS
		j.errMsg = rec.Error
		j.result = rec.Result
		j.sides = rec.Sides
		switch {
		case rec.State.terminal():
			close(j.done)
		default: // queued or running at crash/shutdown: run it (again)
			j.state = StateQueued
			j.startedMS = 0
			hash, err := parseGraphRef(rec.Graph)
			if err == nil {
				j.g, err = s.store.loadGraph(hash)
			}
			if err != nil {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("graph %s lost: %v", rec.Graph, err)
				j.finishedMS = time.Now().UnixMilli()
				close(j.done)
			} else {
				s.cache.put(hash, j.g)
				requeue = append(requeue, j)
			}
			if j.state != rec.State || rec.State == StateRunning {
				if err := s.store.saveJob(j.record()); err != nil {
					return nil, err
				}
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
	}
	return requeue, nil
}

// seqOf extracts the submission sequence number from a job id
// ("j-000017-d41d8cd9" → 17).
func seqOf(id string) (int, bool) {
	if len(id) < 9 || id[:2] != "j-" {
		return 0, false
	}
	n, err := strconv.Atoi(id[2:8])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Endpoints is the routing table of the service, one "<METHOD> <path
// pattern>" per route. docs/SERVICE.md documents exactly these; the
// doc-contract test enforces the equality in both directions.
func Endpoints() []string {
	return []string{
		"GET /v1/healthz",
		"GET /v1/stats",
		"POST /v1/graphs",
		"GET /v1/graphs/{hash}",
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"DELETE /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"GET /v1/jobs/{id}/events",
	}
}

// Error codes of the JSON error envelope (docs/SERVICE.md error-code
// table; the doc-contract test enforces the equality).
const (
	codeBadRequest       = "bad_request"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeConflict         = "conflict"
	codeTooLarge         = "too_large"
	codeQueueFull        = "queue_full"
	codeUnavailable      = "unavailable"
	codeInternal         = "internal"
)

// ErrorCodes lists every error code the service can emit.
func ErrorCodes() []string {
	return []string{
		codeBadRequest, codeNotFound, codeMethodNotAllowed, codeConflict,
		codeTooLarge, codeQueueFull, codeUnavailable, codeInternal,
	}
}

// routes wires the mux. Paths are registered method-less and dispatched
// inside the handlers so that wrong-method responses carry the same JSON
// envelope (plus an Allow header) as every other error.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/healthz", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleHealthz,
	}))
	s.mux.HandleFunc("/v1/stats", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleStats,
	}))
	s.mux.HandleFunc("/v1/graphs", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.handleGraphUpload,
	}))
	s.mux.HandleFunc("/v1/graphs/{hash}", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleGraphInfo,
	}))
	s.mux.HandleFunc("/v1/jobs", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmit,
		http.MethodGet:  s.handleJobList,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}", s.methods(map[string]http.HandlerFunc{
		http.MethodGet:    s.handleJobGet,
		http.MethodDelete: s.handleJobCancel,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}/result", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobResult,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}/events", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobEvents,
	}))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown route "+r.URL.Path)
	})
}

func (s *Server) methods(byMethod map[string]http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := byMethod[r.Method]; ok {
			h(w, r)
			return
		}
		allow := ""
		for m := range byMethod {
			if allow != "" {
				allow += ", "
			}
			allow += m
		}
		w.Header().Set("Allow", allow)
		writeErr(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Sprintf("%s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// writeErrLimit is writeErr with a machine-readable byte cap in the
// error object, so a client that tripped a size limit can read the
// server's actual configuration (-max-graph-bytes is deployment-
// specific) instead of parsing the message text.
func writeErrLimit(w http.ResponseWriter, status int, code, msg string, limit int64) {
	writeJSON(w, status, map[string]any{
		"error": map[string]any{"code": code, "message": msg, "limit_bytes": limit},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	counts := map[State]int{}
	s.mu.Lock()
	for _, j := range s.order {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue":   map[string]int{"depth": len(s.queue), "capacity": cap(s.queue)},
		"workers": s.cfg.Workers,
		"jobs": map[string]int{
			"queued":    counts[StateQueued],
			"running":   counts[StateRunning],
			"done":      counts[StateDone],
			"failed":    counts[StateFailed],
			"cancelled": counts[StateCancelled],
		},
		"cache":     s.cache.stats(),
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// graphInfo is the response of POST /v1/graphs and GET /v1/graphs/{hash}.
type graphInfo struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Cached   bool   `json:"cached"`
}

func (s *Server) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxGraphBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErrLimit(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("graph upload exceeds %d bytes", s.cfg.MaxGraphBytes),
				s.cfg.MaxGraphBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, codeBadRequest, "reading body: "+err.Error())
		return
	}
	g, err := parseGraphBody(r.URL.Query().Get("format"), data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	canonical, hash, err := canonicalGraph(g)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	_, resident := s.cache.peek(hash)
	resident = resident || s.store.hasGraph(hash)
	s.cache.put(hash, g)
	if err := s.store.saveGraph(hash, canonical); err != nil {
		writeErr(w, http.StatusInternalServerError, codeInternal, "persisting graph: "+err.Error())
		return
	}
	status := http.StatusCreated
	if resident {
		status = http.StatusOK
	}
	writeJSON(w, status, graphInfo{
		Graph: hashPrefix + hash, Vertices: g.N(), Edges: g.M(), Cached: resident,
	})
}

// parseGraphBody dispatches on the upload format (docs/SERVICE.md): the
// three hardened readers of internal/graph.
func parseGraphBody(format string, data []byte) (*graph.Graph, error) {
	switch format {
	case "", "edgelist":
		return graph.ReadEdgeList(bytes.NewReader(data))
	case "metis":
		return graph.ReadMETIS(bytes.NewReader(data))
	case "json":
		return graph.UnmarshalGraph(data)
	default:
		return nil, fmt.Errorf("unknown format %q (want edgelist, metis, or json)", format)
	}
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	hash, err := parseGraphRef(r.PathValue("hash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	g, ok := s.cache.peek(hash)
	if !ok {
		if g, err = s.store.loadGraph(hash); err != nil {
			writeErr(w, http.StatusNotFound, codeNotFound, "unknown graph "+hashPrefix+hash)
			return
		}
		s.cache.put(hash, g)
	}
	writeJSON(w, http.StatusOK, graphInfo{
		Graph: hashPrefix + hash, Vertices: g.N(), Edges: g.M(), Cached: true,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeErr(w, http.StatusServiceUnavailable, codeUnavailable, "daemon is shutting down")
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, "job spec: "+err.Error())
		return
	}
	if spec.Starts == 0 {
		spec.Starts = 2
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Starts > s.cfg.MaxStarts {
		spec.Starts = s.cfg.MaxStarts
	}
	switch {
	case spec.Starts < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "starts must be positive")
		return
	case spec.TimeoutMS < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "timeout_ms must be non-negative")
		return
	case spec.Budget < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "budget must be non-negative")
		return
	}
	if _, err := core.New(spec.Algorithm); err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unknown algorithm %q (have %v)", spec.Algorithm, core.Names()))
		return
	}
	hash, err := parseGraphRef(spec.Graph)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	g, ok := s.cache.acquire(hash)
	if !ok {
		if g, err = s.store.loadGraph(hash); err != nil {
			writeErr(w, http.StatusNotFound, codeNotFound, "unknown graph "+spec.Graph)
			return
		}
		s.cache.put(hash, g)
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j-%06d-%s", s.seq, randomSuffix())
	j := newJob(id, s.seq, spec, g, time.Now().UnixMilli(), s.cfg.MaxEvents)
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()

	// Holding j.mu across the enqueue serializes the persisted "queued"
	// record with the worker's "running" transition (a worker that picks
	// the job up immediately blocks on j.mu until the record is written).
	j.mu.Lock()
	select {
	case s.queue <- j:
	default:
		j.mu.Unlock()
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("job queue is full (%d queued)", cap(s.queue)))
		return
	}
	rec := j.viewLocked(true)
	accepted := j.viewLocked(false) // snapshot now: a fast worker may flip the state before we respond
	j.mu.Unlock()
	if err := s.store.saveJob(rec); err != nil {
		// The job is already queued; persistence failure surfaces in logs
		// via the response, not by un-queuing deterministic work.
		writeErr(w, http.StatusInternalServerError, codeInternal, "persisting job: "+err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, accepted)
}

func randomSuffix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job "+id)
	}
	return j, ok
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if q := r.URL.Query().Get("wait_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "wait_ms must be a non-negative integer")
			return
		}
		timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	res, ok := j.resultView()
	if !ok {
		writeErr(w, http.StatusConflict, codeConflict,
			fmt.Sprintf("job %s is %s, not done", j.id, j.view().State))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finishedMS = time.Now().UnixMilli()
		close(j.done)
		j.wake()
		rec := j.viewLocked(true)
		j.mu.Unlock()
		if err := s.store.saveJob(rec); err != nil {
			writeErr(w, http.StatusInternalServerError, codeInternal, "persisting job: "+err.Error())
			return
		}
	case StateRunning:
		j.userCancel = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
	default: // terminal: idempotent no-op
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.view())
}
