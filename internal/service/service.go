// Package service composes the repository's single-run machinery into a
// long-running multi-tenant partitioning daemon: graph upload with a
// content-hash cache, a bounded job queue with backpressure, a fixed
// worker pool reusing the zero-alloc per-worker workspaces, per-job
// run-control deadlines and budgets, convergence streaming over SSE, and
// crash-safe job persistence through internal/fsx.
//
// The HTTP API is specified in docs/SERVICE.md — that document is the
// contract, and the tests in this package assert the implementation
// matches it (including the endpoint list and error-code table, which
// are parsed out of the document and compared against Endpoints and
// ErrorCodes).
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/graph"
)

// Defaults for the zero Config fields; the flag defaults of cmd/bisectd
// mirror these (and docs/SERVICE.md documents them).
const (
	defaultQueueDepth    = 64
	defaultCacheEntries  = 128
	defaultMaxGraphBytes = 64 << 20
	defaultMaxStarts     = 4096
	defaultMaxEvents     = 65536
	defaultHeartbeat     = 15 * time.Second
	defaultPersistProbe  = 2 * time.Second
)

// Config parameterizes a Server. The zero value gets sensible defaults.
type Config struct {
	// StateDir enables crash-safe persistence ("" = in-memory only).
	StateDir string
	// Workers is the fixed worker-pool size (default GOMAXPROCS).
	Workers int
	// JobThreads is the per-job refinement thread count: values > 1
	// compose core.WithParallel into every worker's bisector set, so
	// each running job shards its kernels over JobThreads cores.
	// Results are identical at any value — `-threads` is a pure
	// performance knob (the determinism matrix contract) — but the
	// useful product Workers × JobThreads is bounded by the host's
	// cores: prefer many workers for throughput on small jobs, and
	// JobThreads > 1 with fewer workers for latency on large jobs.
	// 0 or 1 keeps the serial per-worker path.
	JobThreads int
	// QueueDepth bounds the job queue; submissions beyond it get 429.
	QueueDepth int
	// CacheEntries bounds the in-memory graph cache (LRU).
	CacheEntries int
	// MaxGraphBytes caps uploads (413 beyond it).
	MaxGraphBytes int64
	// MaxStarts caps a job's starts (requests beyond it are clamped).
	MaxStarts int
	// MaxEvents caps a job's stored trace stream (overflow counted in
	// events_dropped).
	MaxEvents int
	// Heartbeat is the SSE keep-alive comment interval.
	Heartbeat time.Duration
	// PersistProbe is the interval at which degraded persistence re-probes
	// the state directory (a small atomic write to <state>/.probe); a
	// successful probe re-arms persistence and flushes unpersisted
	// records. Default 2s. Ignored without a StateDir.
	PersistProbe time.Duration
	// FS is the filesystem the store and probe write through (nil =
	// fsx.OS). Fault-injection tests substitute internal/faultfs here.
	FS fsx.FS
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = defaultCacheEntries
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = defaultMaxGraphBytes
	}
	if c.MaxStarts <= 0 {
		c.MaxStarts = defaultMaxStarts
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = defaultMaxEvents
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = defaultHeartbeat
	}
	if c.PersistProbe <= 0 {
		c.PersistProbe = defaultPersistProbe
	}
	if c.FS == nil {
		c.FS = fsx.OS
	}
}

// Server is the partitioning service. Create with New, serve its
// Handler, stop with Close.
type Server struct {
	cfg   Config
	store *store
	cache *graphCache
	mux   *http.ServeMux
	queue chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // submission (id) order
	seq   int

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	closing atomic.Bool
	started time.Time

	// Persistence-failure state machine (docs/SERVICE.md "Degraded
	// persistence"): a failed store write flips degraded instead of
	// failing the request — the daemon keeps serving from memory, flags
	// affected jobs, and a successful write (or the periodic probe)
	// re-arms and flushes. Guarded by pmu; never held with s.mu or j.mu.
	pmu            sync.Mutex
	degraded       bool
	persistErr     string
	pfailures      int64
	dirtyGraphs    map[string][]byte
	corruptAtStart int
}

// New builds a Server: it recovers persisted state from cfg.StateDir
// (unfinished jobs re-enter the queue ahead of new traffic), then starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	st, err := newStore(cfg.StateDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		store: st,
		cache: newGraphCache(cfg.CacheEntries),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
		ctx:   ctx, cancel: cancel,
		started:     time.Now(),
		dirtyGraphs: map[string][]byte{},
	}
	s.routes()
	requeue, err := s.recover()
	if err != nil {
		cancel()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if st != nil {
		s.wg.Add(1)
		go s.probeLoop()
	}
	if len(requeue) > 0 {
		// Blocking sends on purpose: recovered jobs may exceed the queue
		// capacity; they drain into workers as slots free up, ahead of
		// new submissions (which see a full queue and back off with 429).
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, j := range requeue {
				select {
				case s.queue <- j:
				case <-s.ctx.Done():
					return
				}
			}
		}()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server down gracefully: new submissions get 503,
// running jobs are interrupted at their next run-control checkpoint and
// (with a state directory) persisted back to queued for the next start,
// and every worker goroutine is joined before Close returns.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	s.cancel()
	s.wg.Wait()
}

// recover loads persisted jobs: terminal ones keep serving results,
// queued/running ones are re-queued (a re-run is deterministic, so a
// crash delays an answer but never changes it). Records that fail CRC
// verification were quarantined by the store — recovery continues
// without them, and the count is surfaced in /v1/readyz.
func (s *Server) recover() ([]*job, error) {
	recs, corrupt, err := s.store.loadJobs()
	if err != nil {
		return nil, err
	}
	s.corruptAtStart = len(corrupt)
	var requeue []*job
	for _, rec := range recs {
		spec := Spec{
			Graph: rec.Graph, Algorithm: rec.Algorithm, Starts: rec.Starts,
			Seed: rec.Seed, TimeoutMS: rec.TimeoutMS, Budget: rec.Budget,
		}
		j := newJob(rec.ID, 0, spec, nil, rec.SubmittedUnixMS, s.cfg.MaxEvents)
		if seq, ok := seqOf(rec.ID); ok && seq > s.seq {
			s.seq = seq
		}
		j.state = rec.State
		j.startedMS = rec.StartedUnixMS
		j.finishedMS = rec.FinishedUnixMS
		j.errMsg = rec.Error
		j.result = rec.Result
		j.sides = rec.Sides
		switch {
		case rec.State.terminal():
			close(j.done)
		default: // queued or running at crash/shutdown: run it (again)
			j.state = StateQueued
			j.startedMS = 0
			hash, err := parseGraphRef(rec.Graph)
			if err == nil {
				j.g, err = s.store.loadGraph(hash)
			}
			if err != nil {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("graph %s lost: %v", rec.Graph, err)
				j.finishedMS = time.Now().UnixMilli()
				close(j.done)
			} else {
				s.cache.put(hash, j.g)
				requeue = append(requeue, j)
			}
			if j.state != rec.State || rec.State == StateRunning {
				// A failed rewrite degrades persistence rather than aborting
				// recovery: the old record still re-queues correctly on the
				// next restart.
				s.persistJob(j)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
	}
	return requeue, nil
}

// persistJob writes j's current record; persistRecord is the variant for
// a snapshot taken earlier under j.mu. Both return whether the record is
// durably on disk. A write failure never fails the caller's request:
// it flips the server to degraded persistence and marks the job
// unpersisted, to be flushed when the store re-arms.
func (s *Server) persistJob(j *job) bool { return s.persistRecord(j, j.record()) }

func (s *Server) persistRecord(j *job, rec jobView) bool {
	if s.store == nil {
		return false
	}
	if err := s.store.saveJob(rec); err != nil {
		j.setUnpersisted(true)
		s.persistFail(err)
		return false
	}
	j.setUnpersisted(false)
	s.persistOK()
	return true
}

// persistFail records a store write failure and enters degraded mode.
func (s *Server) persistFail(err error) {
	s.pmu.Lock()
	s.degraded = true
	s.persistErr = err.Error()
	s.pfailures++
	s.pmu.Unlock()
}

// persistOK notes a successful store write; if the server was degraded,
// it re-arms and flushes everything that accumulated in memory.
func (s *Server) persistOK() {
	s.pmu.Lock()
	wasDegraded := s.degraded
	s.degraded = false
	s.pmu.Unlock()
	if wasDegraded {
		s.flushUnpersisted()
	}
}

// flushUnpersisted retries every write that failed while degraded:
// graph uploads first (jobs reference them), then job records. The
// first failure re-degrades and leaves the rest for the next re-arm.
func (s *Server) flushUnpersisted() {
	s.pmu.Lock()
	graphs := s.dirtyGraphs
	s.dirtyGraphs = map[string][]byte{}
	s.pmu.Unlock()
	for hash, canonical := range graphs {
		if err := s.store.saveGraph(hash, canonical); err != nil {
			s.pmu.Lock()
			s.dirtyGraphs[hash] = canonical
			s.pmu.Unlock()
			s.persistFail(err)
			return
		}
	}
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	for _, j := range jobs {
		if !j.isUnpersisted() {
			continue
		}
		if err := s.store.saveJob(j.record()); err != nil {
			s.persistFail(err)
			return
		}
		j.setUnpersisted(false)
	}
}

// probeLoop periodically re-probes a degraded store with a small atomic
// write; success re-arms persistence and flushes. Healthy stores are
// left alone (the probe only fires while degraded).
func (s *Server) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.PersistProbe)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.pmu.Lock()
			degraded := s.degraded
			s.pmu.Unlock()
			if !degraded {
				continue
			}
			probe := filepath.Join(s.cfg.StateDir, ".probe")
			if err := fsx.WriteFileAtomicFS(s.cfg.FS, probe, []byte("probe\n"), 0o644); err != nil {
				s.persistFail(err)
				continue
			}
			s.persistOK()
		}
	}
}

// persistenceInfo is the persistence block of /v1/readyz and /v1/stats.
func (s *Server) persistenceInfo() map[string]any {
	if s.store == nil {
		return map[string]any{"state": "disabled"}
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	state := "ok"
	if s.degraded {
		state = "degraded"
	}
	info := map[string]any{
		"state":       state,
		"failures":    s.pfailures,
		"quarantined": s.store.quarantinedCount(),
	}
	if s.corruptAtStart > 0 {
		info["corrupt_records_at_start"] = s.corruptAtStart
	}
	if s.persistErr != "" {
		info["last_error"] = s.persistErr
	}
	return info
}

// seqOf extracts the submission sequence number from a job id
// ("j-000017-d41d8cd9" → 17).
func seqOf(id string) (int, bool) {
	if len(id) < 9 || id[:2] != "j-" {
		return 0, false
	}
	n, err := strconv.Atoi(id[2:8])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Endpoints is the routing table of the service, one "<METHOD> <path
// pattern>" per route. docs/SERVICE.md documents exactly these; the
// doc-contract test enforces the equality in both directions.
func Endpoints() []string {
	return []string{
		"GET /v1/healthz",
		"GET /v1/readyz",
		"GET /v1/stats",
		"POST /v1/graphs",
		"GET /v1/graphs/{hash}",
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"DELETE /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"GET /v1/jobs/{id}/events",
	}
}

// Error codes of the JSON error envelope (docs/SERVICE.md error-code
// table; the doc-contract test enforces the equality).
const (
	codeBadRequest       = "bad_request"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeConflict         = "conflict"
	codeTooLarge         = "too_large"
	codeQueueFull        = "queue_full"
	codeUnavailable      = "unavailable"
	codeInternal         = "internal"
)

// ErrorCodes lists every error code the service can emit.
func ErrorCodes() []string {
	return []string{
		codeBadRequest, codeNotFound, codeMethodNotAllowed, codeConflict,
		codeTooLarge, codeQueueFull, codeUnavailable, codeInternal,
	}
}

// routes wires the mux. Paths are registered method-less and dispatched
// inside the handlers so that wrong-method responses carry the same JSON
// envelope (plus an Allow header) as every other error.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/healthz", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleHealthz,
	}))
	s.mux.HandleFunc("/v1/readyz", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleReadyz,
	}))
	s.mux.HandleFunc("/v1/stats", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleStats,
	}))
	s.mux.HandleFunc("/v1/graphs", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.handleGraphUpload,
	}))
	s.mux.HandleFunc("/v1/graphs/{hash}", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleGraphInfo,
	}))
	s.mux.HandleFunc("/v1/jobs", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmit,
		http.MethodGet:  s.handleJobList,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}", s.methods(map[string]http.HandlerFunc{
		http.MethodGet:    s.handleJobGet,
		http.MethodDelete: s.handleJobCancel,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}/result", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobResult,
	}))
	s.mux.HandleFunc("/v1/jobs/{id}/events", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobEvents,
	}))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown route "+r.URL.Path)
	})
}

func (s *Server) methods(byMethod map[string]http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := byMethod[r.Method]; ok {
			h(w, r)
			return
		}
		allow := ""
		for m := range byMethod {
			if allow != "" {
				allow += ", "
			}
			allow += m
		}
		w.Header().Set("Allow", allow)
		writeErr(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Sprintf("%s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// writeErrLimit is writeErr with a machine-readable byte cap in the
// error object, so a client that tripped a size limit can read the
// server's actual configuration (-max-graph-bytes is deployment-
// specific) instead of parsing the message text.
func writeErrLimit(w http.ResponseWriter, status int, code, msg string, limit int64) {
	writeJSON(w, status, map[string]any{
		"error": map[string]any{"code": code, "message": msg, "limit_bytes": limit},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the daemon should receive traffic, and
// in what capacity. Degraded persistence still answers 200 — compute is
// unaffected, acks are just non-durable — with the state spelled out so
// an operator (or load balancer policy) can decide. Shutdown is 503.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		writeErr(w, http.StatusServiceUnavailable, codeUnavailable, "daemon is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"persistence": s.persistenceInfo(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	counts := map[State]int{}
	s.mu.Lock()
	for _, j := range s.order {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue":   map[string]int{"depth": len(s.queue), "capacity": cap(s.queue)},
		"workers": s.cfg.Workers,
		"jobs": map[string]int{
			"queued":    counts[StateQueued],
			"running":   counts[StateRunning],
			"done":      counts[StateDone],
			"failed":    counts[StateFailed],
			"cancelled": counts[StateCancelled],
		},
		"cache":       s.cache.stats(),
		"persistence": s.persistenceInfo(),
		"uptime_ms":   time.Since(s.started).Milliseconds(),
	})
}

// graphInfo is the response of POST /v1/graphs and GET /v1/graphs/{hash}.
type graphInfo struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Cached   bool   `json:"cached"`
	// Persistence is "degraded" when the upload was accepted but its
	// canonical bytes have not reached disk yet (retried on re-arm).
	Persistence string `json:"persistence,omitempty"`
}

func (s *Server) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxGraphBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErrLimit(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("graph upload exceeds %d bytes", s.cfg.MaxGraphBytes),
				s.cfg.MaxGraphBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, codeBadRequest, "reading body: "+err.Error())
		return
	}
	g, err := parseGraphBody(r.URL.Query().Get("format"), data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	canonical, hash, err := canonicalGraph(g)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	_, resident := s.cache.peek(hash)
	resident = resident || s.store.hasGraph(hash)
	s.cache.put(hash, g)
	info := graphInfo{
		Graph: hashPrefix + hash, Vertices: g.N(), Edges: g.M(), Cached: resident,
	}
	if err := s.store.saveGraph(hash, canonical); err != nil {
		// The graph is in the cache and fully usable; persistence failure
		// degrades (canonical bytes are kept for the re-arm flush) instead
		// of failing an upload whose parse succeeded.
		s.pmu.Lock()
		s.dirtyGraphs[hash] = canonical
		s.pmu.Unlock()
		s.persistFail(err)
		info.Persistence = "degraded"
	} else if s.store != nil {
		s.persistOK()
	}
	status := http.StatusCreated
	if resident {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// parseGraphBody dispatches on the upload format (docs/SERVICE.md): the
// three hardened readers of internal/graph.
func parseGraphBody(format string, data []byte) (*graph.Graph, error) {
	switch format {
	case "", "edgelist":
		return graph.ReadEdgeList(bytes.NewReader(data))
	case "metis":
		return graph.ReadMETIS(bytes.NewReader(data))
	case "json":
		return graph.UnmarshalGraph(data)
	default:
		return nil, fmt.Errorf("unknown format %q (want edgelist, metis, or json)", format)
	}
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	hash, err := parseGraphRef(r.PathValue("hash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	g, ok := s.cache.peek(hash)
	if !ok {
		if g, err = s.store.loadGraph(hash); err != nil {
			writeErr(w, http.StatusNotFound, codeNotFound, "unknown graph "+hashPrefix+hash)
			return
		}
		s.cache.put(hash, g)
	}
	writeJSON(w, http.StatusOK, graphInfo{
		Graph: hashPrefix + hash, Vertices: g.N(), Edges: g.M(), Cached: true,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeErr(w, http.StatusServiceUnavailable, codeUnavailable, "daemon is shutting down")
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, "job spec: "+err.Error())
		return
	}
	if spec.Starts == 0 {
		spec.Starts = 2
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Starts > s.cfg.MaxStarts {
		spec.Starts = s.cfg.MaxStarts
	}
	switch {
	case spec.Starts < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "starts must be positive")
		return
	case spec.TimeoutMS < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "timeout_ms must be non-negative")
		return
	case spec.Budget < 0:
		writeErr(w, http.StatusBadRequest, codeBadRequest, "budget must be non-negative")
		return
	}
	if _, err := core.New(spec.Algorithm); err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unknown algorithm %q (have %v)", spec.Algorithm, core.Names()))
		return
	}
	hash, err := parseGraphRef(spec.Graph)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	g, ok := s.cache.acquire(hash)
	if !ok {
		if g, err = s.store.loadGraph(hash); err != nil {
			writeErr(w, http.StatusNotFound, codeNotFound, "unknown graph "+spec.Graph)
			return
		}
		s.cache.put(hash, g)
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j-%06d-%s", s.seq, randomSuffix())
	j := newJob(id, s.seq, spec, g, time.Now().UnixMilli(), s.cfg.MaxEvents)
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()

	// Holding j.mu across the enqueue serializes the persisted "queued"
	// record with the worker's "running" transition (a worker that picks
	// the job up immediately blocks on j.mu until the record is written).
	j.mu.Lock()
	select {
	case s.queue <- j:
	default:
		j.mu.Unlock()
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("job queue is full (%d queued)", cap(s.queue)))
		return
	}
	rec := j.viewLocked(true)
	accepted := j.viewLocked(false) // snapshot now: a fast worker may flip the state before we respond
	j.mu.Unlock()
	if s.store != nil && !s.persistRecord(j, rec) {
		// The job is already queued and its compute is deterministic:
		// a failed record write must not fail the submission. The ack is
		// non-durable — flagged so the client knows a crash before the
		// store re-arms would lose it.
		accepted.Persistence = "degraded"
	}
	writeJSON(w, http.StatusAccepted, accepted)
}

func randomSuffix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job "+id)
	}
	return j, ok
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if q := r.URL.Query().Get("wait_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "wait_ms must be a non-negative integer")
			return
		}
		timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	res, ok := j.resultView()
	if !ok {
		writeErr(w, http.StatusConflict, codeConflict,
			fmt.Sprintf("job %s is %s, not done", j.id, j.view().State))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finishedMS = time.Now().UnixMilli()
		close(j.done)
		j.wake()
		rec := j.viewLocked(true)
		j.mu.Unlock()
		// A failed write degrades persistence; the cancellation itself
		// holds in memory either way.
		s.persistRecord(j, rec)
	case StateRunning:
		j.userCancel = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
	default: // terminal: idempotent no-op
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.view())
}
