package service

import (
	"net/http/httptest"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/kl"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// TestJobSpectralInitIdenticalResults pins the service registry flow for
// the spectral-initialized multilevel algorithm: an HTTP "mlkl+spec"
// job — serial and with -job-threads 4 — returns exactly the result of
// the equivalent library call on the same seed, because the worker's
// multi-start loop is stream-identical to core.BestOf and the spectral
// solver's sharded kernels are deterministic at every degree.
func TestJobSpectralInitIdenticalResults(t *testing.T) {
	savedC, savedM := coarsen.ParallelMinVertices, matching.ParallelMinVertices
	savedK, savedF := kl.ParallelMinVertices, fm.ParallelMinVertices
	savedKD, savedFD := kl.ParallelMinDegree, fm.ParallelMinDegree
	savedS := spectral.ParallelMinVertices
	coarsen.ParallelMinVertices, matching.ParallelMinVertices = 1, 1
	kl.ParallelMinVertices, fm.ParallelMinVertices = 1, 1
	kl.ParallelMinDegree, fm.ParallelMinDegree = 1, 1
	spectral.ParallelMinVertices = 1
	t.Cleanup(func() {
		coarsen.ParallelMinVertices, matching.ParallelMinVertices = savedC, savedM
		kl.ParallelMinVertices, fm.ParallelMinVertices = savedK, savedF
		kl.ParallelMinDegree, fm.ParallelMinDegree = savedKD, savedFD
		spectral.ParallelMinVertices = savedS
	})

	g := testGraph(t, 2000, 6.0, 33)

	// The library call the job must reproduce: the registry algorithm
	// under a sequential BestOf with a per-campaign workspace.
	base, err := core.New("mlkl+spec")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.BestOf{Inner: core.WithWorkspace(base), Starts: 2}.Bisect(g, rng.NewFib(77))
	if err != nil {
		t.Fatal(err)
	}

	run := func(ts *httptest.Server) resultBody {
		ref := uploadGraph(t, ts, g)
		id := submitJob(t, ts, map[string]any{
			"graph": ref, "algorithm": "mlkl+spec", "seed": 77, "starts": 2,
		})
		if v := waitTerminal(t, ts, id); v.State != StateDone {
			t.Fatalf("job ended %q: %s", v.State, v.Error)
		}
		return resultOf(t, ts, id)
	}

	_, serialTS := newTestServer(t, Config{Workers: 1})
	_, threadedTS := newTestServer(t, Config{Workers: 1, JobThreads: 4})
	for name, res := range map[string]resultBody{
		"serial":   run(serialTS),
		"threaded": run(threadedTS),
	} {
		if res.Cut != lib.Cut() {
			t.Fatalf("%s job cut %d != library cut %d", name, res.Cut, lib.Cut())
		}
		if len(res.Sides) != g.N() {
			t.Fatalf("%s job returned %d sides for %d vertices", name, len(res.Sides), g.N())
		}
		for v := range res.Sides {
			if int(res.Sides[v]) != int(lib.Side(int32(v))) {
				t.Fatalf("%s job side of vertex %d differs from the library call", name, v)
			}
		}
	}
}
