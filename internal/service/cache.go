package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/graph"
)

// hashPrefix is the wire form of a graph reference: "sha256:<64 hex>".
const hashPrefix = "sha256:"

// canonicalGraph serializes g to the canonical native edge-list form and
// returns (bytes, hex hash). Canonicalizing before hashing makes the
// hash format-independent: the same graph uploaded as edge-list, METIS,
// or JSON resolves to the same cache entry (docs/SERVICE.md "Graph
// cache and content hashes").
func canonicalGraph(g *graph.Graph) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// parseGraphRef validates a "sha256:<hex>" reference and returns the
// bare hex hash.
func parseGraphRef(ref string) (string, error) {
	hash, ok := strings.CutPrefix(ref, hashPrefix)
	if !ok || len(hash) != 2*sha256.Size {
		return "", fmt.Errorf("graph reference must be %q followed by %d hex digits", hashPrefix, 2*sha256.Size)
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return "", fmt.Errorf("graph reference is not hex: %v", err)
	}
	return hash, nil
}

// graphCache is a bounded LRU of parsed graphs keyed by content hash,
// so repeated jobs on the same instance skip parsing entirely. Hit and
// miss counters track job-submission resolutions (the numbers surfaced
// by GET /v1/stats); metadata peeks don't perturb them.
type graphCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	byHash    map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	hash string
	g    *graph.Graph
}

func newGraphCache(capacity int) *graphCache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &graphCache{capacity: capacity, ll: list.New(), byHash: make(map[string]*list.Element)}
}

// acquire resolves a hash for a job submission, counting a hit or miss.
func (c *graphCache) acquire(hash string) (*graph.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[hash]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).g, true
	}
	c.misses++
	return nil, false
}

// peek looks a graph up without touching the hit/miss counters or the
// LRU order (metadata queries, upload duplicate detection).
func (c *graphCache) peek(hash string) (*graph.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[hash]; ok {
		return el.Value.(*cacheEntry).g, true
	}
	return nil, false
}

// put inserts (or refreshes) an entry, evicting the least recently used
// beyond capacity.
func (c *graphCache) put(hash string, g *graph.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[hash]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.byHash[hash] = c.ll.PushFront(&cacheEntry{hash: hash, g: g})
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byHash, el.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

type cacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *graphCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries: c.ll.Len(), Capacity: c.capacity,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
