package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRestartRecovery pins docs/SERVICE.md "Persistence format": after a
// daemon restart on the same state directory, terminal jobs keep serving
// their full results without re-running, unfinished jobs (queued or
// running at shutdown) are re-queued and re-run to deterministic
// results, and persisted graphs remain resolvable.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 300, 4, 31)

	srv1, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	ref := uploadGraph(t, ts1, g)

	// A quick job runs to completion before the restart.
	idDone := submitJob(t, ts1, map[string]any{"graph": ref, "algorithm": "kl", "starts": 2, "seed": 6})
	if v := waitTerminal(t, ts1, idDone); v.State != StateDone {
		t.Fatalf("quick job ended %q (%s)", v.State, v.Error)
	}
	resBefore := resultOf(t, ts1, idDone)

	// A long job occupies the single worker; a budgeted job waits behind
	// it. Shutdown catches one running and one queued.
	idLong := submitJob(t, ts1, map[string]any{
		"graph": ref, "algorithm": "kl", "starts": 4096, "seed": 8, "timeout_ms": 2000,
	})
	for i := 0; ; i++ {
		var v jobView
		doJSON(t, http.MethodGet, ts1.URL+"/v1/jobs/"+idLong, nil, &v)
		if v.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatalf("long job never started (state %q)", v.State)
		}
		time.Sleep(time.Millisecond)
	}
	budgetSpec := map[string]any{"graph": ref, "algorithm": "ckl", "starts": 4096, "seed": 12, "budget": 64}
	idQueued := submitJob(t, ts1, budgetSpec)

	ts1.Close()
	srv1.Close() // interrupts the running job; both unfinished jobs persist as queued

	srv2, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	// The finished job survived with its full result, not a re-run: the
	// persisted record still carries the original completion time.
	var vDone jobView
	doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+idDone, nil, &vDone)
	if vDone.State != StateDone {
		t.Fatalf("finished job recovered as %q", vDone.State)
	}
	resAfter := resultOf(t, ts2, idDone)
	if resAfter.Cut != resBefore.Cut || len(resAfter.Sides) != len(resBefore.Sides) {
		t.Fatalf("recovered result diverged: cut %d vs %d", resAfter.Cut, resBefore.Cut)
	}
	for i := range resAfter.Sides {
		if resAfter.Sides[i] != resBefore.Sides[i] {
			t.Fatalf("recovered sides diverge at vertex %d", i)
		}
	}

	// The persisted graph is resolvable on the new instance.
	if resp := doJSON(t, http.MethodGet, ts2.URL+"/v1/graphs/"+ref, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered graph lookup: HTTP %d", resp.StatusCode)
	}

	// Both unfinished jobs re-ran to terminal states.
	vLong := waitTerminal(t, ts2, idLong)
	if vLong.State != StateDone {
		t.Fatalf("interrupted job re-ran to %q (%s)", vLong.State, vLong.Error)
	}
	vQueued := waitTerminal(t, ts2, idQueued)
	if vQueued.State != StateDone || vQueued.Result.Stopped != "budget" {
		t.Fatalf("queued job re-ran to %q stopped=%q (%s)", vQueued.State, stoppedOf(vQueued), vQueued.Error)
	}

	// Deterministic re-run: the recovered budgeted job equals a fresh
	// submission of the same spec.
	vFresh := waitTerminal(t, ts2, submitJob(t, ts2, budgetSpec))
	if vFresh.State != StateDone || vFresh.Result.Cut != vQueued.Result.Cut {
		t.Fatalf("re-run not deterministic: recovered cut %d, fresh cut %d",
			vQueued.Result.Cut, vFresh.Result.Cut)
	}
}

func stoppedOf(v jobView) string {
	if v.Result == nil {
		return "<no result>"
	}
	return v.Result.Stopped
}
