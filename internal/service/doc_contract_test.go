package service

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// docs/SERVICE.md is the authoritative API contract; these tests parse
// it and fail when the document and the implementation drift apart, in
// either direction.

func readServiceDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "SERVICE.md"))
	if err != nil {
		t.Fatalf("the contract document is missing: %v", err)
	}
	return string(data)
}

func diffSets(t *testing.T, kind string, documented, implemented []string) {
	t.Helper()
	sort.Strings(documented)
	sort.Strings(implemented)
	doc := map[string]bool{}
	for _, d := range documented {
		doc[d] = true
	}
	impl := map[string]bool{}
	for _, i := range implemented {
		impl[i] = true
	}
	for _, d := range documented {
		if !impl[d] {
			t.Errorf("docs/SERVICE.md documents %s %q that the daemon does not implement", kind, d)
		}
	}
	for _, i := range implemented {
		if !doc[i] {
			t.Errorf("daemon implements %s %q that docs/SERVICE.md does not document", kind, i)
		}
	}
}

// TestDocContractEndpoints: every endpoint heading in the document
// (### `METHOD /path`) is a route, and every route is documented.
func TestDocContractEndpoints(t *testing.T) {
	doc := readServiceDoc(t)
	re := regexp.MustCompile("(?m)^### `([A-Z]+) (/[^`]*)`\\s*$")
	var documented []string
	for _, m := range re.FindAllStringSubmatch(doc, -1) {
		documented = append(documented, m[1]+" "+m[2])
	}
	if len(documented) == 0 {
		t.Fatal("no endpoint headings found in docs/SERVICE.md")
	}
	diffSets(t, "endpoint", documented, Endpoints())
}

// TestDocContractErrorCodes: the error-code table rows (| `code` | NNN |)
// equal the codes the daemon can emit.
func TestDocContractErrorCodes(t *testing.T) {
	doc := readServiceDoc(t)
	re := regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\| ([0-9]{3}) \\|")
	var documented []string
	for _, m := range re.FindAllStringSubmatch(doc, -1) {
		documented = append(documented, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no error-code table rows found in docs/SERVICE.md")
	}
	diffSets(t, "error code", documented, ErrorCodes())
}
