package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/fsx"
	"repro/internal/graph"
	"repro/internal/rng"
)

// chaosSeed parameterizes the chaos harness fault schedule. CI runs the
// default; a failing run prints its seed, and
//
//	go test ./internal/service/ -run TestChaosSurvivesFaultsAndKills -chaos-seed <n>
//
// replays the exact same schedule locally (docs/ROBUSTNESS.md, "Fault
// injection and chaos testing").
var chaosSeed = flag.Uint64("chaos-seed", 1, "fault-schedule seed for the chaos harness")

// chaosJobsPerRound is the submission load per daemon incarnation.
const chaosJobsPerRound = 4

// chaosPlan is the fault schedule a chaos daemon runs under. PRename is
// deliberately zero: a failed quarantine rename during recovery is a
// hard refusal to start (correct — the daemon will not destroy
// evidence), which under a deterministic schedule would turn the run
// into a permanent crash loop. Rename faults are covered by the faultfs
// unit matrix instead. Warmup keeps the first few startup ops clean so
// every incarnation at least comes up.
func chaosPlan(seed uint64) faultfs.Plan {
	return faultfs.Plan{
		Seed:   seed,
		PWrite: 0.2,
		PSync:  0.15,
		PRead:  0.08,
		Warmup: 4,
	}
}

// TestChaosDaemonHelper is the victim daemon of
// TestChaosSurvivesFaultsAndKills: a real bisectd server on a real TCP
// port, its filesystem wrapped in a seeded fault injector, killed with
// SIGKILL by the parent. It only runs when re-executed with the chaos
// environment set.
func TestChaosDaemonHelper(t *testing.T) {
	if os.Getenv("BISECTD_CHAOS_HELPER") != "1" {
		t.Skip("helper process for TestChaosSurvivesFaultsAndKills")
	}
	state := os.Getenv("CHAOS_STATE")
	portFile := os.Getenv("CHAOS_PORT_FILE")
	var fseed uint64
	fmt.Sscanf(os.Getenv("CHAOS_FAULT_SEED"), "%d", &fseed)

	fs := fsx.OS
	if fseed != 0 {
		fs = faultfs.New(fsx.OS, chaosPlan(fseed))
	}
	srv, err := New(Config{
		StateDir:     state,
		Workers:      1,
		FS:           fs,
		PersistProbe: 25 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos helper: New: %v\n", err)
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos helper: listen: %v\n", err)
		os.Exit(3)
	}
	// The port file is the harness's own channel — written with the
	// plain OS filesystem, never under fault injection, and renamed into
	// place so the parent cannot read a partial address.
	tmp := portFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		os.Exit(3)
	}
	if err := os.Rename(tmp, portFile); err != nil {
		os.Exit(3)
	}
	// Serve until SIGKILL. No graceful shutdown, no signal handler: the
	// whole point is that the parent pulls the plug.
	http.Serve(ln, srv.Handler())
}

// chaosDaemon is one running incarnation of the victim.
type chaosDaemon struct {
	cmd    *exec.Cmd
	base   string // http://127.0.0.1:<port>
	stderr *bytes.Buffer
	exited chan error
}

// kill SIGKILLs the daemon and reaps it, then scans its stderr: a panic
// in any incarnation fails the chaos run outright.
func (d *chaosDaemon) kill(t *testing.T) {
	t.Helper()
	d.cmd.Process.Kill()
	<-d.exited
	if out := d.stderr.String(); strings.Contains(out, "panic:") {
		t.Fatalf("daemon panicked under chaos:\n%s", out)
	}
}

// startChaosDaemon launches the helper with the given fault seed and
// waits for it to come up (port file written, /v1/healthz answering).
func startChaosDaemon(t *testing.T, dir, state string, fseed uint64) *chaosDaemon {
	t.Helper()
	portFile := filepath.Join(dir, "port")
	os.Remove(portFile)
	cmd := exec.Command(os.Args[0], "-test.run=TestChaosDaemonHelper$")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Env = append(os.Environ(),
		"BISECTD_CHAOS_HELPER=1",
		"CHAOS_STATE="+state,
		"CHAOS_PORT_FILE="+portFile,
		fmt.Sprintf("CHAOS_FAULT_SEED=%d", fseed),
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &chaosDaemon{cmd: cmd, stderr: &stderr, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-d.exited:
			t.Fatalf("chaos daemon (fault seed %d) died during startup:\n%s", fseed, stderr.String())
		default:
		}
		if addr, err := os.ReadFile(portFile); err == nil && len(addr) > 0 {
			d.base = "http://" + string(addr)
			if resp, err := http.Get(d.base + "/v1/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return d
				}
			}
		}
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatalf("chaos daemon (fault seed %d) never became healthy:\n%s", fseed, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosUpload posts the canonical edge-list bytes and returns the
// content-hash ref. Accepts 200/201 with or without degraded
// persistence — an upload's compute side never fails for disk reasons.
func chaosUpload(t *testing.T, base string, elist []byte) string {
	t.Helper()
	var info struct {
		Graph string `json:"graph"`
	}
	resp := doJSON(t, http.MethodPost, base+"/v1/graphs", elist, &info)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos upload: HTTP %d", resp.StatusCode)
	}
	return info.Graph
}

// chaosAck is one accepted submission: what the daemon promised.
type chaosAck struct {
	id      string
	seed    uint64
	durable bool // ack carried no "degraded" flag: the record is on disk
}

// chaosRef is the fault-free reference result for one job seed.
type chaosRef struct {
	cut, imbalance int64
	sides          []uint8
}

// The chaos harness: drive load at a persisted daemon whose filesystem
// injects a seeded fault schedule, SIGKILL it mid-flight, restart,
// repeat — then audit every acknowledgment it ever issued. The contract
// (ISSUE: zero lost jobs, zero panics, zero silently-accepted corrupt
// records):
//
//   - every durably-acked job is, after the final restart, either done
//     with a result byte-identical to the fault-free run, failed with a
//     typed graph-lost error, or quarantined with its damaged bytes
//     preserved — never silently missing;
//   - degraded (non-durable) acks may be lost to a crash, but if they
//     survive they must carry the same byte-identical result;
//   - no daemon incarnation ever panics;
//   - every record left in jobs/ passes CRC verification.
func TestChaosSurvivesFaultsAndKills(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	dir := t.TempDir()
	state := filepath.Join(dir, "state")

	g := testGraph(t, 200, 4, 77)
	var elist bytes.Buffer
	if err := graph.WriteEdgeList(&elist, g); err != nil {
		t.Fatal(err)
	}

	// Fault-free reference: the worker loop is pinned to
	// core.BestOf{Inner, Starts} elsewhere (TestLifecycleMatchesBestOf);
	// here it is the ground truth every surviving job must match.
	inner, err := core.New("kl")
	if err != nil {
		t.Fatal(err)
	}
	reference := func(seed uint64) chaosRef {
		best, err := core.BestOf{Inner: inner, Starts: 2}.Bisect(g, rng.NewFib(seed))
		if err != nil {
			t.Fatalf("reference bisect: %v", err)
		}
		return chaosRef{cut: best.Cut(), imbalance: best.Imbalance(), sides: best.Sides()}
	}

	var acks []chaosAck
	const faultRounds = 3
	for round := 0; round < faultRounds; round++ {
		fseed := *chaosSeed*1000 + uint64(round) + 1
		d := startChaosDaemon(t, dir, state, fseed)
		// Re-upload every round: if a fault schedule or kill quarantined
		// the persisted graph, the identical bytes restore it in place
		// (content-hashed names make this safe).
		ref := chaosUpload(t, d.base, elist.Bytes())

		roundStart := len(acks)
		for i := 0; i < chaosJobsPerRound; i++ {
			jobSeed := 1000 + uint64(len(acks))
			body, _ := json.Marshal(map[string]any{
				"graph": ref, "algorithm": "kl", "starts": 2, "seed": jobSeed,
			})
			var v jobView
			resp := doJSON(t, http.MethodPost, d.base+"/v1/jobs", body, &v)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("round %d: submit: HTTP %d", round, resp.StatusCode)
			}
			acks = append(acks, chaosAck{id: v.ID, seed: jobSeed, durable: v.Persistence == ""})
		}

		// Let the single worker chew through at least half the round's
		// jobs, then pull the plug mid-flight.
		deadline := time.Now().Add(30 * time.Second)
		for done := 0; done < chaosJobsPerRound/2; {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: no progress before kill", round)
			}
			time.Sleep(2 * time.Millisecond)
			done = 0
			for _, a := range acks[roundStart:] {
				var v jobView
				doJSON(t, http.MethodGet, d.base+"/v1/jobs/"+a.id, nil, &v)
				if v.State == StateDone {
					done++
				}
			}
		}
		d.kill(t)
	}

	// Final incarnation: clean filesystem (fault seed 0), full audit.
	d := startChaosDaemon(t, dir, state, 0)
	defer d.kill(t)
	chaosUpload(t, d.base, elist.Bytes())

	var doneJobs, quarantined, lostDegraded, failedLost int
	for _, a := range acks {
		// Raw GET: a 404 body is an error envelope whose "error" object
		// does not decode into jobView's error string.
		resp, err := http.Get(d.base + "/v1/jobs/" + a.id)
		if err != nil {
			t.Fatalf("job %s: %v", a.id, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// Gone. Durable acks must leave quarantine evidence; a
			// degraded ack was an explicit "this may not survive a crash".
			matches, _ := filepath.Glob(filepath.Join(state, "quarantine", a.id+".json*"))
			switch {
			case len(matches) > 0:
				quarantined++
			case !a.durable:
				lostDegraded++
			default:
				t.Errorf("durably acked job %s vanished with no quarantine evidence", a.id)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("job %s: HTTP %d", a.id, resp.StatusCode)
			continue
		}
		// Recovered queued/running jobs re-run deterministically.
		final := waitTerminalURL(t, d.base, a.id)
		switch final.State {
		case StateDone:
			want := reference(a.seed)
			if final.Result == nil || final.Result.Cut != want.cut || final.Result.Imbalance != want.imbalance {
				t.Errorf("job %s diverged from fault-free run: got %+v, want cut=%d imbalance=%d",
					a.id, final.Result, want.cut, want.imbalance)
				continue
			}
			res := resultOfURL(t, d.base, a.id)
			if len(res.Sides) != len(want.sides) {
				t.Errorf("job %s: %d sides, want %d", a.id, len(res.Sides), len(want.sides))
				continue
			}
			for i, s := range want.sides {
				if res.Sides[i] != int(s) {
					t.Errorf("job %s: sides diverge at vertex %d", a.id, i)
					break
				}
			}
			doneJobs++
		case StateFailed:
			// The only legitimate failure is a graph lost to corruption
			// before this round's re-upload restored it.
			if !strings.Contains(final.Error, "lost") {
				t.Errorf("job %s failed with untyped error %q", a.id, final.Error)
			}
			failedLost++
		default:
			t.Errorf("job %s stuck in state %q after clean restart", a.id, final.State)
		}
	}
	if doneJobs == 0 {
		t.Fatal("chaos run completed zero jobs — the harness exercised nothing")
	}
	if doneJobs+quarantined+lostDegraded+failedLost != len(acks) {
		t.Errorf("accounting broken: %d done + %d quarantined + %d lost-degraded + %d failed-lost != %d acks",
			doneJobs, quarantined, lostDegraded, failedLost, len(acks))
	}

	// Zero silently-accepted corrupt records: everything still sitting in
	// jobs/ must verify. (Torn writes never commit — the atomic-rename
	// protocol aborts them — and corrupt reads quarantine, so an
	// unverifiable record here means the daemon accepted damaged bytes.)
	entries, err := os.ReadDir(filepath.Join(state, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(state, "jobs", name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fsx.SplitCRC(path, data); err != nil {
			t.Errorf("record %s fails CRC after chaos run: %v", name, err)
		}
	}
	t.Logf("chaos seed %d: %d acks → %d done-identical, %d quarantined, %d lost-degraded, %d failed-lost",
		*chaosSeed, len(acks), doneJobs, quarantined, lostDegraded, failedLost)
}

// waitTerminalURL is waitTerminal against a raw base URL.
func waitTerminalURL(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id+"?wait_ms=2000", nil, &v)
		if v.State.terminal() {
			return v
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobView{}
}

// chaosResult is the subset of the /result body the audit compares.
type chaosResult struct {
	Cut   int64 `json:"cut"`
	Sides []int `json:"sides"`
}

func resultOfURL(t *testing.T, base, id string) chaosResult {
	t.Helper()
	var res chaosResult
	resp := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id+"/result", nil, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	return res
}
