package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/fsx"
)

// readyz fetches /v1/readyz and returns the decoded body.
func readyz(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	var body map[string]any
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil, &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: HTTP %d", resp.StatusCode)
	}
	return body
}

func persistenceState(t *testing.T, body map[string]any) string {
	t.Helper()
	p, ok := body["persistence"].(map[string]any)
	if !ok {
		t.Fatalf("readyz body has no persistence object: %v", body)
	}
	state, _ := p["state"].(string)
	return state
}

// Without a state directory, persistence reports disabled.
func TestReadyzDisabledPersistence(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if got := persistenceState(t, readyz(t, ts)); got != "disabled" {
		t.Fatalf("persistence state = %q, want disabled", got)
	}
}

// A write failure must not fail a submission whose compute is queued:
// the ack is 202 with persistence "degraded", readyz flips to degraded,
// the job still completes and serves its result from memory, and once
// the filesystem heals (probe re-arm) the record is flushed to disk so
// a restart can still see it.
func TestDegradedModeServing(t *testing.T) {
	dir := t.TempDir()
	// Every write faults when armed; SetDisabled is the health toggle.
	ffs := faultfs.New(fsx.OS, faultfs.Plan{Seed: 3, PWrite: 1})
	ffs.SetDisabled(true) // healthy to start
	_, ts := newTestServer(t, Config{
		StateDir: dir, Workers: 1, FS: ffs, PersistProbe: 20 * time.Millisecond,
	})
	g := testGraph(t, 200, 4, 9)
	ref := uploadGraph(t, ts, g)
	if got := persistenceState(t, readyz(t, ts)); got != "ok" {
		t.Fatalf("healthy daemon reports %q", got)
	}

	// Break the filesystem completely, then submit.
	ffs.SetDisabled(false)
	body, _ := json.Marshal(map[string]any{"graph": ref, "algorithm": "kl", "starts": 2, "seed": 5})
	var v jobView
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &v)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit under write failure: HTTP %d, want 202", resp.StatusCode)
	}
	if v.Persistence != "degraded" {
		t.Fatalf("accepted view persistence = %q, want degraded", v.Persistence)
	}
	if got := persistenceState(t, readyz(t, ts)); got != "degraded" {
		t.Fatalf("readyz after failure reports %q, want degraded", got)
	}

	// Compute is unaffected: the job completes and serves a result.
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("job under degraded persistence ended %q (%s)", final.State, final.Error)
	}
	res := resultOf(t, ts, v.ID)
	if res.Cut <= 0 || len(res.Sides) != g.N() {
		t.Fatalf("degraded-mode result implausible: cut=%d sides=%d", res.Cut, len(res.Sides))
	}
	// The record never reached disk.
	if _, err := os.Stat(filepath.Join(dir, "jobs", v.ID+".json")); !os.IsNotExist(err) {
		t.Fatalf("record on disk despite total write failure: %v", err)
	}

	// Heal the filesystem; the probe must re-arm and flush the record.
	ffs.SetDisabled(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if persistenceState(t, readyz(t, ts)) == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never re-armed persistence")
		}
		time.Sleep(10 * time.Millisecond)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", v.ID+".json"))
	if err != nil {
		t.Fatalf("record not flushed after re-arm: %v", err)
	}
	payload, err := fsx.SplitCRC("rec", data)
	if err != nil {
		t.Fatalf("flushed record fails CRC: %v", err)
	}
	var rec jobView
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateDone || rec.Result == nil || rec.Result.Cut != res.Cut {
		t.Fatalf("flushed record %+v does not match served result", rec)
	}
	// The flushed job sheds its degraded flag.
	var after jobView
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID, nil, &after)
	if after.Persistence != "" {
		t.Fatalf("job still flagged %q after flush", after.Persistence)
	}
}

// A corrupted job record on disk must quarantine on restart: recovery
// proceeds without it, readyz reports the quarantined count, and the
// other records still load.
func TestCorruptRecordQuarantineOnRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 200, 4, 11)

	srv1, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	ref := uploadGraph(t, ts1, g)
	idA := submitJob(t, ts1, map[string]any{"graph": ref, "algorithm": "kl", "starts": 2, "seed": 5})
	idB := submitJob(t, ts1, map[string]any{"graph": ref, "algorithm": "kl", "starts": 2, "seed": 6})
	for _, id := range []string{idA, idB} {
		if v := waitTerminal(t, ts1, id); v.State != StateDone {
			t.Fatalf("job %s ended %q", id, v.State)
		}
	}
	ts1.Close()
	srv1.Close()

	// Corrupt job A's record: flip one payload byte, leave B intact.
	pathA := filepath.Join(dir, "jobs", idA+".json")
	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(pathA, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("restart over corrupt record failed: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	// A is gone from the daemon (quarantined), B survived intact.
	wantErr(t, http.MethodGet, ts2.URL+"/v1/jobs/"+idA, nil, http.StatusNotFound, codeNotFound)
	var vB jobView
	doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+idB, nil, &vB)
	if vB.State != StateDone {
		t.Fatalf("intact record recovered as %q", vB.State)
	}
	// The damaged bytes are preserved as evidence.
	qpath := filepath.Join(dir, "quarantine", idA+".json")
	qdata, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantined record missing: %v", err)
	}
	if string(qdata) != string(data) {
		t.Fatal("quarantined bytes differ from the corrupted record")
	}
	if _, err := os.Stat(pathA); !os.IsNotExist(err) {
		t.Fatal("corrupt record still in jobs/ after quarantine")
	}
	body := readyz(t, ts2)
	p := body["persistence"].(map[string]any)
	if q, _ := p["quarantined"].(float64); q != 1 {
		t.Fatalf("readyz quarantined = %v, want 1", p["quarantined"])
	}
}

// A corrupted graph file fails dependent recovered jobs with a typed
// "graph lost" error instead of crashing recovery, and a re-upload of
// the same graph (same hash) restores service.
func TestCorruptGraphQuarantineOnRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 200, 4, 13)

	srv1, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	ref := uploadGraph(t, ts1, g)
	// Leave a queued job behind by filling the single worker then closing.
	idLong := submitJob(t, ts1, map[string]any{"graph": ref, "algorithm": "kl", "starts": 4096, "seed": 8})
	ts1.Close()
	srv1.Close()

	// Corrupt the persisted graph bytes.
	hash := strings.TrimPrefix(ref, "sha256:")
	gpath := filepath.Join(dir, "graphs", hash+".el")
	data, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(gpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("restart over corrupt graph failed: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	var v jobView
	doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+idLong, nil, &v)
	if v.State != StateFailed || !strings.Contains(v.Error, "lost") {
		t.Fatalf("job over corrupt graph: state %q error %q, want failed/lost", v.State, v.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", hash+".el")); err != nil {
		t.Fatalf("corrupt graph not quarantined: %v", err)
	}

	// Re-upload restores the graph under the same hash; new jobs work.
	ref2 := uploadGraph(t, ts2, g)
	if ref2 != ref {
		t.Fatalf("re-upload hash changed: %s vs %s", ref2, ref)
	}
	id := submitJob(t, ts2, map[string]any{"graph": ref, "algorithm": "kl", "starts": 2, "seed": 5})
	if v := waitTerminal(t, ts2, id); v.State != StateDone {
		t.Fatalf("post-restore job ended %q (%s)", v.State, v.Error)
	}
}
