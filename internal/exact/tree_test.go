package exact

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTreeBisectionWidthKnownTrees(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"P2", mustGraph(gen.Path(2)), 1},
		{"P8", mustGraph(gen.Path(8)), 1},
		{"P100", mustGraph(gen.Path(100)), 1},
		// Star on 8 vertices: the 4 leaves opposite the center are cut.
		{"star8", star(8), 4},
		// Heap-shaped trees whose root edge splits them exactly in half.
		{"btree254", mustGraph(gen.CompleteBinaryTree(254)), 1},
		{"btree1022", mustGraph(gen.CompleteBinaryTree(1022)), 1},
		{"btree2046", mustGraph(gen.CompleteBinaryTree(2046)), 1},
		// Two disjoint paths of equal length: cut 0.
		{"2paths", twoPaths(10), 0},
		// Edgeless forest.
		{"isolated", graph.NewBuilder(6).MustBuild(), 0},
	}
	for _, tc := range cases {
		got, side, err := TreeBisectionWidth(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: width %d, want %d", tc.name, got, tc.want)
		}
		if err := VerifyBisection(tc.g, side, got); err != nil {
			t.Errorf("%s: witness: %v", tc.name, err)
		}
	}
}

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.MustBuild()
}

func twoPaths(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := 0; i+1 < k; i++ {
		b.AddEdge(int32(i), int32(i+1))
		b.AddEdge(int32(k+i), int32(k+i+1))
	}
	return b.MustBuild()
}

// randomForest builds a random forest on n vertices: each vertex v > 0
// attaches to a random earlier vertex with probability attach.
func randomForest(n int, attach float64, r *rng.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if r.Float64() < attach {
			b.AddEdge(int32(v), int32(r.Intn(v)))
		}
	}
	return b.MustBuild()
}

func TestTreeBisectionWidthMatchesBruteForce(t *testing.T) {
	r := rng.NewFib(17)
	for trial := 0; trial < 60; trial++ {
		n := 2 * (2 + r.Intn(7)) // 4..16 vertices
		g := randomForest(n, 0.8, r)
		fast, side, err := TreeBisectionWidth(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		slow, _, err := BisectionWidth(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d): tree DP %d != brute force %d", trial, n, fast, slow)
		}
		if err := VerifyBisection(g, side, fast); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTreeBisectionWidthCaterpillars(t *testing.T) {
	r := rng.NewFib(23)
	for _, tc := range []struct{ spine, legs int }{{4, 1}, {5, 3}, {10, 1}} {
		g, err := gen.Caterpillar(tc.spine, tc.legs)
		if err != nil {
			t.Fatal(err)
		}
		if g.N()%2 != 0 {
			continue
		}
		fast, _, err := TreeBisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() <= MaxBruteForceVertices {
			slow, _, err := BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("caterpillar(%d,%d): %d != %d", tc.spine, tc.legs, fast, slow)
			}
		}
	}
	_ = r
}

func TestTreeBisectionWidthErrors(t *testing.T) {
	if _, _, err := TreeBisectionWidth(mustGraph(gen.Path(5))); err == nil {
		t.Fatal("odd n accepted")
	}
	if _, _, err := TreeBisectionWidth(mustGraph(gen.Cycle(6))); err == nil {
		t.Fatal("cycle accepted")
	}
	// Forest edge count but with a cycle: C3 + isolated vertex has m=3 = n-1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	if _, _, err := TreeBisectionWidth(b.MustBuild()); err == nil {
		t.Fatal("triangle+isolated accepted as forest")
	}
	w, side, err := TreeBisectionWidth(graph.NewBuilder(0).MustBuild())
	if err != nil || w != 0 || len(side) != 0 {
		t.Fatalf("empty: %d %v %v", w, side, err)
	}
}

func TestTreeBisectionWidthLargeTree(t *testing.T) {
	// 4094-node complete binary tree: optimal 1, computed in O(n²).
	g := mustGraph(gen.CompleteBinaryTree(4094))
	w, side, err := TreeBisectionWidth(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("width %d, want 1", w)
	}
	if err := VerifyBisection(g, side, w); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeBisectionWidth1022(b *testing.B) {
	g := mustGraph(gen.CompleteBinaryTree(1022))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TreeBisectionWidth(g); err != nil {
			b.Fatal(err)
		}
	}
}
