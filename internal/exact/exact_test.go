package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestBisectionWidthKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"C6", mustGraph(gen.Cycle(6)), 2},
		{"C12", mustGraph(gen.Cycle(12)), 2},
		{"P8", mustGraph(gen.Path(8)), 1},
		{"K4", mustGraph(gen.Complete(4)), 4},              // 2x2 split: 2*2 = 4 edges
		{"K6", mustGraph(gen.Complete(6)), 9},              // 3x3 split: 3*3
		{"K33", mustGraph(gen.CompleteBipartite(3, 3)), 5}, // best balanced split of K_{3,3}
		{"Grid4x4", mustGraph(gen.Grid(4, 4)), 4},
		{"Ladder8", mustGraph(gen.Ladder(8)), 2},
		{"Q3", mustGraph(gen.Hypercube(3)), 4},
		{"2K3", mustGraph(gen.CycleCollection([]int{3, 3})), 0},
		{"empty4", graph.NewBuilder(4).MustBuild(), 0},
	}
	for _, tc := range cases {
		got, side, err := BisectionWidth(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: width %d, want %d", tc.name, got, tc.want)
		}
		if err := VerifyBisection(tc.g, side, got); err != nil {
			t.Errorf("%s: witness invalid: %v", tc.name, err)
		}
	}
}

func TestBisectionWidthEmptyAndErrors(t *testing.T) {
	w, side, err := BisectionWidth(graph.NewBuilder(0).MustBuild())
	if err != nil || w != 0 || len(side) != 0 {
		t.Fatalf("empty graph: %d %v %v", w, side, err)
	}
	if _, _, err := BisectionWidth(mustGraph(gen.Path(5))); err == nil {
		t.Fatal("odd vertex count accepted")
	}
	if _, _, err := BisectionWidth(mustGraph(gen.Cycle(30))); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestBisectionWidthIsLowerBoundForAnyBalancedPartition(t *testing.T) {
	// Property: no random balanced assignment beats the exact optimum.
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (2 + r.Intn(5)) // 4..12 vertices
		g, err := gen.GNP(n, 0.4, r)
		if err != nil {
			return false
		}
		opt, _, err := BisectionWidth(g)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			b := partition.NewRandom(g, r)
			if b.Cut() < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyBisectionErrors(t *testing.T) {
	g := mustGraph(gen.Cycle(4))
	if err := VerifyBisection(g, []uint8{0, 0}, 0); err == nil {
		t.Fatal("short side accepted")
	}
	if err := VerifyBisection(g, []uint8{0, 0, 0, 1}, 2); err == nil {
		t.Fatal("unbalanced accepted")
	}
	if err := VerifyBisection(g, []uint8{0, 0, 1, 1}, 99); err == nil {
		t.Fatal("wrong cut accepted")
	}
	if err := VerifyBisection(g, []uint8{0, 0, 1, 2}, 2); err == nil {
		t.Fatal("bad side value accepted")
	}
}

func TestIsCycleCollection(t *testing.T) {
	if !IsCycleCollection(mustGraph(gen.Cycle(5))) {
		t.Fatal("cycle not recognized")
	}
	if !IsCycleCollection(mustGraph(gen.CycleCollection([]int{3, 4}))) {
		t.Fatal("collection not recognized")
	}
	if IsCycleCollection(mustGraph(gen.Path(4))) {
		t.Fatal("path recognized as cycles")
	}
	if IsCycleCollection(graph.NewBuilder(0).MustBuild()) {
		t.Fatal("empty graph recognized as cycles")
	}
}

func TestCycleCollectionWidth(t *testing.T) {
	cases := []struct {
		sizes []int
		want  int64
	}{
		{[]int{6}, 2},          // single cycle must be split
		{[]int{3, 3}, 0},       // halves are whole cycles
		{[]int{4, 4}, 0},       //
		{[]int{3, 5}, 2},       // 8 vertices, no subset sums to 4
		{[]int{3, 4, 5}, 2},    // half=6 not a subset sum of {3,4,5}
		{[]int{4, 6}, 2},       // half=5 unreachable
		{[]int{3, 3, 4, 4}, 0}, // half=7 = 3+4
	}
	for _, tc := range cases {
		g := mustGraph(gen.CycleCollection(tc.sizes))
		got, err := CycleCollectionWidth(g)
		if err != nil {
			t.Fatalf("%v: %v", tc.sizes, err)
		}
		// Cross-check small instances against brute force.
		if g.N() <= 16 {
			bf, _, err := BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			if bf != got {
				t.Fatalf("%v: cycle solver %d != brute force %d", tc.sizes, got, bf)
			}
		}
		if got != tc.want && g.N() > 16 {
			t.Errorf("%v: width %d, want %d", tc.sizes, got, tc.want)
		}
	}
}

func TestCycleCollectionWidthErrors(t *testing.T) {
	if _, err := CycleCollectionWidth(mustGraph(gen.Path(4))); err == nil {
		t.Fatal("non-2-regular accepted")
	}
	if _, err := CycleCollectionWidth(mustGraph(gen.Cycle(5))); err == nil {
		t.Fatal("odd vertex count accepted")
	}
}

func TestCycleCollectionWidthMatchesBruteForceRandomized(t *testing.T) {
	// Random small collections, checked against brute force.
	r := rng.NewFib(6)
	for trial := 0; trial < 30; trial++ {
		var sizes []int
		total := 0
		for total < 8 || total%2 != 0 {
			s := 3 + r.Intn(5)
			sizes = append(sizes, s)
			total += s
			if total > 14 {
				sizes = nil
				total = 0
			}
		}
		g := mustGraph(gen.CycleCollection(sizes))
		fast, err := CycleCollectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		slow, _, err := BisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("sizes %v: fast %d != slow %d", sizes, fast, slow)
		}
	}
}
