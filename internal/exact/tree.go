package exact

import (
	"fmt"

	"repro/internal/graph"
)

// treeJoin records one child-join step of the tree DP for witness
// reconstruction: from[s] packs the decision that produced dp[v][s]
// after joining child (bit 62 = child on the same side; low bits = the
// child's own dp index k and the parent's previous index s).
type treeJoin struct {
	child int32
	from  []int64
}

const (
	treeSameSideBit = int64(1) << 62
	treeFieldMask   = int64(1)<<31 - 1
)

func packJoin(sameSide bool, childK, prevS int) int64 {
	v := int64(childK)<<31 | int64(prevS)
	if sameSide {
		v |= treeSameSideBit
	}
	return v
}

func unpackJoin(v int64) (sameSide bool, childK, prevS int) {
	return v&treeSameSideBit != 0, int((v >> 31) & treeFieldMask), int(v & treeFieldMask)
}

// TreeBisectionWidth computes the exact minimum bisection width of a
// forest (acyclic graph) in O(n²) time via the classical tree knapsack
// DP, together with a witness side assignment.
//
// For each vertex v, dp[v][s] is the minimum number of cut edges within
// v's subtree given that exactly s of the subtree's vertices lie on v's
// own side. Joining a child c either keeps the edge (child root on v's
// side: s+k vertices on v's side) or cuts it (cost +1; the child's k
// same-side-as-c vertices land on the opposite side, contributing
// size(c)−k to v's side). Component roots are combined by a final
// knapsack in which each component may be globally flipped for free.
//
// The evaluation uses this to verify optimality of the heuristics' cuts
// on the binary-tree tables at sizes far beyond the brute-force solver.
func TreeBisectionWidth(g *graph.Graph) (int64, []uint8, error) {
	n := g.N()
	if n == 0 {
		return 0, []uint8{}, nil
	}
	if n%2 != 0 {
		return 0, nil, fmt.Errorf("exact: odd vertex count %d", n)
	}
	if g.M() >= n {
		return 0, nil, fmt.Errorf("exact: graph with %d edges on %d vertices is not a forest", g.M(), n)
	}
	if _, comps := g.Components(); comps != n-g.M() {
		return 0, nil, fmt.Errorf("exact: graph is not a forest")
	}

	const inf = int64(1) << 60
	half := n / 2

	// Rooted orientation + post-order, per component.
	parent := make([]int32, n)
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	var roots []int32
	for s := int32(0); int(s) < n; s++ {
		if visited[s] {
			continue
		}
		roots = append(roots, s)
		parent[s] = -1
		stack := []int32{s}
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for _, e := range g.Neighbors(v) {
				if !visited[e.To] {
					visited[e.To] = true
					parent[e.To] = v
					stack = append(stack, e.To)
				}
			}
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	dp := make([][]int64, n)
	size := make([]int, n)
	joins := make([][]treeJoin, n)

	for _, v := range order {
		dp[v] = []int64{inf, 0}
		size[v] = 1
		for _, e := range g.Neighbors(v) {
			c := e.To
			if parent[c] != v || c == v {
				continue
			}
			ns := size[v] + size[c]
			next := make([]int64, ns+1)
			from := make([]int64, ns+1)
			for i := range next {
				next[i] = inf
				from[i] = -1
			}
			for s := 1; s <= size[v]; s++ {
				if dp[v][s] >= inf {
					continue
				}
				for k := 1; k <= size[c]; k++ {
					if dp[c][k] >= inf {
						continue
					}
					if cost := dp[v][s] + dp[c][k]; cost < next[s+k] {
						next[s+k] = cost
						from[s+k] = packJoin(true, k, s)
					}
					if cost := dp[v][s] + dp[c][k] + 1; cost < next[s+size[c]-k] {
						next[s+size[c]-k] = cost
						from[s+size[c]-k] = packJoin(false, k, s)
					}
				}
			}
			dp[v] = next
			size[v] += size[c]
			joins[v] = append(joins[v], treeJoin{child: c, from: from})
		}
	}

	// Knapsack over component roots: taking s side-0 vertices from the
	// component of root rt costs dp[rt][s] with the root on side 0, or
	// dp[rt][size−s] with the root on side 1.
	type rootChoice struct {
		s        int
		rootSide uint8
		k        int
	}
	total := 0
	acc := []int64{0}
	choices := make([][]rootChoice, len(roots))
	for ri, rt := range roots {
		nt := total + size[rt]
		next := make([]int64, nt+1)
		ch := make([]rootChoice, nt+1)
		for i := range next {
			next[i] = inf
		}
		for t := 0; t <= total; t++ {
			if acc[t] >= inf {
				continue
			}
			for s := 0; s <= size[rt]; s++ {
				if s >= 1 && s < len(dp[rt]) && dp[rt][s] < inf {
					if cost := acc[t] + dp[rt][s]; cost < next[t+s] {
						next[t+s] = cost
						ch[t+s] = rootChoice{s: s, rootSide: 0, k: s}
					}
				}
				if k := size[rt] - s; k >= 1 && dp[rt][k] < inf {
					if cost := acc[t] + dp[rt][k]; cost < next[t+s] {
						next[t+s] = cost
						ch[t+s] = rootChoice{s: s, rootSide: 1, k: k}
					}
				}
			}
		}
		acc = next
		choices[ri] = ch
		total = nt
	}
	if acc[half] >= inf {
		return 0, nil, fmt.Errorf("exact: internal error: no feasible bisection found")
	}

	// Reconstruct.
	side := make([]uint8, n)
	t := half
	rootK := make([]int, len(roots))
	rootSide := make([]uint8, len(roots))
	for ri := len(roots) - 1; ri >= 0; ri-- {
		ch := choices[ri][t]
		rootK[ri] = ch.k
		rootSide[ri] = ch.rootSide
		t -= ch.s
	}
	for ri, rt := range roots {
		assignSubtree(joins, rt, rootK[ri], rootSide[ri], side)
	}

	cut := acc[half]
	if err := VerifyBisection(g, side, cut); err != nil {
		return 0, nil, fmt.Errorf("exact: witness reconstruction failed: %v", err)
	}
	return cut, side, nil
}

// assignSubtree reconstructs v's subtree assignment given that k subtree
// vertices share v's side vSide.
func assignSubtree(joins [][]treeJoin, v int32, k int, vSide uint8, side []uint8) {
	side[v] = vSide
	type frame struct {
		child    int32
		childK   int
		sameSide bool
	}
	frames := make([]frame, 0, len(joins[v]))
	s := k
	for ji := len(joins[v]) - 1; ji >= 0; ji-- {
		j := joins[v][ji]
		packed := j.from[s]
		if packed < 0 {
			panic("exact: broken tree DP reconstruction")
		}
		sameSide, ck, ps := unpackJoin(packed)
		frames = append(frames, frame{child: j.child, childK: ck, sameSide: sameSide})
		s = ps
	}
	for _, f := range frames {
		cs := vSide
		if !f.sameSide {
			cs = 1 - vSide
		}
		assignSubtree(joins, f.child, f.childK, cs, side)
	}
}
