// Package exact provides exact minimum-bisection solvers used to validate
// the heuristics:
//
//   - BisectionWidth: branch-and-bound exhaustive search, feasible up to
//     roughly 28 vertices;
//   - CycleCollectionWidth: the O(n²) exact algorithm for disjoint unions
//     of cycles (every 2-regular graph), the degree-2 case the paper
//     notes "one could solve exactly in time O(n²)".
package exact

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// MaxBruteForceVertices bounds BisectionWidth's exhaustive search.
const MaxBruteForceVertices = 28

// BisectionWidth computes the exact minimum bisection width of g and a
// witness side assignment. The graph must have an even number of
// vertices, at most MaxBruteForceVertices. Vertex weights must be uniform
// (the notion of "equal halves" used is vertex count, as in the paper).
func BisectionWidth(g *graph.Graph) (int64, []uint8, error) {
	n := g.N()
	if n%2 != 0 {
		return 0, nil, fmt.Errorf("exact: graph has odd vertex count %d", n)
	}
	if n > MaxBruteForceVertices {
		return 0, nil, fmt.Errorf("exact: %d vertices exceeds brute-force limit %d", n, MaxBruteForceVertices)
	}
	if n == 0 {
		return 0, []uint8{}, nil
	}
	s := &bbState{
		g:    g,
		side: make([]uint8, n),
		best: int64(1) << 62,
	}
	// Fix vertex 0 on side 0 to kill the mirror symmetry.
	s.side[0] = 0
	s.assign(1, 1, 0, 0)
	if s.bestSide == nil {
		return 0, nil, fmt.Errorf("exact: search failed (internal error)")
	}
	return s.best, s.bestSide, nil
}

type bbState struct {
	g        *graph.Graph
	side     []uint8
	best     int64
	bestSide []uint8
}

// assign places vertex v given n0/n1 vertices already on each side and
// partial cut weight over edges with both endpoints assigned.
func (s *bbState) assign(v int, n0, n1 int, cut int64) {
	n := s.g.N()
	half := n / 2
	if cut >= s.best {
		return // bound: partial cut only grows
	}
	if v == n {
		s.best = cut
		s.bestSide = append([]uint8(nil), s.side...)
		return
	}
	// Feasibility: each side must be able to reach exactly half.
	rem := n - v
	for _, sd := range [2]uint8{0, 1} {
		cnt := n0
		if sd == 1 {
			cnt = n1
		}
		if cnt >= half {
			continue // side full
		}
		// The other side must still be fillable.
		other := n1
		if sd == 1 {
			other = n0
		}
		if other+rem-1 < half {
			continue
		}
		s.side[v] = sd
		add := int64(0)
		for _, e := range s.g.Neighbors(int32(v)) {
			if int(e.To) < v && s.side[e.To] != sd {
				add += int64(e.W)
			}
		}
		if sd == 0 {
			s.assign(v+1, n0+1, n1, cut+add)
		} else {
			s.assign(v+1, n0, n1+1, cut+add)
		}
	}
}

// VerifyBisection checks that side is a balanced bisection of g with the
// claimed cut.
func VerifyBisection(g *graph.Graph, side []uint8, cut int64) error {
	if len(side) != g.N() {
		return fmt.Errorf("exact: side length %d != %d vertices", len(side), g.N())
	}
	n0 := 0
	for _, s := range side {
		if s > 1 {
			return fmt.Errorf("exact: invalid side value %d", s)
		}
		if s == 0 {
			n0++
		}
	}
	if n0*2 != g.N() {
		return fmt.Errorf("exact: unbalanced sides %d/%d", n0, g.N()-n0)
	}
	if got := partition.CutOf(g, side); got != cut {
		return fmt.Errorf("exact: claimed cut %d, actual %d", cut, got)
	}
	return nil
}
