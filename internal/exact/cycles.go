package exact

import (
	"fmt"

	"repro/internal/graph"
)

// IsCycleCollection reports whether g is a disjoint union of simple
// cycles, i.e. 2-regular. (Under the 𝒢breg model every degree-2 graph has
// this form, as Section VI of the paper observes.)
func IsCycleCollection(g *graph.Graph) bool {
	return g.N() > 0 && g.IsRegular(2)
}

// CycleCollectionWidth computes the exact bisection width of a disjoint
// union of cycles in O(n·#cycles) ⊆ O(n²) time:
//
//   - 0 if some subset of whole cycles has total size exactly n/2
//     (subset-sum over the cycle sizes);
//   - 2 otherwise: take a maximal non-overshooting subset of whole
//     cycles; the deficit r is positive and smaller than some unused
//     cycle, so cutting an r-vertex arc out of that cycle costs exactly 2
//     edges (and no bisection of a 2-regular graph can cut exactly 1
//     edge, since every cut of a cycle has even size).
//
// The graph must be 2-regular with an even vertex count.
func CycleCollectionWidth(g *graph.Graph) (int64, error) {
	if !IsCycleCollection(g) {
		return 0, fmt.Errorf("exact: graph is not a disjoint union of cycles")
	}
	if g.N()%2 != 0 {
		return 0, fmt.Errorf("exact: odd vertex count %d", g.N())
	}
	sizes := g.ComponentSizes()
	half := g.N() / 2
	// Subset-sum DP over cycle sizes.
	reach := make([]bool, half+1)
	reach[0] = true
	for _, s := range sizes {
		for t := half; t >= s; t-- {
			if reach[t-s] {
				reach[t] = true
			}
		}
	}
	if reach[half] {
		return 0, nil
	}
	return 2, nil
}
