// Package stats provides the small summary-statistics toolkit used by the
// experiment harness, including the paper's two derived columns: relative
// cut improvement and relative speed-up from compaction.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// MeanInt64 returns the mean of an integer sample (0 for empty).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Improvement returns the paper's relative improvement column,
// (base − improved)/base × 100 (percent). A zero base with a zero
// improved value is 0% (no room, no loss); a zero base with a positive
// improved value is reported as −inf-like −100·improved, clamped: we
// return −100 to flag regression without dividing by zero.
func Improvement(base, improved float64) float64 {
	if base == 0 {
		if improved == 0 {
			return 0
		}
		return -100
	}
	return (base - improved) / base * 100
}

// SpeedUp returns the paper's relative speed-up column,
// (t_without − t_with)/t_without × 100 (percent); positive means the
// compacted variant was faster.
func SpeedUp(without, with float64) float64 { return Improvement(without, with) }

// FormatPct renders a percentage with one decimal, e.g. "93.8".
func FormatPct(p float64) string { return fmt.Sprintf("%.1f", p) }
