package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almostEq(s.Mean, 2.5) || !almostEq(s.Min, 1) || !almostEq(s.Max, 4) || !almostEq(s.Median, 2.5) {
		t.Fatalf("summary %+v", s)
	}
	// Sample stddev of 1,2,3,4 = sqrt(5/3).
	if !almostEq(s.StdDev, math.Sqrt(5.0/3.0)) {
		t.Fatalf("stddev %v", s.StdDev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if !almostEq(s.Median, 3) {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummarizePropertyBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return len(xs) == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanInt64(t *testing.T) {
	if MeanInt64(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := MeanInt64([]int64{2, 4, 9}); !almostEq(got, 5) {
		t.Fatalf("mean %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 10); !almostEq(got, 90) {
		t.Fatalf("improvement %v", got)
	}
	if got := Improvement(10, 10); !almostEq(got, 0) {
		t.Fatalf("no-change improvement %v", got)
	}
	if got := Improvement(10, 20); !almostEq(got, -100) {
		t.Fatalf("regression improvement %v", got)
	}
	if got := Improvement(0, 0); got != 0 {
		t.Fatalf("0/0 improvement %v", got)
	}
	if got := Improvement(0, 5); got != -100 {
		t.Fatalf("zero-base regression %v", got)
	}
}

func TestSpeedUp(t *testing.T) {
	// Paper definition: (t_without − t_with)/t_without × 100.
	if got := SpeedUp(10, 2.5); !almostEq(got, 75) {
		t.Fatalf("speedup %v", got)
	}
	if got := SpeedUp(4, 8); !almostEq(got, -100) {
		t.Fatalf("slowdown %v", got)
	}
}

func TestFormatPct(t *testing.T) {
	if FormatPct(93.75) != "93.8" {
		t.Fatalf("FormatPct: %q", FormatPct(93.75))
	}
}
