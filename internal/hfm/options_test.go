package hfm

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

func randomNetlist(t *testing.T, cells, nets int, seed uint64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomOptions{
		Cells: cells, Nets: nets, MaxPins: 5, MaxArea: 3, Locality: 0.5,
	}, rng.NewFib(seed))
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestRefineWorkspaceInvariance pins the workspace contract: runs with a
// shared (and cross-netlist reused) workspace produce bit-identical
// results to workspace-less runs.
func TestRefineWorkspaceInvariance(t *testing.T) {
	nlA := randomNetlist(t, 300, 450, 21)
	nlB := randomNetlist(t, 200, 260, 22)
	w := NewWorkspace()
	for i, nl := range []*netlist.Netlist{nlA, nlB, nlA} {
		bare, err := Bisect(nl, Options{}, rng.NewFib(31))
		if err != nil {
			t.Fatal(err)
		}
		reused, err := Bisect(nl, Options{Workspace: w}, rng.NewFib(31))
		if err != nil {
			t.Fatal(err)
		}
		if bare.CutNets != reused.CutNets || bare.Passes != reused.Passes || bare.Moves != reused.Moves {
			t.Fatalf("run %d: workspace result %+v != bare %+v", i, reused, bare)
		}
		for c := range bare.Sides {
			if bare.Sides[c] != reused.Sides[c] {
				t.Fatalf("run %d: cell %d side differs with workspace", i, c)
			}
		}
	}
}

// TestRefineTrace checks the pass_done/run_done stream: one pass_done per
// pass with the post-pass cut-net count, and a final run_done matching
// the returned result.
func TestRefineTrace(t *testing.T) {
	nl := randomNetlist(t, 300, 450, 23)
	rec := trace.NewRecorder(0)
	res, err := Bisect(nl, Options{Observer: rec}, rng.NewFib(33))
	if err != nil {
		t.Fatal(err)
	}
	passes, runs := 0, 0
	for _, e := range rec.Events() {
		switch e.Type {
		case trace.TypePassDone:
			passes++
			if e.Algo != "hfm" || e.Index != passes {
				t.Fatalf("bad pass_done: %+v", e)
			}
		case trace.TypeRunDone:
			runs++
			if e.Cut != int64(res.CutNets) || e.Index != res.Passes || e.Moves != res.Moves {
				t.Fatalf("run_done %+v disagrees with result %+v", e, res)
			}
		}
	}
	if passes != res.Passes {
		t.Fatalf("%d pass_done events, result says %d passes", passes, res.Passes)
	}
	if runs != 1 {
		t.Fatalf("%d run_done events, want 1", runs)
	}

	// Observers must not perturb the run.
	plain, err := Bisect(nl, Options{}, rng.NewFib(33))
	if err != nil {
		t.Fatal(err)
	}
	if plain.CutNets != res.CutNets || plain.Moves != res.Moves {
		t.Fatalf("observed run %+v != unobserved %+v", res, plain)
	}
}

// TestRefineControl exercises cooperative truncation: a budget of one
// checkpoint poll allows exactly one pass (the second poll fires), and
// the truncated result is valid with the stop sentinel attached.
func TestRefineControl(t *testing.T) {
	nl := randomNetlist(t, 300, 450, 25)
	sides := make([]uint8, nl.NumCells())
	for i := range sides {
		sides[i] = uint8(i & 1)
	}
	start := append([]uint8(nil), sides...)

	full, err := Refine(nl, append([]uint8(nil), start...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Passes < 2 {
		t.Fatalf("fixture converges in %d passes — need ≥ 2 for the truncation to bite", full.Passes)
	}

	res, err := Refine(nl, sides, Options{Control: runctl.WithBudget(1)})
	if !runctl.IsStop(err) {
		t.Fatalf("want stop sentinel, got %v", err)
	}
	if res.Passes != 1 {
		t.Fatalf("budget 1 should allow exactly one pass, ran %d", res.Passes)
	}
	// Passes never worsen the cut, so the one-pass truncation sits at or
	// above the full run's cut.
	if res.CutNets < full.CutNets {
		t.Fatalf("one-pass cut %d below full-run cut %d — passes should only improve", res.CutNets, full.CutNets)
	}
}
