// Package hfm implements Fiduccia–Mattheyses bisection natively on
// hypergraphs (netlists), minimizing the number of cut nets — the metric
// VLSI placement actually optimizes and the original setting of the
// 1982 FM paper. The graph algorithms in this repository approximate net
// cuts through clique/star expansion; hfm optimizes them directly, and
// the two are compared in the examples.
//
// The implementation uses the classical machinery: per-net side counts,
// the O(1) gain-update rules on critical nets, bucket gain lists, and
// best-prefix rollback under an area-balance constraint.
package hfm

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Options configures the algorithm.
type Options struct {
	// MaxPasses caps the number of passes; 0 = run to a fixpoint (with a
	// safety cap).
	MaxPasses int
	// MaxImbalance is the largest allowed |area(0) − area(1)| of a kept
	// prefix; 0 means the largest cell area.
	MaxImbalance int64
	// Workspace, when non-nil, supplies reusable solver storage (pin
	// lists, net side counts, gain buckets) so repeated runs over the
	// same netlist allocate only the Result. Results are identical with
	// or without one.
	Workspace *Workspace
	// Observer receives one pass_done event per FM pass (cut nets, kept
	// moves) and a final run_done. Nil means no tracing, at zero cost.
	Observer trace.Observer
	// Control is polled once per pass. When it fires, Refine stops
	// where it stands and returns the valid best-prefix result so far
	// together with the stop sentinel; test with runctl.IsStop.
	Control *runctl.Control
}

const safetyPassCap = 1000

// Result reports the outcome of a run.
type Result struct {
	Sides   []uint8
	CutNets int
	Passes  int
	Moves   int
}

// Workspace holds the solver's reusable storage: the netlist-derived
// topology (pin lists, areas), the per-run side/count state, and the two
// gain-bucket structures that Refine previously allocated every pass.
// A workspace caches the topology of the last netlist it saw, so a
// multi-start campaign over one netlist rebuilds nothing but the side
// state. The zero value is ready to use; pass it via Options.Workspace.
type Workspace struct {
	st      state
	buckets [2]partition.GainBuckets
	moved   []int32
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// state is the mutable pass state. Its storage lives in (and is reused
// through) the owning Workspace.
type state struct {
	w        *Workspace
	nl       *netlist.Netlist
	pins     [][]int32 // cell -> incident net ids
	nets     []netlist.Net
	side     []uint8
	cnt      [][2]int32 // net -> cells per side
	areas    []int64
	sideArea [2]int64
	total    int64
	maxArea  int64
}

// newState binds a fresh workspace — the ephemeral path and the unit
// tests' entry into the pass state.
func newState(nl *netlist.Netlist, sides []uint8) (*state, error) {
	return NewWorkspace().bind(nl, sides)
}

// bind prepares the workspace's state for a run over nl from sides.
// Topology (pins, areas) is rebuilt only when nl differs from the
// cached netlist; the per-run side assignment and net counts are reset
// every call.
func (w *Workspace) bind(nl *netlist.Netlist, sides []uint8) (*state, error) {
	cells := nl.NumCells()
	if len(sides) != cells {
		return nil, fmt.Errorf("hfm: side assignment covers %d of %d cells", len(sides), cells)
	}
	s := &w.st
	s.w = w
	if s.nl != nl {
		s.nl = nl
		s.nets = nl.Nets()
		s.pins = make([][]int32, cells)
		s.areas = make([]int64, cells)
		s.total, s.maxArea = 0, 0
		for i, c := range nl.Cells() {
			s.areas[i] = int64(c.Area)
			s.total += int64(c.Area)
			if int64(c.Area) > s.maxArea {
				s.maxArea = int64(c.Area)
			}
		}
		for ni, net := range s.nets {
			for _, c := range net.Cells {
				s.pins[c] = append(s.pins[c], int32(ni))
			}
		}
	}
	if cap(s.side) < cells {
		s.side = make([]uint8, cells)
	}
	s.side = s.side[:cells]
	copy(s.side, sides)
	if cap(s.cnt) < nl.NumNets() {
		s.cnt = make([][2]int32, nl.NumNets())
	}
	s.cnt = s.cnt[:nl.NumNets()]
	for i := range s.cnt {
		s.cnt[i] = [2]int32{}
	}
	s.sideArea = [2]int64{}
	for i, sd := range s.side {
		if sd > 1 {
			return nil, fmt.Errorf("hfm: cell %d on side %d", i, sd)
		}
		s.sideArea[sd] += s.areas[i]
	}
	for ni, net := range s.nets {
		for _, c := range net.Cells {
			s.cnt[ni][s.side[c]]++
		}
	}
	return s, nil
}

// cutNets counts nets with cells on both sides.
func (s *state) cutNets() int {
	cut := 0
	for _, c := range s.cnt {
		if c[0] > 0 && c[1] > 0 {
			cut++
		}
	}
	return cut
}

// gain returns the FM gain of cell c: nets uncut by the move minus nets
// newly cut.
func (s *state) gain(c int32) int64 {
	f := s.side[c]
	t := 1 - f
	var g int64
	for _, ni := range s.pins[c] {
		if s.cnt[ni][f] == 1 {
			g++ // c is the last cell on its side: the net becomes uncut
		}
		if s.cnt[ni][t] == 0 {
			g-- // the net was internal: the move cuts it
		}
	}
	return g
}

// Refine improves sides in place and returns the result. The initial
// assignment's balance is preserved up to the tolerance (or repaired
// toward it when possible). When Options.Control fires mid-run the
// result so far is returned together with the stop sentinel
// (runctl.IsStop); any other error invalidates the result.
func Refine(nl *netlist.Netlist, sides []uint8, opts Options) (Result, error) {
	w := opts.Workspace
	if w == nil {
		w = NewWorkspace()
	}
	s, err := w.bind(nl, sides)
	if err != nil {
		return Result{}, err
	}
	limit := opts.MaxPasses
	if limit <= 0 {
		limit = safetyPassCap
	}
	res := Result{}
	var stopErr error
	prevCut := int64(0)
	if opts.Observer != nil {
		prevCut = int64(s.cutNets())
	}
	for p := 0; p < limit; p++ {
		if err := opts.Control.Check(); err != nil {
			stopErr = err
			break
		}
		moves, err := s.pass(opts)
		if err != nil {
			return res, err
		}
		res.Passes++
		res.Moves += moves
		if opts.Observer != nil {
			cut := int64(s.cutNets())
			opts.Observer.Observe(trace.Event{
				Type: trace.TypePassDone, Algo: "hfm", Index: res.Passes,
				Cut: cut, BestCut: cut, Gain: prevCut - cut, Moves: moves,
			})
			prevCut = cut
		}
		if moves == 0 {
			break
		}
	}
	copy(sides, s.side)
	res.Sides = append([]uint8(nil), s.side...)
	res.CutNets = s.cutNets()
	if opts.Observer != nil {
		opts.Observer.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "hfm", Index: res.Passes,
			Cut: int64(res.CutNets), BestCut: int64(res.CutNets), Moves: res.Moves,
		})
	}
	return res, stopErr
}

// Bisect partitions the netlist from a random area-balanced start.
func Bisect(nl *netlist.Netlist, opts Options, r *rng.Rand) (Result, error) {
	cells := nl.NumCells()
	sides := make([]uint8, cells)
	var area [2]int64
	for _, ci := range r.Perm(cells) {
		sd := uint8(0)
		if area[1] < area[0] {
			sd = 1
		} else if area[0] == area[1] && r.Bool() {
			sd = 1
		}
		sides[ci] = sd
		area[sd] += int64(nl.Cells()[ci].Area)
	}
	return Refine(nl, sides, opts)
}

// pass runs one FM pass; returns the number of kept moves.
func (s *state) pass(opts Options) (int, error) {
	cells := s.nl.NumCells()
	if cells == 0 {
		return 0, nil
	}
	finalTol := opts.MaxImbalance
	if finalTol <= 0 {
		finalTol = s.maxArea
	}
	moveTol := 2 * s.maxArea
	if finalTol > moveTol {
		moveTol = finalTol
	}
	imb := func() int64 {
		d := s.sideArea[0] - s.sideArea[1]
		if d < 0 {
			return -d
		}
		return d
	}
	if start := imb(); start > moveTol {
		moveTol = start
	}

	var maxGain int64
	for c := int32(0); int(c) < cells; c++ {
		if g := int64(len(s.pins[c])); g > maxGain {
			maxGain = g
		}
	}
	var buckets [2]*partition.GainBuckets
	for sd := 0; sd < 2; sd++ {
		if err := s.w.buckets[sd].Reset(cells, maxGain); err != nil {
			return 0, err
		}
		buckets[sd] = &s.w.buckets[sd]
	}
	for c := int32(0); int(c) < cells; c++ {
		buckets[s.side[c]].Add(c, s.gain(c))
	}

	if cap(s.w.moved) < cells {
		s.w.moved = make([]int32, 0, cells)
	}
	moved := s.w.moved[:0]
	var cum, bestCum int64
	bestK := 0
	bestImb := imb()

	for step := 0; step < cells; step++ {
		c := s.selectMove(buckets, moveTol)
		if c < 0 {
			break
		}
		g := buckets[s.side[c]].GainOf(c)
		buckets[s.side[c]].Remove(c)
		s.move(c, buckets)
		moved = append(moved, c)
		cum += g
		cur := imb()
		better := false
		switch {
		case cur <= finalTol && bestImb > finalTol:
			better = true
		case cur <= finalTol && bestImb <= finalTol:
			better = cum > bestCum
		default:
			better = cur < bestImb || (cur == bestImb && cum > bestCum)
		}
		if better {
			bestCum, bestImb, bestK = cum, cur, len(moved)
		}
	}
	// Roll back (no gain maintenance needed; the pass is over).
	var none [2]*partition.GainBuckets
	for i := len(moved) - 1; i >= bestK; i-- {
		s.move(moved[i], none)
	}
	return bestK, nil
}

// selectMove picks the best admissible free cell.
func (s *state) selectMove(buckets [2]*partition.GainBuckets, tol int64) int32 {
	d := s.sideArea[0] - s.sideArea[1]
	best := int32(-1)
	var bestG int64
	for sd := 0; sd < 2; sd++ {
		buckets[sd].Descending(func(c int32, g int64) bool {
			if best >= 0 && g <= bestG {
				return false
			}
			a := s.areas[c]
			nd := d
			if s.side[c] == 0 {
				nd -= 2 * a
			} else {
				nd += 2 * a
			}
			abs, nabs := d, nd
			if abs < 0 {
				abs = -abs
			}
			if nabs < 0 {
				nabs = -nabs
			}
			if nabs <= tol || nabs < abs {
				best, bestG = c, g
				return false
			}
			return true
		})
	}
	return best
}

// move flips cell c, updating net counts, side areas, and (when buckets
// is non-nil) the gains of free cells on critical nets using the
// classical FM update rules.
func (s *state) move(c int32, buckets [2]*partition.GainBuckets) {
	f := s.side[c]
	t := 1 - f
	adjust := func(cell int32, delta int64) {
		if cell == c {
			return
		}
		if b := buckets[s.side[cell]]; b != nil && b.Contains(cell) {
			b.Update(cell, b.GainOf(cell)+delta)
		}
	}
	for _, ni := range s.pins[c] {
		net := s.nets[ni].Cells
		// Before-move critical checks on the To side.
		switch s.cnt[ni][t] {
		case 0:
			for _, d := range net {
				adjust(d, +1)
			}
		case 1:
			for _, d := range net {
				if s.side[d] == t {
					adjust(d, -1)
				}
			}
		}
		s.cnt[ni][f]--
		s.cnt[ni][t]++
		// After-move critical checks on the From side.
		switch s.cnt[ni][f] {
		case 0:
			for _, d := range net {
				adjust(d, -1)
			}
		case 1:
			for _, d := range net {
				if s.side[d] == f {
					adjust(d, +1)
				}
			}
		}
	}
	s.side[c] = t
	s.sideArea[f] -= s.areas[c]
	s.sideArea[t] += s.areas[c]
}
