// Package hfm implements Fiduccia–Mattheyses bisection natively on
// hypergraphs (netlists), minimizing the number of cut nets — the metric
// VLSI placement actually optimizes and the original setting of the
// 1982 FM paper. The graph algorithms in this repository approximate net
// cuts through clique/star expansion; hfm optimizes them directly, and
// the two are compared in the examples.
//
// The implementation uses the classical machinery: per-net side counts,
// the O(1) gain-update rules on critical nets, bucket gain lists, and
// best-prefix rollback under an area-balance constraint.
package hfm

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Options configures the algorithm.
type Options struct {
	// MaxPasses caps the number of passes; 0 = run to a fixpoint (with a
	// safety cap).
	MaxPasses int
	// MaxImbalance is the largest allowed |area(0) − area(1)| of a kept
	// prefix; 0 means the largest cell area.
	MaxImbalance int64
}

const safetyPassCap = 1000

// Result reports the outcome of a run.
type Result struct {
	Sides   []uint8
	CutNets int
	Passes  int
	Moves   int
}

// state is the mutable pass state.
type state struct {
	nl       *netlist.Netlist
	pins     [][]int32 // cell -> incident net ids
	nets     []netlist.Net
	side     []uint8
	cnt      [][2]int32 // net -> cells per side
	areas    []int64
	sideArea [2]int64
	total    int64
	maxArea  int64
}

func newState(nl *netlist.Netlist, sides []uint8) (*state, error) {
	cells := nl.NumCells()
	if len(sides) != cells {
		return nil, fmt.Errorf("hfm: side assignment covers %d of %d cells", len(sides), cells)
	}
	s := &state{
		nl:    nl,
		pins:  make([][]int32, cells),
		nets:  nl.Nets(),
		side:  append([]uint8(nil), sides...),
		cnt:   make([][2]int32, nl.NumNets()),
		areas: make([]int64, cells),
	}
	for i, c := range nl.Cells() {
		s.areas[i] = int64(c.Area)
		s.total += int64(c.Area)
		if int64(c.Area) > s.maxArea {
			s.maxArea = int64(c.Area)
		}
	}
	for i, sd := range s.side {
		if sd > 1 {
			return nil, fmt.Errorf("hfm: cell %d on side %d", i, sd)
		}
		s.sideArea[sd] += s.areas[i]
	}
	for ni, net := range s.nets {
		for _, c := range net.Cells {
			s.pins[c] = append(s.pins[c], int32(ni))
			s.cnt[ni][s.side[c]]++
		}
	}
	return s, nil
}

// cutNets counts nets with cells on both sides.
func (s *state) cutNets() int {
	cut := 0
	for _, c := range s.cnt {
		if c[0] > 0 && c[1] > 0 {
			cut++
		}
	}
	return cut
}

// gain returns the FM gain of cell c: nets uncut by the move minus nets
// newly cut.
func (s *state) gain(c int32) int64 {
	f := s.side[c]
	t := 1 - f
	var g int64
	for _, ni := range s.pins[c] {
		if s.cnt[ni][f] == 1 {
			g++ // c is the last cell on its side: the net becomes uncut
		}
		if s.cnt[ni][t] == 0 {
			g-- // the net was internal: the move cuts it
		}
	}
	return g
}

// Refine improves sides in place and returns the result. The initial
// assignment's balance is preserved up to the tolerance (or repaired
// toward it when possible).
func Refine(nl *netlist.Netlist, sides []uint8, opts Options) (Result, error) {
	s, err := newState(nl, sides)
	if err != nil {
		return Result{}, err
	}
	limit := opts.MaxPasses
	if limit <= 0 {
		limit = safetyPassCap
	}
	res := Result{}
	for p := 0; p < limit; p++ {
		moves, err := s.pass(opts)
		if err != nil {
			return res, err
		}
		res.Passes++
		res.Moves += moves
		if moves == 0 {
			break
		}
	}
	copy(sides, s.side)
	res.Sides = append([]uint8(nil), s.side...)
	res.CutNets = s.cutNets()
	return res, nil
}

// Bisect partitions the netlist from a random area-balanced start.
func Bisect(nl *netlist.Netlist, opts Options, r *rng.Rand) (Result, error) {
	cells := nl.NumCells()
	sides := make([]uint8, cells)
	var area [2]int64
	for _, ci := range r.Perm(cells) {
		sd := uint8(0)
		if area[1] < area[0] {
			sd = 1
		} else if area[0] == area[1] && r.Bool() {
			sd = 1
		}
		sides[ci] = sd
		area[sd] += int64(nl.Cells()[ci].Area)
	}
	return Refine(nl, sides, opts)
}

// pass runs one FM pass; returns the number of kept moves.
func (s *state) pass(opts Options) (int, error) {
	cells := s.nl.NumCells()
	if cells == 0 {
		return 0, nil
	}
	finalTol := opts.MaxImbalance
	if finalTol <= 0 {
		finalTol = s.maxArea
	}
	moveTol := 2 * s.maxArea
	if finalTol > moveTol {
		moveTol = finalTol
	}
	imb := func() int64 {
		d := s.sideArea[0] - s.sideArea[1]
		if d < 0 {
			return -d
		}
		return d
	}
	if start := imb(); start > moveTol {
		moveTol = start
	}

	var maxGain int64
	for c := int32(0); int(c) < cells; c++ {
		if g := int64(len(s.pins[c])); g > maxGain {
			maxGain = g
		}
	}
	var buckets [2]*partition.GainBuckets
	var err error
	for sd := 0; sd < 2; sd++ {
		buckets[sd], err = partition.NewGainBuckets(cells, maxGain)
		if err != nil {
			return 0, err
		}
	}
	for c := int32(0); int(c) < cells; c++ {
		buckets[s.side[c]].Add(c, s.gain(c))
	}

	moved := make([]int32, 0, cells)
	var cum, bestCum int64
	bestK := 0
	bestImb := imb()

	for step := 0; step < cells; step++ {
		c := s.selectMove(buckets, moveTol)
		if c < 0 {
			break
		}
		g := buckets[s.side[c]].GainOf(c)
		buckets[s.side[c]].Remove(c)
		s.move(c, buckets)
		moved = append(moved, c)
		cum += g
		cur := imb()
		better := false
		switch {
		case cur <= finalTol && bestImb > finalTol:
			better = true
		case cur <= finalTol && bestImb <= finalTol:
			better = cum > bestCum
		default:
			better = cur < bestImb || (cur == bestImb && cum > bestCum)
		}
		if better {
			bestCum, bestImb, bestK = cum, cur, len(moved)
		}
	}
	// Roll back (no gain maintenance needed; the pass is over).
	var none [2]*partition.GainBuckets
	for i := len(moved) - 1; i >= bestK; i-- {
		s.move(moved[i], none)
	}
	return bestK, nil
}

// selectMove picks the best admissible free cell.
func (s *state) selectMove(buckets [2]*partition.GainBuckets, tol int64) int32 {
	d := s.sideArea[0] - s.sideArea[1]
	best := int32(-1)
	var bestG int64
	for sd := 0; sd < 2; sd++ {
		buckets[sd].Descending(func(c int32, g int64) bool {
			if best >= 0 && g <= bestG {
				return false
			}
			a := s.areas[c]
			nd := d
			if s.side[c] == 0 {
				nd -= 2 * a
			} else {
				nd += 2 * a
			}
			abs, nabs := d, nd
			if abs < 0 {
				abs = -abs
			}
			if nabs < 0 {
				nabs = -nabs
			}
			if nabs <= tol || nabs < abs {
				best, bestG = c, g
				return false
			}
			return true
		})
	}
	return best
}

// move flips cell c, updating net counts, side areas, and (when buckets
// is non-nil) the gains of free cells on critical nets using the
// classical FM update rules.
func (s *state) move(c int32, buckets [2]*partition.GainBuckets) {
	f := s.side[c]
	t := 1 - f
	adjust := func(cell int32, delta int64) {
		if cell == c {
			return
		}
		if b := buckets[s.side[cell]]; b != nil && b.Contains(cell) {
			b.Update(cell, b.GainOf(cell)+delta)
		}
	}
	for _, ni := range s.pins[c] {
		net := s.nets[ni].Cells
		// Before-move critical checks on the To side.
		switch s.cnt[ni][t] {
		case 0:
			for _, d := range net {
				adjust(d, +1)
			}
		case 1:
			for _, d := range net {
				if s.side[d] == t {
					adjust(d, -1)
				}
			}
		}
		s.cnt[ni][f]--
		s.cnt[ni][t]++
		// After-move critical checks on the From side.
		switch s.cnt[ni][f] {
		case 0:
			for _, d := range net {
				adjust(d, -1)
			}
		case 1:
			for _, d := range net {
				if s.side[d] == f {
					adjust(d, +1)
				}
			}
		}
	}
	s.side[c] = t
	s.sideArea[f] -= s.areas[c]
	s.sideArea[t] += s.areas[c]
}
