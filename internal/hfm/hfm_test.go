package hfm

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/rng"
)

// chainNetlist builds cells c0..c(n-1) joined by 2-pin chain nets.
func chainNetlist(t testing.TB, n int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New()
	for i := 0; i < n; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if err := nl.AddNet(fmt.Sprintf("n%d", i), fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return nl
}

// clusteredNetlist builds two 6-cell cliques of 3-pin nets joined by one
// bridging net; the optimal bisection cuts exactly that net.
func clusteredNetlist(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New()
	for i := 0; i < 12; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	id := 0
	add := func(cells ...string) {
		id++
		if err := nl.AddNet(fmt.Sprintf("n%d", id), cells...); err != nil {
			t.Fatal(err)
		}
	}
	for base := 0; base < 12; base += 6 {
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				add(fmt.Sprintf("c%d", base+i), fmt.Sprintf("c%d", base+j))
			}
		}
	}
	add("c0", "c6") // bridge
	return nl
}

func TestBisectChain(t *testing.T) {
	nl := chainNetlist(t, 16)
	res, err := Bisect(nl, Options{}, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	// A chain's optimal bisection cuts one net.
	if res.CutNets != 1 {
		t.Fatalf("chain cut nets %d, want 1", res.CutNets)
	}
	// Cross-check against the netlist's own metric.
	got, err := nl.CutNets(res.Sides)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.CutNets {
		t.Fatalf("reported %d != recomputed %d", res.CutNets, got)
	}
	// Balance.
	n0 := 0
	for _, s := range res.Sides {
		if s == 0 {
			n0++
		}
	}
	if n0 != 8 {
		t.Fatalf("sides %d/%d", n0, 16-n0)
	}
}

func TestBisectClusters(t *testing.T) {
	nl := clusteredNetlist(t)
	best := 1 << 30
	r := rng.NewFib(2)
	for trial := 0; trial < 4; trial++ {
		res, err := Bisect(nl, Options{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutNets < best {
			best = res.CutNets
		}
	}
	if best != 1 {
		t.Fatalf("clustered netlist best cut %d, want 1 (the bridge)", best)
	}
}

func TestRefinePreservesBalanceTolerance(t *testing.T) {
	nl := chainNetlist(t, 20)
	sides := make([]uint8, 20)
	for i := 10; i < 20; i++ {
		sides[i] = 1
	}
	res, err := Refine(nl, sides, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var a [2]int64
	for i, s := range res.Sides {
		a[s] += int64(nl.Cells()[i].Area)
	}
	d := a[0] - a[1]
	if d < 0 {
		d = -d
	}
	if d > 1 {
		t.Fatalf("imbalance %d", d)
	}
}

func TestRefineRejectsBadInput(t *testing.T) {
	nl := chainNetlist(t, 4)
	if _, err := Refine(nl, []uint8{0, 1}, Options{}); err == nil {
		t.Fatal("short sides accepted")
	}
	if _, err := Refine(nl, []uint8{0, 1, 2, 0}, Options{}); err == nil {
		t.Fatal("side 2 accepted")
	}
}

func TestEmptyNetlist(t *testing.T) {
	nl := netlist.New()
	res, err := Bisect(nl, Options{}, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != 0 {
		t.Fatal("empty netlist cut")
	}
}

func TestMultiPinNetGainSemantics(t *testing.T) {
	// One 4-pin net with 3 cells on side 0 and 1 on side 1:
	// moving the lone side-1 cell uncuts the net (gain +1);
	// moving a side-0 cell changes nothing (gain 0).
	nl := netlist.New()
	for i := 0; i < 4; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := nl.AddNet("n", "c0", "c1", "c2", "c3"); err != nil {
		t.Fatal(err)
	}
	s, err := newState(nl, []uint8{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g := s.gain(3); g != 1 {
		t.Fatalf("lone-cell gain %d, want 1", g)
	}
	if g := s.gain(0); g != 0 {
		t.Fatalf("majority-cell gain %d, want 0", g)
	}
	// All four on one side: moving any cuts the net.
	s2, err := newState(nl, []uint8{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g := s2.gain(0); g != -1 {
		t.Fatalf("internal-net gain %d, want -1", g)
	}
}

func TestIncrementalGainsMatchRecompute(t *testing.T) {
	// Property: after arbitrary moves with bucket maintenance, stored
	// gains equal from-scratch gains.
	r := rng.NewFib(7)
	for trial := 0; trial < 30; trial++ {
		nl := netlist.New()
		cells := 6 + r.Intn(10)
		for i := 0; i < cells; i++ {
			if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
				t.Fatal(err)
			}
		}
		nets := 4 + r.Intn(12)
		for n := 0; n < nets; n++ {
			k := 2 + r.Intn(3)
			perm := r.Perm(cells)
			names := make([]string, k)
			for i := 0; i < k; i++ {
				names[i] = fmt.Sprintf("c%d", perm[i])
			}
			if err := nl.AddNet(fmt.Sprintf("n%d", n), names...); err != nil {
				t.Fatal(err)
			}
		}
		sides := make([]uint8, cells)
		for i := range sides {
			if r.Bool() {
				sides[i] = 1
			}
		}
		s, err := newState(nl, sides)
		if err != nil {
			t.Fatal(err)
		}
		var buckets [2]*partition.GainBuckets
		maxPins := int64(0)
		for c := 0; c < cells; c++ {
			if int64(len(s.pins[c])) > maxPins {
				maxPins = int64(len(s.pins[c]))
			}
		}
		for sd := 0; sd < 2; sd++ {
			buckets[sd], err = partition.NewGainBuckets(cells, maxPins)
			if err != nil {
				t.Fatal(err)
			}
		}
		for c := int32(0); int(c) < cells; c++ {
			buckets[s.side[c]].Add(c, s.gain(c))
		}
		for step := 0; step < 40; step++ {
			c := int32(r.Intn(cells))
			buckets[s.side[c]].Remove(c)
			s.move(c, buckets)
			buckets[s.side[c]].Add(c, s.gain(c))
			// Verify all stored gains.
			for d := int32(0); int(d) < cells; d++ {
				if got, want := buckets[s.side[d]].GainOf(d), s.gain(d); got != want {
					t.Fatalf("trial %d step %d: cell %d stored gain %d != %d", trial, step, d, got, want)
				}
			}
		}
	}
}

func TestHFMBeatsRandomOnLargerNetlist(t *testing.T) {
	nl := netlist.New()
	r := rng.NewFib(9)
	const cells = 120
	for i := 0; i < cells; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Local nets within blocks of 10 + a few random long nets.
	id := 0
	for b := 0; b < cells; b += 10 {
		for i := 0; i < 9; i++ {
			id++
			if err := nl.AddNet(fmt.Sprintf("n%d", id), fmt.Sprintf("c%d", b+i), fmt.Sprintf("c%d", b+i+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := 0; k < 10; k++ {
		id++
		a, bb := r.Intn(cells), r.Intn(cells)
		if a == bb {
			continue
		}
		if err := nl.AddNet(fmt.Sprintf("n%d", id), fmt.Sprintf("c%d", a), fmt.Sprintf("c%d", bb)); err != nil {
			t.Fatal(err)
		}
	}
	// Random baseline.
	sides := make([]uint8, cells)
	for i := range sides {
		if i%2 == 0 {
			sides[i] = 1
		}
	}
	randomCut, err := nl.CutNets(sides)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bisect(nl, Options{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets >= randomCut/2 {
		t.Fatalf("hfm cut %d not much better than random-ish %d", res.CutNets, randomCut)
	}
}

func TestWeightedAreasRespected(t *testing.T) {
	nl := netlist.New()
	for i := 0; i < 6; i++ {
		area := int32(1)
		if i < 2 {
			area = 3
		}
		if err := nl.AddCell(fmt.Sprintf("c%d", i), area); err != nil {
			t.Fatal(err)
		}
	}
	if err := nl.AddNet("n1", "c0", "c2"); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddNet("n2", "c1", "c3"); err != nil {
		t.Fatal(err)
	}
	res, err := Bisect(nl, Options{MaxImbalance: 2}, rng.NewFib(4))
	if err != nil {
		t.Fatal(err)
	}
	var a [2]int64
	for i, s := range res.Sides {
		a[s] += int64(nl.Cells()[i].Area)
	}
	d := a[0] - a[1]
	if d < 0 {
		d = -d
	}
	if d > 2 {
		t.Fatalf("area imbalance %d exceeds tolerance", d)
	}
}

func BenchmarkHFMBisect(b *testing.B) {
	nl := netlist.New()
	r := rng.NewFib(1)
	const cells = 500
	for i := 0; i < cells; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			b.Fatal(err)
		}
	}
	for n := 0; n < 800; n++ {
		a, c := r.Intn(cells), r.Intn(cells)
		if a == c {
			continue
		}
		if err := nl.AddNet(fmt.Sprintf("n%d", n), fmt.Sprintf("c%d", a), fmt.Sprintf("c%d", c)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bisect(nl, Options{}, r); err != nil {
			b.Fatal(err)
		}
	}
}
