package anneal

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestRefineSteadyStateZeroAlloc locks in the workspace contract: once a
// Refiner has seen a graph, an entire annealing run — start-temperature
// calibration, every temperature's trial loop, undo-log best tracking,
// and the final SetSides/RepairBalance materialization — allocates
// nothing at all.
func TestRefineSteadyStateZeroAlloc(t *testing.T) {
	r := rng.NewFib(21)
	g, err := gen.GNP(300, 4.0/299, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	opts := Options{SizeFactor: 2, TempFactor: 0.8, FreezeLim: 1, MaxTemps: 4}
	w := NewRefiner()
	if _, err := w.Refine(b, opts, rng.NewFib(3)); err != nil {
		t.Fatal(err) // warm-up sizes the workspace
	}
	runRNG := rng.NewFib(4)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := w.Refine(b, opts, runRNG); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SA run allocated %.1f times per run, want 0", allocs)
	}
}

// TestExpTableBracketsExp pins the acceptance table's correctness
// argument: for every bucket, the stored edges bracket exp(−x) over the
// bucket, the bracket width never exceeds 1 − e^(−δ) < δ = 2⁻⁷, and the
// table-driven decision agrees with the naive u < exp(−x) on a dense
// sweep of (u, x) pairs, including edge-exact and out-of-range inputs.
func TestExpTableBracketsExp(t *testing.T) {
	const delta = expTableMaxX / expTableSize
	maxGap := 1 - math.Exp(-delta)
	if maxGap >= delta {
		t.Fatalf("gap bound %v not below δ=%v", maxGap, delta)
	}
	for i := 0; i < expTableSize; i++ {
		lo, hi := expEdge[i+1], expEdge[i]
		if !(lo < hi) {
			t.Fatalf("bucket %d: edges not decreasing (%v, %v)", i, lo, hi)
		}
		if hi-lo > maxGap {
			t.Fatalf("bucket %d: gap %v exceeds bound %v", i, hi-lo, maxGap)
		}
		// Probe interior and boundary points of the bucket.
		for _, x := range []float64{float64(i) * delta, (float64(i) + 0.5) * delta, math.Nextafter(float64(i+1)*delta, 0)} {
			e := math.Exp(-x)
			if e < lo || e > hi {
				t.Fatalf("bucket %d: exp(−%v)=%v outside [%v, %v]", i, x, e, lo, hi)
			}
		}
	}
	r := rng.NewFib(99)
	for k := 0; k < 200000; k++ {
		x := r.Float64() * 40 // crosses the expTableMaxX=32 cutoff
		u := r.Float64()
		want := u < math.Exp(-x)
		if got := acceptUphill(u, x, false); got != want {
			t.Fatalf("acceptUphill(%v, %v) = %v, naive says %v", u, x, got, want)
		}
		if got := acceptUphill(u, x, true); got != want {
			t.Fatalf("acceptUphill(%v, %v, disabled) = %v, naive says %v", u, x, got, want)
		}
	}
	// Adversarial inputs: exact bucket edges, the cutoff, and +Inf
	// (a fully underflowed temperature).
	for _, x := range []float64{0, delta, 2 * delta, expTableMaxX, expTableMaxX + 1, math.Inf(1)} {
		for _, u := range []float64{0, math.Exp(-x), math.Nextafter(math.Exp(-x), 0), 0.999999} {
			if math.IsNaN(u) {
				continue
			}
			want := u < math.Exp(-x)
			if got := acceptUphill(u, x, false); got != want {
				t.Fatalf("edge case acceptUphill(%v, %v) = %v, want %v", u, x, got, want)
			}
		}
	}
}
