package anneal

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/sa_golden.json from the current implementation")

// goldenCase is one (graph, schedule, seed) combination pinned by the
// fixture. The cases cover every acceptance/cooling rule combination the
// hot loop branches on, so a change to any of the accept, cost, or
// best-tracking paths shows up as a fixture mismatch.
type goldenCase struct {
	Name string
	g    *graph.Graph
	opts Options
	seed uint64
}

// goldenRecord is what the fixture stores per case: the final cut, the
// full Stats struct, an FNV-1a hash of the final side assignment, and an
// FNV-1a hash of the trace event stream (with the wall-clock ElapsedNS
// fields zeroed — everything else in an event is deterministic).
type goldenRecord struct {
	Name      string  `json:"name"`
	Cut       int64   `json:"cut"`
	Temps     int     `json:"temperatures"`
	Trials    int64   `json:"trials"`
	Accepted  int64   `json:"accepted"`
	StartTemp float64 `json:"start_temp"`
	FinalTemp float64 `json:"final_temp"`
	SidesHash uint64  `json:"sides_hash"`
	TraceHash uint64  `json:"trace_hash"`
}

func goldenCases() []goldenCase {
	mk := func(name string, g *graph.Graph, err error, opts Options, seed uint64) goldenCase {
		if err != nil {
			panic(err)
		}
		return goldenCase{Name: name, g: g, opts: opts, seed: seed}
	}
	gnp, gnpErr := gen.GNP(120, 0.05, rng.NewFib(11))
	breg, bregErr := gen.BReg(200, 8, 4, rng.NewFib(13))
	grid, gridErr := gen.Grid(12, 12)
	return []goldenCase{
		mk("gnp120_metropolis_geometric", gnp, gnpErr,
			Options{SizeFactor: 2, TempFactor: 0.8, FreezeLim: 2, MaxTemps: 40}, 5),
		mk("breg200_metropolis_adaptive", breg, bregErr,
			Options{SizeFactor: 2, FreezeLim: 2, MaxTemps: 60, Cooling: CoolAdaptive, Delta: 0.2}, 17),
		mk("grid144_threshold_geometric", grid, gridErr,
			Options{SizeFactor: 2, TempFactor: 0.8, FreezeLim: 2, MaxTemps: 40, Acceptance: AcceptThreshold}, 29),
	}
}

// runGoldenCase executes one fixture case and reduces it to a record.
func runGoldenCase(c goldenCase, opts Options) (goldenRecord, error) {
	rec := trace.NewRecorder(0)
	opts.Observer = rec
	b, st, err := Run(c.g, opts, rng.NewFib(c.seed))
	if err != nil {
		return goldenRecord{}, err
	}
	sh := fnv.New64a()
	sh.Write(b.SidesRef())
	th := fnv.New64a()
	for _, e := range rec.Events() {
		e.ElapsedNS = 0
		fmt.Fprintf(th, "%+v\n", e)
	}
	return goldenRecord{
		Name:      c.Name,
		Cut:       b.Cut(),
		Temps:     st.Temperatures,
		Trials:    st.Trials,
		Accepted:  st.Accepted,
		StartTemp: st.StartTemp,
		FinalTemp: st.FinalTemp,
		SidesHash: sh.Sum64(),
		TraceHash: th.Sum64(),
	}, nil
}

// TestGoldenSeedDeterminism pins the full observable behavior of SA —
// final cuts, schedule statistics, side assignments, and trace event
// streams — to a committed fixture, for every hot-loop variant. The
// fixture was captured before the workspace/exp-table/undo-log overhaul,
// so passing it proves the optimized paths reproduce the original
// implementation bit for bit.
func TestGoldenSeedDeterminism(t *testing.T) {
	path := filepath.Join("testdata", "sa_golden.json")
	if *updateGolden {
		var recs []goldenRecord
		for _, c := range goldenCases() {
			r, err := runGoldenCase(c, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	cases := goldenCases()
	if len(want) != len(cases) {
		t.Fatalf("fixture has %d records for %d cases; rerun with -update", len(want), len(cases))
	}
	for i, c := range cases {
		for _, v := range goldenVariants() {
			opts := c.opts
			v.apply(&opts)
			got, err := runGoldenCase(c, opts)
			if err != nil {
				t.Fatalf("%s [%s]: %v", c.Name, v.name, err)
			}
			if got != want[i] {
				t.Errorf("%s [%s]:\n got %+v\nwant %+v", c.Name, v.name, got, want[i])
			}
		}
	}
}

// TestGoldenWorkspaceReuse runs all fixture cases through one shared
// Refiner (the multi-chain steady state) and requires the same records:
// workspaces carry no state between runs.
func TestGoldenWorkspaceReuse(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "sa_golden.json"))
	if err != nil {
		t.Skip("fixture not yet captured")
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	ws := NewRefiner()
	for round := 0; round < 2; round++ {
		for i, c := range goldenCases() {
			opts := c.opts
			opts.Workspace = ws
			got, err := runGoldenCase(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Errorf("round %d, %s with shared workspace:\n got %+v\nwant %+v", round, c.Name, got, want[i])
			}
		}
	}
}

// goldenVariant toggles one combination of the hot-loop ablation flags.
// Every combination must reproduce the pre-overhaul fixture exactly: the
// exp bracket table decides identically to per-trial math.Exp, and the
// undo log materializes the same best state the clone-per-improvement
// scheme saved.
type goldenVariant struct {
	name  string
	apply func(*Options)
}

func goldenVariants() []goldenVariant {
	return []goldenVariant{
		{name: "optimized", apply: func(*Options) {}},
		{name: "no_exp_table", apply: func(o *Options) { o.DisableExpTable = true }},
		{name: "no_undo_log", apply: func(o *Options) { o.DisableUndoLog = true }},
		{name: "naive", apply: func(o *Options) { o.DisableExpTable = true; o.DisableUndoLog = true }},
	}
}
