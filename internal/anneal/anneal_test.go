package anneal

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// fastOpts keeps unit tests quick while preserving the schedule shape.
func fastOpts() Options {
	return Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 200}
}

func TestRunReturnsBalancedBisection(t *testing.T) {
	r := rng.NewFib(1)
	g, err := gen.BReg(100, 4, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	b, st, err := Run(g, fastOpts(), r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Temperatures == 0 || st.Trials == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.FinalCut != b.Cut() {
		t.Fatalf("stats cut %d != bisection cut %d", st.FinalCut, b.Cut())
	}
	if st.StartTemp <= st.FinalTemp*0.99 {
		t.Fatalf("temperature did not cool: %g -> %g", st.StartTemp, st.FinalTemp)
	}
}

// TestAnnealMatchesGenericSchema is experiment F1 from DESIGN.md: the
// implementation must exhibit the structure of the paper's Figure 1 —
// start hot (high acceptance), cool geometrically, and freeze (low
// acceptance) at the end.
func TestAnnealMatchesGenericSchema(t *testing.T) {
	r := rng.NewFib(7)
	g, err := gen.BReg(200, 8, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	st, err := Refine(b, fastOpts(), r)
	if err != nil {
		t.Fatal(err)
	}
	// The overall acceptance ratio must be strictly between the frozen
	// threshold and 1: it starts near InitProb and ends near 0.
	ratio := float64(st.Accepted) / float64(st.Trials)
	if ratio <= 0 || ratio >= 0.9 {
		t.Fatalf("overall acceptance ratio %.3f implausible for an annealing run", ratio)
	}
	// Geometric cooling: final temp = start * TempFactor^(temps-1).
	want := st.StartTemp * math.Pow(0.9, float64(st.Temperatures-1))
	if math.Abs(want-st.FinalTemp)/want > 1e-9 {
		t.Fatalf("cooling not geometric: final %g, want %g", st.FinalTemp, want)
	}
}

func TestAnnealImprovesOverRandom(t *testing.T) {
	r := rng.NewFib(3)
	g, err := gen.BReg(300, 4, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	randomCut := partition.NewRandom(g, r).Cut()
	b, _, err := Run(g, fastOpts(), r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() >= randomCut {
		t.Fatalf("SA cut %d no better than random %d", b.Cut(), randomCut)
	}
	// Random cut of a 4-regular graph is ~m/2 = 300; planted is 4. Even a
	// fast schedule should get well under half the random cut.
	if b.Cut() > randomCut/2 {
		t.Fatalf("SA cut %d > half the random cut %d", b.Cut(), randomCut)
	}
}

func TestAnnealFindsOptimumOnSmallGraphs(t *testing.T) {
	r := rng.NewFib(11)
	for trial := 0; trial < 8; trial++ {
		n := 2 * (3 + r.Intn(3))
		g, err := gen.GNP(n, 0.5, r)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.BisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 62
		for s := 0; s < 6; s++ {
			// Full-strength default schedule: on 6–10 vertex graphs it is
			// still fast, and reliably reaches the optimum.
			b, _, err := Run(g, Options{}, r)
			if err != nil {
				t.Fatal(err)
			}
			if b.Cut() < best {
				best = b.Cut()
			}
		}
		if best < opt {
			t.Fatalf("trial %d: SA cut %d below optimum %d", trial, best, opt)
		}
		if best > opt {
			t.Fatalf("trial %d (n=%d): SA best-of-6 %d missed optimum %d on a tiny dense graph", trial, n, best, opt)
		}
	}
}

func TestAnnealEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	b, st, err := Run(g, Options{}, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 || st.Temperatures != 0 {
		t.Fatalf("empty graph: cut=%d temps=%d", b.Cut(), st.Temperatures)
	}
}

func TestAnnealEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(10).MustBuild()
	b, _, err := Run(g, fastOpts(), rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 || b.Imbalance() != 0 {
		t.Fatalf("edgeless: cut=%d imbalance=%d", b.Cut(), b.Imbalance())
	}
}

func TestAnnealDeterministicGivenSeed(t *testing.T) {
	g := mustGraph(gen.Grid(8, 8))
	b1, st1, err := Run(g, fastOpts(), rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	b2, st2, err := Run(g, fastOpts(), rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	if b1.Cut() != b2.Cut() || st1.Trials != st2.Trials || st1.Temperatures != st2.Temperatures {
		t.Fatalf("same seed diverged: cuts %d/%d, trials %d/%d", b1.Cut(), b2.Cut(), st1.Trials, st2.Trials)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.05 || o.InitProb != 0.4 || o.SizeFactor != 16 ||
		o.TempFactor != 0.95 || o.MinPercent != 0.02 || o.FreezeLim != 5 || o.MaxTemps != 2000 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// Invalid values also fall back.
	o2 := Options{Alpha: -1, InitProb: 2, TempFactor: 1.5}.withDefaults()
	if o2.Alpha != 0.05 || o2.InitProb != 0.4 || o2.TempFactor != 0.95 {
		t.Fatalf("invalid values not defaulted: %+v", o2)
	}
}

func TestBestTrackingSurvivesMigration(t *testing.T) {
	// The paper: "simulated annealing may migrate away from an optimal
	// solution... one must then save the best bisection found". With a
	// hot, long schedule on a tiny graph the walk certainly visits the
	// optimum and certainly leaves it; the returned cut must still be
	// optimal.
	g := mustGraph(gen.CycleCollection([]int{4, 4}))
	r := rng.NewFib(4)
	b, _, err := Run(g, Options{SizeFactor: 8, TempFactor: 0.8, MaxTemps: 100, FreezeLim: 3}, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 {
		t.Fatalf("cut %d, want 0 (two whole cycles per side)", b.Cut())
	}
}

func TestThresholdAccepting(t *testing.T) {
	r := rng.NewFib(15)
	g, err := gen.BReg(200, 8, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Acceptance = AcceptThreshold
	b, st, err := Run(g, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Threshold accepting must still anneal: improve hugely over random.
	random := partition.NewRandom(g, r).Cut()
	if b.Cut() >= random {
		t.Fatalf("threshold accepting cut %d no better than random %d", b.Cut(), random)
	}
	if st.Accepted == 0 || st.Accepted == st.Trials {
		t.Fatalf("degenerate acceptance %d/%d", st.Accepted, st.Trials)
	}
}

func TestAcceptanceRulesDiffer(t *testing.T) {
	g := mustGraph(gen.Grid(10, 10))
	m := fastOpts()
	th := fastOpts()
	th.Acceptance = AcceptThreshold
	_, stM, err := Run(g, m, rng.NewFib(21))
	if err != nil {
		t.Fatal(err)
	}
	_, stT, err := Run(g, th, rng.NewFib(21))
	if err != nil {
		t.Fatal(err)
	}
	if stM.Accepted == stT.Accepted && stM.Trials == stT.Trials {
		t.Log("identical acceptance counts across rules; suspicious but possible — checking trials differ at least")
	}
	// Both must have cooled.
	if stM.Temperatures == 0 || stT.Temperatures == 0 {
		t.Fatal("no temperatures executed")
	}
}

func TestAdaptiveCooling(t *testing.T) {
	r := rng.NewFib(31)
	g, err := gen.BReg(200, 8, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{SizeFactor: 4, FreezeLim: 3, MaxTemps: 400, Cooling: CoolAdaptive, Delta: 0.2}
	b, st, err := Run(g, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.FinalTemp >= st.StartTemp {
		t.Fatalf("adaptive schedule did not cool: %g -> %g", st.StartTemp, st.FinalTemp)
	}
	// Quality: should at least approach the planted width on degree 4.
	if b.Cut() > 40 {
		t.Fatalf("adaptive SA cut %d far above planted 8", b.Cut())
	}
}

func TestStartTemperatureCalibration(t *testing.T) {
	// The calibrated start temperature must accept roughly InitProb of
	// random moves from the initial state (the JAMS calibration target).
	// We measure the first temperature's acceptance ratio with a schedule
	// that freezes immediately afterwards.
	r := rng.NewFib(33)
	g, err := gen.BReg(400, 8, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	st, err := Refine(b, Options{SizeFactor: 8, MaxTemps: 1, FreezeLim: 1, InitProb: 0.4}, r)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st.Accepted) / float64(st.Trials)
	// The calibration doubles T until the sampled acceptance reaches the
	// target, so the realized ratio is at least ~InitProb (minus sampling
	// noise) and usually well above; it must not be near zero or one.
	if ratio < 0.3 || ratio > 0.98 {
		t.Fatalf("first-temperature acceptance %.3f far from InitProb 0.4", ratio)
	}
}

func TestAdaptiveCoolingDefaultsDelta(t *testing.T) {
	o := Options{Cooling: CoolAdaptive}.withDefaults()
	if o.Delta != 0.1 {
		t.Fatalf("delta default %v", o.Delta)
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Fatal("empty Stats string")
	}
}

func BenchmarkAnnealBReg500D3(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(500, 8, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(g, fastOpts(), r); err != nil {
			b.Fatal(err)
		}
	}
}
