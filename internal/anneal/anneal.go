// Package anneal implements simulated annealing for graph bisection,
// following the paper's Figure 1 and the Johnson–Aragon–McGeoch–Schevon
// parameterization it cites ([JCAMS84], published as JAMS'89):
//
//   - states are arbitrary two-way partitions (not necessarily balanced);
//   - the cost function is cut(V1,V2) + α·(w(V1)−w(V2))², so imbalance is
//     penalized rather than forbidden;
//   - a move flips one uniformly random vertex; downhill moves are always
//     accepted, uphill moves with probability exp(−Δ/T);
//   - the start temperature is calibrated so the initial acceptance ratio
//     is roughly InitProb; each temperature runs SizeFactor·|V| trials;
//     the temperature is then multiplied by TempFactor;
//   - the system is "frozen" when the acceptance ratio stays below
//     MinPercent for FreezeLim consecutive temperatures with no
//     improvement to the best solution seen.
//
// As the paper notes, SA can migrate away from an optimum found at high
// temperature, so the best state seen is saved throughout; at the end it
// is rebalanced to an exact bisection with gain-aware repair moves.
package anneal

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Options configures the annealing schedule. Zero values select the
// defaults noted on each field (the JAMS'89 choices).
type Options struct {
	// Alpha is the imbalance penalty coefficient (default 0.05).
	Alpha float64
	// InitProb is the target initial acceptance probability used to
	// calibrate the start temperature (default 0.4).
	InitProb float64
	// SizeFactor scales trials per temperature: SizeFactor·|V| (default 16).
	SizeFactor int
	// TempFactor is the geometric cooling rate (default 0.95).
	TempFactor float64
	// MinPercent is the freezing acceptance-ratio threshold (default 0.02).
	MinPercent float64
	// FreezeLim is how many consecutive low-acceptance, no-improvement
	// temperatures constitute frozen (default 5).
	FreezeLim int
	// MaxTemps caps the temperature count as a safety net (default 2000).
	MaxTemps int
	// Acceptance selects the uphill-move rule: AcceptMetropolis (default,
	// Figure 1's exp(−Δ/T)) or AcceptThreshold (deterministic Δ < T,
	// Dueck & Scheuer's "threshold accepting" — a later simplification
	// included for the schedule ablation).
	Acceptance AcceptanceRule
	// Cooling selects the temperature decrement: CoolGeometric (default,
	// T ← TempFactor·T, Figure 1's "REDUCE TEMPERATURE") or CoolAdaptive
	// (Aarts–van Laarhoven: T ← T / (1 + T·ln(1+Delta)/(3σ_T)), where σ_T
	// is the cost standard deviation observed at the current temperature
	// — slow cooling through phase transitions, fast elsewhere).
	Cooling CoolingRule
	// Delta is the adaptive schedule's distance parameter (default 0.1;
	// smaller = slower, higher-quality cooling). Ignored for geometric
	// cooling.
	Delta float64
	// DisableExpTable turns off the quantized acceptance-probability
	// bracket (see refiner.go) and evaluates math.Exp on every uphill
	// Metropolis trial instead. Results are identical by construction —
	// the bracket only ever decides when it provably agrees with the
	// exact comparison; only running time changes. Used by the SA
	// ablation benchmarks and cross-check tests.
	DisableExpTable bool
	// DisableUndoLog turns off undo-log best tracking and restores the
	// original clone-on-improvement scheme (an O(n) copy of the full
	// bisection each time the best cost improves). Results are
	// identical; only running time and allocation change. Used by the
	// SA ablation benchmarks and cross-check tests.
	DisableUndoLog bool
	// Workspace, when non-nil, supplies the reusable run state (cached
	// vertex weights, the undo log, the best-state buffer) so repeated
	// runs allocate nothing. A nil Workspace makes Run/Refine allocate
	// a private one. Workspaces are not safe for concurrent use; give
	// each goroutine its own (see core.ParallelBestOf).
	Workspace *Refiner
	// Observer, when non-nil, receives move_batch, temp_done, and
	// run_done trace events (see docs/OBSERVABILITY.md) — the
	// temperature/acceptance-ratio decay the freezing criterion acts on.
	// Observers never draw from the random stream, so attaching one
	// cannot change the run; nil costs nothing.
	Observer trace.Observer
	// Control, when non-nil, is polled once before every temperature.
	// When it stops, Refine adopts the best state seen so far, rebalances
	// it exactly as a frozen run would, and returns it together with the
	// stop sentinel (see internal/runctl and docs/ROBUSTNESS.md). A run
	// under checkpoint budget k is identical to an uncancelled run with
	// MaxTemps = k; nil costs nothing.
	Control *runctl.Control
}

// CoolingRule selects the temperature decrement rule.
type CoolingRule int

const (
	// CoolGeometric multiplies the temperature by TempFactor.
	CoolGeometric CoolingRule = iota
	// CoolAdaptive uses the Aarts–van Laarhoven variance-based decrement.
	CoolAdaptive
)

// AcceptanceRule selects how uphill moves are accepted.
type AcceptanceRule int

const (
	// AcceptMetropolis accepts an uphill move with probability exp(−Δ/T).
	AcceptMetropolis AcceptanceRule = iota
	// AcceptThreshold accepts any move with Δ < T deterministically.
	AcceptThreshold
)

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.InitProb <= 0 || o.InitProb >= 1 {
		o.InitProb = 0.4
	}
	if o.SizeFactor <= 0 {
		o.SizeFactor = 16
	}
	if o.TempFactor <= 0 || o.TempFactor >= 1 {
		o.TempFactor = 0.95
	}
	if o.MinPercent <= 0 {
		o.MinPercent = 0.02
	}
	if o.FreezeLim <= 0 {
		o.FreezeLim = 5
	}
	if o.MaxTemps <= 0 {
		o.MaxTemps = 2000
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	return o
}

// Stats reports what a run did.
type Stats struct {
	Temperatures int
	Trials       int64
	Accepted     int64
	StartTemp    float64
	FinalTemp    float64
	InitialCut   int64
	FinalCut     int64 // after rebalancing
}

// String implements a compact summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sa{temps=%d trials=%d acc=%.1f%% T %g→%g cut %d→%d}",
		s.Temperatures, s.Trials, 100*float64(s.Accepted)/math.Max(1, float64(s.Trials)),
		s.StartTemp, s.FinalTemp, s.InitialCut, s.FinalCut)
}

// Refine anneals b in place starting from its current state and returns
// run statistics. On return b is a balanced bisection (imbalance at the
// parity minimum for unit weights): the best state seen during the run,
// rebalanced with gain-aware repair moves.
func Refine(b *partition.Bisection, opts Options, r *rng.Rand) (Stats, error) {
	return workspace(opts).Refine(b, opts, r)
}

// Refine is Refine using this workspace (opts.Workspace is ignored).
// With a warm workspace the whole call — calibration, every
// temperature, and the final best-state materialization — performs no
// heap allocation.
func (w *Refiner) Refine(b *partition.Bisection, opts Options, r *rng.Rand) (Stats, error) {
	o := opts.withDefaults()
	g := b.Graph()
	n := g.N()
	st := Stats{InitialCut: b.Cut(), FinalCut: b.Cut()}
	if n == 0 {
		return st, nil
	}
	w.ensure(g)

	// The trial loop reads partition state through live references and
	// maintains the side-weight difference itself, so a trial costs a
	// few array loads instead of accessor and closure calls. The float
	// arithmetic in deltaCost/costAt is operation-identical to the
	// closures this replaced; nothing below may change a result.
	// Re-slicing everything to the shared length n lets one range test
	// on the drawn vertex discharge the bounds checks of all four
	// indexed loads in the trial loop.
	sides := b.SidesRef()[:n]
	gains := b.GainsRef()[:n]
	wf := w.wf[:n]
	wi := w.wi[:n]
	alpha := o.Alpha
	sideDiff := b.SideWeight(0) - b.SideWeight(1)
	// d and d2 shadow float64(sideDiff) and its square; they are
	// refreshed from the exact integer whenever a move is accepted, so
	// deltaCost never re-derives them per trial.
	d := float64(sideDiff)
	d2 := d * d
	curCut := b.Cut()
	metropolis := o.Acceptance != AcceptThreshold
	adaptive := o.Cooling == CoolAdaptive
	useTable := !o.DisableExpTable
	useLog := !o.DisableUndoLog

	// The loops draw words through a block-prefetching stream and
	// open-code Intn's Lemire reduction and Float64's conversion with
	// the exact arithmetic of the rng.Rand methods, so the word stream
	// and every derived value are unchanged (the golden fixture pins
	// this); the stream's deferred finish returns any prefetched,
	// unconsumed words so later users of r see no difference either.
	// The single rejection test `lo >= thresh` is the two-test
	// original folded together: thresh < n, so lo < thresh is
	// precisely the redraw condition.
	un := uint64(n)
	unThresh := -un % un
	var ws wordStream
	ws.init(r.Source(), w.words)
	defer ws.finish()

	obs := o.Observer
	var runStart time.Time
	if obs != nil {
		runStart = time.Now()
	}

	temp := w.calibrateStartTemp(b, o, &ws)
	st.StartTemp = temp

	// The trial loop manages the stream's block cursor in locals (wbuf
	// never changes identity across refills; draw-through mode keeps it
	// nil so every draw takes the refill path). Stores into sides/gains
	// would otherwise force the compiler to re-load the cursor field —
	// and re-check bounds — on every draw. ws.pos is synced back before
	// anything else touches the stream.
	wbuf := ws.buf
	wpos := ws.pos

	// Best-state tracking. The default scheme snapshots the sides once,
	// then records every accepted move in the undo log; an improvement
	// costs O(1) (remember the log position), and the snapshot is
	// brought up to date at most once per temperature by replaying the
	// log's prefix parity — O(accepted) per temperature, against the
	// old scheme's O(n) full-state copy per improvement. The ablation
	// path keeps the original clone-on-improvement scheme.
	bestCost := costAt(curCut, d2, alpha)
	bestCut := curCut
	var best *partition.Bisection
	if useLog {
		copy(w.bestSides, sides)
		trials := int(o.SizeFactor) * n
		if cap(w.log) < trials {
			w.log = make([]int32, 0, trials)
		}
	} else {
		best = b.Clone()
	}

	frozen := 0
	trialsPerTemp := int64(o.SizeFactor) * int64(n)

	var stopErr error
	for t := 0; t < o.MaxTemps && frozen < o.FreezeLim; t++ {
		if stopErr = o.Control.Check(); stopErr != nil {
			// Fall through to the adopt-best-and-rebalance epilogue: a
			// cancelled run ends exactly like a frozen one, just earlier.
			break
		}
		var accepted int64
		improvedBest := false
		var tempStart time.Time
		batchIdx := 0
		if obs != nil {
			tempStart = time.Now()
		}
		// The undo log is written by index through a local slice so the
		// hot loop never touches the workspace's slice header; capacity
		// was pre-sized to trialsPerTemp, which bounds accepted moves.
		log := w.log[:cap(w.log)]
		logN := 0
		bestMark := -1
		// Running cost statistics for the adaptive schedule.
		cur := costAt(curCut, d2, alpha)
		var costSum, costSumSq float64
		for k := int64(0); k < trialsPerTemp; k++ {
			var v int32
			for {
				var word uint64
				if wpos < len(wbuf) {
					word = wbuf[wpos]
					wpos++
				} else {
					ws.pos = wpos
					word = ws.refill()
					wpos = ws.pos
				}
				hi, lo := bits.Mul64(word, un)
				if lo >= unThresh {
					v = int32(hi)
					break
				}
			}
			vi := int(v)
			if uint(vi) >= uint(n) {
				// Unreachable — hi = ⌊word·n/2⁶⁴⌋ < n — but the range
				// test is what lets the compiler drop the bounds checks
				// on every vi-indexed load below.
				continue
			}
			side := sides[vi]
			dE := deltaCost(d, d2, side, wf[vi], gains[vi], alpha)
			accept := dE <= 0
			if !accept {
				if metropolis {
					// The bracket test, open-coded (the logic of
					// expProbeScaled/acceptUphill) so the probe's own
					// branches ARE the decision — a function returning a
					// tri-state would make the caller re-branch on the
					// same unpredictable data and double the mispredict
					// cost. Rejection is tested first because at all but
					// the hottest temperatures it is the common outcome.
					// Comparing the raw 53-bit draw fw against pre-scaled
					// edges defers u = fw/2⁵³ — exact, so free to defer —
					// to the paths that need u itself.
					var word uint64
					if wpos < len(wbuf) {
						word = wbuf[wpos]
						wpos++
					} else {
						ws.pos = wpos
						word = ws.refill()
						wpos = ws.pos
					}
					fw, x := float64(word>>11), dE/temp
					if !useTable {
						accept = acceptUphillExact(fw/(1<<53), x)
					} else if x < expTableMaxX {
						i := int(x*expTableInvStep) & (expTableSize - 1)
						if fw >= expEdgeScaled[i] {
							// rejected: u ≥ exp(−i·δ) ≥ exp(−x)
						} else if fw < expEdgeScaled[i+1] {
							accept = true
						} else {
							accept = acceptUphillExact(fw/(1<<53), x)
						}
					} else if fw < expTailScaled {
						accept = acceptUphillExact(fw/(1<<53), x)
					}
				} else {
					accept = dE < temp
				}
			}
			if accept {
				if useLog {
					// Apply the flip through the live references —
					// partition.Move's arithmetic, minus the call and the
					// cut/side-weight fields, which stay shadowed in
					// curCut/sideDiff until SetSides rebuilds the
					// bisection from the best sides at run end.
					gv := gains[vi]
					curCut -= gv
					gains[vi] = -gv
					nsv := side ^ 1
					sides[vi] = nsv
					for _, e := range g.Neighbors(v) {
						d := int64(e.W) << 1
						m := int64(sides[e.To]^nsv) - 1
						gains[e.To] += (d ^ m) - m
					}
					log[logN] = v
					logN++
				} else {
					// The clone-based ablation path keeps b fully valid
					// so best.Assign(b) can snapshot it.
					b.Move(v)
					curCut = b.Cut()
				}
				// Flipping v off side s moves its weight to the other
				// side, so the difference w(V₀)−w(V₁) shifts by 2·w(v).
				if side == 0 {
					sideDiff -= 2 * wi[vi]
				} else {
					sideDiff += 2 * wi[vi]
				}
				d = float64(sideDiff)
				d2 = d * d
				cur += dE
				accepted++
				if cur < bestCost {
					// Recompute exactly to avoid float drift in the saved
					// best (dE accumulation is exact in spirit but float).
					// One evaluation serves both the comparison and the
					// running-cost reset the adaptive schedule reads.
					if c := costAt(curCut, d2, alpha); c < bestCost {
						bestCost = c
						bestCut = curCut
						improvedBest = true
						if useLog {
							bestMark = logN
						} else {
							best.Assign(b)
						}
						cur = c
					} else {
						cur = c
					}
				}
			}
			if adaptive {
				// The running cost moments feed only the Aarts–van
				// Laarhoven temperature update; geometric runs skip the
				// bookkeeping.
				costSum += cur
				costSumSq += cur * cur
			}
			if obs != nil && (k+1)%trace.SAMoveBatchSize == 0 {
				imb := sideDiff
				if imb < 0 {
					imb = -imb
				}
				obs.Observe(trace.Event{
					Type: trace.TypeMoveBatch, Algo: "sa", Index: batchIdx,
					Cut: curCut, BestCut: bestCut, Imbalance: imb,
					Trials: k + 1, Accepted: accepted,
					AcceptRatio: float64(accepted) / float64(k+1), Temp: temp,
				})
				batchIdx++
			}
		}
		st.Temperatures++
		st.Trials += trialsPerTemp
		st.Accepted += accepted
		st.FinalTemp = temp
		if obs != nil {
			imb := sideDiff
			if imb < 0 {
				imb = -imb
			}
			obs.Observe(trace.Event{
				Type: trace.TypeTempDone, Algo: "sa", Index: t,
				Cut: curCut, BestCut: bestCut, Imbalance: imb,
				Trials: trialsPerTemp, Accepted: accepted,
				AcceptRatio: float64(accepted) / float64(trialsPerTemp), Temp: temp,
				ElapsedNS: time.Since(tempStart).Nanoseconds(),
			})
		}
		if useLog && bestMark >= 0 {
			// Materialize the best state seen this temperature: start
			// from the current sides and undo the log's tail (the moves
			// accepted after the best). A vertex flipped twice cancels,
			// so applying each entry's flip is exactly the tail's parity.
			copy(w.bestSides, sides)
			for i := logN - 1; i >= bestMark; i-- {
				w.bestSides[log[i]] ^= 1
			}
		}
		if adaptive {
			mean := costSum / float64(trialsPerTemp)
			variance := costSumSq/float64(trialsPerTemp) - mean*mean
			if variance < 1e-12 {
				variance = 1e-12
			}
			sigma := math.Sqrt(variance)
			temp = temp / (1 + temp*math.Log(1+o.Delta)/(3*sigma))
		} else {
			temp *= o.TempFactor
		}
		if float64(accepted) < o.MinPercent*float64(trialsPerTemp) && !improvedBest {
			frozen++
		} else {
			frozen = 0
		}
	}

	// Hand the stream cursor back before the deferred finish rewinds the
	// unconsumed tail.
	ws.pos = wpos

	// Adopt the best state seen and rebalance it exactly. The undo-log
	// path only has the best sides; SetSides rebuilds gains and cut in
	// O(m) — once per run, where the old clone scheme paid O(n) per
	// improvement.
	if useLog {
		if err := b.SetSides(w.bestSides); err != nil {
			return st, err
		}
	} else {
		b.Assign(best)
	}
	partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	st.FinalCut = b.Cut()
	if obs != nil {
		ratio := 0.0
		if st.Trials > 0 {
			ratio = float64(st.Accepted) / float64(st.Trials)
		}
		obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "sa", Index: st.Temperatures,
			Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
			Gain:   st.InitialCut - st.FinalCut,
			Trials: st.Trials, Accepted: st.Accepted,
			AcceptRatio: ratio, Temp: st.FinalTemp,
			ElapsedNS: time.Since(runStart).Nanoseconds(),
		})
	}
	return st, stopErr
}

// Run anneals from a fresh random balanced bisection of g.
func Run(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, Stats, error) {
	b := partition.NewRandom(g, r)
	st, err := Refine(b, opts, r)
	return b, st, err
}

// calibrateStartTemp estimates the temperature at which the acceptance
// ratio of random moves from the current state is about InitProb: it
// samples uphill deltas and solves exp(−avgUp/T) = InitProb, then doubles
// T (a few times at most) until a sampled acceptance ratio reaches the
// target, mirroring JAMS's trial-run calibration.
//
// Calibration runs before every start — each of the N chains of a
// parallel campaign — so it gets the same treatment as the trial loop:
// delta sampling is pure (it never moves a vertex, so there is no state
// to clone or restore), reads the partition through live references and
// the workspace's cached weights, draws words through the same
// block-prefetching stream with the same open-coded Lemire/Float64
// arithmetic as the trial loop, and decides acceptance through the
// bracket table. With a warm workspace it allocates nothing. The draw
// sequence (one Intn per sample, one Float64 per uphill sample) and
// every produced float are identical to the closure-based version.
func (w *Refiner) calibrateStartTemp(b *partition.Bisection, o Options, ws *wordStream) float64 {
	n := b.N()
	sides := b.SidesRef()
	gains := b.GainsRef()
	wf := w.wf
	alpha := o.Alpha
	sideDiff := b.SideWeight(0) - b.SideWeight(1)
	// Calibration never moves a vertex, so the hoisted d/d2 are fixed.
	d := float64(sideDiff)
	d2 := d * d
	un := uint64(n)
	unThresh := -un % un
	samples := 64 + 4*n
	if samples > 4096 {
		samples = 4096
	}
	var upSum float64
	var upCount int
	for i := 0; i < samples; i++ {
		var v int32
		for {
			word, ok := ws.tryNext()
			if !ok {
				word = ws.refill()
			}
			hi, lo := bits.Mul64(word, un)
			if lo >= unThresh {
				v = int32(hi)
				break
			}
		}
		if dE := deltaCost(d, d2, sides[v], wf[v], gains[v], alpha); dE > 0 {
			upSum += dE
			upCount++
		}
	}
	if upCount == 0 {
		// All moves downhill (or flat): any modest temperature works.
		return 1.0
	}
	temp := (upSum / float64(upCount)) / math.Log(1/o.InitProb)
	for iter := 0; iter < 30; iter++ {
		acc := 0
		for i := 0; i < samples; i++ {
			var v int32
			for {
				word, ok := ws.tryNext()
				if !ok {
					word = ws.refill()
				}
				hi, lo := bits.Mul64(word, un)
				if lo >= unThresh {
					v = int32(hi)
					break
				}
			}
			dE := deltaCost(d, d2, sides[v], wf[v], gains[v], alpha)
			if dE <= 0 {
				acc++
				continue
			}
			word, ok := ws.tryNext()
			if !ok {
				word = ws.refill()
			}
			u := float64(word>>11) / (1 << 53)
			if acceptUphill(u, dE/temp, o.DisableExpTable) {
				acc++
			}
		}
		if float64(acc) >= o.InitProb*float64(samples) {
			break
		}
		temp *= 2
	}
	return temp
}
