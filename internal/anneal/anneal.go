// Package anneal implements simulated annealing for graph bisection,
// following the paper's Figure 1 and the Johnson–Aragon–McGeoch–Schevon
// parameterization it cites ([JCAMS84], published as JAMS'89):
//
//   - states are arbitrary two-way partitions (not necessarily balanced);
//   - the cost function is cut(V1,V2) + α·(w(V1)−w(V2))², so imbalance is
//     penalized rather than forbidden;
//   - a move flips one uniformly random vertex; downhill moves are always
//     accepted, uphill moves with probability exp(−Δ/T);
//   - the start temperature is calibrated so the initial acceptance ratio
//     is roughly InitProb; each temperature runs SizeFactor·|V| trials;
//     the temperature is then multiplied by TempFactor;
//   - the system is "frozen" when the acceptance ratio stays below
//     MinPercent for FreezeLim consecutive temperatures with no
//     improvement to the best solution seen.
//
// As the paper notes, SA can migrate away from an optimum found at high
// temperature, so the best state seen is saved throughout; at the end it
// is rebalanced to an exact bisection with gain-aware repair moves.
package anneal

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Options configures the annealing schedule. Zero values select the
// defaults noted on each field (the JAMS'89 choices).
type Options struct {
	// Alpha is the imbalance penalty coefficient (default 0.05).
	Alpha float64
	// InitProb is the target initial acceptance probability used to
	// calibrate the start temperature (default 0.4).
	InitProb float64
	// SizeFactor scales trials per temperature: SizeFactor·|V| (default 16).
	SizeFactor int
	// TempFactor is the geometric cooling rate (default 0.95).
	TempFactor float64
	// MinPercent is the freezing acceptance-ratio threshold (default 0.02).
	MinPercent float64
	// FreezeLim is how many consecutive low-acceptance, no-improvement
	// temperatures constitute frozen (default 5).
	FreezeLim int
	// MaxTemps caps the temperature count as a safety net (default 2000).
	MaxTemps int
	// Acceptance selects the uphill-move rule: AcceptMetropolis (default,
	// Figure 1's exp(−Δ/T)) or AcceptThreshold (deterministic Δ < T,
	// Dueck & Scheuer's "threshold accepting" — a later simplification
	// included for the schedule ablation).
	Acceptance AcceptanceRule
	// Cooling selects the temperature decrement: CoolGeometric (default,
	// T ← TempFactor·T, Figure 1's "REDUCE TEMPERATURE") or CoolAdaptive
	// (Aarts–van Laarhoven: T ← T / (1 + T·ln(1+Delta)/(3σ_T)), where σ_T
	// is the cost standard deviation observed at the current temperature
	// — slow cooling through phase transitions, fast elsewhere).
	Cooling CoolingRule
	// Delta is the adaptive schedule's distance parameter (default 0.1;
	// smaller = slower, higher-quality cooling). Ignored for geometric
	// cooling.
	Delta float64
	// Observer, when non-nil, receives move_batch, temp_done, and
	// run_done trace events (see docs/OBSERVABILITY.md) — the
	// temperature/acceptance-ratio decay the freezing criterion acts on.
	// Observers never draw from the random stream, so attaching one
	// cannot change the run; nil costs nothing.
	Observer trace.Observer
}

// CoolingRule selects the temperature decrement rule.
type CoolingRule int

const (
	// CoolGeometric multiplies the temperature by TempFactor.
	CoolGeometric CoolingRule = iota
	// CoolAdaptive uses the Aarts–van Laarhoven variance-based decrement.
	CoolAdaptive
)

// AcceptanceRule selects how uphill moves are accepted.
type AcceptanceRule int

const (
	// AcceptMetropolis accepts an uphill move with probability exp(−Δ/T).
	AcceptMetropolis AcceptanceRule = iota
	// AcceptThreshold accepts any move with Δ < T deterministically.
	AcceptThreshold
)

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.InitProb <= 0 || o.InitProb >= 1 {
		o.InitProb = 0.4
	}
	if o.SizeFactor <= 0 {
		o.SizeFactor = 16
	}
	if o.TempFactor <= 0 || o.TempFactor >= 1 {
		o.TempFactor = 0.95
	}
	if o.MinPercent <= 0 {
		o.MinPercent = 0.02
	}
	if o.FreezeLim <= 0 {
		o.FreezeLim = 5
	}
	if o.MaxTemps <= 0 {
		o.MaxTemps = 2000
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	return o
}

// Stats reports what a run did.
type Stats struct {
	Temperatures int
	Trials       int64
	Accepted     int64
	StartTemp    float64
	FinalTemp    float64
	InitialCut   int64
	FinalCut     int64 // after rebalancing
}

// String implements a compact summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sa{temps=%d trials=%d acc=%.1f%% T %g→%g cut %d→%d}",
		s.Temperatures, s.Trials, 100*float64(s.Accepted)/math.Max(1, float64(s.Trials)),
		s.StartTemp, s.FinalTemp, s.InitialCut, s.FinalCut)
}

// Refine anneals b in place starting from its current state and returns
// run statistics. On return b is a balanced bisection (imbalance at the
// parity minimum for unit weights): the best state seen during the run,
// rebalanced with gain-aware repair moves.
func Refine(b *partition.Bisection, opts Options, r *rng.Rand) (Stats, error) {
	o := opts.withDefaults()
	g := b.Graph()
	n := g.N()
	st := Stats{InitialCut: b.Cut(), FinalCut: b.Cut()}
	if n == 0 {
		return st, nil
	}

	cost := func(bb *partition.Bisection) float64 {
		d := float64(bb.SideWeight(0) - bb.SideWeight(1))
		return float64(bb.Cut()) + o.Alpha*d*d
	}
	// delta returns the cost change of flipping v.
	delta := func(v int32) float64 {
		d := float64(b.SideWeight(0) - b.SideWeight(1))
		w := float64(g.VertexWeight(v))
		var nd float64
		if b.Side(v) == 0 {
			nd = d - 2*w
		} else {
			nd = d + 2*w
		}
		return -float64(b.Gain(v)) + o.Alpha*(nd*nd-d*d)
	}

	obs := o.Observer
	var runStart time.Time
	if obs != nil {
		runStart = time.Now()
	}

	temp := calibrateStartTemp(b, o, delta, r)
	st.StartTemp = temp

	best := b.Clone()
	bestCost := cost(b)
	frozen := 0
	trialsPerTemp := int64(o.SizeFactor) * int64(n)

	for t := 0; t < o.MaxTemps && frozen < o.FreezeLim; t++ {
		var accepted int64
		improvedBest := false
		var tempStart time.Time
		batchIdx := 0
		if obs != nil {
			tempStart = time.Now()
		}
		// Running cost statistics for the adaptive schedule.
		cur := cost(b)
		var costSum, costSumSq float64
		for k := int64(0); k < trialsPerTemp; k++ {
			v := int32(r.Intn(n))
			dE := delta(v)
			accept := dE <= 0
			if !accept {
				if o.Acceptance == AcceptThreshold {
					accept = dE < temp
				} else {
					accept = r.Float64() < math.Exp(-dE/temp)
				}
			}
			if accept {
				b.Move(v)
				cur += dE
				accepted++
				if cur < bestCost {
					// Recompute exactly to avoid float drift in the saved
					// best (dE accumulation is exact in spirit but float).
					if c := cost(b); c < bestCost {
						bestCost = c
						best.Assign(b)
						improvedBest = true
					}
					cur = cost(b)
				}
			}
			costSum += cur
			costSumSq += cur * cur
			if obs != nil && (k+1)%trace.SAMoveBatchSize == 0 {
				obs.Observe(trace.Event{
					Type: trace.TypeMoveBatch, Algo: "sa", Index: batchIdx,
					Cut: b.Cut(), BestCut: best.Cut(), Imbalance: b.Imbalance(),
					Trials: k + 1, Accepted: accepted,
					AcceptRatio: float64(accepted) / float64(k+1), Temp: temp,
				})
				batchIdx++
			}
		}
		st.Temperatures++
		st.Trials += trialsPerTemp
		st.Accepted += accepted
		st.FinalTemp = temp
		if obs != nil {
			obs.Observe(trace.Event{
				Type: trace.TypeTempDone, Algo: "sa", Index: t,
				Cut: b.Cut(), BestCut: best.Cut(), Imbalance: b.Imbalance(),
				Trials: trialsPerTemp, Accepted: accepted,
				AcceptRatio: float64(accepted) / float64(trialsPerTemp), Temp: temp,
				ElapsedNS: time.Since(tempStart).Nanoseconds(),
			})
		}
		if o.Cooling == CoolAdaptive {
			mean := costSum / float64(trialsPerTemp)
			variance := costSumSq/float64(trialsPerTemp) - mean*mean
			if variance < 1e-12 {
				variance = 1e-12
			}
			sigma := math.Sqrt(variance)
			temp = temp / (1 + temp*math.Log(1+o.Delta)/(3*sigma))
		} else {
			temp *= o.TempFactor
		}
		if float64(accepted) < o.MinPercent*float64(trialsPerTemp) && !improvedBest {
			frozen++
		} else {
			frozen = 0
		}
	}

	// Adopt the best state seen and rebalance it exactly.
	b.Assign(best)
	partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	st.FinalCut = b.Cut()
	if obs != nil {
		ratio := 0.0
		if st.Trials > 0 {
			ratio = float64(st.Accepted) / float64(st.Trials)
		}
		obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "sa", Index: st.Temperatures,
			Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
			Gain: st.InitialCut - st.FinalCut,
			Trials: st.Trials, Accepted: st.Accepted,
			AcceptRatio: ratio, Temp: st.FinalTemp,
			ElapsedNS: time.Since(runStart).Nanoseconds(),
		})
	}
	return st, nil
}

// Run anneals from a fresh random balanced bisection of g.
func Run(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, Stats, error) {
	b := partition.NewRandom(g, r)
	st, err := Refine(b, opts, r)
	return b, st, err
}

// calibrateStartTemp estimates the temperature at which the acceptance
// ratio of random moves from the current state is about InitProb: it
// samples uphill deltas and solves exp(−avgUp/T) = InitProb, then doubles
// T (a few times at most) until a sampled acceptance ratio reaches the
// target, mirroring JAMS's trial-run calibration.
func calibrateStartTemp(b *partition.Bisection, o Options, delta func(int32) float64, r *rng.Rand) float64 {
	n := b.N()
	samples := 64 + 4*n
	if samples > 4096 {
		samples = 4096
	}
	var upSum float64
	var upCount int
	for i := 0; i < samples; i++ {
		if dE := delta(int32(r.Intn(n))); dE > 0 {
			upSum += dE
			upCount++
		}
	}
	if upCount == 0 {
		// All moves downhill (or flat): any modest temperature works.
		return 1.0
	}
	temp := (upSum / float64(upCount)) / math.Log(1/o.InitProb)
	for iter := 0; iter < 30; iter++ {
		acc := 0
		for i := 0; i < samples; i++ {
			dE := delta(int32(r.Intn(n)))
			if dE <= 0 || r.Float64() < math.Exp(-dE/temp) {
				acc++
			}
		}
		if float64(acc) >= o.InitProb*float64(samples) {
			break
		}
		temp *= 2
	}
	return temp
}
