package anneal

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/trace"
)

// fastTraceOpts is a short schedule so trace tests stay quick.
func fastTraceOpts() Options {
	return Options{SizeFactor: 2, TempFactor: 0.8, FreezeLim: 2, MaxTemps: 40}
}

// TestObserverDoesNotChangeRun verifies the detach half of the
// observability contract for SA: the observer draws nothing from the
// random stream, so the annealing trajectory is bit-identical with and
// without one.
func TestObserverDoesNotChangeRun(t *testing.T) {
	g, err := gen.GNP(120, 0.05, rng.NewFib(11))
	if err != nil {
		t.Fatal(err)
	}
	plain, plainStats, err := Run(g, fastTraceOpts(), rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	opts := fastTraceOpts()
	opts.Observer = rec
	traced, tracedStats, err := Run(g, opts, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut() != traced.Cut() || plainStats != tracedStats {
		t.Fatalf("observer changed the run: cut %d vs %d, stats %+v vs %+v",
			plain.Cut(), traced.Cut(), plainStats, tracedStats)
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if plain.Side(v) != traced.Side(v) {
			t.Fatalf("observer changed the bisection at vertex %d", v)
		}
	}
}

// TestTempDoneEventsMatchSchedule cross-checks temp_done events against
// the Stats: one per temperature, strictly decreasing temperature,
// acceptance ratios in [0,1] consistent with the counters, and a final
// run_done carrying the totals.
func TestTempDoneEventsMatchSchedule(t *testing.T) {
	g, err := gen.GNP(100, 0.06, rng.NewFib(13))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	opts := fastTraceOpts()
	opts.Observer = rec
	_, st, err := Run(g, opts, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	var temps int
	prevTemp := math.Inf(1)
	for _, e := range rec.Events() {
		if e.Type != trace.TypeTempDone {
			continue
		}
		if e.Index != temps {
			t.Fatalf("temp_done index %d out of order (want %d)", e.Index, temps)
		}
		if e.Temp >= prevTemp {
			t.Fatalf("temperature did not decrease: %g after %g", e.Temp, prevTemp)
		}
		prevTemp = e.Temp
		if e.Trials <= 0 || e.Accepted < 0 || e.Accepted > e.Trials {
			t.Fatalf("inconsistent counters: %+v", e)
		}
		if want := float64(e.Accepted) / float64(e.Trials); math.Abs(e.AcceptRatio-want) > 1e-12 {
			t.Fatalf("accept_ratio %g, want %g", e.AcceptRatio, want)
		}
		temps++
	}
	if temps != st.Temperatures {
		t.Fatalf("saw %d temp_done events, Stats.Temperatures = %d", temps, st.Temperatures)
	}
	events := rec.Events()
	last := events[len(events)-1]
	if last.Type != trace.TypeRunDone {
		t.Fatalf("last event is %s, want run_done", last.Type)
	}
	if last.Trials != st.Trials || last.Accepted != st.Accepted || last.Cut != st.FinalCut || last.Index != st.Temperatures {
		t.Fatalf("run_done %+v disagrees with stats %+v", last, st)
	}
	if last.Temp != st.FinalTemp {
		t.Fatalf("run_done temp %g, want final temp %g", last.Temp, st.FinalTemp)
	}
}

// TestAcceptanceRatioDecays checks the qualitative shape the freezing
// criterion relies on (and the trace exposes): the mean acceptance
// ratio over the last quarter of the schedule is below the mean over
// the first quarter.
func TestAcceptanceRatioDecays(t *testing.T) {
	g, err := gen.GNP(150, 0.05, rng.NewFib(17))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	opts := fastTraceOpts()
	opts.Observer = rec
	if _, _, err := Run(g, opts, rng.NewFib(21)); err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	for _, e := range rec.Events() {
		if e.Type == trace.TypeTempDone {
			ratios = append(ratios, e.AcceptRatio)
		}
	}
	if len(ratios) < 4 {
		t.Skipf("schedule too short to compare quartiles (%d temperatures)", len(ratios))
	}
	q := len(ratios) / 4
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if early, late := mean(ratios[:q]), mean(ratios[len(ratios)-q:]); late >= early {
		t.Fatalf("acceptance ratio did not decay toward freezing: early %.3f, late %.3f", early, late)
	}
}
