package anneal

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// The quantized acceptance table. A Metropolis trial accepts an uphill
// move when u < exp(−x) for u = Float64() and x = Δ/T > 0. Computing
// math.Exp per trial is the single most expensive instruction sequence
// in the annealing inner loop, so the hot path brackets exp(−x) with a
// precomputed table instead and only falls back to the exact value when
// the bracket cannot decide.
//
// The table holds exp at the bucket edges: expEdge[i] = exp(−i·δ) for
// δ = expTableMaxX / expTableSize. Because exp(−x) is monotone
// decreasing, for x in bucket i (i·δ ≤ x < (i+1)·δ):
//
//	expEdge[i+1] ≤ exp(−x) ≤ expEdge[i]
//
// so u < expEdge[i+1] proves acceptance, u ≥ expEdge[i] proves
// rejection, and only a u inside the bracket — a gap of width
// expEdge[i]·(1 − e^(−δ)) ≤ 1 − e^(−δ) < δ ≈ 3.1% — needs math.Exp.
// The decision is therefore *exactly* the naive u < exp(−x) for every
// input, which is what keeps cuts and traces bit-identical to the
// pre-table implementation (TestExpTableBracketsExp pins the bound and
// the agreement).
//
// δ is exactly 2⁻⁵, so x·expTableInvStep is a power-of-two scaling —
// exact in floating point — and the computed bucket index is always the
// true one: the bracket never mis-indexes at a bucket edge.
//
// Sizing: the table is probed at an effectively random index every
// uphill trial, so it must stay resident in L1 next to the trial loop's
// side/gain/weight arrays — 1024 entries (8KB) do; a 4096-entry version
// measured slower from cache misses than the math.Exp it was replacing.
// The wider δ only widens the undecided sliver (≤ 1 − e^(−δ) ≈ 3.1% of
// uphill trials take the exact fallback), it never changes a decision.
const (
	expTableSize    = 1024
	expTableMaxX    = 32.0
	expTableInvStep = expTableSize / expTableMaxX // = 32, exactly
)

var expEdge [expTableSize + 1]float64

// expEdgeScaled[i] = expEdge[i]·2⁵³. The trial loop's u is
// float64(word>>11)/2⁵³, where both the conversion (≤53 significant
// bits) and the power-of-two division are exact, so
//
//	u < expEdge[i]  ⟺  float64(word>>11) < expEdge[i]·2⁵³
//
// with the scaling itself exact (an exponent shift; expEdge values lie
// in [e⁻³², 1], far from overflow and subnormals). Probing against the
// scaled edges lets the hot path defer u's division until a trial
// actually reaches the exact fallback.
var expEdgeScaled [expTableSize + 1]float64

func init() {
	for i := range expEdge {
		expEdge[i] = math.Exp(-float64(i) / expTableInvStep)
		expEdgeScaled[i] = expEdge[i] * (1 << 53)
	}
}

// expProbe results: the bracket proved the decision, or u landed in the
// undecided sliver (or x was beyond the table) and the caller must fall
// back to the exact test.
const (
	probeReject    int8 = 0
	probeAccept    int8 = 1
	probeUndecided int8 = -1
)

// expProbe decides u < exp(−x) from the bracket table alone when it
// can. It contains no calls — one scaled conversion, two loads, two
// compares — so it inlines into the annealing trial loop; keeping the
// exact fallback at the call site is what fits it in the budget. The
// `& (expTableSize − 1)` is a numeric no-op — x < maxX already implies
// i ≤ expTableSize−1 — stated so the compiler can drop both bounds
// checks.
func expProbe(u, x float64) int8 {
	// u·2⁵³ is exact (power-of-two scaling, u < 1 so no overflow), so
	// delegating to the scaled probe preserves every decision.
	return expProbeScaled(u*(1<<53), x)
}

// expTailScaled bounds the tail: for any x ≥ expTableMaxX,
// exp(−x) ≤ e⁻³² < 2e⁻³² = expTailScaled/2⁵³ — the factor of two
// swallows math.Exp's sub-ulp rounding with six orders of magnitude to
// spare — so u ≥ expTailScaled/2⁵³ proves u < exp(−x) false no matter
// which exact value the fallback would compute. Cold, frozen-phase
// temperatures put most uphill trials in this tail (x = Δ/T grows as T
// shrinks); without the tail test every one of them would pay the
// math.Exp fallback just to reject a u that is nowhere near e⁻³².
var expTailScaled = 2 * math.Exp(-expTableMaxX) * (1 << 53)

// expProbeScaled is expProbe with u pre-scaled by 2⁵³ (fw = u·2⁵³ —
// in the trial loop, the raw 53-bit draw before its division into
// [0,1)). Comparing against expEdgeScaled spares the hot path that
// division; see the expEdgeScaled comment for the exactness argument.
func expProbeScaled(fw, x float64) int8 {
	if x < expTableMaxX {
		i := int(x*expTableInvStep) & (expTableSize - 1)
		if fw < expEdgeScaled[i+1] {
			return probeAccept
		}
		if fw >= expEdgeScaled[i] {
			return probeReject
		}
	} else if fw >= expTailScaled {
		// Beyond the table (including x = +Inf from an underflowed
		// temperature): reject unless u is so small the exact test
		// must arbitrate (probability ≈ 2e-14·2⁵³/2⁵³ — effectively
		// never).
		return probeReject
	}
	return probeUndecided
}

// acceptUphill reports u < exp(−x) for x > 0, via the bracket table
// unless the ablation flag forces the exact per-trial math.Exp. The
// trial loop open-codes this dispatch so the probe inlines; calibration
// and the tests use this form.
func acceptUphill(u, x float64, disableTable bool) bool {
	if !disableTable {
		switch expProbe(u, x) {
		case probeAccept:
			return true
		case probeReject:
			return false
		}
	}
	return acceptUphillExact(u, x)
}

// acceptUphillExact is the exact decision u < exp(−x). math.Exp(−Inf)
// is 0, so an underflowed temperature rejects every uphill move, as it
// should. Kept out of line so acceptUphill's fast path stays within the
// inlining budget; this cold path runs for under 1% of uphill trials.
//
//go:noinline
func acceptUphillExact(u, x float64) bool {
	return u < math.Exp(-x)
}

// deltaCost returns the cost change of flipping v, given d =
// float64(sideDiff) and d2 = d·d for the current side-weight difference
// sideDiff = w(V₀) − w(V₁), v's current side, float weight, and gain.
// Callers hoist d and d2 and refresh them — always by converting the
// exact integer sideDiff, never by float accumulation — when a move is
// accepted, so the per-trial conversion and squaring of a value that
// changes only on acceptance are off the hot path. The arithmetic —
// operation by operation, including association — is the delta closure
// this code replaces, so the produced float64 is bit-identical; only
// the closure call, the accessor calls, and the per-call side-weight
// subtraction are gone.
func deltaCost(d, d2 float64, side uint8, wv float64, gain int64, alpha float64) float64 {
	var nd float64
	if side == 0 {
		nd = d - 2*wv
	} else {
		nd = d + 2*wv
	}
	return -float64(gain) + alpha*(nd*nd-d2)
}

// costAt returns the annealing cost cut + α·(w(V₀)−w(V₁))² from the
// hoisted square d2, with the exact arithmetic shape of the cost
// closure it replaces.
func costAt(cut int64, d2 float64, alpha float64) float64 {
	return float64(cut) + alpha*d2
}

// Refiner is the reusable workspace for annealing runs: the cached
// float64 vertex weights the trial loop's delta needs, the undo log of
// accepted moves, and the best-state side buffer the log materializes
// into. A zero Refiner is ready to use; it sizes itself to each graph it
// sees and is reused across runs without further allocation (a warm
// Refiner makes an entire Refine allocation-free — asserted by
// TestRefineSteadyStateZeroAlloc). Refiners carry no algorithm state
// between calls — using one never changes results — but they are not
// safe for concurrent use; give each goroutine its own (see
// core.ParallelBestOf).
type Refiner struct {
	wf        []float64 // float64(VertexWeight(v)), refreshed per run
	wi        []int64   // VertexWeight(v), for incremental side-diff updates
	bestSides []uint8   // best state seen, materialized from the log
	log       []int32   // accepted moves this temperature (undo log)
	words     []uint64  // wordStream prefetch block (graph-independent)
}

// NewRefiner returns an empty workspace. Equivalent to new(Refiner);
// provided for call-site clarity.
func NewRefiner() *Refiner { return new(Refiner) }

// ensure sizes the workspace for g and refreshes the cached vertex
// weights (the same workspace serves different graphs in turn — e.g.
// the coarse and fine levels of a compacted run). Once the workspace
// has seen a graph at least as large, this performs no allocation.
func (w *Refiner) ensure(g *graph.Graph) {
	n := g.N()
	if cap(w.wf) < n {
		w.wf = make([]float64, 0, n)
	}
	w.wf = w.wf[:n]
	if cap(w.wi) < n {
		w.wi = make([]int64, 0, n)
	}
	w.wi = w.wi[:n]
	for v := int32(0); int(v) < n; v++ {
		wv := g.VertexWeight(v)
		w.wi[v] = int64(wv)
		w.wf[v] = float64(wv)
	}
	if cap(w.bestSides) < n {
		w.bestSides = make([]uint8, n)
	}
	w.bestSides = w.bestSides[:n]
	if w.words == nil {
		w.words = make([]uint64, wordStreamBlock)
	}
}

// workspace returns opts.Workspace or a fresh private one.
func workspace(opts Options) *Refiner {
	if opts.Workspace != nil {
		return opts.Workspace
	}
	return new(Refiner)
}

// wordStreamBlock is the prefetch block size: 4KB of words, small
// enough to stay L1-resident next to the trial loop's working set,
// large enough to amortize the per-block Fill dispatch to noise.
const wordStreamBlock = 512

// wordStream hands the annealing loops their random words. For a
// rewindable source (the production lagged-Fibonacci generator) it
// prefetches words a block at a time with Fill — so the hot path reads
// the next word from a local buffer instead of making an interface
// call per draw — and returns the unconsumed tail with Unread when the
// run finishes. Net source consumption is therefore exactly the words
// the run used, in order: callers sharing the source before and after
// the run (BestOf chains, calibration, the golden fixtures) see the
// same stream as scalar draws. Sources without rewind fall back to
// draw-through, one virtual call per word, same results.
type wordStream struct {
	buf []uint64     // prefetched block; nil in draw-through mode
	pos int          // next unconsumed index; len(buf) when drained
	rw  rng.Rewinder // non-nil in block mode
	src rng.Source   // draw-through fallback
}

func (s *wordStream) init(src rng.Source, buf []uint64) {
	s.src = src
	if rw, ok := src.(rng.Rewinder); ok && len(buf) > 0 {
		s.rw = rw
		s.buf = buf
		s.pos = len(buf) // drained: the first draw fills the block
	} else {
		s.rw = nil
		s.buf = nil
		s.pos = 0
	}
}

// tryNext returns the stream's next word when the block has one — a
// bounds-known buffer load and a cursor bump, no calls, so it inlines
// into the trial loop. On a drained block (or in draw-through mode,
// always) it reports false and the caller falls back to refill; the
// pair at a call site is the moral equivalent of a next() method,
// split so the fast path fits the inlining budget with the refill call
// kept out of line.
func (s *wordStream) tryNext() (uint64, bool) {
	if s.pos < len(s.buf) {
		w := s.buf[s.pos]
		s.pos++
		return w, true
	}
	return 0, false
}

//go:noinline
func (s *wordStream) refill() uint64 {
	if s.rw == nil {
		return s.src.Uint64()
	}
	s.rw.Fill(s.buf)
	s.pos = 1
	return s.buf[0]
}

// next is tryNext/refill in one call, for paths where inlining the
// fast path does not matter.
func (s *wordStream) next() uint64 {
	if w, ok := s.tryNext(); ok {
		return w
	}
	return s.refill()
}

// finish returns the prefetched-but-unconsumed words to the source,
// restoring its position to exactly what scalar consumption would have
// left. Must run before the caller's source is used by anyone else.
func (s *wordStream) finish() {
	if s.rw != nil {
		s.rw.Unread(len(s.buf) - s.pos)
		s.pos = len(s.buf)
	}
}
