package anneal

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

// A checkpoint budget of k must be indistinguishable from MaxTemps = k:
// the temperature loop consumes the same random stream, the epilogue
// adopts the same best-seen state and repairs balance the same way, so
// sides and cut match exactly — the only difference is the stop
// sentinel. Exercises every checkpoint index up to the natural
// temperature count.
func TestControlBudgetEqualsMaxTemps(t *testing.T) {
	g, err := gen.GNP(60, 0.12, rng.NewFib(23))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{SizeFactor: 4, TempFactor: 0.8, FreezeLim: 3, MaxTemps: 200}
	full := partition.NewRandom(g, rng.NewFib(7))
	fullStats, err := Refine(full, base, rng.NewFib(11))
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Temperatures < 3 {
		t.Fatalf("want a multi-temperature run to cancel into, got %d", fullStats.Temperatures)
	}
	for k := 1; k <= fullStats.Temperatures; k++ {
		capOpts := base
		capOpts.MaxTemps = k
		capped := partition.NewRandom(g, rng.NewFib(7))
		if _, err := Refine(capped, capOpts, rng.NewFib(11)); err != nil {
			t.Fatal(err)
		}
		budOpts := base
		budOpts.Control = runctl.WithBudget(int64(k))
		budgeted := partition.NewRandom(g, rng.NewFib(7))
		st, err := Refine(budgeted, budOpts, rng.NewFib(11))
		if k < fullStats.Temperatures {
			if !errors.Is(err, runctl.ErrBudgetExceeded) {
				t.Fatalf("budget %d: err = %v, want ErrBudgetExceeded", k, err)
			}
		} else if err != nil {
			// The run froze before the budget ran out.
			t.Fatalf("budget %d: unexpected err %v", k, err)
		}
		if err := budgeted.Validate(); err != nil {
			t.Fatalf("budget %d: invalid bisection: %v", k, err)
		}
		if st.Temperatures != k && err != nil {
			t.Fatalf("budget %d ran %d temperatures", k, st.Temperatures)
		}
		if budgeted.Cut() != capped.Cut() || !bytes.Equal(budgeted.SidesRef(), capped.SidesRef()) {
			t.Fatalf("budget %d diverges from MaxTemps=%d: cut %d vs %d", k, k, budgeted.Cut(), capped.Cut())
		}
	}
}

// A run cancelled at any checkpoint still ends balanced: the stop path
// goes through the same adopt-best-and-rebalance epilogue as a frozen
// run.
func TestCancelledRunIsBalanced(t *testing.T) {
	g, err := gen.GNP(50, 0.15, rng.NewFib(31))
	if err != nil {
		t.Fatal(err)
	}
	tol := partition.MinAchievableImbalance(g.TotalVertexWeight())
	for k := int64(1); k <= 6; k++ {
		b := partition.NewRandom(g, rng.NewFib(8))
		opts := Options{SizeFactor: 4, TempFactor: 0.8, FreezeLim: 3, MaxTemps: 200, Control: runctl.WithBudget(k)}
		if _, err := Refine(b, opts, rng.NewFib(9)); err != nil && !runctl.IsStop(err) {
			t.Fatal(err)
		}
		if imb := b.Imbalance(); imb > tol {
			t.Fatalf("budget %d: imbalance %d > %d after cancel", k, imb, tol)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("budget %d: %v", k, err)
		}
	}
}

// A context cancelled before the run starts must still return a valid
// balanced bisection (the epilogue runs) with the context's error.
func TestPreCancelledContextStillBalances(t *testing.T) {
	g, err := gen.GNP(40, 0.2, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, rng.NewFib(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{SizeFactor: 4, TempFactor: 0.8, FreezeLim: 3, MaxTemps: 200, Control: runctl.FromContext(ctx)}
	st, err := Refine(b, opts, rng.NewFib(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Temperatures != 0 {
		t.Fatalf("cancelled run annealed %d temperatures", st.Temperatures)
	}
	if imb := b.Imbalance(); imb > partition.MinAchievableImbalance(g.TotalVertexWeight()) {
		t.Fatalf("imbalance %d after pre-cancelled run", imb)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
