package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/kl"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// TestDeterminismMatrix is the repo-wide thread-count invariance gate:
// one kl, fm, and mlkl configuration each run at thread counts 1, 2, 4,
// and 8 must produce the identical cut, side assignment, and trace
// event stream. Every parallel gate is lowered so the sharded kernels —
// matching handshake, coarsen contraction, KL/FM gain updates, and the
// FM proposal reduce — all actually engage; degree 1 runs the same
// code paths inline, which is what makes `-threads` a pure performance
// knob. ElapsedNS is wall-clock and is zeroed before hashing; every
// other event field is covered.
func TestDeterminismMatrix(t *testing.T) {
	savedC, savedM := coarsen.ParallelMinVertices, matching.ParallelMinVertices
	savedK, savedF := kl.ParallelMinVertices, fm.ParallelMinVertices
	savedKD, savedFD := kl.ParallelMinDegree, fm.ParallelMinDegree
	savedS := spectral.ParallelMinVertices
	coarsen.ParallelMinVertices, matching.ParallelMinVertices = 1, 1
	kl.ParallelMinVertices, fm.ParallelMinVertices = 1, 1
	kl.ParallelMinDegree, fm.ParallelMinDegree = 1, 1
	spectral.ParallelMinVertices = 1
	t.Cleanup(func() {
		coarsen.ParallelMinVertices, matching.ParallelMinVertices = savedC, savedM
		kl.ParallelMinVertices, fm.ParallelMinVertices = savedK, savedF
		kl.ParallelMinDegree, fm.ParallelMinDegree = savedKD, savedFD
		spectral.ParallelMinVertices = savedS
	})

	g, err := gen.GNP(3000, 8.0/2999, rng.NewFib(47))
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		cut       int64
		sidesHash uint64
		traceHash uint64
		events    int
	}
	run := func(name string, threads int) cell {
		base, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(0)
		alg := WithObserver(WithParallel(WithWorkspace(base), threads), rec)
		b, err := alg.Bisect(g, rng.NewFib(101))
		if err != nil {
			t.Fatalf("%s threads=%d: %v", name, threads, err)
		}
		sh := fnv.New64a()
		sh.Write(b.SidesRef())
		th := fnv.New64a()
		for _, e := range rec.Events() {
			e.ElapsedNS = 0
			fmt.Fprintf(th, "%+v\n", e)
		}
		return cell{cut: b.Cut(), sidesHash: sh.Sum64(), traceHash: th.Sum64(), events: rec.Len()}
	}

	// "mlkl+spec" adds the sharded spectral solver to the matrix: the
	// coarsest-level Fiedler solve (sharded matvec + fixed-block
	// reductions) must not perturb the split at any thread count.
	for _, name := range []string{"kl", "fm", "mlkl", "mlkl+spec"} {
		ref := run(name, 1)
		if ref.events == 0 {
			t.Fatalf("%s: no trace events recorded — the trace hash pins nothing", name)
		}
		for _, threads := range []int{2, 4, 8} {
			got := run(name, threads)
			if got != ref {
				t.Fatalf("%s: threads=%d diverges from threads=1:\n  got  %+v\n  want %+v",
					name, threads, got, ref)
			}
		}
	}
}
