// Package core assembles the repository's bisection algorithms behind a
// single Bisector interface and provides the composed methods the paper
// evaluates:
//
//   - KL — Kernighan–Lin from a random start (Section III);
//   - SA — simulated annealing from a random start (Section II);
//   - CKL / CSA — compacted KL / SA (Section V): contract a random
//     maximal matching, bisect the contracted graph, project back, and
//     finish on the original graph;
//
// plus the extensions used as baselines and ablations: FM, compacted FM,
// multilevel (recursive compaction) KL/FM, spectral, greedy growth, and
// random assignment.
//
// All algorithms are deterministic functions of the supplied rng.Rand.
//
// Algorithms and drivers that can report their dynamics implement
// Observable; WithObserver attaches a trace.Observer to any Bisector
// (a no-op for baselines). Parallel drivers buffer events per start
// and replay them in order, so traces stay deterministic — see
// internal/trace and docs/OBSERVABILITY.md.
package core

import (
	"fmt"
	"sort"

	"repro/internal/anneal"
	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// Bisector produces a balanced bisection of a graph. Implementations must
// be deterministic given the random source and must return a bisection of
// exactly the argument graph, balanced to the parity minimum for
// unit-weight graphs.
type Bisector interface {
	// Name returns a short stable identifier ("kl", "csa", ...).
	Name() string
	// Bisect partitions g.
	Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error)
}

// Observable is a Bisector whose runs can report trace events. All the
// algorithmic bisectors (KL, SA, FM) and the composing drivers
// (Compacted, Multilevel, BestOf, ParallelBestOf) implement it; the
// trivial baselines (Random, Greedy, Spectral) have no interior dynamics
// to report and do not.
type Observable interface {
	Bisector
	// WithObserver returns a copy of the bisector whose runs report to
	// obs. The receiver is not modified, and the returned bisector
	// produces exactly the same bisections (observers never touch the
	// random stream).
	WithObserver(obs trace.Observer) Bisector
}

// WithObserver attaches obs to b if b is Observable; otherwise it
// returns b unchanged. A nil obs also returns b unchanged, preserving
// the nil fast path.
func WithObserver(b Bisector, obs trace.Observer) Bisector {
	if obs == nil {
		return b
	}
	if o, ok := b.(Observable); ok {
		return o.WithObserver(obs)
	}
	return b
}

// Reusable is a Bisector whose repeated runs can share a reusable
// refinement workspace (gain buckets, swap logs, undo logs, scratch
// arrays) so that steady-state passes allocate nothing. The algorithmic
// refiners (KL, FM, SA) and the composing drivers (Compacted,
// Multilevel, BestOf) implement it; the trivial baselines hold no
// reusable pass state and do not.
type Reusable interface {
	Bisector
	// WithWorkspace returns a copy of the bisector owning a freshly
	// allocated private workspace that its runs reuse. Results are
	// identical with or without a workspace. The returned bisector is
	// not safe for concurrent use; create one per goroutine.
	WithWorkspace() Bisector
}

// WithWorkspace attaches a private reusable workspace to b if b is
// Reusable; otherwise it returns b unchanged. Drivers that run many
// starts (BestOf, ParallelBestOf, the harness) call this once per
// goroutine so every start after the first runs allocation-free.
func WithWorkspace(b Bisector) Bisector {
	if ru, ok := b.(Reusable); ok {
		return ru.WithWorkspace()
	}
	return b
}

// withWorkspaceRefinable is WithWorkspace keeping the RefinableBisector
// interface (it holds for the concrete algorithms; the fallback covers
// exotic user implementations).
func withWorkspaceRefinable(b RefinableBisector) RefinableBisector {
	if rb, ok := WithWorkspace(b).(RefinableBisector); ok {
		return rb
	}
	return b
}

// withObserverRefinable attaches obs to b, keeping the RefinableBisector
// interface when the observed copy still satisfies it (it does for the
// concrete algorithms; the fallback covers exotic user implementations).
func withObserverRefinable(b RefinableBisector, obs trace.Observer) RefinableBisector {
	if rb, ok := WithObserver(b, obs).(RefinableBisector); ok {
		return rb
	}
	return b
}

// Random assigns sides uniformly at random under exact balance. It is the
// paper's initial-bisection generator and the weakest baseline.
type Random struct{}

// Name implements Bisector.
func (Random) Name() string { return "random" }

// Bisect implements Bisector.
func (Random) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	return partition.NewRandom(g, r), nil
}

// Greedy grows side 0 by BFS from a random seed until it holds half the
// vertex weight — a cheap locality-aware baseline (on grids and ladders
// it is near-optimal; on random regular graphs it is poor).
type Greedy struct{}

// Name implements Bisector.
func (Greedy) Name() string { return "greedy" }

// Bisect implements Bisector.
func (Greedy) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	n := g.N()
	side := make([]uint8, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return partition.New(g, side)
	}
	half := g.TotalVertexWeight() / 2
	var grown int64
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	// BFS from random seeds until the target weight is reached; new seeds
	// restart the frontier when a component is exhausted.
	perm := r.Perm(n)
	pi := 0
	for grown < half {
		if len(queue) == 0 {
			for pi < n && visited[perm[pi]] {
				pi++
			}
			if pi == n {
				break
			}
			v := int32(perm[pi])
			visited[v] = true
			queue = append(queue, v)
		}
		v := queue[0]
		queue = queue[1:]
		w := int64(g.VertexWeight(v))
		if grown+w > half && grown > 0 {
			continue // skip vertices that would overshoot; try others
		}
		side[v] = 0
		grown += w
		for _, e := range g.Neighbors(v) {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	b, err := partition.New(g, side)
	if err != nil {
		return nil, err
	}
	partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	return b, nil
}

// KL is plain Kernighan–Lin from a random balanced start.
type KL struct{ Opts kl.Options }

// Name implements Bisector.
func (KL) Name() string { return "kl" }

// Bisect implements Bisector.
func (a KL) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	b, _, err := kl.Run(g, a.Opts, r)
	return b, err
}

// SA is plain simulated annealing from a random balanced start.
type SA struct{ Opts anneal.Options }

// Name implements Bisector.
func (SA) Name() string { return "sa" }

// Bisect implements Bisector.
func (a SA) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	b, _, err := anneal.Run(g, a.Opts, r)
	return b, err
}

// FM is Fiduccia–Mattheyses from a random balanced start.
type FM struct{ Opts fm.Options }

// Name implements Bisector.
func (FM) Name() string { return "fm" }

// Bisect implements Bisector.
func (a FM) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	b, _, err := fm.Run(g, a.Opts, r)
	return b, err
}

// Spectral is Fiedler-vector bisection (restarted Lanczos by default;
// see internal/spectral).
type Spectral struct{ Opts spectral.Options }

// Name implements Bisector.
func (Spectral) Name() string { return "spectral" }

// Bisect implements Bisector.
func (a Spectral) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if g.N() == 0 {
		return partition.NewRandom(g, r), nil
	}
	b, err := spectral.Bisect(g, a.Opts, r)
	if err != nil && spectral.IsNotConverged(err) {
		// An exhausted matvec budget still yields a valid best-effort
		// bisection; campaign drivers (BestOf, the harness, bisectd)
		// treat bisector errors as fatal, so the typed quality warning
		// stops here. Library callers who care use spectral.Bisect,
		// which surfaces *ErrNotConverged alongside the result.
		return b, nil
	}
	return b, err
}

// WithWorkspace implements Reusable for Spectral: the solver workspace
// (Lanczos basis slab, matvec buffers, tridiagonal scratch, reduction
// partials) is reused across runs, so every warm solve allocates only
// the returned bisection.
func (a Spectral) WithWorkspace() Bisector {
	a.Opts.Workspace = spectral.NewWorkspace()
	return a
}

// Compacted wraps an inner Bisector with one level of the paper's
// compaction (Section V): (1) form a random maximal matching of G;
// (2) contract it to G′; (3) run the inner bisector on G′; (4) project
// the result back to G; (5) run the inner bisector's refinement on G
// starting from the projected bisection.
type Compacted struct {
	// Inner solves the contracted graph and refines the projection.
	Inner RefinableBisector
	// Match overrides the matching policy (default random maximal).
	Match coarsen.MatchFunc
	// Observer, when non-nil, receives the compaction's level_done
	// events. Use WithObserver to also attach it to Inner's runs.
	Observer trace.Observer
	// Workspace, when non-nil, is the reusable compaction arena the
	// match/contract/project pipeline runs in (see coarsen.Workspace);
	// WithWorkspace sets it. Results are identical with or without one.
	Workspace *coarsen.Workspace
	// ParallelDegree, when > 1, shards the matching and contraction
	// phases across that many goroutines for large graphs; WithParallel
	// sets it (and parallelizes Inner). Results are identical at any
	// degree.
	ParallelDegree int
}

// RefinableBisector is a Bisector that can also improve an existing
// bisection in place — needed by compaction's final phase, which starts
// the algorithm from the projected bisection instead of a random one.
type RefinableBisector interface {
	Bisector
	// Refine improves b in place.
	Refine(b *partition.Bisection, r *rng.Rand) error
}

// Refine implements RefinableBisector for KL.
func (a KL) Refine(b *partition.Bisection, r *rng.Rand) error {
	_, err := kl.Refine(b, a.Opts)
	return err
}

// Refine implements RefinableBisector for FM.
func (a FM) Refine(b *partition.Bisection, r *rng.Rand) error {
	_, err := fm.Refine(b, a.Opts)
	return err
}

// Refine implements RefinableBisector for SA.
func (a SA) Refine(b *partition.Bisection, r *rng.Rand) error {
	_, err := anneal.Refine(b, a.Opts, r)
	return err
}

// WithObserver implements Observable for KL.
func (a KL) WithObserver(obs trace.Observer) Bisector {
	a.Opts.Observer = obs
	return a
}

// WithWorkspace implements Reusable for KL.
func (a KL) WithWorkspace() Bisector {
	a.Opts.Workspace = kl.NewRefiner()
	return a
}

// WithWorkspace implements Reusable for FM.
func (a FM) WithWorkspace() Bisector {
	a.Opts.Workspace = fm.NewRefiner()
	return a
}

// WithWorkspace implements Reusable for SA: the annealing workspace
// (cached vertex weights, undo log, best-state buffer) is reused across
// starts, making every run after the first allocation-free.
func (a SA) WithWorkspace() Bisector {
	a.Opts.Workspace = anneal.NewRefiner()
	return a
}

// WithWorkspace implements Reusable for Compacted: the inner bisector's
// workspace serves both the coarse solve and the final refinement (the
// workspace sizes itself to the larger graph and is reused as-is on the
// smaller one), and a coarsen.Workspace arena carries the matching,
// contraction, and projection, so steady-state compaction allocates
// only the returned bisection.
func (c Compacted) WithWorkspace() Bisector {
	c.Workspace = coarsen.NewWorkspace()
	if c.Inner != nil {
		c.Inner = withWorkspaceRefinable(c.Inner)
	}
	return c
}

// WithWorkspace implements Reusable for Multilevel: one inner workspace
// serves every level of the hierarchy, and a coarsen.Workspace arena
// carries every contraction and interior projection. The options are
// copied, never mutated in place.
func (m Multilevel) WithWorkspace() Bisector {
	var o coarsen.MultilevelOptions
	if m.Opts != nil {
		o = *m.Opts
	}
	o.Workspace = coarsen.NewWorkspace()
	m.Opts = &o
	if m.Inner != nil {
		m.Inner = withWorkspaceRefinable(m.Inner)
	}
	return m
}

// WithWorkspace implements Reusable for BestOf: the inner workspace is
// shared across the sequential starts.
func (b BestOf) WithWorkspace() Bisector {
	if b.Inner != nil {
		b.Inner = WithWorkspace(b.Inner)
	}
	return b
}

// WithObserver implements Observable for SA.
func (a SA) WithObserver(obs trace.Observer) Bisector {
	a.Opts.Observer = obs
	return a
}

// WithObserver implements Observable for FM.
func (a FM) WithObserver(obs trace.Observer) Bisector {
	a.Opts.Observer = obs
	return a
}

// WithObserver implements Observable for Compacted: obs receives the
// compaction's own level_done events plus the inner bisector's events
// from both the coarse solve and the final refinement.
func (c Compacted) WithObserver(obs trace.Observer) Bisector {
	c.Observer = obs
	if c.Inner != nil {
		c.Inner = withObserverRefinable(c.Inner, obs)
	}
	return c
}

// WithObserver implements Observable for Multilevel: obs receives one
// level_done per coarsening and uncoarsening level plus the inner
// bisector's events at every level. The options are copied, never
// mutated in place.
func (m Multilevel) WithObserver(obs trace.Observer) Bisector {
	var o coarsen.MultilevelOptions
	if m.Opts != nil {
		o = *m.Opts
	}
	o.Observer = obs
	m.Opts = &o
	if m.Inner != nil {
		m.Inner = withObserverRefinable(m.Inner, obs)
	}
	return m
}

// Name implements Bisector.
func (c Compacted) Name() string { return "c" + c.Inner.Name() }

// Bisect implements Bisector.
func (c Compacted) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if c.Inner == nil {
		return nil, fmt.Errorf("core: Compacted with nil inner bisector")
	}
	var stopErr error
	initial := func(cg *graph.Graph, rr *rng.Rand) *partition.Bisection {
		b, err := c.Inner.Bisect(cg, rr)
		if err != nil {
			if runctl.IsStop(err) && b != nil {
				// Interrupted, not failed: the inner run's best-so-far is a
				// valid coarse bisection — keep it and carry the sentinel.
				stopErr = err
				return b
			}
			return partition.NewRandom(cg, rr) // degrade gracefully
		}
		return b
	}
	var start *partition.Bisection
	var err error
	if c.Workspace != nil {
		c.Workspace.SetParallel(c.ParallelDegree) // idempotent; ≤1 detaches
		start, err = c.Workspace.CompactOnce(g, c.Match, initial, nil, r, c.Observer)
	} else if c.ParallelDegree > 1 {
		// No reusable arena: run in an ephemeral one carrying the pool,
		// released when the run ends.
		w := coarsen.NewWorkspace()
		defer w.Close()
		w.SetParallel(c.ParallelDegree)
		start, err = w.CompactOnce(g, c.Match, initial, nil, r, c.Observer)
	} else {
		start, err = coarsen.CompactOnce(g, c.Match, initial, nil, r, c.Observer)
	}
	if err != nil {
		return nil, err
	}
	// The final refinement polls the same control through the inner
	// bisector; an interrupted refinement leaves start at its last
	// completed checkpoint, which is exactly the result we want to keep.
	if err := c.Inner.Refine(start, r); err != nil {
		if !runctl.IsStop(err) {
			return nil, err
		}
		if stopErr == nil {
			stopErr = err
		}
	}
	partition.RepairBalance(start, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	return start, stopErr
}

// Multilevel runs the recursive-compaction pipeline with the inner
// bisector solving the coarsest graph and refining at every level.
type Multilevel struct {
	Inner RefinableBisector
	Opts  *coarsen.MultilevelOptions
}

// Name implements Bisector. SpectralInit variants append "+spec"
// ("mlkl+spec"), matching their registry names.
func (m Multilevel) Name() string {
	n := "ml" + m.Inner.Name()
	if m.Opts != nil && m.Opts.SpectralInit {
		n += "+spec"
	}
	return n
}

// Bisect implements Bisector.
func (m Multilevel) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if m.Inner == nil {
		return nil, fmt.Errorf("core: Multilevel with nil inner bisector")
	}
	var stopErr error
	initial := func(cg *graph.Graph, rr *rng.Rand) *partition.Bisection {
		b, err := m.Inner.Bisect(cg, rr)
		if err != nil {
			if runctl.IsStop(err) && b != nil {
				stopErr = err
				return b
			}
			return partition.NewRandom(cg, rr)
		}
		return b
	}
	refine := func(b *partition.Bisection, rr *rng.Rand) {
		_ = m.Inner.Refine(b, rr)
	}
	b, err := coarsen.Multilevel(g, m.Opts, initial, refine, r)
	if err != nil {
		if !runctl.IsStop(err) || b == nil {
			return nil, err
		}
		// The driver stopped mid-coarsening but still projected a valid
		// bisection back to g; keep it and carry the sentinel.
		stopErr = err
	}
	partition.RepairBalance(b, partition.MinAchievableImbalance(g.TotalVertexWeight()))
	return b, stopErr
}

// BestOf runs the inner bisector k times on independent random streams
// and keeps the lowest cut — the paper's best-of-two-starts protocol is
// BestOf{Inner, 2}.
type BestOf struct {
	Inner  Bisector
	Starts int
	// Observer, when non-nil, receives the inner runs' events (stamped
	// with their start index) and a final run_done with the kept cut.
	Observer trace.Observer
	// Control, when non-nil, is polled (without consuming budget) between
	// starts, and interrupted inner runs' best-so-far results stay in the
	// running for the kept cut; WithControl sets it and shares the same
	// control with the inner bisector.
	Control *runctl.Control
}

// Name implements Bisector.
func (b BestOf) Name() string { return fmt.Sprintf("%s×%d", b.Inner.Name(), b.Starts) }

// WithObserver implements Observable.
func (b BestOf) WithObserver(obs trace.Observer) Bisector {
	b.Observer = obs
	return b
}

// Bisect implements Bisector.
func (b BestOf) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if b.Inner == nil {
		return nil, fmt.Errorf("core: BestOf with nil inner bisector")
	}
	starts := b.Starts
	if starts <= 0 {
		starts = 1
	}
	// One reusable workspace shared by all the sequential starts (a no-op
	// for inner bisectors without reusable state).
	base := WithWorkspace(b.Inner)
	var best *partition.Bisection
	var stopErr error
	for i := 0; i < starts; i++ {
		// Poll between starts, never before the first: an already-stopped
		// control still yields one valid candidate from the inner run's
		// own checkpoints. Err never consumes checkpoint budget, so the
		// driver's polls don't perturb the leaf algorithms' accounting.
		if i > 0 {
			if stopErr = b.Control.Err(); stopErr != nil {
				break
			}
		}
		inner := base
		if b.Observer != nil {
			// Starts run sequentially on one stream, so events can flow
			// straight through; only the start stamp is added.
			inner = WithObserver(inner, trace.WithStart(b.Observer, i))
		}
		cand, err := inner.Bisect(g, r)
		if err != nil {
			if !runctl.IsStop(err) || cand == nil {
				return nil, err
			}
			stopErr = err
		}
		if best == nil || cand.Cut() < best.Cut() {
			best = cand
		}
		if stopErr != nil {
			break
		}
	}
	if b.Observer != nil && best != nil {
		b.Observer.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: b.Name(), Index: starts,
			Cut: best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
		})
	}
	return best, stopErr
}

// New returns the named algorithm with default options. Recognized names:
// random, greedy, kl, sa, fm, ckl, csa, cfm, mlkl, mlfm, mlsa,
// mlkl+spec, mlfm+spec, mlsa+spec, spectral. The "+spec" multilevel
// variants seed the coarsest level from the spectral (Fiedler median)
// split instead of a random start.
func New(name string) (Bisector, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "greedy":
		return Greedy{}, nil
	case "kl":
		return KL{}, nil
	case "sa":
		return SA{}, nil
	case "fm":
		return FM{}, nil
	case "spectral":
		return Spectral{}, nil
	case "ckl":
		return Compacted{Inner: KL{}}, nil
	case "csa":
		return Compacted{Inner: SA{}}, nil
	case "cfm":
		return Compacted{Inner: FM{}}, nil
	case "mlkl":
		return Multilevel{Inner: KL{}}, nil
	case "mlfm":
		return Multilevel{Inner: FM{}}, nil
	case "mlsa":
		return Multilevel{Inner: SA{}}, nil
	case "mlkl+spec":
		return Multilevel{Inner: KL{}, Opts: &coarsen.MultilevelOptions{SpectralInit: true}}, nil
	case "mlfm+spec":
		return Multilevel{Inner: FM{}, Opts: &coarsen.MultilevelOptions{SpectralInit: true}}, nil
	case "mlsa+spec":
		return Multilevel{Inner: SA{}, Opts: &coarsen.MultilevelOptions{SpectralInit: true}}, nil
	default:
		return nil, fmt.Errorf("core: unknown bisector %q (have %v)", name, Names())
	}
}

// Names lists the registry's algorithm names in sorted order.
func Names() []string {
	names := []string{"random", "greedy", "kl", "sa", "fm", "ckl", "csa", "cfm",
		"mlkl", "mlfm", "mlsa", "mlkl+spec", "mlfm+spec", "mlsa+spec", "spectral"}
	sort.Strings(names)
	return names
}

// HeavyEdgeMatch adapts matching.HeavyEdge to coarsen.MatchFunc, for the
// matching-policy ablation.
func HeavyEdgeMatch(g *graph.Graph, r *rng.Rand) []int32 { return matching.HeavyEdge(g, r) }
