package core

import (
	"testing"

	"repro/internal/anneal"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// fastSA keeps tests quick.
func fastSA() SA {
	return SA{Opts: anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 150}}
}

// allBisectors returns every registry algorithm, with SA variants swapped
// to fast schedules.
func allBisectors() []Bisector {
	return []Bisector{
		Random{},
		Greedy{},
		KL{},
		FM{},
		fastSA(),
		Spectral{},
		Compacted{Inner: KL{}},
		Compacted{Inner: FM{}},
		Compacted{Inner: fastSA()},
		Multilevel{Inner: KL{}},
		Multilevel{Inner: FM{}},
	}
}

func TestAllBisectorsProduceValidBalancedBisections(t *testing.T) {
	graphs := []*graph.Graph{
		mustGraph(gen.Cycle(24)),
		mustGraph(gen.Grid(6, 6)),
		mustGraph(gen.Ladder(12)),
		mustGraph(gen.CompleteBinaryTree(16)),
		mustGraph(gen.BReg(60, 4, 3, rng.NewFib(1))),
	}
	for _, alg := range allBisectors() {
		r := rng.NewFib(99)
		for gi, g := range graphs {
			b, err := alg.Bisect(g, r)
			if err != nil {
				t.Fatalf("%s on graph %d: %v", alg.Name(), gi, err)
			}
			if b.Graph() != g {
				t.Fatalf("%s returned bisection of wrong graph", alg.Name())
			}
			if b.Imbalance() > partition.MinAchievableImbalance(g.TotalVertexWeight()) {
				t.Fatalf("%s on graph %d: imbalance %d", alg.Name(), gi, b.Imbalance())
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("%s on graph %d: %v", alg.Name(), gi, err)
			}
		}
	}
}

func TestAllBisectorsCutMatchesSides(t *testing.T) {
	// Every bisector's reported Cut must agree with an independent
	// recount over its Sides — guards the whole incremental machinery.
	g := mustGraph(gen.BReg(80, 4, 3, rng.NewFib(41)))
	for _, alg := range allBisectors() {
		b, err := alg.Bisect(g, rng.NewFib(42))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if got := partition.CutOf(g, b.Sides()); got != b.Cut() {
			t.Fatalf("%s: reported cut %d, recount %d", alg.Name(), b.Cut(), got)
		}
	}
}

func TestNamesAndNew(t *testing.T) {
	for _, name := range Names() {
		alg, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := New("does-not-exist"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCompactedNames(t *testing.T) {
	if (Compacted{Inner: KL{}}).Name() != "ckl" {
		t.Fatal("ckl name")
	}
	if (Multilevel{Inner: FM{}}).Name() != "mlfm" {
		t.Fatal("mlfm name")
	}
	if (BestOf{Inner: KL{}, Starts: 2}).Name() != "kl×2" {
		t.Fatal("bestof name")
	}
}

func TestCompactedNilInner(t *testing.T) {
	g := mustGraph(gen.Cycle(8))
	if _, err := (Compacted{}).Bisect(g, rng.NewFib(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := (Multilevel{}).Bisect(g, rng.NewFib(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := (BestOf{}).Bisect(g, rng.NewFib(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
}

func TestBestOfNeverWorseThanSingle(t *testing.T) {
	g := mustGraph(gen.BReg(100, 4, 3, rng.NewFib(2)))
	single, err := KL{}.Bisect(g, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BestOf{Inner: KL{}, Starts: 4}.Bisect(g, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cut() > single.Cut() {
		t.Fatalf("best-of-4 cut %d worse than single %d (same stream prefix)", multi.Cut(), single.Cut())
	}
}

func TestCKLBeatsKLOnLadders(t *testing.T) {
	// The paper's Table 1 claim, in miniature: averaged over seeds,
	// compacted KL must find cuts at least as small as plain KL on
	// ladders, and strictly better in aggregate.
	g := mustGraph(gen.Ladder(128))
	var klSum, cklSum int64
	const trials = 8
	for seed := uint64(0); seed < trials; seed++ {
		bkl, err := BestOf{Inner: KL{}, Starts: 2}.Bisect(g, rng.NewFib(seed))
		if err != nil {
			t.Fatal(err)
		}
		bckl, err := BestOf{Inner: Compacted{Inner: KL{}}, Starts: 2}.Bisect(g, rng.NewFib(seed))
		if err != nil {
			t.Fatal(err)
		}
		klSum += bkl.Cut()
		cklSum += bckl.Cut()
	}
	if cklSum > klSum {
		t.Fatalf("compaction hurt KL on ladders: CKL total %d vs KL total %d", cklSum, klSum)
	}
	t.Logf("ladder totals over %d seeds: KL=%d CKL=%d", trials, klSum, cklSum)
}

func TestCompactedReachesPlantedCutOnDegree4(t *testing.T) {
	// Observation 1/2 in miniature: on degree-4 BReg graphs the planted
	// bisection is found by CKL.
	r := rng.NewFib(21)
	g, err := gen.BReg(400, 8, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BestOf{Inner: Compacted{Inner: KL{}}, Starts: 2}.Bisect(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() > 8 {
		t.Fatalf("CKL cut %d missed planted width 8", b.Cut())
	}
}

func TestGreedyOnGridIsDecent(t *testing.T) {
	g := mustGraph(gen.Grid(10, 10))
	b, err := Greedy{}.Bisect(g, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	// Random cut ~90; BFS growth should stay well under.
	if b.Cut() > 40 {
		t.Fatalf("greedy grid cut %d", b.Cut())
	}
}

func TestGreedyEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	b, err := Greedy{}.Bisect(g, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 0 {
		t.Fatal("nonzero size")
	}
}

func TestSpectralEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	if _, err := (Spectral{}).Bisect(g, rng.NewFib(1)); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelMatchesExactOnSmallGraphs(t *testing.T) {
	r := rng.NewFib(31)
	for trial := 0; trial < 10; trial++ {
		n := 2 * (4 + r.Intn(6))
		g, err := gen.GNP(n, 0.4, r)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.BisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BestOf{Inner: Multilevel{Inner: KL{}}, Starts: 4}.Bisect(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cut() < opt {
			t.Fatalf("mlkl cut %d below optimum %d", b.Cut(), opt)
		}
		if b.Cut() > opt+1 {
			t.Fatalf("trial %d: mlkl best-of-4 cut %d far from optimum %d", trial, b.Cut(), opt)
		}
	}
}

func TestHeavyEdgeMatchAdapter(t *testing.T) {
	g := mustGraph(gen.Cycle(8))
	mate := HeavyEdgeMatch(g, rng.NewFib(1))
	if len(mate) != 8 {
		t.Fatalf("mate length %d", len(mate))
	}
	// Usable as a Compacted matching policy.
	b, err := (Compacted{Inner: KL{}, Match: HeavyEdgeMatch}).Bisect(g, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
}
