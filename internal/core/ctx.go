package core

import (
	"context"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

// Controllable is a Bisector whose runs honor a runctl.Control: they
// poll it at coarse checkpoints (KL/FM pass boundaries, SA temperature
// boundaries, multilevel level boundaries, multi-start boundaries) and,
// when it stops, return their valid best-so-far bisection together with
// the stop sentinel (runctl.IsStop reports true for it). All the
// algorithmic bisectors and the composing drivers implement it; the
// trivial baselines run to completion in one shot and do not.
type Controllable interface {
	Bisector
	// WithControl returns a copy of the bisector whose runs poll ctl.
	// The receiver is not modified. With a nil ctl — or a control that
	// never stops — the returned bisector produces exactly the same
	// bisections as the receiver (checkpoints poll but never fire).
	WithControl(ctl *runctl.Control) Bisector
}

// WithControl attaches ctl to b if b is Controllable; otherwise — and
// for a nil ctl — it returns b unchanged, preserving the nil fast path.
// Composing drivers propagate the same control to their inner bisectors,
// so one shared budget or context governs the whole composition.
func WithControl(b Bisector, ctl *runctl.Control) Bisector {
	if ctl == nil {
		return b
	}
	if c, ok := b.(Controllable); ok {
		return c.WithControl(ctl)
	}
	return b
}

// withControlRefinable attaches ctl to b, keeping the RefinableBisector
// interface when the controlled copy still satisfies it (it does for the
// concrete algorithms; the fallback covers exotic user implementations).
func withControlRefinable(b RefinableBisector, ctl *runctl.Control) RefinableBisector {
	if rb, ok := WithControl(b, ctl).(RefinableBisector); ok {
		return rb
	}
	return b
}

// BisectCtx runs b on g under ctx. On cancellation or deadline the run
// stops at its next checkpoint and returns its valid best-so-far
// bisection together with ctx's error; use runctl.IsStop (or errors.Is
// against context.Canceled / context.DeadlineExceeded) to tell an
// interrupted result from a failed one. Existing Bisector
// implementations need no changes: anything Controllable is interrupted
// cooperatively, anything else simply runs to completion. With a
// never-cancelled context the result is byte-identical to b.Bisect.
func BisectCtx(ctx context.Context, b Bisector, g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	return WithControl(b, runctl.FromContext(ctx)).Bisect(g, r)
}

// RefineCtx improves bis in place under ctx; the refinement stops at its
// next checkpoint when ctx is done, leaving bis at the last completed
// checkpoint's state, and returns ctx's error. See BisectCtx.
func RefineCtx(ctx context.Context, b RefinableBisector, bis *partition.Bisection, r *rng.Rand) error {
	return withControlRefinable(b, runctl.FromContext(ctx)).Refine(bis, r)
}

// WithControl implements Controllable for KL.
func (a KL) WithControl(ctl *runctl.Control) Bisector {
	a.Opts.Control = ctl
	return a
}

// WithControl implements Controllable for SA.
func (a SA) WithControl(ctl *runctl.Control) Bisector {
	a.Opts.Control = ctl
	return a
}

// WithControl implements Controllable for FM.
func (a FM) WithControl(ctl *runctl.Control) Bisector {
	a.Opts.Control = ctl
	return a
}

// WithControl implements Controllable for Compacted: the control reaches
// the inner bisector, which polls it during both the coarse solve and
// the final refinement — the two places a compacted run spends its time.
func (c Compacted) WithControl(ctl *runctl.Control) Bisector {
	if c.Inner != nil {
		c.Inner = withControlRefinable(c.Inner, ctl)
	}
	return c
}

// WithControl implements Controllable for Multilevel: the driver polls
// before every coarsening level and the same control reaches the inner
// bisector's solves and refinements at every level. The options are
// copied, never mutated in place.
func (m Multilevel) WithControl(ctl *runctl.Control) Bisector {
	var o coarsen.MultilevelOptions
	if m.Opts != nil {
		o = *m.Opts
	}
	o.Control = ctl
	m.Opts = &o
	if m.Inner != nil {
		m.Inner = withControlRefinable(m.Inner, ctl)
	}
	return m
}

// WithControl implements Controllable for BestOf: the driver polls
// between starts (never before the first, so an already-stopped control
// still yields one valid best-so-far candidate from the inner run's own
// checkpoints) and the same control reaches every inner run.
func (b BestOf) WithControl(ctl *runctl.Control) Bisector {
	b.Control = ctl
	if b.Inner != nil {
		b.Inner = WithControl(b.Inner, ctl)
	}
	return b
}

// WithControl implements Controllable for ParallelBestOf: the control is
// shared by all concurrent starts — each polls it through the inner
// bisector's own checkpoints, and a budget is drawn from jointly.
// Cancellation makes in-flight starts return their best-so-far quickly;
// the driver then keeps the best surviving candidate.
func (p ParallelBestOf) WithControl(ctl *runctl.Control) Bisector {
	p.Control = ctl
	if p.Inner != nil {
		p.Inner = WithControl(p.Inner, ctl)
	}
	return p
}
