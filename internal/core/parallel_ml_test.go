package core

import (
	"testing"

	"repro/internal/coarsen"
	"repro/internal/gen"
	"repro/internal/rng"
)

// TestParallelCompactedWorkspaceDeterminism pins the parallel compacted
// path: Compacted implements Reusable, so ParallelBestOf hands each
// worker a private coarsen.Workspace (matching scratch, contraction
// kernel buffers, projection arena) alongside the inner refiner's
// workspace. Neither the arena nor the worker count may change results
// — a sequential BestOf, a 1-worker pool, and a many-worker pool must
// all return the same cut for the same seed. Run under -race this also
// proves concurrent workers never share arena state.
func TestParallelCompactedWorkspaceDeterminism(t *testing.T) {
	g := mustGraph(gen.BReg(300, 8, 4, rng.NewFib(4)))
	ckl := Compacted{Inner: KL{}}
	seq, err := BestOf{Inner: ckl, Starts: 6}.Bisect(g, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := ParallelBestOf{Inner: ckl, Starts: 6, Workers: workers}.Bisect(g, rng.NewFib(9))
		if err != nil {
			t.Fatal(err)
		}
		if par.Cut() != seq.Cut() {
			t.Fatalf("workers=%d: parallel CKL cut %d != sequential %d", workers, par.Cut(), seq.Cut())
		}
		if err := par.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	ws, ok := WithWorkspace(Bisector(ckl)).(Compacted)
	if !ok || ws.Workspace == nil {
		t.Fatal("Compacted.WithWorkspace did not attach a coarsen workspace")
	}
}

// TestParallelMultilevelWorkspaceDeterminism is the multilevel
// counterpart: each worker's private arena carries every level's
// contraction and interior projection across its starts, and results
// stay identical to the workspace-free sequential driver.
func TestParallelMultilevelWorkspaceDeterminism(t *testing.T) {
	g := mustGraph(gen.BReg(300, 8, 4, rng.NewFib(5)))
	mlkl := Multilevel{Inner: KL{}}
	seq, err := BestOf{Inner: mlkl, Starts: 6}.Bisect(g, rng.NewFib(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := ParallelBestOf{Inner: mlkl, Starts: 6, Workers: workers}.Bisect(g, rng.NewFib(11))
		if err != nil {
			t.Fatal(err)
		}
		if par.Cut() != seq.Cut() {
			t.Fatalf("workers=%d: parallel MLKL cut %d != sequential %d", workers, par.Cut(), seq.Cut())
		}
		if err := par.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	ws, ok := WithWorkspace(Bisector(mlkl)).(Multilevel)
	if !ok || ws.Opts == nil || ws.Opts.Workspace == nil {
		t.Fatal("Multilevel.WithWorkspace did not attach a coarsen workspace")
	}
	// The original options value must not have been mutated.
	if mlkl.Opts != nil {
		t.Fatal("WithWorkspace mutated the receiver's options")
	}
	var _ *coarsen.Workspace = ws.Opts.Workspace
}
