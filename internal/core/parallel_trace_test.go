package core

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestParallelBestOfObserverDeterminism is the concurrency half of the
// observability contract, and the test README tells developers to run
// under `go test -race ./internal/core/...`: per-start recorders are
// filled concurrently, merged in start order after the join, and the
// merged JSONL stream must be byte-identical across runs of one seed —
// no goroutine schedule may show through.
func TestParallelBestOfObserverDeterminism(t *testing.T) {
	g, err := gen.GNP(300, 0.03, rng.NewFib(31))
	if err != nil {
		t.Fatal(err)
	}
	stream := func() ([]byte, int64) {
		var buf bytes.Buffer
		obs := trace.NewJSONL(&buf)
		p := ParallelBestOf{Inner: KL{}, Starts: 4, Observer: obs}
		b, err := p.Bisect(g, rng.NewFib(12))
		if err != nil {
			t.Fatal(err)
		}
		if obs.Err() != nil {
			t.Fatal(obs.Err())
		}
		return buf.Bytes(), b.Cut()
	}
	s1, cut1 := stream()
	s2, cut2 := stream()
	if cut1 != cut2 {
		t.Fatalf("cuts differ across runs: %d vs %d", cut1, cut2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("merged JSONL streams differ across runs:\n%s\nvs\n%s", s1, s2)
	}
	if len(s1) == 0 {
		t.Fatal("no events recorded")
	}

	// Attaching the observer must not change the chosen bisection.
	plain, err := ParallelBestOf{Inner: KL{}, Starts: 4}.Bisect(g, rng.NewFib(12))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut() != cut1 {
		t.Fatalf("observer changed the best-of result: %d vs %d", plain.Cut(), cut1)
	}
}

// TestParallelBestOfStartStamps checks the deterministic merge detail:
// events arrive grouped by start index in increasing order, with the
// driver's own run_done last.
func TestParallelBestOfStartStamps(t *testing.T) {
	g, err := gen.GNP(200, 0.04, rng.NewFib(37))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	p := ParallelBestOf{Inner: KL{}, Starts: 3, Observer: rec}
	if _, err := p.Bisect(g, rng.NewFib(14)); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) < 4 {
		t.Fatalf("too few events: %d", len(events))
	}
	last := events[len(events)-1]
	if last.Type != trace.TypeRunDone || last.Algo != p.Name() {
		t.Fatalf("last event is %+v, want the driver's run_done", last)
	}
	prev := 0
	seen := map[int]bool{}
	for _, e := range events[:len(events)-1] {
		if e.Start < prev {
			t.Fatalf("start %d appeared after start %d: merge is not ordered", e.Start, prev)
		}
		prev = e.Start
		seen[e.Start] = true
	}
	for s := 0; s < 3; s++ {
		if !seen[s] {
			t.Fatalf("no events from start %d", s)
		}
	}
}

// TestWithObserverHelper covers the attach helper across the registry:
// observable algorithms gain events, non-observable ones pass through
// unchanged, and results never change either way.
func TestWithObserverHelper(t *testing.T) {
	g, err := gen.GNP(150, 0.05, rng.NewFib(41))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		alg, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "sa" || name == "csa" {
			continue // full JAMS schedule is too slow for this loop; SA is covered in internal/anneal
		}
		plain, err := alg.Bisect(g, rng.NewFib(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec := trace.NewRecorder(0)
		traced, err := WithObserver(alg, rec).Bisect(g, rng.NewFib(2))
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if plain.Cut() != traced.Cut() {
			t.Fatalf("%s: observer changed the cut: %d vs %d", name, plain.Cut(), traced.Cut())
		}
		_, observable := alg.(Observable)
		if observable && rec.Len() == 0 {
			t.Fatalf("%s is observable but produced no events", name)
		}
		if !observable && rec.Len() != 0 {
			t.Fatalf("%s is not observable but produced %d events", name, rec.Len())
		}
	}
}
