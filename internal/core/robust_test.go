package core

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

// poisoned panics on its nth call (counted across goroutines) and
// otherwise delegates, simulating a bisector bug that takes down one
// start of a parallel run.
type poisoned struct {
	inner Bisector
	calls *atomic.Int32
	nth   int32
}

func (p poisoned) Name() string { return "poisoned" }

func (p poisoned) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if p.calls.Add(1) == p.nth {
		panic("poisoned start")
	}
	return p.inner.Bisect(g, r)
}

// failing always errors without a result.
type failing struct{}

func (failing) Name() string { return "failing" }

func (failing) Bisect(*graph.Graph, *rng.Rand) (*partition.Bisection, error) {
	return nil, errors.New("boom")
}

// One panicking start must neither deadlock the pool nor discard the
// surviving starts' best cut: the run returns a valid bisection plus a
// PoolError carrying the captured PanicError and its stack. Run under
// -race in scripts/check.sh (-count=3) to also shake out pool races.
func TestParallelBestOfPoisonedStart(t *testing.T) {
	g := mustGraph(gen.BReg(120, 6, 3, rng.NewFib(2)))
	inner := poisoned{inner: KL{}, calls: new(atomic.Int32), nth: 3}
	best, err := ParallelBestOf{Inner: inner, Starts: 8, Workers: 4}.Bisect(g, rng.NewFib(7))
	if best == nil {
		t.Fatal("poisoned start discarded the survivors' best cut")
	}
	if verr := best.Validate(); verr != nil {
		t.Fatal(verr)
	}
	var pool *PoolError
	if !errors.As(err, &pool) {
		t.Fatalf("err = %v, want *PoolError", err)
	}
	if pool.Starts != 8 || len(pool.Failed) != 1 {
		t.Fatalf("pool reports %d/%d failures, want 1/8", len(pool.Failed), pool.Starts)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("failure %v does not unwrap to *PanicError", pool.Failed[0].Err)
	}
	if pe.Value != "poisoned start" || len(pe.Stack) == 0 {
		t.Fatalf("panic capture lost value or stack: %v", pe)
	}
}

// When every start fails there is nothing to salvage: nil bisection, and
// the PoolError lists all starts in order.
func TestParallelBestOfAllStartsFail(t *testing.T) {
	g := mustGraph(gen.Cycle(16))
	best, err := ParallelBestOf{Inner: failing{}, Starts: 4, Workers: 2}.Bisect(g, rng.NewFib(1))
	if best != nil {
		t.Fatal("got a bisection from all-failing starts")
	}
	var pool *PoolError
	if !errors.As(err, &pool) {
		t.Fatalf("err = %v, want *PoolError", err)
	}
	if len(pool.Failed) != 4 {
		t.Fatalf("%d failures recorded, want 4", len(pool.Failed))
	}
	for i, f := range pool.Failed {
		if f.Start != i {
			t.Fatalf("failures out of order: %v", pool.Failed)
		}
	}
	if pool.Unwrap() == nil || !errors.Is(err, pool.Failed[0].Err) {
		t.Fatal("PoolError does not unwrap to its first failure")
	}
}

// Attaching a control that never fires must not change any algorithm's
// result: same cut, same sides, for every registry entry.
func TestWithControlPreservesResults(t *testing.T) {
	g := mustGraph(gen.GNP(64, 0.1, rng.NewFib(3)))
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := b.Bisect(g, rng.NewFib(11))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		controlled, err := WithControl(b, runctl.WithBudget(1<<40)).Bisect(g, rng.NewFib(11))
		if err != nil {
			t.Fatalf("%s under generous budget: %v", name, err)
		}
		if controlled.Cut() != plain.Cut() || !bytes.Equal(controlled.SidesRef(), plain.SidesRef()) {
			t.Fatalf("%s: control changed the result: cut %d vs %d", name, plain.Cut(), controlled.Cut())
		}
	}
}

// A budget-stopped BestOf still returns a valid best-so-far bisection
// with the stop sentinel, for every budget.
func TestBestOfControlBudget(t *testing.T) {
	g := mustGraph(gen.BReg(160, 6, 3, rng.NewFib(4)))
	for k := int64(1); k <= 10; k++ {
		b := WithControl(BestOf{Inner: KL{}, Starts: 4}, runctl.WithBudget(k))
		res, err := b.Bisect(g, rng.NewFib(5))
		if err != nil && !runctl.IsStop(err) {
			t.Fatalf("budget %d: %v", k, err)
		}
		if res == nil {
			t.Fatalf("budget %d: nil best-so-far", k)
		}
		if verr := res.Validate(); verr != nil {
			t.Fatalf("budget %d: %v", k, verr)
		}
	}
}

// A budget-stopped parallel run keeps the best surviving candidate; a
// generous budget reproduces the uncontrolled result exactly.
func TestParallelBestOfControl(t *testing.T) {
	g := mustGraph(gen.BReg(160, 6, 3, rng.NewFib(6)))
	p := ParallelBestOf{Inner: KL{}, Starts: 4, Workers: 2}
	plain, err := p.Bisect(g, rng.NewFib(8))
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := WithControl(p, runctl.WithBudget(1<<40)).Bisect(g, rng.NewFib(8))
	if err != nil {
		t.Fatal(err)
	}
	if roomy.Cut() != plain.Cut() {
		t.Fatalf("generous budget changed the result: %d vs %d", roomy.Cut(), plain.Cut())
	}
	tight, err := WithControl(p, runctl.WithBudget(2)).Bisect(g, rng.NewFib(8))
	if err != nil && !runctl.IsStop(err) {
		t.Fatal(err)
	}
	if tight == nil {
		t.Fatal("tight budget returned no best-so-far")
	}
	if verr := tight.Validate(); verr != nil {
		t.Fatal(verr)
	}
}

// BisectCtx on an already-cancelled context still returns a valid
// bisection (the leaf algorithms' best-so-far is their random start)
// with the context's error; an un-cancelled context changes nothing.
func TestBisectCtx(t *testing.T) {
	g := mustGraph(gen.GNP(60, 0.12, rng.NewFib(9)))
	plain, err := KL{}.Bisect(g, rng.NewFib(10))
	if err != nil {
		t.Fatal(err)
	}
	same, err := BisectCtx(context.Background(), KL{}, g, rng.NewFib(10))
	if err != nil {
		t.Fatal(err)
	}
	if same.Cut() != plain.Cut() || !bytes.Equal(same.SidesRef(), plain.SidesRef()) {
		t.Fatal("BisectCtx with background context changed the result")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := BisectCtx(ctx, KL{}, g, rng.NewFib(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if b == nil {
		t.Fatal("cancelled BisectCtx returned no best-so-far")
	}
	if verr := b.Validate(); verr != nil {
		t.Fatal(verr)
	}
}

// RefineCtx stops at the next checkpoint, leaving a valid bisection.
func TestRefineCtx(t *testing.T) {
	g := mustGraph(gen.GNP(60, 0.12, rng.NewFib(12)))
	b := partition.NewRandom(g, rng.NewFib(13))
	before := b.Cut()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RefineCtx(ctx, KL{}, b, rng.NewFib(14)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if b.Cut() != before {
		t.Fatal("pre-cancelled RefineCtx modified the bisection")
	}
	if err := RefineCtx(context.Background(), KL{}, b, rng.NewFib(14)); err != nil {
		t.Fatal(err)
	}
	if b.Cut() > before {
		t.Fatal("refinement worsened the cut")
	}
}
