package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestParallelBestOfDeterministic(t *testing.T) {
	g := mustGraph(gen.BReg(200, 8, 3, rng.NewFib(1)))
	p := ParallelBestOf{Inner: KL{}, Starts: 4}
	a, err := p.Bisect(g, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Bisect(g, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut() != b.Cut() {
		t.Fatalf("same seed, cuts %d vs %d", a.Cut(), b.Cut())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelBestOfQuality(t *testing.T) {
	g := mustGraph(gen.BReg(300, 8, 3, rng.NewFib(2)))
	single, err := KL{}.Bisect(g, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := ParallelBestOf{Inner: KL{}, Starts: 8}.Bisect(g, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	// Not guaranteed per-seed, but 8 independent starts essentially never
	// lose to the single run drawn from the first split of the same seed.
	if multi.Cut() > 3*single.Cut() {
		t.Fatalf("parallel best-of-8 cut %d wildly worse than single %d", multi.Cut(), single.Cut())
	}
}

func TestParallelBestOfDefaultsAndErrors(t *testing.T) {
	g := mustGraph(gen.Cycle(16))
	if _, err := (ParallelBestOf{}).Bisect(g, rng.NewFib(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
	// Zero starts defaults to 2; workers default to GOMAXPROCS.
	b, err := ParallelBestOf{Inner: KL{}}.Bisect(g, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains((ParallelBestOf{Inner: KL{}, Starts: 3}).Name(), "kl") {
		t.Fatal("name missing inner")
	}
}

// TestParallelSAWorkspaceDeterminism pins the parallel-chain SA path:
// SA now implements Reusable, so ParallelBestOf hands each worker a
// private annealing workspace. Neither the workspace nor the worker
// count may change results — a sequential BestOf, a 1-worker pool, and
// a many-worker pool must all return the same cut for the same seed.
func TestParallelSAWorkspaceDeterminism(t *testing.T) {
	g := mustGraph(gen.BReg(200, 8, 3, rng.NewFib(4)))
	sa := SA{}
	sa.Opts.MaxTemps = 30
	seq, err := BestOf{Inner: sa, Starts: 4}.Bisect(g, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := ParallelBestOf{Inner: sa, Starts: 4, Workers: workers}.Bisect(g, rng.NewFib(9))
		if err != nil {
			t.Fatal(err)
		}
		if par.Cut() != seq.Cut() {
			t.Fatalf("workers=%d: parallel SA cut %d != sequential %d", workers, par.Cut(), seq.Cut())
		}
		if err := par.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := Bisector(sa).(Reusable); !ok {
		t.Fatal("SA does not implement Reusable")
	}
}

func TestParallelBestOfWorkersCap(t *testing.T) {
	g := mustGraph(gen.Grid(8, 8))
	b, err := ParallelBestOf{Inner: KL{}, Starts: 5, Workers: 2}.Bisect(g, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
}
