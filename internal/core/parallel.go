package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// ParallelBestOf runs the inner bisector from Starts independent random
// streams concurrently and keeps the best cut. Unlike BestOf (which
// consumes one stream sequentially), each start gets its own stream split
// off deterministically up front, so the result is a deterministic
// function of the seed regardless of scheduling; ties are broken toward
// the lowest start index.
type ParallelBestOf struct {
	Inner Bisector
	// Starts is the number of independent runs (default 2).
	Starts int
	// Workers caps concurrency (default GOMAXPROCS).
	Workers int
}

// Name implements Bisector.
func (p ParallelBestOf) Name() string { return fmt.Sprintf("%s∥%d", p.Inner.Name(), p.Starts) }

// Bisect implements Bisector.
func (p ParallelBestOf) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if p.Inner == nil {
		return nil, fmt.Errorf("core: ParallelBestOf with nil inner bisector")
	}
	starts := p.Starts
	if starts <= 0 {
		starts = 2
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}
	// Deterministic stream fan-out before any concurrency.
	streams := make([]*rng.Rand, starts)
	for i := range streams {
		streams[i] = r.Split()
	}

	results := make([]*partition.Bisection, starts)
	errs := make([]error, starts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < starts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = p.Inner.Bisect(g, streams[i])
		}(i)
	}
	wg.Wait()
	var best *partition.Bisection
	for i := 0; i < starts; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if best == nil || results[i].Cut() < best.Cut() {
			best = results[i]
		}
	}
	return best, nil
}
