package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// ParallelBestOf runs the inner bisector from Starts independent random
// streams concurrently and keeps the best cut. Unlike BestOf (which
// consumes one stream sequentially), each start gets its own stream split
// off deterministically up front, so the result is a deterministic
// function of the seed regardless of scheduling; ties are broken toward
// the lowest start index.
//
// Starts are isolated from each other: a start that panics is captured
// as a PanicError (with its stack) instead of crashing the process, and
// a start that fails never discards the surviving starts' best cut — the
// driver returns the best result alongside a PoolError describing every
// failure. Only when no start produces a usable bisection is the result
// nil.
type ParallelBestOf struct {
	Inner Bisector
	// Starts is the number of independent runs (default 2).
	Starts int
	// Workers caps concurrency (default GOMAXPROCS).
	Workers int
	// Observer, when non-nil, receives the inner runs' events and a
	// final run_done with the kept cut. Each start records into its own
	// buffer while running; the buffers are replayed in start order
	// after all starts join, so the delivered stream is single-goroutine
	// and identical for identical seeds no matter how the starts were
	// scheduled.
	Observer trace.Observer
	// Control, when non-nil, is shared by all concurrent starts: each
	// polls it through the inner bisector's checkpoints (a budget is
	// drawn from jointly), interrupted starts return their best-so-far,
	// and the driver keeps the best surviving candidate together with
	// the stop sentinel. WithControl sets it.
	Control *runctl.Control
}

// PanicError is a panic captured inside one start of a parallel run: the
// start index, the recovered value, and the goroutine stack at the point
// of the panic. The pool keeps draining when a start panics; the capture
// surfaces inside the run's PoolError.
type PanicError struct {
	Start int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: start %d panicked: %v\n%s", e.Start, e.Value, e.Stack)
}

// StartError records one failed start inside a PoolError.
type StartError struct {
	Start int
	Err   error
}

// PoolError aggregates the failures of a multi-start parallel run. When
// it accompanies a non-nil bisection, the surviving starts' best cut is
// still usable and the error exists to report the losses; when every
// start failed, it is the run's only outcome.
type PoolError struct {
	// Starts is the total number of starts attempted.
	Starts int
	// Failed lists the starts that produced neither a result nor a clean
	// stop, in start order.
	Failed []StartError
}

// Error implements error.
func (e *PoolError) Error() string {
	return fmt.Sprintf("core: %d of %d starts failed; first: %v", len(e.Failed), e.Starts, e.Failed[0].Err)
}

// Unwrap returns the first failed start's error so errors.Is/As see
// through the aggregation.
func (e *PoolError) Unwrap() error { return e.Failed[0].Err }

// Name implements Bisector.
func (p ParallelBestOf) Name() string { return fmt.Sprintf("%s∥%d", p.Inner.Name(), p.Starts) }

// WithObserver implements Observable.
func (p ParallelBestOf) WithObserver(obs trace.Observer) Bisector {
	p.Observer = obs
	return p
}

// Bisect implements Bisector.
func (p ParallelBestOf) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if p.Inner == nil {
		return nil, fmt.Errorf("core: ParallelBestOf with nil inner bisector")
	}
	starts := p.Starts
	if starts <= 0 {
		starts = 2
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}
	// Deterministic stream fan-out before any concurrency.
	streams := make([]*rng.Rand, starts)
	for i := range streams {
		streams[i] = r.Split()
	}
	// Per-start event buffers: goroutines never share an observer.
	var recs []*trace.Recorder
	if p.Observer != nil {
		recs = make([]*trace.Recorder, starts)
		for i := range recs {
			recs[i] = trace.NewRecorder(0)
		}
	}

	results := make([]*partition.Bisection, starts)
	errs := make([]error, starts)
	// A fixed pool of workers pulls start indices from a channel; each
	// worker owns one reusable workspace for its whole lifetime, so a
	// 100-start run touches `workers` workspaces, not 100. Which worker
	// runs which start cannot affect results: the random streams were
	// split deterministically above, every start records into its own
	// buffer, and workspaces carry no state between runs.
	//
	// Each start runs under its own recover, so a panicking inner
	// bisector poisons only its slot: the worker records a PanicError,
	// discards its (possibly corrupted) workspace, and keeps pulling
	// indices — the pool always drains and wg.Wait always returns.
	runOne := func(inner Bisector, i int) (panicked bool) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Start: i, Value: v, Stack: debug.Stack()}
				results[i] = nil
				panicked = true
			}
		}()
		if recs != nil {
			inner = WithObserver(inner, recs[i])
		}
		results[i], errs[i] = inner.Bisect(g, streams[i])
		return false
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := WithWorkspace(p.Inner)
			for i := range idx {
				if runOne(base, i) {
					base = WithWorkspace(p.Inner)
				}
			}
		}()
	}
	for i := 0; i < starts; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var best *partition.Bisection
	var stopErr error
	var failed []StartError
	for i := 0; i < starts; i++ {
		cand := results[i]
		switch err := errs[i]; {
		case err == nil:
		case runctl.IsStop(err) && cand != nil:
			// Interrupted, not failed: the start's best-so-far competes.
			if stopErr == nil {
				stopErr = err
			}
		default:
			failed = append(failed, StartError{Start: i, Err: err})
			cand = nil
		}
		if cand != nil && (best == nil || cand.Cut() < best.Cut()) {
			best = cand
		}
	}
	if p.Observer != nil {
		trace.MergeStarts(p.Observer, recs)
		if best != nil {
			p.Observer.Observe(trace.Event{
				Type: trace.TypeRunDone, Algo: p.Name(), Index: starts,
				Cut: best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
			})
		}
	}
	if len(failed) > 0 {
		return best, &PoolError{Starts: starts, Failed: failed}
	}
	return best, stopErr
}
