package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ParallelBestOf runs the inner bisector from Starts independent random
// streams concurrently and keeps the best cut. Unlike BestOf (which
// consumes one stream sequentially), each start gets its own stream split
// off deterministically up front, so the result is a deterministic
// function of the seed regardless of scheduling; ties are broken toward
// the lowest start index.
type ParallelBestOf struct {
	Inner Bisector
	// Starts is the number of independent runs (default 2).
	Starts int
	// Workers caps concurrency (default GOMAXPROCS).
	Workers int
	// Observer, when non-nil, receives the inner runs' events and a
	// final run_done with the kept cut. Each start records into its own
	// buffer while running; the buffers are replayed in start order
	// after all starts join, so the delivered stream is single-goroutine
	// and identical for identical seeds no matter how the starts were
	// scheduled.
	Observer trace.Observer
}

// Name implements Bisector.
func (p ParallelBestOf) Name() string { return fmt.Sprintf("%s∥%d", p.Inner.Name(), p.Starts) }

// WithObserver implements Observable.
func (p ParallelBestOf) WithObserver(obs trace.Observer) Bisector {
	p.Observer = obs
	return p
}

// Bisect implements Bisector.
func (p ParallelBestOf) Bisect(g *graph.Graph, r *rng.Rand) (*partition.Bisection, error) {
	if p.Inner == nil {
		return nil, fmt.Errorf("core: ParallelBestOf with nil inner bisector")
	}
	starts := p.Starts
	if starts <= 0 {
		starts = 2
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}
	// Deterministic stream fan-out before any concurrency.
	streams := make([]*rng.Rand, starts)
	for i := range streams {
		streams[i] = r.Split()
	}
	// Per-start event buffers: goroutines never share an observer.
	var recs []*trace.Recorder
	if p.Observer != nil {
		recs = make([]*trace.Recorder, starts)
		for i := range recs {
			recs[i] = trace.NewRecorder(0)
		}
	}

	results := make([]*partition.Bisection, starts)
	errs := make([]error, starts)
	// A fixed pool of workers pulls start indices from a channel; each
	// worker owns one reusable workspace for its whole lifetime, so a
	// 100-start run touches `workers` workspaces, not 100. Which worker
	// runs which start cannot affect results: the random streams were
	// split deterministically above, every start records into its own
	// buffer, and workspaces carry no state between runs.
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := WithWorkspace(p.Inner)
			for i := range idx {
				inner := base
				if recs != nil {
					inner = WithObserver(base, recs[i])
				}
				results[i], errs[i] = inner.Bisect(g, streams[i])
			}
		}()
	}
	for i := 0; i < starts; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var best *partition.Bisection
	for i := 0; i < starts; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if best == nil || results[i].Cut() < best.Cut() {
			best = results[i]
		}
	}
	if p.Observer != nil {
		trace.MergeStarts(p.Observer, recs)
		p.Observer.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: p.Name(), Index: starts,
			Cut: best.Cut(), BestCut: best.Cut(), Imbalance: best.Imbalance(),
		})
	}
	return best, nil
}
