package core

import (
	"testing"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/kl"
	"repro/internal/matching"
	"repro/internal/rng"
)

// TestWithParallelDeterminism pins the Parallelizable contract on the
// composed bisectors: with the parallel thresholds lowered so the
// sharded kernels actually engage, every degree ≥ 2 must return the
// exact same bisection.
func TestWithParallelDeterminism(t *testing.T) {
	savedC, savedM := coarsen.ParallelMinVertices, matching.ParallelMinVertices
	savedK, savedF := kl.ParallelMinVertices, fm.ParallelMinVertices
	coarsen.ParallelMinVertices, matching.ParallelMinVertices = 1, 1
	kl.ParallelMinVertices, fm.ParallelMinVertices = 1, 1
	t.Cleanup(func() {
		coarsen.ParallelMinVertices, matching.ParallelMinVertices = savedC, savedM
		kl.ParallelMinVertices, fm.ParallelMinVertices = savedK, savedF
	})

	g, err := gen.GNP(2000, 0.005, rng.NewFib(19))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kl", "fm", "ckl", "cfm", "mlkl", "mlfm"} {
		base, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(degree int) []uint8 {
			b, err := WithParallel(WithWorkspace(base), degree).Bisect(g, rng.NewFib(55))
			if err != nil {
				t.Fatalf("%s degree %d: %v", name, degree, err)
			}
			return b.Sides()
		}
		ref := run(2)
		for _, degree := range []int{3, 4} {
			got := run(degree)
			for v := range got {
				if got[v] != ref[v] {
					t.Fatalf("%s: degree %d diverges from degree 2 at vertex %d", name, degree, v)
				}
			}
		}
	}
}
