package core

import (
	"repro/internal/coarsen"
)

// Parallelizable is a Bisector that can use several goroutines WITHIN a
// single run — sharded matching and contraction in the compaction
// pipeline, concurrent gain-bucket filling in the refiners — as opposed
// to ParallelBestOf, which parallelizes ACROSS independent runs. The
// contract is strict determinism: a parallelizable bisector returns the
// same bisection at every degree ≥ 2 (the parallel kernels are designed
// for shard-count independence), and the parallel paths only engage
// above the per-package ParallelMinVertices thresholds, so
// fixture-sized instances keep the serial streams bit-exact.
type Parallelizable interface {
	Bisector
	// WithParallel returns a copy of the bisector whose runs use up to
	// degree goroutines for their internal phases. The receiver is not
	// modified. Degree ≤ 1 returns an equivalent serial bisector.
	WithParallel(degree int) Bisector
}

// WithParallel attaches a within-run parallel degree to b if b is
// Parallelizable; otherwise (or for degree ≤ 1) it returns b unchanged.
func WithParallel(b Bisector, degree int) Bisector {
	if degree <= 1 {
		return b
	}
	if p, ok := b.(Parallelizable); ok {
		return p.WithParallel(degree)
	}
	return b
}

// withParallelRefinable is WithParallel keeping the RefinableBisector
// interface (it holds for the concrete algorithms; the fallback covers
// exotic user implementations).
func withParallelRefinable(b RefinableBisector, degree int) RefinableBisector {
	if rb, ok := WithParallel(b, degree).(RefinableBisector); ok {
		return rb
	}
	return b
}

// WithParallel implements Parallelizable for KL (concurrent gain-bucket
// filling on large graphs).
func (a KL) WithParallel(degree int) Bisector {
	a.Opts.ParallelDegree = degree
	return a
}

// WithParallel implements Parallelizable for FM (concurrent gain-bucket
// filling on large graphs).
func (a FM) WithParallel(degree int) Bisector {
	a.Opts.ParallelDegree = degree
	return a
}

// WithParallel implements Parallelizable for Spectral: the solver's CSR
// matvec shards over vertex ranges and its reductions use fixed-block
// deterministic summation, so the Fiedler split is bit-identical at
// every degree (see internal/spectral/workspace.go).
func (a Spectral) WithParallel(degree int) Bisector {
	a.Opts.ParallelDegree = degree
	return a
}

// WithParallel implements Parallelizable for Compacted: the matching and
// contraction phases shard across the degree (the pool attaches to the
// compaction workspace at Bisect time), and the inner bisector is
// parallelized too.
func (c Compacted) WithParallel(degree int) Bisector {
	c.ParallelDegree = degree
	if c.Inner != nil {
		c.Inner = withParallelRefinable(c.Inner, degree)
	}
	return c
}

// WithParallel implements Parallelizable for Multilevel: every level's
// matching and contraction shard across the degree, and the inner
// bisector is parallelized too. The options are copied, never mutated
// in place.
func (m Multilevel) WithParallel(degree int) Bisector {
	var o coarsen.MultilevelOptions
	if m.Opts != nil {
		o = *m.Opts
	}
	o.ParallelDegree = degree
	m.Opts = &o
	if m.Inner != nil {
		m.Inner = withParallelRefinable(m.Inner, degree)
	}
	return m
}

// WithParallel implements Parallelizable for BestOf by parallelizing the
// inner bisector within each sequential start.
func (b BestOf) WithParallel(degree int) Bisector {
	if b.Inner != nil {
		b.Inner = WithParallel(b.Inner, degree)
	}
	return b
}

// Compile-time checks for the parallelizable set.
var (
	_ Parallelizable = KL{}
	_ Parallelizable = FM{}
	_ Parallelizable = Spectral{}
	_ Parallelizable = Compacted{}
	_ Parallelizable = Multilevel{}
	_ Parallelizable = BestOf{}
)
