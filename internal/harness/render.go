package harness

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the table in the appendix's layout: per row, the expected
// width, then for each (x, cx) pair the cut columns with the improvement
// percentage, with the time row beneath, e.g.
//
//	Gbreg(5000, b, 3)
//	b        bsa      bcsa     impr%    bkl      bckl     impr%
//	         t(s)     t(s)     spdup%   t(s)     t(s)     spdup%
//	b=2      ...
func (tr *TableResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", tr.ID, tr.Title); err != nil {
		return err
	}
	// Column plan: label | expected | for each paper pair (x present with
	// cx): x, cx, impr | any remaining algorithms singly.
	var pairs []string
	var singles []string
	has := map[string]bool{}
	for _, n := range tr.Algorithms {
		has[n] = true
	}
	seen := map[string]bool{}
	for _, n := range tr.Algorithms {
		if strings.HasPrefix(n, "c") && has[n[1:]] {
			continue // rendered as part of its pair
		}
		if has["c"+n] {
			pairs = append(pairs, n)
			seen[n], seen["c"+n] = true, true
		} else if !seen[n] {
			singles = append(singles, n)
		}
	}

	const colw = 10
	pad := func(s string) string {
		if len(s) >= colw {
			return s + " "
		}
		return s + strings.Repeat(" ", colw-len(s))
	}
	// Header.
	head := pad("row") + pad("exp")
	for _, p := range pairs {
		head += pad("b"+p) + pad("bc"+p) + pad("impr%")
	}
	for _, s := range singles {
		head += pad("b" + s)
	}
	sub := pad("") + pad("")
	for range pairs {
		sub += pad("t(s)") + pad("t(s)") + pad("spdup%")
	}
	for range singles {
		sub += pad("t(s)")
	}
	if _, err := fmt.Fprintln(w, head); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sub); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(head))); err != nil {
		return err
	}

	fnum := func(v float64) string {
		if v == float64(int64(v)) && v < 1e15 {
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, row := range tr.Rows {
		exp := "?"
		if row.Expected >= 0 {
			exp = fmt.Sprintf("%d", row.Expected)
		}
		line1 := pad(row.Label) + pad(exp)
		line2 := pad("") + pad("")
		for _, p := range pairs {
			x := row.Cells[p]
			cx := row.Cells["c"+p]
			line1 += pad(fnum(x.Cut)) + pad(fnum(cx.Cut)) + pad(fmt.Sprintf("%.1f", row.CutImprovement[p]))
			line2 += pad(fmt.Sprintf("%.3f", x.Seconds)) + pad(fmt.Sprintf("%.3f", cx.Seconds)) + pad(fmt.Sprintf("%.1f", row.SpeedUp[p]))
		}
		for _, s := range singles {
			x := row.Cells[s]
			line1 += pad(fnum(x.Cut))
			line2 += pad(fmt.Sprintf("%.3f", x.Seconds))
		}
		if _, err := fmt.Fprintln(w, line1); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, line2); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderSummary writes the Table-1-style summary: one line per table with
// the mean compaction improvement per inner algorithm.
func RenderSummary(w io.Writer, label string, results []*TableResult, inners []string) error {
	if _, err := fmt.Fprintf(w, "%s\n", label); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s", "Graph type"); err != nil {
		return err
	}
	for _, in := range inners {
		if _, err := fmt.Fprintf(w, "%-12s", "c"+in+" impr%"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, tr := range results {
		if _, err := fmt.Fprintf(w, "%-28s", tr.Title); err != nil {
			return err
		}
		for _, in := range inners {
			if _, err := fmt.Fprintf(w, "%-12.1f", tr.MeanImprovement(in)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
