package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/anneal"
	"repro/internal/core"
)

// fastSA keeps harness tests quick.
func fastSA() anneal.Options {
	return anneal.Options{SizeFactor: 2, TempFactor: 0.85, FreezeLim: 2, MaxTemps: 60}
}

func fastConfig() Config {
	return Config{Seed: 7, Starts: 2, SAOpts: fastSA()}
}

func TestRunSmallBRegTable(t *testing.T) {
	table := BRegTable(120, 3, []int{2, 6}, 2)
	res, err := Run(table, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if len(res.Algorithms) != 4 {
		t.Fatalf("algorithms %v", res.Algorithms)
	}
	for _, row := range res.Rows {
		for _, name := range []string{"sa", "csa", "kl", "ckl"} {
			cell, ok := row.Cells[name]
			if !ok {
				t.Fatalf("row %s missing cell %s", row.Label, name)
			}
			if cell.Cut < 0 || cell.Seconds < 0 {
				t.Fatalf("row %s cell %s: %+v", row.Label, name, cell)
			}
			// A heuristic can never beat 0, and on these tiny graphs the
			// cut can't exceed every edge.
			if cell.Cut > 200 {
				t.Fatalf("row %s cell %s: absurd cut %v", row.Label, name, cell.Cut)
			}
		}
		if _, ok := row.CutImprovement["kl"]; !ok {
			t.Fatal("missing kl improvement column")
		}
		if _, ok := row.SpeedUp["sa"]; !ok {
			t.Fatal("missing sa speed-up column")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	table := BRegTable(80, 3, []int{4}, 1)
	cfg := Config{Seed: 11, Starts: 2, Algorithms: []core.Bisector{core.KL{}, core.Compacted{Inner: core.KL{}}}}
	a, err := Run(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].Cells["kl"].Cut != b.Rows[0].Cells["kl"].Cut ||
		a.Rows[0].Cells["ckl"].Cut != b.Rows[0].Cells["ckl"].Cut {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Rows[0].Cells, b.Rows[0].Cells)
	}
}

func TestRunSeedChangesResults(t *testing.T) {
	table := GnpTable(100, []float64{3.0}, 2)
	cfg1 := Config{Seed: 1, Algorithms: []core.Bisector{core.Random{}}}
	cfg2 := Config{Seed: 2, Algorithms: []core.Bisector{core.Random{}}}
	a, err := Run(table, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(table, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].Cells["random"].Cut == b.Rows[0].Cells["random"].Cut {
		t.Log("cut coincidence across seeds (possible but unlikely); not failing")
	}
}

func TestRunPropagatesGeneratorErrors(t *testing.T) {
	// Infeasible parameters: BReg(10, b=7, d=3) has b > n = 5, so the
	// generator errors and Run must surface it with row context.
	bad := BRegTable(10, 3, []int{7}, 1)
	if _, err := Run(bad, fastConfig()); err == nil {
		t.Fatal("generator error swallowed")
	}
	// A nil generator is reported, not a panic.
	nilGen := Table{ID: "X", Title: "bad", Specs: []GraphSpec{{Label: "boom", Instances: 1}}}
	if _, err := Run(nilGen, fastConfig()); err == nil {
		t.Fatal("nil generator accepted")
	}
}

func TestCompactionHelpsOnSparseBReg(t *testing.T) {
	// The repository's headline claim at miniature scale: on degree-3
	// planted graphs, CKL's cut is no worse than KL's on average.
	table := BRegTable(300, 3, []int{4}, 3)
	res, err := Run(table, Config{Seed: 5, Algorithms: []core.Bisector{
		core.KL{}, core.Compacted{Inner: core.KL{}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Cells["ckl"].Cut > row.Cells["kl"].Cut {
		t.Fatalf("compaction hurt: ckl %.1f vs kl %.1f", row.Cells["ckl"].Cut, row.Cells["kl"].Cut)
	}
}

func TestRenderContainsColumns(t *testing.T) {
	table := BRegTable(80, 3, []int{4}, 1)
	res, err := Run(table, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bsa", "bcsa", "bkl", "bckl", "impr%", "spdup%", "b=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSummary(t *testing.T) {
	table := GridTable([]int{6})
	res, err := Run(table, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSummary(&buf, "Table 1", []*TableResult{res}, []string{"kl", "sa"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Grid graphs") {
		t.Fatalf("summary missing title:\n%s", buf.String())
	}
}

func TestAllTablesPaperScaleShape(t *testing.T) {
	tables := AllTables(PaperScale())
	// 3 special + 2 sizes × (4 twoset + 1 gnp + 2 breg) = 17.
	if len(tables) != 17 {
		t.Fatalf("paper suite has %d tables, want 17", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Specs) == 0 {
			t.Fatalf("degenerate table %+v", tb)
		}
		if ids[tb.ID] {
			t.Fatalf("duplicate table ID %s", tb.ID)
		}
		ids[tb.ID] = true
	}
	for _, want := range []string{"TL", "TG", "TB", "T2S25", "T2S40", "T2NP", "T2B3", "T2B4", "T5S25", "T5NP", "T5B3", "T5B4"} {
		if !ids[want] {
			t.Fatalf("missing table %s; have %v", want, ids)
		}
	}
}

func TestTableByID(t *testing.T) {
	if _, ok := TableByID(TestScale(), "TL"); !ok {
		t.Fatal("TL not found")
	}
	if _, ok := TableByID(TestScale(), "NOPE"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestMeanHelpers(t *testing.T) {
	tr := &TableResult{Rows: []RowResult{
		{Cells: map[string]Cell{"kl": {Cut: 10, Seconds: 1}}, CutImprovement: map[string]float64{"kl": 50}},
		{Cells: map[string]Cell{"kl": {Cut: 20, Seconds: 3}}, CutImprovement: map[string]float64{"kl": 70}},
	}}
	if got := tr.MeanCut("kl"); got != 15 {
		t.Fatalf("MeanCut %v", got)
	}
	if got := tr.MeanSeconds("kl"); got != 2 {
		t.Fatalf("MeanSeconds %v", got)
	}
	if got := tr.MeanImprovement("kl"); got != 60 {
		t.Fatalf("MeanImprovement %v", got)
	}
	if got := tr.MeanCut("absent"); got != 0 {
		t.Fatalf("absent MeanCut %v", got)
	}
}

// Synthetic TableResults for deterministic observation-logic tests.
func synthetic(id string, rows []RowResult) *TableResult {
	return &TableResult{ID: id, Title: id, Rows: rows}
}

func row(expected int64, cuts map[string]float64, secs map[string]float64) RowResult {
	r := RowResult{Expected: expected, Cells: map[string]Cell{},
		CutImprovement: map[string]float64{}, SpeedUp: map[string]float64{}}
	for k, v := range cuts {
		r.Cells[k] = Cell{Cut: v, Seconds: secs[k]}
	}
	for k, cell := range r.Cells {
		if comp, ok := r.Cells["c"+k]; ok {
			if cell.Cut > 0 {
				r.CutImprovement[k] = (cell.Cut - comp.Cut) / cell.Cut * 100
			}
			if cell.Seconds > 0 {
				r.SpeedUp[k] = (cell.Seconds - comp.Seconds) / cell.Seconds * 100
			}
		}
	}
	return r
}

func TestObservation1Logic(t *testing.T) {
	d3 := synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"kl": 120, "sa": 150}, map[string]float64{"kl": 1, "sa": 10})})
	d4 := synthetic("T5B4", []RowResult{row(4,
		map[string]float64{"kl": 4, "sa": 4}, map[string]float64{"kl": 1, "sa": 10})})
	f := Observation1(d3, d4)
	if !f.Holds {
		t.Fatalf("O1 should hold: %s", f)
	}
	// Reversed: degree 4 worse than degree 3.
	g := Observation1(d4, d3)
	if g.Holds {
		t.Fatalf("O1 should fail when reversed: %s", g)
	}
}

func TestObservation2Logic(t *testing.T) {
	d3 := synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"kl": 100, "ckl": 5, "sa": 120, "csa": 8},
		map[string]float64{"kl": 3, "ckl": 1, "sa": 30, "csa": 28})})
	f := Observation2(d3)
	if !f.Holds {
		t.Fatalf("O2 should hold: %s", f)
	}
	weak := synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"kl": 10, "ckl": 9, "sa": 10, "csa": 9},
		map[string]float64{"kl": 3, "ckl": 1, "sa": 30, "csa": 28})})
	if Observation2(weak).Holds {
		t.Fatal("O2 should fail on 10% improvements")
	}
}

func TestObservation3Logic(t *testing.T) {
	good := []*TableResult{
		synthetic("TG", []RowResult{row(8, map[string]float64{"kl": 10, "ckl": 8, "sa": 12, "csa": 9}, map[string]float64{"kl": 1, "ckl": 1, "sa": 1, "csa": 1})}),
	}
	if f := Observation3(good); !f.Holds {
		t.Fatalf("O3 should hold: %s", f)
	}
	bad := []*TableResult{
		synthetic("TG", []RowResult{row(8, map[string]float64{"kl": 8, "ckl": 10, "sa": 12, "csa": 9}, map[string]float64{"kl": 1, "ckl": 1, "sa": 1, "csa": 1})}),
	}
	if f := Observation3(bad); f.Holds {
		t.Fatalf("O3 should fail when compaction hurts KL: %s", f)
	}
}

func TestObservation4Logic(t *testing.T) {
	random := []*TableResult{synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"kl": 50, "sa": 60}, map[string]float64{"kl": 1, "sa": 20})})}
	trees := synthetic("TB", []RowResult{row(-1,
		map[string]float64{"kl": 30, "sa": 10}, map[string]float64{"kl": 1, "sa": 20})})
	ladders := synthetic("TL", []RowResult{row(2,
		map[string]float64{"kl": 12, "sa": 4}, map[string]float64{"kl": 1, "sa": 20})})
	if f := Observation4(random, trees, ladders); !f.Holds {
		t.Fatalf("O4 should hold: %s", f)
	}
	slowKL := []*TableResult{synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"kl": 50, "sa": 60}, map[string]float64{"kl": 30, "sa": 20})})}
	if f := Observation4(slowKL, trees, ladders); f.Holds {
		t.Fatalf("O4 should fail when KL slower: %s", f)
	}
}

func TestObservation5Logic(t *testing.T) {
	random := []*TableResult{synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"ckl": 5, "csa": 6}, map[string]float64{"ckl": 1, "csa": 8})})}
	if f := Observation5(random); !f.Holds {
		t.Fatalf("O5 should hold: %s", f)
	}
	divergent := []*TableResult{synthetic("T5B3", []RowResult{row(4,
		map[string]float64{"ckl": 5, "csa": 100}, map[string]float64{"ckl": 1, "csa": 8})})}
	if f := Observation5(divergent); f.Holds {
		t.Fatalf("O5 should fail on divergent quality: %s", f)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{ID: "O1", Claim: "c", Holds: true, Detail: "d"}
	if !strings.Contains(f.String(), "HOLDS") {
		t.Fatal("missing verdict")
	}
	f.Holds = false
	if !strings.Contains(f.String(), "FAILS") {
		t.Fatal("missing FAILS verdict")
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	table := BRegTable(100, 3, []int{2, 6, 10}, 2)
	cfg := Config{Seed: 13, Starts: 2, Algorithms: []core.Bisector{core.KL{}, core.Compacted{Inner: core.KL{}}}}
	seq, err := Run(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := Run(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Rows {
		for _, alg := range seq.Algorithms {
			if seq.Rows[i].Cells[alg].Cut != par.Rows[i].Cells[alg].Cut {
				t.Fatalf("row %d %s: sequential cut %v != parallel %v",
					i, alg, seq.Rows[i].Cells[alg].Cut, par.Rows[i].Cells[alg].Cut)
			}
		}
	}
}
