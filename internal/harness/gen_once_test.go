package harness

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestGenerateOncePerInstance pins the harness's graph-caching
// contract: each (row, instance) graph is generated exactly once and
// shared across every algorithm and start, so generation cost can never
// contaminate the per-algorithm timings (the clock starts after
// Generate returns). A regression that re-generated per algorithm or
// per start would multiply the observed call count.
func TestGenerateOncePerInstance(t *testing.T) {
	const instances = 3
	var calls atomic.Int64
	table := Table{
		ID:    "GENONCE",
		Title: "generation-count probe",
		Specs: []GraphSpec{{
			Label:     "probe",
			Expected:  -1,
			Instances: instances,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				calls.Add(1)
				return gen.GNP(60, 0.08, r)
			},
		}},
	}
	cfg := Config{
		Seed:   3,
		Starts: 2,
		Algorithms: []core.Bisector{
			core.KL{},
			core.Compacted{Inner: core.KL{}},
		},
	}
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != instances {
		t.Fatalf("Generate called %d times for %d instances (want exactly one call per instance, shared across %d algorithms × %d starts)",
			got, instances, len(cfg.Algorithms), cfg.Starts)
	}
}

// TestSharedGraphNotMutated: the graph handed to the algorithms is the
// generator's output object, and no algorithm run mutates it — both
// prerequisites for the once-per-instance cache above to be sound.
func TestSharedGraphNotMutated(t *testing.T) {
	var mu sync.Mutex
	var produced []*graph.Graph
	table := Table{
		ID:    "GENSHARE",
		Title: "shared-graph probe",
		Specs: []GraphSpec{{
			Label:     "probe",
			Expected:  -1,
			Instances: 1,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				g, err := gen.BReg(80, 4, 3, r)
				if err == nil {
					mu.Lock()
					produced = append(produced, g)
					mu.Unlock()
				}
				return g, err
			},
		}},
	}
	cfg := Config{Seed: 5, Starts: 2, Algorithms: []core.Bisector{core.Compacted{Inner: core.KL{}}}}
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(produced) != 1 {
		t.Fatalf("expected 1 generated graph, saw %d", len(produced))
	}
	if err := produced[0].Validate(); err != nil {
		t.Fatalf("shared graph was corrupted by algorithm runs: %v", err)
	}
}
