package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func smallResult(t *testing.T) *TableResult {
	t.Helper()
	table := BRegTable(80, 3, []int{4}, 1)
	res, err := Run(table, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteCSV(t *testing.T) {
	res := smallResult(t)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1+len(res.Rows) {
		t.Fatalf("%d records for %d rows", len(records), len(res.Rows))
	}
	header := strings.Join(records[0], ",")
	for _, want := range []string{"cut_sa", "cutstd_sa", "sec_ckl", "impr_kl_pct", "speedup_sa_pct"} {
		if !strings.Contains(header, want) {
			t.Fatalf("header missing %s: %s", want, header)
		}
	}
	// All records the same width.
	for i, rec := range records {
		if len(rec) != len(records[0]) {
			t.Fatalf("record %d has %d fields, header has %d", i, len(rec), len(records[0]))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := smallResult(t)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != res.ID || len(got.Rows) != len(res.Rows) {
		t.Fatalf("round trip changed result: %+v", got)
	}
	if got.Rows[0].Cells["kl"].Cut != res.Rows[0].Cells["kl"].Cut {
		t.Fatal("cell data lost")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
