package harness

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// This file declares the paper's appendix tables. The OCR of the original
// scan leaves the exact planted-width grids illegible, so representative
// sweeps are used (documented in DESIGN.md §3); row structure, models,
// sizes, instance counts, and all derived columns match the paper.

// LadderTable is the "Ladder graphs — ladder graph with 3N nodes" table:
// one ladder per row, bisection width 2.
func LadderTable(ns []int) Table {
	t := Table{ID: "TL", Title: "Ladder graphs (3N nodes)"}
	for _, n := range ns {
		n := n
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("3N=%d", 3*n),
			Expected:  2,
			Instances: 1,
			Generate:  func(r *rng.Rand) (*graph.Graph, error) { return gen.Ladder3N(n) },
		})
	}
	return t
}

// GridTable is the "N × N grid graph" table; the bisection width of an
// even N×N grid is N.
func GridTable(dims []int) Table {
	t := Table{ID: "TG", Title: "Grid graphs (N x N)"}
	for _, d := range dims {
		d := d
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("N=%d", d),
			Expected:  int64(d),
			Instances: 1,
			Generate:  func(r *rng.Rand) (*graph.Graph, error) { return gen.Grid(d, d) },
		})
	}
	return t
}

// BTreeTable is the "Binary tree with N nodes" table. The exact bisection
// width of a heap-shaped binary tree is size-dependent and small; it is
// recorded as unknown (−1).
func BTreeTable(sizes []int) Table {
	t := Table{ID: "TB", Title: "Binary trees (N nodes)"}
	for _, n := range sizes {
		n := n
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("N=%d", n),
			Expected:  -1,
			Instances: 1,
			Generate:  func(r *rng.Rand) (*graph.Graph, error) { return gen.CompleteBinaryTree(n) },
		})
	}
	return t
}

// TwoSetTable is a "𝒢2set(2n, pA, pB, b) with average degree D" table:
// one graph per row, rows sweeping the planted width b.
func TwoSetTable(twoN int, avgDeg float64, bs []int) Table {
	t := Table{
		ID:    fmt.Sprintf("T%dS%02.0f", twoN/1000, avgDeg*10),
		Title: fmt.Sprintf("G2set(%d, pA, pB, b) with average degree %.1f", twoN, avgDeg),
	}
	for _, b := range bs {
		b := b
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("b=%d", b),
			Expected:  int64(b),
			Instances: 1,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				p, err := gen.TwoSetForAvgDegree(twoN, avgDeg, b)
				if err != nil {
					return nil, err
				}
				return gen.TwoSet(twoN, p, p, b, r)
			},
		})
	}
	return t
}

// GnpTable is the "𝒢np(2n, p)" table: rows sweep the expected average
// degree; each row averages `instances` random graphs (7 in the paper).
func GnpTable(twoN int, degs []float64, instances int) Table {
	t := Table{
		ID:    fmt.Sprintf("T%dNP", twoN/1000),
		Title: fmt.Sprintf("Gnp(%d, p)", twoN),
	}
	if instances <= 0 {
		instances = 7
	}
	for _, d := range degs {
		d := d
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("deg=%.1f", d),
			Expected:  -1,
			Instances: instances,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				p := d / float64(twoN-1)
				return gen.GNP(twoN, p, r)
			},
		})
	}
	return t
}

// BRegTable is a "𝒢breg(2n, b, d)" table: rows sweep the planted width;
// each row averages `instances` random graphs (3 in the paper).
func BRegTable(twoN, d int, bs []int, instances int) Table {
	t := Table{
		ID:    fmt.Sprintf("T%dB%d", twoN/1000, d),
		Title: fmt.Sprintf("Gbreg(%d, b, %d)", twoN, d),
	}
	if instances <= 0 {
		instances = 3
	}
	for _, b := range bs {
		b := b
		t.Specs = append(t.Specs, GraphSpec{
			Label:     fmt.Sprintf("b=%d", b),
			Expected:  int64(b),
			Instances: instances,
			Generate:  func(r *rng.Rand) (*graph.Graph, error) { return gen.BReg(twoN, b, d, r) },
		})
	}
	return t
}

// Scale selects experiment sizes: paper scale for cmd/experiments, small
// scale for unit tests and benchmarks (same structure, smaller graphs).
type Scale struct {
	TwoSetSizes                 []int // vertex counts for the 𝒢2set/𝒢np/𝒢breg table pairs
	BRegWidths                  []int
	TwoSetBs                    []int
	GnpDegrees                  []float64
	LadderNs                    []int // rung counts (3N vertices each)
	GridDims                    []int
	BTreeSizes                  []int
	GnpInstances, BRegInstances int
}

// PaperScale reproduces the appendix sizes: 2000- and 5000-vertex random
// graphs, special graphs from 100 to 5000 vertices.
func PaperScale() Scale {
	return Scale{
		TwoSetSizes:   []int{2000, 5000},
		BRegWidths:    []int{2, 4, 8, 16, 32, 64},
		TwoSetBs:      []int{8, 16, 32, 64, 128},
		GnpDegrees:    []float64{2.5, 3.0, 3.5, 4.0},
		LadderNs:      []int{34, 100, 334, 1000, 1666},   // 102 … 4998 vertices
		GridDims:      []int{10, 22, 32, 50, 70},         // 100 … 4900 vertices
		BTreeSizes:    []int{100, 254, 1022, 2046, 4094}, // even sizes
		GnpInstances:  7,
		BRegInstances: 3,
	}
}

// TestScale is a miniature of PaperScale for fast runs.
func TestScale() Scale {
	return Scale{
		TwoSetSizes:   []int{200},
		BRegWidths:    []int{2, 8},
		TwoSetBs:      []int{4, 16},
		GnpDegrees:    []float64{2.5, 4.0},
		LadderNs:      []int{20},
		GridDims:      []int{10},
		BTreeSizes:    []int{62},
		GnpInstances:  2,
		BRegInstances: 2,
	}
}

// AllTables returns the complete appendix suite at the given scale:
// special graphs, then for each size the four 𝒢2set degree tables, the
// 𝒢np table, and the two 𝒢breg tables — 3 + |sizes|·7 tables at paper
// scale.
func AllTables(s Scale) []Table {
	tables := []Table{
		LadderTable(s.LadderNs),
		GridTable(s.GridDims),
		BTreeTable(s.BTreeSizes),
	}
	for _, size := range s.TwoSetSizes {
		for _, deg := range s.GnpDegrees {
			tables = append(tables, TwoSetTable(size, deg, s.TwoSetBs))
		}
		tables = append(tables, GnpTable(size, s.GnpDegrees, s.GnpInstances))
		tables = append(tables, BRegTable(size, 3, s.BRegWidths, s.BRegInstances))
		tables = append(tables, BRegTable(size, 4, s.BRegWidths, s.BRegInstances))
	}
	return tables
}

// TableByID finds a table in the scaled suite.
func TableByID(s Scale, id string) (Table, bool) {
	for _, t := range AllTables(s) {
		if t.ID == id {
			return t, true
		}
	}
	return Table{}, false
}
