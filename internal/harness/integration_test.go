package harness

import (
	"bytes"
	"testing"
)

// TestFullSuiteAtTestScale runs every table of the paper suite end to end
// at miniature scale — the same code path cmd/experiments exercises at
// paper scale — and sanity-checks structural properties of each result.
func TestFullSuiteAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	cfg := Config{Seed: 3, Starts: 2, SAOpts: fastSA()}
	for _, table := range AllTables(TestScale()) {
		res, err := Run(table, cfg)
		if err != nil {
			t.Fatalf("%s: %v", table.ID, err)
		}
		if len(res.Rows) != len(table.Specs) {
			t.Fatalf("%s: %d rows for %d specs", table.ID, len(res.Rows), len(table.Specs))
		}
		for _, row := range res.Rows {
			for _, name := range res.Algorithms {
				cell, ok := row.Cells[name]
				if !ok {
					t.Fatalf("%s %s: missing %s", table.ID, row.Label, name)
				}
				if cell.Cut < 0 {
					t.Fatalf("%s %s %s: negative cut", table.ID, row.Label, name)
				}
				// No algorithm may beat a known planted/structural width.
				if row.Expected > 0 && table.ID[1] == 'B' && cell.Cut < float64(row.Expected) {
					// 𝒢breg planted width is whp the true optimum; a cut
					// below it would indicate an unbalanced result or a
					// cut-accounting bug. (𝒢2set at low degree can
					// legitimately dip below bis; 𝒢breg cannot, except for
					// the measure-zero failure of the whp statement at
					// miniature sizes, which fixed seeds make stable.)
					t.Fatalf("%s %s %s: cut %.1f below planted width %d",
						table.ID, row.Label, name, cell.Cut, row.Expected)
				}
			}
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatalf("%s: render: %v", table.ID, err)
		}
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: csv: %v", table.ID, err)
		}
	}
}

// TestObservationPipelineAtTestScale runs the observation set end to end.
func TestObservationPipelineAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	cfg := Config{Seed: 4, Starts: 2, SAOpts: fastSA()}
	scale := TestScale()
	run := func(id string) *TableResult {
		table, ok := TableByID(scale, id)
		if !ok {
			t.Fatalf("missing table %s", id)
		}
		res, err := Run(table, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	d3 := run("T0B3")
	d4 := run("T0B4")
	special := []*TableResult{run("TG"), run("TL"), run("TB")}
	findings := []Finding{
		Observation1(d3, d4),
		Observation2(d3),
		Observation3(special),
		Observation4([]*TableResult{d3, d4}, special[2], special[1]),
		Observation5([]*TableResult{d3, d4}),
	}
	for _, f := range findings {
		if f.ID == "" || f.Claim == "" || f.Detail == "" {
			t.Fatalf("degenerate finding %+v", f)
		}
		t.Logf("%s", f)
	}
}
