package harness

import (
	"fmt"
	"strings"
)

// Finding is a checked claim from Section VI of the paper.
type Finding struct {
	ID     string // "O1" … "O5"
	Claim  string
	Holds  bool
	Detail string
}

// String renders the finding on one line.
func (f Finding) String() string {
	verdict := "HOLDS"
	if !f.Holds {
		verdict = "FAILS"
	}
	return fmt.Sprintf("%s [%s] %s — %s", f.ID, verdict, f.Claim, f.Detail)
}

// Observation1 checks "the bisection algorithms improve as the average
// degree increases": on 𝒢breg the plain algorithms' mean cut relative to
// the planted width must be markedly worse at degree 3 than at degree 4,
// and degree-4 runs must essentially find the planted bisection.
func Observation1(d3, d4 *TableResult) Finding {
	f := Finding{ID: "O1", Claim: "quality improves with average degree (Gbreg d=3 vs d=4)"}
	r3 := cutExcessRatio(d3, "kl")
	r4 := cutExcessRatio(d4, "kl")
	s3 := cutExcessRatio(d3, "sa")
	s4 := cutExcessRatio(d4, "sa")
	f.Holds = r3 > r4 && s3 > s4
	f.Detail = fmt.Sprintf("mean cut/expected: KL %.1f (d=3) vs %.1f (d=4); SA %.1f vs %.1f", r3, r4, s3, s4)
	return f
}

// cutExcessRatio returns the mean of cut/expected over rows with a known
// positive expected width.
func cutExcessRatio(tr *TableResult, alg string) float64 {
	var sum float64
	var n int
	for _, row := range tr.Rows {
		if row.Expected <= 0 {
			continue
		}
		if c, ok := row.Cells[alg]; ok {
			sum += c.Cut / float64(row.Expected)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Observation2 checks "compaction improves performance on small-degree
// graphs both in time and quality": on 𝒢breg(·, b, 3) both CKL and CSA
// must deliver large positive cut improvements, and CKL must also be
// faster than plain KL on average.
func Observation2(d3 *TableResult) Finding {
	f := Finding{ID: "O2", Claim: "compaction improves quality (and KL speed) on degree-3 graphs"}
	klImp := d3.MeanImprovement("kl")
	saImp := d3.MeanImprovement("sa")
	klSpeed := meanSpeedUp(d3, "kl")
	f.Holds = klImp > 30 && saImp > 30
	f.Detail = fmt.Sprintf("mean cut improvement: CKL %.1f%%, CSA %.1f%%; CKL speed-up %.1f%%", klImp, saImp, klSpeed)
	return f
}

func meanSpeedUp(tr *TableResult, inner string) float64 {
	var sum float64
	var n int
	for _, row := range tr.Rows {
		if v, ok := row.SpeedUp[inner]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Observation3 checks "compaction also helps on some special graphs": the
// mean cut improvement from compaction must be positive for both KL and
// SA on grids, ladders, and binary trees (the paper's Table 1).
func Observation3(special []*TableResult) Finding {
	f := Finding{ID: "O3", Claim: "compaction helps on special graphs (Table 1)"}
	var parts []string
	holds := true
	for _, tr := range special {
		kl := tr.MeanImprovement("kl")
		sa := tr.MeanImprovement("sa")
		// "Helps" = does not hurt on any family and strictly helps
		// somewhere; per-family we require non-negative mean.
		if kl < 0 || sa < 0 {
			holds = false
		}
		parts = append(parts, fmt.Sprintf("%s: KL %.0f%%, SA %.0f%%", tr.Title, kl, sa))
	}
	f.Holds = holds
	f.Detail = strings.Join(parts, "; ")
	return f
}

// Observation4 checks "without compaction KL runs faster and produces
// better solutions than SA — except on binary trees and ladders, where SA
// wins on quality".
func Observation4(random []*TableResult, trees, ladders *TableResult) Finding {
	f := Finding{ID: "O4", Claim: "plain KL faster than plain SA, and better except on trees/ladders"}
	fasterEverywhere := true
	betterOnRandom := true
	var detail []string
	for _, tr := range random {
		kt, st := tr.MeanSeconds("kl"), tr.MeanSeconds("sa")
		if kt >= st {
			fasterEverywhere = false
		}
		kc, sc := tr.MeanCut("kl"), tr.MeanCut("sa")
		if kc > sc*1.05 { // allow 5% noise band
			betterOnRandom = false
		}
		detail = append(detail, fmt.Sprintf("%s: KL %.1f/%0.2fs vs SA %.1f/%0.2fs", tr.ID, kc, kt, sc, st))
	}
	saWinsTrees := trees.MeanCut("sa") <= trees.MeanCut("kl")
	saWinsLadders := ladders.MeanCut("sa") <= ladders.MeanCut("kl")
	f.Holds = fasterEverywhere && betterOnRandom && (saWinsTrees || saWinsLadders)
	f.Detail = fmt.Sprintf("%s; SA beats KL on trees: %v, on ladders: %v",
		strings.Join(detail, "; "), saWinsTrees, saWinsLadders)
	return f
}

// Observation5 checks "with compaction, SA is still slower than KL but
// there is no big difference in the quality of the solutions".
func Observation5(random []*TableResult) Finding {
	f := Finding{ID: "O5", Claim: "with compaction: CSA still slower than CKL, quality comparable"}
	slower := true
	comparable := true
	var detail []string
	for _, tr := range random {
		ct, st := tr.MeanSeconds("ckl"), tr.MeanSeconds("csa")
		if st <= ct {
			slower = false
		}
		cc, sc := tr.MeanCut("ckl"), tr.MeanCut("csa")
		// Comparable: within a factor 2 or an absolute gap of 3 edges.
		if !(sc <= 2*cc+3 && cc <= 2*sc+3) {
			comparable = false
		}
		detail = append(detail, fmt.Sprintf("%s: CKL %.1f/%0.2fs vs CSA %.1f/%0.2fs", tr.ID, cc, ct, sc, st))
	}
	f.Holds = slower && comparable
	f.Detail = strings.Join(detail, "; ")
	return f
}
