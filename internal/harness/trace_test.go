package harness

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

func traceTable() Table {
	spec := func(label string, n int) GraphSpec {
		return GraphSpec{
			Label:     label,
			Expected:  -1,
			Instances: 2,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				return gen.GNP(n, 0.04, r)
			},
		}
	}
	return Table{ID: "TR", Title: "trace test", Specs: []GraphSpec{spec("n=100", 100), spec("n=140", 140)}}
}

// TestRunObserverParallelMatchesSequential is the harness half of the
// deterministic-merge contract: with row buffering and in-order replay,
// a parallel table run must deliver the same JSONL byte stream as a
// sequential run of the same seed — and the same table results.
func TestRunObserverParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) ([]byte, *TableResult) {
		var buf bytes.Buffer
		obs := trace.NewJSONL(&buf)
		cfg := Config{
			Seed:       7,
			Algorithms: []core.Bisector{core.KL{}, core.FM{}},
			Parallel:   parallel,
			Observer:   obs,
		}
		res, err := Run(traceTable(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if obs.Err() != nil {
			t.Fatal(obs.Err())
		}
		return buf.Bytes(), res
	}
	seqStream, seqRes := run(1)
	parStream, parRes := run(4)
	if !bytes.Equal(seqStream, parStream) {
		t.Fatalf("parallel run delivered a different event stream:\nseq:\n%s\npar:\n%s", seqStream, parStream)
	}
	if len(seqStream) == 0 {
		t.Fatal("no events delivered")
	}
	for i := range seqRes.Rows {
		for name, cell := range seqRes.Rows[i].Cells {
			if parRes.Rows[i].Cells[name].Cut != cell.Cut {
				t.Fatalf("row %d alg %s: cuts differ between sequential and parallel", i, name)
			}
		}
	}
}

// TestRunObserverEventShape checks the harness stamps: every event
// carries its row label, and each (algorithm, instance) contributes one
// harness-phase run_done whose cut matches the table's accounting.
func TestRunObserverEventShape(t *testing.T) {
	rec := trace.NewRecorder(0)
	cfg := Config{
		Seed:       7,
		Algorithms: []core.Bisector{core.KL{}},
		Observer:   rec,
	}
	tbl := traceTable()
	if _, err := Run(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	harnessDone := 0
	for _, e := range rec.Events() {
		if e.Label == "" {
			t.Fatalf("event missing its row label: %+v", e)
		}
		labels[e.Label]++
		if e.Phase == "harness" {
			if e.Type != trace.TypeRunDone {
				t.Fatalf("harness phase on non-run_done event: %+v", e)
			}
			harnessDone++
		}
	}
	for _, spec := range tbl.Specs {
		if labels[spec.Label] == 0 {
			t.Fatalf("no events for row %q", spec.Label)
		}
	}
	// 2 rows × 2 instances × 1 algorithm.
	if harnessDone != 4 {
		t.Fatalf("saw %d harness run_done events, want 4", harnessDone)
	}
}

// TestRunWithoutObserverUnchanged guards the nil fast path at the
// harness level: results are identical with and without an observer.
func TestRunWithoutObserverUnchanged(t *testing.T) {
	cfg := Config{Seed: 7, Algorithms: []core.Bisector{core.KL{}}}
	plain, err := Run(traceTable(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = trace.NewRecorder(0)
	traced, err := Run(traceTable(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Rows {
		for name, cell := range plain.Rows[i].Cells {
			if traced.Rows[i].Cells[name].Cut != cell.Cut {
				t.Fatalf("row %d alg %s: observer changed the cut", i, name)
			}
		}
	}
}
