package harness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/runctl"
)

func ckptTable(rows, instances, n int) Table {
	specs := make([]GraphSpec, rows)
	for i := range specs {
		p := 0.04 + 0.01*float64(i)
		specs[i] = GraphSpec{
			Label:     fmt.Sprintf("row%d", i),
			Expected:  -1,
			Instances: instances,
			Generate: func(r *rng.Rand) (*graph.Graph, error) {
				return gen.GNP(n, p, r)
			},
		}
	}
	return Table{ID: "CKPT", Title: "checkpoint test table", Specs: specs}
}

func ckptConfig() Config {
	return Config{
		Seed:       7,
		Starts:     2,
		Algorithms: []core.Bisector{core.KL{}, core.Compacted{Inner: core.KL{}}},
	}
}

func sameCuts(t *testing.T, a, b *TableResult) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra.Cells) != len(rb.Cells) {
			t.Fatalf("row %d: cell counts differ", i)
		}
		for name, ca := range ra.Cells {
			cb, ok := rb.Cells[name]
			if !ok {
				t.Fatalf("row %d: %s missing", i, name)
			}
			if ca.Cut != cb.Cut || ca.CutStd != cb.CutStd {
				t.Fatalf("row %d %s: cut %v±%v vs %v±%v", i, name, ca.Cut, ca.CutStd, cb.Cut, cb.CutStd)
			}
		}
		if !reflect.DeepEqual(ra.CutImprovement, rb.CutImprovement) {
			t.Fatalf("row %d: improvement columns differ", i)
		}
	}
}

// A campaign interrupted by a budget and resumed from its checkpoint
// must reproduce the uninterrupted campaign's cut columns cell for cell,
// and a second resume (everything spliced) must reproduce the first
// resume's TableResult exactly — including the recorded Seconds.
func TestCheckpointResumeDeterministic(t *testing.T) {
	table := ckptTable(2, 3, 60)
	ref, err := Run(table, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	// Interrupted leg: a small checkpoint budget stops mid-campaign.
	cfg := ckptConfig()
	cfg.Control = runctl.WithBudget(40)
	cfg.Checkpoint = NewCheckpoint(path)
	partial, err := Run(table, cfg)
	if !runctl.IsStop(err) {
		t.Fatalf("err = %v, want a stop sentinel", err)
	}
	if partial == nil {
		t.Fatal("interrupted run returned no partial result")
	}
	done := cfg.Checkpoint.Cells()
	if done == 0 || done == 6 {
		t.Fatalf("budget landed at %d of 6 cells; want a strict partial", done)
	}

	// Resume leg: recorded cells splice in, the rest recompute.
	cfg2 := ckptConfig()
	cfg2.Checkpoint = NewCheckpoint(path)
	resumed, err := Run(table, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Checkpoint.Cells() != 6 {
		t.Fatalf("resume completed %d of 6 cells", cfg2.Checkpoint.Cells())
	}
	sameCuts(t, ref, resumed)

	// Full-splice leg: every cell comes from the file, so the result —
	// Seconds included — matches the resumed run exactly.
	cfg3 := ckptConfig()
	cfg3.Checkpoint = NewCheckpoint(path)
	spliced, err := Run(table, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, spliced) {
		t.Fatal("pure-splice rerun differs from the run that wrote the checkpoint")
	}
}

// Parallel rows share one checkpoint; resuming sequentially must still
// agree with a sequential reference run.
func TestCheckpointParallelRows(t *testing.T) {
	table := ckptTable(3, 2, 50)
	ref, err := Run(table, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := ckptConfig()
	cfg.Parallel = 3
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	cfg2 := ckptConfig()
	cfg2.Checkpoint = NewCheckpoint(path)
	resumed, err := Run(table, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sameCuts(t, ref, resumed)
}

// A checkpoint from a different campaign must be refused, not spliced.
func TestCheckpointRejectsForeignCampaign(t *testing.T) {
	table := ckptTable(1, 2, 40)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := ckptConfig()
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config, *Table){
		func(c *Config, _ *Table) { c.Seed = 8 },
		func(c *Config, _ *Table) { c.Starts = 3 },
		func(c *Config, _ *Table) { c.Algorithms = []core.Bisector{core.KL{}} },
		func(_ *Config, tb *Table) { tb.ID = "OTHER" },
	} {
		c2, t2 := ckptConfig(), table
		mutate(&c2, &t2)
		c2.Checkpoint = NewCheckpoint(path)
		if _, err := Run(t2, c2); err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Fatalf("foreign checkpoint accepted: %v", err)
		}
	}
}

// An unparseable header is an error, not a silent fresh start.
func TestCheckpointRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := ckptConfig()
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(ckptTable(1, 1, 40), cfg); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func killHelperTable() Table { return ckptTable(2, 8, 300) }

func killHelperConfig(path string) Config {
	cfg := Config{
		Seed:   11,
		Starts: 2,
		Algorithms: []core.Bisector{
			core.SA{Opts: anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 400}},
			core.KL{},
		},
	}
	if path != "" {
		cfg.Checkpoint = NewCheckpoint(path)
	}
	return cfg
}

// TestCheckpointKillHelper is the victim process of
// TestCheckpointSurvivesSIGKILL; it only runs when re-executed with the
// harness environment set.
func TestCheckpointKillHelper(t *testing.T) {
	path := os.Getenv("HARNESS_CKPT")
	if os.Getenv("HARNESS_KILL_HELPER") != "1" || path == "" {
		t.Skip("helper process for TestCheckpointSurvivesSIGKILL")
	}
	if _, err := Run(killHelperTable(), killHelperConfig(path)); err != nil {
		t.Fatal(err)
	}
}

// Kill a checkpointing campaign with SIGKILL mid-run — no deferred
// cleanup, no signal handler — then resume from whatever the atomic
// writes left behind. The resumed campaign must complete and agree cut
// for cut with an uninterrupted run.
func TestCheckpointSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=TestCheckpointKillHelper$")
	cmd.Env = append(os.Environ(), "HARNESS_KILL_HELPER=1", "HARNESS_CKPT="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	// Wait until at least two cells are on disk, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			// The helper finished before we killed it; the resume below
			// then splices a complete checkpoint, which is still a valid
			// (if weaker) pass. Slower machines kill mid-run.
			t.Log("helper completed before SIGKILL")
			deadline = time.Now()
		default:
		}
		if !killed && checkpointCellsOnDisk(t, path) >= 2 {
			if err := cmd.Process.Kill(); err == nil {
				killed = true
				<-exited
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	}
	cells := checkpointCellsOnDisk(t, path)
	if cells < 2 {
		t.Fatalf("only %d cells on disk after kill", cells)
	}

	resumedCfg := killHelperConfig(path)
	resumed, err := Run(killHelperTable(), resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(killHelperTable(), killHelperConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	sameCuts(t, ref, resumed)
}

// checkpointCellsOnDisk counts complete cell lines in the file; the
// atomic writer guarantees the file is either absent or fully formed.
func checkpointCellsOnDisk(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines == 0 {
		return 0
	}
	return lines - 1 // minus the header
}
