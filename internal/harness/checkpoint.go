package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/fsx"
)

// checkpointSchema versions the checkpoint file format. Bump it when the
// header or cell layout changes; a resume against a different schema is
// refused rather than misread.
const checkpointSchema = 1

// checkpointHeader is the first line of a checkpoint file: the campaign
// identity a resume must match cell-for-cell. Seed, starts, and the
// algorithm list (in column order) pin the random streams; the table ID
// pins the row layout.
type checkpointHeader struct {
	Schema     int      `json:"schema"`
	Table      string   `json:"table"`
	Seed       uint64   `json:"seed"`
	Starts     int      `json:"starts"`
	Algorithms []string `json:"algorithms"`
}

// checkpointCell is one completed (row, instance) cell: the
// best-of-starts cut and the wall-clock seconds for every algorithm.
// Cells are only written once every algorithm has finished the instance
// uninterrupted, so a resumed run can splice them verbatim.
type checkpointCell struct {
	Row   int                `json:"row"`
	Inst  int                `json:"inst"`
	Label string             `json:"label"`
	Cuts  map[string]int64   `json:"cuts"`
	Secs  map[string]float64 `json:"secs"`
}

type cellKey struct{ row, inst int }

// Checkpoint persists harness progress across process deaths. Attach one
// via Config.Checkpoint: after every completed (row, instance) cell the
// runner rewrites the checkpoint file atomically (temp file + fsync +
// rename, see internal/fsx), so the file on disk is always a complete,
// parseable snapshot — a SIGKILL at any instant loses at most the cell
// in flight. On the next Run with the same table and config, recorded
// cells are spliced into the result instead of recomputed, and the
// resumed TableResult is cell-for-cell identical to an uninterrupted
// run (recorded wall-clock seconds are spliced too). See
// docs/ROBUSTNESS.md for the file format.
//
// A Checkpoint is safe for concurrent use by parallel rows but belongs
// to one Run at a time.
type Checkpoint struct {
	path string

	mu     sync.Mutex
	primed bool
	hdr    checkpointHeader
	cells  map[cellKey]checkpointCell
}

// NewCheckpoint returns a checkpoint handle backed by path. The file is
// not touched until Run loads or records through it.
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, cells: map[cellKey]checkpointCell{}}
}

// Path returns the backing file path.
func (cp *Checkpoint) Path() string { return cp.path }

// Cells returns the number of completed cells currently recorded —
// after Run, the campaign's progress; after prime, how much a resume
// will skip.
func (cp *Checkpoint) Cells() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.cells)
}

// prime binds the checkpoint to a campaign identity and loads any
// previously recorded cells. A file written by a different campaign
// (table, seed, starts, or algorithm set) or an unknown schema is an
// error: splicing its cells would silently corrupt the table.
func (cp *Checkpoint) prime(hdr checkpointHeader) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.primed {
		if !headerEqual(cp.hdr, hdr) {
			return fmt.Errorf("harness: checkpoint %s already bound to table %q", cp.path, cp.hdr.Table)
		}
		return nil
	}
	cp.hdr = hdr
	cp.cells = map[cellKey]checkpointCell{}
	data, err := os.ReadFile(cp.path)
	if os.IsNotExist(err) {
		cp.primed = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		// Empty file (e.g. created by a shell redirect): treat as fresh.
		cp.primed = true
		return nil
	}
	var have checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &have); err != nil {
		return fmt.Errorf("harness: checkpoint %s: bad header: %w", cp.path, err)
	}
	if have.Schema != checkpointSchema {
		return fmt.Errorf("harness: checkpoint %s has schema %d, this build reads %d", cp.path, have.Schema, checkpointSchema)
	}
	if !headerEqual(have, hdr) {
		return fmt.Errorf("harness: checkpoint %s belongs to a different campaign (table %q seed %d starts %d algorithms %v; want table %q seed %d starts %d algorithms %v)",
			cp.path, have.Table, have.Seed, have.Starts, have.Algorithms, hdr.Table, hdr.Seed, hdr.Starts, hdr.Algorithms)
	}
	line := 1
	for sc.Scan() {
		line++
		var cell checkpointCell
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			return fmt.Errorf("harness: checkpoint %s line %d: %w", cp.path, line, err)
		}
		if !cellComplete(cell, hdr.Algorithms) {
			return fmt.Errorf("harness: checkpoint %s line %d: cell (%d,%d) is missing algorithms", cp.path, line, cell.Row, cell.Inst)
		}
		cp.cells[cellKey{cell.Row, cell.Inst}] = cell
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harness: checkpoint %s: %w", cp.path, err)
	}
	cp.primed = true
	return nil
}

// lookup returns the recorded cell for (row, inst), if any.
func (cp *Checkpoint) lookup(row, inst int) (checkpointCell, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cell, ok := cp.cells[cellKey{row, inst}]
	return cell, ok
}

// record stores a completed cell and atomically rewrites the file so the
// on-disk snapshot always parses in full.
func (cp *Checkpoint) record(cell checkpointCell) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.cells[cellKey{cell.Row, cell.Inst}] = cell
	return cp.flushLocked()
}

func (cp *Checkpoint) flushLocked() error {
	keys := make([]cellKey, 0, len(cp.cells))
	for k := range cp.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].row != keys[j].row {
			return keys[i].row < keys[j].row
		}
		return keys[i].inst < keys[j].inst
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(cp.hdr); err != nil {
		return err
	}
	for _, k := range keys {
		if err := enc.Encode(cp.cells[k]); err != nil {
			return err
		}
	}
	if err := fsx.WriteFileAtomic(cp.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	return nil
}

func headerEqual(a, b checkpointHeader) bool {
	if a.Table != b.Table || a.Seed != b.Seed || a.Starts != b.Starts || len(a.Algorithms) != len(b.Algorithms) {
		return false
	}
	for i := range a.Algorithms {
		if a.Algorithms[i] != b.Algorithms[i] {
			return false
		}
	}
	return true
}

func cellComplete(cell checkpointCell, algorithms []string) bool {
	for _, name := range algorithms {
		if _, ok := cell.Cuts[name]; !ok {
			return false
		}
		if _, ok := cell.Secs[name]; !ok {
			return false
		}
	}
	return true
}
