package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fsx"
)

// checkpointSchema versions the checkpoint file format. Bump it when the
// header or cell layout changes; a resume against a different schema is
// refused rather than misread. Schema 2 wraps every cell line in a
// CRC32-carrying envelope so bit rot in one cell quarantines that file
// and re-runs the cell instead of being spliced into results.
const checkpointSchema = 2

// checkpointHeader is the first line of a checkpoint file: the campaign
// identity a resume must match cell-for-cell. Seed, starts, and the
// algorithm list (in column order) pin the random streams; the table ID
// pins the row layout.
type checkpointHeader struct {
	Schema     int      `json:"schema"`
	Table      string   `json:"table"`
	Seed       uint64   `json:"seed"`
	Starts     int      `json:"starts"`
	Algorithms []string `json:"algorithms"`
}

// checkpointCell is one completed (row, instance) cell: the
// best-of-starts cut and the wall-clock seconds for every algorithm.
// Cells are only written once every algorithm has finished the instance
// uninterrupted, so a resumed run can splice them verbatim.
type checkpointCell struct {
	Row   int                `json:"row"`
	Inst  int                `json:"inst"`
	Label string             `json:"label"`
	Cuts  map[string]int64   `json:"cuts"`
	Secs  map[string]float64 `json:"secs"`
}

// checkpointLine is the on-disk envelope of one cell: the cell's compact
// JSON plus the IEEE CRC32 of exactly those bytes. json.RawMessage
// preserves the written bytes verbatim on read, so the checksum covers
// what is actually on disk, not a re-serialization.
type checkpointLine struct {
	Cell json.RawMessage `json:"cell"`
	CRC  uint32          `json:"crc32"`
}

type cellKey struct{ row, inst int }

// Checkpoint persists harness progress across process deaths. Attach one
// via Config.Checkpoint: after every completed (row, instance) cell the
// runner rewrites the checkpoint file atomically (temp file + fsync +
// rename, see internal/fsx), so the file on disk is always a complete,
// parseable snapshot — a SIGKILL at any instant loses at most the cell
// in flight. On the next Run with the same table and config, recorded
// cells are spliced into the result instead of recomputed, and the
// resumed TableResult is cell-for-cell identical to an uninterrupted
// run (recorded wall-clock seconds are spliced too). See
// docs/ROBUSTNESS.md for the file format.
//
// Every cell line carries a CRC32 of its payload. A resume that finds a
// corrupt cell — bad envelope, checksum mismatch, unparseable or
// incomplete cell — does not fail the campaign and does not splice the
// bad bytes: the whole damaged file is copied into a quarantine/
// directory next to it, the damaged cells are dropped (the runner
// recomputes them), and the typed *fsx.CorruptRecordError for each is
// retained for Corruptions(). A corrupt or foreign HEADER stays a hard
// error: without a trusted identity line, no cell can be trusted either.
//
// A Checkpoint is safe for concurrent use by parallel rows but belongs
// to one Run at a time.
type Checkpoint struct {
	path string
	fs   fsx.FS

	mu          sync.Mutex
	primed      bool
	hdr         checkpointHeader
	cells       map[cellKey]checkpointCell
	corruptions []error
	quarantined string
}

// NewCheckpoint returns a checkpoint handle backed by path. The file is
// not touched until Run loads or records through it.
func NewCheckpoint(path string) *Checkpoint {
	return NewCheckpointFS(path, fsx.OS)
}

// NewCheckpointFS is NewCheckpoint on an injected filesystem — the seam
// fault-injection tests use to prove checkpoint writes fail cleanly and
// corrupt cells quarantine instead of splicing.
func NewCheckpointFS(path string, fs fsx.FS) *Checkpoint {
	return &Checkpoint{path: path, fs: fs, cells: map[cellKey]checkpointCell{}}
}

// Path returns the backing file path.
func (cp *Checkpoint) Path() string { return cp.path }

// Cells returns the number of completed cells currently recorded —
// after Run, the campaign's progress; after prime, how much a resume
// will skip.
func (cp *Checkpoint) Cells() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.cells)
}

// Corruptions returns the typed errors for every corrupt cell the last
// prime dropped (each is a *fsx.CorruptRecordError). Empty means the
// file verified clean.
func (cp *Checkpoint) Corruptions() []error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return append([]error(nil), cp.corruptions...)
}

// Quarantined returns the path the damaged checkpoint file was copied
// to, or "" if the last prime found no corruption.
func (cp *Checkpoint) Quarantined() string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.quarantined
}

// prime binds the checkpoint to a campaign identity and loads any
// previously recorded cells. A file written by a different campaign
// (table, seed, starts, or algorithm set) or an unknown schema is an
// error: splicing its cells would silently corrupt the table. Corrupt
// CELLS are not an error — they quarantine and re-run (see type doc).
func (cp *Checkpoint) prime(hdr checkpointHeader) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.primed {
		if !headerEqual(cp.hdr, hdr) {
			return fmt.Errorf("harness: checkpoint %s already bound to table %q", cp.path, cp.hdr.Table)
		}
		return nil
	}
	cp.hdr = hdr
	cp.cells = map[cellKey]checkpointCell{}
	cp.corruptions = nil
	cp.quarantined = ""
	data, err := cp.fs.ReadFile(cp.path)
	if os.IsNotExist(err) {
		cp.primed = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		// Empty file (e.g. created by a shell redirect): treat as fresh.
		cp.primed = true
		return nil
	}
	var have checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &have); err != nil {
		return fmt.Errorf("harness: checkpoint %s: bad header: %w", cp.path, err)
	}
	if have.Schema != checkpointSchema {
		return fmt.Errorf("harness: checkpoint %s has schema %d, this build reads %d", cp.path, have.Schema, checkpointSchema)
	}
	if !headerEqual(have, hdr) {
		return fmt.Errorf("harness: checkpoint %s belongs to a different campaign (table %q seed %d starts %d algorithms %v; want table %q seed %d starts %d algorithms %v)",
			cp.path, have.Table, have.Seed, have.Starts, have.Algorithms, hdr.Table, hdr.Seed, hdr.Starts, hdr.Algorithms)
	}
	line := 1
	for sc.Scan() {
		line++
		cell, cerr := decodeCell(cp.path, line, sc.Bytes(), hdr.Algorithms)
		if cerr != nil {
			cp.corruptions = append(cp.corruptions, cerr)
			continue
		}
		cp.cells[cellKey{cell.Row, cell.Inst}] = cell
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harness: checkpoint %s: %w", cp.path, err)
	}
	if len(cp.corruptions) > 0 {
		// Keep the damaged evidence, then let the runner recompute the
		// dropped cells. Quarantine failure is non-fatal: losing the copy
		// is strictly better than splicing bad cells or failing the run.
		if qpath, qerr := quarantineCopy(cp.fs, cp.path, data); qerr == nil {
			cp.quarantined = qpath
		}
	}
	cp.primed = true
	return nil
}

// decodeCell verifies and decodes one schema-2 cell line. Any failure is
// a *fsx.CorruptRecordError naming the file and line.
func decodeCell(path string, line int, raw []byte, algorithms []string) (checkpointCell, error) {
	var env checkpointLine
	if err := json.Unmarshal(raw, &env); err != nil || len(env.Cell) == 0 {
		return checkpointCell{}, &fsx.CorruptRecordError{
			Path: path, Reason: fmt.Sprintf("line %d: bad cell envelope", line),
		}
	}
	if got := crc32.ChecksumIEEE(env.Cell); got != env.CRC {
		return checkpointCell{}, &fsx.CorruptRecordError{
			Path: path, Expected: env.CRC, Got: got,
		}
	}
	var cell checkpointCell
	if err := json.Unmarshal(env.Cell, &cell); err != nil {
		return checkpointCell{}, &fsx.CorruptRecordError{
			Path: path, Reason: fmt.Sprintf("line %d: bad cell payload: %v", line, err),
		}
	}
	if !cellComplete(cell, algorithms) {
		return checkpointCell{}, &fsx.CorruptRecordError{
			Path: path, Reason: fmt.Sprintf("line %d: cell (%d,%d) is missing algorithms", line, cell.Row, cell.Inst),
		}
	}
	return cell, nil
}

// quarantineCopy writes data to quarantine/<base> next to path (with a
// numeric suffix if that name is taken) and returns the quarantine path.
func quarantineCopy(fs fsx.FS, path string, data []byte) (string, error) {
	qdir := filepath.Join(filepath.Dir(path), "quarantine")
	if err := fs.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	base := filepath.Base(path)
	qpath := filepath.Join(qdir, base)
	for i := 1; ; i++ {
		if _, err := fs.Stat(qpath); os.IsNotExist(err) {
			break
		}
		qpath = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := fsx.WriteFileAtomicFS(fs, qpath, data, 0o644); err != nil {
		return "", err
	}
	return qpath, nil
}

// lookup returns the recorded cell for (row, inst), if any.
func (cp *Checkpoint) lookup(row, inst int) (checkpointCell, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cell, ok := cp.cells[cellKey{row, inst}]
	return cell, ok
}

// record stores a completed cell and atomically rewrites the file so the
// on-disk snapshot always parses in full.
func (cp *Checkpoint) record(cell checkpointCell) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.cells[cellKey{cell.Row, cell.Inst}] = cell
	return cp.flushLocked()
}

func (cp *Checkpoint) flushLocked() error {
	keys := make([]cellKey, 0, len(cp.cells))
	for k := range cp.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].row != keys[j].row {
			return keys[i].row < keys[j].row
		}
		return keys[i].inst < keys[j].inst
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(cp.hdr); err != nil {
		return err
	}
	for _, k := range keys {
		raw, err := json.Marshal(cp.cells[k])
		if err != nil {
			return err
		}
		if err := enc.Encode(checkpointLine{Cell: raw, CRC: crc32.ChecksumIEEE(raw)}); err != nil {
			return err
		}
	}
	if err := fsx.WriteFileAtomicFS(cp.fs, cp.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	return nil
}

func headerEqual(a, b checkpointHeader) bool {
	if a.Table != b.Table || a.Seed != b.Seed || a.Starts != b.Starts || len(a.Algorithms) != len(b.Algorithms) {
		return false
	}
	for i := range a.Algorithms {
		if a.Algorithms[i] != b.Algorithms[i] {
			return false
		}
	}
	return true
}

func cellComplete(cell checkpointCell, algorithms []string) bool {
	for _, name := range algorithms {
		if _, ok := cell.Cuts[name]; !ok {
			return false
		}
		if _, ok := cell.Secs[name]; !ok {
			return false
		}
	}
	return true
}
