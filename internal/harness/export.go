package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the table as CSV: one record per row with cut and time
// columns per algorithm, followed by the compaction improvement and
// speed-up columns for each (x, cx) pair.
func (tr *TableResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"table", "row", "expected"}
	for _, a := range tr.Algorithms {
		header = append(header, "cut_"+a, "cutstd_"+a, "sec_"+a)
	}
	inners := tr.pairInners()
	for _, in := range inners {
		header = append(header, "impr_"+in+"_pct", "speedup_"+in+"_pct")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range tr.Rows {
		rec := []string{tr.ID, row.Label, strconv.FormatInt(row.Expected, 10)}
		for _, a := range tr.Algorithms {
			c := row.Cells[a]
			rec = append(rec,
				strconv.FormatFloat(c.Cut, 'f', 3, 64),
				strconv.FormatFloat(c.CutStd, 'f', 3, 64),
				strconv.FormatFloat(c.Seconds, 'f', 6, 64))
		}
		for _, in := range inners {
			rec = append(rec,
				strconv.FormatFloat(row.CutImprovement[in], 'f', 2, 64),
				strconv.FormatFloat(row.SpeedUp[in], 'f', 2, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// pairInners lists inner algorithm names that have a compacted twin in
// the result, sorted for stable output.
func (tr *TableResult) pairInners() []string {
	has := map[string]bool{}
	for _, a := range tr.Algorithms {
		has[a] = true
	}
	var inners []string
	for _, a := range tr.Algorithms {
		if has["c"+a] {
			inners = append(inners, a)
		}
	}
	sort.Strings(inners)
	return inners
}

// WriteJSON emits the full result as indented JSON.
func (tr *TableResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON parses a result written by WriteJSON.
func ReadJSON(r io.Reader) (*TableResult, error) {
	var tr TableResult
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("harness: decoding result: %v", err)
	}
	return &tr, nil
}
