// Package harness reproduces the paper's evaluation protocol:
//
//   - every algorithm is run from two independently generated random
//     initial bisections ("best of two starts");
//   - the reported cut is the best of the two runs and the reported time
//     is the total for both (including initial-bisection generation);
//   - 𝒢breg rows average 3 random graphs per parameter setting, 𝒢np rows
//     7, and 𝒢2set/special rows 1, as in Section VI;
//   - for each (algorithm, compacted-algorithm) pair, the relative cut
//     improvement and relative speed-up columns of the appendix are
//     computed as (x_without − x_with)/x_without × 100.
//
// Tables are declarative (a list of GraphSpec rows); the runner is
// deterministic given Config.Seed.
//
// Config.Observer traces a table run: every event is stamped with its
// row label, each (algorithm, instance) pair closes with a
// phase:"harness" run_done, and rows are buffered and replayed in
// table order so parallel runs stream the same bytes as sequential
// ones (see docs/OBSERVABILITY.md).
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/stats"
	"repro/internal/trace"
)

// GraphSpec is one row of a table: a deterministic family of random
// graphs plus metadata.
type GraphSpec struct {
	// Label names the row (e.g. "b=16" or "N=1000").
	Label string
	// Expected is the expected/planted bisection width, or −1 if unknown.
	Expected int64
	// Instances is how many random graphs to average over (≥ 1).
	Instances int
	// Generate builds instance i of the row.
	Generate func(r *rng.Rand) (*graph.Graph, error)
}

// Table is a declarative experiment: an identifier, a title, and rows.
type Table struct {
	ID    string // e.g. "T5B3"
	Title string // e.g. "Gbreg(5000, b, 3)"
	Specs []GraphSpec
}

// Config controls a run.
type Config struct {
	// Seed makes the whole table deterministic (default 1989, the paper's
	// year).
	Seed uint64
	// Starts is the number of random initial bisections per algorithm per
	// graph (default 2, the paper's protocol).
	Starts int
	// Algorithms to evaluate; default is the paper's four: SA, CSA, KL,
	// CKL (in that column order).
	Algorithms []core.Bisector
	// SAOpts overrides the annealing schedule for the default algorithm
	// set (benchmarks use faster schedules; zero value = JAMS defaults).
	SAOpts anneal.Options
	// Parallel runs table rows on up to this many goroutines (0 or 1 =
	// sequential). Results are identical to a sequential run — every
	// (row, instance) has its own pre-derived random stream — but the
	// timing columns then measure contended wall-clock and should not be
	// compared across a parallel run; use sequential runs for the paper's
	// speed-up columns.
	Parallel int
	// Observer, when non-nil, receives the trace events of every
	// algorithm run, stamped with the row label and start index, plus
	// one harness-phase run_done per (algorithm, instance) carrying the
	// best-of-starts cut. Each row buffers its events and Run replays
	// the buffers in row order after the row completes, so the delivered
	// stream is identical for sequential and parallel runs of the same
	// seed. A nil Observer adds no work.
	Observer trace.Observer
	// Control, when non-nil, makes the campaign interruptible: the runner
	// polls it (without consuming checkpoint budget) before every
	// (row, instance) cell and shares it with every algorithm run, so a
	// cancellation stops work within one algorithm checkpoint. Run then
	// returns the partial TableResult built from the cells that completed,
	// together with the stop sentinel (runctl.IsStop reports true).
	// Interrupted cells are discarded, never half-aggregated.
	Control *runctl.Control
	// Checkpoint, when non-nil, persists every completed (row, instance)
	// cell to disk and splices previously recorded cells into the result
	// instead of recomputing them — see Checkpoint. Cells skipped on
	// resume re-emit no trace events.
	Checkpoint *Checkpoint
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1989
	}
	if c.Starts <= 0 {
		c.Starts = 2
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = PaperAlgorithms(c.SAOpts)
	}
	return c
}

// PeriodSA returns the annealing schedule used by default for the
// appendix reproduction. The paper's SA ran under VAX-780-era CPU
// budgets; with the full modern JAMS schedule (anneal.Options{}) SA
// simply solves every planted instance, flattening the contrasts the
// paper reports. This budget (≈600k trials on a 5000-vertex graph)
// reproduces the paper's shape faithfully: 20–50× above the planted
// width on degree-3 𝒢breg, exact on degree-4 — see EXPERIMENTS.md for
// the side-by-side.
func PeriodSA() anneal.Options {
	return anneal.Options{SizeFactor: 4, TempFactor: 0.9, FreezeLim: 3, MaxTemps: 300}
}

// PaperAlgorithms returns the paper's four methods in appendix column
// order: SA, CSA, KL, CKL.
func PaperAlgorithms(sa anneal.Options) []core.Bisector {
	return []core.Bisector{
		core.SA{Opts: sa},
		core.Compacted{Inner: core.SA{Opts: sa}},
		core.KL{},
		core.Compacted{Inner: core.KL{}},
	}
}

// Cell is one algorithm's aggregated result on one row.
type Cell struct {
	Cut     float64 // mean best-of-starts cut over instances
	Seconds float64 // mean total wall-clock seconds over instances
	// CutStd is the sample standard deviation of the cut across the
	// row's instances (0 for single-instance rows); 𝒢breg rows average 3
	// graphs and 𝒢np rows 7, so the spread matters when reading a cell.
	CutStd float64
}

// RowResult is a completed table row.
type RowResult struct {
	Label    string
	Expected int64
	// Cells is keyed by algorithm name in Config.Algorithms order.
	Cells map[string]Cell
	// CutImprovement and SpeedUp are keyed by inner-algorithm name for
	// every (x, cx) pair present, e.g. "kl" → improvement of ckl over kl.
	CutImprovement map[string]float64
	SpeedUp        map[string]float64
}

// TableResult is a completed experiment.
type TableResult struct {
	ID         string
	Title      string
	Algorithms []string
	Rows       []RowResult
}

// Run executes the table under the config. With Config.Control, an
// interrupted campaign returns the partial TableResult alongside the
// stop sentinel; any other non-nil error means the result is unusable.
func Run(t Table, cfg Config) (*TableResult, error) {
	c := cfg.withDefaults()
	names := make([]string, len(c.Algorithms))
	for i, a := range c.Algorithms {
		names[i] = a.Name()
	}
	if c.Checkpoint != nil {
		hdr := checkpointHeader{Schema: checkpointSchema, Table: t.ID, Seed: c.Seed, Starts: c.Starts, Algorithms: names}
		if err := c.Checkpoint.prime(hdr); err != nil {
			return nil, err
		}
	}
	res := &TableResult{ID: t.ID, Title: t.Title, Algorithms: names}
	res.Rows = make([]RowResult, len(t.Specs))
	if c.Parallel > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, c.Parallel)
		errs := make([]error, len(t.Specs))
		recs := make([]*trace.Recorder, len(t.Specs))
		for rowIdx, spec := range t.Specs {
			wg.Add(1)
			go func(rowIdx int, spec GraphSpec) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res.Rows[rowIdx], recs[rowIdx], errs[rowIdx] = runRow(spec, rowIdx, c)
			}(rowIdx, spec)
		}
		wg.Wait()
		var stopErr error
		for rowIdx, err := range errs {
			if err == nil {
				continue
			}
			if runctl.IsStop(err) {
				if stopErr == nil {
					stopErr = err
				}
				continue
			}
			return nil, fmt.Errorf("harness: table %s row %q: %w", t.ID, t.Specs[rowIdx].Label, err)
		}
		// Row buffers replay in table order after the join, so the
		// merged stream does not depend on row scheduling.
		for _, rec := range recs {
			if rec != nil {
				rec.ReplayTo(c.Observer)
			}
		}
		return res, stopErr
	}
	for rowIdx, spec := range t.Specs {
		row, rec, err := runRow(spec, rowIdx, c)
		if err != nil && !runctl.IsStop(err) {
			return nil, fmt.Errorf("harness: table %s row %q: %w", t.ID, spec.Label, err)
		}
		res.Rows[rowIdx] = row
		if rec != nil {
			rec.ReplayTo(c.Observer)
		}
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

func runRow(spec GraphSpec, rowIdx int, c Config) (RowResult, *trace.Recorder, error) {
	instances := spec.Instances
	if instances <= 0 {
		instances = 1
	}
	if spec.Generate == nil {
		return RowResult{}, nil, fmt.Errorf("nil generator")
	}
	// Rows may run concurrently, so each buffers its events locally; the
	// caller replays the buffers in row order.
	var rec *trace.Recorder
	var rowObs trace.Observer
	if c.Observer != nil {
		rec = trace.NewRecorder(0)
		rowObs = trace.WithLabel(rec, spec.Label)
	}
	// One reusable workspace per (row, algorithm): rows may run on
	// separate goroutines, so workspaces are never shared across rows,
	// but within a row every instance and start reuses the same one. The
	// shared control (if any) rides along so cancellation reaches every
	// algorithm's own checkpoints.
	algs := make([]core.Bisector, len(c.Algorithms))
	for i, alg := range c.Algorithms {
		algs[i] = core.WithWorkspace(core.WithControl(alg, c.Control))
	}
	cuts := map[string][]int64{}
	secs := map[string][]float64{}
	var stopErr error
instances:
	for inst := 0; inst < instances; inst++ {
		// A stopped control abandons the campaign at the cell boundary;
		// Err never consumes checkpoint budget, so the harness polls do
		// not perturb the algorithms' own budget accounting.
		if stopErr = c.Control.Err(); stopErr != nil {
			break
		}
		if c.Checkpoint != nil {
			if cell, ok := c.Checkpoint.lookup(rowIdx, inst); ok {
				// Splice the recorded cell: the random stream for every
				// other cell is derived independently from (seed, row,
				// instance), so skipping this one shifts nothing.
				for _, alg := range c.Algorithms {
					cuts[alg.Name()] = append(cuts[alg.Name()], cell.Cuts[alg.Name()])
					secs[alg.Name()] = append(secs[alg.Name()], cell.Secs[alg.Name()])
				}
				continue
			}
		}
		// One deterministic stream per (row, instance) for generation,
		// split into per-algorithm streams so algorithms see identical
		// graphs but independent randomness.
		//
		// The graph is generated exactly once per instance and shared by
		// every algorithm and start — Generate is never re-invoked inside
		// the algorithm loop (TestGenerateOncePerInstance pins this).
		// Generation cost therefore cannot leak into the reported
		// timings: the per-algorithm clock starts after the graph exists,
		// and algorithms only read the shared immutable graph.
		base := rng.NewFib(mix(c.Seed, uint64(rowIdx), uint64(inst)))
		g, err := spec.Generate(base)
		if err != nil {
			return RowResult{}, nil, err
		}
		// Stage the instance locally and commit it only when every
		// algorithm finished uninterrupted: a cancelled cell must never
		// be half-aggregated or checkpointed, because its cuts differ
		// from what an uncancelled run would record.
		instCuts := map[string]int64{}
		instSecs := map[string]float64{}
		for algIdx, alg := range c.Algorithms {
			ar := base.Split()
			start := time.Now()
			best := int64(1) << 62
			for s := 0; s < c.Starts; s++ {
				a := algs[algIdx]
				if rowObs != nil {
					a = core.WithObserver(algs[algIdx], trace.WithStart(rowObs, s))
				}
				b, err := a.Bisect(g, ar)
				if err != nil {
					if runctl.IsStop(err) {
						stopErr = err
						break instances
					}
					return RowResult{}, nil, fmt.Errorf("%s: %v", alg.Name(), err)
				}
				if b.Cut() < best {
					best = b.Cut()
				}
			}
			elapsed := time.Since(start).Seconds()
			if rowObs != nil {
				rowObs.Observe(trace.Event{
					Type: trace.TypeRunDone, Algo: alg.Name(), Phase: "harness",
					Index: inst, Cut: best, BestCut: best,
					ElapsedNS: int64(elapsed * 1e9),
				})
			}
			instCuts[alg.Name()] = best
			instSecs[alg.Name()] = elapsed
		}
		for _, alg := range c.Algorithms {
			cuts[alg.Name()] = append(cuts[alg.Name()], instCuts[alg.Name()])
			secs[alg.Name()] = append(secs[alg.Name()], instSecs[alg.Name()])
		}
		if c.Checkpoint != nil {
			cell := checkpointCell{Row: rowIdx, Inst: inst, Label: spec.Label, Cuts: instCuts, Secs: instSecs}
			if err := c.Checkpoint.record(cell); err != nil {
				return RowResult{}, nil, err
			}
		}
	}
	row := RowResult{
		Label:          spec.Label,
		Expected:       spec.Expected,
		Cells:          map[string]Cell{},
		CutImprovement: map[string]float64{},
		SpeedUp:        map[string]float64{},
	}
	for name, cs := range cuts {
		fs := make([]float64, len(cs))
		for i, v := range cs {
			fs[i] = float64(v)
		}
		cutStats := stats.Summarize(fs)
		var tmean float64
		for _, v := range secs[name] {
			tmean += v
		}
		tmean /= float64(len(secs[name]))
		row.Cells[name] = Cell{Cut: cutStats.Mean, Seconds: tmean, CutStd: cutStats.StdDev}
	}
	// Compaction columns for every (x, cx) pair.
	for name, cell := range row.Cells {
		if comp, ok := row.Cells["c"+name]; ok {
			row.CutImprovement[name] = stats.Improvement(cell.Cut, comp.Cut)
			row.SpeedUp[name] = stats.SpeedUp(cell.Seconds, comp.Seconds)
		}
	}
	return row, rec, stopErr
}

// mix hashes (seed, row, instance) into an independent stream seed.
func mix(seed, row, inst uint64) uint64 {
	s := rng.SplitMix64(seed ^ 0x9E3779B97F4A7C15*row ^ 0xBF58476D1CE4E5B9*inst)
	return s.Uint64()
}

// MeanImprovement averages a table's compaction cut-improvement column
// for the given inner algorithm across rows (Table 1 of the paper).
func (tr *TableResult) MeanImprovement(inner string) float64 {
	var xs []float64
	for _, row := range tr.Rows {
		if v, ok := row.CutImprovement[inner]; ok {
			xs = append(xs, v)
		}
	}
	return stats.Summarize(xs).Mean
}

// MeanCut averages an algorithm's cut column across rows.
func (tr *TableResult) MeanCut(name string) float64 {
	var xs []float64
	for _, row := range tr.Rows {
		if c, ok := row.Cells[name]; ok {
			xs = append(xs, c.Cut)
		}
	}
	return stats.Summarize(xs).Mean
}

// MeanSeconds averages an algorithm's time column across rows.
func (tr *TableResult) MeanSeconds(name string) float64 {
	var xs []float64
	for _, row := range tr.Rows {
		if c, ok := row.Cells[name]; ok {
			xs = append(xs, c.Seconds)
		}
	}
	return stats.Summarize(xs).Mean
}
