package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/fsx"
)

// corruptCellLine flips one byte inside the idx-th cell line's payload
// (line 0 is the header) and rewrites the file.
func corruptCellLine(t *testing.T, path string, idx int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	target := lines[1+idx]
	// Flip a byte in the middle of the cell payload, away from the
	// envelope punctuation so the line stays parseable JSON less often
	// than not — the CRC must catch it either way.
	pos := len(target) / 2
	target[pos] ^= 0x04
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A single corrupted cell must not fail the campaign and must not be
// spliced: the file quarantines, the cell recomputes, Corruptions()
// carries the typed error, and the final table still matches an
// uninterrupted reference run.
func TestCheckpointCorruptCellQuarantinesAndReruns(t *testing.T) {
	table := ckptTable(2, 3, 60)
	ref, err := Run(table, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	cfg := ckptConfig()
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	before := cfg.Checkpoint.Cells()
	corruptCellLine(t, path, 2)

	cfg2 := ckptConfig()
	cfg2.Checkpoint = NewCheckpoint(path)
	resumed, err := Run(table, cfg2)
	if err != nil {
		t.Fatalf("resume over a corrupt cell failed: %v", err)
	}
	sameCuts(t, ref, resumed)
	if cfg2.Checkpoint.Cells() != before {
		t.Fatalf("resume recorded %d cells, want %d", cfg2.Checkpoint.Cells(), before)
	}

	// The typed evidence trail: one corruption, one quarantined copy.
	corr := cfg2.Checkpoint.Corruptions()
	if len(corr) != 1 {
		t.Fatalf("Corruptions() = %v, want exactly one", corr)
	}
	var ce *fsx.CorruptRecordError
	if !errors.As(corr[0], &ce) {
		t.Fatalf("corruption not typed *fsx.CorruptRecordError: %T", corr[0])
	}
	if ce.Path != path {
		t.Fatalf("corruption path = %q, want %q", ce.Path, path)
	}
	q := cfg2.Checkpoint.Quarantined()
	if q == "" {
		t.Fatal("no quarantine path recorded")
	}
	if filepath.Dir(q) != filepath.Join(dir, "quarantine") {
		t.Fatalf("quarantine landed at %q", q)
	}
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
}

// Envelope-level damage (a line that is not a cell envelope at all) is
// the same story: drop, quarantine, recompute.
func TestCheckpointGarbageCellLine(t *testing.T) {
	table := ckptTable(1, 2, 50)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := ckptConfig()
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	lines[1] = []byte(`{"not":"an envelope"}`)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := ckptConfig()
	cfg2.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg2); err != nil {
		t.Fatal(err)
	}
	corr := cfg2.Checkpoint.Corruptions()
	if len(corr) != 1 || !strings.Contains(corr[0].Error(), "envelope") {
		t.Fatalf("Corruptions() = %v, want one envelope error", corr)
	}
}

// A checkpoint on a failing filesystem must surface the write error to
// the campaign (no silent progress loss) and leave the previous on-disk
// snapshot intact.
func TestCheckpointWriteFailurePropagates(t *testing.T) {
	table := ckptTable(1, 3, 50)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")

	// Healthy first leg: one full pass so a known-good file exists.
	cfg := ckptConfig()
	cfg.Checkpoint = NewCheckpoint(path)
	if _, err := Run(table, cfg); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Failing leg: a different campaign (seed) forces recompute, and every
	// write attempt hits ENOSPC.
	ffs := faultfs.New(fsx.OS, faultfs.Plan{Seed: 1, PWrite: 1})
	cfg2 := ckptConfig()
	cfg2.Seed = 8
	cfg2.Checkpoint = NewCheckpointFS(filepath.Join(dir, "ckpt2.jsonl"), ffs)
	_, rerr := Run(table, cfg2)
	if rerr == nil {
		t.Fatal("campaign succeeded while every checkpoint write failed")
	}
	if !errors.Is(rerr, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC propagated", rerr)
	}
	// The original file is untouched and still resumable.
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(good, after) {
		t.Fatalf("healthy checkpoint disturbed: %v", err)
	}
}
