package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestRenderGolden pins the exact rendered layout for a synthetic result,
// so accidental format drift is caught (the text format is consumed by
// scripts diffing against results/).
func TestRenderGolden(t *testing.T) {
	tr := &TableResult{
		ID:         "TX",
		Title:      "Synthetic",
		Algorithms: []string{"sa", "csa", "kl", "ckl"},
		Rows: []RowResult{
			{
				Label:    "b=4",
				Expected: 4,
				Cells: map[string]Cell{
					"sa":  {Cut: 100, Seconds: 1.5},
					"csa": {Cut: 10, Seconds: 2},
					"kl":  {Cut: 50, Seconds: 0.25},
					"ckl": {Cut: 5, Seconds: 0.125},
				},
				CutImprovement: map[string]float64{"sa": 90, "kl": 90},
				SpeedUp:        map[string]float64{"sa": -33.3, "kl": 50},
			},
		},
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"TX — Synthetic",
		"row       exp       bsa       bcsa      impr%     bkl       bckl      impr%     ",
		"                    t(s)      t(s)      spdup%    t(s)      t(s)      spdup%    ",
		"--------------------------------------------------------------------------------",
		"b=4       4         100       10        90.0      50        5         90.0      ",
		"                    1.500     2.000     -33.3     0.250     0.125     50.0      ",
		"",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("render drift:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestRenderSingles covers algorithms without a compacted twin.
func TestRenderSingles(t *testing.T) {
	tr := &TableResult{
		ID:         "TY",
		Title:      "Singles",
		Algorithms: []string{"kl", "spectral"},
		Rows: []RowResult{{
			Label:    "row",
			Expected: -1,
			Cells: map[string]Cell{
				"kl":       {Cut: 3, Seconds: 0.5},
				"spectral": {Cut: 7, Seconds: 0.25},
			},
			CutImprovement: map[string]float64{},
			SpeedUp:        map[string]float64{},
		}},
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bkl", "bspectral", "?"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
