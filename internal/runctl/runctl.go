// Package runctl provides cooperative run control for the long-running
// algorithms: cancellation (from a context.Context), wall-clock deadlines
// (via context deadlines), and deterministic checkpoint budgets.
//
// A *Control is polled at coarse algorithm checkpoints — once per KL/FM
// pass, once per SA temperature, once per multilevel coarsening level,
// once per harness cell — never inside a hot inner loop, so an attached
// control costs a few nanoseconds per pass and a nil control costs one
// predicted branch. When a checkpoint fires, the algorithm stops where it
// stands, materializes its valid best-so-far result, and returns it
// together with a typed sentinel (ErrBudgetExceeded, context.Canceled, or
// context.DeadlineExceeded) instead of tearing the run down. Callers test
// for truncation with IsStop and decide whether the partial result is
// usable.
//
// Controls never touch the random stream: attaching one to a run that is
// not cancelled produces bit-identical results to no control at all (the
// golden fixtures pin this).
package runctl

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBudgetExceeded is returned by Check (and surfaced by algorithms)
// when a checkpoint budget runs out. Unlike a context error it is fully
// deterministic: the k-th checkpoint of a run under budget k fires no
// matter how fast the machine is, which is what the cancellation
// invariant tests replay against.
var ErrBudgetExceeded = errors.New("runctl: checkpoint budget exceeded")

// Control is a cooperative cancellation handle. The zero value is not
// useful; construct one with New, FromContext, or WithBudget. A nil
// *Control is valid everywhere and means "never stop".
//
// A Control may be shared across goroutines (ParallelBestOf hands one
// control to every worker): the budget is decremented atomically, and a
// shared budget is consumed jointly by all checkpoints that poll it.
type Control struct {
	ctx     context.Context // nil when only a budget is attached
	done    <-chan struct{} // ctx.Done(), cached
	limited bool
	budget  atomic.Int64 // remaining checkpoint polls when limited
	spent   atomic.Bool  // a budget checkpoint has fired
}

// New returns a control that stops when ctx is cancelled (or passes its
// deadline) or after budget checkpoint polls, whichever comes first.
// budget <= 0 means unlimited polls; a nil or never-cancelled ctx with an
// unlimited budget returns nil (the free no-op control).
func New(ctx context.Context, budget int64) *Control {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil && budget <= 0 {
		return nil
	}
	c := &Control{ctx: ctx, done: done, limited: budget > 0}
	c.budget.Store(budget)
	return c
}

// FromContext returns a control mirroring ctx's cancellation, or nil for
// a nil / never-cancelled context.
func FromContext(ctx context.Context) *Control { return New(ctx, 0) }

// WithBudget returns a control that stops after n checkpoint polls
// (nil when n <= 0).
func WithBudget(n int64) *Control { return New(nil, n) }

// Check polls the control at an algorithm checkpoint. It returns nil to
// continue, or the stop sentinel — the context's error, or
// ErrBudgetExceeded when this poll exhausts the budget. Each call on a
// limited control consumes one unit of budget; cancellation is checked
// first, so a cancelled run stops at its next checkpoint regardless of
// remaining budget.
func (c *Control) Check() error {
	if c == nil {
		return nil
	}
	if c.done != nil {
		select {
		case <-c.done:
			return c.ctx.Err()
		default:
		}
	}
	if c.limited && c.budget.Add(-1) < 0 {
		c.spent.Store(true)
		return ErrBudgetExceeded
	}
	return nil
}

// Err reports whether the control has already stopped — without
// consuming budget. It returns the same sentinel a failing Check would
// have returned, or nil while the run may continue. Drivers use it
// between phases to avoid launching work that the first interior
// checkpoint would immediately abandon.
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	if c.done != nil {
		select {
		case <-c.done:
			return c.ctx.Err()
		default:
		}
	}
	if c.spent.Load() {
		return ErrBudgetExceeded
	}
	return nil
}

// IsStop reports whether err is a cooperative-stop sentinel — a
// cancellation, deadline, or budget exhaustion (possibly wrapped). An
// algorithm returning (result, err) with IsStop(err) guarantees the
// result is a valid, balanced best-so-far bisection; any other non-nil
// error means the result is unusable.
func IsStop(err error) bool {
	return err != nil && (errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded))
}
