package runctl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNilControlNeverStops(t *testing.T) {
	var c *Control
	for i := 0; i < 100; i++ {
		if err := c.Check(); err != nil {
			t.Fatalf("nil control stopped: %v", err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil control Err: %v", err)
	}
}

func TestNewCollapsesToNil(t *testing.T) {
	if c := New(nil, 0); c != nil {
		t.Fatal("New(nil, 0) should be nil")
	}
	if c := New(context.Background(), 0); c != nil {
		t.Fatal("never-cancelled ctx with no budget should be nil")
	}
	if c := WithBudget(0); c != nil {
		t.Fatal("WithBudget(0) should be nil")
	}
	if c := WithBudget(-5); c != nil {
		t.Fatal("WithBudget(-5) should be nil")
	}
}

func TestBudgetExhaustsDeterministically(t *testing.T) {
	for _, n := range []int64{1, 2, 7} {
		c := WithBudget(n)
		for i := int64(0); i < n; i++ {
			if err := c.Check(); err != nil {
				t.Fatalf("budget %d: poll %d failed early: %v", n, i, err)
			}
			if i < n-1 && c.Err() != nil {
				t.Fatalf("budget %d: Err fired before exhaustion", n)
			}
		}
		if err := c.Check(); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("budget %d: poll %d = %v, want ErrBudgetExceeded", n, n, err)
		}
		if err := c.Err(); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("budget %d: Err after exhaustion = %v", n, err)
		}
		// Exhaustion is sticky.
		if err := c.Check(); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("budget %d: exhaustion not sticky: %v", n, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := FromContext(ctx)
	if c == nil {
		t.Fatal("cancellable ctx produced nil control")
	}
	if err := c.Check(); err != nil {
		t.Fatalf("pre-cancel Check: %v", err)
	}
	cancel()
	if err := c.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Check = %v", err)
	}
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Err = %v", err)
	}
}

func TestCancellationBeatsBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 1000)
	cancel()
	if err := c.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check = %v, want Canceled despite remaining budget", err)
	}
}

func TestSharedBudgetIsJoint(t *testing.T) {
	const budget, workers = 1000, 8
	c := WithBudget(budget)
	var wg sync.WaitGroup
	var stops [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < budget; i++ {
				if c.Check() != nil {
					stops[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, s := range stops {
		total += s
	}
	// workers*budget polls against a joint budget of `budget` leave
	// exactly (workers-1)*budget failing polls.
	if want := (workers - 1) * budget; total != want {
		t.Fatalf("joint budget: %d failing polls, want %d", total, want)
	}
}

func TestIsStop(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrBudgetExceeded, true},
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("start 3: %w", ErrBudgetExceeded), true},
		{errors.New("disk on fire"), false},
	}
	for _, tc := range cases {
		if got := IsStop(tc.err); got != tc.want {
			t.Fatalf("IsStop(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
