package spectral

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Lambda2 estimates the second-smallest Laplacian eigenvalue (the
// algebraic connectivity) as the Rayleigh quotient of the computed
// Fiedler vector: λ₂ ≈ xᵀLx / xᵀx. The solver converges to the true
// Fiedler direction, so the estimate is an upper bound on λ₂ that
// tightens with Tol; for certification purposes treat it as an
// estimate, not an exact value. If the solver stops at its MaxIters
// budget the estimate from the best vector so far is returned
// alongside *ErrNotConverged.
func Lambda2(g *graph.Graph, opts Options, r *rng.Rand) (float64, error) {
	x, err := Fiedler(g, opts, r)
	if err != nil && !IsNotConverged(err) {
		return 0, err
	}
	return rayleigh(g, x), err
}

// rayleigh computes xᵀLx / xᵀx = Σ_{(u,v)∈E} w(u,v)(x_u − x_v)² / Σ x_v².
func rayleigh(g *graph.Graph, x []float64) float64 {
	var num float64
	g.Edges(func(u, v, w int32) {
		d := x[u] - x[v]
		num += float64(w) * d * d
	})
	var den float64
	for _, v := range x {
		den += v * v
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// BisectionLowerBound returns the classical spectral lower bound on the
// bisection width of a 2n-vertex graph: width ≥ λ₂·n/2 = λ₂·|V|/4
// (Fiedler/Donath–Hoffman). Because Lambda2 is an estimate from above,
// the returned value is an approximate certificate; its slack against
// the heuristics' cuts is reported by the harness, not used as ground
// truth. The graph must have an even number of vertices. A
// *ErrNotConverged from the solver is passed through alongside the
// best-effort bound.
func BisectionLowerBound(g *graph.Graph, opts Options, r *rng.Rand) (float64, error) {
	if g.N()%2 != 0 {
		return 0, fmt.Errorf("spectral: odd vertex count %d", g.N())
	}
	if g.N() == 0 {
		return 0, nil
	}
	l2, err := Lambda2(g, opts, r)
	if err != nil && !IsNotConverged(err) {
		return 0, err
	}
	return l2 * float64(g.N()) / 4, err
}
