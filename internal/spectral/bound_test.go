package spectral

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/rng"
)

func tightOpts() Options { return Options{MaxIters: 20000, Tol: 1e-12} }

func TestLambda2Cycle(t *testing.T) {
	// λ₂ of the n-cycle is 2 − 2cos(2π/n).
	for _, n := range []int{6, 12, 24} {
		g := mustGraph(gen.Cycle(n))
		got, err := Lambda2(g, tightOpts(), rng.NewFib(1))
		if err != nil {
			t.Fatal(err)
		}
		want := 2 - 2*math.Cos(2*math.Pi/float64(n))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("C%d: λ₂ = %v, want %v", n, got, want)
		}
	}
}

func TestLambda2CompleteGraph(t *testing.T) {
	// λ₂ of K_n is n.
	g := mustGraph(gen.Complete(8))
	got, err := Lambda2(g, tightOpts(), rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 1e-6 {
		t.Fatalf("K8: λ₂ = %v, want 8", got)
	}
}

func TestLambda2Disconnected(t *testing.T) {
	// Disconnected graphs have λ₂ = 0.
	g := mustGraph(gen.CycleCollection([]int{4, 4}))
	got, err := Lambda2(g, tightOpts(), rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-6 {
		t.Fatalf("disconnected λ₂ = %v, want ~0", got)
	}
}

func TestBisectionLowerBoundIsValid(t *testing.T) {
	// The bound must not exceed the exact bisection width on small graphs
	// (modulo the estimation slack of power iteration, which converges
	// from above only in the limit — use a generous tolerance factor).
	r := rng.NewFib(4)
	for _, name := range []string{"C12", "K8", "Q3", "G44"} {
		var width int64
		var bound float64
		switch name {
		case "C12":
			g := mustGraph(gen.Cycle(12))
			w, _, err := exact.BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BisectionLowerBound(g, tightOpts(), r)
			if err != nil {
				t.Fatal(err)
			}
			width, bound = w, b
		case "K8":
			g := mustGraph(gen.Complete(8))
			w, _, err := exact.BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BisectionLowerBound(g, tightOpts(), r)
			if err != nil {
				t.Fatal(err)
			}
			width, bound = w, b
		case "Q3":
			g := mustGraph(gen.Hypercube(3))
			w, _, err := exact.BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BisectionLowerBound(g, tightOpts(), r)
			if err != nil {
				t.Fatal(err)
			}
			width, bound = w, b
		case "G44":
			g := mustGraph(gen.Grid(4, 4))
			w, _, err := exact.BisectionWidth(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BisectionLowerBound(g, tightOpts(), r)
			if err != nil {
				t.Fatal(err)
			}
			width, bound = w, b
		}
		if bound > float64(width)+1e-6 {
			t.Fatalf("%s: spectral bound %.4f exceeds exact width %d", name, bound, width)
		}
		if bound < 0 {
			t.Fatalf("%s: negative bound %v", name, bound)
		}
	}
}

func TestBisectionLowerBoundTightOnKn(t *testing.T) {
	// For K_n the bound λ₂·n/4 = n²/4 equals the exact width for even n.
	g := mustGraph(gen.Complete(8))
	b, err := BisectionLowerBound(g, tightOpts(), rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-16) > 1e-5 {
		t.Fatalf("K8 bound %v, want 16", b)
	}
}

func TestBisectionLowerBoundErrors(t *testing.T) {
	if _, err := BisectionLowerBound(mustGraph(gen.Cycle(5)), Options{}, rng.NewFib(1)); err == nil {
		t.Fatal("odd n accepted")
	}
}
