package spectral

import (
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// This file gives the Fiedler solvers the same treatment every other
// kernel in the repo got: a reusable workspace so steady-state solves
// perform no allocations, and deterministic sharded vector kernels on
// the parked-worker par.Pool so -threads accelerates the solve without
// changing a single bit of the result.
//
// Determinism strategy (the thread-count invariance contract pinned by
// core's determinism matrix test):
//
//   - The CSR matvec needs no care at all: each output row is the sum
//     of that row's entries in CSR order, with no cross-shard
//     reduction, so sharding rows over any number of workers is
//     bit-identical by construction.
//   - Reductions (dot products, sums) use a FIXED block size: each
//     block's partial sum is computed serially within the block, and
//     the per-block partials are combined serially in block order.
//     Which worker computes a block never changes the block's value,
//     so the result is independent of the shard count — and the inline
//     (no pool) path runs the exact same blocked loop, making pooled
//     and pool-less runs identical too.
//   - Elementwise updates (axpy, scale, deflate shifts) are trivially
//     order-independent.
//
// Unlike matching's handshake, there is no separate serial algorithm:
// the blocked kernels are the only code path, at every size and thread
// count. ParallelMinVertices only decides whether the shards fork to
// the pool or run inline — never what they compute.

// ParallelMinVertices is the vertex count below which the solver runs
// its shards inline even when a pool is attached: on tiny graphs the
// fork-join barriers cost more than the vector ops they parallelize.
// It is a variable only so tests can lower it; production code should
// treat it as a constant. The computed result is identical on both
// sides of the threshold.
var ParallelMinVertices = 1 << 15

// dotBlock is the fixed reduction block size. Reductions sum each
// block serially and then combine the per-block partials in block
// order, so the floating-point result depends only on the vector —
// never on the shard count.
const dotBlock = 1 << 12

// Workspace holds every buffer the Fiedler solvers need — the Lanczos
// basis slab, tridiagonal scratch, matvec buffers, cached weighted
// degrees, and reduction partials — so a warm workspace solves with
// zero steady-state allocations. A Workspace is not safe for
// concurrent use; the zero value is ready to use.
type Workspace struct {
	n int

	x, y     []float64 // iterate / matvec destination
	deg      []float64 // cached weighted degrees of the bound graph
	partials []float64 // per-block reduction partials (len ≥ max(blocks, shards))

	basis       []float64 // Lanczos basis slab: mb row-major vectors of length n
	mb          int
	alpha, beta []float64 // tridiagonal diagonal / subdiagonal
	td, te, tz  []float64 // tql2 scratch: eigenvalues, off-diagonal, mb×mb rotations

	cshift float64 // spectral shift c = 2·max weighted degree (≥ 1)

	pool    *par.Pool
	ownPool bool
	poolDeg int // last SetParallel degree (-1: external pool via SetPool)
	shards  int // effective shard count for the current solve (1 = inline)

	// Operand slots for the pre-bound shard closures: binding the
	// closures once and passing operands through fields keeps the
	// steady-state solve allocation-free.
	pg          *graph.Graph
	opDst, opA  []float64
	opB         []float64
	opCoef      float64
	degFn       func(int)
	matvecFn    func(int)
	dotFn       func(int)
	sumFn       func(int)
	axpyFn      func(int)
	scaleFn     func(int)
	addcFn      func(int)
	scaleIntoFn func(int)
}

// NewWorkspace returns an empty workspace; buffers are sized lazily by
// the first solve.
func NewWorkspace() *Workspace { return &Workspace{} }

// SetParallel attaches a pool of the given degree to the workspace,
// sharding the solver's vector kernels for graphs with at least
// ParallelMinVertices vertices. Degree ≤ 1 detaches (and closes any
// owned pool). The workspace owns the resulting pool; Close releases
// it. Results are bit-identical at every degree. Idempotent per
// degree, so per-solve callers can pass their configured degree
// without churning pools.
func (w *Workspace) SetParallel(degree int) {
	if degree == w.poolDeg {
		return
	}
	w.releasePool()
	w.pool = par.New(degree)
	w.ownPool = w.pool != nil
	w.poolDeg = degree
}

// SetPool attaches a caller-owned pool (which may be shared with other
// phases, e.g. the multilevel arena). The caller keeps responsibility
// for closing it; a nil pool detaches.
func (w *Workspace) SetPool(p *par.Pool) {
	w.releasePool()
	w.pool = p
	if p != nil {
		w.poolDeg = -1
	}
}

// Close releases any pool owned by the workspace. The workspace
// remains usable (inline) afterwards.
func (w *Workspace) Close() { w.releasePool() }

func (w *Workspace) releasePool() {
	if w.ownPool {
		w.pool.Close()
	}
	w.pool = nil
	w.ownPool = false
	w.poolDeg = 0
}

// shardRange splits [0, n) into near-equal contiguous shards.
func shardRange(s, shards, n int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// ensure sizes the base buffers for g, binds the shard closures, and
// caches the weighted degrees and the spectral shift c. Steady-state
// calls on same-size graphs perform no allocations.
func (w *Workspace) ensure(g *graph.Graph) {
	n := g.N()
	w.n = n
	w.pg = g
	w.shards = 1
	if w.pool != nil && n >= ParallelMinVertices {
		w.shards = w.pool.Degree()
	}
	if cap(w.x) < n {
		w.x = make([]float64, n)
	}
	w.x = w.x[:n]
	if cap(w.y) < n {
		w.y = make([]float64, n)
	}
	w.y = w.y[:n]
	if cap(w.deg) < n {
		w.deg = make([]float64, n)
	}
	w.deg = w.deg[:n]
	np := (n + dotBlock - 1) / dotBlock
	if np < w.shards {
		np = w.shards
	}
	if np < 1 {
		np = 1
	}
	if cap(w.partials) < np {
		w.partials = make([]float64, np)
	}
	w.partials = w.partials[:np]
	if w.matvecFn == nil {
		w.degFn = w.degShard
		w.matvecFn = w.matvecShard
		w.dotFn = w.dotShard
		w.sumFn = w.sumShard
		w.axpyFn = w.axpyShard
		w.scaleFn = w.scaleShard
		w.addcFn = w.addcShard
		w.scaleIntoFn = w.scaleIntoShard
	}
	// Cache weighted degrees and compute the shift c = 2·max weighted
	// degree (≥ 1), which bounds the Laplacian spectrum from above.
	w.run(w.degFn)
	var c float64
	for s := 0; s < w.shards; s++ {
		if m := w.partials[s]; m > c {
			c = m
		}
	}
	c *= 2
	if c == 0 {
		c = 1
	}
	w.cshift = c
}

// ensureLanczos additionally sizes the Lanczos basis slab for mb
// vectors plus the tridiagonal eigensolver scratch.
func (w *Workspace) ensureLanczos(mb int) {
	w.mb = mb
	if cap(w.basis) < mb*w.n {
		w.basis = make([]float64, mb*w.n)
	}
	w.basis = w.basis[:mb*w.n]
	if cap(w.alpha) < mb {
		w.alpha = make([]float64, mb)
		w.beta = make([]float64, mb)
		w.td = make([]float64, mb)
		w.te = make([]float64, mb)
	}
	w.alpha, w.beta = w.alpha[:mb], w.beta[:mb]
	w.td, w.te = w.td[:mb], w.te[:mb]
	if cap(w.tz) < mb*mb {
		w.tz = make([]float64, mb*mb)
	}
	w.tz = w.tz[:mb*mb]
}

// basisVec returns the j-th Lanczos basis vector.
func (w *Workspace) basisVec(j int) []float64 {
	return w.basis[j*w.n : (j+1)*w.n]
}

// run executes fn over the effective shards — on the pool when it is
// attached and the graph is above the parallel threshold, inline
// otherwise. Both paths compute identical results.
func (w *Workspace) run(fn func(int)) {
	if w.shards > 1 {
		w.pool.Run(w.shards, fn)
		return
	}
	fn(0)
}

func (w *Workspace) degShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	g, deg := w.pg, w.deg
	var m float64
	for v := lo; v < hi; v++ {
		d := float64(g.WeightedDegree(int32(v)))
		deg[v] = d
		if d > m {
			m = d
		}
	}
	w.partials[s] = m
}

// matvecShard computes opDst[v] = (opCoef − deg[v])·opA[v] + Σ w·opA[u]
// over the shard's vertex range: one shard of y = (cI − L)x. Each row
// sums its CSR entries in order with no cross-shard reduction, so the
// result is bit-identical at every shard count.
func (w *Workspace) matvecShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	g, x, y, deg, c := w.pg, w.opA, w.opDst, w.deg, w.opCoef
	for v := lo; v < hi; v++ {
		sum := (c - deg[v]) * x[v]
		for _, e := range g.Neighbors(int32(v)) {
			sum += float64(e.W) * x[e.To]
		}
		y[v] = sum
	}
}

// dotShard computes the per-block partial sums of opA·opB for the
// blocks in the shard's range.
func (w *Workspace) dotShard(s int) {
	nb := (w.n + dotBlock - 1) / dotBlock
	blo, bhi := shardRange(s, w.shards, nb)
	a, b, p := w.opA, w.opB, w.partials
	for k := blo; k < bhi; k++ {
		lo, hi := k*dotBlock, (k+1)*dotBlock
		if hi > w.n {
			hi = w.n
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += a[i] * b[i]
		}
		p[k] = sum
	}
}

// sumShard computes the per-block partial sums of opA.
func (w *Workspace) sumShard(s int) {
	nb := (w.n + dotBlock - 1) / dotBlock
	blo, bhi := shardRange(s, w.shards, nb)
	a, p := w.opA, w.partials
	for k := blo; k < bhi; k++ {
		lo, hi := k*dotBlock, (k+1)*dotBlock
		if hi > w.n {
			hi = w.n
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += a[i]
		}
		p[k] = sum
	}
}

func (w *Workspace) axpyShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	dst, a, c := w.opDst, w.opA, w.opCoef
	for i := lo; i < hi; i++ {
		dst[i] += c * a[i]
	}
}

func (w *Workspace) scaleShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	dst, c := w.opDst, w.opCoef
	for i := lo; i < hi; i++ {
		dst[i] *= c
	}
}

func (w *Workspace) addcShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	dst, c := w.opDst, w.opCoef
	for i := lo; i < hi; i++ {
		dst[i] += c
	}
}

func (w *Workspace) scaleIntoShard(s int) {
	lo, hi := shardRange(s, w.shards, w.n)
	dst, a, c := w.opDst, w.opA, w.opCoef
	for i := lo; i < hi; i++ {
		dst[i] = c * a[i]
	}
}

// matvec computes dst = (shift·I − L)·src.
func (w *Workspace) matvec(dst, src []float64, shift float64) {
	w.opDst, w.opA, w.opCoef = dst, src, shift
	w.run(w.matvecFn)
}

// dot returns a·b with the fixed-block deterministic reduction.
func (w *Workspace) dot(a, b []float64) float64 {
	w.opA, w.opB = a, b
	w.run(w.dotFn)
	nb := (w.n + dotBlock - 1) / dotBlock
	var sum float64
	for k := 0; k < nb; k++ {
		sum += w.partials[k]
	}
	return sum
}

// sum returns Σ a with the fixed-block deterministic reduction.
func (w *Workspace) sum(a []float64) float64 {
	w.opA = a
	w.run(w.sumFn)
	nb := (w.n + dotBlock - 1) / dotBlock
	var sum float64
	for k := 0; k < nb; k++ {
		sum += w.partials[k]
	}
	return sum
}

// axpy computes dst += c·a.
func (w *Workspace) axpy(dst []float64, c float64, a []float64) {
	w.opDst, w.opA, w.opCoef = dst, a, c
	w.run(w.axpyFn)
}

// scale computes dst *= c.
func (w *Workspace) scale(dst []float64, c float64) {
	w.opDst, w.opCoef = dst, c
	w.run(w.scaleFn)
}

// scaleInto computes dst = c·a.
func (w *Workspace) scaleInto(dst []float64, c float64, a []float64) {
	w.opDst, w.opA, w.opCoef = dst, a, c
	w.run(w.scaleIntoFn)
}

// deflate removes the component along the all-ones vector.
func (w *Workspace) deflate(x []float64) {
	mean := w.sum(x) / float64(w.n)
	w.opDst, w.opCoef = x, -mean
	w.run(w.addcFn)
}

// nrm returns the Euclidean norm of x.
func (w *Workspace) nrm(x []float64) float64 {
	return math.Sqrt(w.dot(x, x))
}

// normalize scales x to unit Euclidean norm; a zero vector becomes e₀
// (matching the historical power-iteration fallback).
func (w *Workspace) normalize(x []float64) {
	n := w.nrm(x)
	if n == 0 {
		x[0] = 1
		return
	}
	w.scale(x, 1/n)
}
