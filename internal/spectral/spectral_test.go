package spectral

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestFiedlerIsZeroMeanUnit(t *testing.T) {
	g := mustGraph(gen.Grid(6, 6))
	f, err := Fiedler(g, Options{}, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	var mean, nrm float64
	for _, v := range f {
		mean += v
		nrm += v * v
	}
	mean /= float64(len(f))
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("mean %g not ~0", mean)
	}
	if math.Abs(math.Sqrt(nrm)-1) > 1e-9 {
		t.Fatalf("norm %g not ~1", math.Sqrt(nrm))
	}
}

func TestFiedlerOnPathIsMonotone(t *testing.T) {
	// The Fiedler vector of a path is cos(π k (i+1/2)/n), monotone in i.
	g := mustGraph(gen.Path(20))
	f, err := Fiedler(g, Options{MaxIters: 5000, Tol: 1e-12}, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	// Orient so f[0] < f[last].
	if f[0] > f[len(f)-1] {
		for i := range f {
			f[i] = -f[i]
		}
	}
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1]-1e-6 {
			t.Fatalf("Fiedler vector of a path not monotone at %d: %v", i, f)
		}
	}
}

func TestFiedlerErrorsOnEmptyGraph(t *testing.T) {
	if _, err := Fiedler(graph.NewBuilder(0).MustBuild(), Options{}, rng.NewFib(1)); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestFiedlerEdgelessGraphDoesNotCrash(t *testing.T) {
	g := graph.NewBuilder(6).MustBuild()
	if _, err := Fiedler(g, Options{MaxIters: 10}, rng.NewFib(3)); err != nil {
		t.Fatal(err)
	}
}

func TestBisectBalancedAndGood(t *testing.T) {
	// Spectral bisection of an even path must be near-optimal (optimal is
	// 1, the middle edge).
	g := mustGraph(gen.Path(40))
	b, err := Bisect(g, Options{MaxIters: 5000, Tol: 1e-12}, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if n0, n1 := b.CountSides(); n0 != 20 || n1 != 20 {
		t.Fatalf("sides %d/%d", n0, n1)
	}
	if b.Cut() != 1 {
		t.Fatalf("spectral cut of a path = %d, want 1", b.Cut())
	}
}

func TestBisectGrid(t *testing.T) {
	// 8x8 grid: optimal bisection 8; spectral should be at or near it.
	g := mustGraph(gen.Grid(8, 8))
	b, err := Bisect(g, Options{MaxIters: 5000, Tol: 1e-12}, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if b.Cut() > 12 {
		t.Fatalf("spectral grid cut %d too far above optimal 8", b.Cut())
	}
}

func TestBisectPlantedModel(t *testing.T) {
	// On a planted-bisection graph with a pronounced community structure,
	// spectral bisection should land well below a random cut.
	r := rng.NewFib(9)
	g, err := gen.TwoSet(200, 0.08, 0.08, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(g, Options{}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Random balanced cut expectation is ~ m/2.
	if b.Cut() >= int64(g.M())/2 {
		t.Fatalf("spectral cut %d no better than random (~%d)", b.Cut(), g.M()/2)
	}
}

func TestBisectDeterministicGivenSeed(t *testing.T) {
	g := mustGraph(gen.Grid(6, 6))
	a, err := Bisect(g, Options{}, rng.NewFib(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(g, Options{}, rng.NewFib(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut() != b.Cut() {
		t.Fatalf("same seed, different cuts %d/%d", a.Cut(), b.Cut())
	}
}

func BenchmarkFiedlerGrid32(b *testing.B) {
	g := mustGraph(gen.Grid(32, 32))
	r := rng.NewFib(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fiedler(g, Options{MaxIters: 200}, r); err != nil {
			b.Fatal(err)
		}
	}
}
