// Package spectral implements spectral bisection: split the vertices at
// the median of the Fiedler vector (the eigenvector of the graph
// Laplacian with the second-smallest eigenvalue), computed with deflated
// power iteration. It is independent of the move-based heuristics and is
// used as a sanity baseline in the evaluation harness.
package spectral

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Options configures the power iteration.
type Options struct {
	// MaxIters caps the number of power iterations (default 500).
	MaxIters int
	// Tol is the convergence threshold on the iterate change under the
	// infinity norm (default 1e-7).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// Fiedler approximates the Fiedler vector of g. It runs power iteration
// on M = cI − L (c chosen so M is positive semidefinite), deflating the
// constant eigenvector, so the dominant remaining eigendirection is the
// Laplacian's second-smallest. The returned vector has unit Euclidean
// norm. For edgeless graphs the result is an arbitrary zero-mean unit
// vector.
func Fiedler(g *graph.Graph, opts Options, r *rng.Rand) ([]float64, error) {
	o := opts.withDefaults()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("spectral: empty graph")
	}
	// Shift: c = 2·maxWeightedDegree bounds the Laplacian spectrum.
	var c float64
	for v := int32(0); int(v) < n; v++ {
		if wd := float64(g.WeightedDegree(v)); 2*wd > c {
			c = 2 * wd
		}
	}
	if c == 0 {
		c = 1
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	deflate(x)
	normalize(x)
	for iter := 0; iter < o.MaxIters; iter++ {
		// y = (cI − L)x = c·x − D·x + A·x.
		for v := int32(0); int(v) < n; v++ {
			s := (c - float64(g.WeightedDegree(v))) * x[v]
			for _, e := range g.Neighbors(v) {
				s += float64(e.W) * x[e.To]
			}
			y[v] = s
		}
		deflate(y)
		if norm(y) < 1e-12 {
			// Iterate collapsed (e.g. x was already an exact eigenvector
			// of the deflated complement); restart from fresh noise.
			for i := range y {
				y[i] = r.Float64() - 0.5
			}
			deflate(y)
		}
		normalize(y)
		d := 0.0
		for i := range x {
			if diff := math.Abs(y[i] - x[i]); diff > d {
				d = diff
			}
		}
		x, y = y, x
		if d < o.Tol {
			break
		}
	}
	return x, nil
}

// Bisect splits g at the median Fiedler value: the n/2 vertices with the
// smallest Fiedler coordinates form side 0 (ties broken by vertex id via
// stable sorting, then randomness only through the iteration's start
// vector). The result is exactly balanced by vertex count.
func Bisect(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, error) {
	f, err := Fiedler(g, opts, r)
	if err != nil {
		return nil, err
	}
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return f[order[a]] < f[order[b]] })
	side := make([]uint8, n)
	for i, v := range order {
		if i >= n/2 {
			side[v] = 1
		}
	}
	return partition.New(g, side)
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		x[0] = 1
		return
	}
	for i := range x {
		x[i] /= n
	}
}
