// Package spectral implements spectral bisection: split the vertices
// at the median of the Fiedler vector (the eigenvector of the graph
// Laplacian with the second-smallest eigenvalue). The default solver
// is restarted Lanczos with full reorthogonalization — several-fold
// fewer matvecs than the deflated power iteration it replaced on
// well-separated spectra, and a certified answer on small-gap
// instances where power iteration's stopping rule stalls on the
// wrong vector (see docs/PERFORMANCE.md §BENCH_8). Power iteration
// remains available behind DisableLanczos as an ablation/equivalence
// baseline. Both solvers share a reusable
// zero-alloc Workspace whose vector kernels shard onto the par.Pool
// with bit-identical results at every thread count.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Options configures the Fiedler solver.
type Options struct {
	// MaxIters caps the total number of Laplacian matvecs (default
	// 500). For the power path one iteration is one matvec; for the
	// Lanczos path the cap spans all restarts.
	MaxIters int
	// Tol is the convergence threshold (default 1e-7). The Lanczos
	// path converges when the Ritz residual ‖Lx − λ₂x‖, relative to
	// the spectral shift c = 2·max weighted degree, drops below Tol;
	// the power path keeps its historical criterion, the iterate
	// change under the infinity norm.
	Tol float64
	// MaxBasis bounds the Lanczos basis (default 32 vectors). Larger
	// bases converge in fewer restarts at the cost of O(MaxBasis·n)
	// workspace memory and O(MaxBasis²·n) reorthogonalization work.
	MaxBasis int
	// DisableLanczos falls back to the original deflated power
	// iteration — the ablation path for equivalence tests and the
	// BENCH_8 matvec-count comparison.
	DisableLanczos bool
	// Workspace, when non-nil, supplies reusable solver storage so
	// steady-state solves allocate nothing. The returned Fiedler
	// vector aliases it and is valid until the workspace's next use.
	Workspace *Workspace
	// ParallelDegree, when > 1, shards the solver's vector kernels
	// across that many goroutines for graphs with at least
	// ParallelMinVertices vertices. Results are bit-identical at every
	// degree. The pool attaches to the Workspace (idempotently), so
	// reuse a Workspace across solves to amortize it.
	ParallelDegree int
	// Stats, when non-nil, is filled with counters from the solve.
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxBasis <= 0 {
		o.MaxBasis = 32
	}
	return o
}

// Stats reports counters from a Fiedler solve.
type Stats struct {
	// MatVecs is the number of Laplacian matrix-vector products — the
	// dominant cost of either solver and the unit BENCH_8 compares.
	MatVecs int
	// Restarts counts Lanczos restarts (0 for the power path).
	Restarts int
	// Residual is the final eigenresidual estimate ‖Lx − λ₂x‖
	// relative to the spectral shift c.
	Residual float64
	// Lambda2 is the solver's estimate of the algebraic connectivity.
	Lambda2 float64
	// Converged reports whether the solve passed Tol within MaxIters.
	Converged bool
}

// ErrNotConverged reports that the solver exhausted its MaxIters
// matvec budget before passing Tol. It is returned ALONGSIDE the best
// estimate so far: Fiedler still hands back a usable (deflated, unit)
// vector and Bisect a valid bisection, so callers may treat the error
// as a quality warning rather than a failure.
type ErrNotConverged struct {
	// Residual is the last eigenresidual estimate, relative to the
	// spectral shift c (exact for the Lanczos path).
	Residual float64
	// Tol is the threshold the residual failed to pass.
	Tol float64
	// MatVecs is the number of matvecs spent.
	MatVecs int
}

func (e *ErrNotConverged) Error() string {
	return fmt.Sprintf("spectral: not converged after %d matvecs (residual %.3g > tol %.3g)",
		e.MatVecs, e.Residual, e.Tol)
}

// IsNotConverged reports whether err is (or wraps) an *ErrNotConverged.
func IsNotConverged(err error) bool {
	var e *ErrNotConverged
	return errors.As(err, &e)
}

// Fiedler approximates the Fiedler vector of g with the restarted
// Lanczos solver (or deflated power iteration under DisableLanczos).
// Both run on M = cI − L with the all-ones vector deflated, so the
// dominant remaining eigendirection is the Laplacian's second-
// smallest, and both draw the same deterministic start vector from r.
// The returned vector has unit Euclidean norm and zero mean; for
// edgeless graphs it is an arbitrary zero-mean unit vector. When the
// solve stops at MaxIters the vector is returned together with
// *ErrNotConverged; any other error means no usable vector. With
// Options.Workspace set the result aliases workspace storage.
func Fiedler(g *graph.Graph, opts Options, r *rng.Rand) ([]float64, error) {
	o := opts.withDefaults()
	if g.N() == 0 {
		return nil, fmt.Errorf("spectral: empty graph")
	}
	w := o.Workspace
	if w == nil {
		w = NewWorkspace()
		if o.ParallelDegree > 1 {
			defer w.Close() // release the ephemeral pool's parked goroutines
		}
	}
	if o.ParallelDegree > 0 {
		w.SetParallel(o.ParallelDegree)
	}
	w.ensure(g)
	defer func() { w.pg = nil }()
	if o.DisableLanczos {
		return w.powerFiedler(g, o, r)
	}
	return w.lanczosFiedler(g, o, r)
}

// powerFiedler is the original deflated power iteration on M = cI − L,
// kept as the ablation baseline. One iteration is one matvec; a final
// extra matvec computes the Rayleigh quotient and true residual for
// Stats/ErrNotConverged.
func (w *Workspace) powerFiedler(g *graph.Graph, o Options, r *rng.Rand) ([]float64, error) {
	c := w.cshift
	x, y := w.x, w.y
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	w.deflate(x)
	w.normalize(x)
	matvecs := 0
	converged := false
	for iter := 0; iter < o.MaxIters; iter++ {
		w.matvec(y, x, c)
		matvecs++
		w.deflate(y)
		if w.nrm(y) < 1e-12 {
			// Iterate collapsed (e.g. x was already an exact
			// eigenvector of the deflated complement); restart from
			// fresh noise.
			for i := range y {
				y[i] = r.Float64() - 0.5
			}
			w.deflate(y)
		}
		w.normalize(y)
		d := 0.0
		for i := range x {
			if diff := math.Abs(y[i] - x[i]); diff > d {
				d = diff
			}
		}
		x, y = y, x
		if d < o.Tol {
			converged = true
			break
		}
	}
	// One extra matvec yields the Rayleigh quotient θ = xᵀMx (x is
	// unit) and the exact relative residual ‖Mx − θx‖/c.
	w.matvec(y, x, c)
	matvecs++
	theta := w.dot(x, y)
	w.axpy(y, -theta, x)
	resid := w.nrm(y) / c
	if o.Stats != nil {
		*o.Stats = Stats{
			MatVecs: matvecs, Residual: resid,
			Lambda2: c - theta, Converged: converged,
		}
	}
	if !converged {
		return x, &ErrNotConverged{Residual: resid, Tol: o.Tol, MatVecs: matvecs}
	}
	return x, nil
}

// Bisect splits g at the median Fiedler value: the n/2 vertices with
// the smallest Fiedler coordinates form side 0 (ties broken by vertex
// id via stable sorting, then randomness only through the solver's
// start vector). The result is exactly balanced by vertex count. A
// *ErrNotConverged from the solver is passed through alongside the
// (still valid) bisection; other errors return nil.
func Bisect(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, error) {
	f, ferr := Fiedler(g, opts, r)
	if ferr != nil && !IsNotConverged(ferr) {
		return nil, ferr
	}
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return f[order[a]] < f[order[b]] })
	side := make([]uint8, n)
	for i, v := range order {
		if i >= n/2 {
			side[v] = 1
		}
	}
	p, err := partition.New(g, side)
	if err != nil {
		return nil, err
	}
	return p, ferr
}
