package spectral

import (
	"encoding/json"
	"flag"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/spectral_golden.json from the current implementation")

// spectralGoldenCase is one instance pinned by the spectral fixture,
// spanning the families the harness benchmarks: sparse GNP, planted
// regular, and the two structured graphs with known Fiedler vectors.
type spectralGoldenCase struct {
	Name string
	g    *graph.Graph
	seed uint64
}

// spectralGoldenRecord reduces one case to everything the solver
// determines: the matvec count (deterministic given the seed), the λ₂
// estimate, and the cut and side assignment of the median split.
type spectralGoldenRecord struct {
	Name      string  `json:"name"`
	MatVecs   int     `json:"matvecs"`
	Lambda2   string  `json:"lambda2"`
	Cut       int64   `json:"cut"`
	SidesHash uint64  `json:"sides_hash"`
	Residual  float64 `json:"-"`
}

func spectralGoldenCases() []spectralGoldenCase {
	mk := func(name string, g *graph.Graph, err error, seed uint64) spectralGoldenCase {
		if err != nil {
			panic(err)
		}
		return spectralGoldenCase{Name: name, g: g, seed: seed}
	}
	gnp, gnpErr := gen.GNP(400, 4.0/399.0, rng.NewFib(51))
	breg, bregErr := gen.BReg(200, 6, 4, rng.NewFib(53))
	path, pathErr := gen.Path(64)
	grid, gridErr := gen.Grid(16, 16)
	return []spectralGoldenCase{
		mk("gnp400_d4", gnp, gnpErr, 61),
		mk("breg200_b6_d4", breg, bregErr, 63),
		mk("path64", path, pathErr, 65),
		mk("grid16x16", grid, gridErr, 67),
	}
}

func runSpectralGoldenCase(c spectralGoldenCase) (spectralGoldenRecord, error) {
	rec := spectralGoldenRecord{Name: c.Name}
	var st Stats
	opts := Options{Tol: 1e-10, Stats: &st}
	f, err := Fiedler(c.g, opts, rng.NewFib(c.seed))
	if err != nil {
		return rec, err
	}
	rec.MatVecs = st.MatVecs
	// λ₂ via the Rayleigh quotient, formatted so the JSON fixture pins
	// the exact float64 bits.
	rec.Lambda2 = strconv17(rayleigh(c.g, f))
	b, err := Bisect(c.g, opts, rng.NewFib(c.seed))
	if err != nil {
		return rec, err
	}
	rec.Cut = b.Cut()
	h := fnv.New64a()
	h.Write(b.SidesRef())
	rec.SidesHash = h.Sum64()
	return rec, nil
}

// strconv17 formats a float64 with enough digits to round-trip exactly.
func strconv17(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestGoldenSpectral pins the Lanczos solver — matvec count, λ₂
// estimate, cut, and side assignment — to a committed fixture on
// Gnp/Gbreg/path/grid instances.
func TestGoldenSpectral(t *testing.T) {
	path := filepath.Join("testdata", "spectral_golden.json")
	if *updateGolden {
		var recs []spectralGoldenRecord
		for _, c := range spectralGoldenCases() {
			r, err := runSpectralGoldenCase(c)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []spectralGoldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	cases := spectralGoldenCases()
	if len(want) != len(cases) {
		t.Fatalf("fixture has %d records for %d cases; rerun with -update", len(want), len(cases))
	}
	for i, c := range cases {
		got, err := runSpectralGoldenCase(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got != want[i] {
			t.Errorf("%s:\n got %+v\nwant %+v", c.Name, got, want[i])
		}
	}
}

// TestLanczosPowerEquivalence drives both solvers to a tight tolerance
// on a connected planted-regular instance: both must identify the same
// median split (up to the Fiedler vector's global sign, which flips
// both sides).
func TestLanczosPowerEquivalence(t *testing.T) {
	g := mustGraph(gen.BReg(400, 6, 4, rng.NewFib(71)))
	lb, err := Bisect(g, Options{Tol: 1e-12, MaxIters: 100000}, rng.NewFib(73))
	if err != nil {
		t.Fatalf("lanczos: %v", err)
	}
	pb, err := Bisect(g, Options{Tol: 1e-12, MaxIters: 100000, DisableLanczos: true}, rng.NewFib(73))
	if err != nil {
		t.Fatalf("power: %v", err)
	}
	if lb.Cut() != pb.Cut() {
		t.Fatalf("cuts differ: lanczos %d, power %d", lb.Cut(), pb.Cut())
	}
	ls, ps := lb.SidesRef(), pb.SidesRef()
	same, flipped := true, true
	for i := range ls {
		if ls[i] != ps[i] {
			same = false
		}
		if ls[i] == ps[i] {
			flipped = false
		}
	}
	if !same && !flipped {
		t.Fatal("lanczos and power converged to different splits")
	}
}

// TestLanczosFewerMatVecs quantifies the tentpole claim on a mid-size
// instance: at matching accuracy Lanczos must reach convergence in at
// least 5× fewer matvecs than power iteration (BENCH_8 pins the same
// ratio at 10^5 vertices).
func TestLanczosFewerMatVecs(t *testing.T) {
	g := mustGraph(gen.GNP(10000, 4.0/9999.0, rng.NewFib(75)))
	var sl, sp Stats
	if _, err := Fiedler(g, Options{Tol: 1e-8, MaxIters: 200000, Stats: &sl}, rng.NewFib(77)); err != nil {
		t.Fatalf("lanczos: %v", err)
	}
	if _, err := Fiedler(g, Options{Tol: 1e-8, MaxIters: 200000, DisableLanczos: true, Stats: &sp}, rng.NewFib(77)); err != nil {
		t.Fatalf("power: %v", err)
	}
	if !sl.Converged || !sp.Converged {
		t.Fatalf("not converged: lanczos %+v power %+v", sl, sp)
	}
	if sl.MatVecs*5 > sp.MatVecs {
		t.Fatalf("lanczos %d matvecs vs power %d: want ≥5× fewer", sl.MatVecs, sp.MatVecs)
	}
}

// TestFiedlerNotConverged pins the typed error contract: an exhausted
// matvec budget returns *ErrNotConverged together with a usable vector,
// and Bisect/Lambda2/BisectionLowerBound pass both through.
func TestFiedlerNotConverged(t *testing.T) {
	g := mustGraph(gen.Grid(16, 16))
	opts := Options{Tol: 1e-14, MaxIters: 2}
	f, err := Fiedler(g, opts, rng.NewFib(81))
	if !IsNotConverged(err) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	var nc *ErrNotConverged
	if !asNotConverged(err, &nc) || nc.MatVecs < 1 || nc.Residual <= nc.Tol {
		t.Fatalf("bad error payload: %+v", err)
	}
	if len(f) != g.N() {
		t.Fatalf("no usable vector alongside the error (len %d)", len(f))
	}
	b, err := Bisect(g, opts, rng.NewFib(81))
	if !IsNotConverged(err) || b == nil {
		t.Fatalf("Bisect: want bisection + ErrNotConverged, got %v / %v", b, err)
	}
	if n0, n1 := b.CountSides(); n0 != n1 {
		t.Fatalf("unbalanced best-effort bisection %d/%d", n0, n1)
	}
	l2, err := Lambda2(g, opts, rng.NewFib(81))
	if !IsNotConverged(err) || math.IsNaN(l2) {
		t.Fatalf("Lambda2: want estimate + ErrNotConverged, got %g / %v", l2, err)
	}
	lb, err := BisectionLowerBound(g, opts, rng.NewFib(81))
	if !IsNotConverged(err) || math.IsNaN(lb) {
		t.Fatalf("BisectionLowerBound: want bound + ErrNotConverged, got %g / %v", lb, err)
	}
	// The power path reports the same typed error.
	opts.DisableLanczos = true
	if _, err := Fiedler(g, opts, rng.NewFib(81)); !IsNotConverged(err) {
		t.Fatalf("power path: want ErrNotConverged, got %v", err)
	}
}

func asNotConverged(err error, out **ErrNotConverged) bool {
	e, ok := err.(*ErrNotConverged)
	if ok {
		*out = e
	}
	return ok
}

// TestFiedlerSteadyAllocs is the zero-alloc contract for the warm
// solver: with a reused Workspace, repeat Fiedler solves (both paths)
// must not touch the heap.
func TestFiedlerSteadyAllocs(t *testing.T) {
	g := mustGraph(gen.BReg(2000, 10, 4, rng.NewFib(85)))
	w := NewWorkspace()
	for _, o := range []Options{
		{Workspace: w},
		{Workspace: w, DisableLanczos: true},
	} {
		opts := o
		r := rng.NewFib(87)
		if _, err := Fiedler(g, opts, r); err != nil && !IsNotConverged(err) {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := Fiedler(g, opts, r); err != nil && !IsNotConverged(err) {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("warm Fiedler (DisableLanczos=%v) allocates %.1f per run, want 0",
				opts.DisableLanczos, allocs)
		}
	}
}

// TestShardedFiedlerDeterminism is the thread-count invariance contract
// for the sharded vector kernels: with the parallel threshold lowered,
// the Fiedler vector must be bit-identical with no pool and at pool
// degrees 2, 4, and 8.
func TestShardedFiedlerDeterminism(t *testing.T) {
	saved := ParallelMinVertices
	ParallelMinVertices = 1
	defer func() { ParallelMinVertices = saved }()

	g := mustGraph(gen.GNP(3000, 8.0/2999.0, rng.NewFib(91)))
	base, err := Fiedler(g, Options{}, rng.NewFib(93))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), base...)
	for _, deg := range []int{1, 2, 4, 8} {
		w := NewWorkspace()
		w.SetParallel(deg)
		got, err := Fiedler(g, Options{Workspace: w}, rng.NewFib(93))
		if err != nil {
			w.Close()
			t.Fatalf("degree %d: %v", deg, err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("degree %d: vector differs at %d: %v != %v", deg, i, got[i], want[i])
			}
		}
		w.Close()
	}
}
