package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// This file implements the restarted Lanczos Fiedler solver. It runs
// the Lanczos recurrence on the same shifted operator the power path
// iterates, M = cI − L (c = 2·max weighted degree), whose dominant
// eigenpair in the complement of the all-ones vector is (c − λ₂, the
// Fiedler vector):
//
//	β_j q_{j+1} = M q_j − α_j q_j − β_{j−1} q_{j−1}
//
// with full reorthogonalization of every new vector against the
// bounded basis q_0..q_j (and re-deflation against the all-ones
// vector, which keeps rounding drift from re-admitting the trivial
// eigenpair). After at most MaxBasis steps the small symmetric
// tridiagonal T = tridiag(β, α, β) is diagonalized directly (tql2) and
// the Ritz vector for its largest eigenvalue θ assembled from the
// basis. The Ritz residual ‖M y − θ y‖ equals |β_m · s_m| exactly (s =
// T's eigenvector, s_m its last component), so convergence is checked
// for free; if the relative residual still exceeds Tol the recurrence
// restarts from the Ritz vector. Each restart squeezes the whole
// Krylov space's worth of progress out of MaxBasis matvecs, which is
// why Lanczos reaches the split in orders of magnitude fewer matvecs
// than power iteration (see docs/PERFORMANCE.md, BENCH_8).

// breakdownEps declares a Lanczos breakdown when the next basis vector's
// norm (relative to the shift c) falls below it: the Krylov space is an
// invariant subspace and the Ritz pairs in it are exact.
const breakdownEps = 1e-14

// lanczos runs the restarted Lanczos solver. The result vector aliases
// workspace storage. A non-nil error is either *ErrNotConverged (with a
// usable best-estimate vector alongside) or a hard solver failure.
func (w *Workspace) lanczosFiedler(g *graph.Graph, o Options, r *rng.Rand) ([]float64, error) {
	n, c := w.n, w.cshift
	mb := o.MaxBasis
	if mb > n {
		mb = n
	}
	w.ensureLanczos(mb)

	// Deterministic start vector: the same n draws the power path uses.
	x := w.x
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	w.deflate(x)
	w.normalize(x)

	matvecs, restarts := 0, 0
	resid := math.Inf(1)
	var theta float64
	converged := false
	for {
		// One Lanczos factorization from q_0 = x.
		copy(w.basisVec(0), x)
		m := 0
		var betaLast float64
		for j := 0; j < mb; j++ {
			qj := w.basisVec(j)
			w.matvec(w.y, qj, c)
			matvecs++
			w.alpha[j] = w.dot(qj, w.y)
			w.axpy(w.y, -w.alpha[j], qj)
			if j > 0 {
				w.axpy(w.y, -w.beta[j-1], w.basisVec(j-1))
			}
			// Re-deflate and fully reorthogonalize against the basis:
			// O(j·n) per step, but it is what lets a 32-vector basis
			// act like an exact Krylov space across restarts.
			w.deflate(w.y)
			for i := 0; i <= j; i++ {
				h := w.dot(w.basisVec(i), w.y)
				w.axpy(w.y, -h, w.basisVec(i))
			}
			b := w.nrm(w.y)
			w.beta[j] = b
			m = j + 1
			betaLast = b
			if b <= breakdownEps*c || j == mb-1 || matvecs >= o.MaxIters {
				break
			}
			w.scaleInto(w.basisVec(j+1), 1/b, w.y)
		}

		// Diagonalize T directly and take the largest Ritz value θ:
		// λ₂ = c − θ.
		copy(w.td[:m], w.alpha[:m])
		copy(w.te[:m], w.beta[:m])
		if m > 0 {
			w.te[m-1] = 0
		}
		z := w.tz[:m*m]
		for i := range z {
			z[i] = 0
		}
		for i := 0; i < m; i++ {
			z[i*m+i] = 1
		}
		if !tql2(w.td[:m], w.te[:m], z, m) {
			return x, fmt.Errorf("spectral: tridiagonal eigensolver failed to converge (m=%d)", m)
		}
		kmax := 0
		for k := 1; k < m; k++ {
			if w.td[k] > w.td[kmax] {
				kmax = k
			}
		}
		theta = w.td[kmax]

		// Assemble the Ritz vector x = Σ_j s_j q_j into the iterate.
		w.scaleInto(x, z[kmax], w.basisVec(0))
		for j := 1; j < m; j++ {
			w.axpy(x, z[j*m+kmax], w.basisVec(j))
		}
		w.deflate(x)
		w.normalize(x)

		resid = math.Abs(betaLast*z[(m-1)*m+kmax]) / c
		if resid <= o.Tol {
			converged = true
			break
		}
		if matvecs >= o.MaxIters {
			break
		}
		restarts++
	}

	if o.Stats != nil {
		*o.Stats = Stats{
			MatVecs: matvecs, Restarts: restarts,
			Residual: resid, Lambda2: c - theta,
			Converged: converged,
		}
	}
	if !converged {
		return x, &ErrNotConverged{Residual: resid, Tol: o.Tol, MatVecs: matvecs}
	}
	return x, nil
}

// tql2 diagonalizes a symmetric tridiagonal matrix in place with the
// implicit-shift QL algorithm (EISPACK tql2 lineage): d[0:m] holds the
// diagonal, e[0:m-1] the subdiagonal (e[m-1] must be zero), and z an
// m×m row-major matrix initialized to the identity by the caller. On
// return d holds the eigenvalues (unordered) and column k of z the
// unit eigenvector for d[k]. Returns false if any eigenvalue fails to
// converge (which does not happen for the well-scaled matrices the
// Lanczos recurrence produces). The algorithm is branch-deterministic:
// identical inputs give bit-identical outputs.
func tql2(d, e, z []float64, m int) bool {
	for l := 0; l < m; l++ {
		iter := 0
		for {
			// Find a negligible subdiagonal element.
			sm := l
			for ; sm < m-1; sm++ {
				dd := math.Abs(d[sm]) + math.Abs(d[sm+1])
				if math.Abs(e[sm])+dd == dd {
					break
				}
			}
			if sm == l {
				break
			}
			if iter == 50 {
				return false
			}
			iter++
			// Implicit shift from the leading 2×2.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[sm] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, p := 1.0, 1.0, 0.0
			i := sm - 1
			for ; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[sm] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector matrix.
				for k := 0; k < m; k++ {
					f := z[k*m+i+1]
					z[k*m+i+1] = s*z[k*m+i] + c*f
					z[k*m+i] = c*z[k*m+i] - s*f
				}
			}
			if r == 0 && i >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[sm] = 0
		}
	}
	return true
}
