package kway

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Options configures RecursiveOpts with the repository's standard run
// treatment: trace observation, cooperative run control, and workspace
// reuse for the inner bisector.
type Options struct {
	// Observer receives one level_done event per recursive split (Phase
	// "split": the subproblem's vertex/edge counts and the cut of its
	// bisection) and a final run_done with the k-way edge cut. Nil means
	// no tracing, at zero cost.
	Observer trace.Observer
	// Control is polled once per recursive split. When it fires, the
	// remaining unsplit subproblems collapse into their base parts and
	// RecursiveOpts returns the (valid, partially refined) partition
	// together with the stop sentinel; test with runctl.IsStop.
	Control *runctl.Control
	// KeepBisector uses the bisector exactly as passed. By default
	// RecursiveOpts wraps it with core.WithWorkspace so the k−1 split
	// solves share one reusable workspace — results are identical (the
	// workspace contract), only allocations change.
	KeepBisector bool
}

// RecursiveOpts is Recursive with the standard scenario treatment (see
// Options). A nil-Options call is exactly Recursive.
func RecursiveOpts(g *graph.Graph, k int, bisector core.Bisector, opts Options, r *rng.Rand) (*Partition, error) {
	if err := validateRecursive(g, k, bisector); err != nil {
		return nil, err
	}
	if !opts.KeepBisector {
		bisector = core.WithWorkspace(bisector)
	}
	p := &Partition{g: g, part: make([]int32, g.N()), k: k}
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	s := &splitRun{bisector: bisector, obs: opts.Observer, ctl: opts.Control}
	if err := s.split(g, all, k, 0, p.part, r); err != nil {
		return nil, err
	}
	if s.obs != nil {
		s.obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "kway", Index: s.splits,
			Cut: p.EdgeCut(), BestCut: p.EdgeCut(),
		})
	}
	return p, s.stopErr
}

// splitRun threads the per-run treatment through the recursion. Once the
// control fires, stopErr is set and every remaining subproblem collapses
// to its base part without invoking the bisector — the partition stays
// structurally valid, just unrefined below the stop point.
type splitRun struct {
	bisector core.Bisector
	obs      trace.Observer
	ctl      *runctl.Control
	splits   int
	stopErr  error
}
