package kway

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestRefinePairsNeverWorsens(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := rng.NewFib(seed)
		g, err := gen.BReg(240, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Recursive(g, 4, core.Random{}, r)
		if err != nil {
			t.Fatal(err)
		}
		before := p.EdgeCut()
		wsBefore := p.PartWeights()
		gain, err := RefinePairs(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		after := p.EdgeCut()
		if after != before-gain {
			t.Fatalf("seed %d: cut accounting %d -> %d with reported gain %d", seed, before, after, gain)
		}
		if after > before {
			t.Fatalf("seed %d: refinement worsened cut %d -> %d", seed, before, after)
		}
		// Weights unchanged (unit weights, balanced tolerance).
		wsAfter := p.PartWeights()
		for i := range wsBefore {
			d := wsBefore[i] - wsAfter[i]
			if d < -1 || d > 1 {
				t.Fatalf("seed %d: part %d weight drifted %d -> %d", seed, i, wsBefore[i], wsAfter[i])
			}
		}
	}
}

func TestRefinePairsImprovesRandomStart(t *testing.T) {
	// From a random 4-way partition of a grid, pairwise FM must recover a
	// large fraction of the cut.
	r := rng.NewFib(5)
	g, err := gen.Grid(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 4, core.Random{}, r)
	if err != nil {
		t.Fatal(err)
	}
	before := p.EdgeCut()
	if _, err := RefinePairs(p, 5); err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut()*2 > before {
		t.Fatalf("refinement too weak: %d -> %d", before, p.EdgeCut())
	}
}

func TestRefinePairsFixpointOnGoodPartition(t *testing.T) {
	// A partition produced by CKL-based recursion is near-locally-optimal;
	// refinement should make at most marginal changes and never break
	// validity.
	r := rng.NewFib(6)
	g, err := gen.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 4, core.Compacted{Inner: core.KL{}}, r)
	if err != nil {
		t.Fatal(err)
	}
	before := p.EdgeCut()
	gain, err := RefinePairs(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0 || p.EdgeCut() > before {
		t.Fatalf("refinement worsened: %d -> %d", before, p.EdgeCut())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePairsK1(t *testing.T) {
	r := rng.NewFib(7)
	g, err := gen.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 1, core.KL{}, r)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := RefinePairs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gain != 0 {
		t.Fatalf("k=1 refinement claims gain %d", gain)
	}
}
