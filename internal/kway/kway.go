// Package kway extends bisection to k-way partitioning by recursive
// bisection — the classical construction used by VLSI placement (and the
// reason bisection is the primitive the paper studies).
//
// Parts need not be a power of two: an uneven split into ⌈k/2⌉ and
// ⌊k/2⌋ part groups is realized by adding a phantom isolated vertex
// whose weight shifts the bisector's balance point to the required
// proportion, then discarding it.
package kway

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Partition is a k-way vertex partition.
type Partition struct {
	g    *graph.Graph
	part []int32
	k    int
}

// Graph returns the partitioned graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// K returns the number of parts.
func (p *Partition) K() int { return p.k }

// Part returns the part id of v.
func (p *Partition) Part(v int32) int32 { return p.part[v] }

// Parts returns a copy of the assignment.
func (p *Partition) Parts() []int32 { return append([]int32(nil), p.part...) }

// EdgeCut returns the total weight of edges crossing parts.
func (p *Partition) EdgeCut() int64 {
	var cut int64
	p.g.Edges(func(u, v, w int32) {
		if p.part[u] != p.part[v] {
			cut += int64(w)
		}
	})
	return cut
}

// PartWeights returns the total vertex weight of each part.
func (p *Partition) PartWeights() []int64 {
	w := make([]int64, p.k)
	for v := int32(0); int(v) < p.g.N(); v++ {
		w[p.part[v]] += int64(p.g.VertexWeight(v))
	}
	return w
}

// Imbalance returns max part weight divided by the ideal (total/k);
// 1.0 is perfect balance.
func (p *Partition) Imbalance() float64 {
	ws := p.PartWeights()
	var max int64
	for _, w := range ws {
		if w > max {
			max = w
		}
	}
	ideal := float64(p.g.TotalVertexWeight()) / float64(p.k)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Validate checks the structural invariants of the partition.
func (p *Partition) Validate() error {
	if len(p.part) != p.g.N() {
		return fmt.Errorf("kway: assignment covers %d of %d vertices", len(p.part), p.g.N())
	}
	for v, pt := range p.part {
		if pt < 0 || int(pt) >= p.k {
			return fmt.Errorf("kway: vertex %d in part %d outside [0,%d)", v, pt, p.k)
		}
	}
	return nil
}

// Recursive partitions g into k parts by recursive bisection with the
// given bisector. k must be ≥ 1; k > N(g) is an error unless the graph
// is empty. It is RecursiveOpts with zero Options: the bisector is
// wrapped with core.WithWorkspace so all splits share one workspace.
func Recursive(g *graph.Graph, k int, bisector core.Bisector, r *rng.Rand) (*Partition, error) {
	return RecursiveOpts(g, k, bisector, Options{}, r)
}

func validateRecursive(g *graph.Graph, k int, bisector core.Bisector) error {
	if k < 1 {
		return fmt.Errorf("kway: k=%d < 1", k)
	}
	if k > g.N() && g.N() > 0 {
		return fmt.Errorf("kway: k=%d exceeds %d vertices", k, g.N())
	}
	if bisector == nil {
		return fmt.Errorf("kway: nil bisector")
	}
	return nil
}

// split assigns parts [base, base+k) to the given vertices of g.
func (s *splitRun) split(g *graph.Graph, vertices []int32, k int, base int32, out []int32, r *rng.Rand) error {
	if k == 1 || s.stopErr != nil {
		for _, v := range vertices {
			out[v] = base
		}
		return nil
	}
	if err := s.ctl.Check(); err != nil {
		s.stopErr = err
		for _, v := range vertices {
			out[v] = base
		}
		return nil
	}
	kl, kr := (k+1)/2, k/2
	sub, newToOld, err := graph.Induced(g, vertices)
	if err != nil {
		return err
	}

	work := sub
	phantom := int32(-1)
	if kl != kr {
		// Proportional split kl:kr via a phantom vertex of weight
		// w = T(kl−kr)/(kl+kr): the side holding the phantom receives the
		// SMALLER real weight (T·kr/k) and therefore the kr part group.
		var t int64 = sub.TotalVertexWeight()
		w := t * int64(kl-kr) / int64(k)
		if w > 0 {
			b := graph.NewBuilder(sub.N() + 1)
			for v := int32(0); int(v) < sub.N(); v++ {
				b.SetVertexWeight(v, sub.VertexWeight(v))
				for _, e := range sub.Neighbors(v) {
					if e.To > v {
						b.AddWeightedEdge(v, e.To, e.W)
					}
				}
			}
			phantom = int32(sub.N())
			if w > 1<<30 {
				return fmt.Errorf("kway: phantom weight %d overflows", w)
			}
			b.SetVertexWeight(phantom, int32(w))
			work, err = b.Build()
			if err != nil {
				return err
			}
		}
	}

	bis, err := s.bisector.Bisect(work, r)
	if err != nil {
		return err
	}
	s.splits++
	if s.obs != nil {
		s.obs.Observe(trace.Event{
			Type: trace.TypeLevelDone, Algo: "kway", Phase: "split",
			Index: s.splits, Vertices: work.N(), Edges: work.M(),
			Cut: bis.Cut(), BestCut: bis.Cut(),
		})
	}
	// Count-preserving bisectors (KL) can leave the *weight* unbalanced
	// when the work graph carries a heavy phantom; repair to the parity
	// minimum with gain-aware moves before reading off the sides.
	partition.RepairBalance(bis, partition.MinAchievableImbalance(work.TotalVertexWeight()))
	// Determine which side maps to the left (larger) part group.
	smallSide := uint8(0)
	if phantom >= 0 {
		smallSide = bis.Side(phantom)
	} else if bis.SideWeight(1) < bis.SideWeight(0) {
		smallSide = 1
	}
	var left, right []int32
	for v := int32(0); int(v) < sub.N(); v++ {
		if bis.Side(v) == smallSide {
			right = append(right, newToOld[v]) // smaller group → kr parts
		} else {
			left = append(left, newToOld[v])
		}
	}
	// Degenerate guard: a side with too few vertices for its part count
	// steals from the other side arbitrarily (can happen on tiny or
	// pathological inputs).
	for len(left) < kl && len(right) > kr {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	for len(right) < kr && len(left) > kl {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	if err := s.split(g, left, kl, base, out, r); err != nil {
		return err
	}
	return s.split(g, right, kr, base+int32(kl), out, r)
}

// String summarizes the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("kway{k=%d cut=%d imbalance=%.3f}", p.k, p.EdgeCut(), p.Imbalance())
}
