package kway

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestDirectRefineImprovesRandomStart(t *testing.T) {
	r := rng.NewFib(3)
	g, err := gen.Grid(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 4, core.Random{}, r)
	if err != nil {
		t.Fatal(err)
	}
	before := p.EdgeCut()
	gain, err := DirectRefine(p, DirectRefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut() != before-gain {
		t.Fatalf("cut accounting: %d -> %d, gain %d", before, p.EdgeCut(), gain)
	}
	if gain <= 0 {
		t.Fatalf("no improvement over a random 4-way grid partition (cut %d)", before)
	}
	if p.Imbalance() > 1.06 {
		t.Fatalf("imbalance %.3f exceeds factor 1.05 (+slack)", p.Imbalance())
	}
}

func TestDirectRefineRespectsBalanceFactor(t *testing.T) {
	r := rng.NewFib(4)
	g, err := gen.BReg(200, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 5, core.KL{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DirectRefine(p, DirectRefineOptions{BalanceFactor: 1.02, Rounds: 10}); err != nil {
		t.Fatal(err)
	}
	ideal := float64(g.TotalVertexWeight()) / 5
	for i, w := range p.PartWeights() {
		if float64(w) > ideal*1.02+1 {
			t.Fatalf("part %d weight %d exceeds 1.02×ideal", i, w)
		}
	}
}

func TestDirectRefineFixpointAndK1(t *testing.T) {
	r := rng.NewFib(5)
	g, err := gen.Cycle(12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Recursive(g, 1, core.KL{}, r)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := DirectRefine(p, DirectRefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gain != 0 {
		t.Fatalf("k=1 refinement claims gain %d", gain)
	}
	// A well-partitioned instance: greedy refinement finds nothing.
	p2, err := Recursive(g, 2, core.Compacted{Inner: core.KL{}}, r)
	if err != nil {
		t.Fatal(err)
	}
	before := p2.EdgeCut()
	if _, err := DirectRefine(p2, DirectRefineOptions{}); err != nil {
		t.Fatal(err)
	}
	if p2.EdgeCut() > before {
		t.Fatalf("refinement worsened: %d -> %d", before, p2.EdgeCut())
	}
}

func TestDirectRefineDeterministic(t *testing.T) {
	build := func() *Partition {
		r := rng.NewFib(9)
		g, err := gen.BReg(300, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Recursive(g, 3, core.Random{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DirectRefine(p, DirectRefineOptions{}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	if a.EdgeCut() != b.EdgeCut() {
		t.Fatalf("nondeterministic refinement: %d vs %d", a.EdgeCut(), b.EdgeCut())
	}
}

func BenchmarkDirectRefine(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(2000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := Recursive(g, 8, core.Random{}, r)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := DirectRefine(p, DirectRefineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
