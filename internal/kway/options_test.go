package kway

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// TestRecursiveOptsTrace pins the scenario treatment: one level_done per
// split (k−1 of them), a final run_done carrying the k-way edge cut,
// and results identical to the untreated call.
func TestRecursiveOptsTrace(t *testing.T) {
	g, err := gen.GNP(200, 6.0/199, rng.NewFib(11))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	p, err := RecursiveOpts(g, 8, core.KL{}, Options{Observer: rec}, rng.NewFib(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	splits, runs := 0, 0
	var runCut int64
	for _, e := range rec.Events() {
		switch {
		case e.Type == trace.TypeLevelDone && e.Algo == "kway" && e.Phase == "split":
			splits++
			if e.Vertices == 0 {
				t.Fatalf("split event without vertex count: %+v", e)
			}
		case e.Type == trace.TypeRunDone && e.Algo == "kway":
			runs++
			runCut = e.Cut
		}
	}
	if splits != 7 {
		t.Fatalf("got %d split events for k=8, want 7", splits)
	}
	if runs != 1 {
		t.Fatalf("got %d run_done events, want 1", runs)
	}
	if runCut != p.EdgeCut() {
		t.Fatalf("run_done cut %d != partition cut %d", runCut, p.EdgeCut())
	}

	// The observer and the default workspace wrap must not change the
	// result: an untraced KeepBisector run lands on the same partition.
	q, err := RecursiveOpts(g, 8, core.KL{}, Options{KeepBisector: true}, rng.NewFib(13))
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeCut() != p.EdgeCut() {
		t.Fatalf("treated cut %d != untreated cut %d", p.EdgeCut(), q.EdgeCut())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if p.Part(v) != q.Part(v) {
			t.Fatalf("vertex %d: treated part %d != untreated part %d", v, p.Part(v), q.Part(v))
		}
	}
}

// TestRecursiveOptsControl exercises cooperative truncation: a budget
// of two checkpoint polls allows two splits (the third poll fires),
// then the remaining subproblems collapse into their base parts. The
// result is structurally valid and comes back with the stop sentinel.
func TestRecursiveOptsControl(t *testing.T) {
	g, err := gen.GNP(200, 6.0/199, rng.NewFib(11))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	ctl := runctl.WithBudget(2)
	p, err := RecursiveOpts(g, 8, core.KL{}, Options{Observer: rec, Control: ctl}, rng.NewFib(13))
	if !runctl.IsStop(err) {
		t.Fatalf("want stop sentinel, got %v", err)
	}
	if p == nil {
		t.Fatal("stopped run must still return the partial partition")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	splits := 0
	for _, e := range rec.Events() {
		if e.Type == trace.TypeLevelDone && e.Phase == "split" {
			splits++
		}
	}
	if splits != 2 {
		t.Fatalf("budget 2 should allow exactly 2 splits (third poll fires), got %d", splits)
	}
}
