package kway

// DirectRefine: greedy k-way boundary refinement. Where RefinePairs runs
// full FM on every touching part pair (strong but O(pairs · FM)), this
// pass sweeps boundary vertices once per round and applies every strictly
// improving, balance-respecting single move to the best target part —
// the cheap refinement loop a placement flow runs between global passes,
// with cost O(rounds · boundary · deg).

import (
	"fmt"
)

// DirectRefineOptions configures DirectRefine.
type DirectRefineOptions struct {
	// Rounds caps the sweeps (default 8; stops early at a fixpoint).
	Rounds int
	// BalanceFactor is the maximum allowed part weight as a multiple of
	// the ideal (default 1.05). Moves that would push the target part
	// above it (or are not strict cut improvements) are rejected.
	BalanceFactor float64
}

// DirectRefine improves the partition in place and returns the total cut
// improvement.
func DirectRefine(p *Partition, opts DirectRefineOptions) (int64, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 8
	}
	if opts.BalanceFactor <= 1 {
		opts.BalanceFactor = 1.05
	}
	if p.k < 2 {
		return 0, nil
	}
	g := p.g
	n := g.N()
	ideal := float64(g.TotalVertexWeight()) / float64(p.k)
	maxW := int64(ideal * opts.BalanceFactor)
	if maxW < 1 {
		maxW = 1
	}
	weights := p.PartWeights()

	// conn[t] accumulates v's edge weight toward part t; reset per vertex
	// via the touched list to stay O(deg).
	conn := make([]int64, p.k)
	touched := make([]int32, 0, 8)

	var improved int64
	for round := 0; round < opts.Rounds; round++ {
		var roundGain int64
		for v := int32(0); int(v) < n; v++ {
			own := p.part[v]
			touched = touched[:0]
			boundary := false
			for _, e := range g.Neighbors(v) {
				t := p.part[e.To]
				if conn[t] == 0 {
					touched = append(touched, t)
				}
				conn[t] += int64(e.W)
				if t != own {
					boundary = true
				}
			}
			if boundary {
				vw := int64(g.VertexWeight(v))
				bestT := int32(-1)
				var bestGain int64
				for _, t := range touched {
					if t == own {
						continue
					}
					gain := conn[t] - conn[own]
					if gain <= 0 {
						continue
					}
					if weights[t]+vw > maxW {
						continue
					}
					if gain > bestGain || (gain == bestGain && bestT >= 0 && t < bestT) {
						bestGain = gain
						bestT = t
					}
				}
				if bestT >= 0 {
					p.part[v] = bestT
					weights[own] -= vw
					weights[bestT] += vw
					roundGain += bestGain
				}
			}
			for _, t := range touched {
				conn[t] = 0
			}
		}
		improved += roundGain
		if roundGain == 0 {
			break
		}
	}
	if err := p.Validate(); err != nil {
		return improved, fmt.Errorf("kway: DirectRefine broke the partition: %v", err)
	}
	return improved, nil
}
