package kway

import (
	"sort"

	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// RefinePairs improves a k-way partition in place by running FM bisection
// refinement on every pair of parts that shares cut edges, in descending
// order of shared cut weight, for up to `rounds` sweeps over the pairs
// (default 1 when rounds ≤ 0). Pair refinement is the classical cleanup
// after recursive bisection: the recursive splits never reconsider
// early decisions, and pairwise FM recovers most of that loss.
//
// Part weights are preserved up to FM's balance tolerance (the maximum
// vertex weight within the pair). Returns the total cut improvement.
func RefinePairs(p *Partition, rounds int) (int64, error) {
	if rounds <= 0 {
		rounds = 1
	}
	var improved int64
	for round := 0; round < rounds; round++ {
		gain, err := refineOnce(p)
		if err != nil {
			return improved, err
		}
		improved += gain
		if gain == 0 {
			break
		}
	}
	return improved, nil
}

func refineOnce(p *Partition) (int64, error) {
	// Shared cut weight per part pair.
	type pairKey struct{ a, b int32 }
	shared := map[pairKey]int64{}
	p.g.Edges(func(u, v, w int32) {
		pu, pv := p.part[u], p.part[v]
		if pu == pv {
			return
		}
		if pu > pv {
			pu, pv = pv, pu
		}
		shared[pairKey{pu, pv}] += int64(w)
	})
	pairs := make([]pairKey, 0, len(shared))
	for k := range shared {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if shared[pairs[i]] != shared[pairs[j]] {
			return shared[pairs[i]] > shared[pairs[j]]
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	var improved int64
	for _, pk := range pairs {
		gain, err := refinePair(p, pk.a, pk.b)
		if err != nil {
			return improved, err
		}
		improved += gain
	}
	return improved, nil
}

// refinePair extracts the subgraph induced by parts a and b, runs FM on
// the two-part assignment, and writes back any improvement.
func refinePair(p *Partition, a, b int32) (int64, error) {
	var vertices []int32
	for v := int32(0); int(v) < p.g.N(); v++ {
		if p.part[v] == a || p.part[v] == b {
			vertices = append(vertices, v)
		}
	}
	if len(vertices) < 2 {
		return 0, nil
	}
	sub, newToOld, err := graph.Induced(p.g, vertices)
	if err != nil {
		return 0, err
	}
	side := make([]uint8, sub.N())
	for nv, ov := range newToOld {
		if p.part[ov] == b {
			side[nv] = 1
		}
	}
	bis, err := partition.New(sub, side)
	if err != nil {
		return 0, err
	}
	before := bis.Cut()
	startImb := bis.Imbalance()
	tol := startImb
	if tol == 0 {
		tol = partition.MinAchievableImbalance(sub.TotalVertexWeight())
	}
	if _, err := fm.Refine(bis, fm.Options{MaxImbalance: tol}); err != nil {
		return 0, err
	}
	// Accept only if the pair cut improved and the pair's weight split
	// did not get worse (FM guarantees the latter given the tolerance).
	gain := before - bis.Cut()
	if gain <= 0 || bis.Imbalance() > startImb && startImb > 0 {
		return 0, nil
	}
	if bis.Imbalance() > tol {
		return 0, nil
	}
	for nv, ov := range newToOld {
		if bis.Side(int32(nv)) == 0 {
			p.part[ov] = a
		} else {
			p.part[ov] = b
		}
	}
	return gain, nil
}
