package kway

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestRecursivePowerOfTwo(t *testing.T) {
	g := mustGraph(gen.Grid(8, 8))
	p, err := Recursive(g, 4, core.Compacted{Inner: core.KL{}}, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 {
		t.Fatalf("k=%d", p.K())
	}
	ws := p.PartWeights()
	for i, w := range ws {
		if w != 16 {
			t.Fatalf("part %d weight %d, want 16 (weights %v)", i, w, ws)
		}
	}
	// A 4-way split of an 8x8 grid can achieve cut 16 (two orthogonal
	// bisections of width 8); allow modest slack for heuristic noise.
	if p.EdgeCut() > 28 {
		t.Fatalf("4-way grid cut %d too high", p.EdgeCut())
	}
	if p.Imbalance() != 1.0 {
		t.Fatalf("imbalance %v", p.Imbalance())
	}
}

func TestRecursiveOddK(t *testing.T) {
	g := mustGraph(gen.Grid(9, 10)) // 90 vertices
	p, err := Recursive(g, 3, core.KL{}, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ws := p.PartWeights()
	if len(ws) != 3 {
		t.Fatalf("parts %v", ws)
	}
	total := int64(0)
	for _, w := range ws {
		total += w
	}
	if total != 90 {
		t.Fatalf("weights sum %d", total)
	}
	// Each part should be within ~20% of ideal 30.
	for i, w := range ws {
		if w < 24 || w > 36 {
			t.Fatalf("part %d weight %d far from ideal 30 (%v)", i, w, ws)
		}
	}
}

func TestRecursiveK1(t *testing.T) {
	g := mustGraph(gen.Cycle(10))
	p, err := Recursive(g, 1, core.KL{}, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut() != 0 {
		t.Fatalf("k=1 cut %d", p.EdgeCut())
	}
	for v := int32(0); v < 10; v++ {
		if p.Part(v) != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
}

func TestRecursiveKEqualsN(t *testing.T) {
	g := mustGraph(gen.Cycle(6))
	p, err := Recursive(g, 6, core.KL{}, rng.NewFib(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for v := int32(0); v < 6; v++ {
		seen[p.Part(v)]++
	}
	if len(seen) != 6 {
		t.Fatalf("expected singleton parts, got %v", seen)
	}
	if p.EdgeCut() != 6 {
		t.Fatalf("all-singleton cycle cut %d, want 6", p.EdgeCut())
	}
}

func TestRecursiveErrors(t *testing.T) {
	g := mustGraph(gen.Cycle(6))
	if _, err := Recursive(g, 0, core.KL{}, rng.NewFib(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Recursive(g, 7, core.KL{}, rng.NewFib(1)); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Recursive(g, 2, nil, rng.NewFib(1)); err == nil {
		t.Fatal("nil bisector accepted")
	}
}

func TestRecursiveDisconnected(t *testing.T) {
	g := mustGraph(gen.CycleCollection([]int{4, 4, 4}))
	p, err := Recursive(g, 3, core.Compacted{Inner: core.KL{}}, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Three equal cycles into three parts: optimal cut 0; allow the
	// heuristic a small margin.
	if p.EdgeCut() > 4 {
		t.Fatalf("3 cycles into 3 parts cut %d", p.EdgeCut())
	}
}

func TestRecursiveOnPlantedColumns(t *testing.T) {
	// 4 planted clusters joined sparsely; 4-way partition should recover
	// them (cut ≈ the 3+ linking edges).
	b := graph.NewBuilder(40)
	for c := 0; c < 4; c++ {
		off := int32(10 * c)
		for i := int32(0); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				b.AddEdge(off+i, off+j)
			}
		}
	}
	b.AddEdge(0, 10)
	b.AddEdge(10, 20)
	b.AddEdge(20, 30)
	g := b.MustBuild()
	p, err := Recursive(g, 4, core.Compacted{Inner: core.KL{}}, rng.NewFib(6))
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut() != 3 {
		t.Fatalf("planted 4-cluster cut %d, want 3", p.EdgeCut())
	}
	if p.Imbalance() != 1.0 {
		t.Fatalf("imbalance %v", p.Imbalance())
	}
}

func TestPartitionAccessors(t *testing.T) {
	g := mustGraph(gen.Cycle(8))
	p, err := Recursive(g, 2, core.KL{}, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph() != g {
		t.Fatal("wrong graph")
	}
	parts := p.Parts()
	parts[0] = 99
	if p.Part(0) == 99 {
		t.Fatal("Parts returned aliased storage")
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func TestInducedAndPermuteHelpers(t *testing.T) {
	// graph.Induced is exercised through kway; test direct edge cases here
	// too, plus algorithm invariance under relabeling.
	g := mustGraph(gen.Grid(4, 4))
	sub, m, err := graph.Induced(g, []int32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("induced row: n=%d m=%d", sub.N(), sub.M())
	}
	if m[0] != 0 || m[3] != 3 {
		t.Fatalf("mapping %v", m)
	}
	if _, _, err := graph.Induced(g, []int32{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := graph.Induced(g, []int32{99}); err == nil {
		t.Fatal("out of range accepted")
	}

	r := rng.NewFib(8)
	perm := make([]int32, g.N())
	for i, v := range r.Perm(g.N()) {
		perm[i] = int32(v)
	}
	pg, err := graph.Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if pg.N() != g.N() || pg.M() != g.M() {
		t.Fatal("permute changed size")
	}
	// Edge preserved under relabeling.
	if !pg.HasEdge(perm[0], perm[1]) {
		t.Fatal("permuted edge missing")
	}
	if _, err := graph.Permute(g, perm[:3]); err == nil {
		t.Fatal("short perm accepted")
	}
	bad := append([]int32(nil), perm...)
	bad[0] = bad[1]
	if _, err := graph.Permute(g, bad); err == nil {
		t.Fatal("non-permutation accepted")
	}

	u, err := graph.Union(g, mustGraph(gen.Cycle(3)))
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 19 || u.M() != g.M()+3 {
		t.Fatalf("union n=%d m=%d", u.N(), u.M())
	}
}

func TestKLInvariantUnderRelabeling(t *testing.T) {
	// The minimum cut value found by best-of-k KL should be statistically
	// invariant under vertex relabeling; at minimum, relabeling must not
	// change the planted optimum's discoverability. We check the weaker,
	// deterministic property: the cut of the planted partition is
	// preserved exactly under Permute.
	r := rng.NewFib(9)
	g, err := gen.BReg(100, 4, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int32, g.N())
	for i, v := range r.Perm(g.N()) {
		perm[i] = int32(v)
	}
	pg, err := graph.Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	side := make([]uint8, g.N())
	pside := make([]uint8, g.N())
	for v := 0; v < g.N(); v++ {
		s := uint8(0)
		if v >= g.N()/2 {
			s = 1
		}
		side[v] = s
		pside[perm[v]] = s
	}
	if partitionCut(g, side) != partitionCut(pg, pside) {
		t.Fatal("cut not invariant under relabeling")
	}
}

func partitionCut(g *graph.Graph, side []uint8) int64 {
	var cut int64
	g.Edges(func(u, v, w int32) {
		if side[u] != side[v] {
			cut += int64(w)
		}
	})
	return cut
}
