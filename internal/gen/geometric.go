package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Geometric samples a random geometric graph: n points uniform in the
// unit square, an edge between every pair at Euclidean distance ≤ radius.
// Geometric graphs have genuinely small balanced separators (width
// Θ(√n·radius·n) along a line cut), so unlike 𝒢np they reward good
// partitioners — a standard modern benchmark family complementing the
// paper's models.
func Geometric(n int, radius float64, r *rng.Rand) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: Geometric with negative n=%d", n)
	}
	if radius < 0 || radius > math.Sqrt2 {
		return nil, fmt.Errorf("gen: Geometric radius %v outside [0, √2]", radius)
	}
	type pt struct {
		x, y float64
		id   int32
	}
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{x: r.Float64(), y: r.Float64(), id: int32(i)}
	}
	// Grid-bucket the points at cell size = radius so each point compares
	// only against its 3×3 neighborhood: O(n + edges) in expectation.
	b := graph.NewBuilder(n)
	if radius == 0 {
		return b.Build()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]pt)
	key := func(p pt) [2]int {
		cx, cy := int(p.x*float64(cells)), int(p.y*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for _, p := range pts {
		k := key(p)
		bucket[k] = append(bucket[k], p)
	}
	r2 := radius * radius
	for k, ps := range bucket {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nk := [2]int{k[0] + dx, k[1] + dy}
				// Each unordered cell pair is visited from both sides;
				// process it only in the canonical direction (and within a
				// cell, once per point pair) so every edge is added once.
				if nk[0] < k[0] || (nk[0] == k[0] && nk[1] < k[1]) {
					continue
				}
				sameCell := nk == k
				qs, ok := bucket[nk]
				if !ok {
					continue
				}
				for _, p := range ps {
					for _, q := range qs {
						if sameCell && p.id >= q.id {
							continue
						}
						ddx, ddy := p.x-q.x, p.y-q.y
						if ddx*ddx+ddy*ddy <= r2 {
							b.AddEdge(p.id, q.id)
						}
					}
				}
			}
		}
	}
	return b.Build()
}

// GeometricRadiusForAvgDegree returns the radius giving a geometric graph
// the target expected average degree: deg ≈ n·π·r² (ignoring boundary
// effects, which depress the realized degree slightly).
func GeometricRadiusForAvgDegree(n int, avgDeg float64) (float64, error) {
	if n <= 1 || avgDeg < 0 {
		return 0, fmt.Errorf("gen: GeometricRadiusForAvgDegree(n=%d, deg=%v) infeasible", n, avgDeg)
	}
	r := math.Sqrt(avgDeg / (math.Pi * float64(n-1)))
	if r > math.Sqrt2 {
		return 0, fmt.Errorf("gen: average degree %v unreachable with %d vertices", avgDeg, n)
	}
	return r, nil
}
