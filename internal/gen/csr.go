package gen

import (
	"fmt"

	"repro/internal/graph"
)

// edgeList accumulates the unit-weight edges of a generator and builds
// the graph by direct CSR layout: one degree-count prepass, one prefix
// sum, one scatter of both half-edges, then graph.FromCSR. Every
// generator in this package emits each edge exactly once (GNP and
// TwoSet enumerate distinct index pairs, the configuration model and
// the cross matchings deduplicate), so the Builder's sort-and-merge is
// pure overhead for them — FromCSR validates the multiset is clean and
// would reject a generator that broke the distinctness contract.
type edgeList struct {
	n      int
	us, vs []int32
}

func newEdgeList(n int) *edgeList {
	return &edgeList{n: n}
}

// add records the undirected edge {u, v}. Endpoints are validated in
// build, keeping this append-only hot call branch-free.
func (l *edgeList) add(u, v int32) {
	l.us = append(l.us, u)
	l.vs = append(l.vs, v)
}

// build lays the accumulated edges out in CSR and constructs the graph.
func (l *edgeList) build() (*graph.Graph, error) {
	n := l.n
	for i := range l.us {
		u, v := l.us[i], l.vs[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("gen: edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("gen: self-loop at vertex %d", u)
		}
	}
	deg := make([]int32, n)
	for i := range l.us {
		deg[l.us[i]]++
		deg[l.vs[i]]++
	}
	off := make([]int32, n+1)
	var sum int32
	for v := 0; v < n; v++ {
		off[v] = sum
		sum += deg[v]
	}
	off[n] = sum
	// Scatter both half-edges, reusing deg as the per-row write cursor.
	cur := deg
	copy(cur, off[:n])
	edges := make([]graph.Edge, sum)
	for i := range l.us {
		u, v := l.us[i], l.vs[i]
		edges[cur[u]] = graph.Edge{To: v, W: 1}
		cur[u]++
		edges[cur[v]] = graph.Edge{To: u, W: 1}
		cur[v]++
	}
	return graph.FromCSR(off, edges, nil)
}
