package gen

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGeometricMatchesBruteForce(t *testing.T) {
	// The bucketed implementation must produce exactly the graph the
	// O(n²) definition gives. We can't recover the sampled points, so
	// instead verify structural invariants across seeds and check the
	// degree count against the expectation.
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.NewFib(seed)
		g, err := Geometric(300, 0.1, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// No duplicate-weight artifacts: every edge weight must be 1.
		ok := true
		g.Edges(func(u, v, w int32) {
			if w != 1 {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("seed %d: duplicated edge weights", seed)
		}
	}
}

func TestGeometricPointsWithinRadiusConnected(t *testing.T) {
	// Deterministic reimplementation check: regenerate the same points
	// with the same RNG consumption order and verify adjacency by brute
	// force. The generator draws 2 Float64 per point in order.
	const n = 120
	const radius = 0.15
	r1 := rng.NewFib(42)
	g, err := Geometric(n, radius, r1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.NewFib(42)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r2.Float64()
		ys[i] = r2.Float64()
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			want := dx*dx+dy*dy <= radius*radius
			got := g.HasEdge(int32(u), int32(v))
			if want != got {
				t.Fatalf("pair (%d,%d): brute force %v, generator %v", u, v, want, got)
			}
		}
	}
}

func TestGeometricExtremes(t *testing.T) {
	r := rng.NewFib(1)
	g0, err := Geometric(50, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if g0.M() != 0 {
		t.Fatalf("radius 0 produced %d edges", g0.M())
	}
	gAll, err := Geometric(30, math.Sqrt2, r)
	if err != nil {
		t.Fatal(err)
	}
	if gAll.M() != 30*29/2 {
		t.Fatalf("radius √2 produced %d edges, want complete graph", gAll.M())
	}
	if _, err := Geometric(-1, 0.1, r); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Geometric(10, 2, r); err == nil {
		t.Fatal("radius > √2 accepted")
	}
}

func TestGeometricRadiusForAvgDegree(t *testing.T) {
	const n = 2000
	const want = 6.0
	rad, err := GeometricRadiusForAvgDegree(n, want)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	r := rng.NewFib(9)
	const samples = 5
	for i := 0; i < samples; i++ {
		g, err := Geometric(n, rad, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += g.AvgDegree()
	}
	got := sum / samples
	// Boundary effects depress the degree ~10%; accept a wide band.
	if got < want*0.75 || got > want*1.1 {
		t.Fatalf("avg degree %.2f for target %.1f", got, want)
	}
	if _, err := GeometricRadiusForAvgDegree(1, 3); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := GeometricRadiusForAvgDegree(4, 1e9); err == nil {
		t.Fatal("absurd degree accepted")
	}
}

func TestGeometricDeterministic(t *testing.T) {
	a, err := Geometric(200, 0.08, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Geometric(200, 0.08, rng.NewFib(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed: %d vs %d edges", a.M(), b.M())
	}
	same := true
	a.Edges(func(u, v, w int32) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Fatal("same seed produced different graphs")
	}
}
