package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// StreamGNP enumerates the edges of 𝒢np(n, p) in pair-index order,
// calling emit(u, v) once per edge with u < v, without materializing
// the graph — O(1) working memory regardless of n. It consumes r
// exactly as GNP does, so two passes over fresh sources seeded alike
// visit the identical edge set: one pass to count (for a format header
// that needs m up front), one to write. Returns the number of edges
// emitted.
func StreamGNP(n int, p float64, r *rng.Rand, emit func(u, v int32) error) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("gen: GNP with negative n=%d", n)
	}
	if n > graph.MaxVertices {
		return 0, fmt.Errorf("gen: GNP with n=%d exceeds vertex limit %d", n, graph.MaxVertices)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("gen: GNP with p=%v outside [0,1]", p)
	}
	var m int64
	var err error
	if p > 0 {
		total := int64(n) * int64(n-1) / 2
		forEachSkippedIndex(total, p, r, func(k int64) {
			if err != nil {
				return
			}
			u, v := pairFromIndex(k)
			if e := emit(int32(u), int32(v)); e != nil {
				err = e
				return
			}
			m++
		})
	}
	if err != nil {
		return 0, err
	}
	return m, nil
}
