package gen

// Deterministic special graph families. The paper tests grid graphs,
// ladder graphs (its known KL-adversarial example), and complete binary
// trees; cycle collections arise as the degree-2 case of 𝒢breg that
// Section VI discusses. The remaining families (path, torus, hypercube,
// caterpillar, complete bipartite) are standard topologies used in tests,
// examples, and ablations.

import (
	"fmt"

	"repro/internal/graph"
)

// Path returns the path graph on n vertices: 0−1−…−(n−1).
func Path(n int) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: Path with negative n=%d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle on n ≥ 3 vertices.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Cycle needs n ≥ 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// CycleCollection returns the disjoint union of cycles with the given
// sizes (each ≥ 3). Under 𝒢breg these are exactly the degree-2 graphs the
// paper notes must be "a collection of chordless cycles".
func CycleCollection(sizes []int) (*graph.Graph, error) {
	total := 0
	for _, s := range sizes {
		if s < 3 {
			return nil, fmt.Errorf("gen: CycleCollection with cycle size %d < 3", s)
		}
		total += s
	}
	b := graph.NewBuilder(total)
	off := 0
	for _, s := range sizes {
		for i := 0; i < s; i++ {
			b.AddEdge(int32(off+i), int32(off+(i+1)%s))
		}
		off += s
	}
	return b.Build()
}

// Ladder returns the 2×k ladder graph: two rails of k vertices joined by
// k rungs. Vertex 2i is rail-A position i; vertex 2i+1 is rail-B position
// i. This is the classical graph on which plain Kernighan–Lin "fails
// badly" (its optimal bisection cuts just 2 rail edges, but KL's pairwise
// swaps cannot discover the contiguous-half structure from a random
// start).
func Ladder(k int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: Ladder needs k ≥ 1, got %d", k)
	}
	b := graph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		b.AddEdge(int32(2*i), int32(2*i+1)) // rung
		if i+1 < k {
			b.AddEdge(int32(2*i), int32(2*(i+1)))     // rail A
			b.AddEdge(int32(2*i+1), int32(2*(i+1)+1)) // rail B
		}
	}
	return b.Build()
}

// Ladder3N returns the paper's "ladder graph with 3N nodes": a 2×N ladder
// whose every rung carries a midpoint vertex (rung a_i—b_i becomes
// a_i—m_i—b_i). Vertices: a_i = 3i, b_i = 3i+1, m_i = 3i+2. The topology
// remains a constant-width ladder, with average degree 8/3 − o(1), and its
// bisection width is 2 for N ≥ 2 (cut both rails at the midpoint).
func Ladder3N(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: Ladder3N needs N ≥ 1, got %d", n)
	}
	b := graph.NewBuilder(3 * n)
	for i := 0; i < n; i++ {
		a, bb, m := int32(3*i), int32(3*i+1), int32(3*i+2)
		b.AddEdge(a, m)
		b.AddEdge(m, bb)
		if i+1 < n {
			b.AddEdge(a, int32(3*(i+1)))
			b.AddEdge(bb, int32(3*(i+1)+1))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph. Vertex (r,c) has index r*cols+c.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("gen: Grid with negative dimension %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols {
				b.AddEdge(v, v+1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+int32(cols))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (grid with wrap-around edges).
// Requires rows, cols ≥ 3 so no wrap edge duplicates a grid edge.
func Torus(rows, cols int) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("gen: Torus needs dimensions ≥ 3, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			right := int32(r*cols + (c+1)%cols)
			down := int32(((r+1)%rows)*cols + c)
			b.AddEdge(v, right)
			b.AddEdge(v, down)
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the binary tree on n vertices in heap layout:
// vertex i has children 2i+1 and 2i+2 (when < n) and parent (i−1)/2.
func CompleteBinaryTree(n int) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: CompleteBinaryTree with negative n=%d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i), int32((i-1)/2))
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) (*graph.Graph, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("gen: Hypercube dimension %d outside [0,20]", dim)
	}
	n := 1 << dim
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(int32(v), int32(u))
			}
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b}: sides {0..a−1} and {a..a+b−1}.
func CompleteBipartite(a, bn int) (*graph.Graph, error) {
	if a < 0 || bn < 0 {
		return nil, fmt.Errorf("gen: CompleteBipartite with negative side (%d,%d)", a, bn)
	}
	b := graph.NewBuilder(a + bn)
	for i := 0; i < a; i++ {
		for j := 0; j < bn; j++ {
			b.AddEdge(int32(i), int32(a+j))
		}
	}
	return b.Build()
}

// Caterpillar returns a caterpillar tree: a spine path of spine vertices,
// each carrying legs pendant vertices. Total vertices: spine*(1+legs).
func Caterpillar(spine, legs int) (*graph.Graph, error) {
	if spine < 1 || legs < 0 {
		return nil, fmt.Errorf("gen: Caterpillar(spine=%d, legs=%d) infeasible", spine, legs)
	}
	n := spine * (1 + legs)
	b := graph.NewBuilder(n)
	for i := 0; i < spine; i++ {
		if i+1 < spine {
			b.AddEdge(int32(i), int32(i+1))
		}
		for l := 0; l < legs; l++ {
			b.AddEdge(int32(i), int32(spine+i*legs+l))
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: Complete with negative n=%d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}
