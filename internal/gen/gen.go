// Package gen constructs the graph families used in the paper's
// evaluation:
//
//   - GNP: the Erdős–Rényi model 𝒢np(2n, p) — every edge present
//     independently with probability p;
//   - TwoSet: the planted-bisection model 𝒢2set(2n, pA, pB, bis) — two
//     halves with internal densities pA and pB and exactly bis random
//     cross edges, so bis upper-bounds the bisection width;
//   - BReg: the model 𝒢breg(2n, b, d) of [BCLS87] — d-regular graphs with
//     planted bisection width b, built from two near-regular halves joined
//     by a perfect matching on b+b deficient vertices;
//
// together with the special graphs of Section VI (ladder, grid, complete
// binary tree, cycle collections) and a few additional standard topologies
// used in tests and examples.
//
// All random generators are deterministic functions of the supplied
// *rng.Rand.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// GNP samples 𝒢np(n, p): a simple graph on n vertices where each of the
// C(n,2) possible edges is present independently with probability p.
// Sampling uses geometric skipping, so the cost is proportional to the
// number of edges generated rather than to n².
func GNP(n int, p float64, r *rng.Rand) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: GNP with negative n=%d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: GNP with p=%v outside [0,1]", p)
	}
	b := newEdgeList(n)
	if p > 0 {
		total := int64(n) * int64(n-1) / 2
		forEachSkippedIndex(total, p, r, func(k int64) {
			u, v := pairFromIndex(k)
			b.add(int32(u), int32(v))
		})
	}
	return b.build()
}

// pairFromIndex maps a linear index k in [0, C(n,2)) to the k-th pair
// (u,v) with u < v, ordering pairs by v then u: index(v) block starts at
// C(v,2).
func pairFromIndex(k int64) (u, v int64) {
	// Find v such that C(v,2) <= k < C(v+1,2).
	v = int64((1 + math.Sqrt(1+8*float64(k))) / 2)
	for v*(v-1)/2 > k {
		v--
	}
	for (v+1)*v/2 <= k {
		v++
	}
	u = k - v*(v-1)/2
	return u, v
}

// forEachSkippedIndex visits each index in [0, total) independently with
// probability p, using geometric gap sampling.
func forEachSkippedIndex(total int64, p float64, r *rng.Rand, fn func(int64)) {
	if p >= 1 {
		for k := int64(0); k < total; k++ {
			fn(k)
		}
		return
	}
	logq := math.Log1p(-p)
	k := int64(-1)
	for {
		// Geometric(p) gap: floor(log(U)/log(1-p)) + 1.
		u := r.Float64()
		if u == 0 {
			u = 0.5
		}
		gap := int64(math.Log(u)/logq) + 1
		k += gap
		if k >= total {
			return
		}
		fn(k)
	}
}

// TwoSet samples 𝒢2set(2n, pA, pB, bis): vertices 0..n-1 form side A,
// n..2n-1 form side B; internal edges of A (resp. B) appear independently
// with probability pA (resp. pB); exactly bis distinct cross edges are
// placed uniformly at random. The planted bisection (A, B) therefore has
// cut exactly bis, which upper-bounds the bisection width.
func TwoSet(twoN int, pA, pB float64, bis int, r *rng.Rand) (*graph.Graph, error) {
	if twoN < 0 || twoN%2 != 0 {
		return nil, fmt.Errorf("gen: TwoSet needs an even non-negative vertex count, got %d", twoN)
	}
	if pA < 0 || pA > 1 || pB < 0 || pB > 1 {
		return nil, fmt.Errorf("gen: TwoSet with probabilities (%v,%v) outside [0,1]", pA, pB)
	}
	n := twoN / 2
	if bis < 0 || int64(bis) > int64(n)*int64(n) {
		return nil, fmt.Errorf("gen: TwoSet with bis=%d outside [0, n²=%d]", bis, int64(n)*int64(n))
	}
	b := newEdgeList(twoN)
	half := int64(n) * int64(n-1) / 2
	if pA > 0 {
		forEachSkippedIndex(half, pA, r, func(k int64) {
			u, v := pairFromIndex(k)
			b.add(int32(u), int32(v))
		})
	}
	if pB > 0 {
		forEachSkippedIndex(half, pB, r, func(k int64) {
			u, v := pairFromIndex(k)
			b.add(int32(u)+int32(n), int32(v)+int32(n))
		})
	}
	// Exactly bis distinct cross pairs, sampled uniformly without
	// replacement. bis is far below n² in every experiment, so rejection
	// sampling terminates quickly; a map records used pairs.
	used := make(map[int64]struct{}, bis)
	for len(used) < bis {
		a := int64(r.Intn(n))
		c := int64(r.Intn(n))
		key := a*int64(n) + c
		if _, dup := used[key]; dup {
			continue
		}
		used[key] = struct{}{}
		b.add(int32(a), int32(c)+int32(n))
	}
	return b.build()
}

// TwoSetForAvgDegree returns the internal edge probability that makes a
// TwoSet(2n, p, p, bis) graph have expected average degree avgDeg. The
// paper's 𝒢2set tables are parameterized by average degree (2.5–4); this
// helper converts that to pA = pB.
func TwoSetForAvgDegree(twoN int, avgDeg float64, bis int) (float64, error) {
	n := twoN / 2
	if twoN <= 2 {
		return 0, fmt.Errorf("gen: TwoSetForAvgDegree needs at least 4 vertices, got %d", twoN)
	}
	// Expected edges: 2 * p * C(n,2) + bis = avgDeg * 2n / 2.
	want := avgDeg*float64(n) - float64(bis)
	if want < 0 {
		return 0, fmt.Errorf("gen: avg degree %v unreachable: bis=%d alone exceeds it", avgDeg, bis)
	}
	pairs := float64(n) * float64(n-1) // = 2*C(n,2)
	p := want / pairs
	if p > 1 {
		return 0, fmt.Errorf("gen: avg degree %v unreachable with %d vertices", avgDeg, twoN)
	}
	return p, nil
}

// BReg samples 𝒢breg(2n, b, d): a d-regular graph on 2n vertices with a
// planted bisection of width b. Each half is a near-regular graph in
// which b randomly chosen vertices have internal degree d-1 and the rest
// degree d (configuration model, resampled until simple); the two groups
// of deficient vertices are then joined by a random perfect matching of b
// cross edges. The planted (A,B) cut is exactly b.
//
// Feasibility requires 0 <= b <= n, d < n, and n·d − b even (so each
// half's internal degree sum is even).
func BReg(twoN, b, d int, r *rng.Rand) (*graph.Graph, error) {
	if twoN < 0 || twoN%2 != 0 {
		return nil, fmt.Errorf("gen: BReg needs an even vertex count, got %d", twoN)
	}
	n := twoN / 2
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: BReg degree d=%d outside [0, n=%d)", d, n)
	}
	if b < 0 || b > n {
		return nil, fmt.Errorf("gen: BReg width b=%d outside [0, n=%d]", b, n)
	}
	if (n*d-b)%2 != 0 {
		return nil, fmt.Errorf("gen: BReg infeasible: n·d−b = %d·%d−%d is odd", n, d, b)
	}
	if b > 0 && d == 0 {
		return nil, fmt.Errorf("gen: BReg with b=%d but d=0", b)
	}
	gb := newEdgeList(twoN)

	// For each half: choose b deficient vertices, give them internal
	// degree d-1, everyone else d; realize with the configuration model.
	deficientA, err := halfBReg(gb, 0, n, b, d, r)
	if err != nil {
		return nil, err
	}
	deficientB, err := halfBReg(gb, int32(n), n, b, d, r)
	if err != nil {
		return nil, err
	}
	// Random perfect matching between the deficient sets.
	r.ShuffleInt32(deficientB)
	for i := range deficientA {
		gb.add(deficientA[i], deficientB[i])
	}
	return gb.build()
}

// halfBReg adds a near-regular graph on vertices [off, off+n) to gb: b
// random vertices get internal degree d-1, the others d. It returns the
// deficient vertices.
func halfBReg(gb *edgeList, off int32, n, b, d int, r *rng.Rand) ([]int32, error) {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = d
	}
	perm := r.Perm(n)
	deficient := make([]int32, b)
	for i := 0; i < b; i++ {
		deg[perm[i]]--
		deficient[i] = off + int32(perm[i])
	}
	edges, err := configurationModel(deg, r)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		gb.add(off+e[0], off+e[1])
	}
	return deficient, nil
}

// maxConfigAttempts bounds the rejection loop of the configuration model.
// For bounded degree d the acceptance probability is a constant
// (≈ exp(−(d²−1)/4 − (d−1)/2)), so this is astronomically more than
// enough; it exists to turn pathological inputs into errors rather than
// hangs.
const maxConfigAttempts = 10000

// configurationModel samples a uniform simple graph with the given degree
// sequence via the pairing model with whole-sample rejection: each vertex
// contributes deg[v] stubs, stubs are paired by a uniform random perfect
// matching, and the sample is rejected if it contains a self-loop or a
// parallel edge. Rejection keeps the distribution uniform over simple
// realizations.
func configurationModel(deg []int, r *rng.Rand) ([][2]int32, error) {
	total := 0
	for v, d := range deg {
		if d < 0 {
			return nil, fmt.Errorf("gen: negative degree %d at vertex %d", d, v)
		}
		if d >= len(deg) {
			return nil, fmt.Errorf("gen: degree %d at vertex %d too large for %d vertices", d, v, len(deg))
		}
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("gen: odd degree sum %d", total)
	}
	if total == 0 {
		return nil, nil
	}
	stubs := make([]int32, total)
	edges := make([][2]int32, 0, total/2)

attempts:
	for attempt := 0; attempt < maxConfigAttempts; attempt++ {
		stubs = stubs[:0]
		for v, d := range deg {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		r.ShuffleInt32(stubs)
		edges = edges[:0]
		seen := make(map[int64]struct{}, total/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				continue attempts
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := int64(a)<<32 | int64(b)
			if _, dup := seen[key]; dup {
				continue attempts
			}
			seen[key] = struct{}{}
			edges = append(edges, [2]int32{u, v})
		}
		out := make([][2]int32, len(edges))
		copy(out, edges)
		return out, nil
	}
	return nil, fmt.Errorf("gen: configuration model failed to produce a simple graph after %d attempts", maxConfigAttempts)
}

// RandomRegular samples a uniform simple d-regular graph on n vertices
// (configuration model with rejection). Requires n·d even and d < n.
func RandomRegular(n, d int, r *rng.Rand) (*graph.Graph, error) {
	if n < 0 || d < 0 || d >= n && n > 0 {
		return nil, fmt.Errorf("gen: RandomRegular(n=%d, d=%d) infeasible", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular(n=%d, d=%d) has odd degree sum", n, d)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = d
	}
	edges, err := configurationModel(deg, r)
	if err != nil {
		return nil, err
	}
	b := newEdgeList(n)
	for _, e := range edges {
		b.add(e[0], e[1])
	}
	return b.build()
}
