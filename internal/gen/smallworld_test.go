package gen

import (
	"testing"

	"repro/internal/rng"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: exact ring lattice, k-regular, n·k/2 edges.
	g, err := WattsStrogatz(40, 4, 0, rng.NewFib(1))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(4) {
		t.Fatalf("beta=0 lattice not 4-regular: %v", g.DegreeHistogram())
	}
	if g.M() != 80 {
		t.Fatalf("m=%d, want 80", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("lattice disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzRewiring(t *testing.T) {
	// beta = 0.5: edge count preserved (rewiring moves, never deletes,
	// except for the rare 32-attempt failure), structure randomized.
	g, err := WattsStrogatz(200, 6, 0.5, rng.NewFib(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() < 590 || g.M() > 600 {
		t.Fatalf("m=%d, want ~600", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Some lattice edges must have been rewired.
	latticeEdges := 0
	g.Edges(func(u, v, _ int32) {
		d := int(v - u)
		if d > 100 {
			d = 200 - d
		}
		if d <= 3 {
			latticeEdges++
		}
	})
	if latticeEdges == g.M() {
		t.Fatal("beta=0.5 rewired nothing")
	}
}

func TestWattsStrogatzShortcutsRaiseCut(t *testing.T) {
	// The small-world effect on bisection: a few shortcuts raise the
	// (heuristically found) bisection width far above the lattice's.
	// Structural proxy: mean BFS eccentricity collapses.
	lattice, err := WattsStrogatz(400, 4, 0, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	small, err := WattsStrogatz(400, 4, 0.2, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	if small.Eccentricity(0) >= lattice.Eccentricity(0) {
		t.Fatalf("shortcuts did not shrink eccentricity: %d vs %d",
			small.Eccentricity(0), lattice.Eccentricity(0))
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := WattsStrogatz(2, 2, 0, r); err == nil {
		t.Fatal("n<3 accepted")
	}
	if _, err := WattsStrogatz(10, 3, 0, r); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := WattsStrogatz(10, 10, 0, r); err == nil {
		t.Fatal("k>=n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, r); err == nil {
		t.Fatal("beta>1 accepted")
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a, err := WattsStrogatz(100, 4, 0.3, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := WattsStrogatz(100, 4, 0.3, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed: %d vs %d edges", a.M(), b.M())
	}
	same := true
	a.Edges(func(u, v, _ int32) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Fatal("same seed produced different graphs")
	}
}
