package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// WattsStrogatz samples a small-world graph: a ring lattice on n vertices
// where each vertex connects to its k nearest neighbors (k even), with
// each edge's far endpoint rewired to a uniform random vertex with
// probability beta. beta = 0 is the pure lattice (large bisection-width
// structure like a cycle), beta = 1 approaches a random graph; in between
// the family interpolates between the paper's structured and random
// models — shortcut edges are exactly what defeats locality-based
// heuristics.
func WattsStrogatz(n, k int, beta float64, r *rng.Rand) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs n ≥ 3, got %d", n)
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz degree k=%d must be even in [2, n)", k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz beta %v outside [0,1]", beta)
	}
	// Edge set as a map for O(1) duplicate checks during rewiring.
	type ekey struct{ u, v int32 }
	mk := func(u, v int32) ekey {
		if u > v {
			u, v = v, u
		}
		return ekey{u, v}
	}
	edges := make(map[ekey]struct{}, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			edges[mk(int32(v), int32((v+j)%n))] = struct{}{}
		}
	}
	// Rewire: visit the lattice edges in canonical order (deterministic).
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := int32(v)
			w := int32((v + j) % n)
			key := mk(u, w)
			if _, alive := edges[key]; !alive {
				continue // already rewired away by an earlier step
			}
			if r.Float64() >= beta {
				continue
			}
			// Try a few times to find a non-degenerate target.
			for attempt := 0; attempt < 32; attempt++ {
				t := int32(r.Intn(n))
				if t == u {
					continue
				}
				nk := mk(u, t)
				if _, dup := edges[nk]; dup {
					continue
				}
				delete(edges, key)
				edges[nk] = struct{}{}
				break
			}
		}
	}
	b := graph.NewBuilder(n)
	for e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build()
}
