package gen

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

// TestStreamGNPMatchesGNP pins the streaming enumerator to the
// materializing generator: same seed, same edge set, and the two-pass
// protocol (count with one source, write with a fresh one) agrees with
// itself.
func TestStreamGNPMatchesGNP(t *testing.T) {
	const n, p, seed = 500, 0.01, 7
	g, err := GNP(n, p, rng.NewFib(seed))
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int32]bool{}
	g.Edges(func(u, v, w int32) { want[[2]int32{u, v}] = true })

	got := map[[2]int32]bool{}
	m, err := StreamGNP(n, p, rng.NewFib(seed), func(u, v int32) error {
		if u >= v {
			t.Fatalf("edge {%d,%d} not emitted with u < v", u, v)
		}
		got[[2]int32{u, v}] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(m) != len(got) || len(got) != len(want) {
		t.Fatalf("stream emitted %d edges (%d distinct), GNP has %d", m, len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("edge {%d,%d} missing from stream", e[0], e[1])
		}
	}

	// Count-only pass over a fresh source sees the same m.
	m2, err := StreamGNP(n, p, rng.NewFib(seed), func(u, v int32) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatalf("count pass saw %d edges, write pass %d", m2, m)
	}
}

// TestStreamGNPPropagatesEmitError checks the enumerator stops counting
// and surfaces the sink's error.
func TestStreamGNPPropagatesEmitError(t *testing.T) {
	sink := errors.New("sink full")
	if _, err := StreamGNP(200, 0.1, rng.NewFib(1), func(u, v int32) error { return sink }); !errors.Is(err, sink) {
		t.Fatalf("got %v, want sink error", err)
	}
	if _, err := StreamGNP(-1, 0.5, rng.NewFib(1), nil); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := StreamGNP(10, 1.5, rng.NewFib(1), nil); err == nil {
		t.Fatal("p > 1 accepted")
	}
}
