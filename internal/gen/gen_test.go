package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPairFromIndexBijection(t *testing.T) {
	// For n = 12 the indices 0..C(12,2)-1 must enumerate each pair u<v
	// exactly once.
	const n = 12
	total := int64(n * (n - 1) / 2)
	seen := make(map[[2]int64]bool)
	for k := int64(0); k < total; k++ {
		u, v := pairFromIndex(k)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("index %d -> invalid pair (%d,%d)", k, u, v)
		}
		p := [2]int64{u, v}
		if seen[p] {
			t.Fatalf("index %d -> duplicate pair (%d,%d)", k, u, v)
		}
		seen[p] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("enumerated %d pairs, want %d", len(seen), total)
	}
}

func TestGNPExtremes(t *testing.T) {
	r := rng.NewFib(1)
	g0, err := GNP(50, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if g0.M() != 0 {
		t.Fatalf("GNP(50,0) has %d edges", g0.M())
	}
	g1, err := GNP(20, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != 190 {
		t.Fatalf("GNP(20,1) has %d edges, want 190", g1.M())
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGNPEdgeCountNearExpectation(t *testing.T) {
	r := rng.NewFib(7)
	const n = 1000
	const p = 0.01
	g, err := GNP(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(expected * (1 - p))
	if diff := math.Abs(float64(g.M()) - expected); diff > 6*sd {
		t.Fatalf("GNP edge count %d is %.1f sd from expectation %.0f", g.M(), diff/sd, expected)
	}
}

func TestGNPDeterministic(t *testing.T) {
	a, _ := GNP(100, 0.05, rng.NewFib(3))
	b, _ := GNP(100, 0.05, rng.NewFib(3))
	if a.M() != b.M() {
		t.Fatalf("same seed produced %d vs %d edges", a.M(), b.M())
	}
	equal := true
	a.Edges(func(u, v, w int32) {
		if !b.HasEdge(u, v) {
			equal = false
		}
	})
	if !equal {
		t.Fatal("same seed produced different edge sets")
	}
}

func TestGNPErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := GNP(-1, 0.5, r); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := GNP(10, -0.1, r); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := GNP(10, 1.1, r); err == nil {
		t.Fatal("p>1 accepted")
	}
}

// plantedCut returns the weight of the cut between vertices [0,n) and
// [n,2n).
func plantedCut(g *graph.Graph) int64 {
	n := int32(g.N() / 2)
	var cut int64
	g.Edges(func(u, v, w int32) {
		if (u < n) != (v < n) {
			cut += int64(w)
		}
	})
	return cut
}

func TestTwoSetPlantedCut(t *testing.T) {
	r := rng.NewFib(11)
	for _, bis := range []int{0, 1, 16, 100} {
		g, err := TwoSet(400, 0.01, 0.01, bis, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := plantedCut(g); got != int64(bis) {
			t.Fatalf("bis=%d: planted cut %d", bis, got)
		}
	}
}

func TestTwoSetErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := TwoSet(7, 0.1, 0.1, 0, r); err == nil {
		t.Fatal("odd vertex count accepted")
	}
	if _, err := TwoSet(10, -0.1, 0.1, 0, r); err == nil {
		t.Fatal("negative pA accepted")
	}
	if _, err := TwoSet(10, 0.1, 2, 0, r); err == nil {
		t.Fatal("pB>1 accepted")
	}
	if _, err := TwoSet(10, 0.1, 0.1, 26, r); err == nil {
		t.Fatal("bis>n² accepted")
	}
	if _, err := TwoSet(10, 0.1, 0.1, -1, r); err == nil {
		t.Fatal("negative bis accepted")
	}
}

func TestTwoSetForAvgDegree(t *testing.T) {
	const twoN = 2000
	const bis = 32
	const want = 3.0
	p, err := TwoSetForAvgDegree(twoN, want, bis)
	if err != nil {
		t.Fatal(err)
	}
	// Average the measured degree over a few samples.
	sum := 0.0
	const samples = 5
	r := rng.NewFib(5)
	for i := 0; i < samples; i++ {
		g, err := TwoSet(twoN, p, p, bis, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += g.AvgDegree()
	}
	if got := sum / samples; math.Abs(got-want) > 0.15 {
		t.Fatalf("avg degree %.3f, want ~%.1f", got, want)
	}
}

func TestTwoSetForAvgDegreeErrors(t *testing.T) {
	if _, err := TwoSetForAvgDegree(2, 3, 0); err == nil {
		t.Fatal("tiny graph accepted")
	}
	if _, err := TwoSetForAvgDegree(100, 0.1, 1000); err == nil {
		t.Fatal("bis exceeding degree budget accepted")
	}
	if _, err := TwoSetForAvgDegree(4, 10, 0); err == nil {
		t.Fatal("unreachable degree accepted")
	}
}

func TestBRegIsRegularWithPlantedCut(t *testing.T) {
	r := rng.NewFib(21)
	cases := []struct{ twoN, b, d int }{
		{200, 4, 3},
		{200, 8, 4},
		{500, 10, 3}, // n=250, n*d-b = 740 even
		{100, 2, 4},
		{60, 0, 4},
	}
	for _, tc := range cases {
		g, err := BReg(tc.twoN, tc.b, tc.d, r)
		if err != nil {
			t.Fatalf("BReg(%d,%d,%d): %v", tc.twoN, tc.b, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular(tc.d) {
			t.Fatalf("BReg(%d,%d,%d) not %d-regular; histogram %v", tc.twoN, tc.b, tc.d, tc.d, g.DegreeHistogram())
		}
		if got := plantedCut(g); got != int64(tc.b) {
			t.Fatalf("BReg(%d,%d,%d): planted cut %d", tc.twoN, tc.b, tc.d, got)
		}
	}
}

func TestBRegDegreeTwoIsCycles(t *testing.T) {
	// The paper notes degree-2 𝒢breg graphs are collections of chordless
	// cycles (here: plus the planted cross matching, so every vertex still
	// has degree exactly 2).
	r := rng.NewFib(4)
	g, err := BReg(100, 2, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(2) {
		t.Fatal("degree-2 BReg is not 2-regular")
	}
}

func TestBRegErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := BReg(11, 2, 3, r); err == nil {
		t.Fatal("odd vertex count accepted")
	}
	if _, err := BReg(20, 2, 10, r); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := BReg(20, 11, 3, r); err == nil {
		t.Fatal("b > n accepted")
	}
	if _, err := BReg(20, -1, 3, r); err == nil {
		t.Fatal("negative b accepted")
	}
	// Parity violation: n=10, d=3, b=1 -> n*d-b = 29 odd.
	if _, err := BReg(20, 1, 3, r); err == nil {
		t.Fatal("odd parity accepted")
	}
	if _, err := BReg(20, 2, 0, r); err == nil {
		t.Fatal("b>0 with d=0 accepted")
	}
}

func TestBRegDeterministic(t *testing.T) {
	a, err := BReg(200, 4, 3, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BReg(200, 4, 3, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	a.Edges(func(u, v, w int32) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same || a.M() != b.M() {
		t.Fatal("same seed produced different BReg graphs")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.NewFib(31)
	for _, tc := range []struct{ n, d int }{{50, 3}, {51, 4}, {100, 5}, {10, 0}} {
		if tc.n*tc.d%2 != 0 {
			continue
		}
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if !g.IsRegular(tc.d) {
			t.Fatalf("RandomRegular(%d,%d) not regular", tc.n, tc.d)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd degree sum accepted")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestConfigurationModelErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := configurationModel([]int{-1, 1}, r); err == nil {
		t.Fatal("negative degree accepted")
	}
	if _, err := configurationModel([]int{3, 1}, r); err == nil {
		t.Fatal("degree >= n accepted")
	}
	if _, err := configurationModel([]int{1, 1, 1}, r); err == nil {
		t.Fatal("odd sum accepted")
	}
	edges, err := configurationModel([]int{0, 0}, r)
	if err != nil || len(edges) != 0 {
		t.Fatalf("zero-degree case: %v, %v", edges, err)
	}
}

func TestPathAndCycle(t *testing.T) {
	p, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 5 || p.M() != 4 || !p.IsConnected() {
		t.Fatalf("Path(5): n=%d m=%d", p.N(), p.M())
	}
	c, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 6 || c.M() != 6 || !c.IsRegular(2) {
		t.Fatalf("Cycle(6): n=%d m=%d", c.N(), c.M())
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) accepted")
	}
	if _, err := Path(-1); err == nil {
		t.Fatal("Path(-1) accepted")
	}
}

func TestCycleCollection(t *testing.T) {
	g, err := CycleCollection([]int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || g.M() != 12 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsRegular(2) {
		t.Fatal("cycle collection not 2-regular")
	}
	sizes := g.ComponentSizes()
	if len(sizes) != 3 {
		t.Fatalf("components: %v", sizes)
	}
	if _, err := CycleCollection([]int{2}); err == nil {
		t.Fatal("2-cycle accepted")
	}
}

func TestLadderShape(t *testing.T) {
	// This is the structural check for Figure 3 (the ladder example).
	g, err := Ladder(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 10+2*9 {
		t.Fatalf("Ladder(10): n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("ladder disconnected")
	}
	// Corner vertices have degree 2, interior rail vertices degree 3.
	h := g.DegreeHistogram()
	if h[2] != 4 || h[3] != 16 {
		t.Fatalf("ladder degree histogram %v", h)
	}
	if _, err := Ladder(0); err == nil {
		t.Fatal("Ladder(0) accepted")
	}
}

func TestLadder3N(t *testing.T) {
	g, err := Ladder3N(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 {
		t.Fatalf("Ladder3N(10): n=%d", g.N())
	}
	// Edges: 2 per rung (a-m, m-b) ×10 + 2 rails ×9.
	if g.M() != 20+18 {
		t.Fatalf("Ladder3N(10): m=%d", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("Ladder3N disconnected")
	}
	// Midpoints all have degree 2.
	for i := 0; i < 10; i++ {
		if d := g.Degree(int32(3*i + 2)); d != 2 {
			t.Fatalf("midpoint %d has degree %d", i, d)
		}
	}
	if _, err := Ladder3N(0); err == nil {
		t.Fatal("Ladder3N(0) accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 {
		t.Fatalf("n=%d", g.N())
	}
	// Edges: 4*5 horizontal + 3*6 vertical = 38.
	if g.M() != 38 {
		t.Fatalf("m=%d", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid disconnected")
	}
	if _, err := Grid(-1, 3); err == nil {
		t.Fatal("negative dimension accepted")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || !g.IsRegular(4) {
		t.Fatalf("Torus(4,5): n=%d regular4=%v", g.N(), g.IsRegular(4))
	}
	if g.M() != 40 {
		t.Fatalf("Torus(4,5): m=%d", g.M())
	}
	if _, err := Torus(2, 5); err == nil {
		t.Fatal("Torus(2,5) accepted")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g, err := CompleteBinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 15 || g.M() != 14 || !g.IsConnected() {
		t.Fatalf("tree: n=%d m=%d", g.N(), g.M())
	}
	// Root has degree 2; leaves degree 1.
	if g.Degree(0) != 2 {
		t.Fatalf("root degree %d", g.Degree(0))
	}
	h := g.DegreeHistogram()
	if h[1] != 8 {
		t.Fatalf("leaf count %d, want 8", h[1])
	}
	if _, err := CompleteBinaryTree(-1); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || !g.IsRegular(4) || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if _, err := Hypercube(-1); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := Hypercube(21); err == nil {
		t.Fatal("huge dim accepted")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g, err := CompleteBipartite(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K34: n=%d m=%d", g.N(), g.M())
	}
	if got := g.CountTriangles(); got != 0 {
		t.Fatalf("bipartite graph has %d triangles", got)
	}
	if _, err := CompleteBipartite(-1, 2); err == nil {
		t.Fatal("negative side accepted")
	}
}

func TestCaterpillar(t *testing.T) {
	g, err := Caterpillar(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 19 || !g.IsConnected() {
		t.Fatalf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
	if _, err := Caterpillar(0, 1); err == nil {
		t.Fatal("empty spine accepted")
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 15 || !g.IsRegular(5) {
		t.Fatalf("K6: n=%d m=%d", g.N(), g.M())
	}
	if _, err := Complete(-2); err == nil {
		t.Fatal("negative n accepted")
	}
}

func BenchmarkGNP5000(b *testing.B) {
	r := rng.NewFib(1)
	p, _ := TwoSetForAvgDegree(5000, 3, 0)
	for i := 0; i < b.N; i++ {
		if _, err := GNP(5000, p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBReg5000D3(b *testing.B) {
	r := rng.NewFib(1)
	for i := 0; i < b.N; i++ {
		if _, err := BReg(5000, 16, 3, r); err != nil {
			b.Fatal(err)
		}
	}
}
