package kl

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace fixtures")

// traceGraph builds a fixed 16-vertex graph (two dense clusters joined
// by two bridges) so the golden trace is independent of the generators.
func traceGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(16)
	for c := int32(0); c < 2; c++ {
		base := 8 * c
		for i := base; i < base+8; i++ {
			for j := i + 1; j < base+8; j++ {
				if (i+j)%3 != 0 { // sparsify deterministically
					b.AddEdge(i, j)
				}
			}
		}
	}
	b.AddEdge(0, 8)
	b.AddEdge(7, 15)
	return b.MustBuild()
}

// TestTraceGoldenJSONL locks the KL event stream for one seeded run: the
// JSONL serialization of a trace is part of the observability contract
// (docs/OBSERVABILITY.md), so any change to the schema or the emission
// points must show up as a diff of this fixture. Regenerate with
// `go test ./internal/kl -run TraceGolden -update`.
func TestTraceGoldenJSONL(t *testing.T) {
	g := traceGraph(t)
	run := func() []byte {
		var buf bytes.Buffer
		obs := trace.NewJSONL(&buf)
		if _, _, err := Run(g, Options{Observer: obs}, rng.NewFib(42)); err != nil {
			t.Fatal(err)
		}
		if obs.Err() != nil {
			t.Fatal(obs.Err())
		}
		return buf.Bytes()
	}
	first := run()
	if !bytes.Equal(first, run()) {
		t.Fatal("identical seeds produced different JSONL event streams")
	}

	golden := filepath.Join("testdata", "kl_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("trace diverged from golden fixture %s\n got:\n%s\nwant:\n%s\n(rerun with -update if the schema change is intentional)",
			golden, first, want)
	}
}

// TestObserverDoesNotChangeResult is the detach half of the
// observability contract: attaching an observer must not perturb the
// algorithm (observers never draw from the random stream).
func TestObserverDoesNotChangeResult(t *testing.T) {
	g := traceGraph(t)
	plain, plainStats, err := Run(g, Options{}, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	traced, tracedStats, err := Run(g, Options{Observer: rec}, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut() != traced.Cut() {
		t.Fatalf("observer changed the cut: %d vs %d", plain.Cut(), traced.Cut())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if plain.Side(v) != traced.Side(v) {
			t.Fatalf("observer changed the bisection at vertex %d", v)
		}
	}
	if plainStats != tracedStats {
		t.Fatalf("observer changed the run stats: %+v vs %+v", plainStats, tracedStats)
	}
	if rec.Len() == 0 {
		t.Fatal("observer attached but no events recorded")
	}
}

// TestTraceEventsMatchStats cross-checks the event stream against the
// Stats totals: one pass_done per pass, a final run_done whose counters
// equal the Stats, and monotone non-increasing pass cuts.
func TestTraceEventsMatchStats(t *testing.T) {
	g := traceGraph(t)
	rec := trace.NewRecorder(0)
	b := partition.NewRandom(g, rng.NewFib(3))
	st, err := Refine(b, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	var passes int
	lastCut := st.InitialCut
	for _, e := range events {
		switch e.Type {
		case trace.TypePassDone:
			if e.Index != passes {
				t.Fatalf("pass_done index %d out of order (want %d)", e.Index, passes)
			}
			if e.Cut > lastCut {
				t.Fatalf("pass %d increased the cut: %d → %d", e.Index, lastCut, e.Cut)
			}
			lastCut = e.Cut
			passes++
		case trace.TypeMoveBatch:
			if e.Algo != "kl" {
				t.Fatalf("unexpected algo %q", e.Algo)
			}
		}
	}
	if passes != st.Passes {
		t.Fatalf("saw %d pass_done events, Stats.Passes = %d", passes, st.Passes)
	}
	last := events[len(events)-1]
	if last.Type != trace.TypeRunDone {
		t.Fatalf("last event is %s, want run_done", last.Type)
	}
	if last.Cut != st.FinalCut || last.Moves != st.Swaps || last.Scanned != st.ScannedPairs || last.Index != st.Passes {
		t.Fatalf("run_done %+v disagrees with stats %+v", last, st)
	}
	if last.Gain != st.InitialCut-st.FinalCut {
		t.Fatalf("run_done gain %d, want %d", last.Gain, st.InitialCut-st.FinalCut)
	}
}
