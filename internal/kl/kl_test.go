package kl

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestPassNeverIncreasesCut(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (2 + r.Intn(25))
		g, err := gen.GNP(n, 0.2, r)
		if err != nil {
			return false
		}
		b := partition.NewRandom(g, r)
		before := b.Cut()
		imp, _, _, err := Pass(b, Options{})
		if err != nil {
			return false
		}
		if b.Validate() != nil {
			return false
		}
		return b.Cut() == before-imp && imp >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPassPreservesBalance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (2 + r.Intn(20))
		g, err := gen.GNP(n, 0.25, r)
		if err != nil {
			return false
		}
		b := partition.NewRandom(g, r)
		w0, w1 := b.SideWeight(0), b.SideWeight(1)
		if _, _, _, err := Pass(b, Options{}); err != nil {
			return false
		}
		return b.SideWeight(0) == w0 && b.SideWeight(1) == w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPassMatchesFigure2OnWorkedExample(t *testing.T) {
	// TestKLPassMatchesFigure2 (experiment F2 in DESIGN.md): a concrete
	// instance where one KL pass must find the optimal interchange.
	//
	// Two dense K4 cliques; the random-looking start places one vertex of
	// each clique on the wrong side. The pass must swap the two misplaced
	// vertices and stop (further swaps have negative cumulative gain).
	b := graph.NewBuilder(8)
	for _, c := range [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		b.AddEdge(c[0], c[1])
	}
	for _, c := range [][2]int32{{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}} {
		b.AddEdge(c[0], c[1])
	}
	g := b.MustBuild()
	// Misplace vertices 3 and 7.
	bis, err := partition.New(g, []uint8{0, 0, 0, 1, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if bis.Cut() != 6 {
		t.Fatalf("start cut %d, want 6", bis.Cut())
	}
	imp, kept, _, err := Pass(bis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if imp != 6 || kept != 1 {
		t.Fatalf("pass: improvement %d (want 6), kept %d (want 1)", imp, kept)
	}
	if bis.Cut() != 0 {
		t.Fatalf("final cut %d, want 0", bis.Cut())
	}
	// Each vertex must have rejoined its own clique: 3 with {0,1,2} and 7
	// with {4,5,6}.
	if bis.Side(3) != bis.Side(0) || bis.Side(7) != bis.Side(4) {
		t.Fatal("wrong vertices swapped")
	}
}

func TestRefineFindsOptimumOnSmallGraphs(t *testing.T) {
	// KL (best of a few random starts) should match the exact optimum on
	// small dense graphs. This is a statistical statement about KL's
	// quality, made deterministic by fixed seeds; dense small instances
	// have few local optima.
	r := rng.NewFib(77)
	for trial := 0; trial < 20; trial++ {
		n := 2 * (3 + r.Intn(4)) // 6..12 vertices
		g, err := gen.GNP(n, 0.5, r)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.BisectionWidth(g)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 62
		for start := 0; start < 6; start++ {
			b, _, err := Run(g, Options{}, r)
			if err != nil {
				t.Fatal(err)
			}
			if b.Cut() < best {
				best = b.Cut()
			}
		}
		if best > opt {
			t.Fatalf("trial %d (n=%d): KL best-of-6 %d > optimum %d", trial, n, best, opt)
		}
		if best < opt {
			t.Fatalf("trial %d: KL cut %d below proven optimum %d — exact solver bug", trial, best, opt)
		}
	}
}

func TestRefineStatsConsistent(t *testing.T) {
	r := rng.NewFib(5)
	g, err := gen.BReg(200, 4, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	initial := b.Cut()
	st, err := Refine(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.InitialCut != initial || st.FinalCut != b.Cut() {
		t.Fatalf("stats cuts %d→%d, bisection %d→%d", st.InitialCut, st.FinalCut, initial, b.Cut())
	}
	if st.FinalCut > st.InitialCut {
		t.Fatal("refine increased the cut")
	}
	if st.Passes < 1 {
		t.Fatal("no passes recorded")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineMaxPasses(t *testing.T) {
	r := rng.NewFib(6)
	g, err := gen.BReg(300, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	st, err := Refine(b, Options{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes != 1 {
		t.Fatalf("passes = %d, want exactly 1", st.Passes)
	}
}

func TestPruningDoesNotChangeResults(t *testing.T) {
	// The admissible pruning must leave the chosen pairs (and hence final
	// cuts) identical; only ScannedPairs differs. Both runs must see
	// identical inputs, so the RNG is re-seeded.
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.GNP(60, 0.1, rng.NewFib(seed+100))
		if err != nil {
			t.Fatal(err)
		}
		b1 := partition.NewRandom(g, rng.NewFib(seed))
		b2 := b1.Clone()
		st1, err := Refine(b1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st2, err := Refine(b2, Options{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if b1.Cut() != b2.Cut() {
			t.Fatalf("seed %d: pruned cut %d != unpruned %d", seed, b1.Cut(), b2.Cut())
		}
		if st1.ScannedPairs > st2.ScannedPairs {
			t.Fatalf("seed %d: pruning scanned MORE pairs (%d > %d)", seed, st1.ScannedPairs, st2.ScannedPairs)
		}
	}
}

func TestKLOnLadderIsSuboptimalSometimes(t *testing.T) {
	// The paper's motivating failure: plain KL from a random start often
	// misses the width-2 optimum on ladders. We verify KL is at least
	// valid here, and that it does not always reach 2 (over many seeds) —
	// if it always did, the compaction story would be vacuous.
	g := mustGraph(gen.Ladder(64))
	reached := 0
	const trials = 12
	r := rng.NewFib(13)
	for i := 0; i < trials; i++ {
		b, _, err := Run(g, Options{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if b.Imbalance() != 0 {
			t.Fatal("KL unbalanced the ladder")
		}
		if b.Cut() < 2 {
			t.Fatalf("cut %d below bisection width 2", b.Cut())
		}
		if b.Cut() == 2 {
			reached++
		}
	}
	if reached == trials {
		t.Skip("KL solved the ladder from every start on these seeds; weak adversarial instance")
	}
}

func TestRunOnEmptyAndTinyGraphs(t *testing.T) {
	r := rng.NewFib(1)
	g := graph.NewBuilder(0).MustBuild()
	b, _, err := Run(g, Options{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 0 {
		t.Fatal("empty graph nonzero cut")
	}
	g2 := mustGraph(gen.Path(2))
	b2, _, err := Run(g2, Options{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Cut() != 1 {
		t.Fatalf("P2 cut %d, want 1", b2.Cut())
	}
}

func TestPassOnDisconnectedGraph(t *testing.T) {
	// Two K4s with no connection: optimal cut 0; KL should find it from
	// most starts since the pass explores all swap prefixes.
	b := graph.NewBuilder(8)
	for _, c := range [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}} {
		b.AddEdge(c[0], c[1])
	}
	g := b.MustBuild()
	best := int64(1) << 62
	r := rng.NewFib(3)
	for i := 0; i < 5; i++ {
		bis, _, err := Run(g, Options{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if bis.Cut() < best {
			best = bis.Cut()
		}
	}
	if best != 0 {
		t.Fatalf("best cut %d on two disjoint cliques, want 0", best)
	}
}

func TestWeightedKL(t *testing.T) {
	// KL must respect weights: a heavy edge should end up uncut.
	bld := graph.NewBuilder(4)
	bld.AddWeightedEdge(0, 1, 100)
	bld.AddWeightedEdge(2, 3, 100)
	bld.AddWeightedEdge(0, 2, 1)
	bld.AddWeightedEdge(1, 3, 1)
	g := bld.MustBuild()
	bis, err := partition.New(g, []uint8{0, 1, 0, 1}) // cuts both heavy edges
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(bis, Options{}); err != nil {
		t.Fatal(err)
	}
	if bis.Cut() != 2 {
		t.Fatalf("weighted KL cut %d, want 2", bis.Cut())
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Fatal("empty Stats string")
	}
}

func BenchmarkKLBReg2000D3(b *testing.B) {
	r := rng.NewFib(1)
	g, err := gen.BReg(2000, 16, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(g, Options{}, r); err != nil {
			b.Fatal(err)
		}
	}
}
