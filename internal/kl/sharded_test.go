package kl

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// lowerGates drops the parallel thresholds so small instances exercise
// the sharded swap kernel, restoring them when the test ends.
func lowerGates(t *testing.T) {
	t.Helper()
	savedV, savedD := ParallelMinVertices, ParallelMinDegree
	ParallelMinVertices = 1
	ParallelMinDegree = 1
	t.Cleanup(func() { ParallelMinVertices, ParallelMinDegree = savedV, savedD })
}

// TestShardedSwapIdentity pins the sharded pass body — parallel init
// plus sharded swap gain updates/repositions — to the serial reference
// at several pool degrees, and the DisableParallelGains ablation to the
// same result.
func TestShardedSwapIdentity(t *testing.T) {
	lowerGates(t)
	g, err := gen.GNP(800, 10.0/799, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) ([]uint8, Stats) {
		b := partition.NewRandom(g, rng.NewFib(43))
		if opts.Workspace != nil {
			defer opts.Workspace.Close()
		}
		st, err := Refine(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		return b.Sides(), st
	}
	refSides, refStats := run(Options{})
	for _, opts := range []Options{
		{ParallelDegree: 2},
		{ParallelDegree: 4},
		{ParallelDegree: 8},
		{ParallelDegree: 4, DisableParallelGains: true},
	} {
		opts.Workspace = NewRefiner()
		sides, stats := run(opts)
		if stats != refStats {
			t.Fatalf("opts %+v: stats %+v, want %+v", opts, stats, refStats)
		}
		for v := range sides {
			if sides[v] != refSides[v] {
				t.Fatalf("opts %+v: side of vertex %d differs", opts, v)
			}
		}
	}
}

// TestShardedSwapSteadyAllocs pins the zero-allocation contract of the
// sharded swap kernel: once a Refiner has warmed up, parallel passes
// allocate nothing.
func TestShardedSwapSteadyAllocs(t *testing.T) {
	lowerGates(t)
	g, err := gen.GNP(600, 12.0/599, rng.NewFib(21))
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, rng.NewFib(3))
	w := NewRefiner()
	defer w.Close()
	opts := Options{ParallelDegree: 4, Workspace: w}
	if _, _, _, err := w.Pass(b, opts); err != nil {
		t.Fatal(err) // warm-up sizes the workspace and binds the closures
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, _, err := w.Pass(b, opts); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded KL pass allocated %.1f times per run, want 0", allocs)
	}
}
