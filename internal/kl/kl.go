// Package kl implements the Kernighan–Lin graph bisection heuristic
// exactly as described in Figure 2 of the paper (and [KL70]).
//
// One pass starts from a bisection (A, B), computes every vertex gain,
// and then repeatedly selects the unlocked opposite-side pair (a, b)
// maximizing the swap gain g_ab = g_a + g_b − 2·w(a,b), tentatively
// exchanges it, locks both vertices, and updates the gains of their
// neighbors. After min(|A|,|B|) tentative exchanges, the prefix k with
// maximum cumulative gain is kept and the rest rolled back. Passes repeat
// until one yields no improvement (or a pass limit is reached).
//
// Pair selection uses the classical admissible pruning: scanning
// candidates a and b in non-increasing gain order, every pair satisfies
// g_ab ≤ g_a + g_b, so scanning stops as soon as g_a + g_b cannot beat
// the best pair found. With bucket gain lists this makes a pass fast in
// practice; the pruning can be disabled (for the ablation benchmark),
// which falls back to the full quadratic scan with identical results.
//
// Hot-path engineering (none of it changes results): before the B-side
// candidates of a given a are scanned, a's incident edge weights are
// stamped into an epoch-versioned scratch array, so each scanned pair
// costs an O(1) array read instead of an adjacency probe; and all pass
// state (the two gain-bucket structures, the swap log, the scratch
// stamps) lives in a reusable Refiner workspace, so steady-state passes
// allocate nothing. Both fast paths can be disabled via Options for the
// ablation benchmarks, again with identical results.
package kl

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Options configures the algorithm.
type Options struct {
	// MaxPasses caps the number of passes; 0 means run until a pass fails
	// to improve the cut (with a hard safety cap).
	MaxPasses int
	// DisablePruning turns off the admissible early termination of the
	// pair scan. Results are identical; only running time changes. Used by
	// the KL-scan ablation.
	DisablePruning bool
	// DisableScratch turns off the stamped-scratch connectivity lookup in
	// the pair scan and probes the graph's adjacency for every scanned
	// pair instead. Results (including the ScannedPairs stat) are
	// identical; only running time changes. Used by the KL-scan ablation.
	DisableScratch bool
	// DisableBlockedScan turns off the cache-blocked pair scan that
	// memoizes the descending B-side sequence into a flat array and
	// walks the linked gain buckets for every candidate pair instead.
	// Results (including ScannedPairs) are identical; only running time
	// changes. Used by the KL-scan ablation.
	DisableBlockedScan bool
	// ParallelDegree, when > 1, shards the pass over a worker pool of
	// that degree for graphs with at least ParallelMinVertices vertices:
	// the two gain-bucket structures are filled concurrently (one worker
	// per side), and each committed swap's neighbor gain updates and
	// bucket repositions are sharded when the pair's combined degree
	// reaches ParallelMinDegree. Results are identical at any degree —
	// every kernel reproduces the serial decision sequence bit-exactly
	// (see docs/PERFORMANCE.md). The pool attaches to the Workspace;
	// reuse one (and Close it) to amortize.
	ParallelDegree int
	// DisableParallelGains keeps the per-swap neighbor gain updates and
	// bucket repositions serial even when ParallelDegree engages the
	// pool. Results are identical; only running time changes. Used by
	// the parallel-refinement ablation benchmark.
	DisableParallelGains bool
	// Workspace, when non-nil, supplies the reusable pass state (gain
	// buckets, swap log, scratch stamps) so repeated runs allocate
	// nothing. A nil Workspace makes Run/Refine/Pass allocate a private
	// one. Workspaces are not safe for concurrent use; give each
	// goroutine its own (see core.ParallelBestOf).
	Workspace *Refiner
	// Observer, when non-nil, receives move_batch, pass_done, and
	// run_done trace events (see docs/OBSERVABILITY.md). Observers never
	// touch the random stream, so attaching one cannot change the
	// resulting bisection; nil costs nothing.
	Observer trace.Observer
	// Control, when non-nil, is polled once before every pass. When it
	// stops, Refine returns the bisection as the last completed pass left
	// it — always valid and balanced, KL only exchanges opposite-side
	// pairs — together with the stop sentinel (see internal/runctl and
	// docs/ROBUSTNESS.md). A run under checkpoint budget k is identical
	// to an uncancelled run with MaxPasses = k; nil costs nothing.
	Control *runctl.Control
}

// safetyPassCap bounds the pass loop when MaxPasses is 0. Each counted
// pass strictly decreases the cut, so for the repository's graphs this is
// never reached; it exists to make non-termination impossible.
const safetyPassCap = 1000

// Stats reports what a Run or Refine did.
type Stats struct {
	Passes       int   // passes executed (including the final non-improving one)
	Swaps        int   // pairs kept across all passes
	InitialCut   int64 // cut before the first pass
	FinalCut     int64 // cut after the last pass
	ScannedPairs int64 // candidate pairs examined during selection
}

type swapRec struct {
	a, bv int32
	gain  int64
}

// Refiner is the reusable workspace for KL passes: the two gain-bucket
// structures, the swap log, and the epoch-stamped neighbor-weight scratch
// used by the pair scan. A zero Refiner is ready to use; it sizes itself
// to each graph it sees and is reused across passes, starts, and
// multilevel levels without further allocation. Refiners carry no
// algorithm state between calls — using one never changes results — but
// they are not safe for concurrent use.
type Refiner struct {
	buckets [2]partition.GainBuckets
	swaps   []swapRec
	// scratch[v] packs (epoch, w(a,v)) for the currently stamped a —
	// epoch in the high 32 bits, edge weight in the low 32 — so the pair
	// scan's connectivity lookup is a single aligned load.
	scratch []uint64
	epoch   uint32
	// bseq memoizes the descending (gain, vertex) B-side sequence within
	// one selectPair, packed gain-high/vertex-low, so replays for later
	// A-candidates read a flat array instead of chasing bucket links.
	bseq []uint64
	// Worker pool for the parallel pass kernels (Options.ParallelDegree),
	// created lazily, released by Close; pb carries the bisection to the
	// pre-bound shard closure.
	pool   *par.Pool
	initFn func(int)
	pb     *partition.Bisection
	// mover shards the per-swap neighbor gain updates and bucket
	// repositions (see partition.ShardedMover).
	mover partition.ShardedMover
}

// ParallelMinVertices is the graph size below which the pass stays
// serial even when Options.ParallelDegree asks for workers. A variable
// only so tests can lower it.
var ParallelMinVertices = 1 << 15

// ParallelMinDegree is the combined degree of a swapped pair below
// which the swap's neighbor updates stay serial even on a parallel
// pass: the fork-join barriers cost on the order of a microsecond, so
// sharding only pays once a swap touches enough neighbors. A variable
// only so tests can lower it.
var ParallelMinDegree = 64

// Close releases the pool created for parallel bucket filling (if any).
// The Refiner remains usable afterwards.
func (w *Refiner) Close() {
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}

// initShard fills side s's gain buckets in vertex order — exactly the
// serial insertion order restricted to one side, so the LIFO bucket
// layout (and every downstream decision) is identical.
func (w *Refiner) initShard(s int) {
	side, gain := w.pb.SidesRef(), w.pb.GainsRef()
	bk := &w.buckets[s]
	us := uint8(s)
	for v, sv := range side {
		if sv == us {
			bk.Add(int32(v), gain[v])
		}
	}
}

// NewRefiner returns an empty workspace. Equivalent to new(Refiner);
// provided for call-site clarity.
func NewRefiner() *Refiner { return new(Refiner) }

// ensure sizes the workspace for g. Once the workspace has seen a graph
// at least as large (in vertices and gain bound), this performs no
// allocation.
func (w *Refiner) ensure(g *graph.Graph) error {
	n := g.N()
	maxGain := g.MaxWeightedDegree()
	for s := range w.buckets {
		if err := w.buckets[s].Reset(n, maxGain); err != nil {
			return err
		}
	}
	if cap(w.scratch) < n {
		w.scratch = make([]uint64, n)
		w.epoch = 0
	}
	w.scratch = w.scratch[:n]
	if w.swaps == nil {
		w.swaps = make([]swapRec, 0, n/2+1)
	}
	return nil
}

// stamp records a's incident edge weights in the scratch array under a
// fresh epoch and returns that epoch. Entries from earlier stampings stay
// in place but carry older epochs, so a single comparison identifies the
// valid ones — no clearing between stampings.
func (w *Refiner) stamp(g *graph.Graph, a int32) uint32 {
	w.epoch++
	if w.epoch == 0 {
		// Wrapped around: stale stamps could collide with reused epoch
		// values, so clear everything once per 2³² stampings. The full
		// capacity is cleared because ensure() may later re-expose hidden
		// entries on a larger graph.
		clear(w.scratch[:cap(w.scratch)])
		w.epoch = 1
	}
	hi := uint64(w.epoch) << 32
	for _, e := range g.Neighbors(a) {
		w.scratch[e.To] = hi | uint64(uint32(e.W))
	}
	return w.epoch
}

// workspace returns opts.Workspace or a fresh private one.
func workspace(opts Options) *Refiner {
	if opts.Workspace != nil {
		return opts.Workspace
	}
	return new(Refiner)
}

// Refine runs KL passes on b in place until no pass improves the cut (or
// opts.MaxPasses is reached). The bisection's side sizes are preserved
// exactly: KL only ever exchanges opposite-side pairs.
func Refine(b *partition.Bisection, opts Options) (Stats, error) {
	return workspace(opts).Refine(b, opts)
}

// Refine is Refine using this workspace (opts.Workspace is ignored).
func (w *Refiner) Refine(b *partition.Bisection, opts Options) (Stats, error) {
	st := Stats{InitialCut: b.Cut(), FinalCut: b.Cut()}
	limit := opts.MaxPasses
	if limit <= 0 {
		limit = safetyPassCap
	}
	obs := opts.Observer
	var runStart time.Time
	if obs != nil {
		runStart = time.Now()
	}
	var stopErr error
	for p := 0; p < limit; p++ {
		if stopErr = opts.Control.Check(); stopErr != nil {
			break
		}
		var passStart time.Time
		if obs != nil {
			passStart = time.Now()
		}
		improved, swaps, scanned, err := w.Pass(b, opts)
		st.Passes++
		st.Swaps += swaps
		st.ScannedPairs += scanned
		if err != nil {
			return st, err
		}
		st.FinalCut = b.Cut()
		if obs != nil {
			// KL never keeps a worsening prefix, so cut == best cut.
			obs.Observe(trace.Event{
				Type: trace.TypePassDone, Algo: "kl", Index: p,
				Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
				Gain: improved, Moves: swaps, Scanned: scanned,
				ElapsedNS: time.Since(passStart).Nanoseconds(),
			})
		}
		if improved <= 0 {
			break
		}
	}
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "kl", Index: st.Passes,
			Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
			Gain: st.InitialCut - st.FinalCut, Moves: st.Swaps, Scanned: st.ScannedPairs,
			ElapsedNS: time.Since(runStart).Nanoseconds(),
		})
	}
	return st, stopErr
}

// Run bisects g from a fresh random balanced bisection.
func Run(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, Stats, error) {
	b := partition.NewRandom(g, r)
	st, err := Refine(b, opts)
	return b, st, err
}

// Pass executes one full KL pass on b (Figure 2). It returns the cut
// improvement achieved (≥ 0), the number of pair exchanges kept, and the
// number of candidate pairs scanned.
func Pass(b *partition.Bisection, opts Options) (improvement int64, kept int, scanned int64, err error) {
	return workspace(opts).Pass(b, opts)
}

// Pass is Pass using this workspace (opts.Workspace is ignored).
func (w *Refiner) Pass(b *partition.Bisection, opts Options) (improvement int64, kept int, scanned int64, err error) {
	g := b.Graph()
	n := g.N()
	if n == 0 {
		return 0, 0, 0, nil
	}
	if err := w.ensure(g); err != nil {
		return 0, 0, 0, err
	}
	buckets := [2]*partition.GainBuckets{&w.buckets[0], &w.buckets[1]}
	useParallel := opts.ParallelDegree > 1 && n >= ParallelMinVertices
	if useParallel {
		if w.pool == nil || w.pool.Degree() < opts.ParallelDegree {
			w.pool.Close()
			w.pool = par.New(opts.ParallelDegree)
			w.initFn = w.initShard
		}
		w.pb = b
		w.pool.Run(2, w.initFn)
		w.pb = nil
	} else {
		for v := int32(0); int(v) < n; v++ {
			buckets[b.Side(v)].Add(v, b.Gain(v))
		}
	}
	useGains := useParallel && !opts.DisableParallelGains
	if useGains {
		w.mover.Bind(w.pool, b, buckets[0], buckets[1])
	}
	steps := buckets[0].Len()
	if l := buckets[1].Len(); l < steps {
		steps = l
	}

	swaps := w.swaps[:0]
	var cum, bestCum int64
	bestK := 0

	// Intra-pass tracing state; untouched (and unallocated) when no
	// observer is attached.
	obs := opts.Observer
	var startCut, batchMaxGain int64
	batchFill, batchIdx := 0, 0
	if obs != nil {
		startCut = b.Cut()
	}

	for i := 0; i < steps; i++ {
		a, bv, g2, sc := w.selectPair(b, buckets, opts)
		scanned += sc
		if a < 0 {
			break // no opposite-side pair remains (disconnected corner case)
		}
		// Tentative exchange; lock both.
		buckets[b.Side(a)].Remove(a)
		buckets[b.Side(bv)].Remove(bv)
		if useGains && len(g.Neighbors(a))+len(g.Neighbors(bv)) >= ParallelMinDegree {
			w.mover.Swap(a, bv)
		} else {
			b.Swap(a, bv)
			// Neighbor gains changed; refresh bucket entries of unlocked
			// neighbors.
			for _, e := range g.Neighbors(a) {
				buckets[b.Side(e.To)].UpdateIfPresent(e.To, b.Gain(e.To))
			}
			for _, e := range g.Neighbors(bv) {
				buckets[b.Side(e.To)].UpdateIfPresent(e.To, b.Gain(e.To))
			}
		}
		swaps = append(swaps, swapRec{a: a, bv: bv, gain: g2})
		cum += g2
		if cum > bestCum {
			bestCum = cum
			bestK = len(swaps)
		}
		if obs != nil {
			if batchFill == 0 || g2 > batchMaxGain {
				batchMaxGain = g2
			}
			batchFill++
			if batchFill == trace.MoveBatchSize {
				emitMoveBatch(obs, b, batchIdx, len(swaps), startCut, cum, bestCum, batchMaxGain, scanned)
				batchFill = 0
				batchIdx++
			}
		}
	}
	if obs != nil && batchFill > 0 {
		emitMoveBatch(obs, b, batchIdx, len(swaps), startCut, cum, bestCum, batchMaxGain, scanned)
	}

	// Roll back everything after the best prefix.
	for i := len(swaps) - 1; i >= bestK; i-- {
		if useGains && len(g.Neighbors(swaps[i].a))+len(g.Neighbors(swaps[i].bv)) >= ParallelMinDegree {
			w.mover.SwapNoBuckets(swaps[i].a, swaps[i].bv)
		} else {
			b.Swap(swaps[i].a, swaps[i].bv)
		}
	}
	if useGains {
		w.mover.Unbind()
	}
	w.swaps = swaps[:0] // keep the grown capacity for the next pass
	return bestCum, bestK, scanned, nil
}

// emitMoveBatch reports an intra-pass progress sample: the cut of the
// tentative state, the cut the best prefix so far would yield, and the
// batch's largest single swap gain.
func emitMoveBatch(obs trace.Observer, b *partition.Bisection, batchIdx, moves int, startCut, cum, bestCum, maxGain int64, scanned int64) {
	obs.Observe(trace.Event{
		Type: trace.TypeMoveBatch, Algo: "kl", Index: batchIdx,
		Cut: b.Cut(), BestCut: startCut - bestCum, Imbalance: b.Imbalance(),
		Gain: cum, MaxGain: maxGain, Moves: moves, Scanned: scanned,
	})
}

// selectPair returns the unlocked opposite-side pair with maximum swap
// gain, or a = −1 if either side is exhausted.
//
// The candidate order, the pruning decisions, and therefore the selected
// pair and the scanned count are identical whether the connecting weight
// comes from the stamped scratch (the default O(1) lookup) or from an
// adjacency probe (DisableScratch) — only the per-pair cost differs.
func (w *Refiner) selectPair(b *partition.Bisection, buckets [2]*partition.GainBuckets, opts Options) (a, bv int32, gain int64, scanned int64) {
	if buckets[0].Len() == 0 || buckets[1].Len() == 0 {
		return -1, -1, 0, 0
	}
	if !opts.DisableBlockedScan {
		return w.selectPairBlocked(b, buckets, opts)
	}
	g := b.Graph()
	noPrune := opts.DisablePruning
	useScratch := !opts.DisableScratch
	_, maxB, _ := buckets[1].Max()
	first := true
	var bestA, bestB int32
	var best int64
	scratch := w.scratch
	for ca := buckets[0].Cursor(); ca.Valid(); ca.Next() {
		av, ga := ca.V(), ca.Gain()
		if !noPrune && !first && ga+maxB <= best {
			break // no a beyond this point can beat best
		}
		var cur uint64
		if useScratch {
			cur = uint64(w.stamp(g, av)) << 32
		}
		for cb := buckets[1].Cursor(); cb.Valid(); cb.Next() {
			bvv, gb := cb.V(), cb.Gain()
			if !noPrune && !first && ga+gb <= best {
				break
			}
			scanned++
			var ew int64
			if useScratch {
				if q := scratch[bvv]; q&^0xFFFFFFFF == cur {
					ew = int64(int32(uint32(q)))
				}
			} else {
				ew = int64(g.EdgeWeight(av, bvv))
			}
			pg := ga + gb - 2*ew
			if first || pg > best {
				first = false
				best = pg
				bestA, bestB = av, bvv
			}
		}
	}
	if first {
		return -1, -1, 0, scanned
	}
	return bestA, bestB, best, scanned
}

// selectPairBlocked is selectPair with the B-side candidate sequence
// memoized into a flat packed array as the bucket cursor first produces
// it: later A-candidates replay their (pruned) prefix from contiguous
// memory instead of re-chasing the gain buckets' linked entries. The
// candidate order — and with it every pruning decision, the selected
// pair, and the scanned count — is exactly the cursor path's; bucket
// gains fit int32 (the bucket span is capped far below that), so the
// (gain, vertex) packing is lossless.
func (w *Refiner) selectPairBlocked(b *partition.Bisection, buckets [2]*partition.GainBuckets, opts Options) (a, bv int32, gain int64, scanned int64) {
	g := b.Graph()
	noPrune := opts.DisablePruning
	useScratch := !opts.DisableScratch
	_, maxB, _ := buckets[1].Max()
	first := true
	var bestA, bestB int32
	var best int64
	scratch := w.scratch
	bseq := w.bseq[:0]
	cb := buckets[1].Cursor()
	for ca := buckets[0].Cursor(); ca.Valid(); ca.Next() {
		av, ga := ca.V(), ca.Gain()
		if !noPrune && !first && ga+maxB <= best {
			break // no a beyond this point can beat best
		}
		var cur uint64
		if useScratch {
			cur = uint64(w.stamp(g, av)) << 32
		}
		for i := 0; ; i++ {
			if i == len(bseq) {
				if !cb.Valid() {
					break
				}
				bseq = append(bseq, uint64(uint32(int32(cb.Gain())))<<32|uint64(uint32(cb.V())))
				cb.Next()
			}
			q := bseq[i]
			gb := int64(int32(uint32(q >> 32)))
			bvv := int32(uint32(q))
			if !noPrune && !first && ga+gb <= best {
				break
			}
			scanned++
			var ew int64
			if useScratch {
				if s := scratch[bvv]; s&^0xFFFFFFFF == cur {
					ew = int64(int32(uint32(s)))
				}
			} else {
				ew = int64(g.EdgeWeight(av, bvv))
			}
			pg := ga + gb - 2*ew
			if first || pg > best {
				first = false
				best = pg
				bestA, bestB = av, bvv
			}
		}
	}
	w.bseq = bseq // keep the grown capacity for the next selection
	if first {
		return -1, -1, 0, scanned
	}
	return bestA, bestB, best, scanned
}

// String implements a compact summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("kl{passes=%d swaps=%d cut %d→%d scanned=%d}", s.Passes, s.Swaps, s.InitialCut, s.FinalCut, s.ScannedPairs)
}
