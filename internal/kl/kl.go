// Package kl implements the Kernighan–Lin graph bisection heuristic
// exactly as described in Figure 2 of the paper (and [KL70]).
//
// One pass starts from a bisection (A, B), computes every vertex gain,
// and then repeatedly selects the unlocked opposite-side pair (a, b)
// maximizing the swap gain g_ab = g_a + g_b − 2·w(a,b), tentatively
// exchanges it, locks both vertices, and updates the gains of their
// neighbors. After min(|A|,|B|) tentative exchanges, the prefix k with
// maximum cumulative gain is kept and the rest rolled back. Passes repeat
// until one yields no improvement (or a pass limit is reached).
//
// Pair selection uses the classical admissible pruning: scanning
// candidates a and b in non-increasing gain order, every pair satisfies
// g_ab ≤ g_a + g_b, so scanning stops as soon as g_a + g_b cannot beat
// the best pair found. With bucket gain lists this makes a pass fast in
// practice; the pruning can be disabled (for the ablation benchmark),
// which falls back to the full quadratic scan with identical results.
package kl

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Options configures the algorithm.
type Options struct {
	// MaxPasses caps the number of passes; 0 means run until a pass fails
	// to improve the cut (with a hard safety cap).
	MaxPasses int
	// DisablePruning turns off the admissible early termination of the
	// pair scan. Results are identical; only running time changes. Used by
	// the KL-scan ablation.
	DisablePruning bool
	// Observer, when non-nil, receives move_batch, pass_done, and
	// run_done trace events (see docs/OBSERVABILITY.md). Observers never
	// touch the random stream, so attaching one cannot change the
	// resulting bisection; nil costs nothing.
	Observer trace.Observer
}

// safetyPassCap bounds the pass loop when MaxPasses is 0. Each counted
// pass strictly decreases the cut, so for the repository's graphs this is
// never reached; it exists to make non-termination impossible.
const safetyPassCap = 1000

// Stats reports what a Run or Refine did.
type Stats struct {
	Passes       int   // passes executed (including the final non-improving one)
	Swaps        int   // pairs kept across all passes
	InitialCut   int64 // cut before the first pass
	FinalCut     int64 // cut after the last pass
	ScannedPairs int64 // candidate pairs examined during selection
}

// Refine runs KL passes on b in place until no pass improves the cut (or
// opts.MaxPasses is reached). The bisection's side sizes are preserved
// exactly: KL only ever exchanges opposite-side pairs.
func Refine(b *partition.Bisection, opts Options) (Stats, error) {
	st := Stats{InitialCut: b.Cut(), FinalCut: b.Cut()}
	limit := opts.MaxPasses
	if limit <= 0 {
		limit = safetyPassCap
	}
	obs := opts.Observer
	var runStart time.Time
	if obs != nil {
		runStart = time.Now()
	}
	for p := 0; p < limit; p++ {
		var passStart time.Time
		if obs != nil {
			passStart = time.Now()
		}
		improved, swaps, scanned, err := Pass(b, opts)
		st.Passes++
		st.Swaps += swaps
		st.ScannedPairs += scanned
		if err != nil {
			return st, err
		}
		st.FinalCut = b.Cut()
		if obs != nil {
			// KL never keeps a worsening prefix, so cut == best cut.
			obs.Observe(trace.Event{
				Type: trace.TypePassDone, Algo: "kl", Index: p,
				Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
				Gain: improved, Moves: swaps, Scanned: scanned,
				ElapsedNS: time.Since(passStart).Nanoseconds(),
			})
		}
		if improved <= 0 {
			break
		}
	}
	if obs != nil {
		obs.Observe(trace.Event{
			Type: trace.TypeRunDone, Algo: "kl", Index: st.Passes,
			Cut: st.FinalCut, BestCut: st.FinalCut, Imbalance: b.Imbalance(),
			Gain: st.InitialCut - st.FinalCut, Moves: st.Swaps, Scanned: st.ScannedPairs,
			ElapsedNS: time.Since(runStart).Nanoseconds(),
		})
	}
	return st, nil
}

// Run bisects g from a fresh random balanced bisection.
func Run(g *graph.Graph, opts Options, r *rng.Rand) (*partition.Bisection, Stats, error) {
	b := partition.NewRandom(g, r)
	st, err := Refine(b, opts)
	return b, st, err
}

// Pass executes one full KL pass on b (Figure 2). It returns the cut
// improvement achieved (≥ 0), the number of pair exchanges kept, and the
// number of candidate pairs scanned.
func Pass(b *partition.Bisection, opts Options) (improvement int64, kept int, scanned int64, err error) {
	g := b.Graph()
	n := g.N()
	if n == 0 {
		return 0, 0, 0, nil
	}
	// Gain bound: the largest |gain| any vertex can have is its weighted
	// degree.
	var maxGain int64
	for v := int32(0); int(v) < n; v++ {
		if wd := g.WeightedDegree(v); wd > maxGain {
			maxGain = wd
		}
	}
	var buckets [2]*partition.GainBuckets
	for s := 0; s < 2; s++ {
		buckets[s], err = partition.NewGainBuckets(n, maxGain)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	for v := int32(0); int(v) < n; v++ {
		buckets[b.Side(v)].Add(v, b.Gain(v))
	}
	steps := buckets[0].Len()
	if l := buckets[1].Len(); l < steps {
		steps = l
	}

	type swapRec struct {
		a, bv int32
		gain  int64
	}
	swaps := make([]swapRec, 0, steps)
	var cum, bestCum int64
	bestK := 0

	// Intra-pass tracing state; untouched (and unallocated) when no
	// observer is attached.
	obs := opts.Observer
	var startCut, batchMaxGain int64
	batchFill, batchIdx := 0, 0
	if obs != nil {
		startCut = b.Cut()
	}

	for i := 0; i < steps; i++ {
		a, bv, g2, sc := selectPair(b, buckets, opts.DisablePruning)
		scanned += sc
		if a < 0 {
			break // no opposite-side pair remains (disconnected corner case)
		}
		// Tentative exchange; lock both.
		buckets[b.Side(a)].Remove(a)
		buckets[b.Side(bv)].Remove(bv)
		b.Swap(a, bv)
		// Neighbor gains changed; refresh bucket entries of unlocked
		// neighbors.
		for _, e := range g.Neighbors(a) {
			if buckets[b.Side(e.To)].Contains(e.To) {
				buckets[b.Side(e.To)].Update(e.To, b.Gain(e.To))
			}
		}
		for _, e := range g.Neighbors(bv) {
			if buckets[b.Side(e.To)].Contains(e.To) {
				buckets[b.Side(e.To)].Update(e.To, b.Gain(e.To))
			}
		}
		swaps = append(swaps, swapRec{a: a, bv: bv, gain: g2})
		cum += g2
		if cum > bestCum {
			bestCum = cum
			bestK = len(swaps)
		}
		if obs != nil {
			if batchFill == 0 || g2 > batchMaxGain {
				batchMaxGain = g2
			}
			batchFill++
			if batchFill == trace.MoveBatchSize {
				emitMoveBatch(obs, b, batchIdx, len(swaps), startCut, cum, bestCum, batchMaxGain, scanned)
				batchFill = 0
				batchIdx++
			}
		}
	}
	if obs != nil && batchFill > 0 {
		emitMoveBatch(obs, b, batchIdx, len(swaps), startCut, cum, bestCum, batchMaxGain, scanned)
	}

	// Roll back everything after the best prefix.
	for i := len(swaps) - 1; i >= bestK; i-- {
		b.Swap(swaps[i].a, swaps[i].bv)
	}
	return bestCum, bestK, scanned, nil
}

// emitMoveBatch reports an intra-pass progress sample: the cut of the
// tentative state, the cut the best prefix so far would yield, and the
// batch's largest single swap gain.
func emitMoveBatch(obs trace.Observer, b *partition.Bisection, batchIdx, moves int, startCut, cum, bestCum, maxGain int64, scanned int64) {
	obs.Observe(trace.Event{
		Type: trace.TypeMoveBatch, Algo: "kl", Index: batchIdx,
		Cut: b.Cut(), BestCut: startCut - bestCum, Imbalance: b.Imbalance(),
		Gain: cum, MaxGain: maxGain, Moves: moves, Scanned: scanned,
	})
}

// selectPair returns the unlocked opposite-side pair with maximum swap
// gain, or a = −1 if either side is exhausted.
func selectPair(b *partition.Bisection, buckets [2]*partition.GainBuckets, noPrune bool) (a, bv int32, gain int64, scanned int64) {
	if buckets[0].Len() == 0 || buckets[1].Len() == 0 {
		return -1, -1, 0, 0
	}
	g := b.Graph()
	_, maxB, _ := buckets[1].Max()
	first := true
	var bestA, bestB int32
	var best int64
	buckets[0].Descending(func(av int32, ga int64) bool {
		if !noPrune && !first && ga+maxB <= best {
			return false // no a beyond this point can beat best
		}
		buckets[1].Descending(func(bvv int32, gb int64) bool {
			if !noPrune && !first && ga+gb <= best {
				return false
			}
			scanned++
			pg := ga + gb - 2*int64(g.EdgeWeight(av, bvv))
			if first || pg > best {
				first = false
				best = pg
				bestA, bestB = av, bvv
			}
			return true
		})
		return first || noPrune || ga+maxB > best
	})
	if first {
		return -1, -1, 0, scanned
	}
	return bestA, bestB, best, scanned
}

// String implements a compact summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("kl{passes=%d swaps=%d cut %d→%d scanned=%d}", s.Passes, s.Swaps, s.InitialCut, s.FinalCut, s.ScannedPairs)
}
