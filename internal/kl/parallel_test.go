package kl

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestParallelInitAndBlockedScanIdentity pins the two hot-path variants
// to the serial reference: parallel bucket filling and the blocked pair
// scan must reproduce the exact same refinement — same sides, same cut,
// same pass/swap/scanned statistics.
func TestParallelInitAndBlockedScanIdentity(t *testing.T) {
	saved := ParallelMinVertices
	ParallelMinVertices = 1
	defer func() { ParallelMinVertices = saved }()

	g, err := gen.GNP(1200, 0.01, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) ([]uint8, Stats) {
		b := partition.NewRandom(g, rng.NewFib(41))
		if opts.Workspace != nil {
			defer opts.Workspace.Close()
		}
		st, err := Refine(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		return b.Sides(), st
	}
	refSides, refStats := run(Options{DisableBlockedScan: true})
	for name, opts := range map[string]Options{
		"blocked":        {},
		"parallel":       {ParallelDegree: 4, Workspace: NewRefiner()},
		"parallel-plain": {ParallelDegree: 2, DisableBlockedScan: true, Workspace: NewRefiner()},
	} {
		sides, stats := run(opts)
		if stats != refStats {
			t.Fatalf("%s: stats differ: %+v vs %+v", name, stats, refStats)
		}
		for v := range sides {
			if sides[v] != refSides[v] {
				t.Fatalf("%s: side of vertex %d differs", name, v)
			}
		}
	}
}
