package kl

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestScanVariantsIdentical is the correctness half of the KL-scan
// ablation: the stamped-scratch fast path, the adjacency-probe fallback
// (DisableScratch), and the unpruned full scan (DisablePruning) must
// select exactly the same pairs. The first two must also examine
// exactly the same candidates (same ScannedPairs); the full scan
// examines at least as many.
func TestScanVariantsIdentical(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 * (2 + r.Intn(40))
		g, err := gen.GNP(n, 3.0/float64(max(n-1, 1)), r)
		if err != nil {
			return false
		}
		base := partition.NewRandom(g, r)

		run := func(opts Options) (*partition.Bisection, Stats) {
			b := base.Clone()
			st, err := Refine(b, opts)
			if err != nil {
				t.Fatal(err)
			}
			return b, st
		}
		fast, fastSt := run(Options{})
		probe, probeSt := run(Options{DisableScratch: true})
		full, fullSt := run(Options{DisablePruning: true})

		if fast.Cut() != probe.Cut() || fast.Cut() != full.Cut() {
			t.Fatalf("cuts diverge: scratch=%d probe=%d full=%d", fast.Cut(), probe.Cut(), full.Cut())
		}
		for v := int32(0); int(v) < n; v++ {
			if fast.Side(v) != probe.Side(v) || fast.Side(v) != full.Side(v) {
				t.Fatalf("side[%d] diverges across scan variants", v)
			}
		}
		if fastSt.ScannedPairs != probeSt.ScannedPairs {
			t.Fatalf("ScannedPairs diverge: scratch=%d probe=%d", fastSt.ScannedPairs, probeSt.ScannedPairs)
		}
		if fullSt.ScannedPairs < fastSt.ScannedPairs {
			t.Fatalf("full scan examined fewer pairs (%d) than the pruned scan (%d)",
				fullSt.ScannedPairs, fastSt.ScannedPairs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
