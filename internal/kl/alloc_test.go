package kl

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestPassSteadyStateZeroAlloc locks in the workspace contract: once a
// Refiner has seen a graph, further passes on graphs of that size
// allocate nothing at all.
func TestPassSteadyStateZeroAlloc(t *testing.T) {
	r := rng.NewFib(11)
	g, err := gen.GNP(300, 4.0/299, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	w := NewRefiner()
	if _, _, _, err := w.Pass(b, Options{}); err != nil {
		t.Fatal(err) // warm-up sizes the workspace
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, _, err := w.Pass(b, Options{}); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state KL pass allocated %.1f times per run, want 0", allocs)
	}
}

// TestRefineSteadyStateZeroAlloc extends the contract to a whole Refine
// call (multiple passes to the fixpoint).
func TestRefineSteadyStateZeroAlloc(t *testing.T) {
	r := rng.NewFib(12)
	g, err := gen.GNP(300, 4.0/299, r)
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, r)
	w := NewRefiner()
	if _, err := w.Refine(b, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.Refine(b, Options{}); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state KL refine allocated %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceShrinksToSmallerGraphs verifies one workspace serves
// graphs of different sizes (the multilevel use case) with identical
// results to fresh workspaces.
func TestWorkspaceShrinksToSmallerGraphs(t *testing.T) {
	w := NewRefiner()
	for _, n := range []int{200, 40, 120, 10} {
		r := rng.NewFib(uint64(n))
		g, err := gen.GNP(n, 3.0/float64(n-1), r)
		if err != nil {
			t.Fatal(err)
		}
		shared := partition.NewRandom(g, rng.NewFib(99))
		fresh := shared.Clone()
		stShared, err := w.Refine(shared, Options{})
		if err != nil {
			t.Fatal(err)
		}
		stFresh, err := Refine(fresh, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if shared.Cut() != fresh.Cut() || stShared.ScannedPairs != stFresh.ScannedPairs {
			t.Fatalf("n=%d: shared workspace cut=%d scanned=%d, fresh cut=%d scanned=%d",
				n, shared.Cut(), stShared.ScannedPairs, fresh.Cut(), stFresh.ScannedPairs)
		}
		for v := int32(0); int(v) < n; v++ {
			if shared.Side(v) != fresh.Side(v) {
				t.Fatalf("n=%d: side[%d] differs between shared and fresh workspace", n, v)
			}
		}
	}
}
