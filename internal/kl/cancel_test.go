package kl

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
)

// A checkpoint budget of k must be indistinguishable from MaxPasses = k:
// same sides, same cut, valid and balanced — the only difference is the
// stop sentinel. Exercises every checkpoint index up to the natural pass
// count.
func TestControlBudgetEqualsMaxPasses(t *testing.T) {
	g, err := gen.GNP(80, 0.12, rng.NewFib(41))
	if err != nil {
		t.Fatal(err)
	}
	full := partition.NewRandom(g, rng.NewFib(9))
	fullStats, err := Refine(full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Passes < 2 {
		t.Fatalf("want a multi-pass run to cancel into, got %d passes", fullStats.Passes)
	}
	for k := 1; k <= fullStats.Passes; k++ {
		capped := partition.NewRandom(g, rng.NewFib(9))
		if _, err := Refine(capped, Options{MaxPasses: k}); err != nil {
			t.Fatal(err)
		}
		budgeted := partition.NewRandom(g, rng.NewFib(9))
		st, err := Refine(budgeted, Options{Control: runctl.WithBudget(int64(k))})
		if k < fullStats.Passes {
			if !errors.Is(err, runctl.ErrBudgetExceeded) {
				t.Fatalf("budget %d: err = %v, want ErrBudgetExceeded", k, err)
			}
		} else if err != nil {
			// The run converged before the budget ran out.
			t.Fatalf("budget %d: unexpected err %v", k, err)
		}
		if st.Passes != k && err != nil {
			t.Fatalf("budget %d ran %d passes", k, st.Passes)
		}
		if err := budgeted.Validate(); err != nil {
			t.Fatalf("budget %d: invalid bisection: %v", k, err)
		}
		if budgeted.Cut() != capped.Cut() || !bytes.Equal(budgeted.SidesRef(), capped.SidesRef()) {
			t.Fatalf("budget %d diverges from MaxPasses=%d: cut %d vs %d", k, k, budgeted.Cut(), capped.Cut())
		}
	}
}

// A context cancelled before the run starts must return the bisection
// untouched, still valid, with the context's error.
func TestPreCancelledContextReturnsStart(t *testing.T) {
	g, err := gen.GNP(40, 0.2, rng.NewFib(3))
	if err != nil {
		t.Fatal(err)
	}
	b := partition.NewRandom(g, rng.NewFib(4))
	want := b.Cut()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Refine(b, Options{Control: runctl.FromContext(ctx)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Passes != 0 || b.Cut() != want {
		t.Fatalf("cancelled run did work: %d passes, cut %d → %d", st.Passes, want, b.Cut())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
